// Structural-analysis kernel benchmarks: the bit-parallel all-pairs BFS
// engine against the scalar reference on a full-scale PolarStar.
package polarstar_test

import (
	"sync"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

// allPairsGraph lazily builds PolarStar(q=23, d'=11, IQ): 13272 routers,
// the smallest in-repo PolarStar above the 10k-vertex acceptance bar.
var allPairsGraph = sync.OnceValue(func() *graph.Graph {
	return topo.MustNewPolarStar(23, 11, topo.KindIQ).G
})

// BenchmarkAllPairsStats measures the bit-parallel engine on a
// 13272-vertex PolarStar (the acceptance-criterion benchmark; compare
// against BenchmarkAllPairsStatsScalar).
func BenchmarkAllPairsStats(b *testing.B) {
	g := allPairsGraph()
	b.ResetTimer()
	var st graph.PathStats
	for i := 0; i < b.N; i++ {
		st = g.AllPairsStats()
	}
	b.ReportMetric(float64(st.Diameter), "diameter")
	b.ReportMetric(st.AvgPath, "avg_path")
}

// BenchmarkAllPairsStatsScalar is the pre-change baseline: one scalar BFS
// per source, parallelized over sources.
func BenchmarkAllPairsStatsScalar(b *testing.B) {
	g := allPairsGraph()
	b.ResetTimer()
	var st graph.PathStats
	for i := 0; i < b.N; i++ {
		st = g.AllPairsStatsScalar()
	}
	b.ReportMetric(float64(st.Diameter), "diameter")
	b.ReportMetric(st.AvgPath, "avg_path")
}

// BenchmarkDistanceHistogram measures the exact distance-distribution
// variant on the same graph.
func BenchmarkDistanceHistogram(b *testing.B) {
	g := allPairsGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistanceHistogram()
	}
}
