package flowsim

import (
	"encoding/json"
	"math/rand"
	"testing"

	"polarstar/internal/obs"
)

// TestObserveDoesNotPerturbTiming pins the non-interference contract:
// attaching a FlowRun changes no delivery time, for MIN and adaptive.
func TestObserveDoesNotPerturbTiming(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		plain, _ := testNetwork(adaptive, 21)
		observed, _ := testNetwork(adaptive, 21)
		observed.Observe(&obs.FlowRun{})
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 300; i++ {
			src, dst := rng.Intn(100), rng.Intn(100)
			ta := plain.Send(src, dst, 2048, float64(i)*10)
			tb := observed.Send(src, dst, 2048, float64(i)*10)
			if ta != tb {
				t.Fatalf("adaptive=%v: delivery diverges at message %d: %f vs %f", adaptive, i, ta, tb)
			}
		}
	}
}

// TestObserveAccounting checks the flow-level metric bookkeeping over a
// burst of messages: message/byte totals, the hop histogram range, the
// makespan, and the per-link utilization JSON.
func TestObserveAccounting(t *testing.T) {
	n, ps := testNetwork(false, 22)
	var m obs.FlowRun
	n.Observe(&m)
	rng := rand.New(rand.NewSource(5))
	const msgs = 400
	var last float64
	for i := 0; i < msgs; i++ {
		src, dst := rng.Intn(100), rng.Intn(100)
		if d := n.Send(src, dst, 1024, float64(i)); d > last {
			last = d
		}
	}
	if m.Messages.Value() != msgs {
		t.Errorf("messages = %d, want %d", m.Messages.Value(), msgs)
	}
	if m.Bytes != msgs*1024 {
		t.Errorf("bytes = %f, want %d", m.Bytes, msgs*1024)
	}
	if m.Hops.Count() != msgs {
		t.Errorf("hop histogram has %d observations, want %d", m.Hops.Count(), msgs)
	}
	// PolarStar has diameter 3: no network path exceeds 3 router hops.
	if m.Hops.Max() > 3 {
		t.Errorf("hop max %d exceeds the diameter bound 3", m.Hops.Max())
	}
	if m.LastDeliveryNS != last {
		t.Errorf("last delivery %f != observed makespan %f", m.LastDeliveryNS, last)
	}
	if m.LinkBusyNS.SpanNS != last {
		t.Errorf("utilization span %f != makespan %f", m.LinkBusyNS.SpanNS, last)
	}
	if got, want := len(m.LinkBusyNS.BusyNS), ps.G.NumChannels(); got != want {
		t.Errorf("busy vector sized %d, want %d channels", got, want)
	}
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatal(err)
	}
	util, ok := tree["link_utilization"].(map[string]any)
	if !ok {
		t.Fatalf("link_utilization missing from %s", data)
	}
	if util["span_ns"].(float64) != last {
		t.Errorf("JSON span %v != %f", util["span_ns"], last)
	}
}

// TestObserveSendAllocFree extends the steady-state guarantee to the
// observed path: telemetry storage is sized once in Observe, so Send
// stays allocation-free with metrics on.
func TestObserveSendAllocFree(t *testing.T) {
	n, ps := testNetwork(true, 23)
	n.Observe(&obs.FlowRun{})
	rng := rand.New(rand.NewSource(7))
	eps := 2 * ps.G.N()
	for i := 0; i < 200; i++ {
		n.Send(rng.Intn(eps), rng.Intn(eps), 1024, float64(i))
	}
	at := 200.0
	allocs := testing.AllocsPerRun(500, func() {
		n.Send(rng.Intn(eps), rng.Intn(eps), 1024, at)
		at++
	})
	if allocs != 0 {
		t.Errorf("observed Send allocates %.1f allocs/op, want 0", allocs)
	}
}
