package flowsim

import (
	"math/rand"
	"testing"

	"polarstar/internal/route"
	"polarstar/internal/topo"
	"polarstar/internal/traffic"
)

func testNetwork(adaptive bool, seed int64) (*Network, *topo.PolarStar) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	p := DefaultParams(seed)
	p.Adaptive = adaptive
	cfg := traffic.Config{Routers: ps.G.N(), PerRouter: 2}
	return New(route.NewPolarStar(ps), cfg, ps.G, nil, p), ps
}

func TestSendPipelinedTiming(t *testing.T) {
	n, _ := testNetwork(false, 1)
	// Endpoints 0 and 3 sit on routers 0 and 1. Distance router 0 -> 1
	// varies; compute expected bounds instead of exact values:
	// time = hops*20ns + serialization once (pipelined).
	bytes := 8192.0 // 2048 ns at 4 B/ns
	tm := n.Send(0, 3, bytes, 0)
	if tm < 2048+2*20 {
		t.Errorf("delivery %f below physical bound", tm)
	}
	if tm > 2048+6*20 {
		t.Errorf("delivery %f above the diameter-3+endpoints bound", tm)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	n, _ := testNetwork(false, 2)
	// Two messages from the same endpoint at the same time must
	// serialize on the injection link.
	t1 := n.Send(0, 50, 4096, 0)
	t2 := n.Send(0, 50, 4096, 0)
	if t2 < t1+1024 {
		t.Errorf("second message (%f) not serialized after first (%f)", t2, t1)
	}
}

func TestAdaptiveAvoidsHotLink(t *testing.T) {
	// Saturate the minimal route's first network link with traffic from a
	// sibling endpoint on the same router, then check that adaptive
	// routing delivers a probe message sooner than oblivious MIN routing
	// (the probe's own injection link is idle in both cases).
	run := func(adaptive bool) float64 {
		n, _ := testNetwork(adaptive, 3)
		for i := 0; i < 20; i++ {
			n.Send(1, 100, 64*1024, 0) // endpoint 1 shares router 0
		}
		// Probe endpoint 101: same destination router (and thus the same
		// congested minimal first link), but its own idle ejection link.
		return n.Send(0, 101, 4096, 0)
	}
	min := run(false)
	ug := run(true)
	if ug >= min {
		t.Errorf("adaptive delivery %f not faster than oblivious %f under contention", ug, min)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := testNetwork(true, 4)
	b, _ := testNetwork(true, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		src, dst := rng.Intn(100), rng.Intn(100)
		if src == dst {
			continue
		}
		ta := a.Send(src, dst, 1024, float64(i))
		tb := b.Send(src, dst, 1024, float64(i))
		if ta != tb {
			t.Fatalf("non-deterministic at %d: %f vs %f", i, ta, tb)
		}
	}
}

func TestConfigAccessor(t *testing.T) {
	n, ps := testNetwork(false, 5)
	if n.Config().Endpoints() != 2*ps.G.N() {
		t.Errorf("endpoints = %d", n.Config().Endpoints())
	}
}
