package flowsim

import (
	"math/rand"
	"testing"

	"polarstar/internal/route"
	"polarstar/internal/topo"
	"polarstar/internal/traffic"
)

// TestSendAllocFree pins the satellite guarantee: after warm-up (path
// buffers grown to capacity), Send performs zero allocations per message
// in both oblivious and adaptive modes.
func TestSendAllocFree(t *testing.T) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{{"MIN", false}, {"UGAL", true}} {
		t.Run(mode.name, func(t *testing.T) {
			n, ps := testNetwork(mode.adaptive, 11)
			rng := rand.New(rand.NewSource(7))
			eps := 2 * ps.G.N()
			// Warm-up: grow pathBuf/candBuf to their steady-state capacity.
			for i := 0; i < 200; i++ {
				n.Send(rng.Intn(eps), rng.Intn(eps), 1024, float64(i))
			}
			at := 200.0
			allocs := testing.AllocsPerRun(500, func() {
				n.Send(rng.Intn(eps), rng.Intn(eps), 1024, at)
				at++
			})
			if allocs != 0 {
				t.Errorf("%s Send allocates %.1f allocs/op in steady state, want 0", mode.name, allocs)
			}
		})
	}
}

func benchSend(b *testing.B, adaptive bool) {
	ps := topo.MustNewPolarStar(7, 4, topo.KindIQ)
	p := DefaultParams(1)
	p.Adaptive = adaptive
	cfg := traffic.Config{Routers: ps.G.N(), PerRouter: 2}
	var mids []int
	if adaptive {
		for v := 0; v < ps.G.N(); v++ {
			mids = append(mids, v)
		}
	}
	n := New(route.NewPolarStar(ps), cfg, ps.G, mids, p)
	rng := rand.New(rand.NewSource(2))
	eps := cfg.Endpoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(rng.Intn(eps), rng.Intn(eps), 4096, float64(i))
	}
}

func BenchmarkFlowsimSendMIN(b *testing.B)  { benchSend(b, false) }
func BenchmarkFlowsimSendUGAL(b *testing.B) { benchSend(b, true) }
