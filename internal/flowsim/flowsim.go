// Package flowsim is the message-level discrete-event simulator behind
// the real-world motif evaluation (§10): the substitute for SST/Merlin.
//
// Messages traverse router paths with pipelined (wormhole-style) link
// occupancy: each link on the path is busy for size/bandwidth, the head
// advances with a fixed per-hop latency, and links serve messages in
// arrival order. The §10 configuration is 4 GB/s links and 20 ns
// router+link latency per hop.
package flowsim

import (
	"math/rand"

	"polarstar/internal/route"
	"polarstar/internal/traffic"
)

// Params configures link bandwidth and latency.
type Params struct {
	BytesPerNS float64 // link bandwidth (paper: 4 GB/s = 4 bytes/ns)
	HopLatNS   float64 // per-hop router+link latency (paper: 20 ns)
	Adaptive   bool    // UGAL-style adaptive path choice
	Samples    int     // Valiant samples when adaptive (paper: 4)
	Seed       int64
}

// DefaultParams mirrors §10.1.
func DefaultParams(seed int64) Params {
	return Params{BytesPerNS: 4, HopLatNS: 20, Samples: 4, Seed: seed}
}

// Network simulates one topology. State (link reservations) persists
// across Send calls, so callers should issue messages in roughly
// non-decreasing send-time order (motif rounds do).
type Network struct {
	p      Params
	engine route.Engine
	mids   []int // Valiant intermediates for adaptive mode (nil: all)
	n      int   // router count
	cfg    traffic.Config
	rng    *rand.Rand

	linkFree map[int64]float64 // directed link (u<<32|v) -> free-at time
	injFree  []float64         // endpoint injection link
	ejFree   []float64         // endpoint ejection link
}

// New builds a network simulator over a routing engine.
func New(engine route.Engine, cfg traffic.Config, numRouters int, mids []int, p Params) *Network {
	if p.Samples <= 0 {
		p.Samples = 4
	}
	return &Network{
		p:        p,
		engine:   engine,
		mids:     mids,
		n:        numRouters,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(p.Seed)),
		linkFree: make(map[int64]float64),
		injFree:  make([]float64, cfg.Endpoints()),
		ejFree:   make([]float64, cfg.Endpoints()),
	}
}

// Config returns the endpoint arrangement.
func (n *Network) Config() traffic.Config { return n.cfg }

func lkey(u, v int) int64 { return int64(u)<<32 | int64(v) }

// pathFor picks the route for a message, adaptively if configured.
func (n *Network) pathFor(srcR, dstR int) []int {
	min := n.engine.Route(srcR, dstR, n.rng)
	if !n.p.Adaptive {
		return min
	}
	score := func(path []int) float64 {
		if len(path) < 2 {
			return 0
		}
		// First-link availability plus serialized hop latency: the
		// flow-level analogue of UGAL-L.
		return n.linkFree[lkey(path[0], path[1])] + float64(len(path)-1)*n.p.HopLatNS
	}
	best, bestScore := min, score(min)
	for s := 0; s < n.p.Samples; s++ {
		var mid int
		if n.mids != nil {
			mid = n.mids[n.rng.Intn(len(n.mids))]
		} else {
			mid = n.rng.Intn(n.n)
		}
		if mid == srcR || mid == dstR {
			continue
		}
		a := n.engine.Route(srcR, mid, n.rng)
		b := n.engine.Route(mid, dstR, n.rng)
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		cand := append(append(make([]int, 0, len(a)+len(b)-1), a...), b[1:]...)
		if sc := score(cand); sc < bestScore {
			best, bestScore = cand, sc
		}
	}
	return best
}

// Send injects a message of the given size from srcEP to dstEP at time
// `at` (ns) and returns its delivery time.
func (n *Network) Send(srcEP, dstEP int, bytes float64, at float64) float64 {
	ser := bytes / n.p.BytesPerNS
	// Injection link.
	start := at
	if f := n.injFree[srcEP]; f > start {
		start = f
	}
	n.injFree[srcEP] = start + ser
	head := start + n.p.HopLatNS

	srcR, dstR := n.cfg.RouterOf(srcEP), n.cfg.RouterOf(dstEP)
	if srcR != dstR {
		for _, hop := range pathPairs(n.pathFor(srcR, dstR)) {
			k := lkey(hop[0], hop[1])
			s := head
			if f := n.linkFree[k]; f > s {
				s = f
			}
			n.linkFree[k] = s + ser
			head = s + n.p.HopLatNS
		}
	}
	// Ejection link.
	s := head
	if f := n.ejFree[dstEP]; f > s {
		s = f
	}
	n.ejFree[dstEP] = s + ser
	return s + n.p.HopLatNS + ser
}

func pathPairs(path []int) [][2]int {
	out := make([][2]int, 0, len(path))
	for i := 0; i+1 < len(path); i++ {
		out = append(out, [2]int{path[i], path[i+1]})
	}
	return out
}
