// Package flowsim is the message-level discrete-event simulator behind
// the real-world motif evaluation (§10): the substitute for SST/Merlin.
//
// Messages traverse router paths with pipelined (wormhole-style) link
// occupancy: each link on the path is busy for size/bandwidth, the head
// advances with a fixed per-hop latency, and links serve messages in
// arrival order. The §10 configuration is 4 GB/s links and 20 ns
// router+link latency per hop.
//
// The per-message hot path is allocation-free in steady state: routes
// are appended through route.Engine.AppendPath into reusable buffers,
// and per-link reservation state is a dense array indexed by the CSR
// channel id of each directed arc (graph.ChannelID) instead of a
// map[int64]float64 — the same discipline as the cycle simulator.
package flowsim

import (
	"math/rand"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
	"polarstar/internal/route"
	"polarstar/internal/traffic"
)

// Params configures link bandwidth and latency.
type Params struct {
	BytesPerNS float64 // link bandwidth (paper: 4 GB/s = 4 bytes/ns)
	HopLatNS   float64 // per-hop router+link latency (paper: 20 ns)
	Adaptive   bool    // UGAL-style adaptive path choice
	Samples    int     // Valiant samples when adaptive (paper: 4)
	Seed       int64
}

// DefaultParams mirrors §10.1.
func DefaultParams(seed int64) Params {
	return Params{BytesPerNS: 4, HopLatNS: 20, Samples: 4, Seed: seed}
}

// Network simulates one topology. State (link reservations) persists
// across Send calls, so callers should issue messages in roughly
// non-decreasing send-time order (motif rounds do).
type Network struct {
	p      Params
	engine route.Engine
	g      *graph.Graph
	mids   []int // Valiant intermediates for adaptive mode (nil: all)
	n      int   // router count
	cfg    traffic.Config
	rng    *rand.Rand

	linkFree []float64 // directed channel id -> free-at time
	injFree  []float64 // endpoint injection link
	ejFree   []float64 // endpoint ejection link

	pathBuf []int // reusable buffer holding the chosen path
	candBuf []int // reusable buffer for adaptive candidates

	met *obs.FlowRun // optional telemetry sink (nil: off)
}

// New builds a network simulator over a routing engine. g is the router
// graph the engine routes on; its channel ids key the per-link state.
func New(engine route.Engine, cfg traffic.Config, g *graph.Graph, mids []int, p Params) *Network {
	if p.Samples <= 0 {
		p.Samples = 4
	}
	return &Network{
		p:        p,
		engine:   engine,
		g:        g,
		mids:     mids,
		n:        g.N(),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(p.Seed)),
		linkFree: make([]float64, g.NumChannels()),
		injFree:  make([]float64, cfg.Endpoints()),
		ejFree:   make([]float64, cfg.Endpoints()),
	}
}

// Config returns the endpoint arrangement.
func (n *Network) Config() traffic.Config { return n.cfg }

// Observe attaches a telemetry sink: every subsequent Send updates the
// message/byte counters, the hop histogram and the per-link busy-time
// vector of m. The vector is sized here, once, so the per-Send record
// path stays allocation-free; collection never touches the RNG or the
// reservation state, so delivery times are identical with or without it.
func (n *Network) Observe(m *obs.FlowRun) {
	if m.LinkBusyNS.BusyNS == nil {
		m.LinkBusyNS.BusyNS = make([]float64, n.g.NumChannels())
	}
	n.met = m
}

// score is the UGAL-L path metric: first-link availability plus
// serialized hop latency (the flow-level analogue of queue depth).
func (n *Network) score(path []int) float64 {
	if len(path) < 2 {
		return 0
	}
	return n.linkFree[n.g.ChannelID(path[0], path[1])] + float64(len(path)-1)*n.p.HopLatNS
}

// pathFor picks the route for a message, adaptively if configured. The
// returned slice aliases a reusable buffer valid until the next call.
func (n *Network) pathFor(srcR, dstR int) []int {
	best := n.engine.AppendPath(n.pathBuf[:0], srcR, dstR, n.rng)
	n.pathBuf = best
	if !n.p.Adaptive {
		return best
	}
	bestScore := n.score(best)
	cand := n.candBuf
	for s := 0; s < n.p.Samples; s++ {
		var mid int
		if n.mids != nil {
			mid = n.mids[n.rng.Intn(len(n.mids))]
		} else {
			mid = n.rng.Intn(n.n)
		}
		if mid == srcR || mid == dstR {
			continue
		}
		// Both legs are routed before feasibility is checked so the RNG
		// advances exactly as the historical Route-based implementation.
		cand = n.engine.AppendPath(cand[:0], srcR, mid, n.rng)
		legA := len(cand)
		cand = n.engine.AppendPath(cand, mid, dstR, n.rng)
		if legA == 0 || len(cand) == legA {
			continue
		}
		// Join the legs: drop the duplicated intermediate.
		copy(cand[legA:], cand[legA+1:])
		cand = cand[:len(cand)-1]
		if sc := n.score(cand); sc < bestScore {
			best, cand = cand, best
			bestScore = sc
		}
	}
	n.pathBuf, n.candBuf = best, cand
	return best
}

// Send injects a message of the given size from srcEP to dstEP at time
// `at` (ns) and returns its delivery time.
func (n *Network) Send(srcEP, dstEP int, bytes float64, at float64) float64 {
	ser := bytes / n.p.BytesPerNS
	// Injection link.
	start := at
	if f := n.injFree[srcEP]; f > start {
		start = f
	}
	n.injFree[srcEP] = start + ser
	head := start + n.p.HopLatNS

	srcR, dstR := n.cfg.RouterOf(srcEP), n.cfg.RouterOf(dstEP)
	hops := 0
	if srcR != dstR {
		path := n.pathFor(srcR, dstR)
		hops = len(path) - 1
		for i := 0; i+1 < len(path); i++ {
			c := n.g.ChannelID(path[i], path[i+1])
			s := head
			if f := n.linkFree[c]; f > s {
				s = f
			}
			n.linkFree[c] = s + ser
			head = s + n.p.HopLatNS
			if n.met != nil {
				n.met.LinkBusyNS.Add(c, ser)
			}
		}
	}
	// Ejection link.
	s := head
	if f := n.ejFree[dstEP]; f > s {
		s = f
	}
	n.ejFree[dstEP] = s + ser
	done := s + n.p.HopLatNS + ser
	if m := n.met; m != nil {
		m.Messages.Inc()
		m.Bytes += bytes
		m.Hops.Observe(int64(hops))
		m.InjBusyNS += ser
		m.EjBusyNS += ser
		if done > m.LastDeliveryNS {
			m.LastDeliveryNS = done
			// The utilization denominator tracks the makespan as it grows.
			m.LinkBusyNS.SpanNS = done
		}
	}
	return done
}
