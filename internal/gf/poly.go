package gf

// Polynomials over GF(p) are coefficient slices, low degree first.
// They are the machinery behind extension-field construction and are
// normalized so the leading coefficient is non-zero (the zero polynomial
// is the empty slice).

type poly []int

func polyTrim(a poly) poly {
	for len(a) > 0 && a[len(a)-1] == 0 {
		a = a[:len(a)-1]
	}
	return a
}

func polyDeg(a poly) int { return len(a) - 1 } // zero poly has degree -1

func polyAdd(a, b poly, p int) poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(poly, n)
	for i := range out {
		var av, bv int
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		out[i] = (av + bv) % p
	}
	return polyTrim(out)
}

func polyMul(a, b poly, p int) poly {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(poly, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] = (out[i+j] + av*bv) % p
		}
	}
	return polyTrim(out)
}

// polyMod returns a mod m over GF(p). m must be non-zero.
func polyMod(a, m poly, p int) poly {
	a = append(poly(nil), a...)
	a = polyTrim(a)
	dm := polyDeg(m)
	lcInv := modInverse(m[dm], p)
	for polyDeg(a) >= dm {
		da := polyDeg(a)
		factor := a[da] * lcInv % p
		shift := da - dm
		for i, mv := range m {
			a[i+shift] = ((a[i+shift]-factor*mv)%p + p*p) % p
		}
		a = polyTrim(a)
	}
	return a
}

// modInverse returns x^-1 mod p for prime p and x != 0 mod p.
func modInverse(x, p int) int {
	x %= p
	if x < 0 {
		x += p
	}
	// Fermat: x^(p-2) mod p.
	return modPow(x, p-2, p)
}

func modPow(base, exp, mod int) int {
	result := 1
	base %= mod
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % mod
		}
		base = base * base % mod
		exp >>= 1
	}
	return result
}

// findIrreducible returns a monic irreducible polynomial of degree k over
// GF(p). For k == 1 it returns x (which is enough to make reduction a no-op
// for prime fields). The search enumerates monic polynomials in index order,
// so the result is deterministic.
func findIrreducible(p, k int) poly {
	if k == 1 {
		return poly{0, 1} // x
	}
	// Enumerate monic degree-k polynomials: k free coefficients in [0,p).
	total := 1
	for i := 0; i < k; i++ {
		total *= p
	}
	for idx := 0; idx < total; idx++ {
		f := make(poly, k+1)
		rem := idx
		for i := 0; i < k; i++ {
			f[i] = rem % p
			rem /= p
		}
		f[k] = 1
		if polyIrreducible(f, p) {
			return f
		}
	}
	panic("gf: no irreducible polynomial found") // unreachable for prime p
}

// polyIrreducible tests irreducibility of monic f over GF(p) by trial
// division with all monic polynomials of degree 1..deg(f)/2.
func polyIrreducible(f poly, p int) bool {
	df := polyDeg(f)
	if df <= 0 {
		return false
	}
	if df == 1 {
		return true
	}
	if f[0] == 0 { // divisible by x
		return false
	}
	for d := 1; 2*d <= df; d++ {
		total := 1
		for i := 0; i < d; i++ {
			total *= p
		}
		for idx := 0; idx < total; idx++ {
			g := make(poly, d+1)
			rem := idx
			for i := 0; i < d; i++ {
				g[i] = rem % p
				rem /= p
			}
			g[d] = 1
			if len(polyMod(f, g, p)) == 0 {
				return false
			}
		}
	}
	return true
}
