// Package gf implements arithmetic in finite fields GF(q) for prime-power
// order q. It is the algebraic substrate for the Erdős–Rényi polarity
// graphs, Paley graphs and McKay–Miller–Širáň graphs used throughout the
// PolarStar reproduction.
//
// Field elements are represented as integers in [0, q). For an extension
// field GF(p^k) the integer x encodes the coefficient vector of a degree
// < k polynomial over GF(p) in base p: x = c0 + c1*p + ... + c(k-1)*p^(k-1).
// Element 0 is the additive identity and element 1 the multiplicative one.
//
// Fields up to order 4096 precompute full multiplication and inverse
// tables, making the per-operation cost a single slice lookup; that covers
// every configuration in the paper (network radix <= 128 implies q <= 127).
package gf

import "fmt"

// tableLimit is the largest field order for which full q×q operation tables
// are precomputed.
const tableLimit = 4096

// Field is an immutable finite field GF(q), safe for concurrent use.
type Field struct {
	q, p, k int
	irr     poly // monic irreducible polynomial of degree k over GF(p)

	add []int // q*q addition table
	mul []int // q*q multiplication table
	neg []int // additive inverses
	inv []int // multiplicative inverses (inv[0] unused)

	gen      int    // a multiplicative generator (primitive element)
	logTab   []int  // discrete log base gen (logTab[0] unused)
	expTab   []int  // gen^i for i in [0, q-1)
	residues []bool // residues[x]: x is a non-zero square
}

// New constructs GF(q). It returns an error when q is not a prime power or
// exceeds the supported table size.
func New(q int) (*Field, error) {
	p, k, ok := PrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: order %d is not a prime power", q)
	}
	if q > tableLimit {
		return nil, fmt.Errorf("gf: order %d exceeds supported limit %d", q, tableLimit)
	}
	f := &Field{q: q, p: p, k: k, irr: findIrreducible(p, k)}
	f.buildTables()
	return f, nil
}

// MustNew is New but panics on error. Intended for constructions whose
// parameters were already validated.
func MustNew(q int) *Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// Q returns the field order.
func (f *Field) Q() int { return f.q }

// P returns the field characteristic.
func (f *Field) P() int { return f.p }

// K returns the extension degree, so Q == P^K.
func (f *Field) K() int { return f.k }

// Add returns a+b.
func (f *Field) Add(a, b int) int { return f.add[a*f.q+b] }

// Sub returns a-b.
func (f *Field) Sub(a, b int) int { return f.add[a*f.q+f.neg[b]] }

// Neg returns -a.
func (f *Field) Neg(a int) int { return f.neg[a] }

// Mul returns a*b.
func (f *Field) Mul(a, b int) int { return f.mul[a*f.q+b] }

// Inv returns a^-1. It panics when a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.inv[a]
}

// Div returns a/b. It panics when b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Pow returns a^n for n >= 0, with Pow(0, 0) == 1.
func (f *Field) Pow(a, n int) int {
	result := 1
	for n > 0 {
		if n&1 == 1 {
			result = f.Mul(result, a)
		}
		a = f.Mul(a, a)
		n >>= 1
	}
	return result
}

// Generator returns a primitive element: a generator of the multiplicative
// group GF(q)*.
func (f *Field) Generator() int { return f.gen }

// Log returns the discrete logarithm of a base Generator(). Panics on 0.
func (f *Field) Log(a int) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return f.logTab[a]
}

// Exp returns Generator()^i for i >= 0.
func (f *Field) Exp(i int) int { return f.expTab[i%(f.q-1)] }

// IsResidue reports whether non-zero x is a quadratic residue (a square of
// a non-zero element). For even characteristic every non-zero element is a
// square. IsResidue(0) is false.
func (f *Field) IsResidue(x int) bool { return x != 0 && f.residues[x] }

// Residues returns the non-zero quadratic residues in increasing order.
func (f *Field) Residues() []int {
	var out []int
	for x := 1; x < f.q; x++ {
		if f.residues[x] {
			out = append(out, x)
		}
	}
	return out
}

// NonResidues returns the non-zero quadratic non-residues in increasing order.
func (f *Field) NonResidues() []int {
	var out []int
	for x := 1; x < f.q; x++ {
		if !f.residues[x] {
			out = append(out, x)
		}
	}
	return out
}

// Dot returns the dot product of equal-length vectors u and v over the field.
func (f *Field) Dot(u, v []int) int {
	if len(u) != len(v) {
		panic("gf: dot product of vectors with different lengths")
	}
	s := 0
	for i := range u {
		s = f.Add(s, f.Mul(u[i], v[i]))
	}
	return s
}

// buildTables populates the full operation tables. Construction does the
// polynomial arithmetic once; all subsequent operations are table lookups.
func (f *Field) buildTables() {
	q, p, k := f.q, f.p, f.k

	toPoly := func(x int) poly {
		c := make(poly, k)
		for i := 0; i < k; i++ {
			c[i] = x % p
			x /= p
		}
		return polyTrim(c)
	}
	fromPoly := func(a poly) int {
		x, mult := 0, 1
		for i := 0; i < k; i++ {
			if i < len(a) {
				x += a[i] * mult
			}
			mult *= p
		}
		return x
	}

	f.add = make([]int, q*q)
	f.mul = make([]int, q*q)
	f.neg = make([]int, q)
	polys := make([]poly, q)
	for x := 0; x < q; x++ {
		polys[x] = toPoly(x)
	}
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			s := fromPoly(polyAdd(polys[a], polys[b], p))
			f.add[a*q+b] = s
			f.add[b*q+a] = s
			m := fromPoly(polyMod(polyMul(polys[a], polys[b], p), f.irr, p))
			f.mul[a*q+b] = m
			f.mul[b*q+a] = m
			if s == 0 {
				f.neg[a] = b
				f.neg[b] = a
			}
		}
	}

	f.inv = make([]int, q)
	for a := 1; a < q; a++ {
		if f.inv[a] != 0 {
			continue
		}
		for b := 1; b < q; b++ {
			if f.mul[a*q+b] == 1 {
				f.inv[a] = b
				f.inv[b] = a
				break
			}
		}
	}

	// Find a generator: an element of multiplicative order q-1.
	f.logTab = make([]int, q)
	f.expTab = make([]int, q-1)
	for cand := 1; cand < q; cand++ {
		if f.multiplicativeOrder(cand) == q-1 {
			f.gen = cand
			break
		}
	}
	x := 1
	for i := 0; i < q-1; i++ {
		f.expTab[i] = x
		f.logTab[x] = i
		x = f.mul[x*q+f.gen]
	}

	f.residues = make([]bool, q)
	for x := 1; x < q; x++ {
		f.residues[f.mul[x*q+x]] = true
	}
}

func (f *Field) multiplicativeOrder(a int) int {
	x, n := a, 1
	for x != 1 {
		x = f.mul[x*f.q+a]
		n++
		if n > f.q {
			panic("gf: runaway order computation")
		}
	}
	return n
}
