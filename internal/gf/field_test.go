package gf

import (
	"testing"
	"testing/quick"
)

func TestPrimePower(t *testing.T) {
	cases := []struct {
		q, p, k int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {5, 5, 1, true},
		{6, 0, 0, false}, {7, 7, 1, true}, {8, 2, 3, true}, {9, 3, 2, true},
		{10, 0, 0, false}, {12, 0, 0, false}, {16, 2, 4, true},
		{25, 5, 2, true}, {27, 3, 3, true}, {32, 2, 5, true},
		{36, 0, 0, false}, {49, 7, 2, true}, {64, 2, 6, true},
		{81, 3, 4, true}, {121, 11, 2, true}, {125, 5, 3, true},
		{128, 2, 7, true}, {1, 0, 0, false}, {0, 0, 0, false},
	}
	for _, c := range cases {
		p, k, ok := PrimePower(c.q)
		if ok != c.ok || p != c.p || k != c.k {
			t.Errorf("PrimePower(%d) = (%d,%d,%v), want (%d,%d,%v)", c.q, p, k, ok, c.p, c.k, c.ok)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 4: false, 5: true, 9: false, 13: true, 91: false, 97: true, 1: false, 0: false}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPrimePowersUpTo(t *testing.T) {
	got := PrimePowersUpTo(16)
	want := []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16}
	if len(got) != len(want) {
		t.Fatalf("PrimePowersUpTo(16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimePowersUpTo(16) = %v, want %v", got, want)
		}
	}
}

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 100} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) succeeded, want error", q)
		}
	}
}

// fieldOrders covers prime fields, even-characteristic extensions and odd
// extensions, matching the q values that appear in paper configurations.
var fieldOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32, 49, 64, 81}

func TestFieldAxioms(t *testing.T) {
	for _, q := range fieldOrders {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			if f.Add(a, 0) != a {
				t.Fatalf("GF(%d): %d+0 != %d", q, a, a)
			}
			if f.Mul(a, 1) != a {
				t.Fatalf("GF(%d): %d*1 != %d", q, a, a)
			}
			if f.Add(a, f.Neg(a)) != 0 {
				t.Fatalf("GF(%d): %d + (-%d) != 0", q, a, a)
			}
			if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
				t.Fatalf("GF(%d): %d * %d^-1 != 1", q, a, a)
			}
			for b := 0; b < q; b++ {
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("GF(%d): addition not commutative at (%d,%d)", q, a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("GF(%d): multiplication not commutative at (%d,%d)", q, a, b)
				}
			}
		}
	}
}

func TestFieldAssociativityAndDistributivity(t *testing.T) {
	// Exhaustive on small fields, sampled on larger ones via quick.
	for _, q := range []int{4, 5, 8, 9} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				for c := 0; c < q; c++ {
					if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
						t.Fatalf("GF(%d): addition not associative at (%d,%d,%d)", q, a, b, c)
					}
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("GF(%d): multiplication not associative at (%d,%d,%d)", q, a, b, c)
					}
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("GF(%d): not distributive at (%d,%d,%d)", q, a, b, c)
					}
				}
			}
		}
	}

	f := MustNew(81)
	prop := func(a, b, c uint8) bool {
		x, y, z := int(a)%81, int(b)%81, int(c)%81
		return f.Mul(x, f.Add(y, z)) == f.Add(f.Mul(x, y), f.Mul(x, z)) &&
			f.Mul(f.Mul(x, y), z) == f.Mul(x, f.Mul(y, z))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("GF(81) distributivity/associativity: %v", err)
	}
}

func TestGeneratorOrder(t *testing.T) {
	for _, q := range fieldOrders {
		f := MustNew(q)
		g := f.Generator()
		seen := make(map[int]bool)
		x := 1
		for i := 0; i < q-1; i++ {
			if seen[x] {
				t.Fatalf("GF(%d): generator %d has order < q-1", q, g)
			}
			seen[x] = true
			x = f.Mul(x, g)
		}
		if x != 1 {
			t.Fatalf("GF(%d): generator %d: g^(q-1) != 1", q, g)
		}
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for _, q := range fieldOrders {
		f := MustNew(q)
		for a := 1; a < q; a++ {
			if f.Exp(f.Log(a)) != a {
				t.Fatalf("GF(%d): Exp(Log(%d)) != %d", q, a, a)
			}
		}
	}
}

func TestResidueCounts(t *testing.T) {
	for _, q := range fieldOrders {
		f := MustNew(q)
		n := len(f.Residues())
		want := (q - 1) / 2
		if q%2 == 0 {
			want = q - 1 // every non-zero element is a square in even characteristic
		}
		if n != want {
			t.Errorf("GF(%d): %d residues, want %d", q, n, want)
		}
	}
}

func TestResiduesMultiplicative(t *testing.T) {
	// Product of two non-residues is a residue in odd characteristic.
	for _, q := range []int{5, 7, 9, 11, 13, 25, 27} {
		f := MustNew(q)
		nr := f.NonResidues()
		for _, a := range nr {
			for _, b := range nr {
				if !f.IsResidue(f.Mul(a, b)) {
					t.Fatalf("GF(%d): product of non-residues %d*%d not a residue", q, a, b)
				}
			}
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := MustNew(27)
	for a := 0; a < 27; a++ {
		x := 1
		for n := 0; n < 30; n++ {
			if got := f.Pow(a, n); got != x {
				t.Fatalf("GF(27): Pow(%d,%d) = %d, want %d", a, n, got, x)
			}
			x = f.Mul(x, a)
		}
	}
}

func TestDot(t *testing.T) {
	f := MustNew(5)
	// (1,2,3)·(4,0,2) = 4 + 0 + 6 = 10 = 0 mod 5
	if got := f.Dot([]int{1, 2, 3}, []int{4, 0, 2}); got != 0 {
		t.Errorf("Dot = %d, want 0", got)
	}
	if got := f.Dot([]int{1, 1}, []int{2, 2}); got != 4 {
		t.Errorf("Dot = %d, want 4", got)
	}
}

func TestGF4Structure(t *testing.T) {
	// GF(4) = {0,1,w,w+1} with w^2 = w+1 for the canonical irreducible
	// x^2+x+1. Check characteristic-2 facts: a+a=0, Frobenius is a
	// field automorphism.
	f := MustNew(4)
	for a := 0; a < 4; a++ {
		if f.Add(a, a) != 0 {
			t.Errorf("GF(4): %d+%d != 0", a, a)
		}
		for b := 0; b < 4; b++ {
			lhs := f.Mul(f.Add(a, b), f.Add(a, b))
			rhs := f.Add(f.Mul(a, a), f.Mul(b, b))
			if lhs != rhs {
				t.Errorf("GF(4): Frobenius not additive at (%d,%d)", a, b)
			}
		}
	}
}

func TestSubDiv(t *testing.T) {
	for _, q := range []int{7, 8, 9} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Add(f.Sub(a, b), b) != a {
					t.Fatalf("GF(%d): (a-b)+b != a at (%d,%d)", q, a, b)
				}
				if b != 0 && f.Mul(f.Div(a, b), b) != a {
					t.Fatalf("GF(%d): (a/b)*b != a at (%d,%d)", q, a, b)
				}
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := MustNew(5)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}
