package gf

// IsPrime reports whether n is a prime number.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// PrimePower decomposes q as p^k for a prime p and k >= 1.
// ok is false when q is not a prime power.
func PrimePower(q int) (p, k int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	// Find the smallest prime factor; q is a prime power iff it is the only one.
	p = smallestPrimeFactor(q)
	n := q
	for n%p == 0 {
		n /= p
		k++
	}
	if n != 1 {
		return 0, 0, false
	}
	return p, k, true
}

// IsPrimePower reports whether q = p^k for some prime p and k >= 1.
func IsPrimePower(q int) bool {
	_, _, ok := PrimePower(q)
	return ok
}

// PrimePowersUpTo returns all prime powers in [2, n] in increasing order.
func PrimePowersUpTo(n int) []int {
	var out []int
	for q := 2; q <= n; q++ {
		if IsPrimePower(q) {
			out = append(out, q)
		}
	}
	return out
}

// PrimesUpTo returns all primes in [2, n] in increasing order.
func PrimesUpTo(n int) []int {
	var out []int
	for q := 2; q <= n; q++ {
		if IsPrime(q) {
			out = append(out, q)
		}
	}
	return out
}

func smallestPrimeFactor(n int) int {
	if n%2 == 0 {
		return 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return d
		}
	}
	return n
}
