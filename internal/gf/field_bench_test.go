package gf

import "testing"

func BenchmarkNewField(b *testing.B) {
	for _, q := range []int{81, 128} {
		b.Run(fieldName(q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MustNew(q)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustNew(81)
	b.ReportAllocs()
	x := 1
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, 7) | 1
	}
	sink = x
}

func BenchmarkDot3(b *testing.B) {
	f := MustNew(11)
	u, v := []int{3, 7, 1}, []int{2, 9, 4}
	b.ReportAllocs()
	x := 0
	for i := 0; i < b.N; i++ {
		x += f.Dot(u, v)
	}
	sink = x
}

var sink int

func fieldName(q int) string {
	return map[int]string{81: "GF(81)", 128: "GF(128)"}[q]
}
