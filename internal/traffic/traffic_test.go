package traffic

import (
	"math/rand"
	"testing"
)

func TestUniform(t *testing.T) {
	c := Config{Routers: 10, PerRouter: 4}
	u := Uniform{C: c}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, c.Endpoints())
	for i := 0; i < 40000; i++ {
		d := u.Dest(7, rng)
		if d == 7 || d < 0 || d >= c.Endpoints() {
			t.Fatalf("bad destination %d", d)
		}
		counts[d]++
	}
	// Roughly uniform over the other 39 endpoints.
	for ep, n := range counts {
		if ep == 7 {
			continue
		}
		if n < 700 || n > 1400 {
			t.Errorf("endpoint %d hit %d times, expected ~1025", ep, n)
		}
	}
}

func TestPermutationIsFixedAndComplete(t *testing.T) {
	c := Config{Routers: 12, PerRouter: 3}
	p := NewPermutation(c, 42)
	seen := map[int]bool{}
	for src := 0; src < c.Endpoints(); src++ {
		d := p.Dest(src, nil)
		if d2 := p.Dest(src, nil); d2 != d {
			t.Fatal("permutation not fixed")
		}
		if c.HostIndexOf(d) == c.HostIndexOf(src) {
			t.Fatalf("endpoint %d maps to its own host", src)
		}
		if d%c.PerRouter != src%c.PerRouter {
			t.Fatalf("local index not preserved: %d -> %d", src, d)
		}
		seen[d] = true
	}
	if len(seen) != c.Endpoints() {
		t.Errorf("permutation not a bijection: %d images", len(seen))
	}
}

func TestPermutationNoFixedPointsManySeeds(t *testing.T) {
	c := Config{Routers: 9, PerRouter: 1}
	for seed := int64(0); seed < 50; seed++ {
		p := NewPermutation(c, seed)
		for src := 0; src < c.Endpoints(); src++ {
			if p.Dest(src, nil) == src {
				t.Fatalf("seed %d: fixed point at %d", seed, src)
			}
		}
	}
}

func TestBitShuffle(t *testing.T) {
	c := Config{Routers: 10, PerRouter: 4} // 40 endpoints -> b = 5 (32 active)
	s := NewBitShuffle(c)
	// d = rotate-left(src) within 5 bits: src=0b00001 -> 0b00010.
	if d := s.Dest(1, nil); d != 2 {
		t.Errorf("Dest(1) = %d, want 2", d)
	}
	// src=0b10000 -> 0b00001.
	if d := s.Dest(16, nil); d != 1 {
		t.Errorf("Dest(16) = %d, want 1", d)
	}
	// Endpoints beyond the power-of-two block idle.
	if d := s.Dest(33, nil); d != -1 {
		t.Errorf("Dest(33) = %d, want -1", d)
	}
	// Fixed points (all-zeros, all-ones) are idle.
	if d := s.Dest(0, nil); d != -1 {
		t.Errorf("Dest(0) = %d, want -1", d)
	}
	if d := s.Dest(31, nil); d != -1 {
		t.Errorf("Dest(31) = %d, want -1", d)
	}
	// Shuffle is a bijection on the non-fixed points.
	seen := map[int]bool{}
	for src := 0; src < 32; src++ {
		if d := s.Dest(src, nil); d >= 0 {
			if seen[d] {
				t.Fatalf("duplicate image %d", d)
			}
			seen[d] = true
		}
	}
}

func TestBitReverse(t *testing.T) {
	c := Config{Routers: 16, PerRouter: 1} // b = 4
	r := NewBitReverse(c)
	// 0b0001 -> 0b1000.
	if d := r.Dest(1, nil); d != 8 {
		t.Errorf("Dest(1) = %d, want 8", d)
	}
	// Palindromes are idle.
	if d := r.Dest(9, nil); d != -1 { // 0b1001 reversed is itself
		t.Errorf("Dest(9) = %d, want -1", d)
	}
	// Involution: reverse twice is identity.
	for src := 0; src < 16; src++ {
		d := r.Dest(src, nil)
		if d >= 0 && r.Dest(d, nil) != src {
			t.Fatalf("bit reverse not involutive at %d", src)
		}
	}
}

func TestAdversarial(t *testing.T) {
	// 6 routers in 3 groups of 2, 2 endpoints each; distances via a
	// simple metric: |a-b|.
	c := Config{Routers: 6, PerRouter: 2}
	groupOf := func(r int) int { return r / 2 }
	dist := func(a, b int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d
	}
	a := NewAdversarial(c, 3, groupOf, dist)
	for src := 0; src < c.Endpoints(); src++ {
		d := a.Dest(src, nil)
		sg := groupOf(c.RouterOf(src))
		dg := groupOf(c.RouterOf(d))
		if dg != (sg+1)%3 {
			t.Fatalf("endpoint %d: group %d -> %d, want %d", src, sg, dg, (sg+1)%3)
		}
		if d%c.PerRouter != src%c.PerRouter {
			t.Fatalf("local index not preserved")
		}
	}
	// Router 0 (group 0) must target the farther router of group 1,
	// which is router 3.
	if got := c.RouterOf(a.Dest(0, nil)); got != 3 {
		t.Errorf("router 0 targets %d, want 3", got)
	}
}

func TestByName(t *testing.T) {
	c := Config{Routers: 8, PerRouter: 2}
	groupOf := func(r int) int { return r / 2 }
	dist := func(a, b int) int { return 1 }
	for _, name := range []string{"uniform", "permutation", "bitshuffle", "bitreverse", "adversarial"} {
		p, err := ByName(name, c, 4, groupOf, dist, 1)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope", c, 4, groupOf, dist, 1); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestConfigWithHosts(t *testing.T) {
	c := Config{Routers: 9, PerRouter: 2, Hosts: []int{0, 3, 6}}
	if c.Endpoints() != 6 || c.NumHosts() != 3 {
		t.Fatalf("endpoints=%d hosts=%d", c.Endpoints(), c.NumHosts())
	}
	if c.RouterOf(0) != 0 || c.RouterOf(2) != 3 || c.RouterOf(5) != 6 {
		t.Error("RouterOf with explicit hosts wrong")
	}
}
