// Package traffic implements the synthetic traffic patterns of §9.4 and
// the adversarial pattern of §9.6. Patterns map source endpoints to
// destination endpoints; endpoints are numbered contiguously per router
// (endpoint e lives on router e / PerRouter), matching the paper's
// endpoint-ID assignment for hierarchical topologies.
package traffic

import (
	"fmt"
	"math/rand"
)

// Config describes the endpoint arrangement of a simulated network.
// Endpoints are numbered contiguously per hosting switch: endpoint e
// lives on host block e / PerRouter. Direct networks host endpoints on
// every switch (Hosts == nil); indirect ones (fat-tree, Megafly) list
// their leaf switches explicitly.
type Config struct {
	Routers   int   // number of switches
	PerRouter int   // endpoints per hosting switch (p)
	Hosts     []int // hosting switches in endpoint order (nil: all switches)
}

// NumHosts returns the number of endpoint-hosting switches.
func (c Config) NumHosts() int {
	if c.Hosts != nil {
		return len(c.Hosts)
	}
	return c.Routers
}

// Endpoints returns the total endpoint count.
func (c Config) Endpoints() int { return c.NumHosts() * c.PerRouter }

// RouterOf returns the switch hosting endpoint e.
func (c Config) RouterOf(e int) int {
	h := e / c.PerRouter
	if c.Hosts != nil {
		return c.Hosts[h]
	}
	return h
}

// HostIndexOf returns the host-block index of endpoint e.
func (c Config) HostIndexOf(e int) int { return e / c.PerRouter }

// Pattern maps each source endpoint to a destination endpoint.
type Pattern interface {
	Name() string
	// Dest returns the destination endpoint for a packet from src, or -1
	// when src does not participate in the pattern (it stays idle).
	Dest(src int, rng *rand.Rand) int
}

// FixedPattern is implemented by patterns whose source→destination map is
// fixed for the whole run (everything except Uniform). The simulator uses
// it to pre-validate reachability of every pair the pattern will address,
// failing fast instead of injecting packets that can never drain.
type FixedPattern interface {
	Pattern
	// FixedDest returns the destination endpoint src will always send to,
	// or -1 when src stays idle.
	FixedDest(src int) int
}

// Uniform is uniform-random traffic: every packet picks an independent
// uniformly random destination endpoint other than the source.
type Uniform struct{ C Config }

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *rand.Rand) int {
	n := u.C.Endpoints()
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Permutation is random-permutation traffic: a fixed random permutation τ
// of endpoint-hosting switches; endpoint (h, l) sends only to endpoint
// (τ(h), l) (§9.4).
type Permutation struct {
	C    Config
	perm []int
}

// NewPermutation draws the host permutation from the seed. Fixed points
// are displaced so no host talks to itself (when more than one exists).
func NewPermutation(c Config, seed int64) *Permutation {
	rng := rand.New(rand.NewSource(seed))
	n := c.NumHosts()
	perm := rng.Perm(n)
	// Kick out fixed points with a cyclic shift among them.
	var fixed []int
	for r, t := range perm {
		if r == t {
			fixed = append(fixed, r)
		}
	}
	if len(fixed) == 1 && n > 1 {
		other := (fixed[0] + 1) % n
		perm[fixed[0]], perm[other] = perm[other], perm[fixed[0]]
	} else {
		for i := range fixed {
			perm[fixed[i]] = fixed[(i+1)%len(fixed)]
		}
	}
	return &Permutation{C: c, perm: perm}
}

// Name implements Pattern.
func (p *Permutation) Name() string { return "permutation" }

// Dest implements Pattern.
func (p *Permutation) Dest(src int, _ *rand.Rand) int {
	h, l := src/p.C.PerRouter, src%p.C.PerRouter
	return p.perm[h]*p.C.PerRouter + l
}

// FixedDest implements FixedPattern.
func (p *Permutation) FixedDest(src int) int { return p.Dest(src, nil) }

// bitPattern is the shared machinery of BitShuffle and BitReverse: the
// pattern runs on the largest power-of-two block of endpoints (§9.4);
// endpoints beyond 2^b stay idle.
type bitPattern struct {
	C    Config
	bits int
}

func newBitPattern(c Config) bitPattern {
	b := 0
	for (1 << (b + 1)) <= c.Endpoints() {
		b++
	}
	return bitPattern{C: c, bits: b}
}

// BitShuffle shifts the endpoint address bits left by one:
// d_i = s_{(i-1) mod b}.
type BitShuffle struct{ bitPattern }

// NewBitShuffle builds the pattern for the given config.
func NewBitShuffle(c Config) *BitShuffle { return &BitShuffle{newBitPattern(c)} }

// Name implements Pattern.
func (s *BitShuffle) Name() string { return "bitshuffle" }

// Dest implements Pattern.
func (s *BitShuffle) Dest(src int, _ *rand.Rand) int {
	if src >= 1<<s.bits {
		return -1
	}
	b := s.bits
	hi := (src >> (b - 1)) & 1
	d := ((src << 1) | hi) & ((1 << b) - 1)
	if d == src {
		return -1
	}
	return d
}

// FixedDest implements FixedPattern.
func (s *BitShuffle) FixedDest(src int) int { return s.Dest(src, nil) }

// BitReverse reverses the endpoint address bits: d_i = s_{b-i-1}.
type BitReverse struct{ bitPattern }

// NewBitReverse builds the pattern for the given config.
func NewBitReverse(c Config) *BitReverse { return &BitReverse{newBitPattern(c)} }

// Name implements Pattern.
func (r *BitReverse) Name() string { return "bitreverse" }

// Dest implements Pattern.
func (r *BitReverse) Dest(src int, _ *rand.Rand) int {
	if src >= 1<<r.bits {
		return -1
	}
	d := 0
	for i := 0; i < r.bits; i++ {
		d |= ((src >> i) & 1) << (r.bits - 1 - i)
	}
	if d == src {
		return -1
	}
	return d
}

// FixedDest implements FixedPattern.
func (r *BitReverse) FixedDest(src int) int { return r.Dest(src, nil) }

// Adversarial is the §9.6 worst-case pattern for hierarchical topologies:
// all endpoints of a group transmit only to endpoints of one paired
// group, and each source targets a router of that group at maximal hop
// distance, enforcing the longest minimal paths through the congested
// inter-group links.
type Adversarial struct {
	C    Config
	dest []int // source endpoint -> destination endpoint
}

// GroupOfFn abstracts the topology grouping.
type GroupOfFn func(router int) int

// DistFn returns hop distance between routers.
type DistFn func(a, b int) int

// NewAdversarial pairs each group g with group (g+1) mod G and, for each
// source endpoint, selects the farthest endpoint-hosting switch of the
// paired group (breaking ties by switch id) as destination, preserving
// the endpoint's local index.
func NewAdversarial(c Config, numGroups int, groupOf GroupOfFn, dist DistFn) *Adversarial {
	a := &Adversarial{C: c, dest: make([]int, c.Endpoints())}
	// Host blocks per group.
	hostsInGroup := make([][]int, numGroups) // host-block indices
	for h := 0; h < c.NumHosts(); h++ {
		r := c.RouterOf(h * c.PerRouter)
		g := groupOf(r)
		hostsInGroup[g] = append(hostsInGroup[g], h)
	}
	for h := 0; h < c.NumHosts(); h++ {
		r := c.RouterOf(h * c.PerRouter)
		target := (groupOf(r) + 1) % numGroups
		bestH, bestD := -1, -1
		for _, th := range hostsInGroup[target] {
			tr := c.RouterOf(th * c.PerRouter)
			if d := dist(r, tr); d > bestD {
				bestD, bestH = d, th
			}
		}
		for l := 0; l < c.PerRouter; l++ {
			if bestH < 0 {
				a.dest[h*c.PerRouter+l] = -1
			} else {
				a.dest[h*c.PerRouter+l] = bestH*c.PerRouter + l
			}
		}
	}
	return a
}

// Name implements Pattern.
func (a *Adversarial) Name() string { return "adversarial" }

// Dest implements Pattern.
func (a *Adversarial) Dest(src int, _ *rand.Rand) int { return a.dest[src] }

// FixedDest implements FixedPattern.
func (a *Adversarial) FixedDest(src int) int { return a.dest[src] }

// ByName constructs a standard pattern by name (used by cmd/pssim).
func ByName(name string, c Config, numGroups int, groupOf GroupOfFn, dist DistFn, seed int64) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{C: c}, nil
	case "permutation":
		return NewPermutation(c, seed), nil
	case "bitshuffle":
		return NewBitShuffle(c), nil
	case "bitreverse":
		return NewBitReverse(c), nil
	case "adversarial":
		return NewAdversarial(c, numGroups, groupOf, dist), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}
