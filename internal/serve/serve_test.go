package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

// testConfig keeps service tests fast: small pool, tiny runs.
func testConfig() Config {
	return Config{Workers: 2, QueueDepth: 8, CacheBytes: 4 << 20, RunTimeout: 60 * time.Second}
}

// evalBody is the canonical fast request of the suite: a short run on
// the small PolarStar spec.
const evalBody = `{"spec":"ps-iq-small","cycles":200,"seed":3}`

func postEval(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeEndToEnd is the tentpole round trip: health, a cold eval, a
// byte-identical warm replay that skips construction, async polling and
// the stats endpoint.
func TestServeEndToEnd(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz = %d %s", code, body)
	}

	coldStart := time.Now()
	code, hdr, cold := postEval(t, ts.URL, evalBody)
	coldDur := time.Since(coldStart)
	if code != http.StatusOK {
		t.Fatalf("cold eval = %d %s", code, cold)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("cold eval X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	var resp EvalResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatalf("cold body does not decode: %v", err)
	}
	if resp.Result.DeliveredFrac <= 0 || resp.Result.AvgLatency <= 0 {
		t.Fatalf("degenerate result: %+v", resp.Result)
	}
	if resp.Manifest.SpecHash == "" || resp.Manifest.Spec != "ps-iq-small" {
		t.Fatalf("manifest missing provenance: %+v", resp.Manifest)
	}
	if !isRunID(resp.Key) {
		t.Fatalf("malformed key %q", resp.Key)
	}

	hitsBefore := svc.Stats().CacheHits
	// The warm path must skip construction entirely: take the best of
	// many replays (absorbing scheduler noise) and demand it beats a
	// tenth of the cold path, which paid for topology construction and
	// a real simulation.
	warmDur := time.Hour
	var warm []byte
	for i := 0; i < 20; i++ {
		start := time.Now()
		code, hdr, body := postEval(t, ts.URL, evalBody)
		d := time.Since(start)
		if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
			t.Fatalf("warm eval %d: code %d X-Cache %q", i, code, hdr.Get("X-Cache"))
		}
		if d < warmDur {
			warmDur = d
		}
		warm = body
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm replay differs from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	st := svc.Stats()
	if st.CacheHits != hitsBefore+20 {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, hitsBefore+20)
	}
	if st.Builds != 1 || st.CacheMisses != 1 {
		t.Fatalf("builds=%d misses=%d, want 1/1", st.Builds, st.CacheMisses)
	}
	if warmDur >= coldDur/10 {
		t.Errorf("warm replay %v not < 10%% of cold path %v", warmDur, coldDur)
	}

	// Async: a different tuple returns 202 + id, then polls to the
	// finished artifact.
	asyncBody := `{"spec":"ps-iq-small","cycles":200,"seed":4,"async":true}`
	code, _, accepted := postEval(t, ts.URL, asyncBody)
	if code != http.StatusAccepted {
		t.Fatalf("async eval = %d %s", code, accepted)
	}
	var pending struct{ ID, Status string }
	if err := json.Unmarshal(accepted, &pending); err != nil || pending.ID == "" {
		t.Fatalf("async body %s: %v", accepted, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := get(t, ts.URL+"/v1/runs/"+pending.ID)
		if code == http.StatusOK {
			var done EvalResponse
			if err := json.Unmarshal(body, &done); err != nil || done.Key != pending.ID {
				t.Fatalf("poll result %s: %v", body, err)
			}
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("poll = %d %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("async run never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, body := get(t, ts.URL+"/v1/cache/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats struct {
		Schema string         `json:"schema"`
		Serve  obs.ServeStats `json:"serve"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != obs.Schema || stats.Serve.CachedRuns != 2 || stats.Serve.SpecsBuilt != 1 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
	if stats.Serve.SpecBytes <= 0 {
		t.Fatalf("spec bytes not accounted: %+v", stats.Serve)
	}
}

// TestServeWorkerInvariance pins the cache-key contract: services and
// requests with different worker counts produce byte-identical bodies,
// which is why Workers is excluded from the key.
func TestServeWorkerInvariance(t *testing.T) {
	bodies := make([][]byte, 0, 2)
	for _, workers := range []int{1, 4} {
		cfg := testConfig()
		cfg.Workers = workers
		svc := New(cfg)
		ts := httptest.NewServer(svc.Handler())
		req := fmt.Sprintf(`{"spec":"ps-iq-small","cycles":200,"seed":3,"workers":%d}`, workers)
		code, _, body := postEval(t, ts.URL, req)
		ts.Close()
		svc.Close()
		if code != http.StatusOK {
			t.Fatalf("workers=%d: eval = %d %s", workers, code, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("results differ across worker counts:\n1: %s\n4: %s", bodies[0], bodies[1])
	}
}

// TestServeConcurrentSingleBuild submits the same spec from many
// goroutines at once: the builder must construct exactly once
// (singleflight) and every response must be bit-identical.
func TestServeConcurrentSingleBuild(t *testing.T) {
	svc := New(Config{Workers: 4, QueueDepth: 32, RunTimeout: 60 * time.Second})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Different seeds force distinct runs — all need the spec.
			req := fmt.Sprintf(`{"spec":"ps-iq-small","cycles":200,"seed":%d}`, 10+i%4)
			code, _, body := postEval(t, ts.URL, req)
			if code != http.StatusOK {
				t.Errorf("eval %d = %d %s", i, code, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Builds != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", st.Builds)
	}
	// Identical tuples — whether joined in flight or replayed — must be
	// identical bytes.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i%4 == j%4 && !bytes.Equal(bodies[i], bodies[j]) {
				t.Fatalf("same tuple, different bytes:\n%s\n%s", bodies[i], bodies[j])
			}
		}
	}
	if st.CacheMisses+st.Joined+st.CacheHits != n {
		t.Fatalf("admission accounting broken: %+v", st)
	}
}

// TestServeMalformedInputs drives the decoder and validator through the
// abuse table: every case must come back 4xx with a structured error —
// never a 5xx, never a panic.
func TestServeMalformedInputs(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A guaranteed non-edge of ps-iq-small, for the plan-validation case.
	spec, err := sim.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	nonNbr := -1
	for v := 1; v < spec.Graph.N(); v++ {
		if !spec.Graph.HasEdge(0, v) {
			nonNbr = v
			break
		}
	}
	hugePlan := strings.Repeat("1 link-down 0 1\n", maxPlanBytes/16+1)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"truncated json", `{"spec":"ps-iq-sm`, http.StatusBadRequest},
		{"trailing data", evalBody + `{"x":1}`, http.StatusBadRequest},
		{"unknown field", `{"spec":"ps-iq-small","bogus":1}`, http.StatusBadRequest},
		{"missing spec", `{"seed":1}`, http.StatusBadRequest},
		{"unknown spec", `{"spec":"ps-iq-smal"}`, http.StatusBadRequest},
		{"negative seed", `{"spec":"ps-iq-small","seed":-1}`, http.StatusBadRequest},
		{"bad routing", `{"spec":"ps-iq-small","routing":"valiant"}`, http.StatusBadRequest},
		{"bad pattern", `{"spec":"ps-iq-small","cycles":200,"pattern":"nope"}`, http.StatusBadRequest},
		{"load over 1", `{"spec":"ps-iq-small","load":1.5}`, http.StatusBadRequest},
		{"negative load", `{"spec":"ps-iq-small","load":-0.1}`, http.StatusBadRequest},
		{"cycles over cap", fmt.Sprintf(`{"spec":"ps-iq-small","cycles":%d}`, maxEvalCycles+1), http.StatusBadRequest},
		{"negative workers", `{"spec":"ps-iq-small","workers":-2}`, http.StatusBadRequest},
		{"oversized plan", fmt.Sprintf(`{"spec":"ps-iq-small","fault_plan":%q}`, hugePlan), http.StatusBadRequest},
		{"malformed plan", `{"spec":"ps-iq-small","fault_plan":"1 link-frob 0 1"}`, http.StatusBadRequest},
		{"plan on non-edge", fmt.Sprintf(`{"spec":"ps-iq-small","cycles":200,"fault_plan":"5 link-down 0 %d"}`, nonNbr), http.StatusBadRequest},
		{"lanes over cap", `{"spec":"ps-iq-small","routing":"mp-min","lanes":99}`, http.StatusBadRequest},
		{"negative lanes", `{"spec":"ps-iq-small","routing":"mp-min","lanes":-1}`, http.StatusBadRequest},
		{"lanes without multipath", `{"spec":"ps-iq-small","lanes":2}`, http.StatusBadRequest},
		{"negative repair delay", `{"spec":"ps-iq-small","fault_plan":"5 link-down 0 1","repair_delay":-1}`, http.StatusBadRequest},
		{"repair delay without plan", `{"spec":"ps-iq-small","repair_delay":50}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, body := postEval(t, ts.URL, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d (want %d), body %s", tc.name, code, tc.want, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: unstructured error body %s", tc.name, body)
		}
	}

	// Poll-endpoint abuse.
	if code, _ := get(t, ts.URL+"/v1/runs/not-hex!"); code != http.StatusBadRequest {
		t.Errorf("bad run id = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/runs/00000000000000ab"); code != http.StatusNotFound {
		t.Errorf("unknown run = %d, want 404", code)
	}
}

// TestServeFaultPlanRoundTrip runs a request with a valid scripted plan
// on a real edge: the manifest must carry the plan hash and the warm
// replay must stay byte-identical.
func TestServeFaultPlanRoundTrip(t *testing.T) {
	spec, err := sim.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	v := spec.Graph.Neighbors(0)[0]
	plan := fmt.Sprintf("120 link-down 0 %d", v)

	svc := New(testConfig())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec":"ps-iq-small","cycles":200,"seed":3,"fault_plan":%q}`, plan)
	code, _, cold := postEval(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("fault eval = %d %s", code, cold)
	}
	var resp EvalResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Manifest.FaultPlan == nil || resp.Manifest.FaultPlan.Events != 1 {
		t.Fatalf("manifest missing fault plan: %+v", resp.Manifest)
	}
	code, hdr, warm := postEval(t, ts.URL, body)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" || !bytes.Equal(cold, warm) {
		t.Fatalf("fault-plan replay broken: code %d X-Cache %q equal %v", code, hdr.Get("X-Cache"), bytes.Equal(cold, warm))
	}
	// Same request without the plan is a different artifact.
	code, _, healthy := postEval(t, ts.URL, evalBody)
	if code != http.StatusOK || bytes.Equal(cold, healthy) {
		t.Fatal("plan hash not part of the cache key")
	}
}

// TestEvalRequestKeyMultipathFields pins the cache-key contract for the
// degraded-topology fields: fault plan, lanes and repair delay each
// mint a distinct content address (no faulted/clean collision), while
// Workers and Async stay excluded.
func TestEvalRequestKeyMultipathFields(t *testing.T) {
	key := func(req EvalRequest) string {
		t.Helper()
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		plan, err := req.plan()
		if err != nil {
			t.Fatal(err)
		}
		return req.Key(plan)
	}
	base := EvalRequest{Spec: "ps-iq-small", Routing: "mp-min",
		FaultPlan: "5 link-down 0 1", Lanes: 2, RepairDelay: 40}
	k := key(base)

	distinct := map[string]func(r *EvalRequest){
		"clean plan":    func(r *EvalRequest) { r.FaultPlan = ""; r.RepairDelay = 0 },
		"other plan":    func(r *EvalRequest) { r.FaultPlan = "7 link-down 0 1" },
		"other lanes":   func(r *EvalRequest) { r.Lanes = 3 },
		"other delay":   func(r *EvalRequest) { r.RepairDelay = 41 },
		"other routing": func(r *EvalRequest) { r.Routing = "mp-ugal" },
	}
	for name, mutate := range distinct {
		req := base
		mutate(&req)
		if key(req) == k {
			t.Errorf("%s: request collides with the base key %s", name, k)
		}
	}
	shared := map[string]func(r *EvalRequest){
		"workers": func(r *EvalRequest) { r.Workers = 7 },
		"async":   func(r *EvalRequest) { r.Async = true },
	}
	for name, mutate := range shared {
		req := base
		mutate(&req)
		if key(req) != k {
			t.Errorf("%s: result-preserving field leaked into the key", name)
		}
	}
}

// TestServeMultipathRoundTrip runs a degraded mp-ugal request end to
// end: the artifact must record the multipath routing and the repair
// stall, and the warm replay must stay byte-identical.
func TestServeMultipathRoundTrip(t *testing.T) {
	spec, err := sim.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	v := spec.Graph.Neighbors(0)[0]

	svc := New(testConfig())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec":"ps-iq-small","routing":"mp-ugal","cycles":200,"seed":3,"fault_plan":"120 link-down 0 %d","repair_delay":60}`, v)
	code, _, cold := postEval(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("multipath eval = %d %s", code, cold)
	}
	var resp EvalResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Manifest.Routing != "mp-ugal" {
		t.Errorf("manifest routing %q, want mp-ugal", resp.Manifest.Routing)
	}
	if resp.Manifest.FaultPlan == nil || resp.Manifest.FaultPlan.RepairDelay != 60 {
		t.Errorf("manifest missing repair delay: %+v", resp.Manifest.FaultPlan)
	}
	if resp.Result.DeliveredFrac <= 0 {
		t.Errorf("degraded multipath run delivered nothing: %+v", resp.Result)
	}
	code, hdr, warm := postEval(t, ts.URL, body)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" || !bytes.Equal(cold, warm) {
		t.Fatalf("multipath replay broken: code %d X-Cache %q equal %v", code, hdr.Get("X-Cache"), bytes.Equal(cold, warm))
	}
}

// TestServeShedding fills the pool and queue with deterministically
// blocked jobs via the evaluate hook, then asserts the next request is
// shed with 429 + Retry-After and that released jobs still finish.
func TestServeShedding(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	svc := New(Config{Workers: 1, QueueDepth: 1, RunTimeout: 60 * time.Second})
	defer svc.Close()
	svc.evaluateFn = func(j *job) ([]byte, int, error) {
		started <- j.key
		<-release
		return []byte(`{"ok":true}` + "\n"), http.StatusOK, nil
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Job 1 occupies the worker (wait for pickup before filling the
	// queue slot with job 2, or job 2 itself could be shed).
	code, _, body := postEval(t, ts.URL, `{"spec":"ps-iq-small","seed":100,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("setup eval 1 = %d %s", code, body)
	}
	<-started
	code, _, body = postEval(t, ts.URL, `{"spec":"ps-iq-small","seed":101,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("setup eval 2 = %d %s", code, body)
	}

	code, hdr, body := postEval(t, ts.URL, `{"spec":"ps-iq-small","seed":102,"async":true}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload eval = %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if svc.Stats().Shed != 1 {
		t.Fatalf("shed = %d, want 1", svc.Stats().Shed)
	}

	close(release)
	// Both admitted jobs must drain to the cache.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().CachedRuns != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted jobs never finished: %+v", svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeDrain pins the shutdown contract: after Close, health and
// eval refuse with 503 and Close is idempotent.
func TestServeDrain(t *testing.T) {
	svc := New(testConfig())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close()
	svc.Close() // idempotent

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d, want 503", code)
	}
	code, _, body := postEval(t, ts.URL, evalBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("eval after Close = %d %s, want 503", code, body)
	}
}

// TestResultCacheLRU pins the byte-budget mechanics: first-writer-wins,
// cold-end eviction, Peek not counting.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(100)
	c.Put("a", bytes.Repeat([]byte("x"), 40))
	c.Put("b", bytes.Repeat([]byte("y"), 40))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// First writer wins: a duplicate Put must not replace the bytes.
	c.Put("a", []byte("replacement"))
	if body, _ := c.Get("a"); len(body) != 40 {
		t.Fatalf("duplicate Put replaced the entry: %d bytes", len(body))
	}
	// c evicts the cold end — b, since a was just touched.
	c.Put("c", bytes.Repeat([]byte("z"), 40))
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("a evicted despite recency")
	}
	// Oversized bodies are not cached.
	c.Put("huge", bytes.Repeat([]byte("h"), 101))
	if _, ok := c.Peek("huge"); ok {
		t.Fatal("oversized body cached")
	}
	hits, evictions, runs, cbytes := c.Stats()
	if hits != 2 || evictions != 1 || runs != 2 || cbytes != 80 {
		t.Fatalf("stats = %d/%d/%d/%d", hits, evictions, runs, cbytes)
	}
}

// TestBuilderSingleflight drives the builder directly: one
// construction under concurrency, stable hashes, errors for unknown
// names without construction work.
func TestBuilderSingleflight(t *testing.T) {
	b := NewBuilder()
	const n = 8
	got := make([]*BuiltSpec, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bs, err := b.Get("ps-iq-small")
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = bs
		}(i)
	}
	wg.Wait()
	if b.builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", b.builds.Load())
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("builder returned distinct instances for one name")
		}
	}
	if got[0].Hash == "" || got[0].Bytes <= 0 {
		t.Fatalf("degenerate BuiltSpec: %+v", got[0])
	}
	// The hash is a pure function of the construction.
	b2 := NewBuilder()
	bs2, err := b2.Get("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	if bs2.Hash != got[0].Hash {
		t.Fatalf("hash unstable: %s vs %s", bs2.Hash, got[0].Hash)
	}
	if _, err := b.Get("no-such-spec"); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if specs, _ := b.Resident(); specs != 1 {
		t.Fatalf("resident specs = %d, want 1", specs)
	}
}

// TestServeRunTimeout pins the deadline path: a run that cannot finish
// inside RunTimeout comes back 504.
func TestServeRunTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.RunTimeout = time.Nanosecond
	svc := New(cfg)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	code, _, body := postEval(t, ts.URL, evalBody)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out eval = %d %s, want 504", code, body)
	}
}
