package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"polarstar/internal/sim"
)

// BuiltSpec is a constructed topology ready to serve runs: the sim.Spec
// (graph + endpoint layout + routing engines), the content hash of its
// adjacency, and its resident routing-state footprint. Every field is
// read-only after construction — the engines the Spec hands out are
// either stateless or cloned per run — so one BuiltSpec is shared by
// any number of concurrent evaluations.
type BuiltSpec struct {
	Spec *sim.Spec
	// Hash is the FNV-1a 64 of the canonical adjacency (%016x): the
	// content address of the wiring, recorded in every artifact built
	// from this spec.
	Hash string
	// Bytes is the resident footprint of the routing state plus the
	// adjacency CSR.
	Bytes int64
}

// Builder is the expensive, cacheable half of an evaluation: it maps a
// spec name to a BuiltSpec, constructing each topology exactly once.
// Concurrent requests for the same name share one construction
// (singleflight): the first caller builds, the rest block on its result.
// Failed builds are not cached — a later request retries.
type Builder struct {
	mu    sync.Mutex
	specs map[string]*buildEntry

	builds     atomic.Int64 // topologies constructed
	hits       atomic.Int64 // requests answered by a resident spec
	shared     atomic.Int64 // requests that waited on a concurrent build
	resident   atomic.Int64 // specs currently resident
	totalBytes atomic.Int64 // resident routing-state bytes
}

type buildEntry struct {
	done chan struct{} // closed when the build finishes
	bs   *BuiltSpec    // set before done closes
	err  error
}

// NewBuilder returns an empty build cache.
func NewBuilder() *Builder {
	return &Builder{specs: map[string]*buildEntry{}}
}

// Get returns the BuiltSpec for name, constructing it on first use.
// Unknown names fail without construction work.
func (b *Builder) Get(name string) (*BuiltSpec, error) {
	if !sim.KnownSpec(name) {
		return nil, fmt.Errorf("serve: unknown spec %q", name)
	}
	b.mu.Lock()
	if e, ok := b.specs[name]; ok {
		b.mu.Unlock()
		select {
		case <-e.done:
			b.hits.Add(1)
		default:
			b.shared.Add(1)
			<-e.done
		}
		return e.bs, e.err
	}
	e := &buildEntry{done: make(chan struct{})}
	b.specs[name] = e
	b.mu.Unlock()

	b.builds.Add(1)
	spec, err := sim.NewSpec(name)
	if err != nil {
		e.err = err
		b.mu.Lock()
		delete(b.specs, name) // do not cache failures
		b.mu.Unlock()
		close(e.done)
		return nil, err
	}
	e.bs = &BuiltSpec{Spec: spec, Hash: graphHash(spec), Bytes: specBytes(spec)}
	b.resident.Add(1)
	b.totalBytes.Add(e.bs.Bytes)
	close(e.done)
	return e.bs, nil
}

// Resident reports the number of built specs held and their total
// routing-state bytes.
func (b *Builder) Resident() (specs, bytes int64) {
	return b.resident.Load(), b.totalBytes.Load()
}

// graphHash content-addresses the constructed wiring: FNV-1a 64 over
// the vertex count followed by every adjacency row in vertex order.
// Two specs with the same hash simulate identically (same graph, and
// the rest of the Spec is a pure function of the construction).
func graphHash(spec *sim.Spec) string {
	h := fnv.New64a()
	var buf [4]byte
	g := spec.Graph
	binary.LittleEndian.PutUint32(buf[:], uint32(g.N()))
	h.Write(buf[:])
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			binary.LittleEndian.PutUint32(buf[:], uint32(w))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// specBytes estimates the resident footprint of a built spec: the
// adjacency CSR plus whatever routing state the MIN engine actually
// holds (route.Table reports its arrays via MemBytes; the analytic
// PolarStar router holds only factor-graph state and reports nothing
// here).
func specBytes(spec *sim.Spec) int64 {
	bytes := 4 * int64(spec.Graph.NumChannels()) // adjacency CSR
	if m, ok := spec.MinEngine.(interface{ MemBytes() int64 }); ok {
		bytes += m.MemBytes()
	}
	return bytes
}
