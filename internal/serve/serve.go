// Package serve is the multi-tenant evaluation service: the simulator's
// CLIs split into a long-running daemon (cmd/psserve). An evaluation
// request names a spec, routing, traffic pattern, offered load, seed and
// an optional fault plan; the service answers with the sim Result plus
// an obs manifest.
//
// The architecture separates the two halves of every evaluation:
//
//   - Build (expensive, cacheable): topology construction and routing
//     tables, owned by Builder. Specs are built once — concurrent
//     requests for the same name share a single construction — and the
//     result is read-only, so one BuiltSpec serves any number of
//     concurrent runs.
//
//   - Run (cheap, per-request): one sim.RunPoint on a bounded worker
//     pool with a per-run deadline. Finished response bodies land in a
//     byte-bounded LRU keyed by the canonical request tuple, so a repeat
//     request replays the exact bytes of the first answer without
//     touching the builder or the engine. The cache key is computed
//     from the request alone (spec name + FNV of the fault-plan text),
//     which is what lets a warm hit skip construction entirely.
//
// Admission control: identical in-flight requests join the running job
// instead of queuing a duplicate; when the queue is full the request is
// shed with 429 + Retry-After; a draining service (Close, SIGTERM)
// refuses new work with 503 while in-flight runs finish.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

// Request bounds: hard caps on attacker-controlled sizes, checked
// before any expensive work.
const (
	maxPlanBytes  = 1 << 18 // fault-plan text
	maxPlanEvents = 1 << 14 // parsed fault events
	maxEvalCycles = 1 << 20 // requested measurement window
	maxRunWorkers = 64      // per-run engine goroutines
	maxEvalLanes  = 8       // requested multipath tree lanes
)

// EvalRequest is the POST /v1/eval body. Zero-valued optional fields
// take the documented defaults in Normalize.
type EvalRequest struct {
	Spec    string  `json:"spec"`              // required: a sim.SpecNames() entry
	Routing string  `json:"routing,omitempty"` // "min" (default), "ugal", "ugal-g", "mp-min", "mp-ugal"
	Pattern string  `json:"pattern,omitempty"` // traffic pattern (default "uniform")
	Load    float64 `json:"load,omitempty"`    // offered load in (0,1] (default 0.2)
	Cycles  int     `json:"cycles,omitempty"`  // measurement window; 0 = paper defaults
	Seed    int64   `json:"seed,omitempty"`    // RNG seed >= 0 (default 1)
	// Workers drives the per-run engine pool. Results are bit-identical
	// at any value (the engine's contract), so it is excluded from the
	// cache key. 0 = service default.
	Workers int `json:"workers,omitempty"`
	// FaultPlan is scripted fault-plan text (sim.ParsePlan format),
	// hashed into the cache key.
	FaultPlan string `json:"fault_plan,omitempty"`
	// Lanes is the spanning-tree lane count of the multipath routings
	// ("mp-min"/"mp-ugal"): 0 selects the engine default. Rejected on
	// single-table routings, where it is a no-op — silently accepting
	// it would mint distinct cache keys for bit-identical runs.
	Lanes int `json:"lanes,omitempty"`
	// RepairDelay is the table-reconvergence stall in cycles charged
	// after every applied fault event (sim.Params.RepairDelay). Needs a
	// fault plan for the same no-op-field reason as Lanes.
	RepairDelay int64 `json:"repair_delay,omitempty"`
	// Async makes POST /v1/eval return 202 with a run id immediately;
	// poll GET /v1/runs/{id} for the artifact.
	Async bool `json:"async,omitempty"`
}

// DecodeEvalRequest strictly parses an eval body: unknown fields,
// trailing data and malformed JSON are errors, never a partially
// defaulted request.
func DecodeEvalRequest(r io.Reader) (EvalRequest, error) {
	var req EvalRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return EvalRequest{}, fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return EvalRequest{}, errors.New("serve: trailing data after request body")
	}
	return req, nil
}

// Normalize fills defaults and validates every field that can be
// checked without building the topology. It must leave the request in
// canonical form: two requests that Normalize identically produce the
// same cache key.
func (req *EvalRequest) Normalize() error {
	if req.Spec == "" {
		return errors.New("serve: missing required field \"spec\"")
	}
	if !sim.KnownSpec(req.Spec) {
		return fmt.Errorf("serve: unknown spec %q", req.Spec)
	}
	if req.Routing == "" {
		req.Routing = "min"
	}
	multipath := false
	switch req.Routing {
	case "min", "ugal", "ugal-g":
	case "mp-min", "mp-ugal":
		multipath = true
	default:
		return fmt.Errorf("serve: unknown routing %q (want min, ugal, ugal-g, mp-min or mp-ugal)", req.Routing)
	}
	if req.Lanes < 0 || req.Lanes > maxEvalLanes {
		return fmt.Errorf("serve: lanes must be in [0, %d], got %d", maxEvalLanes, req.Lanes)
	}
	if req.Lanes != 0 && !multipath {
		return fmt.Errorf("serve: lanes requires multipath routing, got %q", req.Routing)
	}
	if req.RepairDelay < 0 {
		return fmt.Errorf("serve: repair_delay must be >= 0, got %d", req.RepairDelay)
	}
	if req.RepairDelay > 0 && req.FaultPlan == "" {
		return errors.New("serve: repair_delay without a fault plan is a no-op")
	}
	if req.Pattern == "" {
		req.Pattern = "uniform"
	}
	if req.Load == 0 {
		req.Load = 0.2
	}
	if req.Load <= 0 || req.Load > 1 {
		return fmt.Errorf("serve: load must be in (0, 1], got %g", req.Load)
	}
	if req.Cycles < 0 || req.Cycles > maxEvalCycles {
		return fmt.Errorf("serve: cycles must be in [0, %d], got %d", maxEvalCycles, req.Cycles)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Seed < 0 {
		return fmt.Errorf("serve: seed must be >= 0, got %d", req.Seed)
	}
	if req.Workers < 0 || req.Workers > maxRunWorkers {
		return fmt.Errorf("serve: workers must be in [0, %d], got %d", maxRunWorkers, req.Workers)
	}
	if len(req.FaultPlan) > maxPlanBytes {
		return fmt.Errorf("serve: fault plan exceeds %d bytes", maxPlanBytes)
	}
	return nil
}

// plan parses the scripted fault plan, enforcing the event cap. A nil
// return means a healthy run.
func (req *EvalRequest) plan() (*sim.Plan, error) {
	if req.FaultPlan == "" {
		return nil, nil
	}
	p, err := sim.ParsePlan(req.FaultPlan)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if len(p.Events) > maxPlanEvents {
		return nil, fmt.Errorf("serve: fault plan exceeds %d events", maxPlanEvents)
	}
	return p, nil
}

// Key is the content address of a normalized request: FNV-1a 64
// (%016x) over the canonical tuple (spec, routing, pattern, load,
// cycles, seed, plan hash, lanes, repair delay). Workers and Async are
// deliberately excluded — neither changes a single Result bit, so
// requests differing only there share one artifact. The key doubles as
// the async run id.
func (req *EvalRequest) Key(plan *sim.Plan) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "spec=%s routing=%s pattern=%s load=%.17g cycles=%d seed=%d plan=%016x lanes=%d rdelay=%d",
		req.Spec, req.Routing, req.Pattern, req.Load, req.Cycles, req.Seed, plan.Hash(), req.Lanes, req.RepairDelay)
	return fmt.Sprintf("%016x", h.Sum64())
}

// mode maps the validated routing name to the sim enum.
func (req *EvalRequest) mode() sim.RoutingMode {
	switch req.Routing {
	case "ugal":
		return sim.UGALMode
	case "ugal-g":
		return sim.UGALGMode
	case "mp-min":
		return sim.MPMINMode
	case "mp-ugal":
		return sim.MPUGALMode
	}
	return sim.MIN
}

// params builds the engine parameters: the §9.4 defaults, with the
// cycle windows rescaled when the request asks for a shorter (or
// longer) measurement.
func (req *EvalRequest) params(defaultWorkers int) sim.Params {
	p := sim.DefaultParams(req.Seed)
	if req.Cycles > 0 {
		p.Warmup = req.Cycles / 2
		p.Measure = req.Cycles
		p.Drain = req.Cycles * 3 / 2
	}
	p.Workers = req.Workers
	if p.Workers == 0 {
		p.Workers = defaultWorkers
	}
	p.Lanes = req.Lanes
	p.RepairDelay = req.RepairDelay
	return p
}

// EvalResult is the wire form of sim.Result.
type EvalResult struct {
	Load             float64 `json:"load"`
	AvgLatency       float64 `json:"avg_latency"`
	MaxLatency       int64   `json:"max_latency"`
	DeliveredFrac    float64 `json:"delivered_frac"`
	Throughput       float64 `json:"throughput"`
	Backlog          int     `json:"backlog"`
	BacklogAtMeasEnd int     `json:"backlog_at_meas_end"`
	Saturated        bool    `json:"saturated"`
	Lost             int64   `json:"lost"`
	Dropped          int64   `json:"dropped,omitempty"`
	Retried          int64   `json:"retried,omitempty"`
	TerminatedEarly  bool    `json:"terminated_early,omitempty"`
}

func wireResult(r sim.Result) EvalResult {
	return EvalResult{
		Load: r.Load, AvgLatency: r.AvgLatency, MaxLatency: r.MaxLatency,
		DeliveredFrac: r.DeliveredFrac, Throughput: r.Throughput,
		Backlog: r.Backlog, BacklogAtMeasEnd: r.BacklogAtMeasEnd,
		Saturated: r.Saturated, Lost: r.Lost, Dropped: r.Dropped,
		Retried: r.Retried, TerminatedEarly: r.TerminatedEarly,
	}
}

// EvalResponse is the 200 body of a completed evaluation: the cache
// key (also the poll id), the provenance manifest and the Result. The
// body is a pure function of the normalized request and the binary —
// a warm cache hit replays it byte for byte.
type EvalResponse struct {
	Key      string       `json:"key"`
	Manifest obs.Manifest `json:"manifest"`
	Result   EvalResult   `json:"result"`
}

// Config bounds a Service. Zero values take the documented defaults.
type Config struct {
	Workers      int           // eval worker pool size (default GOMAXPROCS)
	QueueDepth   int           // pending-eval queue (default 4×Workers)
	CacheBytes   int64         // artifact LRU budget (default 64 MiB)
	MaxBodyBytes int64         // request body cap (default 1 MiB)
	RunTimeout   time.Duration // per-run deadline (default 120s)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 120 * time.Second
	}
	return c
}

// job is one admitted evaluation making its way through the worker
// pool. done closes after body/status/errMsg are final.
type job struct {
	key  string
	req  EvalRequest
	plan *sim.Plan

	done   chan struct{}
	body   []byte
	status int    // HTTP status of a failed run
	errMsg string // error message of a failed run
}

// failedRunMemory bounds the failed-run registry the poll endpoint
// reads: old failures age out in insertion order.
const failedRunMemory = 256

// Service is the evaluation daemon: builder + artifact cache + bounded
// worker pool. Create with New, serve Handler(), stop with Close.
type Service struct {
	cfg     Config
	builder *Builder
	cache   *resultCache

	mu          sync.Mutex
	draining    bool
	queue       chan *job
	inflight    map[string]*job   // cache key → running/queued job
	failed      map[string]string // cache key → error of a finished failed run
	failedOrder []string
	wg          sync.WaitGroup

	requests    atomic.Int64
	badRequests atomic.Int64
	misses      atomic.Int64
	joined      atomic.Int64
	shed        atomic.Int64

	// evaluateFn is the run step, swappable by white-box tests that
	// need workers to block deterministically.
	evaluateFn func(j *job) ([]byte, int, error)
}

// New starts a Service: cfg.Workers evaluation goroutines draining a
// cfg.QueueDepth admission queue.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		builder:  NewBuilder(),
		cache:    newResultCache(cfg.CacheBytes),
		queue:    make(chan *job, cfg.QueueDepth),
		inflight: map[string]*job{},
		failed:   map[string]string{},
	}
	s.evaluateFn = s.evaluate
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close drains the service: new evaluations are refused with 503,
// queued and running jobs finish, workers exit. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Service) runJob(j *job) {
	body, status, err := s.evaluateFn(j)
	if err != nil {
		j.status, j.errMsg = status, err.Error()
	} else {
		j.body = body
	}
	// Publish before unregistering: a request racing this finish must
	// find the key in the cache (or failed registry) once it is gone
	// from inflight — there is no window where a duplicate run starts.
	s.mu.Lock()
	if err != nil {
		s.recordFailureLocked(j.key, j.errMsg)
	} else {
		s.cache.Put(j.key, body)
	}
	delete(s.inflight, j.key)
	s.mu.Unlock()
	close(j.done)
}

// recordFailureLocked remembers a failed run for the poll endpoint,
// aging out the oldest entry past failedRunMemory. Caller holds s.mu.
func (s *Service) recordFailureLocked(key, msg string) {
	if _, ok := s.failed[key]; !ok {
		s.failedOrder = append(s.failedOrder, key)
		if len(s.failedOrder) > failedRunMemory {
			delete(s.failed, s.failedOrder[0])
			s.failedOrder = s.failedOrder[1:]
		}
	}
	s.failed[key] = msg
}

// evaluate is the cold path: build (or fetch) the spec, run the engine
// under the per-run deadline, marshal the deterministic response body.
func (s *Service) evaluate(j *job) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RunTimeout)
	defer cancel()
	bs, err := s.builder.Get(j.req.Spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	params := j.req.params(s.cfg.Workers)
	params.Plan = j.plan
	res, err := sim.RunPoint(ctx, bs.Spec, j.req.mode(), j.req.Pattern, j.req.Load, params)
	if err != nil {
		if ctx.Err() != nil {
			return nil, http.StatusGatewayTimeout,
				fmt.Errorf("serve: run exceeded the %s deadline", s.cfg.RunTimeout)
		}
		return nil, http.StatusBadRequest, err
	}
	resp := EvalResponse{
		Key:      j.key,
		Manifest: s.manifest(j, bs),
		Result:   wireResult(res),
	}
	body, err := marshalDeterministic(resp)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return body, http.StatusOK, nil
}

// manifest builds the provenance block of a response. Workers stays
// zero on purpose: the engine's Results are bit-identical at any worker
// count, so recording it would make equal artifacts compare unequal.
func (s *Service) manifest(j *job, bs *BuiltSpec) obs.Manifest {
	run := obs.NewRun("psserve")
	m := run.Manifest
	m.Spec = j.req.Spec
	m.Routing = j.req.Routing
	m.Pattern = j.req.Pattern
	m.SpecHash = bs.Hash
	m.Seed = j.req.Seed
	if !j.plan.Empty() {
		m.FaultPlan = &obs.FaultPlan{
			Hash:        fmt.Sprintf("%016x", j.plan.Hash()),
			Events:      len(j.plan.Events),
			RepairDelay: j.req.RepairDelay,
		}
		rp := sim.DefaultRetryPolicy()
		m.FaultPlan.MaxRetries = rp.MaxRetries
		m.FaultPlan.BackoffBase = rp.BackoffBase
		m.FaultPlan.BackoffCap = rp.BackoffCap
		m.FaultPlan.MaxAge = rp.MaxAge
	}
	return m
}

// marshalDeterministic renders a response body the way obs artifacts
// are rendered: indented, no HTML escaping, trailing newline — a pure
// function of the value, so equal responses are equal bytes.
func marshalDeterministic(v any) ([]byte, error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /v1/cache/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalDeterministic(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeEvalRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err == nil {
		err = req.Normalize()
	}
	var plan *sim.Plan
	if err == nil {
		plan, err = req.plan()
	}
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.requests.Add(1)
	key := req.Key(plan)

	// Warm path: replay the stored bytes; construction is never touched.
	if body, ok := s.cache.Get(key); ok {
		s.writeArtifact(w, body, "hit")
		return
	}

	// Admission, under one lock: join an identical in-flight run, or
	// enqueue a fresh job — never both, and never a send on a queue
	// Close is about to close.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	// A run may have finished between the cache check and here.
	if body, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.writeArtifact(w, body, "hit")
		return
	}
	j, joined := s.inflight[key]
	if joined {
		s.joined.Add(1)
	} else {
		j = &job{key: key, req: req, plan: plan, done: make(chan struct{})}
		select {
		case s.queue <- j:
			s.inflight[key] = j
			delete(s.failed, key) // a fresh run supersedes an old failure
			s.misses.Add(1)
		default:
			s.mu.Unlock()
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("serve: evaluation queue full"))
			return
		}
	}
	s.mu.Unlock()

	if req.Async {
		writeJSON(w, http.StatusAccepted, map[string]string{"id": key, "status": "pending"})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the run keeps going and lands in the cache.
		return
	}
	if j.errMsg != "" {
		writeError(w, j.status, errors.New(j.errMsg))
		return
	}
	s.writeArtifact(w, j.body, "miss")
}

// writeArtifact writes a finished response body. Cache status travels
// in a header, never the body — the body must stay byte-identical
// between the cold run and every warm replay.
func (s *Service) writeArtifact(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// isRunID reports whether id looks like a cache key: exactly 16 lowercase
// hex digits.
func isRunID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !isRunID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed run id %q", id))
		return
	}
	// Peek, not Get: polling must not skew the eval-path hit counters.
	if body, ok := s.cache.Peek(id); ok {
		s.writeArtifact(w, body, "hit")
		return
	}
	s.mu.Lock()
	_, pending := s.inflight[id]
	errMsg, failed := s.failed[id]
	s.mu.Unlock()
	switch {
	case pending:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "pending"})
	case failed:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "failed", "error": errMsg})
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown run %q", id))
	}
}

// Stats snapshots every service counter.
func (s *Service) Stats() obs.ServeStats {
	hits, evictions, runs, bytes := s.cache.Stats()
	specs, specBytes := s.builder.Resident()
	return obs.ServeStats{
		Requests:    s.requests.Load(),
		BadRequests: s.badRequests.Load(),
		CacheHits:   hits,
		CacheMisses: s.misses.Load(),
		Joined:      s.joined.Load(),
		Shed:        s.shed.Load(),
		Evictions:   evictions,
		CachedRuns:  runs,
		CachedBytes: bytes,
		Builds:      s.builder.builds.Load(),
		BuildHits:   s.builder.hits.Load(),
		BuildShared: s.builder.shared.Load(),
		SpecsBuilt:  specs,
		SpecBytes:   specBytes,
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Schema string         `json:"schema"`
		Serve  obs.ServeStats `json:"serve"`
	}{obs.Schema, s.Stats()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
