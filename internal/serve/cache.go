package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is the finished-artifact LRU: cache key → the exact
// marshaled response body of a completed evaluation, bounded by total
// bytes. Storing the bytes (not the structs) is what makes warm replays
// byte-identical to the cold run — the body is written back verbatim.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached body for key, counting a hit and refreshing
// recency. The returned slice is shared — callers must not mutate it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// Peek is Get without the hit accounting or recency update — the poll
// endpoint's lookup, which must not skew the eval-path counters.
func (c *resultCache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).body, true
}

// Put inserts a finished body under key, evicting from the cold end
// until the byte budget holds. First writer wins — a concurrent
// duplicate leaves the existing entry untouched, preserving the exact
// bytes earlier hits already returned. Bodies larger than the whole
// budget are not cached.
func (c *resultCache) Put(key string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := c.ll.Remove(el).(*cacheEntry)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions.Add(1)
	}
}

// Stats snapshots the cache counters: hits, evictions, resident entries
// and resident bytes.
func (c *resultCache) Stats() (hits, evictions, runs, bytes int64) {
	c.mu.Lock()
	runs, bytes = int64(c.ll.Len()), c.bytes
	c.mu.Unlock()
	return c.hits.Load(), c.evictions.Load(), runs, bytes
}
