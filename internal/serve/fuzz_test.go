package serve

import (
	"strings"
	"testing"
)

// FuzzEvalRequest throws arbitrary bytes at the request pipeline —
// strict decode, normalization, plan parse, key derivation — and pins
// the daemon's first line of defense: no input may panic, and every
// accepted request must produce a well-formed 16-hex cache key.
func FuzzEvalRequest(f *testing.F) {
	f.Add(`{"spec":"ps-iq-small","cycles":200,"seed":3}`)
	f.Add(`{"spec":"ps-iq-small","routing":"ugal","pattern":"adversarial","load":0.9}`)
	f.Add(`{"spec":"ps-iq-small","fault_plan":"5 link-down 0 1\n9 router-down 3"}`)
	f.Add(`{"spec":"","seed":-9223372036854775808,"load":1e308}`)
	f.Add(`{"spec":"ps-iq-small"`)
	f.Add(`[1,2,3]`)
	f.Add(`{"spec":"ps-iq-small"} trailing`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeEvalRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if err := req.Normalize(); err != nil {
			return
		}
		plan, err := req.plan()
		if err != nil {
			return
		}
		key := req.Key(plan)
		if !isRunID(key) {
			t.Fatalf("accepted request produced malformed key %q (body %q)", key, body)
		}
		// Key must be stable: same normalized request, same address.
		if again := req.Key(plan); again != key {
			t.Fatalf("key not deterministic: %q vs %q", key, again)
		}
	})
}
