// Package plot renders the experiment results as standalone SVG line
// charts, so the cmd tools can regenerate figure artifacts (latency-load
// curves, bisection sweeps, fault curves) and not just tables. Pure
// stdlib, deliberately minimal: linear axes, auto-scaled ranges, legend,
// one polyline per series.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct{ X, Y float64 }

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
}

// Chart is a complete line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series

	// Optional fixed ranges; when Max <= Min the range is auto-scaled.
	XMin, XMax float64
	YMin, YMax float64
}

// Add appends a series built from parallel x/y slices (NaN/Inf samples
// are dropped).
func (c *Chart) Add(name string, xs, ys []float64) {
	s := Series{Name: name}
	for i := range xs {
		if i >= len(ys) {
			break
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		s.Points = append(s.Points, Point{X: xs[i], Y: ys[i]})
	}
	c.Series = append(c.Series, s)
}

// palette holds distinguishable stroke colors (cycled).
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

const (
	width   = 720.0
	height  = 440.0
	marginL = 70.0
	marginR = 160.0
	marginT = 50.0
	marginB = 55.0
)

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	xmin, xmax, ymin, ymax := c.ranges()
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	sx := func(x float64) float64 {
		if xmax == xmin {
			return marginL + plotW/2
		}
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		if ymax == ymin {
			return marginT + plotH/2
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Frame.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)
	// Title and labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, marginT-20, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
		18.0, marginT+plotH/2, 18.0, marginT+plotH/2, escape(c.YLabel))
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			sx(fx), marginT, sx(fx), marginT+plotH)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, sy(fy), marginL+plotW, sy(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			sx(fx), marginT+plotH+16, formatTick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, sy(fy)+4, formatTick(fy))
	}
	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(p.X), sy(p.Y), color)
		}
		// Legend entry.
		ly := marginT + 12 + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+12, ly, width-marginR+36, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR+42, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) ranges() (xmin, xmax, ymin, ymax float64) {
	xmin, xmax, ymin, ymax = math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if c.XMax > c.XMin {
		xmin, xmax = c.XMin, c.XMax
	}
	if c.YMax > c.YMin {
		ymin, ymax = c.YMin, c.YMax
	}
	if ymin > 0 && (ymax-ymin) > ymin*2 {
		ymin = 0 // anchor wide-range charts at zero
	}
	return
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100000:
		return fmt.Sprintf("%.1fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
