package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteSVGWellFormed(t *testing.T) {
	c := &Chart{Title: "Latency vs load", XLabel: "offered load", YLabel: "latency (cycles)"}
	c.Add("polarstar", []float64{0.1, 0.3, 0.5}, []float64{18, 22, 35})
	c.Add("dragonfly", []float64{0.1, 0.3, 0.5}, []float64{17, 25, 90})
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"polarstar", "dragonfly", "Latency vs load", "polyline", "offered load"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestAddDropsBadSamples(t *testing.T) {
	c := &Chart{}
	inf := 1.0
	for i := 0; i < 400; i++ {
		inf *= 10
	}
	c.Add("s", []float64{1, 2, 3}, []float64{1, inf, 3})
	if len(c.Series[0].Points) != 2 {
		t.Errorf("points = %d, want 2 (Inf dropped)", len(c.Series[0].Points))
	}
}

func TestEmptyChartStillRenders(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no svg element")
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{Title: `a < b & "c"`}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `a < b &`) {
		t.Error("title not escaped")
	}
}

func TestFixedRanges(t *testing.T) {
	c := &Chart{XMin: 0, XMax: 1, YMin: 0, YMax: 100}
	c.Add("s", []float64{0.5}, []float64{50})
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
