package route

import (
	"math/rand"

	"polarstar/internal/topo"
)

// maxInlineDims bounds the stack-allocated per-path dimension scratch of
// the HyperX router; every evaluated HyperX has ≤ 3 dimensions.
const maxInlineDims = 8

// HyperX is the dimension-aligning minimal router (§9.3): a minimal path
// corrects each mismatched coordinate with one hop, and all minpaths are
// obtained by permuting the dimension order — path diversity without
// routing tables.
type HyperX struct{ hx *topo.HyperX }

// NewHyperX builds the HyperX dimension-order router.
func NewHyperX(hx *topo.HyperX) *HyperX { return &HyperX{hx: hx} }

// Dist implements Engine: the Hamming distance between coordinates.
func (r *HyperX) Dist(src, dst int) int {
	d := 0
	for _, size := range r.hx.Dims {
		if src%size != dst%size {
			d++
		}
		src /= size
		dst /= size
	}
	return d
}

// Route implements Engine, sampling a random dimension correction order.
func (r *HyperX) Route(src, dst int, rng *rand.Rand) []int {
	return r.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine. Mismatched dimensions are collected as
// vertex-id deltas (coordinate difference × dimension stride) in a
// fixed-size array, shuffled, and applied cumulatively — no coordinate
// slices, no allocation.
func (r *HyperX) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return buf
	}
	var deltaArr [maxInlineDims]int
	delta := deltaArr[:0]
	if len(r.hx.Dims) > maxInlineDims {
		delta = make([]int, 0, len(r.hx.Dims))
	}
	stride := 1
	s, d := src, dst
	for _, size := range r.hx.Dims {
		if cs, cd := s%size, d%size; cs != cd {
			delta = append(delta, (cd-cs)*stride)
		}
		s /= size
		d /= size
		stride *= size
	}
	if rng != nil {
		rng.Shuffle(len(delta), func(i, j int) { delta[i], delta[j] = delta[j], delta[i] })
	}
	buf = append(buf, src)
	cur := src
	for _, dv := range delta {
		cur += dv
		buf = append(buf, cur)
	}
	return buf
}

// Dragonfly is the hierarchical minimal router: local hop to the router
// holding the right global link, the global hop, then a local hop inside
// the destination group (at most 3 hops).
type Dragonfly struct {
	df *topo.Dragonfly
	t  *Table // small helper table for exact minimality
}

// NewDragonfly builds the Dragonfly minimal router. The canonical
// arrangement makes analytic slot lookup possible, but group sizes are
// tiny, so a table over the switch graph keeps the implementation exact
// while the hierarchical structure bounds paths at 3 hops.
func NewDragonfly(df *topo.Dragonfly) *Dragonfly {
	return &Dragonfly{df: df, t: NewTable(df.G, AllMinPaths)}
}

// Dist implements Engine.
func (r *Dragonfly) Dist(src, dst int) int { return r.t.Dist(src, dst) }

// Route implements Engine.
func (r *Dragonfly) Route(src, dst int, rng *rand.Rand) []int {
	return r.t.Route(src, dst, rng)
}

// AppendPath implements Engine.
func (r *Dragonfly) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	return r.t.AppendPath(buf, src, dst, rng)
}

// FatTree is up-down routing on the 3-level folded Clos: ascend to a
// common ancestor (choosing among equivalent parents uniformly — the
// full path diversity of the Clos), then descend deterministically.
type FatTree struct{ ft *topo.FatTree }

// NewFatTree builds the fat-tree up-down router.
func NewFatTree(ft *topo.FatTree) *FatTree { return &FatTree{ft: ft} }

// Dist implements Engine for leaf-to-leaf and mixed-level pairs.
func (r *FatTree) Dist(src, dst int) int {
	return len(r.Route(src, dst, nil)) - 1
}

// Route implements Engine. Both src and dst are switch ids; for the
// simulator they are always level-0 leaves.
func (r *FatTree) Route(src, dst int, rng *rand.Rand) []int {
	return r.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine.
func (r *FatTree) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return buf
	}
	p := r.ft.P
	pick := func(n int) int {
		if rng == nil {
			return 0
		}
		return rng.Intn(n)
	}
	l1 := func(g, k int) int { return p*p + g*p + k }
	l2 := func(k, m int) int { return 2*p*p + k*p + m }
	// Decompose (leaf-level routing only; upper-level sources descend).
	if r.ft.Level(src) != 0 || r.ft.Level(dst) != 0 {
		// Non-leaf endpoints do not occur in the evaluation; fall back to
		// a trivial BFS-free construction: route leaf-wise via level
		// structure is unnecessary, so just panic loudly.
		panic("route: FatTree routing is defined for leaf routers")
	}
	gs := src / p
	gd := dst / p
	if gs == gd {
		// Same pod: up to a shared level-1 router, down.
		k := pick(p)
		return append(buf, src, l1(gs, k), dst)
	}
	// Different pods: up twice to a core router, down twice.
	k := pick(p)
	m := pick(p)
	return append(buf, src, l1(gs, k), l2(k, m), l1(gd, k), dst)
}

// Megafly routes leaf→spine→(global)→spine→leaf, with spine choice
// diversity inside the source group (§9.3: "path diversity between
// routers within the same group"). Implemented over a small exact table
// with AllMinPaths sampling, which realizes exactly that diversity.
type Megafly struct {
	mf *topo.Megafly
	t  *Table
}

// NewMegafly builds the Megafly minimal router.
func NewMegafly(mf *topo.Megafly) *Megafly {
	return &Megafly{mf: mf, t: NewTable(mf.G, AllMinPaths)}
}

// Dist implements Engine.
func (r *Megafly) Dist(src, dst int) int { return r.t.Dist(src, dst) }

// Route implements Engine.
func (r *Megafly) Route(src, dst int, rng *rand.Rand) []int {
	return r.t.Route(src, dst, rng)
}

// AppendPath implements Engine.
func (r *Megafly) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	return r.t.AppendPath(buf, src, dst, rng)
}

// Valiant wraps a minimal engine with randomized misrouting: a path to a
// random intermediate router followed by a minimal path to the
// destination (§9.3). Candidates exposes the UGAL choice set: the minimal
// path plus Samples valiant paths.
type Valiant struct {
	Min     Engine
	N       int // number of routers
	Samples int // intermediates sampled per decision (the paper uses 4)
}

// NewValiant builds a Valiant/UGAL path provider over a minimal engine.
func NewValiant(min Engine, numRouters, samples int) *Valiant {
	return &Valiant{Min: min, N: numRouters, Samples: samples}
}

// Via returns the two-phase path src→mid→dst, deduplicating the joint.
func (v *Valiant) Via(src, mid, dst int, rng *rand.Rand) []int {
	return v.AppendVia(nil, src, mid, dst, rng)
}

// AppendVia is the allocation-free variant of Via: it appends the
// two-phase path onto buf, dropping the duplicated intermediate.
func (v *Valiant) AppendVia(buf []int, src, mid, dst int, rng *rand.Rand) []int {
	if mid == src || mid == dst {
		return v.Min.AppendPath(buf, src, dst, rng)
	}
	n0 := len(buf)
	buf = v.Min.AppendPath(buf, src, mid, rng)
	if len(buf) == n0 {
		// First leg unroutable: degrade to the second leg alone.
		return v.Min.AppendPath(buf, mid, dst, rng)
	}
	n1 := len(buf)
	buf = v.Min.AppendPath(buf, mid, dst, rng)
	if len(buf) == n1 {
		return buf // second leg unroutable: first leg alone
	}
	// Drop the duplicated joint: buf[n1] repeats mid == buf[n1-1].
	copy(buf[n1:], buf[n1+1:])
	return buf[:len(buf)-1]
}

// Candidates returns the minimal path followed by Samples valiant paths.
func (v *Valiant) Candidates(src, dst int, rng *rand.Rand) [][]int {
	out := make([][]int, 0, v.Samples+1)
	out = append(out, v.Min.Route(src, dst, rng))
	for i := 0; i < v.Samples; i++ {
		out = append(out, v.Via(src, rng.Intn(v.N), dst, rng))
	}
	return out
}
