package route

import (
	"errors"
	"testing"

	"polarstar/internal/topo"
)

func TestMultiPathErrors(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	eng := NewPolarStar(ps)
	if _, err := NewMultiPath(ps.G, eng, 0, 11, 1); !errors.Is(err, ErrTreeCount) {
		t.Errorf("lanes=0: err = %v, want ErrTreeCount", err)
	}
	if _, err := NewMultiPath(disconnectedGraph(t), nil, 2, 11, 1); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected: err = %v, want ErrDisconnected", err)
	}
}

func TestMultiPathTreePaths(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	g := ps.G
	eng := NewPolarStar(ps)
	mp, err := NewMultiPath(g, eng, 8, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mp.TreeLanes() < 3 {
		t.Fatalf("TreeLanes = %d, want >= 3 on radix-8 PolarStar", mp.TreeLanes())
	}
	n := g.N()
	for l := 0; l < mp.TreeLanes(); l++ {
		// Tree-edge set for membership checks.
		onTree := map[[2]int]bool{}
		for _, e := range mp.TreeEdges(l) {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			onTree[[2]int{a, b}] = true
		}
		if len(onTree) != n-1 {
			t.Fatalf("lane %d: %d tree edges, want n-1 = %d", l, len(onTree), n-1)
		}
		covered := 0
		for s := 0; s < n; s += 3 {
			for d := 0; d < n; d += 5 {
				if s == d {
					continue
				}
				path := mp.AppendTreePath(nil, l, s, d, nil)
				if len(path) == 0 {
					continue // pair exceeds the lane's hop bound
				}
				covered++
				if path[0] != s || path[len(path)-1] != d {
					t.Fatalf("lane %d %d->%d: endpoints %v", l, s, d, path)
				}
				if len(path)-1 > mp.LaneMaxHops(l) {
					t.Fatalf("lane %d %d->%d: %d hops > bound %d", l, s, d, len(path)-1, mp.LaneMaxHops(l))
				}
				seen := map[int]bool{}
				for i, v := range path {
					if seen[v] {
						t.Fatalf("lane %d %d->%d: revisits %d", l, s, d, v)
					}
					seen[v] = true
					if i == 0 {
						continue
					}
					a, b := path[i-1], v
					if !g.HasEdge(a, b) {
						t.Fatalf("lane %d %d->%d: (%d,%d) not a graph edge", l, s, d, a, b)
					}
					if a > b {
						a, b = b, a
					}
					if !onTree[[2]int{a, b}] {
						t.Fatalf("lane %d %d->%d: (%d,%d) leaves the tree", l, s, d, a, b)
					}
				}
			}
		}
		if covered == 0 {
			t.Fatalf("lane %d covers no sampled pairs", l)
		}
	}
}

func TestMultiPathLiveFiltersTreeEdge(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	eng := NewPolarStar(ps)
	mp, err := NewMultiPath(ps.G, eng, 3, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first tree edge of lane 0: every lane-0 path crossing it
	// must vanish, and each vanished pair must have crossed the dead edge.
	dead := mp.TreeEdges(0)[0]
	live := func(u, v int) bool {
		return !(u == dead[0] && v == dead[1]) && !(u == dead[1] && v == dead[0])
	}
	n := ps.G.N()
	lost := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d += 3 {
			if s == d {
				continue
			}
			before := mp.AppendTreePath(nil, 0, s, d, nil)
			after := mp.AppendTreePath(nil, 0, s, d, live)
			if len(before) == 0 {
				if len(after) != 0 {
					t.Fatalf("%d->%d: dead edge grew a path", s, d)
				}
				continue
			}
			crosses := false
			for i := 1; i < len(before); i++ {
				if !live(before[i-1], before[i]) {
					crosses = true
				}
			}
			if crosses {
				if len(after) != 0 {
					t.Fatalf("%d->%d: path survived its dead edge", s, d)
				}
				lost++
			} else if len(after) != len(before) {
				t.Fatalf("%d->%d: unaffected path changed", s, d)
			}
		}
	}
	if lost == 0 {
		t.Fatal("dead tree edge lost no sampled pairs; test samples too sparse")
	}
}

func TestMultiPathDelegatesToMin(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	eng := NewPolarStar(ps)
	mp, err := NewMultiPath(ps.G, eng, 2, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Min() != Engine(eng) {
		t.Error("Min() does not return the composed engine")
	}
	n := ps.G.N()
	for s := 0; s < n; s += 13 {
		for d := 0; d < n; d += 17 {
			if mp.Dist(s, d) != eng.Dist(s, d) {
				t.Fatalf("Dist(%d,%d) disagrees with min engine", s, d)
			}
		}
	}
}
