package route

import (
	"math/rand"
	"testing"

	"polarstar/internal/topo"
)

// appendPathAllocs measures steady-state heap allocations of AppendPath
// over a mix of vertex pairs, after warming the buffer to its high-water
// capacity.
func appendPathAllocs(t *testing.T, e Engine, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	buf := make([]int, 0, 64)
	pair := 0
	return testing.AllocsPerRun(200, func() {
		src := pair % n
		dst := (pair*7 + 13) % n
		pair++
		buf = e.AppendPath(buf[:0], src, dst, rng)
	})
}

// TestAppendPathZeroAllocs is the hot-path regression guard: routing a
// packet through the analytic PolarStar router or a table engine must not
// touch the heap.
func TestAppendPathZeroAllocs(t *testing.T) {
	ps, err := topo.NewPolarStar(5, 4, topo.KindIQ)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Engine{
		"polarstar": NewPolarStar(ps),
		"table-mp":  NewTable(ps.G, AllMinPaths),
		"table-sp":  NewTable(ps.G, SinglePath),
	}
	if hx, err := topo.NewHyperX(4, 4, 4); err == nil {
		engines["hyperx"] = NewHyperX(hx)
	}
	if bf, err := topo.NewBundlefly(5, 2); err == nil {
		engines["bundlefly"] = NewBundlefly(bf)
	}
	for name, e := range engines {
		n := ps.G.N()
		if name == "hyperx" {
			n = 64
		}
		if name == "bundlefly" {
			n = 150
		}
		if allocs := appendPathAllocs(t, e, n); allocs != 0 {
			t.Errorf("%s AppendPath allocates %.1f objects per call, want 0", name, allocs)
		}
	}
}

// TestAppendViaZeroAllocs covers the Valiant two-phase construction used
// by UGAL.
func TestAppendViaZeroAllocs(t *testing.T) {
	ps, err := topo.NewPolarStar(5, 4, topo.KindIQ)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValiant(NewPolarStar(ps), ps.G.N(), 4)
	rng := rand.New(rand.NewSource(1))
	buf := make([]int, 0, 64)
	pair := 0
	n := ps.G.N()
	allocs := testing.AllocsPerRun(200, func() {
		src := pair % n
		mid := (pair*5 + 7) % n
		dst := (pair*7 + 13) % n
		pair++
		buf = v.AppendVia(buf[:0], src, mid, dst, rng)
	})
	if allocs != 0 {
		t.Errorf("AppendVia allocates %.1f objects per call, want 0", allocs)
	}
}
