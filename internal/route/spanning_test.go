package route

import (
	"errors"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func validateTrees(t *testing.T, n int, trees []*SpanningTree, g interface{ HasEdge(u, v int) bool }) {
	t.Helper()
	used := map[[2]int]bool{}
	for ti, tree := range trees {
		if len(tree.Parent) != n {
			t.Fatalf("tree %d has %d vertices, want %d", ti, len(tree.Parent), n)
		}
		roots := 0
		for v, p := range tree.Parent {
			if p == -1 {
				roots++
				continue
			}
			if p < 0 {
				t.Fatalf("tree %d: vertex %d unvisited", ti, v)
			}
			if !g.HasEdge(v, int(p)) {
				t.Fatalf("tree %d: edge (%d,%d) not in graph", ti, v, p)
			}
			a, b := v, int(p)
			if a > b {
				a, b = b, a
			}
			if used[[2]int{a, b}] {
				t.Fatalf("edge (%d,%d) reused across trees", a, b)
			}
			used[[2]int{a, b}] = true
		}
		if roots != 1 {
			t.Fatalf("tree %d has %d roots", ti, roots)
		}
		// Connectivity: walking parents from every vertex reaches the root.
		for v := range tree.Parent {
			cur, steps := v, 0
			for tree.Parent[cur] != -1 {
				cur = int(tree.Parent[cur])
				if steps++; steps > n {
					t.Fatalf("tree %d has a parent cycle", ti)
				}
			}
			if cur != tree.Root {
				t.Fatalf("tree %d: vertex %d does not reach root", ti, v)
			}
		}
	}
}

func TestEdgeDisjointSpanningTreesOnPolarStar(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	trees, err := EdgeDisjointSpanningTrees(ps.G, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A radix-8 well-connected graph should yield several disjoint trees
	// (Nash–Williams bound is ~minDegree/2; greedy finds at least 2).
	if len(trees) < 2 {
		t.Fatalf("only %d disjoint spanning trees found", len(trees))
	}
	validateTrees(t, ps.G.N(), trees, ps.G)
}

func TestEdgeDisjointSpanningTreesLimit(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	trees, err := EdgeDisjointSpanningTrees(ps.G, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("limit ignored: %d trees", len(trees))
	}
	if trees[0].Root != 5 || trees[1].Root != 5 {
		t.Error("root not respected")
	}
	validateTrees(t, ps.G.N(), trees, ps.G)
}

func TestSpanningTreeDepth(t *testing.T) {
	// A path graph's spanning tree from an end has depth n-1.
	g := newCycleBuilder(6)
	trees, err := EdgeDisjointSpanningTrees(g, 0, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("C6 should give exactly 1 spanning tree, got %d", len(trees))
	}
	if d := trees[0].Depth(); d < 3 || d > 5 {
		t.Errorf("C6 tree depth = %d, want 3..5", d)
	}
	children := trees[0].Children()
	total := 0
	for _, c := range children {
		total += len(c)
	}
	if total != 5 {
		t.Errorf("tree has %d child links, want n-1 = 5", total)
	}
	edges := trees[0].Edges()
	if len(edges) != 5 {
		t.Errorf("Edges() returned %d edges, want 5", len(edges))
	}
	for _, e := range edges {
		if trees[0].Parent[e[1]] != int32(e[0]) {
			t.Errorf("Edges() pair (%d,%d) is not parent-child", e[0], e[1])
		}
	}
}

func TestTreesDeterministic(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	a, errA := EdgeDisjointSpanningTrees(ps.G, 0, 8, 7)
	b, errB := EdgeDisjointSpanningTrees(ps.G, 0, 8, 7)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic tree count")
	}
	for i := range a {
		for v := range a[i].Parent {
			if a[i].Parent[v] != b[i].Parent[v] {
				t.Fatal("non-deterministic tree shape")
			}
		}
	}
}

// disconnectedGraph builds two components (a triangle and an edge).
func disconnectedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("disconnected", 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	return b.Build()
}

func TestSpanningTreeErrors(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	extractors := map[string]func(g *graph.Graph, root, maxTrees int, seed int64) ([]*SpanningTree, error){
		"kruskal": EdgeDisjointSpanningTrees,
		"bfs":     EdgeDisjointBFSTrees,
	}
	for name, extract := range extractors {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []int{0, -1} {
				if _, err := extract(ps.G, 0, bad, 1); !errors.Is(err, ErrTreeCount) {
					t.Errorf("maxTrees=%d: err = %v, want ErrTreeCount", bad, err)
				}
			}
			if _, err := extract(disconnectedGraph(t), 0, 2, 1); !errors.Is(err, ErrDisconnected) {
				t.Errorf("disconnected graph: err = %v, want ErrDisconnected", err)
			}
			if _, err := extract(ps.G, -1, 2, 1); err == nil {
				t.Error("root out of range accepted")
			}
			if _, err := extract(ps.G, ps.G.N(), 2, 1); err == nil {
				t.Error("root beyond N accepted")
			}
		})
	}
	if _, err := NewTreeEscape(ps.G, 0, 1); !errors.Is(err, ErrTreeCount) {
		t.Errorf("NewTreeEscape maxTrees=0: err = %v, want ErrTreeCount", err)
	}
	if _, err := NewTreeEscape(disconnectedGraph(t), 2, 1); !errors.Is(err, ErrDisconnected) {
		t.Errorf("NewTreeEscape disconnected: err = %v, want ErrDisconnected", err)
	}
}

func TestEdgeDisjointBFSTreesOnPolarStar(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	trees, err := EdgeDisjointBFSTrees(ps.G, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) < 3 {
		t.Fatalf("only %d disjoint BFS trees found on radix-8 PolarStar, want >= 3", len(trees))
	}
	validateTrees(t, ps.G.N(), trees, ps.G)
	// The point of the BFS extractor: trees shallow enough to route over.
	// PolarStar-IQ(4,3) has diameter 3; edge contention between the trees
	// deepens them beyond the eccentricity, but centre re-rooting keeps
	// depth ~8 where Kruskal trees land at 14+.
	for i, tr := range trees {
		if d := tr.Depth(); d > 10 {
			t.Errorf("BFS tree %d depth = %d, want <= 10", i, d)
		}
	}
}

func TestBFSTreesDeterministic(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	a, errA := EdgeDisjointBFSTrees(ps.G, 0, 4, 7)
	b, errB := EdgeDisjointBFSTrees(ps.G, 0, 4, 7)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic tree count")
	}
	for i := range a {
		for v := range a[i].Parent {
			if a[i].Parent[v] != b[i].Parent[v] {
				t.Fatal("non-deterministic tree shape")
			}
		}
	}
}
