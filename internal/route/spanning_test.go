package route

import (
	"testing"

	"polarstar/internal/topo"
)

func validateTrees(t *testing.T, n int, trees []*SpanningTree, g interface{ HasEdge(u, v int) bool }) {
	t.Helper()
	used := map[[2]int]bool{}
	for ti, tree := range trees {
		if len(tree.Parent) != n {
			t.Fatalf("tree %d has %d vertices, want %d", ti, len(tree.Parent), n)
		}
		roots := 0
		for v, p := range tree.Parent {
			if p == -1 {
				roots++
				continue
			}
			if p < 0 {
				t.Fatalf("tree %d: vertex %d unvisited", ti, v)
			}
			if !g.HasEdge(v, int(p)) {
				t.Fatalf("tree %d: edge (%d,%d) not in graph", ti, v, p)
			}
			a, b := v, int(p)
			if a > b {
				a, b = b, a
			}
			if used[[2]int{a, b}] {
				t.Fatalf("edge (%d,%d) reused across trees", a, b)
			}
			used[[2]int{a, b}] = true
		}
		if roots != 1 {
			t.Fatalf("tree %d has %d roots", ti, roots)
		}
		// Connectivity: walking parents from every vertex reaches the root.
		for v := range tree.Parent {
			cur, steps := v, 0
			for tree.Parent[cur] != -1 {
				cur = int(tree.Parent[cur])
				if steps++; steps > n {
					t.Fatalf("tree %d has a parent cycle", ti)
				}
			}
			if cur != tree.Root {
				t.Fatalf("tree %d: vertex %d does not reach root", ti, v)
			}
		}
	}
}

func TestEdgeDisjointSpanningTreesOnPolarStar(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	trees := EdgeDisjointSpanningTrees(ps.G, 0, 0, 1)
	// A radix-8 well-connected graph should yield several disjoint trees
	// (Nash–Williams bound is ~minDegree/2; greedy finds at least 2).
	if len(trees) < 2 {
		t.Fatalf("only %d disjoint spanning trees found", len(trees))
	}
	validateTrees(t, ps.G.N(), trees, ps.G)
}

func TestEdgeDisjointSpanningTreesLimit(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	trees := EdgeDisjointSpanningTrees(ps.G, 5, 2, 1)
	if len(trees) != 2 {
		t.Fatalf("limit ignored: %d trees", len(trees))
	}
	if trees[0].Root != 5 || trees[1].Root != 5 {
		t.Error("root not respected")
	}
	validateTrees(t, ps.G.N(), trees, ps.G)
}

func TestSpanningTreeDepth(t *testing.T) {
	// A path graph's spanning tree from an end has depth n-1.
	g := newCycleBuilder(6)
	trees := EdgeDisjointSpanningTrees(g, 0, 0, 3)
	if len(trees) != 1 {
		t.Fatalf("C6 should give exactly 1 spanning tree, got %d", len(trees))
	}
	if d := trees[0].Depth(); d < 3 || d > 5 {
		t.Errorf("C6 tree depth = %d, want 3..5", d)
	}
	children := trees[0].Children()
	total := 0
	for _, c := range children {
		total += len(c)
	}
	if total != 5 {
		t.Errorf("tree has %d child links, want n-1 = 5", total)
	}
}

func TestTreesDeterministic(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	a := EdgeDisjointSpanningTrees(ps.G, 0, 0, 7)
	b := EdgeDisjointSpanningTrees(ps.G, 0, 0, 7)
	if len(a) != len(b) {
		t.Fatal("non-deterministic tree count")
	}
	for i := range a {
		for v := range a[i].Parent {
			if a[i].Parent[v] != b[i].Parent[v] {
				t.Fatal("non-deterministic tree shape")
			}
		}
	}
}
