package route

import (
	"fmt"
	"math/rand"

	"polarstar/internal/graph"
)

// MultiPath composes a minimal-path engine with k edge-disjoint spanning
// trees used as parallel routing lanes: lane 0 is the minimal engine,
// lanes 1..k are the per-tree up-down (src→LCA→dst) paths. Because the
// trees are pairwise edge-disjoint, a failed link invalidates the paths
// of at most one tree lane — the others keep carrying traffic — and
// because each tree's paths stay inside that tree, mapping every lane to
// its own virtual-channel band keeps the composite deadlock-free (see
// DESIGN.md §13). The trees come from EdgeDisjointBFSTrees, whose
// shallow rooting keeps lane paths short enough to route with, not just
// escape over.
//
// MultiPath is immutable after construction and safe for concurrent
// readers: lane path queries keep their working set in stack-local
// arrays. It implements Engine by delegating to the minimal engine, so
// it can stand wherever a single-path engine does.
type MultiPath struct {
	min     Engine
	parent  [][]int32 // per tree: vertex -> parent (-1 root)
	depth   [][]int32 // per tree: vertex -> depth from root
	maxHops []int     // per tree: usable up-down hop bound (depth- and cap-limited)
	edges   [][][2]int
}

// NewMultiPath extracts up to `lanes` edge-disjoint BFS spanning trees of
// g (deterministic per seed) as routing lanes beside the minimal engine
// min. hopCap bounds the per-lane path length (a simulator passes its
// path budget; <= 0 leaves lanes bounded by tree depth alone): pairs
// whose tree path exceeds a lane's bound simply skip that lane. Fewer
// trees than requested is not an error — TreeLanes reports how many were
// found; lanes <= 0 is ErrTreeCount and an unspannable graph is
// ErrDisconnected (both via EdgeDisjointBFSTrees).
func NewMultiPath(g *graph.Graph, min Engine, lanes, hopCap int, seed int64) (*MultiPath, error) {
	trees, err := EdgeDisjointBFSTrees(g, 0, lanes, seed)
	if err != nil {
		return nil, fmt.Errorf("route: multipath lanes: %w", err)
	}
	m := &MultiPath{min: min}
	for _, tr := range trees {
		n := len(tr.Parent)
		depth := make([]int32, n)
		maxDepth := 0
		// Parents precede children in BFS order only per tree level; a
		// simple two-pass fill: roots first, then children of settled
		// vertices until fixpoint (trees are shallow, passes are few).
		for i := range depth {
			depth[i] = -1
		}
		depth[tr.Root] = 0
		for settled := 1; settled < n; {
			progressed := false
			for v := 0; v < n; v++ {
				if depth[v] >= 0 {
					continue
				}
				if p := tr.Parent[v]; p >= 0 && depth[p] >= 0 {
					depth[v] = depth[p] + 1
					if int(depth[v]) > maxDepth {
						maxDepth = int(depth[v])
					}
					settled++
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		if maxDepth >= escMaxDepth {
			continue // pathological tree: unusable as a bounded lane
		}
		hops := 2 * maxDepth
		if hopCap > 0 && hops > hopCap {
			hops = hopCap
		}
		m.parent = append(m.parent, tr.Parent)
		m.depth = append(m.depth, depth)
		m.maxHops = append(m.maxHops, hops)
		m.edges = append(m.edges, tr.Edges())
	}
	if len(m.parent) == 0 {
		return nil, fmt.Errorf("route: multipath lanes: %w (no tree usable within depth %d)", ErrDisconnected, escMaxDepth)
	}
	return m, nil
}

// TreeLanes returns the number of tree lanes extracted (excluding the
// minimal lane 0).
func (m *MultiPath) TreeLanes() int { return len(m.parent) }

// LaneMaxHops bounds the hop count of any path AppendTreePath returns
// for tree lane l (0-based tree index).
func (m *MultiPath) LaneMaxHops(l int) int { return m.maxHops[l] }

// TreeEdges returns the undirected edges of tree lane l (0-based). The
// slice is owned by the MultiPath; callers must not mutate it.
func (m *MultiPath) TreeEdges(l int) [][2]int { return m.edges[l] }

// Min returns the composed minimal engine (lane 0).
func (m *MultiPath) Min() Engine { return m.min }

// AppendTreePath appends tree lane l's up-down path from src to dst onto
// buf and returns the extended slice — buf unchanged when the path
// exceeds the lane's hop bound or crosses a link live reports dead (nil
// live means every link is up). Deterministic: the tree fixes the path.
func (m *MultiPath) AppendTreePath(buf []int, l, src, dst int, live func(u, v int) bool) []int {
	if src == dst {
		return buf
	}
	parent, depth := m.parent[l], m.depth[l]
	if parent[src] == -2 || parent[dst] == -2 {
		return buf
	}
	var up, down [escMaxDepth]int32
	nu, nd := 0, 0
	a, b := int32(src), int32(dst)
	da, db := depth[a], depth[b]
	for da > db {
		up[nu] = a
		nu++
		a, da = parent[a], da-1
	}
	for db > da {
		down[nd] = b
		nd++
		b, db = parent[b], db-1
	}
	for a != b {
		up[nu] = a
		down[nd] = b
		nu++
		nd++
		a, b = parent[a], parent[b]
	}
	if nu+nd > m.maxHops[l] {
		return buf
	}
	if live != nil && !treePathLive(up[:nu], a, down[:nd], live) {
		return buf
	}
	for i := 0; i < nu; i++ {
		buf = append(buf, int(up[i]))
	}
	buf = append(buf, int(a))
	for i := nd - 1; i >= 0; i-- {
		buf = append(buf, int(down[i]))
	}
	return buf
}

// Route implements Engine via the minimal lane.
func (m *MultiPath) Route(src, dst int, rng *rand.Rand) []int {
	return m.min.Route(src, dst, rng)
}

// AppendPath implements Engine via the minimal lane.
func (m *MultiPath) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	return m.min.AppendPath(buf, src, dst, rng)
}

// Dist implements Engine via the minimal lane.
func (m *MultiPath) Dist(src, dst int) int { return m.min.Dist(src, dst) }
