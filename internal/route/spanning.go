package route

import (
	"math/rand"

	"polarstar/internal/graph"
)

// Edge-disjoint spanning trees (EDSTs). The paper's companion work
// (Dawkins et al., "Edge-Disjoint Spanning Trees on Star-Product
// Networks", cited in §6.1.1) uses EDSTs for in-network collectives:
// k disjoint trees carry k parallel reduction flows, multiplying
// collective bandwidth. This implementation extracts trees greedily —
// each tree is a randomized BFS spanning tree over the edges not used by
// earlier trees — which does not always reach the Nash–Williams optimum
// but is simple, fast and deterministic per seed.

// SpanningTree is a rooted tree over the full vertex set: Parent[v] is
// v's parent router (-1 at the root).
type SpanningTree struct {
	Root   int
	Parent []int32
}

// Children returns the children lists of the tree.
func (t *SpanningTree) Children() [][]int32 {
	out := make([][]int32, len(t.Parent))
	for v, p := range t.Parent {
		if p >= 0 {
			out[p] = append(out[p], int32(v))
		}
	}
	return out
}

// Depth returns the maximum root-to-leaf distance.
func (t *SpanningTree) Depth() int {
	depth := make([]int, len(t.Parent))
	max := 0
	var dfs func(v int) int
	dfs = func(v int) int {
		p := t.Parent[v]
		if p < 0 {
			return 0
		}
		if depth[v] == 0 {
			depth[v] = dfs(int(p)) + 1
		}
		return depth[v]
	}
	for v := range t.Parent {
		if d := dfs(v); d > max {
			max = d
		}
	}
	return max
}

// EdgeDisjointSpanningTrees extracts up to maxTrees pairwise
// edge-disjoint spanning trees rooted at root (maxTrees <= 0 extracts as
// many as the greedy process finds). Each tree is a randomized-Kruskal
// spanning tree over the edges unused by earlier trees — the random edge
// order spreads degree usage, so a high-degree vertex does not donate all
// its edges to the first tree. Deterministic for a given seed.
func EdgeDisjointSpanningTrees(g *graph.Graph, root, maxTrees int, seed int64) []*SpanningTree {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	remaining := g.Edges()
	var trees []*SpanningTree
	uf := make([]int32, n)
	var find func(int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	for maxTrees <= 0 || len(trees) < maxTrees {
		rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })
		for i := range uf {
			uf[i] = int32(i)
		}
		adj := make([][]int32, n) // tree adjacency
		taken := 0
		unusedTail := remaining[:0]
		for _, e := range remaining {
			if taken == n-1 {
				unusedTail = append(unusedTail, e)
				continue
			}
			ru, rv := find(int32(e[0])), find(int32(e[1]))
			if ru == rv {
				unusedTail = append(unusedTail, e)
				continue
			}
			uf[ru] = rv
			adj[e[0]] = append(adj[e[0]], int32(e[1]))
			adj[e[1]] = append(adj[e[1]], int32(e[0]))
			taken++
		}
		if taken != n-1 {
			break // remaining edges no longer span the graph
		}
		remaining = unusedTail
		// Root the tree at `root` by BFS over its own edges.
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = -2
		}
		parent[root] = -1
		queue := []int32{int32(root)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				if parent[v] == -2 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		trees = append(trees, &SpanningTree{Root: root, Parent: parent})
	}
	return trees
}
