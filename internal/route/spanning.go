package route

import (
	"errors"
	"fmt"
	"math/rand"

	"polarstar/internal/graph"
)

// Edge-disjoint spanning trees (EDSTs). The paper's companion work
// (Dawkins et al., "Edge-Disjoint Spanning Trees on Star-Product
// Networks", cited in §6.1.1) uses EDSTs for in-network collectives:
// k disjoint trees carry k parallel reduction flows, multiplying
// collective bandwidth. Two greedy extractors are provided — a
// randomized-Kruskal one that spreads degree usage (the escape-router
// construction) and a BFS one that keeps trees shallow (the multipath
// lane construction) — neither always reaches the Nash–Williams optimum
// but both are simple, fast and deterministic per seed.

// Typed extraction errors, checkable with errors.Is.
var (
	// ErrTreeCount rejects a non-positive maxTrees: the callers that used
	// to pass 0 for "as many as possible" now pass an explicit bound
	// (e.g. the graph's degree — no graph yields more EDSTs than that).
	ErrTreeCount = errors.New("route: maxTrees must be positive")
	// ErrDisconnected means the graph has no spanning tree at all (empty
	// or disconnected), so no EDST extraction is possible.
	ErrDisconnected = errors.New("route: graph has no spanning tree")
)

// SpanningTree is a rooted tree over the full vertex set: Parent[v] is
// v's parent router (-1 at the root).
type SpanningTree struct {
	Root   int
	Parent []int32
}

// Children returns the children lists of the tree.
func (t *SpanningTree) Children() [][]int32 {
	out := make([][]int32, len(t.Parent))
	for v, p := range t.Parent {
		if p >= 0 {
			out[p] = append(out[p], int32(v))
		}
	}
	return out
}

// Depth returns the maximum root-to-leaf distance.
func (t *SpanningTree) Depth() int {
	depth := make([]int, len(t.Parent))
	max := 0
	var dfs func(v int) int
	dfs = func(v int) int {
		p := t.Parent[v]
		if p < 0 {
			return 0
		}
		if depth[v] == 0 {
			depth[v] = dfs(int(p)) + 1
		}
		return depth[v]
	}
	for v := range t.Parent {
		if d := dfs(v); d > max {
			max = d
		}
	}
	return max
}

// Edges returns the undirected tree edges (parent, child) in child order.
func (t *SpanningTree) Edges() [][2]int {
	out := make([][2]int, 0, len(t.Parent)-1)
	for v, p := range t.Parent {
		if p >= 0 {
			out = append(out, [2]int{int(p), v})
		}
	}
	return out
}

// checkExtractable validates the shared preconditions of both
// extractors: a positive tree bound and a root inside a non-empty graph.
func checkExtractable(g *graph.Graph, root, maxTrees int) error {
	if maxTrees <= 0 {
		return fmt.Errorf("%w, got %d", ErrTreeCount, maxTrees)
	}
	if g.N() == 0 {
		return fmt.Errorf("%w (empty graph)", ErrDisconnected)
	}
	if root < 0 || root >= g.N() {
		return fmt.Errorf("route: root %d outside graph with %d vertices", root, g.N())
	}
	return nil
}

// EdgeDisjointSpanningTrees extracts up to maxTrees pairwise
// edge-disjoint spanning trees rooted at root. Each tree is a
// randomized-Kruskal spanning tree over the edges unused by earlier
// trees — the random edge order spreads degree usage, so a high-degree
// vertex does not donate all its edges to the first tree. Deterministic
// for a given seed. maxTrees <= 0 is ErrTreeCount; a graph with no
// spanning tree at all (empty or disconnected) is ErrDisconnected.
// Fewer than maxTrees trees (but at least one) is not an error: the
// greedy process simply ran out of spanning edge sets.
func EdgeDisjointSpanningTrees(g *graph.Graph, root, maxTrees int, seed int64) ([]*SpanningTree, error) {
	if err := checkExtractable(g, root, maxTrees); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	remaining := g.Edges()
	var trees []*SpanningTree
	uf := make([]int32, n)
	var find func(int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	for len(trees) < maxTrees {
		rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })
		for i := range uf {
			uf[i] = int32(i)
		}
		adj := make([][]int32, n) // tree adjacency
		taken := 0
		unusedTail := remaining[:0]
		for _, e := range remaining {
			if taken == n-1 {
				unusedTail = append(unusedTail, e)
				continue
			}
			ru, rv := find(int32(e[0])), find(int32(e[1]))
			if ru == rv {
				unusedTail = append(unusedTail, e)
				continue
			}
			uf[ru] = rv
			adj[e[0]] = append(adj[e[0]], int32(e[1]))
			adj[e[1]] = append(adj[e[1]], int32(e[0]))
			taken++
		}
		if taken != n-1 {
			break // remaining edges no longer span the graph
		}
		remaining = unusedTail
		// Root the tree at `root` by BFS over its own edges.
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = -2
		}
		parent[root] = -1
		queue := []int32{int32(root)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				if parent[v] == -2 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		trees = append(trees, &SpanningTree{Root: root, Parent: parent})
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("%w (%s: %d vertices, %d edges)", ErrDisconnected, g.Name(), n, g.M())
	}
	return trees, nil
}

// EdgeDisjointBFSTrees extracts up to maxTrees pairwise edge-disjoint
// shallow spanning trees rooted at root. The k trees grow together,
// round-robin, one parent adoption per tree per turn, each tree adopting
// in FIFO (BFS) order over the shared pool of unclaimed edges — the
// interleaving stops any single tree from monopolising a vertex's edges
// (a plain sequential BFS spends every root edge on tree 1 and leaves
// the root isolated in the residual graph). When growth stalls with a
// few vertices cut off behind fully-claimed edges, a single-swap
// augmentation frees a claimed cut edge by re-attaching its owner tree
// through a different unclaimed edge (a one-step matroid-union exchange);
// if not even that makes progress the whole attempt retries with k-1
// trees, so every returned tree is a complete spanning tree. BFS order
// keeps depths near the root's eccentricity — far shallower than Kruskal
// trees on low-diameter networks — which is what makes the trees usable
// as bounded-length routing lanes rather than only as escape paths.
// Deterministic per seed. Error contract matches
// EdgeDisjointSpanningTrees.
func EdgeDisjointBFSTrees(g *graph.Graph, root, maxTrees int, seed int64) ([]*SpanningTree, error) {
	if err := checkExtractable(g, root, maxTrees); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 1 {
		return []*SpanningTree{{Root: root, Parent: []int32{-1}}}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-vertex shuffled neighbor visiting order, shared by every
	// attempt (trees still differ: the claimed-edge pool shifts).
	perm := make([][]int32, n)
	for u := 0; u < n; u++ {
		perm[u] = make([]int32, len(g.Neighbors(u)))
		for i := range perm[u] {
			perm[u][i] = int32(i)
		}
		rng.Shuffle(len(perm[u]), func(i, j int) { perm[u][i], perm[u][j] = perm[u][j], perm[u][i] })
	}
	kMax := maxTrees
	if d := len(g.Neighbors(root)); kMax > d {
		kMax = d // each tree needs its own root edge
	}
	if nw := g.M() / (n - 1); kMax > nw {
		kMax = nw // Nash–Williams edge-count ceiling
	}
	used := make([]bool, g.NumChannels())
	for k := kMax; k >= 1; k-- {
		for i := range used {
			used[i] = false
		}
		st := &bfsTreesState{g: g, n: n, root: root, k: k, perm: perm, used: used}
		st.init()
		for {
			st.grow()
			if st.complete() {
				trees := make([]*SpanningTree, k)
				for t := 0; t < k; t++ {
					trees[t] = recenter(st.parent[t])
				}
				return trees, nil
			}
			if !st.repairOnce() {
				break // no exchange helps: retry with one tree fewer
			}
		}
	}
	return nil, fmt.Errorf("%w (%s: %d vertices, %d edges)", ErrDisconnected, g.Name(), n, g.M())
}

// bfsTreesState is one attempt (fixed tree count k) of the interleaved
// extraction behind EdgeDisjointBFSTrees.
type bfsTreesState struct {
	g       *graph.Graph
	n, root int
	k       int
	perm    [][]int32
	used    []bool // channel id -> claimed as a tree edge (both directions)

	parent  [][]int32
	queues  [][]int32 // per tree: its vertices in adoption (BFS) order
	heads   []int     // per tree: scan cursor into queues
	reached []int
	stuck   []bool
}

func (st *bfsTreesState) init() {
	st.parent = make([][]int32, st.k)
	st.queues = make([][]int32, st.k)
	st.heads = make([]int, st.k)
	st.reached = make([]int, st.k)
	st.stuck = make([]bool, st.k)
	for t := 0; t < st.k; t++ {
		st.parent[t] = make([]int32, st.n)
		for i := range st.parent[t] {
			st.parent[t][i] = -2
		}
		st.parent[t][st.root] = -1
		st.queues[t] = []int32{int32(st.root)}
		st.reached[t] = 1
	}
}

func (st *bfsTreesState) complete() bool {
	for t := 0; t < st.k; t++ {
		if st.reached[t] != st.n {
			return false
		}
	}
	return true
}

func (st *bfsTreesState) claim(u, v int) {
	st.used[st.g.ChannelID(u, v)] = true
	st.used[st.g.ChannelID(v, u)] = true
}

func (st *bfsTreesState) unclaim(u, v int) {
	st.used[st.g.ChannelID(u, v)] = false
	st.used[st.g.ChannelID(v, u)] = false
}

// grow runs round-robin single-adoption turns to a fixpoint: every tree
// is complete or stuck (no unclaimed edge crosses its cut).
func (st *bfsTreesState) grow() {
	g := st.g
	for {
		progressed := false
		for t := 0; t < st.k; t++ {
			if st.stuck[t] || st.reached[t] == st.n {
				continue
			}
			adopted := false
			for st.heads[t] < len(st.queues[t]) {
				u := int(st.queues[t][st.heads[t]])
				first := g.FirstChannel(u)
				nbrs := g.Neighbors(u)
				for _, kk := range st.perm[u] {
					if st.used[first+int(kk)] {
						continue
					}
					v := nbrs[kk]
					if st.parent[t][v] != -2 {
						continue
					}
					st.parent[t][v] = int32(u)
					st.used[first+int(kk)] = true
					st.used[g.ChannelID(int(v), u)] = true
					st.queues[t] = append(st.queues[t], v)
					st.reached[t]++
					adopted = true
					break
				}
				if adopted {
					break
				}
				st.heads[t]++ // u exhausted; only repairOnce can re-open it
			}
			if adopted {
				progressed = true
			} else {
				st.stuck[t] = true
			}
		}
		if !progressed {
			return
		}
	}
}

// repairOnce performs one exchange: a stuck tree t wants the claimed cut
// edge (u,v) (u in t, v not); its owner t2 holds it as a tree edge whose
// removal splits off subtree B. If some unclaimed edge (a,b) re-attaches
// B (a in B, b in the rest of t2), t2 is rewired over (a,b), (u,v) is
// freed and t adopts v through it. Returns whether any exchange was
// made; on success the stuck flags and scan cursors reset so growth can
// resume (an edge was unclaimed, adoptable sets grew back).
func (st *bfsTreesState) repairOnce() bool {
	for t := 0; t < st.k; t++ {
		if st.stuck[t] && st.reached[t] < st.n && st.tryExchange(t) {
			for i := range st.stuck {
				st.stuck[i] = false
				st.heads[i] = 0
			}
			return true
		}
	}
	return false
}

func (st *bfsTreesState) tryExchange(t int) bool {
	g := st.g
	for v := 0; v < st.n; v++ {
		if st.parent[t][v] != -2 {
			continue
		}
		for _, kk := range st.perm[v] {
			u := int(g.Neighbors(v)[kk])
			if st.parent[t][u] == -2 {
				continue // not a cut edge of t
			}
			// (u,v) crosses t's cut and is necessarily claimed (grow ran
			// to fixpoint); find its owner t2 != t.
			t2 := -1
			for c := 0; c < st.k; c++ {
				if st.parent[c][v] == int32(u) || st.parent[c][u] == int32(v) {
					t2 = c
					break
				}
			}
			if t2 < 0 {
				continue
			}
			child := v
			if st.parent[t2][u] == int32(v) {
				child = u
			}
			if st.reattach(t2, child, u, v) {
				st.parent[t][v] = int32(u)
				st.claim(u, v)
				st.queues[t] = append(st.queues[t], int32(v))
				st.reached[t]++
				return true
			}
		}
	}
	return false
}

// reattach detaches subtree B rooted at child from tree t2 (cutting the
// edge child—parent[child], which is exU—exV) and re-attaches it through
// an unclaimed edge into the rest of t2, re-rooting B at the new
// attachment point. Among all candidate edges (a in B, b in the rest of
// t2) it picks the one minimising the re-attached subtree's deepest
// vertex (depth(b) + 1 + ecc_B(a)) — unguided repairs chain subtrees
// into deep paths that are useless as bounded-length lanes. Returns
// false, leaving t2 untouched, if no candidate edge exists.
func (st *bfsTreesState) reattach(t2, child, exU, exV int) bool {
	g := st.g
	inB := make([]bool, st.n)
	order := []int32{int32(child)}
	inB[child] = true
	kids := make([][]int32, st.n)
	root2 := -1
	for v := 0; v < st.n; v++ {
		p := st.parent[t2][v]
		if p >= 0 {
			kids[p] = append(kids[p], int32(v))
		} else if p == -1 {
			root2 = v
		}
	}
	for head := 0; head < len(order); head++ {
		for _, c := range kids[order[head]] {
			inB[c] = true
			order = append(order, c)
		}
	}
	// Depths of the surviving part of t2 (B's depths are about to change).
	depth2 := make([]int32, st.n)
	if root2 >= 0 {
		q := []int32{int32(root2)}
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, c := range kids[u] {
				depth2[c] = depth2[u] + 1
				q = append(q, c)
			}
		}
	}
	// Tree adjacency inside B, for per-candidate eccentricity.
	adjB := make([][]int32, st.n)
	for _, x := range order {
		if int(x) == child {
			continue
		}
		p := st.parent[t2][x]
		adjB[x] = append(adjB[x], p)
		adjB[p] = append(adjB[p], x)
	}
	eccB := func(a int32) int {
		dist := make([]int32, st.n)
		for _, x := range order {
			dist[x] = -1
		}
		dist[a] = 0
		q := []int32{a}
		far := 0
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, w := range adjB[u] {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					if int(dist[w]) > far {
						far = int(dist[w])
					}
					q = append(q, w)
				}
			}
		}
		return far
	}
	bestA, bestB, bestScore := -1, -1, 0
	eccCache := make(map[int32]int, len(order))
	for _, a32 := range order {
		a := int(a32)
		first := g.FirstChannel(a)
		nbrs := g.Neighbors(a)
		for _, kk := range st.perm[a] {
			if st.used[first+int(kk)] {
				continue
			}
			b := int(nbrs[kk])
			if inB[b] || st.parent[t2][b] == -2 {
				continue
			}
			ecc, ok := eccCache[a32]
			if !ok {
				ecc = eccB(a32)
				eccCache[a32] = ecc
			}
			score := int(depth2[b]) + 1 + ecc
			if bestA < 0 || score < bestScore {
				bestA, bestB, bestScore = a, b, score
			}
		}
	}
	if bestA < 0 {
		return false
	}
	// Re-root B at bestA: reverse the parent chain bestA → child.
	prev, cur := int32(bestB), int32(bestA)
	for {
		next := st.parent[t2][cur]
		st.parent[t2][cur] = prev
		if int(cur) == child {
			break
		}
		prev, cur = cur, next
	}
	st.claim(bestA, bestB)
	st.unclaim(exU, exV)
	return true
}

// recenter re-roots a spanning tree (given as a parent array it takes
// ownership of) at its centre, minimising depth: repair exchanges drag
// the extraction root off-centre, and lane usefulness is bounded by
// depth. Double BFS finds a diameter path; the midpoint is the centre.
func recenter(parent []int32) *SpanningTree {
	n := len(parent)
	adj := make([][]int32, n)
	oldRoot := 0
	for v, p := range parent {
		if p >= 0 {
			adj[p] = append(adj[p], int32(v))
			adj[v] = append(adj[v], p)
		} else if p == -1 {
			oldRoot = v
		}
	}
	bfs := func(src int32) (dist, par []int32, far int32) {
		dist = make([]int32, n)
		par = make([]int32, n)
		for i := range dist {
			dist[i], par[i] = -1, -2
		}
		dist[src], par[src] = 0, -1
		q := []int32{src}
		far = src
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, w := range adj[u] {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					par[w] = u
					if dist[w] > dist[far] {
						far = w
					}
					q = append(q, w)
				}
			}
		}
		return dist, par, far
	}
	_, _, x := bfs(int32(oldRoot))
	distX, parX, y := bfs(x)
	c := y
	for i := distX[y] / 2; i > 0; i-- {
		c = parX[c]
	}
	_, parC, _ := bfs(c)
	return &SpanningTree{Root: int(c), Parent: parC}
}
