package route

import (
	"math/rand"
	"testing"

	"polarstar/internal/topo"
)

func BenchmarkAnalyticRoutePSIQ(b *testing.B) {
	ps := topo.MustNewPolarStar(11, 3, topo.KindIQ)
	r := NewPolarStar(ps)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		_ = r.Route(src, dst, rng)
	}
}

func BenchmarkTableBuildPSIQ(b *testing.B) {
	ps := topo.MustNewPolarStar(11, 3, topo.KindIQ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTable(ps.G, AllMinPaths)
	}
}

func BenchmarkTableRoutePSIQ(b *testing.B) {
	ps := topo.MustNewPolarStar(11, 3, topo.KindIQ)
	t := NewTable(ps.G, AllMinPaths)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		_ = t.Route(src, dst, rng)
	}
}

func BenchmarkEdgeDisjointPaths(b *testing.B) {
	ps := topo.MustNewPolarStar(5, 4, topo.KindIQ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EdgeDisjointPaths(ps.G, 0, ps.G.N()-1, 0)
	}
}
