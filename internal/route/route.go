// Package route implements the routing engines of the evaluation (§9.2,
// §9.3): table-based minimal routing with single- or all-minpath
// selection, the storage-light analytic PolarStar minpath router, and
// topology-specific minimal routers for Dragonfly, HyperX, Fat-tree and
// Megafly. Valiant/UGAL path selection is layered on top of any Engine.
//
// Every engine exposes two path APIs: Route, which returns a freshly
// allocated path, and AppendPath, the allocation-free hot-path variant
// that appends the path onto a caller-owned scratch buffer. The cycle
// simulator and the analytic link-load sweeps route millions of packets;
// they call AppendPath exclusively, so steady-state routing performs zero
// heap allocations (see the testing.AllocsPerRun regression tests).
package route

import (
	"math/rand"
	"runtime"

	"polarstar/internal/graph"
)

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Engine computes router-level paths through one topology.
type Engine interface {
	// Route returns a minimal path from src to dst as a vertex sequence
	// including both endpoints (nil for src == dst). Engines with path
	// diversity use rng to sample among minimal paths; deterministic
	// engines ignore it.
	Route(src, dst int, rng *rand.Rand) []int
	// AppendPath appends the same path Route would return onto buf and
	// returns the extended slice (buf unchanged for src == dst or
	// unreachable pairs). Implementations perform no heap allocation
	// beyond growing buf, and consume rng exactly as Route does, so the
	// two APIs are interchangeable under a fixed seed.
	AppendPath(buf []int, src, dst int, rng *rand.Rand) []int
	// Dist returns the hop distance from src to dst.
	Dist(src, dst int) int
}

// Table is the all-pairs BFS routing engine: a distance table plus
// per-step next-hop sampling. Mode MultiPath samples uniformly among all
// minimal next hops at every step (the "all minpaths in routing tables"
// configuration used for Spectralfly and Bundlefly in §9.3); SinglePath
// always picks the lowest-numbered next hop (one fixed minpath per pair).
type Table struct {
	g    *graph.Graph
	dist []uint8 // n*n hop distances
	mode TableMode
}

// TableMode selects minpath diversity for Table engines.
type TableMode int

const (
	// SinglePath deterministically uses one minimal path per pair.
	SinglePath TableMode = iota
	// MultiPath samples uniformly among minimal next hops per step.
	MultiPath
)

// NewTable builds the all-pairs table for g. Graphs are limited to 65534
// vertices and diameter 254 (far beyond every evaluated configuration).
func NewTable(g *graph.Graph, mode TableMode) *Table {
	return NewTableInto(g, mode, nil)
}

// NewTableInto is NewTable reusing slab as the n×n distance backing when
// it has sufficient capacity (pass the Slab of a dead Table to rebuild
// routing tables across fault trials without reallocating).
func NewTableInto(g *graph.Graph, mode TableMode, slab []uint8) *Table {
	n := g.N()
	if cap(slab) < n*n {
		slab = make([]uint8, n*n)
	}
	t := &Table{g: g, dist: slab[:n*n], mode: mode}
	// Parallel BFS over sources.
	parallelFor(n, func(src int, row []int32, scratch *graph.BFSScratch) {
		g.BFSDistancesScratch(src, row, scratch)
		base := src * n
		for v, d := range row {
			if d < 0 {
				t.dist[base+v] = 0xff
			} else {
				t.dist[base+v] = uint8(d)
			}
		}
	})
	return t
}

// Slab exposes the distance backing for reuse via NewTableInto. The table
// must not be used after its slab has been handed to a new table.
func (t *Table) Slab() []uint8 { return t.dist }

// Dist implements Engine.
func (t *Table) Dist(src, dst int) int {
	d := t.dist[src*t.g.N()+dst]
	if d == 0xff {
		return -1
	}
	return int(d)
}

// Route implements Engine.
func (t *Table) Route(src, dst int, rng *rand.Rand) []int {
	return t.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine.
func (t *Table) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return buf
	}
	n := t.g.N()
	if t.dist[src*n+dst] == 0xff {
		return buf
	}
	buf = append(buf, src)
	cur := src
	for cur != dst {
		d := t.dist[cur*n+dst]
		var pick int32 = -1
		count := 0
		for _, w := range t.g.Neighbors(cur) {
			if t.dist[int(w)*n+dst] == d-1 {
				if t.mode == SinglePath {
					pick = w
					break
				}
				count++
				if rng.Intn(count) == 0 {
					pick = w
				}
			}
		}
		cur = int(pick)
		buf = append(buf, cur)
	}
	return buf
}

// Graph returns the underlying graph.
func (t *Table) Graph() *graph.Graph { return t.g }

// PathValid reports whether path is a valid walk in g from its first to
// its last element.
func PathValid(g *graph.Graph, path []int) bool {
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// parallelFor runs fn(i, row, scratch) for i in [0, n) across GOMAXPROCS
// workers; each worker owns one reusable distance row and BFS scratch.
func parallelFor(n int, fn func(int, []int32, *graph.BFSScratch)) {
	workers := workerCount(n)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			row := make([]int32, n)
			var scratch graph.BFSScratch
			for i := w; i < n; i += workers {
				fn(i, row, &scratch)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
