// Package route implements the routing engines of the evaluation (§9.2,
// §9.3): table-based minimal routing with single- or all-minpath
// selection, the storage-light analytic PolarStar minpath router, and
// topology-specific minimal routers for Dragonfly, HyperX, Fat-tree and
// Megafly. Valiant/UGAL path selection is layered on top of any Engine.
//
// Every engine exposes two path APIs: Route, which returns a freshly
// allocated path, and AppendPath, the allocation-free hot-path variant
// that appends the path onto a caller-owned scratch buffer. The cycle
// simulator and the analytic link-load sweeps route millions of packets;
// they call AppendPath exclusively, so steady-state routing performs zero
// heap allocations (see the testing.AllocsPerRun regression tests).
package route

import (
	"math/rand"
	"runtime"

	"polarstar/internal/graph"
)

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Engine computes router-level paths through one topology.
type Engine interface {
	// Route returns a minimal path from src to dst as a vertex sequence
	// including both endpoints (nil for src == dst). Engines with path
	// diversity use rng to sample among minimal paths; deterministic
	// engines ignore it.
	Route(src, dst int, rng *rand.Rand) []int
	// AppendPath appends the same path Route would return onto buf and
	// returns the extended slice (buf unchanged for src == dst or
	// unreachable pairs). Implementations perform no heap allocation
	// beyond growing buf, and consume rng exactly as Route does, so the
	// two APIs are interchangeable under a fixed seed.
	AppendPath(buf []int, src, dst int, rng *rand.Rand) []int
	// Dist returns the hop distance from src to dst.
	Dist(src, dst int) int
}

// Table is the all-pairs BFS routing engine: a distance table plus
// per-step next-hop sampling. Mode AllMinPaths samples uniformly among all
// minimal next hops at every step (the "all minpaths in routing tables"
// configuration used for Spectralfly and Bundlefly in §9.3); SinglePath
// always picks the lowest-numbered next hop (one fixed minpath per pair).
type Table struct {
	g    *graph.Graph
	dist []uint8 // n*n hop distances
	mode TableMode

	// Minimal-next-hop CSR (AllMinPaths only): nh[nhOff[src*n+dst] :
	// nhOff[src*n+dst+1]] lists the neighbors of src one hop closer to
	// dst, in ascending adjacency order. Precomputed at build time so
	// AppendPath samples a next hop in O(candidates) instead of scanning
	// every neighbor with a distance lookup per hop.
	nhOff []int32
	nh    []int32

	// Incremental-repair scratch (see repair.go), allocated on the first
	// DropEdge and reused across repairs.
	rs *repairScratch
}

// TableMode selects minpath diversity for Table engines.
type TableMode int

const (
	// SinglePath deterministically uses one minimal path per pair.
	SinglePath TableMode = iota
	// AllMinPaths samples uniformly among minimal next hops per step.
	AllMinPaths
)

// NewTable builds the all-pairs table for g. Graphs are limited to 65534
// vertices and diameter 254 (far beyond every evaluated configuration).
func NewTable(g *graph.Graph, mode TableMode) *Table {
	return NewTableInto(g, mode, nil)
}

// NewTableInto is NewTable reusing slab as the n×n distance backing when
// it has sufficient capacity (pass the Slab of a dead Table to rebuild
// routing tables across fault trials without reallocating).
func NewTableInto(g *graph.Graph, mode TableMode, slab []uint8) *Table {
	n := g.N()
	if cap(slab) < n*n {
		slab = make([]uint8, n*n)
	}
	t := &Table{g: g, dist: slab[:n*n], mode: mode}
	// Parallel BFS over sources.
	parallelFor(n, func(src int, row []int32, scratch *graph.BFSScratch) {
		g.BFSDistancesScratch(src, row, scratch)
		base := src * n
		for v, d := range row {
			if d < 0 {
				t.dist[base+v] = 0xff
			} else {
				t.dist[base+v] = uint8(d)
			}
		}
	})
	if mode == AllMinPaths {
		t.buildNextHops()
	}
	return t
}

// buildNextHops fills the minimal-next-hop CSR: a parallel count pass, a
// serial prefix sum, then a parallel fill pass. Both passes stream the
// source's and each neighbor's distance rows sequentially; the fill
// keeps a per-destination cursor in the worker's scratch row.
func (t *Table) buildNextHops() {
	n := t.g.N()
	t.nhOff = make([]int32, n*n+1)
	parallelFor(n, func(src int, _ []int32, _ *graph.BFSScratch) {
		base := src * n
		cnt := t.nhOff[base+1 : base+n+1]
		sRow := t.dist[base : base+n]
		for _, w := range t.g.Neighbors(src) {
			wRow := t.dist[int(w)*n : int(w)*n+n]
			for dst, d := range sRow {
				if d != 0 && d != 0xff && wRow[dst] == d-1 {
					cnt[dst]++
				}
			}
		}
	})
	var total int32
	for i := 1; i < len(t.nhOff); i++ {
		total += t.nhOff[i]
		t.nhOff[i] = total
	}
	t.nh = make([]int32, total)
	parallelFor(n, func(src int, pos []int32, _ *graph.BFSScratch) {
		base := src * n
		copy(pos, t.nhOff[base:base+n])
		sRow := t.dist[base : base+n]
		for _, w := range t.g.Neighbors(src) {
			wRow := t.dist[int(w)*n : int(w)*n+n]
			for dst, d := range sRow {
				if d != 0 && d != 0xff && wRow[dst] == d-1 {
					t.nh[pos[dst]] = w
					pos[dst]++
				}
			}
		}
	})
}

// Slab exposes the distance backing for reuse via NewTableInto. The table
// must not be used after its slab has been handed to a new table.
func (t *Table) Slab() []uint8 { return t.dist }

// Mode returns the table's minpath-diversity mode.
func (t *Table) Mode() TableMode { return t.mode }

// MaxDist returns the maximum finite pairwise distance — the diameter of
// the largest-diameter connected component. Degraded-topology sweeps use
// it as the exact path-length bound (the intact diameter no longer
// applies once links fail).
func (t *Table) MaxDist() int {
	max := 0
	for _, d := range t.dist {
		if d != 0xff && int(d) > max {
			max = int(d)
		}
	}
	return max
}

// Dist implements Engine.
func (t *Table) Dist(src, dst int) int {
	d := t.dist[src*t.g.N()+dst]
	if d == 0xff {
		return -1
	}
	return int(d)
}

// Route implements Engine.
func (t *Table) Route(src, dst int, rng *rand.Rand) []int {
	return t.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine.
func (t *Table) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return buf
	}
	n := t.g.N()
	if t.dist[src*n+dst] == 0xff {
		return buf
	}
	buf = append(buf, src)
	cur := src
	if t.mode == AllMinPaths {
		// O(candidates) per hop off the precomputed CSR. The reservoir
		// draw sequence — rng.Intn(k) per candidate in ascending
		// adjacency order — matches the neighbor-scan implementation
		// exactly, so paths are byte-identical under a fixed seed.
		for cur != dst {
			row := t.nh[t.nhOff[cur*n+dst]:t.nhOff[cur*n+dst+1]]
			pick := row[0]
			for k := 1; k <= len(row); k++ {
				if rng.Intn(k) == 0 {
					pick = row[k-1]
				}
			}
			cur = int(pick)
			buf = append(buf, cur)
		}
		return buf
	}
	for cur != dst {
		d := t.dist[cur*n+dst]
		var pick int32 = -1
		for _, w := range t.g.Neighbors(cur) {
			if t.dist[int(w)*n+dst] == d-1 {
				pick = w
				break
			}
		}
		cur = int(pick)
		buf = append(buf, cur)
	}
	return buf
}

// Graph returns the underlying graph.
func (t *Table) Graph() *graph.Graph { return t.g }

// PathValid reports whether path is a valid walk in g from its first to
// its last element.
func PathValid(g *graph.Graph, path []int) bool {
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// parallelFor runs fn(i, row, scratch) for i in [0, n) across GOMAXPROCS
// workers; each worker owns one reusable distance row and BFS scratch.
func parallelFor(n int, fn func(int, []int32, *graph.BFSScratch)) {
	workers := workerCount(n)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			row := make([]int32, n)
			var scratch graph.BFSScratch
			for i := w; i < n; i += workers {
				fn(i, row, &scratch)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
