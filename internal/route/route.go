// Package route implements the routing engines of the evaluation (§9.2,
// §9.3): table-based minimal routing with single- or all-minpath
// selection, the storage-light analytic PolarStar minpath router, and
// topology-specific minimal routers for Dragonfly, HyperX, Fat-tree and
// Megafly. Valiant/UGAL path selection is layered on top of any Engine.
package route

import (
	"math/rand"
	"runtime"

	"polarstar/internal/graph"
)

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Engine computes router-level paths through one topology.
type Engine interface {
	// Route returns a minimal path from src to dst as a vertex sequence
	// including both endpoints (nil for src == dst). Engines with path
	// diversity use rng to sample among minimal paths; deterministic
	// engines ignore it.
	Route(src, dst int, rng *rand.Rand) []int
	// Dist returns the hop distance from src to dst.
	Dist(src, dst int) int
}

// Table is the all-pairs BFS routing engine: a distance table plus
// per-step next-hop sampling. Mode MultiPath samples uniformly among all
// minimal next hops at every step (the "all minpaths in routing tables"
// configuration used for Spectralfly and Bundlefly in §9.3); SinglePath
// always picks the lowest-numbered next hop (one fixed minpath per pair).
type Table struct {
	g    *graph.Graph
	dist []uint8 // n*n hop distances
	mode TableMode
}

// TableMode selects minpath diversity for Table engines.
type TableMode int

const (
	// SinglePath deterministically uses one minimal path per pair.
	SinglePath TableMode = iota
	// MultiPath samples uniformly among minimal next hops per step.
	MultiPath
)

// NewTable builds the all-pairs table for g. Graphs are limited to 65534
// vertices and diameter 254 (far beyond every evaluated configuration).
func NewTable(g *graph.Graph, mode TableMode) *Table {
	n := g.N()
	t := &Table{g: g, dist: make([]uint8, n*n), mode: mode}
	// Parallel BFS over sources.
	parallelFor(n, func(src int) {
		row := make([]int32, n)
		g.BFSDistances(src, row)
		base := src * n
		for v, d := range row {
			if d < 0 {
				t.dist[base+v] = 0xff
			} else {
				t.dist[base+v] = uint8(d)
			}
		}
	})
	return t
}

// Dist implements Engine.
func (t *Table) Dist(src, dst int) int {
	d := t.dist[src*t.g.N()+dst]
	if d == 0xff {
		return -1
	}
	return int(d)
}

// Route implements Engine.
func (t *Table) Route(src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return nil
	}
	n := t.g.N()
	if t.dist[src*n+dst] == 0xff {
		return nil
	}
	path := []int{src}
	cur := src
	for cur != dst {
		d := t.dist[cur*n+dst]
		var pick int32 = -1
		count := 0
		for _, w := range t.g.Neighbors(cur) {
			if t.dist[int(w)*n+dst] == d-1 {
				if t.mode == SinglePath {
					pick = w
					break
				}
				count++
				if rng.Intn(count) == 0 {
					pick = w
				}
			}
		}
		cur = int(pick)
		path = append(path, cur)
	}
	return path
}

// Graph returns the underlying graph.
func (t *Table) Graph() *graph.Graph { return t.g }

// PathValid reports whether path is a valid walk in g from its first to
// its last element.
func PathValid(g *graph.Graph, path []int) bool {
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(int)) {
	workers := workerCount(n)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				fn(i)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
