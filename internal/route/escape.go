package route

import "polarstar/internal/graph"

// TreeEscape routes around failed links over edge-disjoint spanning
// trees (the Dawkins et al. companion-work structure, §6.1.1): each tree
// yields one up-down src→LCA→dst path, and because the trees are
// pairwise edge-disjoint, a single failed link invalidates the path of
// at most one tree. The simulator uses it as the escape router when all
// minimal next hops of an analytically routed topology are down; its
// paths are simple (tree paths are vertex-simple), so they stay
// deadlock-free under the simulator's strictly-increasing VC ladder.
//
// TreeEscape is immutable after construction and safe for concurrent
// readers: AppendPath keeps its working set in stack-local arrays.
type TreeEscape struct {
	parent [][]int32 // per tree: vertex -> parent (-1 root, -2 unreached)
	depth  [][]int32 // per tree: vertex -> depth from root
}

// escMaxDepth bounds tree depth usable by AppendPath; ascents deeper
// than this skip the tree (simulator paths are capped far below anyway).
const escMaxDepth = 64

// NewTreeEscape extracts up to maxTrees edge-disjoint spanning trees of g
// (deterministic per seed) and prepares them for liveness-checked path
// queries. It shares EdgeDisjointSpanningTrees's error contract:
// maxTrees <= 0 is ErrTreeCount and a graph with no spanning tree is
// ErrDisconnected. Callers that can live without escape paths (the
// simulator's fault machinery) may fall back to a zero TreeEscape, whose
// AppendPath always fails over to its caller's last resort.
func NewTreeEscape(g *graph.Graph, maxTrees int, seed int64) (*TreeEscape, error) {
	trees, err := EdgeDisjointSpanningTrees(g, 0, maxTrees, seed)
	if err != nil {
		return nil, err
	}
	te := &TreeEscape{}
	for _, tr := range trees {
		depth := make([]int32, len(tr.Parent))
		for i := range depth {
			depth[i] = -1
		}
		var dfs func(v int32) int32
		dfs = func(v int32) int32 {
			if depth[v] >= 0 {
				return depth[v]
			}
			p := tr.Parent[v]
			if p < 0 {
				depth[v] = 0
			} else {
				depth[v] = dfs(p) + 1
			}
			return depth[v]
		}
		for v := range tr.Parent {
			if tr.Parent[v] != -2 {
				dfs(int32(v))
			}
		}
		te.parent = append(te.parent, tr.Parent)
		te.depth = append(te.depth, depth)
	}
	return te, nil
}

// Trees returns the number of escape trees available.
func (te *TreeEscape) Trees() int { return len(te.parent) }

// AppendPath appends the shortest fully-live up-down tree path from src
// to dst onto buf and returns the extended slice (buf unchanged when no
// tree offers one). live reports whether the directed link u→v is
// usable; nil means every link is live. Ties between equally short tree
// paths break toward the lowest tree index, so results are deterministic.
func (te *TreeEscape) AppendPath(buf []int, src, dst int, live func(u, v int) bool) []int {
	if src == dst {
		return buf
	}
	bestTree, bestLen := -1, 0
	var bestUp, bestDown [escMaxDepth]int32
	var bestNU, bestND int
	var bestLCA int32
	for ti := range te.parent {
		parent, depth := te.parent[ti], te.depth[ti]
		if parent[src] == -2 || parent[dst] == -2 {
			continue
		}
		var up, down [escMaxDepth]int32
		nu, nd := 0, 0
		a, b := int32(src), int32(dst)
		da, db := depth[a], depth[b]
		if da >= escMaxDepth || db >= escMaxDepth {
			continue
		}
		for da > db {
			up[nu] = a
			nu++
			a, da = parent[a], da-1
		}
		for db > da {
			down[nd] = b
			nd++
			b, db = parent[b], db-1
		}
		for a != b {
			up[nu] = a
			down[nd] = b
			nu++
			nd++
			a, b = parent[a], parent[b]
		}
		length := nu + nd // hops: up to the LCA and back down
		if bestTree >= 0 && length >= bestLen {
			continue
		}
		if live != nil && !treePathLive(up[:nu], a, down[:nd], live) {
			continue
		}
		bestTree, bestLen = ti, length
		bestUp, bestDown = up, down
		bestNU, bestND, bestLCA = nu, nd, a
	}
	if bestTree < 0 {
		return buf
	}
	for i := 0; i < bestNU; i++ {
		buf = append(buf, int(bestUp[i]))
	}
	buf = append(buf, int(bestLCA))
	for i := bestND - 1; i >= 0; i-- {
		buf = append(buf, int(bestDown[i]))
	}
	return buf
}

// treePathLive checks every directed hop of the up-LCA-down walk.
func treePathLive(up []int32, lca int32, down []int32, live func(u, v int) bool) bool {
	prev := int32(-1)
	for _, v := range up {
		if prev >= 0 && !live(int(prev), int(v)) {
			return false
		}
		prev = v
	}
	if prev >= 0 && !live(int(prev), int(lca)) {
		return false
	}
	prev = lca
	for i := len(down) - 1; i >= 0; i-- {
		if !live(int(prev), int(down[i])) {
			return false
		}
		prev = down[i]
	}
	return true
}
