package route

import (
	"fmt"
	"math/rand"

	"polarstar/internal/topo"
)

// PolarStar is the analytic minpath router of §9.2. It computes exact
// minimal paths from factor-graph knowledge only — the ER_q orthogonality
// oracle (cross products), the supernode adjacency and the bijection f —
// so its state is O(q² + d'²) instead of the O(N²) of product-wide
// routing tables. This is the storage argument of the paper: Spectralfly
// and Bundlefly need all-minpath tables for competitive performance,
// PolarStar does not.
//
// The router supports both supernode families: involutions (IQ, BDF,
// Property R*) and Paley (Property R1, where f² is an automorphism and
// arc orientation matters).
//
// All case analysis is written in append form over a caller-owned buffer
// (AppendPath), so routing a packet performs zero heap allocations.
type PolarStar struct {
	ps   *topo.PolarStar
	fInv []int
}

// NewPolarStar builds the analytic router for a PolarStar instance.
func NewPolarStar(ps *topo.PolarStar) *PolarStar {
	fInv := make([]int, len(ps.Super.F))
	for x, y := range ps.Super.F {
		fInv[y] = x
	}
	return &PolarStar{ps: ps, fInv: fInv}
}

// cross returns the supernode-local vertex reached when traversing the
// structure arc u→v carrying local coordinate z. The star product
// orients structure edges low-to-high, applying f forward.
func (r *PolarStar) cross(u, v, z int) int {
	if u < v {
		return r.ps.Super.F[z]
	}
	return r.fInv[z]
}

// crossInv returns the local coordinate that arrives at z after
// traversing u→v.
func (r *PolarStar) crossInv(u, v, z int) int {
	if u < v {
		return r.fInv[z]
	}
	return r.ps.Super.F[z]
}

// loopHops returns the local vertices reachable from z via the
// loop-induced intra-supernode edges of a quadric supernode — f(z) and
// f⁻¹(z), excluding fixed points — as a fixed-size array plus count, so
// the hot path never allocates.
func (r *PolarStar) loopHops(z int) (hops [2]int, n int) {
	f, fi := r.ps.Super.F[z], r.fInv[z]
	switch {
	case f == z:
		return hops, 0
	case f == fi:
		hops[0] = f
		return hops, 1
	default:
		hops[0], hops[1] = f, fi
		return hops, 2
	}
}

// node maps (structure vertex, local vertex) to the product vertex id.
func (r *PolarStar) node(x, xp int) int { return r.ps.VertexAt(x, xp) }

// Dist implements Engine.
func (r *PolarStar) Dist(src, dst int) int {
	return len(r.Route(src, dst, nil)) - 1
}

// Route implements Engine. The returned path is provably minimal; see the
// exhaustive cross-check against BFS ground truth in the tests.
func (r *PolarStar) Route(src, dst int, rng *rand.Rand) []int {
	return r.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine.
func (r *PolarStar) AppendPath(buf []int, src, dst int, _ *rand.Rand) []int {
	if src == dst {
		return buf
	}
	x, xp := r.ps.GroupOf(src), r.ps.LocalOf(src)
	y, yp := r.ps.GroupOf(dst), r.ps.LocalOf(dst)
	switch {
	case x == y:
		return r.appendSameSupernode(buf, x, xp, yp)
	case r.ps.Structure.G.HasEdge(x, y):
		return r.appendAdjacent(buf, x, xp, y, yp)
	default:
		return r.appendDistant(buf, x, xp, y, yp)
	}
}

// appendSameSupernode handles source and destination in one supernode.
func (r *PolarStar) appendSameSupernode(buf []int, x, xp, yp int) []int {
	sup := r.ps.Super.G
	quadric := r.ps.Structure.IsQuadric(x)
	src, dst := r.node(x, xp), r.node(x, yp)

	// Distance 1: supernode edge, or quadric loop edge.
	if sup.HasEdge(xp, yp) {
		return append(buf, src, dst)
	}
	if quadric {
		lh, nl := r.loopHops(xp)
		for _, l := range lh[:nl] {
			if l == yp {
				return append(buf, src, dst)
			}
		}
	}
	// Distance 2, form 1: common supernode neighbor.
	for _, z := range sup.Neighbors(xp) {
		if sup.HasEdge(int(z), yp) {
			return append(buf, src, r.node(x, int(z)), dst)
		}
	}
	if quadric {
		// Distance 2, loop-mixed forms.
		lh, nl := r.loopHops(xp)
		for _, l := range lh[:nl] {
			if sup.HasEdge(l, yp) {
				return append(buf, src, r.node(x, l), dst)
			}
			lh2, nl2 := r.loopHops(l)
			for _, l2 := range lh2[:nl2] {
				if l2 == yp {
					return append(buf, src, r.node(x, l), dst)
				}
			}
		}
		for _, z := range sup.Neighbors(xp) {
			lh2, nl2 := r.loopHops(int(z))
			for _, l := range lh2[:nl2] {
				if l == yp {
					return append(buf, src, r.node(x, int(z)), dst)
				}
			}
		}
	}
	// Distance 3 (§9.2 via a neighboring supernode). For the involution
	// families, either y' = f(x') (alternating-path detour) or
	// (f(x'), f(y')) ∈ E'. For Paley, (g(x'), g(y')) ∈ E' for the arc
	// map g in both directions whenever (x', y') ∉ E'.
	f := r.ps.Super.F
	for _, wa := range r.ps.Structure.G.Neighbors(x) {
		a := int(wa)
		g1xp := r.cross(x, a, xp)
		g1yp := r.cross(x, a, yp)
		// Detour through supernode a using an intra edge (or, for the
		// y' = f(x') case, the f-pairing realized by a second structure
		// walk).
		if sup.HasEdge(g1xp, g1yp) {
			return append(buf, r.node(x, xp), r.node(a, g1xp), r.node(a, g1yp), r.node(x, yp))
		}
		if yp == f[xp] || yp == r.fInv[xp] {
			// Alternating path: (x,x') → (a, g1(x')) → (w, ·) → (x, y')
			// along a structure 2-walk a → w → x.
			w := r.ps.Structure.CommonNeighbor(a, x)
			mid := r.cross(a, w, g1xp)
			if w == a {
				// a is quadric: the middle hop is a loop edge at a.
				lh, nl := r.loopHops(g1xp)
				for _, l := range lh[:nl] {
					if r.cross(a, x, l) == yp {
						return append(buf, r.node(x, xp), r.node(a, g1xp), r.node(a, l), r.node(x, yp))
					}
				}
				continue
			}
			if w == x {
				continue // degenerate: would revisit the source supernode
			}
			if r.cross(w, x, mid) == yp {
				return append(buf, r.node(x, xp), r.node(a, g1xp), r.node(w, mid), r.node(x, yp))
			}
		}
	}
	panic(fmt.Sprintf("route: PolarStar same-supernode case fell through (x=%d x'=%d y'=%d)", x, xp, yp))
}

// appendAdjacent handles structure-adjacent supernodes; the distance is
// always 1 or 2 (Properties R*/R1 guarantee a 2-hop form).
func (r *PolarStar) appendAdjacent(buf []int, x, xp, y, yp int) []int {
	sup := r.ps.Super.G
	src, dst := r.node(x, xp), r.node(y, yp)
	g := r.cross(x, y, xp)
	// Distance 1.
	if g == yp {
		return append(buf, src, dst)
	}
	// Form 2: inter then intra.
	if sup.HasEdge(g, yp) {
		return append(buf, src, r.node(y, g), dst)
	}
	// Form 1: intra then inter.
	if z := r.crossInv(x, y, yp); sup.HasEdge(xp, z) {
		return append(buf, src, r.node(x, z), dst)
	}
	// Loop forms at quadric endpoints.
	if r.ps.Structure.IsQuadric(x) {
		lh, nl := r.loopHops(xp)
		for _, l := range lh[:nl] {
			if r.cross(x, y, l) == yp {
				return append(buf, src, r.node(x, l), dst)
			}
		}
	}
	if r.ps.Structure.IsQuadric(y) {
		lh, nl := r.loopHops(g)
		for _, l := range lh[:nl] {
			if l == yp {
				return append(buf, src, r.node(y, g), dst)
			}
		}
	}
	// Via the common neighbor w of x and y (the alternating-path form,
	// which in particular covers y' == x' for involutions).
	w := r.ps.Structure.CommonNeighbor(x, y)
	if w != x && w != y {
		if r.cross(w, y, r.cross(x, w, xp)) == yp {
			return append(buf, src, r.node(w, r.cross(x, w, xp)), dst)
		}
	}
	panic(fmt.Sprintf("route: PolarStar adjacent-supernode case fell through (x=%d x'=%d y=%d y'=%d)", x, xp, y, yp))
}

// appendDistant handles supernodes at structure distance 2.
func (r *PolarStar) appendDistant(buf []int, x, xp, y, yp int) []int {
	src := r.node(x, xp)
	// The unique common neighbor of x and y in ER_q.
	w := r.ps.Structure.CommonNeighbor(x, y)
	mid := r.cross(x, w, xp)
	// Distance 2: the only 2-hop form is through w.
	if r.cross(w, y, mid) == yp {
		return append(buf, src, r.node(w, mid), r.node(y, yp))
	}
	// Distance 3: hop to (w, ·), then solve the adjacent-supernode case.
	buf = append(buf, src)
	return r.appendAdjacent(buf, w, mid, y, yp)
}
