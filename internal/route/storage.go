package route

// Routing-state accounting: the §9.2/§9.3 storage argument quantified.
// The paper's point is that Spectralfly and Bundlefly need all-minpath
// routing tables (per-router state linear in the network size) for
// competitive performance, while PolarStar computes minpaths from
// factor-graph state that is quadratic only in the factor sizes.

// StateBytes estimates the total routing state of the Table engine: one
// distance byte per (router, destination) pair — the floor for
// destination-based table routing; all-minpath next-hop sets add a
// per-destination next-hop list on top (reported by NextHopEntries).
func (t *Table) StateBytes() int64 {
	n := int64(t.g.N())
	return n * n
}

// MemBytes reports the actual heap footprint of the table's routing
// arrays — the number a serving layer charges against its resident-spec
// budget. Unlike StateBytes (the paper's storage model) this counts what
// the process really holds: the distance matrix plus, in AllMinPaths mode,
// the next-hop CSR.
func (t *Table) MemBytes() int64 {
	return int64(len(t.dist)) + 4*int64(len(t.nhOff)) + 4*int64(len(t.nh))
}

// NextHopEntries counts the total (router, destination, minimal next
// hop) entries an all-minpath routing table stores — the storage the
// paper attributes to SF/BF MIN routing.
func (t *Table) NextHopEntries() int64 {
	n := t.g.N()
	var total int64
	for r := 0; r < n; r++ {
		for dst := 0; dst < n; dst++ {
			if r == dst {
				continue
			}
			d := t.dist[r*n+dst]
			for _, w := range t.g.Neighbors(r) {
				if t.dist[int(w)*n+dst] == d-1 {
					total++
				}
			}
		}
	}
	return total
}

// PerRouterStateBytes returns the per-router state of the analytic
// PolarStar router: the structure-graph adjacency (q²+q+1 vertices of
// degree ≤ q+1, 4-byte ids), the supernode adjacency and bijection, and
// the 3-element field vectors behind the cross-product oracle. This is
// O(q² + d'²), independent of the product size — the §9.2 claim.
func (r *PolarStar) PerRouterStateBytes() int64 {
	ps := r.ps
	erN := int64(ps.Structure.N())
	erAdj := erN * int64(ps.Structure.Degree()) * 4
	erVecs := erN * 3 * 4
	sn := int64(ps.Super.N())
	superAdj := sn * int64(ps.Super.Degree()) * 4
	bijection := sn * 4 * 2 // f and f⁻¹
	return erAdj + erVecs + superAdj + bijection
}

// TableStateComparison summarizes both storage models for a PolarStar
// instance of n routers.
type TableStateComparison struct {
	Routers             int
	AnalyticPerRouter   int64 // bytes (§9.2 router)
	TablePerRouter      int64 // bytes, distance-row floor (n bytes)
	AllMinpathEntries   int64 // total next-hop entries network-wide
	AllMinpathPerRouter int64 // entries per router
}

// CompareState builds the storage comparison between the analytic
// PolarStar router and an all-minpath table on the same product graph.
func CompareState(r *PolarStar, t *Table) TableStateComparison {
	n := t.g.N()
	entries := t.NextHopEntries()
	return TableStateComparison{
		Routers:             n,
		AnalyticPerRouter:   r.PerRouterStateBytes(),
		TablePerRouter:      int64(n),
		AllMinpathEntries:   entries,
		AllMinpathPerRouter: entries / int64(n),
	}
}
