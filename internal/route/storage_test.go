package route

import (
	"testing"

	"polarstar/internal/topo"
)

func TestStorageComparison(t *testing.T) {
	ps := topo.MustNewPolarStar(5, 4, topo.KindIQ) // 310 routers
	r := NewPolarStar(ps)
	tab := NewTable(ps.G, AllMinPaths)
	cmp := CompareState(r, tab)
	if cmp.Routers != 310 {
		t.Fatalf("routers = %d", cmp.Routers)
	}
	// The analytic router's state must be much smaller than the network
	// size would suggest: O(q²+d'²) vs O(n) per router for tables.
	if cmp.AnalyticPerRouter <= 0 {
		t.Fatal("analytic state non-positive")
	}
	if cmp.AllMinpathPerRouter < int64(cmp.Routers)-1 {
		t.Errorf("all-minpath entries per router = %d, want >= n-1", cmp.AllMinpathPerRouter)
	}
	// Next-hop entries must be at least one per (router, destination).
	if cmp.AllMinpathEntries < int64(cmp.Routers)*int64(cmp.Routers-1) {
		t.Errorf("total entries = %d below the 1-per-pair floor", cmp.AllMinpathEntries)
	}
	// Table distance state grows quadratically with the network; the
	// analytic state does not grow with the product order at all for
	// fixed factors. Cross-check with a larger product: same supernode,
	// bigger structure graph.
	big := topo.MustNewPolarStar(9, 4, topo.KindIQ) // 910 routers
	rBig := NewPolarStar(big)
	if rBig.PerRouterStateBytes() >= int64(big.G.N())*int64(big.G.N())/8 {
		t.Errorf("analytic state %d not far below table state %d",
			rBig.PerRouterStateBytes(), big.G.N()*big.G.N())
	}
}

func TestNextHopEntriesOnCycle(t *testing.T) {
	// C_5: every pair has a unique minimal next hop except... on an odd
	// cycle all shortest paths are unique: entries = n(n-1).
	b := newCycleBuilder(5)
	tab := NewTable(b, AllMinPaths)
	if got := tab.NextHopEntries(); got != 20 {
		t.Errorf("C5 next-hop entries = %d, want 20", got)
	}
	// C_4: opposite vertices have two minimal next hops: per router 1+2+1.
	b4 := newCycleBuilder(4)
	tab4 := NewTable(b4, AllMinPaths)
	if got := tab4.NextHopEntries(); got != 16 {
		t.Errorf("C4 next-hop entries = %d, want 16", got)
	}
}
