package route

import (
	"bytes"
	"math/rand"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

// TestRepairMatchesRebuild is the property test behind DropEdge's
// contract: after every one of 200 random edge removals the incrementally
// repaired table must be bit-identical — distances, CSR offsets and
// next-hop lists — to a from-scratch NewTable on the degraded graph,
// including once the removals disconnect the graph.
func TestRepairMatchesRebuild(t *testing.T) {
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"ps-iq", topo.MustNewPolarStar(3, 3, topo.KindIQ).G},
		{"df", topo.MustNewDragonfly(4, 2).G},
		{"hx", topo.MustNewHyperX(3, 3, 3).G},
	}
	for _, tc := range topos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(11))
			cur := tc.g
			tab := NewTable(tc.g, AllMinPaths).Clone() // repair in place, keep tc.g's table pristine
			removals := 200
			if m := tc.g.M(); removals > m-1 {
				removals = m - 1
			}
			for i := 0; i < removals; i++ {
				edges := cur.Edges()
				e := edges[rng.Intn(len(edges))]
				tab.DropEdge(e[0], e[1])
				cur = cur.RemoveEdges([][2]int{e})
				ref := NewTable(cur, AllMinPaths)
				if !bytes.Equal(tab.dist, ref.dist) {
					t.Fatalf("removal %d (%v): repaired dist differs from rebuild", i, e)
				}
				if !eqInt32(tab.nhOff, ref.nhOff) {
					t.Fatalf("removal %d (%v): repaired nhOff differs from rebuild", i, e)
				}
				if !eqInt32(tab.nh, ref.nh) {
					t.Fatalf("removal %d (%v): repaired nh differs from rebuild", i, e)
				}
			}
		})
	}
}

// TestRepairDropMissingEdgeNoop pins that dropping an absent edge leaves
// the table untouched.
func TestRepairDropMissingEdgeNoop(t *testing.T) {
	g := topo.MustNewPolarStar(3, 3, topo.KindIQ).G
	tab := NewTable(g, AllMinPaths).Clone()
	e := g.Edges()[0]
	tab.DropEdge(e[0], e[1])
	tab.DropEdge(e[0], e[1]) // second drop: the edge is already gone
	cur := g.RemoveEdges([][2]int{e})
	want := NewTable(cur, AllMinPaths)
	if !bytes.Equal(tab.dist, want.dist) || !eqInt32(tab.nh, want.nh) {
		t.Fatal("double DropEdge diverged from single removal")
	}
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
