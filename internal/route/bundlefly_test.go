package route

import (
	"math/rand"
	"testing"

	"polarstar/internal/topo"
)

// TestBundleflyAnalyticMinimal: the analytic Bundlefly router must return
// valid, exactly-minimal paths for every ordered pair, matching BFS.
func TestBundleflyAnalyticMinimal(t *testing.T) {
	for _, c := range []struct{ q, d int }{{4, 2}, {5, 2}} {
		bf := topo.MustNewBundlefly(c.q, c.d)
		r := NewBundlefly(bf)
		truth := NewTable(bf.G, SinglePath)
		n := bf.G.N()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				path := r.Route(src, dst, nil)
				if src == dst {
					if path != nil {
						t.Fatalf("self path not nil")
					}
					continue
				}
				if !PathValid(bf.G, path) {
					t.Fatalf("q=%d d'=%d: invalid path %v (src=%d dst=%d)", c.q, c.d, path, src, dst)
				}
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("wrong endpoints %v", path)
				}
				if got, want := len(path)-1, truth.Dist(src, dst); got != want {
					t.Fatalf("q=%d d'=%d: src=%d dst=%d analytic %d != BFS %d (%v)",
						c.q, c.d, src, dst, got, want, path)
				}
			}
		}
	}
}

func TestBundleflyAnalyticSpotCheckTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bf := topo.MustNewBundlefly(7, 4) // the 882-router Table 3 config
	r := NewBundlefly(bf)
	truth := NewTable(bf.G, SinglePath)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		src, dst := rng.Intn(bf.G.N()), rng.Intn(bf.G.N())
		if src == dst {
			continue
		}
		path := r.Route(src, dst, nil)
		if !PathValid(bf.G, path) || len(path)-1 != truth.Dist(src, dst) {
			t.Fatalf("mismatch at src=%d dst=%d: %v (want %d)", src, dst, path, truth.Dist(src, dst))
		}
	}
}

// TestBundleflyPathDiversityAvailable: unlike PolarStar (whose minimal
// paths are near-unique), Bundlefly pairs at supernode distance 2 can
// have several minimal paths (multiple common MMS neighbors with a
// matching crossing composition), which is the diversity the paper's
// all-minpath tables exploit. Verify the table router actually samples
// more than one minimal path for some pair.
func TestBundleflyPathDiversityAvailable(t *testing.T) {
	bf := topo.MustNewBundlefly(5, 2)
	multi := NewTable(bf.G, AllMinPaths)
	rng := rand.New(rand.NewSource(5))
	diverse := false
	for src := 0; src < bf.G.N() && !diverse; src += 17 {
		for dst := 0; dst < bf.G.N() && !diverse; dst += 13 {
			if src == dst || multi.Dist(src, dst) < 2 {
				continue
			}
			seen := map[int]bool{}
			for k := 0; k < 32; k++ {
				seen[multi.Route(src, dst, rng)[1]] = true
			}
			diverse = len(seen) > 1
		}
	}
	if !diverse {
		t.Error("no minimal path diversity found on Bundlefly")
	}
}
