package route

import (
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func edgeSetOf(path []int) map[[2]int]bool {
	s := map[[2]int]bool{}
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if u > v {
			u, v = v, u
		}
		s[[2]int{u, v}] = true
	}
	return s
}

func assertDisjointValid(t *testing.T, g *graph.Graph, paths [][]int, src, dst int) {
	t.Helper()
	used := map[[2]int]bool{}
	for _, p := range paths {
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		if !PathValid(g, p) {
			t.Fatalf("invalid path: %v", p)
		}
		for e := range edgeSetOf(p) {
			if used[e] {
				t.Fatalf("edge %v reused", e)
			}
			used[e] = true
		}
	}
}

func TestEdgeDisjointPathsComplete(t *testing.T) {
	// K_6: exactly 5 edge-disjoint paths between any pair.
	b := graph.NewBuilder("k6", 6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	paths := EdgeDisjointPaths(g, 0, 5, 0)
	if len(paths) != 5 {
		t.Fatalf("K6 disjoint paths = %d, want 5", len(paths))
	}
	assertDisjointValid(t, g, paths, 0, 5)
}

func TestEdgeDisjointPathsCycle(t *testing.T) {
	g := newCycleBuilder(8)
	paths := EdgeDisjointPaths(g, 0, 4, 0)
	if len(paths) != 2 {
		t.Fatalf("C8 disjoint paths = %d, want 2", len(paths))
	}
	assertDisjointValid(t, g, paths, 0, 4)
}

func TestEdgeDisjointPathsPlantedBottleneck(t *testing.T) {
	// Two K_5 blobs joined by exactly 3 bridges: max disjoint paths = 3.
	b := graph.NewBuilder("bottleneck", 10)
	for c := 0; c < 2; c++ {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(c*5+i, c*5+j)
			}
		}
	}
	b.AddEdge(0, 5)
	b.AddEdge(1, 6)
	b.AddEdge(2, 7)
	g := b.Build()
	paths := EdgeDisjointPaths(g, 3, 8, 0)
	if len(paths) != 3 {
		t.Fatalf("bottleneck disjoint paths = %d, want 3", len(paths))
	}
	assertDisjointValid(t, g, paths, 3, 8)
	// Limit respected.
	if got := EdgeDisjointPaths(g, 3, 8, 2); len(got) != 2 {
		t.Errorf("limit 2 returned %d paths", len(got))
	}
}

// TestPolarStarEdgeConnectivity: PolarStar's bisection/resilience story
// rests on rich path diversity — the edge connectivity of small
// instances equals the minimum degree (the best possible).
func TestPolarStarEdgeConnectivity(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	k := EdgeConnectivityLB(ps.G, 0) // exact: all targets
	if k != ps.G.MinDegree() {
		t.Errorf("edge connectivity = %d, want min degree %d", k, ps.G.MinDegree())
	}
}

func TestEdgeDisjointDegenerate(t *testing.T) {
	g := newCycleBuilder(4)
	if EdgeDisjointPaths(g, 2, 2, 0) != nil {
		t.Error("self pair should have no paths")
	}
	// Disconnected pair.
	b := graph.NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if got := EdgeDisjointPaths(b.Build(), 0, 3, 0); len(got) != 0 {
		t.Errorf("disconnected pair returned %d paths", len(got))
	}
}
