package route

import (
	"math/rand"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func TestTableRouting(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	g := ps.G
	tab := NewTable(g, AllMinPaths)
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < g.N(); src += 7 {
		for dst := 0; dst < g.N(); dst += 5 {
			path := tab.Route(src, dst, rng)
			if src == dst {
				if path != nil {
					t.Fatalf("self path should be nil")
				}
				continue
			}
			if !PathValid(g, path) {
				t.Fatalf("invalid path %v", path)
			}
			if len(path)-1 != tab.Dist(src, dst) {
				t.Fatalf("path length %d != dist %d", len(path)-1, tab.Dist(src, dst))
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("path endpoints wrong")
			}
		}
	}
}

// referenceNextHopPath replicates the pre-CSR AllMinPaths AppendPath: a
// reservoir scan over all neighbors with a distance lookup per step. The
// CSR implementation must consume the RNG identically and produce
// byte-identical paths.
func referenceNextHopPath(tab *Table, buf []int, src, dst int, rng *rand.Rand) []int {
	if src == dst {
		return buf
	}
	g := tab.Graph()
	n := g.N()
	if tab.Dist(src, dst) < 0 {
		return buf
	}
	buf = append(buf, src)
	cur := src
	for cur != dst {
		d := tab.dist[cur*n+dst]
		var pick int32 = -1
		count := 0
		for _, w := range g.Neighbors(cur) {
			if tab.dist[int(w)*n+dst] == d-1 {
				count++
				if rng.Intn(count) == 0 {
					pick = w
				}
			}
		}
		cur = int(pick)
		buf = append(buf, cur)
	}
	return buf
}

func TestTableMultiPathCSRMatchesScan(t *testing.T) {
	for _, g := range []*graph.Graph{
		topo.MustNewPolarStar(3, 3, topo.KindIQ).G,
		topo.MustNewDragonfly(4, 2).G,
		topo.MustNewLPS(13, 5).G,
	} {
		tab := NewTable(g, AllMinPaths)
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		var bufA, bufB []int
		for src := 0; src < g.N(); src += 3 {
			for dst := 0; dst < g.N(); dst += 7 {
				bufA = tab.AppendPath(bufA[:0], src, dst, rngA)
				bufB = referenceNextHopPath(tab, bufB[:0], src, dst, rngB)
				if len(bufA) != len(bufB) {
					t.Fatalf("%s %d->%d: CSR path %v != scan path %v", g.Name(), src, dst, bufA, bufB)
				}
				for i := range bufA {
					if bufA[i] != bufB[i] {
						t.Fatalf("%s %d->%d: CSR path %v != scan path %v", g.Name(), src, dst, bufA, bufB)
					}
				}
			}
		}
	}
}

func TestTableSinglePathDeterministic(t *testing.T) {
	df := topo.MustNewDragonfly(4, 2)
	tab := NewTable(df.G, SinglePath)
	rng := rand.New(rand.NewSource(1))
	p1 := tab.Route(0, df.G.N()-1, rng)
	p2 := tab.Route(0, df.G.N()-1, rng)
	if len(p1) != len(p2) {
		t.Fatal("single path lengths differ")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("single-path mode is not deterministic")
		}
	}
}

// TestPolarStarAnalyticMinimal is the central routing correctness test:
// on full PolarStar instances of all three supernode kinds, the analytic
// §9.2 router must return a VALID and MINIMAL path for every ordered
// vertex pair, matching BFS ground truth exactly.
func TestPolarStarAnalyticMinimal(t *testing.T) {
	cases := []struct {
		q, d int
		kind topo.SupernodeKind
	}{
		{3, 3, topo.KindIQ},
		{3, 4, topo.KindIQ},
		{4, 3, topo.KindIQ},
		{5, 4, topo.KindIQ},
		{3, 2, topo.KindPaley},
		{4, 2, topo.KindPaley},
		{5, 4, topo.KindPaley},
		{3, 3, topo.KindBDF},
		{4, 4, topo.KindBDF},
		{3, 2, topo.KindComplete},
	}
	for _, c := range cases {
		ps := topo.MustNewPolarStar(c.q, c.d, c.kind)
		r := NewPolarStar(ps)
		truth := NewTable(ps.G, SinglePath)
		n := ps.G.N()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				path := r.Route(src, dst, nil)
				want := truth.Dist(src, dst)
				if src == dst {
					if path != nil {
						t.Fatalf("%v: self path not nil", ps.G)
					}
					continue
				}
				if !PathValid(ps.G, path) {
					t.Fatalf("%v: invalid analytic path %v (src=%d dst=%d)", ps.G, path, src, dst)
				}
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("%v: wrong endpoints %v", ps.G, path)
				}
				if got := len(path) - 1; got != want {
					t.Fatalf("%v: src=%d dst=%d analytic length %d != BFS %d (path %v)",
						ps.G, src, dst, got, want, path)
				}
			}
		}
	}
}

func TestPolarStarAnalyticLargerSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The Table 3 configuration, sampled pairs.
	ps := topo.MustNewPolarStar(11, 3, topo.KindIQ)
	r := NewPolarStar(ps)
	truth := NewTable(ps.G, SinglePath)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		path := r.Route(src, dst, nil)
		if src == dst {
			continue
		}
		if !PathValid(ps.G, path) || len(path)-1 != truth.Dist(src, dst) {
			t.Fatalf("mismatch at src=%d dst=%d: %v (want dist %d)", src, dst, path, truth.Dist(src, dst))
		}
	}
}

func TestHyperXRouting(t *testing.T) {
	hx := topo.MustNewHyperX(4, 5, 3)
	r := NewHyperX(hx)
	truth := NewTable(hx.G, SinglePath)
	rng := rand.New(rand.NewSource(2))
	for src := 0; src < hx.G.N(); src += 3 {
		for dst := 0; dst < hx.G.N(); dst += 2 {
			if src == dst {
				continue
			}
			path := r.Route(src, dst, rng)
			if !PathValid(hx.G, path) {
				t.Fatalf("invalid path %v", path)
			}
			if len(path)-1 != truth.Dist(src, dst) || r.Dist(src, dst) != truth.Dist(src, dst) {
				t.Fatalf("non-minimal: %v (want %d)", path, truth.Dist(src, dst))
			}
		}
	}
}

func TestHyperXPathDiversity(t *testing.T) {
	hx := topo.MustNewHyperX(3, 3, 3)
	r := NewHyperX(hx)
	rng := rand.New(rand.NewSource(3))
	src, dst := hx.VertexAt([]int{0, 0, 0}), hx.VertexAt([]int{1, 1, 1})
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		path := r.Route(src, dst, rng)
		seen[path[1]] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 distinct first hops (dimension orders), got %d", len(seen))
	}
}

func TestFatTreeRouting(t *testing.T) {
	ft := topo.MustNewFatTree(4)
	r := NewFatTree(ft)
	truth := NewTable(ft.G, SinglePath)
	rng := rand.New(rand.NewSource(4))
	leaves := ft.LeafRouters()
	for _, src := range leaves {
		for _, dst := range leaves {
			if src == dst {
				continue
			}
			path := r.Route(src, dst, rng)
			if !PathValid(ft.G, path) {
				t.Fatalf("invalid fat-tree path %v", path)
			}
			if len(path)-1 != truth.Dist(src, dst) {
				t.Fatalf("non-minimal fat-tree path %v (want %d)", path, truth.Dist(src, dst))
			}
		}
	}
}

func TestDragonflyAndMegaflyRouting(t *testing.T) {
	df := topo.MustNewDragonfly(4, 2)
	rdf := NewDragonfly(df)
	mf := topo.MustNewMegafly(2, 4)
	rmf := NewMegafly(mf)
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name string
		e    Engine
		g    interface{ N() int }
	}{{"dragonfly", rdf, df.G}, {"megafly", rmf, mf.G}} {
		n := tc.g.N()
		for i := 0; i < 500; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			path := tc.e.Route(src, dst, rng)
			if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("%s: bad path %v", tc.name, path)
			}
			if len(path)-1 != tc.e.Dist(src, dst) {
				t.Fatalf("%s: non-minimal path", tc.name)
			}
		}
	}
	// Dragonfly diameter-3 bound on minimal paths.
	for i := 0; i < 300; i++ {
		src, dst := rng.Intn(df.G.N()), rng.Intn(df.G.N())
		if d := rdf.Dist(src, dst); d > 3 {
			t.Fatalf("dragonfly minimal distance %d > 3", d)
		}
	}
}

func TestValiantCandidates(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	min := NewPolarStar(ps)
	v := NewValiant(min, ps.G.N(), 4)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		if src == dst {
			continue
		}
		cands := v.Candidates(src, dst, rng)
		if len(cands) != 5 {
			t.Fatalf("expected 5 candidates, got %d", len(cands))
		}
		for ci, path := range cands {
			if !PathValid(ps.G, path) {
				t.Fatalf("candidate %d invalid: %v", ci, path)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("candidate endpoints wrong: %v", path)
			}
			if ci == 0 && len(path)-1 > 3 {
				t.Fatalf("minimal candidate too long: %v", path)
			}
			if len(path)-1 > 6 {
				t.Fatalf("valiant candidate exceeds 6 hops: %v", path)
			}
		}
	}
}

func TestValiantViaDegenerateIntermediate(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	v := NewValiant(NewPolarStar(ps), ps.G.N(), 4)
	p := v.Via(0, 0, 5, nil)
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != 5 {
		t.Errorf("degenerate via failed: %v", p)
	}
}

// newCycleBuilder returns the cycle graph C_n (storage tests helper).
func newCycleBuilder(n int) *graph.Graph {
	b := graph.NewBuilder("cycle", n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}
