package route

import (
	"polarstar/internal/graph"
)

// Incremental degraded repair of all-pairs routing tables. A link failure
// invalidates only the distance rows of sources for which the dead edge
// was on some shortest path; DropEdge re-runs BFS for exactly those
// sources and repacks the minimal-next-hop CSR copying the untouched
// per-source blocks, instead of rebuilding the whole table (n BFS
// traversals) from scratch. The result is bit-identical to a from-scratch
// NewTable on the degraded graph — pinned by the repair property test.

// repairScratch is the reusable state of repeated DropEdge calls: the BFS
// row and scratch, per-source dirty marks, and the spare dist/off/nh
// slabs the repack writes into (swapped with the live ones each repair).
type repairScratch struct {
	row      []int32
	bfs      graph.BFSScratch
	dirty    []bool  // source -> distance row changed
	nhDirty  []bool  // source -> next-hop block must be refilled
	dirtyLst []int32 // dirty sources of the current repair
	cnt      []int32 // per-destination count/cursor of one source
	spareOff []int32 // swap target for nhOff
	spareNh  []int32 // swap target for nh
}

// Clone returns an independent deep copy of the table for in-place
// repair: DropEdge on the clone leaves the original (typically shared by
// a Spec across runs) untouched.
func (t *Table) Clone() *Table {
	c := &Table{g: t.g, mode: t.mode}
	c.dist = append([]uint8(nil), t.dist...)
	if t.nhOff != nil {
		c.nhOff = append([]int32(nil), t.nhOff...)
		c.nh = append([]int32(nil), t.nh...)
	}
	return c
}

// DropEdge removes the undirected edge (u, v) from the table's graph and
// repairs the distance table and next-hop CSR incrementally. Dropping an
// edge the graph no longer has is a no-op. Removals may disconnect the
// graph; unreachable pairs read distance -1 and empty next-hop rows,
// exactly as a rebuild would produce.
func (t *Table) DropEdge(u, v int) {
	if !t.g.HasEdge(u, v) {
		return
	}
	n := t.g.N()
	newG := t.g.RemoveEdges([][2]int{{u, v}})
	rs := t.repairScratch()

	// Dirty sources: the edge (u,v) can lie on a shortest path from s only
	// when dist(s,u) and dist(s,v) differ by exactly one (they differ by at
	// most one while the edge exists, and an equal pair never uses it).
	rs.dirtyLst = rs.dirtyLst[:0]
	for s := 0; s < n; s++ {
		du, dv := t.dist[s*n+u], t.dist[s*n+v]
		d := du != dv && du != 0xff && dv != 0xff
		rs.dirty[s] = d
		if d {
			rs.dirtyLst = append(rs.dirtyLst, int32(s))
		}
	}
	for _, s := range rs.dirtyLst {
		newG.BFSDistancesScratch(int(s), rs.row, &rs.bfs)
		base := int(s) * n
		for w, d := range rs.row {
			if d < 0 {
				t.dist[base+w] = 0xff
			} else {
				t.dist[base+w] = uint8(d)
			}
		}
	}

	if t.mode == AllMinPaths {
		// A source's next-hop block depends on its own adjacency and
		// distance row plus every neighbor's row: refill blocks of the
		// endpoints, the dirty sources, and every neighbor of a dirty
		// source; copy all other blocks verbatim.
		for s := range rs.nhDirty {
			rs.nhDirty[s] = false
		}
		rs.nhDirty[u], rs.nhDirty[v] = true, true
		for _, s := range rs.dirtyLst {
			rs.nhDirty[s] = true
			for _, w := range newG.Neighbors(int(s)) {
				rs.nhDirty[w] = true
			}
		}
		t.repackNextHops(newG, rs)
	}
	t.g = newG
}

// repairScratch lazily allocates the repair scratch.
func (t *Table) repairScratch() *repairScratch {
	if t.rs == nil {
		n := t.g.N()
		t.rs = &repairScratch{
			row:     make([]int32, n),
			dirty:   make([]bool, n),
			nhDirty: make([]bool, n),
			cnt:     make([]int32, n),
		}
	}
	return t.rs
}

// repackNextHops rebuilds the next-hop CSR into the scratch's spare
// slabs: clean per-source blocks are block-copied with a shifted offset,
// nhDirty blocks are recounted and refilled from the repaired distance
// rows (the same two-pass fill as buildNextHops, restricted to one
// source). The spare slabs then swap with the live ones.
func (t *Table) repackNextHops(g *graph.Graph, rs *repairScratch) {
	n := g.N()
	if cap(rs.spareOff) < n*n+1 {
		rs.spareOff = make([]int32, n*n+1)
	}
	newOff := rs.spareOff[:n*n+1]
	// Upper bound on the new total: the old total plus every dirty
	// source's degree×n (a block can't exceed that). Grow the spare lazily
	// instead: count dirty blocks first.
	var newTotal int32
	for s := 0; s < n; s++ {
		base := s * n
		if !rs.nhDirty[s] {
			newTotal += t.nhOff[base+n] - t.nhOff[base]
			continue
		}
		sRow := t.dist[base : base+n]
		for _, w := range g.Neighbors(s) {
			wRow := t.dist[int(w)*n : int(w)*n+n]
			for dst, d := range sRow {
				if d != 0 && d != 0xff && wRow[dst] == d-1 {
					newTotal++
				}
			}
		}
	}
	if cap(rs.spareNh) < int(newTotal) {
		rs.spareNh = make([]int32, newTotal)
	}
	newNh := rs.spareNh[:newTotal]

	var pos int32
	for s := 0; s < n; s++ {
		base := s * n
		if !rs.nhDirty[s] {
			oldStart, oldEnd := t.nhOff[base], t.nhOff[base+n]
			delta := pos - oldStart
			copy(newNh[pos:], t.nh[oldStart:oldEnd])
			for d := 0; d < n; d++ {
				newOff[base+d] = t.nhOff[base+d] + delta
			}
			pos += oldEnd - oldStart
			continue
		}
		sRow := t.dist[base : base+n]
		cnt := rs.cnt
		for d := range cnt {
			cnt[d] = 0
		}
		for _, w := range g.Neighbors(s) {
			wRow := t.dist[int(w)*n : int(w)*n+n]
			for dst, d := range sRow {
				if d != 0 && d != 0xff && wRow[dst] == d-1 {
					cnt[dst]++
				}
			}
		}
		for d := 0; d < n; d++ {
			newOff[base+d] = pos
			pos += cnt[d]
			cnt[d] = newOff[base+d] // becomes the fill cursor
		}
		for _, w := range g.Neighbors(s) {
			wRow := t.dist[int(w)*n : int(w)*n+n]
			for dst, d := range sRow {
				if d != 0 && d != 0xff && wRow[dst] == d-1 {
					newNh[cnt[dst]] = w
					cnt[dst]++
				}
			}
		}
	}
	newOff[n*n] = pos

	rs.spareOff, t.nhOff = t.nhOff, newOff
	rs.spareNh, t.nh = t.nh, newNh
}
