package route

import (
	"fmt"
	"math/rand"

	"polarstar/internal/topo"
)

// Bundlefly is an analytic minimal-path router for the Bundlefly star
// product (MMS structure × Paley supernode): the counterpart of the
// PolarStar router, built from factor-level state only (the 2q²-vertex
// MMS graph, the Paley adjacency and the R1 bijection f).
//
// The paper routes Bundlefly with all-minpath tables because "a single
// minpath per router pair" performs poorly (§9.3). This router provides
// exactly that single analytic minpath, so the claim can be tested
// directly (see the ablation benchmark and sim tests).
//
// Path construction mirrors the PolarStar case analysis with two
// simplifications — MMS graphs have no self-loops, and the Paley
// supernode has diameter 2 — plus one generalization: common neighbors
// in MMS are not unique, so the distance-2 check scans all of them. The
// common-neighbor scans are inlined merges over the sorted adjacency
// lists, keeping AppendPath allocation-free.
type Bundlefly struct {
	bf   *topo.Bundlefly
	fInv []int
}

// NewBundlefly builds the analytic Bundlefly router.
func NewBundlefly(bf *topo.Bundlefly) *Bundlefly {
	fInv := make([]int, len(bf.Super.F))
	for x, y := range bf.Super.F {
		fInv[y] = x
	}
	return &Bundlefly{bf: bf, fInv: fInv}
}

// cross maps a supernode-local vertex across the structure arc u→v
// (star-product orientation: low-to-high applies f forward).
func (r *Bundlefly) cross(u, v, z int) int {
	if u < v {
		return r.bf.Super.F[z]
	}
	return r.fInv[z]
}

func (r *Bundlefly) crossInv(u, v, z int) int {
	if u < v {
		return r.fInv[z]
	}
	return r.bf.Super.F[z]
}

func (r *Bundlefly) node(x, xp int) int { return x*r.bf.Super.N() + xp }

// Dist implements Engine.
func (r *Bundlefly) Dist(src, dst int) int { return len(r.Route(src, dst, nil)) - 1 }

// Route implements Engine; the returned path is minimal (cross-checked
// exhaustively against BFS in the tests).
func (r *Bundlefly) Route(src, dst int, rng *rand.Rand) []int {
	return r.AppendPath(nil, src, dst, rng)
}

// AppendPath implements Engine.
func (r *Bundlefly) AppendPath(buf []int, src, dst int, _ *rand.Rand) []int {
	if src == dst {
		return buf
	}
	sn := r.bf.Super.N()
	x, xp := src/sn, src%sn
	y, yp := dst/sn, dst%sn
	sup := r.bf.Super.G
	switch {
	case x == y:
		// Same supernode: the Paley graph has diameter 2.
		if sup.HasEdge(xp, yp) {
			return append(buf, src, dst)
		}
		for _, z := range sup.Neighbors(xp) {
			if sup.HasEdge(int(z), yp) {
				return append(buf, src, r.node(x, int(z)), dst)
			}
		}
		panic(fmt.Sprintf("route: Paley supernode pair (%d,%d) beyond distance 2", xp, yp))
	case r.bf.Structure.G.HasEdge(x, y):
		return r.appendAdjacent(buf, x, xp, y, yp)
	default:
		// Structure distance 2 (MMS diameter 2). Distance-2 product
		// paths exist only through a common neighbor w whose crossing
		// composition lands on y'. Merge-scan the sorted MMS lists.
		a := r.bf.Structure.G.Neighbors(x)
		b := r.bf.Structure.G.Neighbors(y)
		first := -1
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				w := int(a[i])
				if first < 0 {
					first = w
				}
				mid := r.cross(x, w, xp)
				if r.cross(w, y, mid) == yp {
					return append(buf, src, r.node(w, mid), dst)
				}
				i++
				j++
			}
		}
		if first < 0 {
			panic(fmt.Sprintf("route: MMS vertices %d,%d at distance 2 share no neighbor", x, y))
		}
		// Distance 3: hop into the first common neighbor, then solve the
		// adjacent-supernode case (always ≤ 2 more hops).
		mid := r.cross(x, first, xp)
		buf = append(buf, src)
		return r.appendAdjacent(buf, first, mid, y, yp)
	}
}

// appendAdjacent handles structure-adjacent supernodes: distance 1 or 2,
// by the R1 argument (E' ∪ f(E') complete and f² an automorphism).
func (r *Bundlefly) appendAdjacent(buf []int, x, xp, y, yp int) []int {
	sup := r.bf.Super.G
	src, dst := r.node(x, xp), r.node(y, yp)
	g := r.cross(x, y, xp)
	if g == yp {
		return append(buf, src, dst)
	}
	// Form 2: inter then intra.
	if sup.HasEdge(g, yp) {
		return append(buf, src, r.node(y, g), dst)
	}
	// Form 1: intra then inter.
	if z := r.crossInv(x, y, yp); sup.HasEdge(xp, z) {
		return append(buf, src, r.node(x, z), dst)
	}
	// Via a common structure neighbor (covers residual cases such as
	// y' == x' when neither supernode form applies).
	a := r.bf.Structure.G.Neighbors(x)
	b := r.bf.Structure.G.Neighbors(y)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			w := int(a[i])
			if r.cross(w, y, r.cross(x, w, xp)) == yp {
				return append(buf, src, r.node(w, r.cross(x, w, xp)), dst)
			}
			i++
			j++
		}
	}
	panic(fmt.Sprintf("route: Bundlefly adjacent case fell through (x=%d x'=%d y=%d y'=%d)", x, xp, y, yp))
}
