package route

import (
	"fmt"
	"math/rand"

	"polarstar/internal/topo"
)

// Bundlefly is an analytic minimal-path router for the Bundlefly star
// product (MMS structure × Paley supernode): the counterpart of the
// PolarStar router, built from factor-level state only (the 2q²-vertex
// MMS graph, the Paley adjacency and the R1 bijection f).
//
// The paper routes Bundlefly with all-minpath tables because "a single
// minpath per router pair" performs poorly (§9.3). This router provides
// exactly that single analytic minpath, so the claim can be tested
// directly (see the ablation benchmark and sim tests).
//
// Path construction mirrors the PolarStar case analysis with two
// simplifications — MMS graphs have no self-loops, and the Paley
// supernode has diameter 2 — plus one generalization: common neighbors
// in MMS are not unique, so the distance-2 check scans all of them.
type Bundlefly struct {
	bf   *topo.Bundlefly
	fInv []int
}

// NewBundlefly builds the analytic Bundlefly router.
func NewBundlefly(bf *topo.Bundlefly) *Bundlefly {
	fInv := make([]int, len(bf.Super.F))
	for x, y := range bf.Super.F {
		fInv[y] = x
	}
	return &Bundlefly{bf: bf, fInv: fInv}
}

// cross maps a supernode-local vertex across the structure arc u→v
// (star-product orientation: low-to-high applies f forward).
func (r *Bundlefly) cross(u, v, z int) int {
	if u < v {
		return r.bf.Super.F[z]
	}
	return r.fInv[z]
}

func (r *Bundlefly) crossInv(u, v, z int) int {
	if u < v {
		return r.fInv[z]
	}
	return r.bf.Super.F[z]
}

func (r *Bundlefly) node(x, xp int) int { return x*r.bf.Super.N() + xp }

// Dist implements Engine.
func (r *Bundlefly) Dist(src, dst int) int { return len(r.Route(src, dst, nil)) - 1 }

// Route implements Engine; the returned path is minimal (cross-checked
// exhaustively against BFS in the tests).
func (r *Bundlefly) Route(src, dst int, _ *rand.Rand) []int {
	if src == dst {
		return nil
	}
	sn := r.bf.Super.N()
	x, xp := src/sn, src%sn
	y, yp := dst/sn, dst%sn
	sup := r.bf.Super.G
	switch {
	case x == y:
		// Same supernode: the Paley graph has diameter 2.
		if sup.HasEdge(xp, yp) {
			return []int{src, dst}
		}
		for _, z := range sup.Neighbors(xp) {
			if sup.HasEdge(int(z), yp) {
				return []int{src, r.node(x, int(z)), dst}
			}
		}
		panic(fmt.Sprintf("route: Paley supernode pair (%d,%d) beyond distance 2", xp, yp))
	case r.bf.Structure.G.HasEdge(x, y):
		return r.routeAdjacent(x, xp, y, yp)
	default:
		// Structure distance 2 (MMS diameter 2). Distance-2 product
		// paths exist only through a common neighbor w whose crossing
		// composition lands on y'.
		var first int
		found := false
		for _, w := range r.commonNeighbors(x, y) {
			if !found {
				first, found = w, true
			}
			mid := r.cross(x, w, xp)
			if r.cross(w, y, mid) == yp {
				return []int{src, r.node(w, mid), dst}
			}
		}
		if !found {
			panic(fmt.Sprintf("route: MMS vertices %d,%d at distance 2 share no neighbor", x, y))
		}
		// Distance 3: hop into the first common neighbor, then solve the
		// adjacent-supernode case (always ≤ 2 more hops).
		mid := r.cross(x, first, xp)
		rest := r.routeAdjacent(first, mid, y, yp)
		return append([]int{src}, rest...)
	}
}

// routeAdjacent handles structure-adjacent supernodes: distance 1 or 2,
// by the R1 argument (E' ∪ f(E') complete and f² an automorphism).
func (r *Bundlefly) routeAdjacent(x, xp, y, yp int) []int {
	sup := r.bf.Super.G
	src, dst := r.node(x, xp), r.node(y, yp)
	g := r.cross(x, y, xp)
	if g == yp {
		return []int{src, dst}
	}
	// Form 2: inter then intra.
	if sup.HasEdge(g, yp) {
		return []int{src, r.node(y, g), dst}
	}
	// Form 1: intra then inter.
	if z := r.crossInv(x, y, yp); sup.HasEdge(xp, z) {
		return []int{src, r.node(x, z), dst}
	}
	// Via a common structure neighbor (covers residual cases such as
	// y' == x' when neither supernode form applies).
	for _, w := range r.commonNeighbors(x, y) {
		if r.cross(w, y, r.cross(x, w, xp)) == yp {
			return []int{src, r.node(w, r.cross(x, w, xp)), dst}
		}
	}
	panic(fmt.Sprintf("route: Bundlefly adjacent case fell through (x=%d x'=%d y=%d y'=%d)", x, xp, y, yp))
}

// commonNeighbors intersects the sorted MMS adjacency lists of x and y.
func (r *Bundlefly) commonNeighbors(x, y int) []int {
	a := r.bf.Structure.G.Neighbors(x)
	b := r.bf.Structure.G.Neighbors(y)
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, int(a[i]))
			i++
			j++
		}
	}
	return out
}
