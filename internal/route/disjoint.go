package route

import (
	"polarstar/internal/graph"
)

// Edge-disjoint path analysis: the path-diversity machinery behind the
// §11.2 resilience discussion. The number of pairwise edge-disjoint
// paths between two routers bounds how many link failures the pair can
// tolerate, and its minimum over pairs is the edge connectivity.

// EdgeDisjointPaths returns a maximum set of pairwise edge-disjoint
// paths from src to dst (at most limit paths; limit <= 0 means
// unbounded). It runs Edmonds–Karp unit-capacity max flow on the
// digraph with an arc in each direction per undirected edge, then
// decomposes the flow into paths.
func EdgeDisjointPaths(g *graph.Graph, src, dst, limit int) [][]int {
	if src == dst {
		return nil
	}
	n := g.N()
	// flow[u] aligned with g.Neighbors(u): +1 when the arc u->v carries
	// flow.
	flow := make([][]int8, n)
	for v := 0; v < n; v++ {
		flow[v] = make([]int8, len(g.Neighbors(v)))
	}
	arcIndex := func(u, v int) int {
		nb := g.Neighbors(u)
		lo, hi := 0, len(nb)
		for lo < hi {
			mid := (lo + hi) / 2
			if nb[mid] < int32(v) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Residual capacity of arc u->v: 1 - flow(u->v) + flow(v->u).
	residual := func(u, v int) int {
		return 1 - int(flow[u][arcIndex(u, v)]) + int(flow[v][arcIndex(v, u)])
	}
	augment := func() bool {
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = int32(src)
		queue := []int32{int32(src)}
		for head := 0; head < len(queue) && parent[dst] == -1; head++ {
			u := int(queue[head])
			for _, wv := range g.Neighbors(u) {
				v := int(wv)
				if parent[v] == -1 && residual(u, v) > 0 {
					parent[v] = int32(u)
					queue = append(queue, wv)
				}
			}
		}
		if parent[dst] == -1 {
			return false
		}
		for v := dst; v != src; {
			u := int(parent[v])
			// Push one unit along u->v: cancel reverse flow first.
			if flow[v][arcIndex(v, u)] > 0 {
				flow[v][arcIndex(v, u)]--
			} else {
				flow[u][arcIndex(u, v)]++
			}
			v = u
		}
		return true
	}
	count := 0
	for limit <= 0 || count < limit {
		if !augment() {
			break
		}
		count++
	}
	// Decompose: walk flow arcs from src, consuming them.
	var paths [][]int
	for p := 0; p < count; p++ {
		path := []int{src}
		cur := src
		for cur != dst {
			advanced := false
			for k, wv := range g.Neighbors(cur) {
				if flow[cur][k] > 0 {
					flow[cur][k]--
					cur = int(wv)
					path = append(path, cur)
					advanced = true
					break
				}
			}
			if !advanced {
				// Flow conservation guarantees progress; reaching here
				// would mean the flow was not a valid unit flow.
				panic("route: flow decomposition stuck")
			}
		}
		paths = append(paths, path)
	}
	return paths
}

// EdgeConnectivityLB returns a lower-bound estimate of the edge
// connectivity: the minimum max-flow between vertex 0 and a sample of
// other vertices (exact when the sample is all vertices, by Menger plus
// the standard single-source reduction).
func EdgeConnectivityLB(g *graph.Graph, sample int) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if sample <= 0 || sample > n-1 {
		sample = n - 1
	}
	best := -1
	step := (n - 1) / sample
	if step < 1 {
		step = 1
	}
	for v := 1; v < n; v += step {
		k := len(EdgeDisjointPaths(g, 0, v, 0))
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}
