// Live-fault resilience sweeps: the quantified-robustness complement of
// TrafficSweep. Instead of statically amputating links and re-routing on
// the degraded graph, ResilienceSweep scripts link failures *during* the
// run — the same nested plan for every compared routing mode — and asks
// how much throughput each mode sustains as the failure count grows.
// Multipath lanes (sim.MPMINMode/MPUGALMode) are the subject: demoted
// tree lanes shed load onto survivors with no global repair stall, so
// their curves should sit above single-table MIN at equal damage.
package faults

import (
	"context"
	"fmt"
	"math/rand"

	"polarstar/internal/obs"
	"polarstar/internal/route"
	"polarstar/internal/sim"
)

// ResilienceConfig parameterizes a resilience sweep.
type ResilienceConfig struct {
	// Modes are the routing curves to compare; empty selects the default
	// MIN vs UGAL vs MP-MIN comparison.
	Modes []sim.RoutingMode
	// Counts are the failure counts (links killed per run), one sweep
	// point each. The killed links are a prefix of one seed-shuffled edge
	// order, so successive counts nest: count f+1 scripts a superset of
	// count f's damage.
	Counts []int
	// Pattern and Load fix the traffic for every point.
	Pattern string
	Load    float64
	// KillCycle is when the scripted failures land (<= 0: end of warmup).
	KillCycle int64
	// MTBF, when positive, spreads the failures MTBF cycles apart
	// starting at KillCycle instead of one batch (a deterministic
	// mean-time-between-failures schedule).
	MTBF int64
	// Repair, when positive, is the MTTR: every killed link comes back
	// Repair cycles after it died, exercising lane re-probe promotion.
	Repair int64
	// RepairDelay is sim.Params.RepairDelay: the table-reconvergence
	// stall every applied fault event imposes on single-table repair
	// (0: instant). Applied identically to every compared mode.
	RepairDelay int64
	// Seed draws the failed-link order (independent of sim.Params.Seed).
	Seed int64
	// TargetLanes, when positive, draws the killed links from the tree
	// edges of the first TargetLanes multipath lanes (round-robin across
	// lanes, seed-shuffled within each) instead of uniformly from all
	// links. This scripts the adversarial scenario the lane design is
	// for: with TargetLanes < k the damage demotes only the targeted
	// lanes and the surviving trees keep every pair connected, so
	// MultiPath(k) should hold its throughput where the single-table
	// modes bleed retries.
	TargetLanes int
}

// ResiliencePoint is one (mode, failure count) simulation.
type ResiliencePoint struct {
	Failures int
	sim.Result
}

// ResilienceCurve is one routing mode's failure-count curve.
type ResilienceCurve struct {
	Mode   sim.RoutingMode
	Lanes  int // tree lanes of a multipath mode (0 otherwise)
	Points []ResiliencePoint
}

// ResilienceSweep runs every configured routing mode under the same
// scripted live-fault plans: for each failure count it kills that many
// links (a nested, seed-determined prefix) at KillCycle — spread by MTBF
// and repaired after Repair when set — and simulates the same offered
// load. All curves share plans, pattern, seed and load, so the only
// variable is the routing mode; every Result is bit-identical at any
// worker count.
func ResilienceSweep(spec *sim.Spec, cfg ResilienceConfig, params sim.Params) ([]ResilienceCurve, error) {
	return ResilienceSweepObs(spec, cfg, params, nil)
}

// ResilienceSweepObs is ResilienceSweep with telemetry: when fr is
// non-nil every point's engine fills a fresh SimRun (with the per-lane
// spray/failover section on multipath modes). Results are identical
// with fr on or off.
func ResilienceSweepObs(spec *sim.Spec, cfg ResilienceConfig, params sim.Params, fr *obs.FaultResilience) ([]ResilienceCurve, error) {
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("faults: offered load %g outside (0, 1]", cfg.Load)
	}
	if len(cfg.Counts) == 0 {
		return nil, fmt.Errorf("faults: resilience sweep needs at least one failure count")
	}
	edges := spec.Graph.Edges()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.TargetLanes > 0 {
		var err error
		if edges, err = laneTargetPool(spec, cfg.TargetLanes, params, rng); err != nil {
			return nil, err
		}
	} else {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	}
	for _, c := range cfg.Counts {
		if c < 0 || c > len(edges) {
			return nil, fmt.Errorf("faults: failure count %d outside [0, %d killable links]", c, len(edges))
		}
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = []sim.RoutingMode{sim.MIN, sim.UGALMode, sim.MPMINMode}
	}
	if cfg.Pattern == "" {
		cfg.Pattern = "uniform"
	}
	if cfg.KillCycle <= 0 {
		cfg.KillCycle = int64(params.Warmup)
	}

	if fr != nil {
		fr.Spec = spec.Name
		fr.Pattern = cfg.Pattern
		fr.Load = cfg.Load
		fr.KillCycle = cfg.KillCycle
		fr.MTBF = cfg.MTBF
		fr.Repair = cfg.Repair
		fr.TargetLanes = cfg.TargetLanes
		fr.RepairDelay = cfg.RepairDelay
		fr.Curves = make([]*obs.FaultResilienceCurve, 0, len(modes))
	}
	curves := make([]ResilienceCurve, 0, len(modes))
	for _, mode := range modes {
		curve := ResilienceCurve{Mode: mode, Lanes: treeLanes(spec, mode, params)}
		var oc *obs.FaultResilienceCurve
		if fr != nil {
			oc = &obs.FaultResilienceCurve{Routing: mode.String(), Lanes: curve.Lanes}
			fr.Curves = append(fr.Curves, oc)
		}
		for _, count := range cfg.Counts {
			p := params
			p.RepairDelay = cfg.RepairDelay
			p.Plan = killPlan(edges[:count], cfg.KillCycle, cfg.MTBF, cfg.Repair)
			if oc != nil {
				p.Metrics = &obs.SimRun{}
				oc.Points = append(oc.Points, &obs.FaultResiliencePoint{Failures: count, Sim: p.Metrics})
			}
			res, err := sim.RunPoint(context.Background(), spec, mode, cfg.Pattern, cfg.Load, p)
			if err != nil {
				return nil, fmt.Errorf("faults: %s with %d failures: %w", mode, count, err)
			}
			curve.Points = append(curve.Points, ResiliencePoint{Failures: count, Result: res})
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// killPlan scripts the failure (and repair) of the given links: all at
// cycle `at` when mtbf is 0, else mtbf cycles apart starting there.
func killPlan(edges [][2]int, at, mtbf, repair int64) *sim.Plan {
	if len(edges) == 0 {
		return nil
	}
	plan := &sim.Plan{Events: make([]sim.FaultEvent, 0, 2*len(edges))}
	for i, e := range edges {
		down := at + int64(i)*mtbf
		plan.Events = append(plan.Events, sim.FaultEvent{Cycle: down, Kind: sim.LinkDown, U: e[0], V: e[1]})
		if repair > 0 {
			plan.Events = append(plan.Events, sim.FaultEvent{Cycle: down + repair, Kind: sim.LinkUp, U: e[0], V: e[1]})
		}
	}
	return plan
}

// treeLanes reports how many spanning-tree lanes a multipath mode will
// actually get on this spec (the extractor may find fewer than asked).
func treeLanes(spec *sim.Spec, mode sim.RoutingMode, params sim.Params) int {
	if mode != sim.MPMINMode && mode != sim.MPUGALMode {
		return 0
	}
	mp, err := specLanes(spec, params)
	if err != nil {
		return 0
	}
	return mp.TreeLanes()
}

// specLanes builds the spec's multipath lane structure (the same trees
// the engine will extract: the extraction seed is fixed per spec).
func specLanes(spec *sim.Spec, params sim.Params) (*route.MultiPath, error) {
	r, err := spec.MultiPathRouting(spec.MinRouting(), params.Lanes, params.PacketFlits)
	if err != nil {
		return nil, err
	}
	return r.(*sim.MultiPathRouting).MP, nil
}

// laneTargetPool builds the TargetLanes killable-link pool: the tree
// edges of the first `lanes` multipath lanes, shuffled within each lane
// and interleaved round-robin — killing any prefix wounds the targeted
// lanes evenly.
func laneTargetPool(spec *sim.Spec, lanes int, params sim.Params, rng *rand.Rand) ([][2]int, error) {
	mp, err := specLanes(spec, params)
	if err != nil {
		return nil, fmt.Errorf("faults: -target-lanes needs multipath lanes: %w", err)
	}
	if lanes > mp.TreeLanes() {
		return nil, fmt.Errorf("faults: cannot target %d lanes, spec has %d", lanes, mp.TreeLanes())
	}
	perLane := make([][][2]int, lanes)
	most := 0
	for l := 0; l < lanes; l++ {
		le := append([][2]int(nil), mp.TreeEdges(l)...)
		rng.Shuffle(len(le), func(i, j int) { le[i], le[j] = le[j], le[i] })
		perLane[l] = le
		if len(le) > most {
			most = len(le)
		}
	}
	var pool [][2]int
	for i := 0; i < most; i++ {
		for l := 0; l < lanes; l++ {
			if i < len(perLane[l]) {
				pool = append(pool, perLane[l][i])
			}
		}
	}
	return pool, nil
}
