package faults

import (
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

// mustTrial panics on a validation error and returns the trial; the
// tests here always pass valid arguments.
func mustTrial(tr Trial, err error) Trial {
	if err != nil {
		panic(err)
	}
	return tr
}

func TestRunTrialOnPolarStar(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	tr := mustTrial(RunTrial(ps.G, nil, 1, []float64{0, 0.1, 0.3}))
	if len(tr.Curve) != 3 {
		t.Fatalf("curve length %d", len(tr.Curve))
	}
	p0 := tr.Curve[0]
	if !p0.Connected || p0.Diameter != 3 {
		t.Errorf("zero-failure point: %+v, want connected diameter 3", p0)
	}
	// Diameter/APL weakly increase with failures while connected.
	prevD, prevA := p0.Diameter, p0.AvgPath
	for _, p := range tr.Curve[1:] {
		if !p.Connected {
			break
		}
		if p.Diameter < prevD {
			t.Errorf("diameter decreased after failures: %d -> %d", prevD, p.Diameter)
		}
		if p.AvgPath < prevA-1e-9 {
			t.Errorf("avg path decreased after failures: %f -> %f", prevA, p.AvgPath)
		}
		prevD, prevA = p.Diameter, p.AvgPath
	}
	if tr.DisconnectionRatio <= 0.2 || tr.DisconnectionRatio > 1 {
		t.Errorf("implausible disconnection ratio %f", tr.DisconnectionRatio)
	}
}

func TestDisconnectionRatioExact(t *testing.T) {
	// A path graph disconnects at the very first removed edge.
	b := graph.NewBuilder("path", 10)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1)
	}
	tr := mustTrial(RunTrial(b.Build(), nil, 3, nil))
	if tr.DisconnectionRatio != 1.0/9.0 {
		t.Errorf("path disconnection ratio = %f, want 1/9", tr.DisconnectionRatio)
	}
}

func TestMedianTrialDeterministic(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	a := mustTrial(MedianTrial(ps.G, nil, 9, 7, []float64{0, 0.2}))
	b := mustTrial(MedianTrial(ps.G, nil, 9, 7, []float64{0, 0.2}))
	if a.Seed != b.Seed || a.DisconnectionRatio != b.DisconnectionRatio {
		t.Error("MedianTrial not deterministic")
	}
	if len(a.Curve) != 2 {
		t.Errorf("curve length %d", len(a.Curve))
	}
}

func TestHostRestrictedStats(t *testing.T) {
	// Fat-tree: measure only leaf routers. Zero-failure leaf diameter is
	// 4 (up to the core and down).
	ft := topo.MustNewFatTree(4)
	hosts := Hosts(ft.LeafRouters())
	tr := mustTrial(RunTrial(ft.G, hosts, 2, []float64{0}))
	if tr.Curve[0].Diameter != 4 {
		t.Errorf("fat-tree leaf diameter = %d, want 4", tr.Curve[0].Diameter)
	}
	if !tr.Curve[0].Connected {
		t.Error("zero-failure fat-tree disconnected")
	}
}

func TestResilienceOrderingDFDiameterGrowsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// §11.2: at low failure ratios Dragonfly's diameter grows quickly
	// (single global link per group pair), while HyperX stays flat.
	df := topo.MustNewDragonfly(8, 4)
	hx := topo.MustNewHyperX(5, 5, 5)
	fr := []float64{0, 0.1}
	dfTr := mustTrial(MedianTrial(df.G, nil, 5, 11, fr))
	hxTr := mustTrial(MedianTrial(hx.G, nil, 5, 11, fr))
	if dfTr.Curve[1].Diameter <= dfTr.Curve[0].Diameter {
		t.Errorf("dragonfly diameter did not grow under 10%% failures: %d -> %d",
			dfTr.Curve[0].Diameter, dfTr.Curve[1].Diameter)
	}
	if hxTr.Curve[1].Diameter > hxTr.Curve[0].Diameter+1 {
		t.Errorf("hyperx diameter grew too fast: %d -> %d",
			hxTr.Curve[0].Diameter, hxTr.Curve[1].Diameter)
	}
}

func TestSingleHostTrivially(t *testing.T) {
	b := graph.NewBuilder("k3", 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	tr := mustTrial(RunTrial(b.Build(), Hosts{1}, 1, []float64{0.9}))
	if tr.DisconnectionRatio != float64(4)/float64(3) {
		// A single host never disconnects: the bisection reports
		// len(edges)+1 removals.
		t.Errorf("single-host disconnection ratio = %f", tr.DisconnectionRatio)
	}
}

// TestValidationErrors pins the input checks: malformed sweeps are
// rejected with an error instead of panicking or silently looping.
func TestValidationErrors(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	if _, err := RunTrial(ps.G, Hosts{}, 1, nil); err == nil {
		t.Error("empty non-nil host set accepted")
	}
	if _, err := RunTrial(ps.G, Hosts{-1}, 1, nil); err == nil {
		t.Error("negative host accepted")
	}
	if _, err := RunTrial(ps.G, Hosts{ps.G.N()}, 1, nil); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := RunTrial(ps.G, nil, 1, []float64{-0.1}); err == nil {
		t.Error("negative failure fraction accepted")
	}
	if _, err := RunTrial(ps.G, nil, 1, []float64{0.2, 1.5}); err == nil {
		t.Error("failure fraction > 1 accepted")
	}
	if _, err := RunTrial(ps.G, nil, 1, []float64{0.4, 0.2}); err == nil {
		t.Error("descending failure fractions accepted")
	}
	if _, err := MedianTrial(ps.G, nil, 0, 1, []float64{0}); err == nil {
		t.Error("zero trial count accepted")
	}
	if _, err := MedianTrial(ps.G, nil, -3, 1, []float64{0}); err == nil {
		t.Error("negative trial count accepted")
	}
	if _, err := RunBands(ps.G, nil, 0, 1, []float64{0}); err == nil {
		t.Error("zero trial count accepted by RunBands")
	}
}

func TestRunBands(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	b, err := RunBands(ps.G, nil, 9, 3, []float64{0, 0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Median) != 3 {
		t.Fatalf("median curve length %d", len(b.Median))
	}
	for i := range b.Median {
		if b.P25[i] > b.Median[i] || b.Median[i] > b.P75[i] {
			t.Errorf("quartiles out of order at %d: %f %f %f", i, b.P25[i], b.Median[i], b.P75[i])
		}
	}
	q := b.DisconnectQuartiles
	if !(q[0] <= q[1] && q[1] <= q[2]) {
		t.Errorf("disconnection quartiles out of order: %v", q)
	}
	if q[0] <= 0 || q[2] > 1 {
		t.Errorf("implausible disconnection quartiles: %v", q)
	}
	// Zero-failure APL is deterministic: all quartiles equal.
	if b.P25[0] != b.P75[0] {
		t.Errorf("zero-failure APL should be identical across trials")
	}
}
