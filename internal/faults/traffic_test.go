package faults

import (
	"testing"

	"polarstar/internal/sim"
)

func trafficParams() sim.Params {
	p := sim.DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 200, 400, 600
	return p
}

func TestTrafficSweepDegrades(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	fracs := []float64{0, 0.05, 0.1}
	pts, err := TrafficSweep(spec, sim.MIN, "uniform", 0.2, fracs, trafficParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fracs) {
		t.Fatalf("got %d points, want %d", len(pts), len(fracs))
	}
	if pts[0].Removed != 0 || pts[0].DeliveredFrac != 1 {
		t.Errorf("intact network: removed=%d delivered=%.3f, want 0 and 1", pts[0].Removed, pts[0].DeliveredFrac)
	}
	for i, p := range pts {
		if p.FailFrac != fracs[i] {
			t.Errorf("point %d: frac %.3f, want %.3f", i, p.FailFrac, fracs[i])
		}
		if p.DeliveredFrac <= 0 {
			t.Errorf("frac %.2f: nothing delivered", p.FailFrac)
		}
	}
	// More failures cannot remove fewer links.
	for i := 1; i < len(pts); i++ {
		if pts[i].Removed < pts[i-1].Removed {
			t.Errorf("removed counts not monotone: %d then %d", pts[i-1].Removed, pts[i].Removed)
		}
	}
}

// TestTrafficSweepDeterministic pins that the sweep is reproducible and
// independent of the engine worker count.
func TestTrafficSweepDeterministic(t *testing.T) {
	run := func(workers int) []TrafficPoint {
		spec := sim.MustNewSpec("ps-iq-small")
		p := trafficParams()
		p.Workers = workers
		pts, err := TrafficSweep(spec, sim.UGALMode, "uniform", 0.2, []float64{0, 0.05}, p, 11)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs across workers: %+v vs %+v", i, a[i], b[i])
		}
	}
}
