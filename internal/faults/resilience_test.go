package faults

import (
	"testing"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

// resilienceParams is the full-length §9.4 window: the acceptance
// property below needs real warmup/measure spans for the repair-stall
// separation to show, so it does not shrink them.
func resilienceParams(workers int) sim.Params {
	p := sim.DefaultParams(7)
	p.Workers = workers
	return p
}

// TestResilienceAcceptanceMultipathBeatsMinRepair pins the headline
// robustness property (ISSUE 10 acceptance): on PolarStar-IQ(4,3) under
// a scripted rolling plan that kills links of two of the three tree
// lanes (lane 3's spanning tree is never touched, so the graph stays
// connected throughout), MultiPath(3) sustains strictly higher delivered
// throughput than single-table MIN+repair at the same offered load and
// loses zero packets, while MIN — stalled RepairDelay cycles on every
// topology event — pays retries and losses.
func TestResilienceAcceptanceMultipathBeatsMinRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window resilience sweep")
	}
	spec := sim.MustNewSpec("ps-iq-43")
	cfg := ResilienceConfig{
		Modes:       []sim.RoutingMode{sim.MIN, sim.MPUGALMode},
		Counts:      []int{16},
		Load:        0.3,
		MTBF:        200,
		Repair:      800,
		RepairDelay: 1000,
		TargetLanes: 2,
		Seed:        1,
	}
	curves, err := ResilienceSweep(spec, cfg, resilienceParams(4))
	if err != nil {
		t.Fatal(err)
	}
	min, mp := curves[0].Points[0], curves[1].Points[0]
	if curves[1].Lanes < 3 {
		t.Fatalf("MultiPath got %d lanes, want >= 3", curves[1].Lanes)
	}
	if mp.Throughput <= min.Throughput {
		t.Errorf("MultiPath throughput %.4f not strictly above MIN+repair %.4f",
			mp.Throughput, min.Throughput)
	}
	if mp.Lost != 0 {
		t.Errorf("MultiPath lost %d packets; want 0 while the graph stays connected", mp.Lost)
	}
	if min.Lost == 0 {
		t.Errorf("MIN+repair lost nothing under the repair stall; separation scenario is broken")
	}
	if mp.DeliveredFrac < min.DeliveredFrac {
		t.Errorf("MultiPath delivered %.4f below MIN's %.4f", mp.DeliveredFrac, min.DeliveredFrac)
	}
}

// TestResilienceSweepDeterministicAcrossWorkers pins the sweep to the
// engine's worker-count contract: identical Results at Workers 1 and 4,
// including the per-lane obs sections.
func TestResilienceSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	cfg := ResilienceConfig{
		Modes:       []sim.RoutingMode{sim.MIN, sim.MPMINMode},
		Counts:      []int{0, 2},
		Load:        0.2,
		MTBF:        40,
		Repair:      150,
		RepairDelay: 60,
		Seed:        5,
	}
	run := func(workers int) []ResilienceCurve {
		p := sim.DefaultParams(3)
		p.Warmup, p.Measure, p.Drain = 200, 400, 1200
		p.Workers = workers
		curves, err := ResilienceSweep(spec, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		return curves
	}
	a, b := run(1), run(4)
	for i := range a {
		for j := range a[i].Points {
			if a[i].Points[j].Result != b[i].Points[j].Result {
				t.Errorf("%s with %d failures: Workers=1 %+v != Workers=4 %+v",
					a[i].Mode, a[i].Points[j].Failures, a[i].Points[j].Result, b[i].Points[j].Result)
			}
		}
	}
}

// TestResilienceSweepObsSections checks the telemetry wiring: one curve
// per mode, one point per count, lane counters only on multipath curves,
// and results unchanged by metrics collection.
func TestResilienceSweepObsSections(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	cfg := ResilienceConfig{
		Modes:       []sim.RoutingMode{sim.MIN, sim.MPMINMode},
		Counts:      []int{0, 2},
		Load:        0.2,
		TargetLanes: 2,
		RepairDelay: 50,
		Seed:        9,
	}
	p := sim.DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 200, 400, 1200
	bare, err := ResilienceSweep(spec, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	var fr obs.FaultResilience
	obsCurves, err := ResilienceSweepObs(spec, cfg, p, &fr)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Spec != spec.Name || fr.TargetLanes != 2 || fr.RepairDelay != 50 {
		t.Errorf("header = %q/%d/%d, want %q/2/50", fr.Spec, fr.TargetLanes, fr.RepairDelay, spec.Name)
	}
	if len(fr.Curves) != 2 || len(fr.Curves[0].Points) != 2 {
		t.Fatalf("obs shape: %d curves × %d points, want 2 × 2", len(fr.Curves), len(fr.Curves[0].Points))
	}
	for i := range bare {
		for j := range bare[i].Points {
			if bare[i].Points[j].Result != obsCurves[i].Points[j].Result {
				t.Errorf("%s point %d: metrics collection changed the Result", bare[i].Mode, j)
			}
		}
	}
	if fr.Curves[0].Lanes != 0 {
		t.Errorf("MIN curve reports %d lanes, want 0", fr.Curves[0].Lanes)
	}
	if fr.Curves[1].Lanes == 0 {
		t.Errorf("multipath curve reports no lanes")
	}
	mpFaulted := fr.Curves[1].Points[1].Sim
	if mpFaulted == nil || mpFaulted.Lanes == nil {
		t.Fatalf("faulted multipath point has no lane section")
	}
}

// TestResilienceSweepValidation covers the error paths.
func TestResilienceSweepValidation(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	p := sim.DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 100, 100, 300
	cases := []struct {
		name string
		cfg  ResilienceConfig
	}{
		{"zero load", ResilienceConfig{Counts: []int{0}}},
		{"load above one", ResilienceConfig{Counts: []int{0}, Load: 1.5}},
		{"no counts", ResilienceConfig{Load: 0.2}},
		{"count above pool", ResilienceConfig{Load: 0.2, Counts: []int{1 << 20}}},
		{"negative count", ResilienceConfig{Load: 0.2, Counts: []int{-1}}},
		{"too many target lanes", ResilienceConfig{Load: 0.2, Counts: []int{0}, TargetLanes: 64}},
	}
	for _, tc := range cases {
		if _, err := ResilienceSweep(spec, tc.cfg, p); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
