package faults_test

import (
	"testing"

	"polarstar/internal/faults"
	"polarstar/internal/sim"
)

// The pinned values below were captured from the pre-optimization
// implementation (edge-list shuffle + Builder-round-trip subgraphs). The
// scratch-CSR sweeper must reproduce them bit for bit: the refactor is
// behavior-preserving, down to RNG consumption and float summation order.

func TestGoldenTrialPSIQSmall(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	tr, err := faults.RunTrial(spec.Graph, nil, 7, faults.DefaultFracs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.DisconnectionRatio, 0.47999999999999998; got != want {
		t.Errorf("disconnection ratio = %.17g, want %.17g", got, want)
	}
	wantCurve := []struct {
		diam int32
		avg  float64
		conn bool
	}{
		{3, 2.6728259734836621, true},
		{4, 2.762083724814699, true},
		{5, 2.8550788182482516, true},
		{5, 2.9441486585238543, true},
		{5, 3.0405261509552144, true},
		{5, 3.1336256394195638, true},
		{5, 3.2278525942165155, true},
		{6, 3.3363816682325922, true},
		{6, 3.4738281657793091, true},
		{6, 3.6357031005324147, true},
		{0, 0, false},
		{0, 0, false},
		{0, 0, false},
		{0, 0, false},
	}
	if len(tr.Curve) != len(wantCurve) {
		t.Fatalf("curve has %d points, want %d", len(tr.Curve), len(wantCurve))
	}
	for i, w := range wantCurve {
		p := tr.Curve[i]
		if p.Diameter != w.diam || p.AvgPath != w.avg || p.Connected != w.conn {
			t.Errorf("point %d (f=%.2f): got diam=%d avg=%.17g conn=%v, want diam=%d avg=%.17g conn=%v",
				i, p.FailFrac, p.Diameter, p.AvgPath, p.Connected, w.diam, w.avg, w.conn)
		}
	}
}

func TestGoldenMedianTrial(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	med, err := faults.MedianTrial(spec.Graph, nil, 5, 1, faults.DefaultFracs)
	if err != nil {
		t.Fatal(err)
	}
	if med.Seed != 1 {
		t.Errorf("median seed = %d, want 1", med.Seed)
	}
	if got, want := med.DisconnectionRatio, 0.53419354838709676; got != want {
		t.Errorf("median ratio = %.17g, want %.17g", got, want)
	}
}

// TestGoldenTrialHostsSubset pins the host-restricted protocol (Fat-tree:
// only leaf routers count, §11.2).
func TestGoldenTrialHostsSubset(t *testing.T) {
	ft := sim.MustNewSpec("ft-small")
	tr, err := faults.RunTrial(ft.Graph, faults.Hosts(ft.Hosts), 3, []float64{0, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.DisconnectionRatio, 0.496; got != want {
		t.Errorf("disconnection ratio = %.17g, want %.17g", got, want)
	}
	for i, p := range tr.Curve {
		if p.Diameter != 4 || p.AvgPath != 3.6666666666666665 || !p.Connected {
			t.Errorf("point %d: got diam=%d avg=%.17g conn=%v, want diam=4 avg=3.6666666666666665 conn=true",
				i, p.Diameter, p.AvgPath, p.Connected)
		}
	}
}
