// Degraded-topology traffic simulation: the dynamic complement of the
// structural §11.2 sweep. Instead of asking how distances grow as links
// fail, TrafficSweep asks how much offered load the broken network still
// carries: each failure fraction rebuilds an all-pairs routing table on
// the degraded graph (reusing one distance slab across the whole sweep)
// and runs the cycle-level simulator on it.
package faults

import (
	"fmt"
	"math/rand"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

// TrafficPoint is one failure fraction of a degraded-traffic sweep.
type TrafficPoint struct {
	FailFrac float64
	Removed  int // links removed
	sim.Result
}

// TrafficSweep removes links of the spec's graph in a seed-determined
// random order (the §11.2 protocol) and simulates the same offered load
// on each degraded topology. Endpoints on disconnected or unroutable
// pairs keep injecting; their packets are lost, so DeliveredFrac < 1 and
// rising latency are the observable damage. fracs must be ascending.
// The routing mode is MIN or UGAL over the degraded all-pairs table.
func TrafficSweep(spec *sim.Spec, mode sim.RoutingMode, patternName string, load float64, fracs []float64, params sim.Params, seed int64) ([]TrafficPoint, error) {
	return TrafficSweepObs(spec, mode, patternName, load, fracs, params, seed, nil)
}

// TrafficSweepObs is TrafficSweep with telemetry: when ft is non-nil,
// each failure fraction's engine fills a fresh SimRun attached to the
// corresponding FaultTrafficPoint, so the artifact carries the full
// latency/stall/loss breakdown of every degraded topology. Results are
// identical with ft on or off.
func TrafficSweepObs(spec *sim.Spec, mode sim.RoutingMode, patternName string, load float64, fracs []float64, params sim.Params, seed int64, ft *obs.FaultTraffic) ([]TrafficPoint, error) {
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("faults: offered load %g outside (0, 1]", load)
	}
	if err := validate(spec.Graph, nil, fracs); err != nil {
		return nil, err
	}
	edges := spec.Graph.Edges()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	if ft != nil {
		ft.Spec = spec.Name
		ft.Load = load
		ft.Points = make([]*obs.FaultTrafficPoint, 0, len(fracs))
	}
	points := make([]TrafficPoint, 0, len(fracs))
	var slab []uint8
	for _, f := range fracs {
		k := int(f * float64(len(edges)))
		deg := spec.DegradedInto(edges[:k], slab)
		slab = deg.TableSlab()
		p := params
		if ft != nil {
			p.Metrics = &obs.SimRun{}
			ft.Points = append(ft.Points, &obs.FaultTrafficPoint{FailFrac: f, Removed: k, Sim: p.Metrics})
		}
		pattern, err := deg.Pattern(patternName, p.Seed)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			// The intact point must be fully routable — an unreachable pair
			// there is a spec error, not link damage. Degraded points skip
			// the check on purpose: losing packets on severed pairs is the
			// measurement.
			if err := sim.CheckReachable(deg.Graph, deg.Config(), pattern); err != nil {
				return nil, err
			}
		}
		var routing sim.Routing
		switch mode {
		case sim.UGALMode:
			routing = deg.UGALRouting(p.PacketFlits)
		case sim.UGALGMode:
			routing = deg.UGALGRouting(p.PacketFlits)
		default:
			routing = deg.MinRouting()
		}
		eng := sim.NewEngine(p, deg.Graph, deg.Config(), routing, pattern)
		points = append(points, TrafficPoint{FailFrac: f, Removed: k, Result: eng.Run(load)})
	}
	return points, nil
}
