package faults

import (
	"reflect"
	"testing"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
)

// TestMedianTrialObsDoesNotPerturb pins the non-interference contract on
// the structural sweep: the returned Trial is identical with telemetry
// on or off.
func TestMedianTrialObsDoesNotPerturb(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	fracs := []float64{0, 0.2, 0.4, 0.6}
	plain := mustTrial(MedianTrial(ps.G, nil, 7, 11, fracs))
	var fm obs.FaultSweep
	observed := mustTrial(MedianTrialObs(ps.G, nil, 7, 11, fracs, &fm))
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observed trial %+v differs from plain %+v", observed, plain)
	}
}

// TestMedianTrialObsAccounting checks the sweep-level record: the intact
// diameter, one ranked trial per scenario, and the median trial's point
// and damage counters.
func TestMedianTrialObsAccounting(t *testing.T) {
	ps := topo.MustNewPolarStar(3, 3, topo.KindIQ)
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8}
	const trials = 7
	var fm obs.FaultSweep
	tr := mustTrial(MedianTrialObs(ps.G, nil, trials, 11, fracs, &fm))
	if fm.IntactDiameter != 3 {
		t.Errorf("intact diameter %d, want 3 (PolarStar)", fm.IntactDiameter)
	}
	if len(fm.Trials) != trials {
		t.Fatalf("recorded %d ranked trials, want %d", len(fm.Trials), trials)
	}
	found := false
	for _, rt := range fm.Trials {
		if rt.Seed == tr.Seed && rt.DisconnectionRatio == tr.DisconnectionRatio {
			found = true
		}
	}
	if !found {
		t.Error("median trial's seed not among the ranked trials")
	}
	m := fm.Median
	if m == nil {
		t.Fatal("median trial record missing")
	}
	if m.Seed != tr.Seed || m.DisconnectionRatio != tr.DisconnectionRatio {
		t.Errorf("median record %+v inconsistent with trial seed=%d ratio=%f",
			m, tr.Seed, tr.DisconnectionRatio)
	}
	if m.PointsConnected+m.PointsDisconnected != len(fracs) {
		t.Errorf("point counts %d+%d != %d sampled fractions",
			m.PointsConnected, m.PointsDisconnected, len(fracs))
	}
	// The curve's connectivity verdicts must match the counters.
	conn := 0
	for _, p := range tr.Curve {
		if p.Connected {
			conn++
		}
	}
	if conn != m.PointsConnected {
		t.Errorf("counter says %d connected points, curve has %d", m.PointsConnected, conn)
	}
	if m.PointsDisconnected > 0 && m.LostPairs.Value() == 0 {
		t.Error("disconnected points sampled but no lost pairs recorded")
	}
	if m.MaxDiameter < fm.IntactDiameter {
		t.Errorf("max diameter %d below intact %d", m.MaxDiameter, fm.IntactDiameter)
	}
	if m.DegradedPoints > len(fracs) {
		t.Errorf("degraded points %d exceeds sampled points", m.DegradedPoints)
	}
}

// TestTrafficSweepValidation pins the degraded-traffic input checks.
func TestTrafficSweepValidation(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	p := sim.DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 50, 100, 150
	for _, load := range []float64{0, -0.2, 1.5} {
		if _, err := TrafficSweep(spec, sim.MIN, "uniform", load, []float64{0}, p, 5); err == nil {
			t.Errorf("offered load %g accepted", load)
		}
	}
	if _, err := TrafficSweep(spec, sim.MIN, "uniform", 0.2, []float64{0.4, 0.2}, p, 5); err == nil {
		t.Error("descending failure fractions accepted")
	}
}

// TestTrafficSweepObs pins non-interference and the per-point SimRun
// plumbing of the degraded-traffic sweep.
func TestTrafficSweepObs(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	p := sim.DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 100, 200, 300
	p.Workers = 2
	fracs := []float64{0, 0.15}
	plain, err := TrafficSweep(spec, sim.MIN, "uniform", 0.2, fracs, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ft obs.FaultTraffic
	observed, err := TrafficSweepObs(spec, sim.MIN, "uniform", 0.2, fracs, p, 5, &ft)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observed traffic sweep differs from plain")
	}
	if ft.Spec != spec.Name || ft.Load != 0.2 || len(ft.Points) != len(fracs) {
		t.Fatalf("sweep record %+v malformed", ft)
	}
	for i, pt := range ft.Points {
		if pt.FailFrac != fracs[i] || pt.Removed != observed[i].Removed {
			t.Errorf("point %d: structural echo %+v inconsistent with result %+v", i, pt, observed[i])
		}
		if pt.Sim == nil || pt.Sim.Delivered.Value() == 0 {
			t.Errorf("point %d: no simulator metrics attached", i)
		}
		if pt.Sim.AvgLatency != observed[i].AvgLatency {
			t.Errorf("point %d: echoed latency %f != result %f", i, pt.Sim.AvgLatency, observed[i].AvgLatency)
		}
		// Past the disconnection threshold, packets on unreachable pairs
		// are recorded as lost.
		if pt.Removed > 0 && observed[i].DeliveredFrac < 1 && pt.Sim.Lost.Value() == 0 &&
			pt.Sim.Delivered.Value() == pt.Sim.Injected.Value() {
			t.Errorf("point %d: degraded run shows no loss in metrics", i)
		}
	}
}
