package faults

// Live fault plans are defined in internal/sim (faults imports sim for
// the degraded-traffic sweep, so the plan type must live downstream to
// keep the dependency one-way); this file re-exports them under the
// faults namespace, which is where users of the resilience experiments
// look for them.

import "polarstar/internal/sim"

// Plan is a deterministic schedule of live link/router fault events for
// the cycle-level simulator (sim.Params.Plan).
type Plan = sim.Plan

// FaultEvent is one scripted topology change of a Plan.
type FaultEvent = sim.FaultEvent

// RetryPolicy bounds the source-retry behavior of fault-injected runs.
type RetryPolicy = sim.RetryPolicy

// Plan constructors, re-exported from sim.
var (
	// ParsePlan reads the canonical text form of a plan.
	ParsePlan = sim.ParsePlan
	// RandomPlan generates a seeded random MTBF/MTTR failure schedule.
	RandomPlan = sim.RandomPlan
	// LoadPlan combines a plan file and/or an MTBF generator and
	// validates the result against a topology.
	LoadPlan = sim.LoadPlan
	// DefaultRetryPolicy is the retry configuration used when
	// sim.Params.Retry is left zero.
	DefaultRetryPolicy = sim.DefaultRetryPolicy
)
