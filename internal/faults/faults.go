// Package faults implements the link-failure resilience experiment of
// §11.2 (Fig 14): random link removal sweeps measuring network diameter
// and average shortest-path length as functions of the failure ratio,
// plus the disconnection ratio (the failure fraction at which the network
// first disconnects). The paper runs 100 trials and reports the trial
// with the median disconnection ratio; this package reproduces that
// protocol with seeded determinism.
package faults

import (
	"math/rand"
	"sort"

	"polarstar/internal/graph"
)

// Point is one sampled failure fraction of a trial.
type Point struct {
	FailFrac  float64
	Diameter  int32
	AvgPath   float64
	Connected bool
}

// Trial is one random link-failure scenario.
type Trial struct {
	Seed               int64
	DisconnectionRatio float64 // fraction of links removed at first disconnection
	Curve              []Point
}

// Hosts restricts distance measurements to a vertex subset (§11.2: for
// Fat-tree and Megafly only endpoint-holding routers count). Nil means
// all vertices.
type Hosts []int

// RunTrial removes links of g in a seed-determined random order,
// sampling diameter and average path length among hosts at each failure
// fraction in fracs (which must be ascending). Sampling stops once the
// host set is disconnected; the disconnection ratio is located exactly by
// bisection over the removal order.
func RunTrial(g *graph.Graph, hosts Hosts, seed int64, fracs []float64) Trial {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	tr := Trial{Seed: seed}
	// Exact disconnection point by bisection: the smallest k such that
	// removing the first k edges disconnects the hosts.
	lo, hi := 1, len(edges)
	if subsetConnected(g.RemoveEdges(edges), hosts) {
		// Removing everything leaves hosts connected only if there is at
		// most one host.
		lo = len(edges) + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if subsetConnected(g.RemoveEdges(edges[:mid]), hosts) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	disconnectAt := lo
	tr.DisconnectionRatio = float64(disconnectAt) / float64(len(edges))

	for _, f := range fracs {
		k := int(f * float64(len(edges)))
		if k >= disconnectAt {
			tr.Curve = append(tr.Curve, Point{FailFrac: f, Connected: false})
			continue
		}
		h := g.RemoveEdges(edges[:k])
		diam, avg, ok := subsetStats(h, hosts)
		tr.Curve = append(tr.Curve, Point{FailFrac: f, Diameter: diam, AvgPath: avg, Connected: ok})
	}
	return tr
}

// MedianTrial runs `trials` independent scenarios and returns the one
// with the median disconnection ratio (the paper's reporting protocol).
func MedianTrial(g *graph.Graph, hosts Hosts, trials int, seed int64, fracs []float64) Trial {
	if trials < 1 {
		trials = 1
	}
	// Rank trials by disconnection ratio (cheap: bisection only), then
	// compute the full curve for the median one.
	type ranked struct {
		seed  int64
		ratio float64
	}
	rs := make([]ranked, trials)
	for i := 0; i < trials; i++ {
		s := seed + int64(i)*6151
		t := RunTrial(g, hosts, s, nil)
		rs[i] = ranked{seed: s, ratio: t.DisconnectionRatio}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ratio < rs[j].ratio })
	med := rs[len(rs)/2]
	return RunTrial(g, hosts, med.seed, fracs)
}

// subsetConnected reports whether all hosts are in one component.
func subsetConnected(g *graph.Graph, hosts Hosts) bool {
	if g.N() == 0 {
		return true
	}
	if hosts == nil {
		return g.IsConnected()
	}
	if len(hosts) == 0 {
		return true
	}
	dist := g.BFSDistances(hosts[0], nil)
	for _, h := range hosts {
		if dist[h] < 0 {
			return false
		}
	}
	return true
}

// subsetStats computes diameter and average path length restricted to
// host pairs.
func subsetStats(g *graph.Graph, hosts Hosts) (int32, float64, bool) {
	if hosts == nil {
		s := g.AllPairsStats()
		return s.Diameter, s.AvgPath, s.Connected
	}
	inHosts := make([]bool, g.N())
	for _, h := range hosts {
		inHosts[h] = true
	}
	var diam int32
	var sum, pairs int64
	connected := true
	dist := make([]int32, g.N())
	for _, h := range hosts {
		g.BFSDistances(h, dist)
		for v, d := range dist {
			if !inHosts[v] || v == h {
				continue
			}
			if d < 0 {
				connected = false
				continue
			}
			if d > diam {
				diam = d
			}
			sum += int64(d)
			pairs++
		}
	}
	avg := 0.0
	if pairs > 0 {
		avg = float64(sum) / float64(pairs)
	}
	return diam, avg, connected
}

// Bands aggregates many trials into quartile curves — an extension of
// the paper's median-trial protocol showing the spread across failure
// scenarios.
type Bands struct {
	Fracs               []float64
	P25, Median, P75    []float64 // average path length quartiles (NaN when disconnected in that quartile trial)
	DisconnectQuartiles [3]float64
	Trials              int
}

// RunBands runs `trials` scenarios and reports per-failure-fraction
// quartiles of the average path length plus disconnection-ratio
// quartiles.
func RunBands(g *graph.Graph, hosts Hosts, trials int, seed int64, fracs []float64) Bands {
	if trials < 1 {
		trials = 1
	}
	b := Bands{Fracs: fracs, Trials: trials}
	apl := make([][]float64, len(fracs)) // per fraction: APLs of connected trials
	var ratios []float64
	for i := 0; i < trials; i++ {
		tr := RunTrial(g, hosts, seed+int64(i)*6151, fracs)
		ratios = append(ratios, tr.DisconnectionRatio)
		for j, p := range tr.Curve {
			if p.Connected {
				apl[j] = append(apl[j], p.AvgPath)
			}
		}
	}
	sort.Float64s(ratios)
	quart := func(xs []float64, q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return xs[int(float64(len(xs)-1)*q)]
	}
	b.DisconnectQuartiles = [3]float64{quart(ratios, 0.25), quart(ratios, 0.5), quart(ratios, 0.75)}
	for _, xs := range apl {
		sort.Float64s(xs)
		b.P25 = append(b.P25, quart(xs, 0.25))
		b.Median = append(b.Median, quart(xs, 0.5))
		b.P75 = append(b.P75, quart(xs, 0.75))
	}
	return b
}

// DefaultFracs is the failure-ratio ladder of Fig 14.
var DefaultFracs = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65}
