// Package faults implements the link-failure resilience experiment of
// §11.2 (Fig 14): random link removal sweeps measuring network diameter
// and average shortest-path length as functions of the failure ratio,
// plus the disconnection ratio (the failure fraction at which the network
// first disconnects). The paper runs 100 trials and reports the trial
// with the median disconnection ratio; this package reproduces that
// protocol with seeded determinism.
//
// The sweep hot loop — dozens of subgraph builds and connectivity checks
// per trial, across up to 100 trials — runs through a reusable sweeper:
// removal ranks are kept per channel id, subgraphs are rebuilt in place
// with graph.FilterEdgesScratch (no Builder round-trip), and the
// connectivity BFS reuses one distance array and queue. A full sweep
// allocates a small constant amount of memory regardless of trial count.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
)

// validate rejects malformed sweep inputs up front — an empty host set,
// host indices outside the graph, or a failure-fraction ladder that is
// not ascending within [0, 1] — so the sweeps fail with a descriptive
// error instead of panicking or silently measuring nonsense.
func validate(g *graph.Graph, hosts Hosts, fracs []float64) error {
	if hosts != nil && len(hosts) == 0 {
		return fmt.Errorf("faults: empty host set (nil means all routers)")
	}
	for _, h := range hosts {
		if h < 0 || h >= g.N() {
			return fmt.Errorf("faults: host %d outside the %d-router graph", h, g.N())
		}
	}
	prev := -1.0
	for i, f := range fracs {
		if f < 0 || f > 1 {
			return fmt.Errorf("faults: failure fraction %g at index %d outside [0, 1]", f, i)
		}
		if f < prev {
			return fmt.Errorf("faults: failure fractions must be ascending (%g after %g)", f, prev)
		}
		prev = f
	}
	return nil
}

// validateTrials additionally rejects non-positive trial counts.
func validateTrials(g *graph.Graph, hosts Hosts, trials int, fracs []float64) error {
	if trials < 1 {
		return fmt.Errorf("faults: trial count %d < 1", trials)
	}
	return validate(g, hosts, fracs)
}

// Point is one sampled failure fraction of a trial.
type Point struct {
	FailFrac  float64
	Diameter  int32
	AvgPath   float64
	Connected bool
}

// Trial is one random link-failure scenario.
type Trial struct {
	Seed               int64
	DisconnectionRatio float64 // fraction of links removed at first disconnection
	Curve              []Point
}

// Hosts restricts distance measurements to a vertex subset (§11.2: for
// Fat-tree and Megafly only endpoint-holding routers count). Nil means
// all vertices.
type Hosts []int

// sweeper owns the reusable state of repeated fault trials on one graph.
type sweeper struct {
	g       *graph.Graph
	arcChan []int32 // e-th u<v edge -> channel id of its u→v arc
	order   []int32 // shuffled edge indices of the current trial
	rank    []int32 // channel id (u<v arc) -> removal position
	scratch graph.FilterScratch
	dist    []int32
	bfs     graph.BFSScratch
	bitbfs  graph.BitBFSScratch // arena of the per-point degraded stats
	inHosts []bool
}

func newSweeper(g *graph.Graph) *sweeper {
	sw := &sweeper{
		g:       g,
		arcChan: make([]int32, 0, g.M()),
		order:   make([]int32, g.M()),
		rank:    make([]int32, g.NumChannels()),
	}
	for u := 0; u < g.N(); u++ {
		base := g.FirstChannel(u)
		for k, w := range g.Neighbors(u) {
			if int(w) > u {
				sw.arcChan = append(sw.arcChan, int32(base+k))
			}
		}
	}
	return sw
}

// subgraph rebuilds (into the scratch CSR) the graph with the first k
// edges of the current removal order deleted. The result aliases the
// sweeper and is invalidated by the next subgraph call.
func (sw *sweeper) subgraph(k int) *graph.Graph {
	kk := int32(k)
	return sw.g.FilterEdgesScratch(&sw.scratch, func(c, _, _ int) bool {
		return sw.rank[c] >= kk
	})
}

// connected reports whether the host set is in one component of h.
func (sw *sweeper) connected(h *graph.Graph, hosts Hosts) bool {
	if h.N() == 0 {
		return true
	}
	if hosts == nil {
		ok, dist := h.IsConnectedScratch(sw.dist, &sw.bfs)
		sw.dist = dist
		return ok
	}
	ok, dist := h.ConnectedSubset(hosts, sw.dist, &sw.bfs)
	sw.dist = dist
	return ok
}

// stats computes diameter and average path length restricted to host
// pairs of h, 64 BFS sources per bit-parallel traversal, plus the number
// of unreachable ordered host pairs. Sums are integers, so the results
// are bit-identical to the scalar one-source-at-a-time measurement the
// sweep used before.
func (sw *sweeper) stats(h *graph.Graph, hosts Hosts) (int32, float64, bool, int64) {
	if hosts == nil {
		s := h.AllPairsStats()
		return s.Diameter, s.AvgPath, s.Connected, int64(h.N())*int64(h.N()-1) - s.Pairs
	}
	if sw.inHosts == nil {
		sw.inHosts = make([]bool, h.N())
		for _, v := range hosts {
			sw.inHosts[v] = true
		}
	}
	var diam int32
	var sum, pairs int64
	var srcs [64]int32
	for base := 0; base < len(hosts); base += 64 {
		lanes := len(hosts) - base
		if lanes > 64 {
			lanes = 64
		}
		for i := 0; i < lanes; i++ {
			srcs[i] = int32(hosts[base+i])
		}
		st, _ := h.BitBFSBatch(srcs[:lanes], &sw.bitbfs, sw.inHosts, nil)
		for l := 0; l < lanes; l++ {
			if st.Ecc[l] > diam {
				diam = st.Ecc[l]
			}
			sum += st.Sum[l]
			pairs += st.Reached[l]
		}
	}
	// Every host reaches all len(hosts)−1 others iff the pair count is
	// full — the same connectivity verdict the scalar scan produced.
	full := int64(len(hosts)) * int64(len(hosts)-1)
	avg := 0.0
	if pairs > 0 {
		avg = float64(sum) / float64(pairs)
	}
	return diam, avg, pairs == full, full - pairs
}

// runTrial is RunTrial on the sweeper's reusable state.
func (sw *sweeper) runTrial(hosts Hosts, seed int64, fracs []float64) Trial {
	return sw.runTrialObs(hosts, seed, fracs, nil, 0)
}

// runTrialObs is runTrial with telemetry: when mt is non-nil, the trial
// additionally counts sampled points whose diameter exceeds intactDiam
// (degraded points) and unreachable host pairs (lost pairs) — including
// at fractions past the disconnection point, where the plain curve stops
// measuring. The returned Trial is bit-identical with mt on or off: the
// extra stats passes read the same scratch subgraphs and never touch the
// trial RNG.
func (sw *sweeper) runTrialObs(hosts Hosts, seed int64, fracs []float64, mt *obs.FaultTrial, intactDiam int32) Trial {
	rng := rand.New(rand.NewSource(seed))
	m := len(sw.order)
	for i := range sw.order {
		sw.order[i] = int32(i)
	}
	rng.Shuffle(m, func(i, j int) { sw.order[i], sw.order[j] = sw.order[j], sw.order[i] })
	for p, e := range sw.order {
		sw.rank[sw.arcChan[e]] = int32(p)
	}

	tr := Trial{Seed: seed}
	// Exact disconnection point by bisection: the smallest k such that
	// removing the first k edges disconnects the hosts.
	lo, hi := 1, m
	if sw.connected(sw.subgraph(m), hosts) {
		// Removing everything leaves hosts connected only if there is at
		// most one host.
		lo = m + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if sw.connected(sw.subgraph(mid), hosts) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	disconnectAt := lo
	tr.DisconnectionRatio = float64(disconnectAt) / float64(m)
	if mt != nil {
		mt.Seed = seed
		mt.DisconnectionRatio = tr.DisconnectionRatio
	}

	for _, f := range fracs {
		k := int(f * float64(m))
		if k >= disconnectAt {
			tr.Curve = append(tr.Curve, Point{FailFrac: f, Connected: false})
			if mt != nil {
				mt.PointsDisconnected++
				diam, _, _, lost := sw.stats(sw.subgraph(k), hosts)
				mt.LostPairs.Add(lost)
				if diam > intactDiam {
					mt.DegradedPoints++
				}
				if diam > mt.MaxDiameter {
					mt.MaxDiameter = diam
				}
			}
			continue
		}
		diam, avg, ok, lost := sw.stats(sw.subgraph(k), hosts)
		tr.Curve = append(tr.Curve, Point{FailFrac: f, Diameter: diam, AvgPath: avg, Connected: ok})
		if mt != nil {
			mt.PointsConnected++
			mt.LostPairs.Add(lost)
			if diam > intactDiam {
				mt.DegradedPoints++
			}
			if diam > mt.MaxDiameter {
				mt.MaxDiameter = diam
			}
		}
	}
	return tr
}

// RunTrial removes links of g in a seed-determined random order,
// sampling diameter and average path length among hosts at each failure
// fraction in fracs (which must be ascending). Sampling stops once the
// host set is disconnected; the disconnection ratio is located exactly by
// bisection over the removal order.
func RunTrial(g *graph.Graph, hosts Hosts, seed int64, fracs []float64) (Trial, error) {
	if err := validate(g, hosts, fracs); err != nil {
		return Trial{}, err
	}
	return newSweeper(g).runTrial(hosts, seed, fracs), nil
}

// MedianTrial runs `trials` independent scenarios and returns the one
// with the median disconnection ratio (the paper's reporting protocol).
func MedianTrial(g *graph.Graph, hosts Hosts, trials int, seed int64, fracs []float64) (Trial, error) {
	return MedianTrialObs(g, hosts, trials, seed, fracs, nil)
}

// MedianTrialObs is MedianTrial with telemetry: when fm is non-nil it
// records the intact diameter, one FaultTrial (seed + disconnection
// ratio) per ranked scenario in scenario order, and the fully sampled
// median trial's degraded-point and lost-pair counters. The returned
// Trial is identical with fm on or off.
func MedianTrialObs(g *graph.Graph, hosts Hosts, trials int, seed int64, fracs []float64, fm *obs.FaultSweep) (Trial, error) {
	if err := validateTrials(g, hosts, trials, fracs); err != nil {
		return Trial{}, err
	}
	sw := newSweeper(g)
	var intactDiam int32
	if fm != nil {
		intactDiam, _, _, _ = sw.stats(g, hosts)
		fm.IntactDiameter = intactDiam
		fm.Trials = make([]obs.FaultTrial, 0, trials)
	}
	// Rank trials by disconnection ratio (cheap: bisection only), then
	// compute the full curve for the median one.
	type ranked struct {
		seed  int64
		ratio float64
	}
	rs := make([]ranked, trials)
	for i := 0; i < trials; i++ {
		s := seed + int64(i)*6151
		t := sw.runTrial(hosts, s, nil)
		rs[i] = ranked{seed: s, ratio: t.DisconnectionRatio}
		if fm != nil {
			fm.Trials = append(fm.Trials, obs.FaultTrial{Seed: s, DisconnectionRatio: t.DisconnectionRatio})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ratio < rs[j].ratio })
	med := rs[len(rs)/2]
	if fm == nil {
		return sw.runTrial(hosts, med.seed, fracs), nil
	}
	fm.Median = &obs.FaultTrial{}
	return sw.runTrialObs(hosts, med.seed, fracs, fm.Median, intactDiam), nil
}

// Bands aggregates many trials into quartile curves — an extension of
// the paper's median-trial protocol showing the spread across failure
// scenarios.
type Bands struct {
	Fracs               []float64
	P25, Median, P75    []float64 // average path length quartiles (NaN when disconnected in that quartile trial)
	DisconnectQuartiles [3]float64
	Trials              int
}

// RunBands runs `trials` scenarios and reports per-failure-fraction
// quartiles of the average path length plus disconnection-ratio
// quartiles.
func RunBands(g *graph.Graph, hosts Hosts, trials int, seed int64, fracs []float64) (Bands, error) {
	if err := validateTrials(g, hosts, trials, fracs); err != nil {
		return Bands{}, err
	}
	sw := newSweeper(g)
	b := Bands{Fracs: fracs, Trials: trials}
	apl := make([][]float64, len(fracs)) // per fraction: APLs of connected trials
	var ratios []float64
	for i := 0; i < trials; i++ {
		tr := sw.runTrial(hosts, seed+int64(i)*6151, fracs)
		ratios = append(ratios, tr.DisconnectionRatio)
		for j, p := range tr.Curve {
			if p.Connected {
				apl[j] = append(apl[j], p.AvgPath)
			}
		}
	}
	sort.Float64s(ratios)
	quart := func(xs []float64, q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return xs[int(float64(len(xs)-1)*q)]
	}
	b.DisconnectQuartiles = [3]float64{quart(ratios, 0.25), quart(ratios, 0.5), quart(ratios, 0.75)}
	for _, xs := range apl {
		sort.Float64s(xs)
		b.P25 = append(b.P25, quart(xs, 0.25))
		b.Median = append(b.Median, quart(xs, 0.5))
		b.P75 = append(b.P75, quart(xs, 0.75))
	}
	return b, nil
}

// DefaultFracs is the failure-ratio ladder of Fig 14.
var DefaultFracs = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65}
