// EvalPool: the bounded worker pool behind parallel incremental-ASPL
// evaluation (DeltaStats) and any other caller that shards bit-BFS
// batches within one logical operation.
//
// The pool follows the repository's determinism discipline (the PR-1
// link-load / PR-3 shard-journal scheme): workers race only over *which*
// task index they grab next, every task writes exclusively into
// task-indexed slots the caller laid out beforehand, and the caller
// folds those slots serially in fixed task order after Run returns.
// Task scheduling is therefore free to load-balance dynamically (an
// atomic cursor) without any result depending on it — the fold sees the
// same per-task integers in the same order at any width.
//
// A pool is deliberately passive: it owns no goroutines at rest, only
// the per-worker BitBFSScratch arenas. Run spawns its helper goroutines
// for the duration of one parallel region and joins them before
// returning, so there is no lifecycle to manage (no Close), idle pools
// cost nothing, and an Engine can hold one pool per driver goroutine
// without leak concerns across checkpoint/restore cycles.
package graph

import (
	"sync"
	"sync/atomic"
)

// EvalPool bounds the intra-evaluation parallelism of one caller
// goroutine at a time: Run executes tasks on up to Width goroutines (the
// caller plus Width−1 helpers, each helper owning one persistent
// BitBFSScratch arena so parallel regions allocate nothing once warm).
//
// One pool serves one caller goroutine at a time — concurrent Run calls
// on the same pool would share helper arenas. Callers that themselves
// run in parallel (e.g. search drivers) hold one pool each.
type EvalPool struct {
	width   int
	scratch []BitBFSScratch // helper arenas; the caller brings its own
}

// NewEvalPool returns a pool of the given width (minimum 1). Width 1 —
// and a nil *EvalPool — degrade Run to a serial loop on the caller.
func NewEvalPool(width int) *EvalPool {
	if width < 1 {
		width = 1
	}
	return &EvalPool{width: width, scratch: make([]BitBFSScratch, width-1)}
}

// Width reports the pool's parallelism bound; a nil pool has width 1.
func (p *EvalPool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Run executes fn(task, scratch) for every task in [0, n) across the
// caller and the pool's helpers. fn must confine its writes to
// task-indexed state (slices pre-sized by the caller); any cross-task
// aggregation happens after Run returns, in fixed task order, which is
// what keeps results bit-identical at every width. caller is the
// scratch arena used for tasks executed on the calling goroutine.
//
// Tasks are handed out through an atomic cursor, so expensive tasks
// load-balance; when the pool is nil, width 1, or n ≤ 1, Run is a plain
// serial loop with zero synchronization.
func (p *EvalPool) Run(n int, caller *BitBFSScratch, fn func(task int, s *BitBFSScratch)) {
	if p == nil || p.width <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i, caller)
		}
		return
	}
	helpers := p.width - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func(s *BitBFSScratch) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, s)
			}
		}(&p.scratch[h])
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i, caller)
	}
	wg.Wait()
}
