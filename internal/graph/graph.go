// Package graph provides the undirected-graph substrate shared by every
// topology, routing and analysis component in the PolarStar reproduction.
//
// Graphs are immutable once built (construct with a Builder), which makes
// them safe to share across the worker pools used by the parallel
// all-pairs algorithms and the network simulator.
//
// Storage is a CSR (compressed sparse row): one flat sorted neighbor
// array plus per-vertex offsets. Every directed arc u→v therefore has a
// dense integer id — its "channel id" — which the simulator and the
// analytic link-load accumulators use to index per-channel state with
// plain arrays instead of hash maps (see ChannelID).
//
// Self-loops get first-class treatment because Erdős–Rényi polarity graphs
// have self-orthogonal (quadric) vertices: the loop does not contribute a
// usable network link, but Property R walks and the star product both
// consume loop information (§6.1.2 of the paper).
package graph

import (
	"fmt"
	"slices"
)

// Graph is an immutable simple undirected graph with optional self-loop
// annotations. Vertices are dense integers [0, N).
type Graph struct {
	name   string
	n      int
	off    []int32 // CSR offsets, len n+1
	nbr    []int32 // CSR neighbor array (sorted per vertex), len 2*nEdges
	loops  []bool  // loops[v]: v carries a self-loop annotation
	nEdges int     // number of undirected non-loop edges
	nLoops int
	adj    []uint64 // n×n adjacency bitmap for small graphs (nil above adjBitmapMax)
}

// adjBitmapMax bounds the vertex count up to which Build materializes the
// n×n adjacency bitmap behind O(1) HasEdge: 2048² bits = 512 KB. Routing
// case analyses hammer HasEdge on small structure/supernode graphs and on
// the paper-scale networks (≤ ~1100 routers); huge generated graphs fall
// back to the CSR binary search.
const adjBitmapMax = 2048

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	name  string
	n     int
	edges map[int64]struct{}
	loops []bool
}

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(name string, n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{
		name:  name,
		n:     n,
		edges: make(map[int64]struct{}),
		loops: make([]bool, n),
	}
}

func (b *Builder) key(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge is
// a no-op; u == v records a self-loop annotation instead of an edge.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		b.loops[u] = true
		return
	}
	b.edges[b.key(u, v)] = struct{}{}
}

// HasEdge reports whether {u,v} was already added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v {
		return b.loops[u]
	}
	_, ok := b.edges[b.key(u, v)]
	return ok
}

// Build finalizes the graph. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n)
	for k := range b.edges {
		deg[int(k>>32)]++
		deg[int(k&0xffffffff)]++
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	nbr := make([]int32, off[b.n])
	fill := make([]int32, b.n)
	for k := range b.edges {
		u, v := int(k>>32), int(k&0xffffffff)
		nbr[off[u]+fill[u]] = int32(v)
		nbr[off[v]+fill[v]] = int32(u)
		fill[u]++
		fill[v]++
	}
	nLoops := 0
	for v := 0; v < b.n; v++ {
		slices.Sort(nbr[off[v]:off[v+1]])
		if b.loops[v] {
			nLoops++
		}
	}
	g := &Graph{
		name:   b.name,
		n:      b.n,
		off:    off,
		nbr:    nbr,
		loops:  b.loops,
		nEdges: len(b.edges),
		nLoops: nLoops,
	}
	g.buildAdjBitmap()
	return g
}

// buildAdjBitmap fills the O(1) HasEdge bitmap from the CSR (loops are
// excluded, matching HasEdge semantics) when the graph is small enough.
func (g *Graph) buildAdjBitmap() {
	if g.n == 0 || g.n > adjBitmapMax {
		return
	}
	g.adj = make([]uint64, (g.n*g.n+63)/64)
	for u := 0; u < g.n; u++ {
		base := u * g.n
		for _, v := range g.Neighbors(u) {
			bit := base + int(v)
			g.adj[bit>>6] |= 1 << (bit & 63)
		}
	}
}

// Name returns the label assigned at construction.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices (the order of the graph).
func (g *Graph) N() int { return g.n }

// M returns the number of undirected non-loop edges.
func (g *Graph) M() int { return g.nEdges }

// NumLoops returns the number of self-loop annotations.
func (g *Graph) NumLoops() int { return g.nLoops }

// Degree returns the non-loop degree of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// HasLoop reports whether v carries a self-loop annotation.
func (g *Graph) HasLoop(v int) bool { return g.loops[v] }

// Neighbors returns the sorted neighbour list of v. The slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// NumChannels returns the number of directed channels (arcs): 2·M().
// Channel ids are dense in [0, NumChannels()).
func (g *Graph) NumChannels() int { return len(g.nbr) }

// FirstChannel returns the channel id of u's first outgoing arc; the k-th
// neighbor of u (in Neighbors order) is reached over channel
// FirstChannel(u)+k.
func (g *Graph) FirstChannel(u int) int { return int(g.off[u]) }

// ChannelID returns the dense id of the directed channel u→v, or -1 when
// {u,v} is not an edge. Ids follow CSR order: all arcs out of u are
// contiguous, sorted by destination.
func (g *Graph) ChannelID(u, v int) int {
	lo, hi := g.off[u], g.off[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.nbr[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.off[u+1] && g.nbr[lo] == int32(v) {
		return int(lo)
	}
	return -1
}

// ChannelTo returns the destination vertex of channel c.
func (g *Graph) ChannelTo(c int) int { return int(g.nbr[c]) }

// HasEdge reports whether {u,v} is an edge (loops excluded).
func (g *Graph) HasEdge(u, v int) bool {
	if g.adj != nil {
		bit := u*g.n + v
		return g.adj[bit>>6]&(1<<(bit&63)) != 0
	}
	if u == v {
		return false
	}
	return g.ChannelID(u, v) >= 0
}

// MaxDegree returns the largest non-loop degree; 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// MinDegree returns the smallest non-loop degree; 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	m := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < m {
			m = d
		}
	}
	return m
}

// IsRegular reports whether every vertex has the same non-loop degree.
func (g *Graph) IsRegular() bool { return g.n == 0 || g.MaxDegree() == g.MinDegree() }

// Edges returns all undirected edges as pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.nEdges)
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// FilterScratch holds the reusable allocations of FilterEdgesScratch.
// One scratch serves one filtering loop at a time; the zero value is
// ready to use.
type FilterScratch struct {
	keep []uint64 // bitmap over the u<v arcs of the source graph
	deg  []int32
	fill []int32
	off  []int32
	nbr  []int32
}

// FilterEdges returns a copy of g retaining exactly the edges for which
// keep returns true. keep is called once per undirected edge, with u < v,
// in CSR order; c is the channel id of the u→v arc, so callers can key
// per-edge state by channel id without any lookup. Loop annotations are
// preserved. The CSR of the copy is built directly in two passes — no
// intermediate edge map.
func (g *Graph) FilterEdges(keep func(c, u, v int) bool) *Graph {
	return g.FilterEdgesScratch(new(FilterScratch), keep)
}

// FilterEdgesScratch is FilterEdges reusing the allocations of s across
// calls. The returned graph aliases s: it is invalidated by the next
// FilterEdgesScratch call with the same scratch. Use it in tight loops
// that build, measure and discard subgraphs (the fault-sweep bisection).
func (g *Graph) FilterEdgesScratch(s *FilterScratch, keep func(c, u, v int) bool) *Graph {
	nc := len(g.nbr)
	if cap(s.keep) < (nc+63)/64 {
		s.keep = make([]uint64, (nc+63)/64)
	}
	s.keep = s.keep[:(nc+63)/64]
	for i := range s.keep {
		s.keep[i] = 0
	}
	if cap(s.deg) < g.n {
		s.deg = make([]int32, g.n)
		s.fill = make([]int32, g.n)
	}
	s.deg, s.fill = s.deg[:g.n], s.fill[:g.n]
	for i := range s.deg {
		s.deg[i] = 0
		s.fill[i] = 0
	}
	// Pass 1: decide each u<v edge once, record the verdict, count degrees.
	kept := 0
	for u := 0; u < g.n; u++ {
		for c := g.off[u]; c < g.off[u+1]; c++ {
			v := int(g.nbr[c])
			if v <= u {
				continue
			}
			if keep(int(c), u, v) {
				s.keep[c>>6] |= 1 << (uint(c) & 63)
				s.deg[u]++
				s.deg[v]++
				kept++
			}
		}
	}
	if cap(s.off) < g.n+1 {
		s.off = make([]int32, g.n+1)
	}
	s.off = s.off[:g.n+1]
	s.off[0] = 0
	for v := 0; v < g.n; v++ {
		s.off[v+1] = s.off[v] + s.deg[v]
	}
	if cap(s.nbr) < 2*kept {
		s.nbr = make([]int32, 2*kept)
	}
	s.nbr = s.nbr[:2*kept]
	// Pass 2: emit kept edges in (u asc, v asc) order. Vertex x receives
	// its smaller neighbors first (while processing each u < x, u
	// ascending) and its larger ones after (while processing u == x), so
	// every output list comes out sorted without a sort pass.
	for u := 0; u < g.n; u++ {
		for c := g.off[u]; c < g.off[u+1]; c++ {
			v := int(g.nbr[c])
			if v <= u || s.keep[c>>6]&(1<<(uint(c)&63)) == 0 {
				continue
			}
			s.nbr[s.off[u]+s.fill[u]] = int32(v)
			s.nbr[s.off[v]+s.fill[v]] = int32(u)
			s.fill[u]++
			s.fill[v]++
		}
	}
	return &Graph{
		name:   g.name,
		n:      g.n,
		off:    s.off,
		nbr:    s.nbr,
		loops:  g.loops, // immutable: safe to share
		nEdges: kept,
		nLoops: g.nLoops,
	}
}

// RemoveEdges returns a copy of g with the given undirected edges deleted.
// Unknown edges are ignored. Loop annotations are preserved.
func (g *Graph) RemoveEdges(edges [][2]int) *Graph {
	drop := make(map[int64]struct{}, len(edges))
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for _, e := range edges {
		drop[key(e[0], e[1])] = struct{}{}
	}
	return g.FilterEdges(func(_, u, v int) bool {
		_, gone := drop[key(u, v)]
		return !gone
	})
}

// Rename returns a shallow copy of g with a different name.
func (g *Graph) Rename(name string) *Graph {
	h := *g
	h.name = name
	return &h
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d loops=%d}", g.name, g.n, g.nEdges, g.nLoops)
}
