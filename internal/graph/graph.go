// Package graph provides the undirected-graph substrate shared by every
// topology, routing and analysis component in the PolarStar reproduction.
//
// Graphs are immutable once built (construct with a Builder), which makes
// them safe to share across the worker pools used by the parallel
// all-pairs algorithms and the network simulator.
//
// Self-loops get first-class treatment because Erdős–Rényi polarity graphs
// have self-orthogonal (quadric) vertices: the loop does not contribute a
// usable network link, but Property R walks and the star product both
// consume loop information (§6.1.2 of the paper).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph with optional self-loop
// annotations. Vertices are dense integers [0, N).
type Graph struct {
	name   string
	n      int
	adj    [][]int32 // sorted neighbour lists, no self-loops, no duplicates
	loops  []bool    // loops[v]: v carries a self-loop annotation
	nEdges int       // number of undirected non-loop edges
	nLoops int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	name  string
	n     int
	edges map[int64]struct{}
	loops []bool
}

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(name string, n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{
		name:  name,
		n:     n,
		edges: make(map[int64]struct{}),
		loops: make([]bool, n),
	}
}

func (b *Builder) key(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge is
// a no-op; u == v records a self-loop annotation instead of an edge.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		b.loops[u] = true
		return
	}
	b.edges[b.key(u, v)] = struct{}{}
}

// HasEdge reports whether {u,v} was already added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v {
		return b.loops[u]
	}
	_, ok := b.edges[b.key(u, v)]
	return ok
}

// Build finalizes the graph. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	deg := make([]int, b.n)
	for k := range b.edges {
		deg[int(k>>32)]++
		deg[int(k&0xffffffff)]++
	}
	adj := make([][]int32, b.n)
	backing := make([]int32, 0, 2*len(b.edges))
	offsets := make([]int, b.n)
	pos := 0
	for v := 0; v < b.n; v++ {
		offsets[v] = pos
		pos += deg[v]
	}
	backing = backing[:pos]
	fill := make([]int, b.n)
	for k := range b.edges {
		u, v := int(k>>32), int(k&0xffffffff)
		backing[offsets[u]+fill[u]] = int32(v)
		backing[offsets[v]+fill[v]] = int32(u)
		fill[u]++
		fill[v]++
	}
	nLoops := 0
	for v := 0; v < b.n; v++ {
		adj[v] = backing[offsets[v] : offsets[v]+deg[v]]
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		if b.loops[v] {
			nLoops++
		}
	}
	return &Graph{
		name:   b.name,
		n:      b.n,
		adj:    adj,
		loops:  b.loops,
		nEdges: len(b.edges),
		nLoops: nLoops,
	}
}

// Name returns the label assigned at construction.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices (the order of the graph).
func (g *Graph) N() int { return g.n }

// M returns the number of undirected non-loop edges.
func (g *Graph) M() int { return g.nEdges }

// NumLoops returns the number of self-loop annotations.
func (g *Graph) NumLoops() int { return g.nLoops }

// Degree returns the non-loop degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasLoop reports whether v carries a self-loop annotation.
func (g *Graph) HasLoop(v int) bool { return g.loops[v] }

// Neighbors returns the sorted neighbour list of v. The slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u,v} is an edge (loops excluded).
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == int32(v)
}

// MaxDegree returns the largest non-loop degree; 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > m {
			m = d
		}
	}
	return m
}

// MinDegree returns the smallest non-loop degree; 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	m := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if d := len(g.adj[v]); d < m {
			m = d
		}
	}
	return m
}

// IsRegular reports whether every vertex has the same non-loop degree.
func (g *Graph) IsRegular() bool { return g.n == 0 || g.MaxDegree() == g.MinDegree() }

// Edges returns all undirected edges as pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.nEdges)
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// RemoveEdges returns a copy of g with the given undirected edges deleted.
// Unknown edges are ignored. Loop annotations are preserved.
func (g *Graph) RemoveEdges(edges [][2]int) *Graph {
	drop := make(map[int64]struct{}, len(edges))
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for _, e := range edges {
		drop[key(e[0], e[1])] = struct{}{}
	}
	b := NewBuilder(g.name, g.n)
	copy(b.loops, g.loops)
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			v := int(w)
			if u < v {
				if _, gone := drop[key(u, v)]; !gone {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// Rename returns a shallow copy of g with a different name.
func (g *Graph) Rename(name string) *Graph {
	h := *g
	h.name = name
	return &h
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d loops=%d}", g.name, g.n, g.nEdges, g.nLoops)
}
