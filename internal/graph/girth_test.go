package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestGirthKnownGraphs(t *testing.T) {
	if g := complete(4).Girth(); g != 3 {
		t.Errorf("K4 girth = %d, want 3", g)
	}
	if g := cycle(6).Girth(); g != 6 {
		t.Errorf("C6 girth = %d, want 6", g)
	}
	if g := cycle(5).Girth(); g != 5 {
		t.Errorf("C5 girth = %d, want 5", g)
	}
	if g := path(7).Girth(); g != -1 {
		t.Errorf("P7 girth = %d, want -1 (acyclic)", g)
	}
	// Petersen graph: girth 5.
	pet := petersen()
	if g := pet.Girth(); g != 5 {
		t.Errorf("Petersen girth = %d, want 5", g)
	}
	// K_{3,3}: girth 4.
	b := NewBuilder("k33", 6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	if g := b.Build().Girth(); g != 4 {
		t.Errorf("K33 girth = %d, want 4", g)
	}
}

// petersen builds the Petersen graph: outer C5, inner pentagram, spokes.
func petersen() *Graph {
	b := NewBuilder("petersen", 10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	return b.Build()
}

func TestWriteDOT(t *testing.T) {
	g := cycle(4)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph", "0 -- 1", "0 -- 3", "2 -- 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Grouped variant colors nodes.
	buf.Reset()
	if err := g.WriteDOT(&buf, func(v int) int { return v / 2 }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fillcolor") {
		t.Error("grouped DOT missing fill colors")
	}
}
