package graph

import (
	"math/rand"
	"testing"
)

func randomTestGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand", n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v) // u == v records a loop; duplicates are no-ops
	}
	return b.Build()
}

func TestChannelIDsAreDenseCSRPositions(t *testing.T) {
	g := randomTestGraph(t, 50, 300, 1)
	if g.NumChannels() != 2*g.M() {
		t.Fatalf("NumChannels = %d, want %d", g.NumChannels(), 2*g.M())
	}
	seen := make([]bool, g.NumChannels())
	for u := 0; u < g.N(); u++ {
		base := g.FirstChannel(u)
		for k, w := range g.Neighbors(u) {
			c := g.ChannelID(u, int(w))
			if c != base+k {
				t.Fatalf("ChannelID(%d,%d) = %d, want FirstChannel+k = %d", u, w, c, base+k)
			}
			if g.ChannelTo(c) != int(w) {
				t.Fatalf("ChannelTo(%d) = %d, want %d", c, g.ChannelTo(c), w)
			}
			if seen[c] {
				t.Fatalf("channel id %d assigned twice", c)
			}
			seen[c] = true
		}
	}
	for c, s := range seen {
		if !s {
			t.Fatalf("channel id %d unused", c)
		}
	}
	// Non-edges map to -1.
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got := g.ChannelID(u, v) >= 0; got != (g.HasEdge(u, v) || (u == v && false)) {
				if got != g.HasEdge(u, v) {
					t.Fatalf("ChannelID(%d,%d) presence %v != HasEdge %v", u, v, got, g.HasEdge(u, v))
				}
			}
		}
	}
}

func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.NumLoops() != b.NumLoops() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("degree mismatch at %d: %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("neighbor mismatch at %d: %v vs %v", v, na, nb)
			}
		}
		if a.HasLoop(v) != b.HasLoop(v) {
			t.Fatalf("loop mismatch at %d", v)
		}
	}
}

// TestFilterEdgesMatchesBuilderRoundTrip: the direct CSR rebuild must
// produce exactly the graph a Builder would, including sorted adjacency.
func TestFilterEdgesMatchesBuilderRoundTrip(t *testing.T) {
	g := randomTestGraph(t, 60, 500, 2)
	rng := rand.New(rand.NewSource(3))
	drop := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		if rng.Intn(3) == 0 {
			drop[e] = true
		}
	}
	fast := g.FilterEdges(func(_, u, v int) bool { return !drop[[2]int{u, v}] })

	b := NewBuilder(g.Name(), g.N())
	for v := 0; v < g.N(); v++ {
		if g.HasLoop(v) {
			b.AddEdge(v, v)
		}
	}
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e[0], e[1])
		}
	}
	sameGraph(t, fast, b.Build())
}

// TestFilterEdgesScratchReuse: repeated filtering through one scratch must
// give the same result as fresh filtering, for shrinking and growing kept
// sets alike (the bisection access pattern).
func TestFilterEdgesScratchReuse(t *testing.T) {
	g := randomTestGraph(t, 40, 250, 4)
	edges := g.Edges()
	var s FilterScratch
	for _, k := range []int{len(edges), 3, len(edges) / 2, 0, len(edges) - 1} {
		kept := make(map[[2]int]bool, k)
		for _, e := range edges[:k] {
			kept[e] = true
		}
		keep := func(_, u, v int) bool { return kept[[2]int{u, v}] }
		sameGraph(t, g.FilterEdgesScratch(&s, keep), g.FilterEdges(keep))
	}
}

// TestFilterEdgesChannelArgument: the c passed to keep must be the channel
// id of the u→v arc.
func TestFilterEdgesChannelArgument(t *testing.T) {
	g := randomTestGraph(t, 30, 120, 5)
	calls := 0
	g.FilterEdges(func(c, u, v int) bool {
		calls++
		if u >= v {
			t.Fatalf("keep called with u=%d >= v=%d", u, v)
		}
		if want := g.ChannelID(u, v); c != want {
			t.Fatalf("keep channel %d for (%d,%d), want %d", c, u, v, want)
		}
		return true
	})
	if calls != g.M() {
		t.Fatalf("keep called %d times, want M=%d", calls, g.M())
	}
}

func TestConnectedSubset(t *testing.T) {
	b := NewBuilder("two-comps", 6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	var s BFSScratch
	var dist []int32
	ok, dist := g.ConnectedSubset([]int{0, 1, 2}, dist, &s)
	if !ok {
		t.Error("0-1-2 should be connected")
	}
	ok, dist = g.ConnectedSubset([]int{0, 3}, dist, &s)
	if ok {
		t.Error("0 and 3 are in different components")
	}
	if ok, _ := g.ConnectedSubset(nil, dist, &s); !ok {
		t.Error("empty host set is trivially connected")
	}
}
