package graph

import (
	"math/rand"
	"testing"
)

// TestDeltaStatsDistsGrowth pins the probe-buffer memory contract:
// DistsBytes tracks the high-water of the *used* probe length n·|region|
// (so it is a pure function of the swap sequence, independent of
// allocation history), while the backing array only ever grows, and
// geometrically — any growth after the first allocation at least
// doubles the capacity, so a region that sets a new record by one
// vertex cannot trigger per-swap re-allocation at paper scale.
func TestDeltaStatsDistsGrowth(t *testing.T) {
	// Degree-4 circulant: enough structure for plentiful valid swaps,
	// region sizes that vary with neighborhood overlap.
	b := NewBuilder("circ64", 64)
	for i := 0; i < 64; i++ {
		b.AddEdge(i, (i+1)%64)
		b.AddEdge(i, (i+2)%64)
	}
	d := NewDeltaStats(b.Build())
	if d.DistsBytes != 0 {
		t.Fatalf("DistsBytes %d before any Apply, want 0", d.DistsBytes)
	}
	rng := rand.New(rand.NewSource(7))
	edges := d.Graph().Edges()
	prevCap := 0
	var hwm int64
	applied := 0
	for try := 0; try < 20000 && applied < 60; try++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		sw := Swap{A: int32(e1[0]), B: int32(e1[1]), C: int32(e2[0]), D: int32(e2[1])}
		if !d.CanSwap(sw) {
			continue
		}
		d.Apply(sw)
		applied++
		edges = d.Graph().Edges()
		need := int64(d.n * len(d.region))
		if need > hwm {
			hwm = need
		}
		if d.DistsBytes != hwm {
			t.Fatalf("apply %d: DistsBytes %d, want high-water %d", applied, d.DistsBytes, hwm)
		}
		c := cap(d.dists)
		if c < prevCap {
			t.Fatalf("apply %d: probe capacity shrank %d -> %d", applied, prevCap, c)
		}
		if prevCap > 0 && c > prevCap && c < 2*prevCap {
			t.Fatalf("apply %d: growth %d -> %d is not geometric", applied, prevCap, c)
		}
		prevCap = c
	}
	if applied < 60 {
		t.Fatalf("only %d valid swaps found", applied)
	}
	if hwm == 0 {
		t.Fatal("probe buffer never used")
	}
}
