// Bit-parallel multi-source BFS: the all-pairs engine behind the
// diameter-3 verification, the fault-tolerance sweeps and the measured
// design-space tables.
//
// The kernel runs up to 64 BFS traversals simultaneously, one per bit
// lane of a machine word: frontier/visited state is one uint64 per
// vertex, a level expansion ORs frontier words across the CSR adjacency,
// and per-level popcounts recover exact per-source distance aggregates
// (sum, count, eccentricity) plus an optional global distance histogram.
// One batch therefore traverses the edge array once per BFS *level*
// instead of once per *source* — on the diameter-3 graphs this
// repository studies (three or four levels), that replaces 64 full
// scalar traversals with ~4 word-parallel ones.
//
// All aggregates are integers, so every summation order yields the same
// result; the parallel drivers nevertheless shard source batches in a
// fixed order and merge per-batch partials in that same order (the PR-1
// link-load discipline), keeping results bit-identical to the scalar
// reference at any GOMAXPROCS.
//
// Scalar BFS (BFSDistancesScratch) still wins when the caller needs the
// actual distance vector of one source (routing-table construction,
// connectivity bisection) or when the graph is tiny enough that arena
// setup dominates; the kernel wins whenever ≥64 sources are aggregated.
package graph

import (
	"math/bits"
	"runtime"
	"sync"
)

// BitBFSScratch is the reusable arena of the bit-parallel BFS kernel:
// three n-word bitsets (visited, current frontier, next frontier) plus a
// source-id staging array. The zero value is ready to use; one scratch
// serves one goroutine at a time and is reused across batches and across
// graphs (it regrows as needed).
type BitBFSScratch struct {
	visited  []uint64
	frontier []uint64
	next     []uint64
	srcs     [64]int32
}

// reset sizes the arena for an n-vertex graph and clears it. Cross-size
// reuse is safe in both directions: shrinking re-slices (capacity and any
// stale words beyond n are retained but never read), growing reallocates
// all three bitsets together, and the clear always covers the full
// re-sliced window so bits left by a previous, larger graph cannot leak
// into a later batch. TestBitBFSScratchCrossSizeReuse pins this.
func (s *BitBFSScratch) reset(n int) {
	if len(s.frontier) != len(s.visited) || len(s.next) != len(s.visited) {
		panic("graph: BitBFSScratch bitsets diverged; a scratch must not be shared between goroutines")
	}
	if cap(s.visited) < n {
		s.visited = make([]uint64, n)
		s.frontier = make([]uint64, n)
		s.next = make([]uint64, n)
	}
	s.visited = s.visited[:n]
	s.frontier = s.frontier[:n]
	s.next = s.next[:n]
	clear(s.visited)
	clear(s.frontier)
	clear(s.next)
}

// BatchBFSStats aggregates one batch of up to 64 simultaneous BFS
// traversals; lane i corresponds to the i-th source of the batch. Only
// destinations at distance ≥ 1 are counted, so a source never counts
// itself.
type BatchBFSStats struct {
	Lanes   int       // sources in the batch; lanes ≥ Lanes are zero
	Ecc     [64]int32 // largest counted distance per lane (0: none)
	Sum     [64]int64 // sum of counted distances per lane
	Reached [64]int64 // counted destinations per lane
}

// BitBFSBatch runs one level-synchronous bit-parallel BFS from up to 64
// sources simultaneously and returns exact per-source distance
// aggregates derived from per-level popcounts.
//
// dst, when non-nil (length N), restricts which destinations are
// *counted*; traversal still crosses every vertex, so distances through
// uncounted vertices remain exact. hist, when non-nil, additionally
// accumulates hist[d] += (counted pairs at distance d), growing as
// needed; the possibly-grown slice is returned.
//
// The kernel only reads the graph, so concurrent batches on one graph
// are safe as long as each goroutine owns its scratch.
func (g *Graph) BitBFSBatch(srcs []int32, s *BitBFSScratch, dst []bool, hist []int64) (BatchBFSStats, []int64) {
	var st BatchBFSStats
	st.Lanes = len(srcs)
	if len(srcs) == 0 {
		return st, hist
	}
	if len(srcs) > 64 {
		panic("graph: BitBFSBatch batch exceeds 64 sources")
	}
	s.reset(g.n)
	for lane, v := range srcs {
		bit := uint64(1) << uint(lane)
		s.visited[v] |= bit
		s.frontier[v] |= bit
	}
	collect := hist != nil
	for level := int32(1); ; level++ {
		// Expand: next[v] accumulates the frontier words of v's neighbors.
		for u := 0; u < g.n; u++ {
			f := s.frontier[u]
			if f == 0 {
				continue
			}
			for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
				s.next[v] |= f
			}
		}
		// Advance: newly-reached bits become the next frontier; popcount
		// them into per-lane counters for this level.
		var laneCnt [64]int64
		levelTotal := int64(0)
		anyNew := false
		for v := 0; v < g.n; v++ {
			nw := s.next[v] &^ s.visited[v]
			s.next[v] = 0
			s.frontier[v] = nw
			if nw == 0 {
				continue
			}
			anyNew = true
			s.visited[v] |= nw
			if dst != nil && !dst[v] {
				continue
			}
			levelTotal += int64(bits.OnesCount64(nw))
			for w := nw; w != 0; w &= w - 1 {
				laneCnt[bits.TrailingZeros64(w)]++
			}
		}
		if !anyNew {
			return st, hist
		}
		if collect && levelTotal > 0 {
			for len(hist) <= int(level) {
				hist = append(hist, 0)
			}
			hist[level] += levelTotal
		}
		for lane := 0; lane < st.Lanes; lane++ {
			c := laneCnt[lane]
			if c == 0 {
				continue
			}
			st.Reached[lane] += c
			st.Sum[lane] += int64(level) * c
			st.Ecc[lane] = level
		}
	}
}

// DistUnreachable marks an unreached vertex in the uint8 distance
// vectors produced by BitBFSBatchDist.
const DistUnreachable = ^uint8(0)

// BitBFSBatchDist is BitBFSBatch additionally recording the full
// distance vector of every lane in vertex-major layout: on return
// dist[v·stride+lane] holds the hop distance from srcs[lane] to v, or
// DistUnreachable. stride must be ≥ len(srcs) and dist must have length
// ≥ (N()−1)·stride + len(srcs); a caller assembling more than 64 source
// vectors passes the same stride with an offset slice per batch. The
// vertex-major layout keeps one vertex's lanes in one cache line — the
// lane-major alternative scatters every distance write across stride-N
// regions and measures ~4x slower at n=4096 — and it is also the access
// order of the delta-evaluation dirty tests (DeltaStats), which read all
// probe distances of one source together. Returns ok=false (dist
// contents unspecified) if any distance would reach 255, so callers can
// fall back to treating every source as dirty.
func (g *Graph) BitBFSBatchDist(srcs []int32, s *BitBFSScratch, dist []uint8, stride int) (st BatchBFSStats, ok bool) {
	st.Lanes = len(srcs)
	if len(srcs) == 0 {
		return st, true
	}
	if len(srcs) > 64 {
		panic("graph: BitBFSBatchDist batch exceeds 64 sources")
	}
	if stride < len(srcs) {
		panic("graph: BitBFSBatchDist stride below lane count")
	}
	lanes := len(srcs)
	s.reset(g.n)
	for lane, v := range srcs {
		bit := uint64(1) << uint(lane)
		s.visited[v] |= bit
		s.frontier[v] |= bit
		dist[int(v)*stride+lane] = 0
	}
	for level := int32(1); ; level++ {
		if level >= int32(DistUnreachable) {
			return st, false
		}
		for u := 0; u < g.n; u++ {
			f := s.frontier[u]
			if f == 0 {
				continue
			}
			for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
				s.next[v] |= f
			}
		}
		var laneCnt [64]int64
		anyNew := false
		for v := 0; v < g.n; v++ {
			nw := s.next[v] &^ s.visited[v]
			s.next[v] = 0
			s.frontier[v] = nw
			if nw == 0 {
				continue
			}
			anyNew = true
			s.visited[v] |= nw
			row := dist[v*stride : v*stride+lanes]
			for w := nw; w != 0; w &= w - 1 {
				lane := bits.TrailingZeros64(w)
				laneCnt[lane]++
				row[lane] = uint8(level)
			}
		}
		if !anyNew {
			break
		}
		for lane := 0; lane < st.Lanes; lane++ {
			c := laneCnt[lane]
			if c == 0 {
				continue
			}
			st.Reached[lane] += c
			st.Sum[lane] += int64(level) * c
			st.Ecc[lane] = level
		}
	}
	// Unreached fix-up: dist was written only for visited vertices, so
	// lanes that did not reach the whole graph still hold stale bytes
	// there. Skipped entirely on the (common) all-lanes-connected path.
	needFix := false
	for lane := 0; lane < lanes; lane++ {
		if st.Reached[lane] != int64(g.n-1) {
			needFix = true
			break
		}
	}
	if needFix {
		full := ^uint64(0) >> uint(64-lanes)
		for v := 0; v < g.n; v++ {
			miss := full &^ s.visited[v]
			for w := miss; w != 0; w &= w - 1 {
				dist[v*stride+bits.TrailingZeros64(w)] = DistUnreachable
			}
		}
	}
	return st, true
}

// BitBFSBatchRows is BitBFSBatch additionally recording per-lane level
// counts: on return rows[lane*stride+d] holds the number of vertices at
// distance exactly d (1 ≤ d < stride) from srcs[lane]; rows[lane*stride]
// is 0 (a source never counts itself). The used lane windows are zeroed
// first, so callers can hand in a dirty buffer. rows must have length ≥
// len(srcs)·stride. Returns ok=false — with rows contents unspecified —
// when some lane's eccentricity reaches stride, letting DeltaStats grow
// its row stride and retry.
func (g *Graph) BitBFSBatchRows(srcs []int32, s *BitBFSScratch, rows []int32, stride int) (st BatchBFSStats, ok bool) {
	st.Lanes = len(srcs)
	if len(srcs) == 0 {
		return st, true
	}
	if len(srcs) > 64 {
		panic("graph: BitBFSBatchRows batch exceeds 64 sources")
	}
	if stride < 1 {
		panic("graph: BitBFSBatchRows stride must be >= 1")
	}
	clear(rows[:len(srcs)*stride])
	s.reset(g.n)
	for lane, v := range srcs {
		bit := uint64(1) << uint(lane)
		s.visited[v] |= bit
		s.frontier[v] |= bit
	}
	for level := int32(1); ; level++ {
		for u := 0; u < g.n; u++ {
			f := s.frontier[u]
			if f == 0 {
				continue
			}
			for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
				s.next[v] |= f
			}
		}
		var laneCnt [64]int64
		anyNew := false
		for v := 0; v < g.n; v++ {
			nw := s.next[v] &^ s.visited[v]
			s.next[v] = 0
			s.frontier[v] = nw
			if nw == 0 {
				continue
			}
			anyNew = true
			s.visited[v] |= nw
			for w := nw; w != 0; w &= w - 1 {
				laneCnt[bits.TrailingZeros64(w)]++
			}
		}
		if !anyNew {
			return st, true
		}
		// Checked only once the level is known non-empty, so a graph
		// whose eccentricity is exactly stride-1 still fits.
		if int(level) >= stride {
			return st, false
		}
		for lane := 0; lane < st.Lanes; lane++ {
			c := laneCnt[lane]
			if c == 0 {
				continue
			}
			st.Reached[lane] += c
			st.Sum[lane] += int64(level) * c
			st.Ecc[lane] = level
			rows[lane*stride+int(level)] = int32(c)
		}
	}
}

// batchAgg is the per-batch partial of the parallel all-pairs drivers.
type batchAgg struct {
	sum, pairs int64
	diam       int32
}

// runBatch executes the kernel for the contiguous source batch starting
// at base and folds the lane stats into one partial.
func (g *Graph) runBatch(base int, s *BitBFSScratch) batchAgg {
	lanes := g.n - base
	if lanes > 64 {
		lanes = 64
	}
	for i := 0; i < lanes; i++ {
		s.srcs[i] = int32(base + i)
	}
	st, _ := g.BitBFSBatch(s.srcs[:lanes], s, nil, nil)
	var a batchAgg
	for l := 0; l < lanes; l++ {
		a.pairs += st.Reached[l]
		a.sum += st.Sum[l]
		if st.Ecc[l] > a.diam {
			a.diam = st.Ecc[l]
		}
	}
	return a
}

// AllPairsStatsSerial computes AllPairsStats on the calling goroutine
// through the bit-parallel kernel, reusing an explicit scratch arena.
// It is the building block for worker pools that parallelize over
// *graphs* (the design-space sweeps) rather than over sources: each pool
// worker owns one scratch and measures whole topology points serially,
// avoiding nested parallelism.
func (g *Graph) AllPairsStatsSerial(s *BitBFSScratch) PathStats {
	var total batchAgg
	for base := 0; base < g.n; base += 64 {
		a := g.runBatch(base, s)
		total.sum += a.sum
		total.pairs += a.pairs
		if a.diam > total.diam {
			total.diam = a.diam
		}
	}
	return finishStats(g.n, total)
}

// finishStats converts the merged partial into PathStats. Connectivity
// falls out of the pair count: every source reaches all n−1 others iff
// the total equals n(n−1).
func finishStats(n int, t batchAgg) PathStats {
	stats := PathStats{
		Diameter:  t.diam,
		Pairs:     t.pairs,
		Connected: t.pairs == int64(n)*int64(n-1),
	}
	if t.pairs > 0 {
		stats.AvgPath = float64(t.sum) / float64(t.pairs)
	}
	return stats
}

// allPairsWorkers returns the worker count for nb source batches.
func allPairsWorkers(nb int) int {
	w := runtime.GOMAXPROCS(0)
	if w > nb {
		w = nb
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AllPairsStats computes the diameter, average shortest-path length and
// connectivity of g — the workhorse behind the diameter-3 verification
// (Table 3), the design-space sweeps and the fault-tolerance experiment.
//
// Sources are processed 64 at a time by the bit-parallel kernel
// (BitBFSBatch); batches are sharded across GOMAXPROCS workers in fixed
// stride order, each worker owning one scratch arena, and per-batch
// partials are merged in fixed batch order. All aggregation is integer,
// so the result is bit-identical to AllPairsStatsScalar at any worker
// count.
func (g *Graph) AllPairsStats() PathStats {
	nb := (g.n + 63) / 64
	workers := allPairsWorkers(nb)
	if workers <= 1 {
		var s BitBFSScratch
		return g.AllPairsStatsSerial(&s)
	}
	out := make([]batchAgg, nb)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s BitBFSScratch
			for b := w; b < nb; b += workers {
				out[b] = g.runBatch(b*64, &s)
			}
		}(w)
	}
	wg.Wait()
	var total batchAgg
	for _, a := range out { // fixed batch-order merge
		total.sum += a.sum
		total.pairs += a.pairs
		if a.diam > total.diam {
			total.diam = a.diam
		}
	}
	return finishStats(g.n, total)
}

// DistanceHistogram returns hist with hist[d] = number of ordered vertex
// pairs (u,v), u ≠ v, at distance exactly d, for d in [0, Diameter]
// (hist[0] is always 0; unreachable pairs are not counted). For a
// diameter-3 network, Σ d·hist[d] / Σ hist[d] is exactly the average
// path length studied by §11. Computed by the bit-parallel kernel with
// batches sharded across workers and merged in fixed batch order.
func (g *Graph) DistanceHistogram() []int64 {
	nb := (g.n + 63) / 64
	workers := allPairsWorkers(nb)
	hists := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s BitBFSScratch
			hist := []int64{0}
			for b := w; b < nb; b += workers {
				base := b * 64
				lanes := g.n - base
				if lanes > 64 {
					lanes = 64
				}
				for i := 0; i < lanes; i++ {
					s.srcs[i] = int32(base + i)
				}
				_, hist = g.BitBFSBatch(s.srcs[:lanes], &s, nil, hist)
			}
			hists[w] = hist
		}(w)
	}
	wg.Wait()
	out := []int64{0}
	for _, h := range hists { // fixed worker-order merge (integer sums)
		for len(out) < len(h) {
			out = append(out, 0)
		}
		for d, c := range h {
			out[d] += c
		}
	}
	return out
}

// Eccentricities returns the eccentricity of every vertex: the largest
// finite distance out of it (0 for isolated vertices; within its own
// component when g is disconnected). The all-vertex analogue of
// Eccentricity, computed 64 sources per traversal.
func (g *Graph) Eccentricities() []int32 {
	out := make([]int32, g.n)
	nb := (g.n + 63) / 64
	workers := allPairsWorkers(nb)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s BitBFSScratch
			for b := w; b < nb; b += workers {
				base := b * 64
				lanes := g.n - base
				if lanes > 64 {
					lanes = 64
				}
				for i := 0; i < lanes; i++ {
					s.srcs[i] = int32(base + i)
				}
				st, _ := g.BitBFSBatch(s.srcs[:lanes], &s, nil, nil)
				copy(out[base:base+lanes], st.Ecc[:lanes])
			}
		}(w)
	}
	wg.Wait()
	return out
}
