// External-package tests for DeltaStats: the delta-vs-full property
// sweep runs on real topology families (ER, PolarStar, random-regular),
// which live in internal/topo and therefore cannot be imported from
// package graph itself.
package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func validSwap(t testing.TB, g *graph.Graph, rng *rand.Rand) graph.Swap {
	t.Helper()
	edges := g.Edges()
	for try := 0; try < 20000; try++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		sw := graph.Swap{A: int32(e1[0]), B: int32(e1[1]), C: int32(e2[0]), D: int32(e2[1])}
		if rng.Intn(2) == 0 {
			sw.A, sw.B = sw.B, sw.A
		}
		if rng.Intn(2) == 0 {
			sw.C, sw.D = sw.D, sw.C
		}
		if g.CanSwap(sw) {
			return sw
		}
	}
	t.Fatal("no valid swap found")
	return graph.Swap{}
}

// checkDelta asserts the incremental aggregates match a from-scratch
// scalar recomputation of the current graph, field for field.
func checkDelta(t *testing.T, d *graph.DeltaStats) {
	t.Helper()
	want := d.Graph().AllPairsStatsScalar()
	got := d.Stats()
	if got != want {
		t.Fatalf("delta stats %+v, scalar recomputation %+v", got, want)
	}
	wantHist := d.Graph().DistanceHistogram()
	gotHist := d.Histogram()
	if !reflect.DeepEqual(gotHist, wantHist) {
		t.Fatalf("delta histogram %v, full recomputation %v", gotHist, wantHist)
	}
}

// TestDeltaStatsProperty is the delta-vs-full property sweep from the
// issue: 200 random 2-opt swaps on ER, PolarStar, and random-regular
// graphs, asserting ASPL/diameter/histogram equal the scalar oracle
// after every swap. Half the swaps are reverted to exercise the undo
// path, and a periodic Resync must report zero drift.
func TestDeltaStatsProperty(t *testing.T) {
	er, err := topo.NewER(7)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := topo.NewPolarStar(4, 3, topo.KindIQ)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := topo.NewJellyfish(64, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ER7", er.G},
		{"PolarStarIQ43", ps.G},
		{"Jellyfish64x4", jf},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := graph.NewDeltaStats(tc.g)
			checkDelta(t, d)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200; i++ {
				sw := validSwap(t, d.Graph(), rng)
				before := d.Stats()
				d.Apply(sw)
				checkDelta(t, d)
				if rng.Intn(2) == 0 {
					d.Revert()
					if got := d.Stats(); got != before {
						t.Fatalf("swap %d: revert gave %+v, want %+v", i, got, before)
					}
					checkDelta(t, d)
				}
				if i%50 == 49 {
					if d.Resync() {
						t.Fatalf("swap %d: Resync reported drift", i)
					}
					checkDelta(t, d)
				}
			}
			if d.Evals != 200 {
				t.Errorf("Evals = %d, want 200", d.Evals)
			}
			if d.DirtyTotal <= 0 {
				t.Error("DirtyTotal not accumulated")
			}
			// The swap region is bounded by four closed neighborhoods,
			// so on these sparse graphs most swaps must be far cheaper
			// than a full recomputation.
			if avg := float64(d.DirtyTotal) / float64(d.Evals); avg >= float64(tc.g.N()) {
				t.Errorf("average dirty set %.1f not below n=%d", avg, tc.g.N())
			}
		})
	}
}

// TestDeltaStatsDisconnected drives swaps that merge and split
// components: two disjoint cycles where cross-swaps reconnect them,
// checking unreachable-pair accounting against the oracle.
func TestDeltaStatsDisconnected(t *testing.T) {
	b := graph.NewBuilder("2cycles", 24)
	for i := 0; i < 12; i++ {
		b.AddEdge(i, (i+1)%12)
		b.AddEdge(12+i, 12+(i+1)%12)
	}
	d := graph.NewDeltaStats(b.Build())
	checkDelta(t, d)
	if d.Stats().Connected {
		t.Fatal("two disjoint cycles reported connected")
	}
	// Cross swap: remove {0,1} and {12,13}, add {0,12},{1,13} — joins
	// the components into one cycle.
	join := graph.Swap{A: 0, B: 1, C: 12, D: 13}
	d.Apply(join)
	checkDelta(t, d)
	if !d.Stats().Connected {
		t.Fatal("cross swap should have connected the graph")
	}
	d.Revert()
	checkDelta(t, d)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		d.Apply(validSwap(t, d.Graph(), rng))
		checkDelta(t, d)
	}
}

// TestDeltaStatsStrideGrowth forces an Apply whose re-evaluation
// overflows the initial row width, exercising the rebuild fallback and
// its Revert path.
func TestDeltaStatsStrideGrowth(t *testing.T) {
	// C32 has eccentricity 16 ≥ initStride, so NewDeltaStats already
	// grows; start instead from a graph under the limit whose swap
	// stretches it: two C7s joined into one C14-like structure.
	b := graph.NewBuilder("2c7", 14)
	for i := 0; i < 7; i++ {
		b.AddEdge(i, (i+1)%7)
		b.AddEdge(7+i, 7+(i+1)%7)
	}
	d := graph.NewDeltaStats(b.Build())
	before := d.Stats()
	d.Apply(graph.Swap{A: 0, B: 1, C: 7, D: 8}) // one long cycle: ecc 7 ≥ 8? C14 ecc = 7 < 8
	checkDelta(t, d)
	d.Revert()
	if got := d.Stats(); got != before {
		t.Fatalf("revert gave %+v, want %+v", got, before)
	}
	checkDelta(t, d)

	// Directly provoke growth: a path long enough that re-wiring pushes
	// eccentricities past the stride.
	p := graph.NewBuilder("p20", 20)
	for i := 0; i+1 < 20; i++ {
		p.AddEdge(i, i+1)
	}
	dp := graph.NewDeltaStats(p.Build())
	checkDelta(t, dp)
	if dp.Stats().Diameter != 19 {
		t.Fatalf("P20 diameter %d", dp.Stats().Diameter)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		dp.Apply(validSwap(t, dp.Graph(), rng))
		checkDelta(t, dp)
	}
}

// TestDeltaStatsParallelDeterminism pins the tentpole contract: a
// pooled DeltaStats is bit-identical to the serial path — same dirty
// counts, aggregates, histogram and telemetry after every Apply, Revert
// and Resync — over a 200-swap walk at pool widths 1, 2 and 8. The
// graph is big enough (n=1024, degree 16) that every sharded phase
// actually fans out: the probe region spans two 64-lane batches, the
// dirty scan covers two 512-source chunks, and the dirty set regularly
// exceeds one recompute batch. CI runs this under -race.
func TestDeltaStatsParallelDeterminism(t *testing.T) {
	g, err := topo.NewJellyfish(1024, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	serial := graph.NewDeltaStats(g)
	widths := []int{1, 2, 8}
	pooled := make([]*graph.DeltaStats, len(widths))
	for i, w := range widths {
		pooled[i] = graph.NewDeltaStatsPool(g, graph.NewEvalPool(w))
	}
	compare := func(step int, what string) {
		t.Helper()
		wantStats := serial.Stats()
		wantHist := serial.Histogram()
		wantSum, wantPairs := serial.SumPairs()
		for i, d := range pooled {
			if got := d.Stats(); got != wantStats {
				t.Fatalf("swap %d %s: width %d stats %+v, serial %+v", step, what, widths[i], got, wantStats)
			}
			sum, pairs := d.SumPairs()
			if sum != wantSum || pairs != wantPairs {
				t.Fatalf("swap %d %s: width %d sum/pairs (%d,%d), serial (%d,%d)",
					step, what, widths[i], sum, pairs, wantSum, wantPairs)
			}
			if got := d.Histogram(); !reflect.DeepEqual(got, wantHist) {
				t.Fatalf("swap %d %s: width %d histogram %v, serial %v", step, what, widths[i], got, wantHist)
			}
			if d.DistsBytes != serial.DistsBytes {
				t.Fatalf("swap %d %s: width %d DistsBytes %d, serial %d",
					step, what, widths[i], d.DistsBytes, serial.DistsBytes)
			}
		}
	}
	compare(-1, "init")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		sw := validSwap(t, serial.Graph(), rng)
		want := serial.Apply(sw)
		for j, d := range pooled {
			if got := d.Apply(sw); got != want {
				t.Fatalf("swap %d: width %d re-evaluated %d sources, serial %d", i, widths[j], got, want)
			}
		}
		compare(i, "apply")
		if rng.Intn(2) == 0 {
			serial.Revert()
			for _, d := range pooled {
				d.Revert()
			}
			compare(i, "revert")
		}
		if i%50 == 49 {
			if serial.Resync() {
				t.Fatalf("swap %d: serial Resync drifted", i)
			}
			for j, d := range pooled {
				if d.Resync() {
					t.Fatalf("swap %d: width %d Resync drifted", i, widths[j])
				}
			}
			compare(i, "resync")
		}
	}
	// Authoritative close: serial and the widest pooled state both match
	// the scalar oracle exactly.
	checkDelta(t, serial)
	checkDelta(t, pooled[len(pooled)-1])
}

// TestDeltaStatsParallelRebuilds walks the stride-growth/full-rebuild
// path (long-diameter graph) with a pooled evaluator, pinning the
// rebuild fallback and its Revert bit-identical to serial.
func TestDeltaStatsParallelRebuilds(t *testing.T) {
	// Two P8 paths: every eccentricity is ≤ 7, so the initial build fits
	// the starting stride of 8. The cross swap rewires them into a
	// 14-vertex path (ecc 13) plus a detached edge, overflowing the
	// stride mid-Apply — the full-rebuild fallback, on both evaluators.
	b := graph.NewBuilder("2p8", 16)
	for i := 0; i+1 < 8; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(8+i, 8+i+1)
	}
	g := b.Build()
	serial := graph.NewDeltaStats(g)
	pooled := graph.NewDeltaStatsPool(g, graph.NewEvalPool(8))
	grow := graph.Swap{A: 0, B: 1, C: 8, D: 9}
	serial.Apply(grow)
	pooled.Apply(grow)
	if serial.FullRebuilds != 1 || pooled.FullRebuilds != 1 {
		t.Fatalf("stride overflow did not rebuild: serial %d, pooled %d rebuilds",
			serial.FullRebuilds, pooled.FullRebuilds)
	}
	checkDelta(t, pooled)
	serial.Revert() // full-rebuild Revert path
	pooled.Revert()
	checkDelta(t, pooled)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		sw := validSwap(t, serial.Graph(), rng)
		serial.Apply(sw)
		pooled.Apply(sw)
		if i%3 == 0 {
			serial.Revert()
			pooled.Revert()
			serial.Apply(sw)
			pooled.Apply(sw)
		}
		if got, want := pooled.Stats(), serial.Stats(); got != want {
			t.Fatalf("swap %d: pooled %+v, serial %+v", i, got, want)
		}
		if serial.FullRebuilds != pooled.FullRebuilds {
			t.Fatalf("swap %d: rebuild counts diverged: serial %d, pooled %d",
				i, serial.FullRebuilds, pooled.FullRebuilds)
		}
		checkDelta(t, pooled)
	}
}

// benchDeltaApply measures the incremental cost per applied swap on an
// n-vertex random-regular graph — the quantity the ≥5x acceptance
// criterion compares against benchDeltaFull on the same graph. Swap
// generation runs off the clock.
func benchDeltaApply(b *testing.B, n int) {
	g, err := topo.NewJellyfish(n, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewDeltaStats(g)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sw := validSwap(b, d.Graph(), rng)
		b.StartTimer()
		d.Apply(sw)
	}
	b.StopTimer()
	if d.Resync() {
		b.Fatal("drift after benchmark swaps")
	}
}

// benchDeltaFull is the baseline the delta path is measured against:
// one full bit-BFS all-pairs pass on the same graph.
func benchDeltaFull(b *testing.B, n int) {
	g, err := topo.NewJellyfish(n, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	var s graph.BitBFSScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairsStatsSerial(&s)
	}
}

// benchDeltaApplyPool is benchDeltaApply with the evaluation sharded
// across a worker pool — the tentpole's multi-core path. On a 1-vCPU
// runner it measures sharding overhead; on real cores, the speedup.
func benchDeltaApplyPool(b *testing.B, n, workers int) {
	g, err := topo.NewJellyfish(n, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewDeltaStatsPool(g, graph.NewEvalPool(workers))
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sw := validSwap(b, d.Graph(), rng)
		b.StartTimer()
		d.Apply(sw)
	}
	b.StopTimer()
	if d.Resync() {
		b.Fatal("drift after benchmark swaps")
	}
}

func BenchmarkDeltaApply(b *testing.B)          { benchDeltaApply(b, 1024) }
func BenchmarkDeltaFullAllPairs(b *testing.B)   { benchDeltaFull(b, 1024) }
func BenchmarkDeltaApply4k(b *testing.B)        { benchDeltaApply(b, 4096) }
func BenchmarkDeltaFullAllPairs4k(b *testing.B) { benchDeltaFull(b, 4096) }
func BenchmarkDeltaApplyParallel(b *testing.B)  { benchDeltaApplyPool(b, 4096, 8) }
