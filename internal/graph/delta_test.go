// External-package tests for DeltaStats: the delta-vs-full property
// sweep runs on real topology families (ER, PolarStar, random-regular),
// which live in internal/topo and therefore cannot be imported from
// package graph itself.
package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func validSwap(t testing.TB, g *graph.Graph, rng *rand.Rand) graph.Swap {
	t.Helper()
	edges := g.Edges()
	for try := 0; try < 20000; try++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		sw := graph.Swap{A: int32(e1[0]), B: int32(e1[1]), C: int32(e2[0]), D: int32(e2[1])}
		if rng.Intn(2) == 0 {
			sw.A, sw.B = sw.B, sw.A
		}
		if rng.Intn(2) == 0 {
			sw.C, sw.D = sw.D, sw.C
		}
		if g.CanSwap(sw) {
			return sw
		}
	}
	t.Fatal("no valid swap found")
	return graph.Swap{}
}

// checkDelta asserts the incremental aggregates match a from-scratch
// scalar recomputation of the current graph, field for field.
func checkDelta(t *testing.T, d *graph.DeltaStats) {
	t.Helper()
	want := d.Graph().AllPairsStatsScalar()
	got := d.Stats()
	if got != want {
		t.Fatalf("delta stats %+v, scalar recomputation %+v", got, want)
	}
	wantHist := d.Graph().DistanceHistogram()
	gotHist := d.Histogram()
	if !reflect.DeepEqual(gotHist, wantHist) {
		t.Fatalf("delta histogram %v, full recomputation %v", gotHist, wantHist)
	}
}

// TestDeltaStatsProperty is the delta-vs-full property sweep from the
// issue: 200 random 2-opt swaps on ER, PolarStar, and random-regular
// graphs, asserting ASPL/diameter/histogram equal the scalar oracle
// after every swap. Half the swaps are reverted to exercise the undo
// path, and a periodic Resync must report zero drift.
func TestDeltaStatsProperty(t *testing.T) {
	er, err := topo.NewER(7)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := topo.NewPolarStar(4, 3, topo.KindIQ)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := topo.NewJellyfish(64, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ER7", er.G},
		{"PolarStarIQ43", ps.G},
		{"Jellyfish64x4", jf},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := graph.NewDeltaStats(tc.g)
			checkDelta(t, d)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200; i++ {
				sw := validSwap(t, d.Graph(), rng)
				before := d.Stats()
				d.Apply(sw)
				checkDelta(t, d)
				if rng.Intn(2) == 0 {
					d.Revert()
					if got := d.Stats(); got != before {
						t.Fatalf("swap %d: revert gave %+v, want %+v", i, got, before)
					}
					checkDelta(t, d)
				}
				if i%50 == 49 {
					if d.Resync() {
						t.Fatalf("swap %d: Resync reported drift", i)
					}
					checkDelta(t, d)
				}
			}
			if d.Evals != 200 {
				t.Errorf("Evals = %d, want 200", d.Evals)
			}
			if d.DirtyTotal <= 0 {
				t.Error("DirtyTotal not accumulated")
			}
			// The swap region is bounded by four closed neighborhoods,
			// so on these sparse graphs most swaps must be far cheaper
			// than a full recomputation.
			if avg := float64(d.DirtyTotal) / float64(d.Evals); avg >= float64(tc.g.N()) {
				t.Errorf("average dirty set %.1f not below n=%d", avg, tc.g.N())
			}
		})
	}
}

// TestDeltaStatsDisconnected drives swaps that merge and split
// components: two disjoint cycles where cross-swaps reconnect them,
// checking unreachable-pair accounting against the oracle.
func TestDeltaStatsDisconnected(t *testing.T) {
	b := graph.NewBuilder("2cycles", 24)
	for i := 0; i < 12; i++ {
		b.AddEdge(i, (i+1)%12)
		b.AddEdge(12+i, 12+(i+1)%12)
	}
	d := graph.NewDeltaStats(b.Build())
	checkDelta(t, d)
	if d.Stats().Connected {
		t.Fatal("two disjoint cycles reported connected")
	}
	// Cross swap: remove {0,1} and {12,13}, add {0,12},{1,13} — joins
	// the components into one cycle.
	join := graph.Swap{A: 0, B: 1, C: 12, D: 13}
	d.Apply(join)
	checkDelta(t, d)
	if !d.Stats().Connected {
		t.Fatal("cross swap should have connected the graph")
	}
	d.Revert()
	checkDelta(t, d)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		d.Apply(validSwap(t, d.Graph(), rng))
		checkDelta(t, d)
	}
}

// TestDeltaStatsStrideGrowth forces an Apply whose re-evaluation
// overflows the initial row width, exercising the rebuild fallback and
// its Revert path.
func TestDeltaStatsStrideGrowth(t *testing.T) {
	// C32 has eccentricity 16 ≥ initStride, so NewDeltaStats already
	// grows; start instead from a graph under the limit whose swap
	// stretches it: two C7s joined into one C14-like structure.
	b := graph.NewBuilder("2c7", 14)
	for i := 0; i < 7; i++ {
		b.AddEdge(i, (i+1)%7)
		b.AddEdge(7+i, 7+(i+1)%7)
	}
	d := graph.NewDeltaStats(b.Build())
	before := d.Stats()
	d.Apply(graph.Swap{A: 0, B: 1, C: 7, D: 8}) // one long cycle: ecc 7 ≥ 8? C14 ecc = 7 < 8
	checkDelta(t, d)
	d.Revert()
	if got := d.Stats(); got != before {
		t.Fatalf("revert gave %+v, want %+v", got, before)
	}
	checkDelta(t, d)

	// Directly provoke growth: a path long enough that re-wiring pushes
	// eccentricities past the stride.
	p := graph.NewBuilder("p20", 20)
	for i := 0; i+1 < 20; i++ {
		p.AddEdge(i, i+1)
	}
	dp := graph.NewDeltaStats(p.Build())
	checkDelta(t, dp)
	if dp.Stats().Diameter != 19 {
		t.Fatalf("P20 diameter %d", dp.Stats().Diameter)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		dp.Apply(validSwap(t, dp.Graph(), rng))
		checkDelta(t, dp)
	}
}

// benchDeltaApply measures the incremental cost per applied swap on an
// n-vertex random-regular graph — the quantity the ≥5x acceptance
// criterion compares against benchDeltaFull on the same graph. Swap
// generation runs off the clock.
func benchDeltaApply(b *testing.B, n int) {
	g, err := topo.NewJellyfish(n, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewDeltaStats(g)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sw := validSwap(b, d.Graph(), rng)
		b.StartTimer()
		d.Apply(sw)
	}
	b.StopTimer()
	if d.Resync() {
		b.Fatal("drift after benchmark swaps")
	}
}

// benchDeltaFull is the baseline the delta path is measured against:
// one full bit-BFS all-pairs pass on the same graph.
func benchDeltaFull(b *testing.B, n int) {
	g, err := topo.NewJellyfish(n, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	var s graph.BitBFSScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairsStatsSerial(&s)
	}
}

func BenchmarkDeltaApply(b *testing.B)          { benchDeltaApply(b, 1024) }
func BenchmarkDeltaFullAllPairs(b *testing.B)   { benchDeltaFull(b, 1024) }
func BenchmarkDeltaApply4k(b *testing.B)        { benchDeltaApply(b, 4096) }
func BenchmarkDeltaFullAllPairs4k(b *testing.B) { benchDeltaFull(b, 4096) }
