// 2-opt edge swaps: the move set of the incremental-ASPL design-space
// search (internal/search, cmd/pssearch).
//
// A 2-opt swap removes two vertex-disjoint edges {A,B} and {C,D} and adds
// {A,C} and {B,D}. Every vertex loses exactly one neighbor and gains
// exactly one, so the degree sequence — and therefore the CSR offset
// array — is invariant: the swap edits four sorted neighbor windows in
// place and never reallocates. That in-place property is what makes the
// delta-evaluated search loop allocation-free per move (DeltaStats).
//
// Graphs stay immutable for every other consumer: ApplySwap may only be
// called on a graph obtained from CloneEditable, which deep-copies the
// CSR arrays so the original and all graphs sharing its storage are
// untouched.
package graph

import "fmt"

// Swap is a 2-opt edge exchange: remove edges {A,B} and {C,D}, add edges
// {A,C} and {B,D}. All four vertices must be distinct.
type Swap struct {
	A, B, C, D int32
}

// Inverse returns the swap that undoes sw: it removes {A,C} and {B,D}
// and re-adds {A,B} and {C,D}.
func (sw Swap) Inverse() Swap { return Swap{sw.A, sw.C, sw.B, sw.D} }

func (sw Swap) String() string {
	return fmt.Sprintf("swap{-%d~%d -%d~%d +%d~%d +%d~%d}", sw.A, sw.B, sw.C, sw.D, sw.A, sw.C, sw.B, sw.D)
}

// CloneEditable returns a deep copy of g whose CSR storage is private,
// making it safe to mutate with ApplySwap. The copy shares only the
// immutable loop annotations. One editable clone belongs to one
// goroutine; the bit-BFS kernels may still read it between swaps.
func (g *Graph) CloneEditable() *Graph {
	h := *g
	h.off = append([]int32(nil), g.off...)
	h.nbr = append([]int32(nil), g.nbr...)
	if g.adj != nil {
		h.adj = append([]uint64(nil), g.adj...)
	}
	return &h
}

// CanSwap reports whether sw is applicable to g: the four vertices are
// distinct and in range, both removed edges exist, and neither added
// edge does. A valid swap preserves every vertex degree and the loop
// annotations.
func (g *Graph) CanSwap(sw Swap) bool {
	a, b, c, d := int(sw.A), int(sw.B), int(sw.C), int(sw.D)
	if a < 0 || b < 0 || c < 0 || d < 0 || a >= g.n || b >= g.n || c >= g.n || d >= g.n {
		return false
	}
	if a == b || a == c || a == d || b == c || b == d || c == d {
		return false
	}
	return g.HasEdge(a, b) && g.HasEdge(c, d) && !g.HasEdge(a, c) && !g.HasEdge(b, d)
}

// ApplySwap performs sw on g in place. g must come from CloneEditable
// (or otherwise own its CSR storage exclusively); the swap must satisfy
// CanSwap or ApplySwap panics. Offsets, degrees and loops are unchanged;
// the four affected neighbor windows are re-sorted in place and the
// adjacency bitmap (when present) is updated, so ChannelID/HasEdge stay
// exact. Channel ids of arcs out of the four endpoints are renumbered by
// the edit; cached per-channel state must not be carried across a swap.
func (g *Graph) ApplySwap(sw Swap) {
	if !g.CanSwap(sw) {
		panic(fmt.Sprintf("graph: ApplySwap: invalid %v on %s", sw, g.name))
	}
	g.replaceNeighbor(sw.A, sw.B, sw.C)
	g.replaceNeighbor(sw.B, sw.A, sw.D)
	g.replaceNeighbor(sw.C, sw.D, sw.A)
	g.replaceNeighbor(sw.D, sw.C, sw.B)
	if g.adj != nil {
		g.adjClear(sw.A, sw.B)
		g.adjClear(sw.C, sw.D)
		g.adjSet(sw.A, sw.C)
		g.adjSet(sw.B, sw.D)
	}
}

// replaceNeighbor substitutes newV for oldV in u's sorted neighbor
// window, shifting the in-between entries to restore sorted order.
func (g *Graph) replaceNeighbor(u, oldV, newV int32) {
	list := g.nbr[g.off[u]:g.off[u+1]]
	// Binary search for oldV (the window is sorted).
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < oldV {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	switch {
	case newV > oldV:
		for i+1 < len(list) && list[i+1] < newV {
			list[i] = list[i+1]
			i++
		}
	case newV < oldV:
		for i > 0 && list[i-1] > newV {
			list[i] = list[i-1]
			i--
		}
	}
	list[i] = newV
}

func (g *Graph) adjSet(u, v int32) {
	b1 := int(u)*g.n + int(v)
	b2 := int(v)*g.n + int(u)
	g.adj[b1>>6] |= 1 << (uint(b1) & 63)
	g.adj[b2>>6] |= 1 << (uint(b2) & 63)
}

func (g *Graph) adjClear(u, v int32) {
	b1 := int(u)*g.n + int(v)
	b2 := int(v)*g.n + int(u)
	g.adj[b1>>6] &^= 1 << (uint(b1) & 63)
	g.adj[b2>>6] &^= 1 << (uint(b2) & 63)
}
