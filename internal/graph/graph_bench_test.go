package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("bench", n)
	for v := 0; v < n; v++ {
		for k := 0; k < deg/2; k++ {
			b.AddEdge(v, rng.Intn(n))
		}
	}
	return b.Build()
}

func BenchmarkBFS1k(b *testing.B) {
	g := randomGraph(1000, 16, 1)
	dist := make([]int32, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSDistances(i%g.N(), dist)
	}
}

func BenchmarkAllPairsStats1k(b *testing.B) {
	g := randomGraph(1000, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairsStats()
	}
}

func BenchmarkBuild10kEdges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		randomGraph(1000, 20, int64(i))
	}
}

func BenchmarkGirth(b *testing.B) {
	g := randomGraph(500, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Girth()
	}
}
