package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT serializes the graph in Graphviz DOT format, with an optional
// vertex grouping rendered as fill colors (supernodes of a star product,
// groups of a Dragonfly). groupOf may be nil.
func (g *Graph) WriteDOT(w io.Writer, groupOf func(int) int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n  node [shape=circle, style=filled];\n", g.name)
	for v := 0; v < g.n; v++ {
		if groupOf != nil {
			// Cycle a small qualitative palette by group.
			colors := []string{"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"}
			fmt.Fprintf(bw, "  %d [fillcolor=%q];\n", v, colors[groupOf(v)%len(colors)])
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
