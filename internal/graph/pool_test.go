package graph

import (
	"sync/atomic"
	"testing"
)

// TestEvalPoolRunCoversTasks: every task index in [0, n) executes
// exactly once, at any width, including the serial fallbacks (nil pool,
// width 1, n ≤ 1) and widths past the task count.
func TestEvalPoolRunCoversTasks(t *testing.T) {
	var caller BitBFSScratch
	for _, width := range []int{0, 1, 2, 3, 8, 64} {
		p := NewEvalPool(width)
		wantWidth := width
		if wantWidth < 1 {
			wantWidth = 1
		}
		if got := p.Width(); got != wantWidth {
			t.Fatalf("NewEvalPool(%d).Width() = %d, want %d", width, got, wantWidth)
		}
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			p.Run(n, &caller, func(task int, s *BitBFSScratch) {
				if s == nil {
					t.Error("nil scratch handed to task")
				}
				atomic.AddInt32(&hits[task], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width %d, n %d: task %d ran %d times", width, n, i, h)
				}
			}
		}
	}
}

// TestEvalPoolNil: a nil *EvalPool behaves as a width-1 serial loop on
// the caller's scratch — the contract DeltaStats relies on before
// SetPool is ever called.
func TestEvalPoolNil(t *testing.T) {
	var p *EvalPool
	if got := p.Width(); got != 1 {
		t.Fatalf("nil pool width %d, want 1", got)
	}
	var caller BitBFSScratch
	order := []int{}
	p.Run(5, &caller, func(task int, s *BitBFSScratch) {
		if s != &caller {
			t.Error("serial fallback did not use the caller scratch")
		}
		order = append(order, task)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback ran out of order: %v", order)
		}
	}
}

// TestEvalPoolScratchIdentity: tasks only ever see the caller scratch or
// one of the pool's helper arenas, never a shared or foreign one.
func TestEvalPoolScratchIdentity(t *testing.T) {
	p := NewEvalPool(4)
	var caller BitBFSScratch
	known := map[*BitBFSScratch]bool{&caller: true}
	for i := range p.scratch {
		known[&p.scratch[i]] = true
	}
	var bad atomic.Int32
	p.Run(64, &caller, func(task int, s *BitBFSScratch) {
		if !known[s] {
			bad.Add(1)
		}
		// Exercise the arena like a real kernel call would.
		s.reset(128)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d tasks ran on an unknown scratch", bad.Load())
	}
}
