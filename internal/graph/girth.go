package graph

// Girth returns the length of a shortest cycle, or -1 for acyclic graphs.
// Self-loop annotations are ignored (they are not network links). The
// algorithm runs a BFS from every vertex and detects the first
// cross/back edge closing a cycle — O(n·m), fine for every topology in
// this repository.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int32, g.n)
	parent := make([]int32, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		parent[src] = -1
		queue := []int32{int32(src)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if v == parent[u] {
					// Skip the tree edge back to the parent; parallel
					// edges do not exist in this simple-graph type.
					continue
				}
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
					continue
				}
				// Cycle through src (or at least no longer than one):
				// length d(u) + d(v) + 1.
				cyc := int(dist[u] + dist[v] + 1)
				if best == -1 || cyc < best {
					best = cyc
				}
			}
			// Cycles found at deeper levels only grow; prune the BFS.
			if best != -1 && int(dist[u])*2 >= best {
				break
			}
		}
	}
	return best
}
