package graph

import (
	"runtime"
	"sync"
)

// Unreachable is the distance reported for vertex pairs in different
// components.
const Unreachable = int32(-1)

// BFSScratch holds the reusable traversal queue for repeated BFS calls.
// The zero value is ready to use; one scratch serves one goroutine.
type BFSScratch struct {
	queue []int32
}

// BFSDistances returns the hop distance from src to every vertex, with
// Unreachable for vertices in other components. If dist is non-nil and has
// length N it is reused, avoiding an allocation in hot loops.
func (g *Graph) BFSDistances(src int, dist []int32) []int32 {
	var s BFSScratch
	return g.BFSDistancesScratch(src, dist, &s)
}

// BFSDistancesScratch is BFSDistances with an explicit scratch, making
// repeated traversals allocation-free once dist and the scratch have
// reached size N.
func (g *Graph) BFSDistancesScratch(src int, dist []int32, s *BFSScratch) []int32 {
	if dist == nil || len(dist) != g.n {
		dist = make([]int32, g.n)
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	if cap(s.queue) < g.n {
		s.queue = make([]int32, 0, g.n)
	}
	queue := s.queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	s.queue = queue
	return dist
}

// Eccentricity returns the largest finite distance from src and whether all
// vertices were reachable. For the eccentricity of every vertex at once,
// Eccentricities (the bit-parallel variant) is ~64× cheaper.
func (g *Graph) Eccentricity(src int) (ecc int32, connected bool) {
	var s BFSScratch
	ecc, connected, _ = g.EccentricityScratch(src, nil, &s)
	return ecc, connected
}

// EccentricityScratch is Eccentricity reusing dist and scratch across
// calls (both sized on first use; the possibly-grown dist is returned).
// Use it in loops that probe many sources or many graphs.
func (g *Graph) EccentricityScratch(src int, dist []int32, s *BFSScratch) (ecc int32, connected bool, distOut []int32) {
	dist = g.BFSDistancesScratch(src, dist, s)
	connected = true
	for _, d := range dist {
		if d == Unreachable {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected, dist
}

// PathStats aggregates the all-pairs shortest-path structure of a graph.
type PathStats struct {
	Diameter  int32   // largest finite pairwise distance
	AvgPath   float64 // mean distance over connected ordered pairs (excl. self)
	Connected bool    // every pair reachable
	Pairs     int64   // number of connected ordered pairs counted
}

// AllPairsStatsScalar is the scalar reference implementation of
// AllPairsStats: one queue-based BFS per source, sources strided across
// workers. The bit-parallel engine (bitbfs.go) replaced it on every hot
// path; it is kept as the cross-check oracle for the property and golden
// tests and as the baseline of the before/after benchmarks.
func (g *Graph) AllPairsStatsScalar() PathStats {
	workers := runtime.GOMAXPROCS(0)
	if workers > g.n {
		workers = g.n
	}
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		diam      int32
		sum       int64
		pairs     int64
		connected bool
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := partial{connected: true}
			dist := make([]int32, g.n)
			var scratch BFSScratch
			for src := w; src < g.n; src += workers {
				g.BFSDistancesScratch(src, dist, &scratch)
				for v, d := range dist {
					if v == src {
						continue
					}
					if d == Unreachable {
						local.connected = false
						continue
					}
					if d > local.diam {
						local.diam = d
					}
					local.sum += int64(d)
					local.pairs++
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	total := partial{connected: true}
	for _, r := range results {
		if r.diam > total.diam {
			total.diam = r.diam
		}
		total.sum += r.sum
		total.pairs += r.pairs
		total.connected = total.connected && r.connected
	}
	stats := PathStats{Diameter: total.diam, Connected: total.connected, Pairs: total.pairs}
	if total.pairs > 0 {
		stats.AvgPath = float64(total.sum) / float64(total.pairs)
	}
	return stats
}

// Diameter returns the graph diameter, or Unreachable when disconnected.
func (g *Graph) Diameter() int32 {
	s := g.AllPairsStats()
	if !s.Connected {
		return Unreachable
	}
	return s.Diameter
}

// IsConnected reports whether the graph has a single connected component.
func (g *Graph) IsConnected() bool {
	var s BFSScratch
	ok, _ := g.IsConnectedScratch(nil, &s)
	return ok
}

// IsConnectedScratch is IsConnected reusing dist and scratch across calls
// (both sized on first use; the possibly-grown dist is returned). Use it
// in loops that screen many candidate graphs, e.g. the randomized
// Jellyfish construction and the fault-sweep bisection.
func (g *Graph) IsConnectedScratch(dist []int32, s *BFSScratch) (bool, []int32) {
	if g.n == 0 {
		return true, dist
	}
	dist = g.BFSDistancesScratch(0, dist, s)
	for _, d := range dist {
		if d == Unreachable {
			return false, dist
		}
	}
	return true, dist
}

// ConnectedSubset reports whether every vertex of hosts is reachable from
// hosts[0], reusing dist and scratch (both sized on first use). It is the
// allocation-free connectivity check of the fault-sweep bisection.
func (g *Graph) ConnectedSubset(hosts []int, dist []int32, s *BFSScratch) (bool, []int32) {
	if g.n == 0 || len(hosts) == 0 {
		return true, dist
	}
	dist = g.BFSDistancesScratch(hosts[0], dist, s)
	for _, h := range hosts {
		if dist[h] < 0 {
			return false, dist
		}
	}
	return true, dist
}

// Components returns the vertex sets of the connected components, largest
// first.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		members := []int{s}
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if comp[v] == -1 {
					comp[v] = id
					members = append(members, int(v))
					queue = append(queue, v)
				}
			}
		}
		out = append(out, members)
	}
	// Largest component first (stable for equal sizes).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && len(out[j]) > len(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// LargestComponent returns the subgraph induced on the largest connected
// component along with the mapping from new vertex ids to original ids.
func (g *Graph) LargestComponent() (*Graph, []int) {
	comps := g.Components()
	if len(comps) == 0 {
		return NewBuilder(g.name, 0).Build(), nil
	}
	members := comps[0]
	remap := make([]int32, g.n)
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range members {
		remap[old] = int32(newID)
	}
	b := NewBuilder(g.name, len(members))
	for newID, old := range members {
		if g.loops[old] {
			b.loops[newID] = true
		}
		for _, w := range g.Neighbors(old) {
			if nw := remap[w]; nw >= 0 && int32(newID) < nw {
				b.AddEdge(newID, int(nw))
			}
		}
	}
	return b.Build(), members
}
