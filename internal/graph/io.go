package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList serializes the graph in a plain-text format:
//
//	# name <name>
//	# n <vertices> m <edges> loops <loops>
//	u v        (one edge per line, u < v)
//	v loop     (one line per self-loop annotation)
//
// The format round-trips through ReadEdgeList and is the interchange format
// emitted by cmd/psgen.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n# n %d m %d loops %d\n", g.name, g.n, g.nEdges, g.nLoops); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if g.loops[v] {
			if _, err := fmt.Fprintf(bw, "%d loop\n", v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	name := ""
	n := -1
	var b *Builder
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			for i := 1; i < len(fields)-1; i++ {
				switch fields[i] {
				case "name":
					name = fields[i+1]
				case "n":
					if _, err := fmt.Sscanf(fields[i+1], "%d", &n); err != nil {
						return nil, fmt.Errorf("graph: bad header %q: %v", line, err)
					}
				}
			}
			continue
		}
		if n < 0 {
			return nil, fmt.Errorf("graph: edge before '# n <count>' header")
		}
		if b == nil {
			b = NewBuilder(name, n)
		}
		var u, v int
		if strings.HasSuffix(line, "loop") {
			if _, err := fmt.Sscanf(line, "%d loop", &u); err != nil {
				return nil, fmt.Errorf("graph: bad loop line %q: %v", line, err)
			}
			b.AddEdge(u, u)
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %v", line, err)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		if n < 0 {
			return nil, fmt.Errorf("graph: empty input")
		}
		b = NewBuilder(name, n)
	}
	return b.Build(), nil
}
