package graph

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// scalarStats recomputes what BitBFSBatch reports for one source from the
// scalar BFS distance vector: the oracle of the cross-checks below.
func scalarStats(g *Graph, src int, dst []bool) (ecc int32, sum int64, reached int64) {
	dist := g.BFSDistances(src, nil)
	for v, d := range dist {
		if v == src || d == Unreachable {
			continue
		}
		if dst != nil && !dst[v] {
			continue
		}
		if d > ecc {
			ecc = d
		}
		sum += int64(d)
		reached++
	}
	return ecc, sum, reached
}

// randomBitGraph builds a random graph; roughly a third of the seeds
// produce disconnected graphs (low edge budget or an isolated tail).
func randomBitGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(200)
	edges := rng.Intn(3*n + 1)
	if seed%3 == 0 {
		edges = rng.Intn(n/2 + 1) // sparse: almost surely disconnected
	}
	b := NewBuilder("rand", n)
	for i := 0; i < edges; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// TestBitBFSMatchesScalarBFS: for random graphs (including disconnected
// ones), every lane of a 64-way batch reports exactly the per-source
// eccentricity, distance sum and reach count of a scalar BFS.
func TestBitBFSMatchesScalarBFS(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomBitGraph(seed)
		var s BitBFSScratch
		var srcs [64]int32
		for base := 0; base < g.N(); base += 64 {
			lanes := min(64, g.N()-base)
			for i := 0; i < lanes; i++ {
				srcs[i] = int32(base + i)
			}
			st, _ := g.BitBFSBatch(srcs[:lanes], &s, nil, nil)
			for l := 0; l < lanes; l++ {
				ecc, sum, reached := scalarStats(g, base+l, nil)
				if st.Ecc[l] != ecc || st.Sum[l] != sum || st.Reached[l] != reached {
					t.Logf("seed %d src %d: kernel (%d,%d,%d) scalar (%d,%d,%d)",
						seed, base+l, st.Ecc[l], st.Sum[l], st.Reached[l], ecc, sum, reached)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBitBFSDestinationFilter: with a destination mask, lane stats count
// exactly the masked vertices — the fault sweep's host-restricted mode.
func TestBitBFSDestinationFilter(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomBitGraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		dst := make([]bool, g.N())
		for v := range dst {
			dst[v] = rng.Intn(2) == 0
		}
		var s BitBFSScratch
		lanes := min(64, g.N())
		srcs := make([]int32, lanes)
		for i := range srcs {
			srcs[i] = int32(rng.Intn(g.N()))
		}
		st, _ := g.BitBFSBatch(srcs, &s, dst, nil)
		for l, src := range srcs {
			ecc, sum, reached := scalarStats(g, int(src), dst)
			if st.Ecc[l] != ecc || st.Sum[l] != sum || st.Reached[l] != reached {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestAllPairsStatsMatchesScalar: the bit-parallel AllPairsStats is
// bit-identical to the scalar reference on random graphs, connected or
// not.
func TestAllPairsStatsMatchesScalar(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomBitGraph(seed)
		bit, scalar := g.AllPairsStats(), g.AllPairsStatsScalar()
		return bit == scalar
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAllPairsStatsSerialMatchesParallel: the pool-worker serial variant
// and the sharded parallel driver agree exactly.
func TestAllPairsStatsSerialMatchesParallel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomBitGraph(seed)
		var s BitBFSScratch
		if a, b := g.AllPairsStatsSerial(&s), g.AllPairsStats(); a != b {
			t.Errorf("seed %d: serial %+v != parallel %+v", seed, a, b)
		}
	}
}

// TestAllPairsStatsWorkerCountIndependent pins the sharded-determinism
// claim directly: GOMAXPROCS=1 and the ambient worker count produce
// identical results (the CI determinism job additionally runs the golden
// suites under GOMAXPROCS=1).
func TestAllPairsStatsWorkerCountIndependent(t *testing.T) {
	g := randomBitGraph(17)
	wide := g.AllPairsStats()
	wideHist := g.DistanceHistogram()
	prev := runtime.GOMAXPROCS(1)
	narrow := g.AllPairsStats()
	narrowHist := g.DistanceHistogram()
	runtime.GOMAXPROCS(prev)
	if wide != narrow {
		t.Errorf("stats differ across worker counts: %+v vs %+v", wide, narrow)
	}
	if len(wideHist) != len(narrowHist) {
		t.Fatalf("histogram lengths differ: %d vs %d", len(wideHist), len(narrowHist))
	}
	for d := range wideHist {
		if wideHist[d] != narrowHist[d] {
			t.Errorf("hist[%d] differs: %d vs %d", d, wideHist[d], narrowHist[d])
		}
	}
}

// TestDistanceHistogram cross-checks the histogram against scalar BFS
// counting and against the AllPairsStats aggregates it must refine.
func TestDistanceHistogram(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomBitGraph(seed)
		want := map[int32]int64{}
		for src := 0; src < g.N(); src++ {
			dist := g.BFSDistances(src, nil)
			for v, d := range dist {
				if v != src && d != Unreachable {
					want[d]++
				}
			}
		}
		hist := g.DistanceHistogram()
		if hist[0] != 0 {
			t.Fatalf("seed %d: hist[0] = %d", seed, hist[0])
		}
		var pairs, sum int64
		var diam int32
		for d := 1; d < len(hist); d++ {
			if hist[d] != want[int32(d)] {
				t.Errorf("seed %d: hist[%d] = %d, want %d", seed, d, hist[d], want[int32(d)])
			}
			pairs += hist[d]
			sum += int64(d) * hist[d]
			if hist[d] > 0 {
				diam = int32(d)
			}
		}
		stats := g.AllPairsStats()
		if pairs != stats.Pairs || diam != stats.Diameter {
			t.Errorf("seed %d: histogram (pairs=%d diam=%d) disagrees with stats %+v", seed, pairs, diam, stats)
		}
		if pairs > 0 && float64(sum)/float64(pairs) != stats.AvgPath {
			t.Errorf("seed %d: histogram mean disagrees with AvgPath", seed)
		}
	}
}

// TestEccentricities cross-checks the all-vertex variant against the
// single-source Eccentricity.
func TestEccentricities(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomBitGraph(seed)
		eccs := g.Eccentricities()
		for v := 0; v < g.N(); v++ {
			want, _ := g.Eccentricity(v)
			if eccs[v] != want {
				t.Errorf("seed %d: ecc[%d] = %d, want %d", seed, v, eccs[v], want)
			}
		}
	}
}

// TestBitBFSBatchEdgeCases: empty batches, singleton graphs, oversized
// batches.
func TestBitBFSBatchEdgeCases(t *testing.T) {
	g := NewBuilder("one", 1).Build()
	var s BitBFSScratch
	st, hist := g.BitBFSBatch(nil, &s, nil, nil)
	if st.Lanes != 0 || hist != nil {
		t.Errorf("empty batch: %+v", st)
	}
	st, _ = g.BitBFSBatch([]int32{0}, &s, nil, nil)
	if st.Reached[0] != 0 || st.Ecc[0] != 0 {
		t.Errorf("singleton: %+v", st)
	}
	if stats := g.AllPairsStats(); !stats.Connected || stats.Pairs != 0 {
		t.Errorf("singleton stats: %+v", stats)
	}
	empty := NewBuilder("zero", 0).Build()
	if stats := empty.AllPairsStats(); !stats.Connected || stats.Pairs != 0 {
		t.Errorf("empty graph stats: %+v", stats)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >64 sources")
		}
	}()
	g65 := complete(65)
	g65.BitBFSBatch(make([]int32, 65), &s, nil, nil)
}

// TestScratchVariantsMatch: the scratch-reusing Eccentricity/IsConnected
// variants agree with their allocating counterparts across graphs of
// different sizes (the scratch must regrow correctly).
func TestScratchVariantsMatch(t *testing.T) {
	var (
		dist []int32
		s    BFSScratch
	)
	for seed := int64(0); seed < 12; seed++ {
		g := randomBitGraph(seed)
		gotConn, d := g.IsConnectedScratch(dist, &s)
		dist = d
		if want := g.IsConnected(); gotConn != want {
			t.Errorf("seed %d: IsConnectedScratch = %v, want %v", seed, gotConn, want)
		}
		src := int(seed) % g.N()
		ecc, conn, d2 := g.EccentricityScratch(src, dist, &s)
		dist = d2
		wantEcc, wantConn := g.Eccentricity(src)
		if ecc != wantEcc || conn != wantConn {
			t.Errorf("seed %d: EccentricityScratch = (%d,%v), want (%d,%v)", seed, ecc, conn, wantEcc, wantConn)
		}
	}
}
