package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// path returns the path graph P_n.
func path(n int) *Graph {
	b := NewBuilder("path", n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// cycle returns the cycle graph C_n.
func cycle(n int) *Graph {
	b := NewBuilder("cycle", n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder("complete", n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder("g", 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.NumLoops() != 1 || !g.HasLoop(2) || g.HasLoop(0) {
		t.Errorf("loop bookkeeping wrong: loops=%d", g.NumLoops())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self-loop contributed to degree: %d", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder("g", 2).AddEdge(0, 2)
}

func TestDegreesAndRegularity(t *testing.T) {
	k5 := complete(5)
	if k5.MaxDegree() != 4 || k5.MinDegree() != 4 || !k5.IsRegular() {
		t.Error("K5 should be 4-regular")
	}
	p4 := path(4)
	if p4.MaxDegree() != 2 || p4.MinDegree() != 1 || p4.IsRegular() {
		t.Error("P4 degree stats wrong")
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	dist := g.BFSDistances(0, nil)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	// Disconnected case.
	b := NewBuilder("g", 3)
	b.AddEdge(0, 1)
	g2 := b.Build()
	dist2 := g2.BFSDistances(0, nil)
	if dist2[2] != Unreachable {
		t.Errorf("dist[2] = %d, want Unreachable", dist2[2])
	}
}

func TestAllPairsStats(t *testing.T) {
	cases := []struct {
		g       *Graph
		diam    int32
		avg     float64
		connect bool
	}{
		{cycle(6), 3, (1*2 + 2*2 + 3*1) * 6 / float64(6*5), true}, // per-vertex distances 1,1,2,2,3
		{complete(7), 1, 1, true},
		{path(4), 3, (1*3*2 + 2*2*2 + 3*1*2) / float64(12), true},
	}
	for _, c := range cases {
		s := c.g.AllPairsStats()
		if s.Diameter != c.diam {
			t.Errorf("%v diameter = %d, want %d", c.g, s.Diameter, c.diam)
		}
		if s.Connected != c.connect {
			t.Errorf("%v connected = %v", c.g, s.Connected)
		}
		if diff := s.AvgPath - c.avg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v avg = %f, want %f", c.g, s.AvgPath, c.avg)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder("g", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.Diameter() != Unreachable {
		t.Error("disconnected graph should report Unreachable diameter")
	}
	if g.IsConnected() {
		t.Error("IsConnected wrong")
	}
	comps := g.Components()
	if len(comps) != 2 || len(comps[0]) != 2 {
		t.Errorf("components = %v", comps)
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder("g", 6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(2, 2)
	g := b.Build()
	lc, members := g.LargestComponent()
	if lc.N() != 3 || lc.M() != 2 {
		t.Errorf("largest component n=%d m=%d", lc.N(), lc.M())
	}
	if len(members) != 3 {
		t.Errorf("members = %v", members)
	}
	if lc.NumLoops() != 1 {
		t.Errorf("loop not preserved in component extraction")
	}
}

func TestRemoveEdges(t *testing.T) {
	g := cycle(5)
	h := g.RemoveEdges([][2]int{{0, 1}, {3, 2}})
	if h.M() != 3 {
		t.Errorf("M = %d, want 3", h.M())
	}
	if h.HasEdge(0, 1) || h.HasEdge(2, 3) {
		t.Error("edges not removed")
	}
	if !h.HasEdge(1, 2) {
		t.Error("unrelated edge removed")
	}
	// Original untouched.
	if g.M() != 5 {
		t.Error("RemoveEdges mutated the receiver")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := complete(6)
	edges := g.Edges()
	if len(edges) != 15 {
		t.Fatalf("len(edges) = %d, want 15", len(edges))
	}
	b := NewBuilder("copy", 6)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	h := b.Build()
	if h.M() != g.M() {
		t.Error("edge round trip lost edges")
	}
}

func TestEdgeListIO(t *testing.T) {
	b := NewBuilder("demo", 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 4)
	b.AddEdge(2, 2)
	g := b.Build()

	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "demo" || h.N() != 5 || h.M() != 2 || h.NumLoops() != 1 {
		t.Errorf("round trip mismatch: %v", h)
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 4) || !h.HasLoop(2) {
		t.Error("edge content mismatch after round trip")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("0 1\n")); err == nil {
		t.Error("edge before header should error")
	}
}

// TestBFSPropertyTriangleInequality: for random graphs, d(s,v) <= d(s,u)+1
// for every edge (u,v) — the defining property of BFS layering.
func TestBFSPropertyTriangleInequality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		b := NewBuilder("rand", n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		dist := g.BFSDistances(0, nil)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				du, dv := dist[u], dist[v]
				if du == Unreachable != (dv == Unreachable) {
					return false
				}
				if du != Unreachable && (dv > du+1 || du > dv+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAllPairsMatchesSingleSource cross-checks the parallel aggregate
// against a serial recomputation.
func TestAllPairsMatchesSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	b := NewBuilder("rand", n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, _ := b.Build().LargestComponent()
	want := g.AllPairsStats()

	var diam int32
	var sum, pairs int64
	for s := 0; s < g.N(); s++ {
		dist := g.BFSDistances(s, nil)
		for v, d := range dist {
			if v == s || d == Unreachable {
				continue
			}
			if d > diam {
				diam = d
			}
			sum += int64(d)
			pairs++
		}
	}
	if want.Diameter != diam || want.Pairs != pairs {
		t.Errorf("parallel stats (%d,%d) != serial (%d,%d)", want.Diameter, want.Pairs, diam, pairs)
	}
	avg := float64(sum) / float64(pairs)
	if diff := want.AvgPath - avg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg mismatch: %f vs %f", want.AvgPath, avg)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	ecc, conn := g.Eccentricity(0)
	if ecc != 4 || !conn {
		t.Errorf("ecc=%d conn=%v", ecc, conn)
	}
	ecc, conn = g.Eccentricity(2)
	if ecc != 2 || !conn {
		t.Errorf("ecc=%d conn=%v", ecc, conn)
	}
}
