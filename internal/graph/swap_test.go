package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// gnp builds a deterministic G(n,p)-style graph for swap tests.
func gnp(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand", n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// randomValidSwap draws a uniformly random applicable swap, or fails the
// test if none is found in a bounded number of attempts.
func randomValidSwap(t testing.TB, g *Graph, rng *rand.Rand) Swap {
	t.Helper()
	edges := g.Edges()
	for try := 0; try < 10000; try++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		sw := Swap{int32(e1[0]), int32(e1[1]), int32(e2[0]), int32(e2[1])}
		if rng.Intn(2) == 0 {
			sw.A, sw.B = sw.B, sw.A
		}
		if rng.Intn(2) == 0 {
			sw.C, sw.D = sw.D, sw.C
		}
		if g.CanSwap(sw) {
			return sw
		}
	}
	t.Fatal("no valid swap found")
	return Swap{}
}

// checkSorted verifies every neighbor window is strictly sorted.
func checkSorted(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("vertex %d neighbors not strictly sorted: %v", v, nb)
			}
		}
	}
}

func TestCloneEditableIsolation(t *testing.T) {
	g := cycle(8)
	h := g.CloneEditable()
	sw := randomValidSwap(t, h, rand.New(rand.NewSource(1)))
	h.ApplySwap(sw)
	if !g.HasEdge(int(sw.A), int(sw.B)) || !g.HasEdge(int(sw.C), int(sw.D)) {
		t.Fatal("ApplySwap on clone mutated the original graph")
	}
	if g.HasEdge(int(sw.A), int(sw.C)) || g.HasEdge(int(sw.B), int(sw.D)) {
		t.Fatal("added edges leaked into the original graph")
	}
}

func TestCanSwapRejections(t *testing.T) {
	g := cycle(6) // edges {i, i+1 mod 6}
	cases := []struct {
		name string
		sw   Swap
	}{
		{"out of range", Swap{0, 1, 2, 6}},
		{"negative", Swap{-1, 1, 2, 3}},
		{"duplicate vertex", Swap{0, 1, 1, 2}},
		{"removed edge missing", Swap{0, 2, 3, 4}},
		{"added edge exists", Swap{0, 1, 2, 3}}, // would add {1,2}... wait
	}
	// Swap{0,1,2,3}: removes {0,1},{2,3}; adds {0,2},{1,3} — both absent
	// in C6, so that one is actually valid; replace with one whose added
	// edge exists: Swap{1,0,2,3} adds {1,2} which exists.
	cases[4].sw = Swap{1, 0, 2, 3}
	for _, tc := range cases {
		if g.CanSwap(tc.sw) {
			t.Errorf("%s: CanSwap(%v) = true, want false", tc.name, tc.sw)
		}
	}
	if !g.CanSwap(Swap{0, 1, 2, 3}) {
		t.Error("CanSwap rejected a valid swap on C6")
	}
}

func TestApplySwapInvalidPanics(t *testing.T) {
	g := cycle(6).CloneEditable()
	defer func() {
		if recover() == nil {
			t.Fatal("ApplySwap on an invalid swap did not panic")
		}
	}()
	g.ApplySwap(Swap{0, 2, 3, 4})
}

// TestApplySwapInverseRestores pins that Apply(sw) then Apply(sw.Inverse())
// restores the CSR arrays exactly, across many random swaps on graphs
// with and without the adjacency bitmap.
func TestApplySwapInverseRestores(t *testing.T) {
	for _, n := range []int{16, 80, 2100} { // 2100 > adjBitmapMax: no bitmap
		g := gnp(n, 8.0/float64(n), int64(n))
		h := g.CloneEditable()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			sw := randomValidSwap(t, h, rng)
			h.ApplySwap(sw)
			checkSorted(t, h)
			if h.HasEdge(int(sw.A), int(sw.B)) || h.HasEdge(int(sw.C), int(sw.D)) {
				t.Fatalf("swap %v: removed edge still present", sw)
			}
			if !h.HasEdge(int(sw.A), int(sw.C)) || !h.HasEdge(int(sw.B), int(sw.D)) {
				t.Fatalf("swap %v: added edge missing", sw)
			}
			h.ApplySwap(sw.Inverse())
		}
		if !reflect.DeepEqual(h.nbr, g.nbr) || !reflect.DeepEqual(h.off, g.off) {
			t.Fatalf("n=%d: CSR not restored after swap+inverse round trips", n)
		}
		if !reflect.DeepEqual(h.adj, g.adj) {
			t.Fatalf("n=%d: adjacency bitmap not restored", n)
		}
	}
}

// TestApplySwapMatchesRebuild cross-checks the in-place edit against a
// graph rebuilt from scratch from the edited edge set: neighbor windows,
// HasEdge (bitmap path), and degree sequence must all agree.
func TestApplySwapMatchesRebuild(t *testing.T) {
	g := gnp(60, 0.15, 3).CloneEditable()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		sw := randomValidSwap(t, g, rng)
		g.ApplySwap(sw)
	}
	b := NewBuilder("rebuilt", g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	want := b.Build()
	if !reflect.DeepEqual(g.nbr, want.nbr) || !reflect.DeepEqual(g.off, want.off) {
		t.Fatal("edited CSR differs from rebuild")
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if g.HasEdge(u, v) != want.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) = %v disagrees with rebuild", u, v, g.HasEdge(u, v))
			}
		}
	}
}

// TestBitBFSScratchCrossSizeReuse pins that one BitBFSScratch can be
// reused across graphs of different vertex counts — shrink, regrow, and
// shrink again — with results identical to a fresh scratch each time.
func TestBitBFSScratchCrossSizeReuse(t *testing.T) {
	sizes := []int{100, 40, 100, 7, 73}
	var shared BitBFSScratch
	for i, n := range sizes {
		g := gnp(n, 6.0/float64(n), int64(i+1))
		var fresh BitBFSScratch
		gotStats := g.AllPairsStatsSerial(&shared)
		wantStats := g.AllPairsStatsSerial(&fresh)
		if gotStats != wantStats {
			t.Fatalf("step %d (n=%d): reused scratch gave %+v, fresh %+v", i, n, gotStats, wantStats)
		}
		srcs := make([]int32, min(64, n))
		for j := range srcs {
			srcs[j] = int32(j)
		}
		st1, _ := g.BitBFSBatch(srcs, &shared, nil, nil)
		st2, _ := g.BitBFSBatch(srcs, &fresh, nil, nil)
		if st1 != st2 {
			t.Fatalf("step %d (n=%d): BitBFSBatch disagrees across scratch reuse", i, n)
		}
	}
}

func TestBitBFSScratchDivergedPanics(t *testing.T) {
	s := &BitBFSScratch{visited: make([]uint64, 4), frontier: make([]uint64, 2), next: make([]uint64, 4)}
	defer func() {
		if recover() == nil {
			t.Fatal("diverged scratch did not panic")
		}
	}()
	s.reset(3)
}

// TestBitBFSBatchDist checks the per-lane distance vectors against the
// scalar BFS oracle, including unreachable encoding.
func TestBitBFSBatchDist(t *testing.T) {
	graphs := []*Graph{
		path(9),
		cycle(12),
		gnp(130, 0.04, 5), // sparse: likely disconnected
		complete(5),
	}
	var s BitBFSScratch
	for _, g := range graphs {
		n := g.N()
		srcs := make([]int32, min(64, n))
		for j := range srcs {
			srcs[j] = int32(n-1) - int32(j) // non-trivial source order
		}
		stride := len(srcs)
		dist := make([]uint8, n*stride)
		st, ok := g.BitBFSBatchDist(srcs, &s, dist, stride)
		if !ok {
			t.Fatalf("%s: unexpected distance overflow", g.Name())
		}
		ref := make([]int32, n)
		var bs BFSScratch
		for l, src := range srcs {
			ref = g.BFSDistancesScratch(int(src), ref, &bs)
			var sum, reached int64
			var ecc int32
			for v := 0; v < n; v++ {
				want := uint8(DistUnreachable)
				if ref[v] != Unreachable {
					want = uint8(ref[v])
					if v != int(src) {
						sum += int64(ref[v])
						reached++
						if ref[v] > ecc {
							ecc = ref[v]
						}
					}
				}
				if dist[v*stride+l] != want {
					t.Fatalf("%s src %d: dist[%d] = %d, want %d", g.Name(), src, v, dist[v*stride+l], want)
				}
			}
			if st.Sum[l] != sum || st.Reached[l] != reached || st.Ecc[l] != ecc {
				t.Fatalf("%s src %d: stats lane %d = (%d,%d,%d), want (%d,%d,%d)",
					g.Name(), src, l, st.Sum[l], st.Reached[l], st.Ecc[l], sum, reached, ecc)
			}
		}
	}
}

// TestBitBFSBatchRows checks per-lane level counts against scalar BFS
// and pins the stride-overflow contract.
func TestBitBFSBatchRows(t *testing.T) {
	g := gnp(90, 0.05, 9)
	n := g.N()
	srcs := make([]int32, 64)
	for j := range srcs {
		srcs[j] = int32(j)
	}
	const stride = 16
	rows := make([]int32, len(srcs)*stride)
	st, ok := g.BitBFSBatchRows(srcs, &BitBFSScratch{}, rows, stride)
	if !ok {
		t.Fatal("unexpected stride overflow at stride 16")
	}
	ref := make([]int32, n)
	var bs BFSScratch
	for l, src := range srcs {
		ref = g.BFSDistancesScratch(int(src), ref, &bs)
		want := make([]int32, stride)
		for v := 0; v < n; v++ {
			if ref[v] != Unreachable && ref[v] > 0 {
				want[ref[v]]++
			}
		}
		for d := 0; d < stride; d++ {
			if rows[l*stride+d] != want[d] {
				t.Fatalf("src %d level %d: count %d, want %d", src, d, rows[l*stride+d], want[d])
			}
		}
		if int(st.Ecc[l]) >= stride {
			t.Fatalf("src %d: ecc %d overflows stride without ok=false", src, st.Ecc[l])
		}
	}

	// Overflow contract: P300 has eccentricities up to 299 — stride 8
	// must be rejected, stride 300 must succeed.
	p := path(300)
	small := make([]int32, 8)
	if _, ok := p.BitBFSBatchRows([]int32{0}, &BitBFSScratch{}, small, 8); ok {
		t.Fatal("stride 8 on P300 should overflow")
	}
	big := make([]int32, 300)
	if _, ok := p.BitBFSBatchRows([]int32{0}, &BitBFSScratch{}, big, 300); !ok {
		t.Fatal("stride 300 on P300 should fit")
	}
}
