// Incremental all-pairs evaluation under 2-opt swaps: the inner-loop
// oracle of the design-space search (internal/search, cmd/pssearch).
//
// A full AllPairsStats on an n-vertex graph runs ⌈n/64⌉ bit-parallel
// batches. A 2-opt swap, however, leaves most BFS trees untouched, and
// which trees *can* change is decidable exactly from distances measured
// at the swapped endpoints and their neighborhoods:
//
//   - Removing edge {x,y} can change the distances from source s only if
//     the edge lies on s's shortest-path DAG (|d(s,x) − d(s,y)| = 1) AND
//     the deeper endpoint has no other neighbor one level closer to s.
//     If every vertex keeps at least one DAG parent edge, a level-by-
//     level induction shows every distance from s is preserved.
//   - Adding edge {x,y} can change the distances from source s only if
//     |d(s,x) − d(s,y)| ≥ 2 (or exactly one endpoint is unreachable):
//     otherwise any path using the new edge is no shorter than the old
//     distance, again by induction on the new distance.
//
// Both tests are conservative in the safe direction — a source that
// passes them provably keeps its exact distance vector — so recomputing
// BFS only from the failing ("dirty") sources reproduces the full
// recomputation bit for bit (the property tests in delta_test.go pin
// this against AllPairsStatsScalar and DistanceHistogram after every
// swap). The removal test consults the distances of the endpoints'
// neighbors, which is why the per-swap probe runs BitBFSBatchDist over
// the closed neighborhoods of the four endpoints: a constant number of
// batches, independent of n, versus ⌈n/64⌉ for the full recomputation.
//
// All state updates are integer and processed in ascending source order,
// so DeltaStats inherits the repository-wide determinism contract: the
// final aggregates are a pure function of the starting graph and the
// swap sequence.
//
// A single evaluation additionally scales with cores: SetPool attaches
// an EvalPool and every phase of Apply — the region probe batches, the
// O(n) dirty-source scan, and the ⌈|dirty|/64⌉ recompute batches — plus
// the rebuild/Resync full passes shard across it. Workers write only
// into task-indexed slots (probe-distance columns, per-chunk dirty
// lists, per-batch rows and lane stats) and the aggregates are folded
// serially in fixed batch/chunk order, so pooled results are
// bit-identical to the serial path at any pool width (pinned by
// TestDeltaStatsParallelDeterminism).
package graph

import "fmt"

// DeltaStats maintains the exact all-pairs distance aggregates —
// diameter, average path length, connected pair count and the global
// distance histogram — of an editable graph while 2-opt swaps are
// applied to it, re-running BFS only from sources whose distance tree
// can have changed. It supports a one-deep Revert for rejected search
// moves and a full Resync for cadence-based verification.
//
// A DeltaStats owns its graph (NewDeltaStats clones the input) and
// serves one goroutine.
type DeltaStats struct {
	g      *Graph
	n      int
	stride int // row width; per-source level counts cover d < stride

	rows       []int32 // n×stride; rows[s·stride+d] = #vertices at distance d from s
	ecc        []int32 // per-source eccentricity
	srcSum     []int64 // per-source Σ distances
	srcReached []int64 // per-source reached count

	sum    int64   // Σ over connected ordered pairs of their distance
	pairs  int64   // connected ordered pairs
	hist   []int64 // hist[d] = ordered pairs at distance d; len stride
	eccCnt []int64 // eccCnt[e] = sources with eccentricity e; len stride

	// Per-swap scratch, reused across Apply calls (allocation-free once
	// warm).
	scratch   BitBFSScratch
	regionIdx []int32 // vertex -> lane in dists, -1 outside the region
	region    []int32
	dists     []uint8 // len(region)×n distance vectors on the pre-swap graph
	dirty     []int32
	rowBuf    []int32 // per-batch 64×stride recompute output

	// Intra-evaluation parallelism (nil: serial). Workers fill the
	// task-indexed slots below; every fold stays serial in task order.
	pool        *EvalPool
	batchStats  []BatchBFSStats // per-batch lane aggregates
	batchOK     []bool          // per-batch kernel ok flags
	dirtyChunks [][]int32       // per-chunk dirty lists, chunk-ordered

	undo undoState

	// Telemetry for the search loop (read-only for callers).
	Evals        int64 // Apply calls
	FullRebuilds int64 // Applies that fell back to a full rebuild
	Resyncs      int64 // Resync calls
	DirtyTotal   int64 // Σ dirty-set sizes over all Applies
	LastDirty    int   // dirty-set size of the most recent Apply
	DistsBytes   int64 // high-water probe-buffer footprint (n·|region| bytes)
}

// dirtyChunkSize is the source-range granule of the parallel dirty scan:
// chunk c covers sources [c·dirtyChunkSize, (c+1)·dirtyChunkSize).
// Per-chunk dirty lists concatenated in chunk order reproduce the serial
// ascending-source order exactly.
const dirtyChunkSize = 512

// undoState is the one-deep backup taken by Apply so a rejected search
// move can be reverted exactly.
type undoState struct {
	valid      bool
	full       bool // the Apply rebuilt from scratch; Revert must too
	sw         Swap // inverse swap
	dirty      []int32
	rows       []int32
	ecc        []int32
	srcSum     []int64
	srcReached []int64
	sum, pairs int64
	hist       []int64
	eccCnt     []int64
}

// initStride is the starting row width. Diameter-3-family graphs use
// 4 entries; the width doubles (with a full rebuild) if a swap pushes
// some eccentricity past it.
const initStride = 8

// NewDeltaStats builds the incremental evaluation state for g. The graph
// is cloned (CloneEditable), so g itself is never mutated.
func NewDeltaStats(g *Graph) *DeltaStats { return NewDeltaStatsPool(g, nil) }

// NewDeltaStatsPool is NewDeltaStats with the initial full build (and
// every later phase) sharded across p; nil p means serial. Results are
// bit-identical either way.
func NewDeltaStatsPool(g *Graph, p *EvalPool) *DeltaStats {
	d := &DeltaStats{
		g:      g.CloneEditable(),
		n:      g.N(),
		stride: initStride,
		pool:   p,
	}
	d.regionIdx = make([]int32, d.n)
	for i := range d.regionIdx {
		d.regionIdx[i] = -1
	}
	d.ecc = make([]int32, d.n)
	d.srcSum = make([]int64, d.n)
	d.srcReached = make([]int64, d.n)
	d.rebuild()
	return d
}

// SetPool attaches (or, with nil, detaches) the worker pool the next
// evaluation phases shard across. Purely a performance knob: every
// result is bit-identical at any pool width, so the search layer may
// re-point pools between epochs without perturbing determinism. The
// pool must not be in use by another goroutine while this DeltaStats
// evaluates.
func (d *DeltaStats) SetPool(p *EvalPool) { d.pool = p }

// growBatchBufs sizes the per-task result slots for nb tasks.
func (d *DeltaStats) growBatchBufs(nb int) {
	if cap(d.batchStats) < nb {
		d.batchStats = make([]BatchBFSStats, nb)
		d.batchOK = make([]bool, nb)
	}
	d.batchStats = d.batchStats[:nb]
	d.batchOK = d.batchOK[:nb]
}

// Graph returns the current graph. Callers must treat it as read-only;
// it is mutated by Apply and Revert.
func (d *DeltaStats) Graph() *Graph { return d.g }

// Stats returns the exact all-pairs statistics of the current graph,
// identical to g.AllPairsStats() but O(stride).
func (d *DeltaStats) Stats() PathStats {
	st := PathStats{
		Pairs:     d.pairs,
		Connected: d.pairs == int64(d.n)*int64(d.n-1),
	}
	for e := d.stride - 1; e >= 1; e-- {
		if d.eccCnt[e] > 0 {
			st.Diameter = int32(e)
			break
		}
	}
	if d.pairs > 0 {
		st.AvgPath = float64(d.sum) / float64(d.pairs)
	}
	return st
}

// SumPairs returns the integer pair (Σ distances, connected ordered
// pairs) — the exact quantities search cost functions combine, free of
// float rounding.
func (d *DeltaStats) SumPairs() (sum, pairs int64) { return d.sum, d.pairs }

// Histogram returns the global distance histogram in the same form as
// Graph.DistanceHistogram: hist[d] counts ordered pairs at distance
// exactly d for d in [0, Diameter], hist[0] = 0.
func (d *DeltaStats) Histogram() []int64 {
	diam := int(d.Stats().Diameter)
	out := make([]int64, diam+1)
	copy(out, d.hist[:diam+1])
	return out
}

// CanSwap reports whether sw is applicable to the current graph.
func (d *DeltaStats) CanSwap(sw Swap) bool { return d.g.CanSwap(sw) }

// Apply performs sw and delta-evaluates it: distances are recomputed
// only from the dirty sources. It returns the number of sources
// re-evaluated (n after a stride-growth rebuild). The previous state can
// be restored with Revert until the next Apply or Resync.
func (d *DeltaStats) Apply(sw Swap) int {
	if !d.g.CanSwap(sw) {
		panic(fmt.Sprintf("graph: DeltaStats.Apply: invalid %v", sw))
	}
	d.Evals++
	d.undo.valid = true
	d.undo.full = false
	d.undo.sw = sw.Inverse()

	d.buildRegion(sw)
	d.dirty = d.dirty[:0]
	if d.regionDists() {
		d.findDirty(sw)
	} else {
		// A distance overflowed the uint8 probe encoding; treat every
		// source as dirty. Correct, just not incremental.
		for v := 0; v < d.n; v++ {
			d.dirty = append(d.dirty, int32(v))
		}
	}
	d.LastDirty = len(d.dirty)
	d.DirtyTotal += int64(len(d.dirty))

	d.backupDirty()
	d.g.ApplySwap(sw)
	if !d.reevalDirty() {
		// Some dirty eccentricity outgrew the rows. Rebuild wholesale at
		// a doubled stride; Revert handles this via its own rebuild.
		d.undo.full = true
		d.stride *= 2
		d.rebuild()
		d.FullRebuilds++
		return d.n
	}
	return len(d.dirty)
}

// Revert undoes the most recent Apply. It panics if there is nothing to
// revert (each Apply can be reverted at most once, and Resync clears the
// backup).
func (d *DeltaStats) Revert() {
	if !d.undo.valid {
		panic("graph: DeltaStats.Revert without a preceding Apply")
	}
	d.undo.valid = false
	d.g.ApplySwap(d.undo.sw)
	if d.undo.full {
		d.rebuild()
		return
	}
	for i, s := range d.undo.dirty {
		copy(d.rows[int(s)*d.stride:(int(s)+1)*d.stride], d.undo.rows[i*d.stride:(i+1)*d.stride])
		d.ecc[s] = d.undo.ecc[i]
		d.srcSum[s] = d.undo.srcSum[i]
		d.srcReached[s] = d.undo.srcReached[i]
	}
	d.sum, d.pairs = d.undo.sum, d.undo.pairs
	copy(d.hist, d.undo.hist)
	copy(d.eccCnt, d.undo.eccCnt)
}

// Resync recomputes every aggregate from scratch — the fixed-cadence
// guard the search loop runs — and reports whether the incremental state
// had drifted from the authoritative recomputation (it must never have;
// the search loop counts a true return as a hard error). Resync
// invalidates the Revert backup.
func (d *DeltaStats) Resync() (drifted bool) {
	d.Resyncs++
	d.undo.valid = false
	oldSum, oldPairs := d.sum, d.pairs
	oldHist := append([]int64(nil), d.hist...)
	oldEcc := append([]int32(nil), d.ecc...)
	d.rebuild()
	drifted = oldSum != d.sum || oldPairs != d.pairs
	for dd := range d.hist {
		var prev int64
		if dd < len(oldHist) {
			prev = oldHist[dd]
		}
		if d.hist[dd] != prev {
			drifted = true
		}
	}
	for v := range d.ecc {
		if d.ecc[v] != oldEcc[v] {
			drifted = true
		}
	}
	return drifted
}

// rebuild recomputes rows and aggregates for the whole graph, growing
// the stride until every eccentricity fits.
func (d *DeltaStats) rebuild() {
	for !d.tryBuild() {
		d.stride *= 2
	}
}

// tryBuild is one full recomputation attempt at the current stride.
func (d *DeltaStats) tryBuild() bool {
	if cap(d.rows) < d.n*d.stride {
		d.rows = make([]int32, d.n*d.stride)
	}
	d.rows = d.rows[:d.n*d.stride]
	if cap(d.hist) < d.stride {
		d.hist = make([]int64, d.stride)
		d.eccCnt = make([]int64, d.stride)
	}
	d.hist = d.hist[:d.stride]
	d.eccCnt = d.eccCnt[:d.stride]
	clear(d.hist)
	clear(d.eccCnt)
	d.sum, d.pairs = 0, 0
	nb := (d.n + 63) / 64
	d.growBatchBufs(nb)
	// Each batch writes its own 64-row window of d.rows plus its own
	// batchStats/batchOK slot; nothing else is shared.
	d.pool.Run(nb, &d.scratch, func(b int, s *BitBFSScratch) {
		base := b * 64
		lanes := min(64, d.n-base)
		for i := 0; i < lanes; i++ {
			s.srcs[i] = int32(base + i)
		}
		st, ok := d.g.BitBFSBatchRows(s.srcs[:lanes], s, d.rows[base*d.stride:], d.stride)
		d.batchStats[b] = st
		d.batchOK[b] = ok
	})
	for _, ok := range d.batchOK {
		if !ok {
			return false
		}
	}
	for b := 0; b < nb; b++ { // fixed batch-order fold
		base := b * 64
		st := &d.batchStats[b]
		for l := 0; l < st.Lanes; l++ {
			s := base + l
			d.ecc[s] = st.Ecc[l]
			d.srcSum[s] = st.Sum[l]
			d.srcReached[s] = st.Reached[l]
			d.sum += st.Sum[l]
			d.pairs += st.Reached[l]
			d.eccCnt[st.Ecc[l]]++
			for dd := 1; dd < d.stride; dd++ {
				d.hist[dd] += int64(d.rows[s*d.stride+dd])
			}
		}
	}
	return true
}

// buildRegion collects the four endpoints of sw followed by their
// (pre-swap) neighborhoods, deduplicated, and indexes them in regionIdx.
// The endpoints always occupy lanes 0..3.
func (d *DeltaStats) buildRegion(sw Swap) {
	for _, v := range d.region {
		d.regionIdx[v] = -1
	}
	d.region = d.region[:0]
	add := func(v int32) {
		if d.regionIdx[v] < 0 {
			d.regionIdx[v] = int32(len(d.region))
			d.region = append(d.region, v)
		}
	}
	// Endpoints are distinct (CanSwap), so they take lanes 0..3.
	add(sw.A)
	add(sw.B)
	add(sw.C)
	add(sw.D)
	for _, e := range [4]int32{sw.A, sw.B, sw.C, sw.D} {
		for _, w := range d.g.Neighbors(int(e)) {
			add(w)
		}
	}
}

// regionDists runs BitBFSBatchDist from every region vertex on the
// pre-swap graph, assembling dists in vertex-major layout:
// dists[s·R+idx] is the distance between source s and region[idx], with
// R = len(region). Returns false if some distance exceeds the uint8
// probe range.
//
// The buffer grows geometrically — the region size varies swap to swap
// (neighborhood overlap), and doubling keeps paper-scale runs from
// re-allocating megabytes every time a swap's region sets a new record
// by one vertex. DistsBytes records the high-water of the *used* length
// (a pure function of the swap sequence, so it checkpoints and resumes
// deterministically); actual capacity is at most ~2x that.
func (d *DeltaStats) regionDists() bool {
	r := len(d.region)
	need := d.n * r
	if int64(need) > d.DistsBytes {
		d.DistsBytes = int64(need)
	}
	if cap(d.dists) < need {
		newCap := 2 * cap(d.dists)
		if newCap < need {
			newCap = need
		}
		d.dists = make([]uint8, need, newCap)
	}
	d.dists = d.dists[:need]
	nb := (r + 63) / 64
	d.growBatchBufs(nb)
	// Batch b writes lane columns [64b, 64b+lanes) of every row — byte
	// ranges disjoint from every other batch's.
	d.pool.Run(nb, &d.scratch, func(b int, s *BitBFSScratch) {
		base := b * 64
		lanes := min(64, r-base)
		_, ok := d.g.BitBFSBatchDist(d.region[base:base+lanes], s, d.dists[base:], r)
		d.batchOK[b] = ok
	})
	for b := 0; b < nb; b++ {
		if !d.batchOK[b] {
			return false
		}
	}
	return true
}

// findDirty appends to d.dirty every source whose distance vector can
// change under sw, in ascending order. With a pool attached the scan is
// chunked over fixed source ranges; per-chunk lists concatenated in
// chunk order reproduce the serial ascending order exactly.
func (d *DeltaStats) findDirty(sw Swap) {
	nc := (d.n + dirtyChunkSize - 1) / dirtyChunkSize
	if d.pool.Width() <= 1 || nc <= 1 {
		d.findDirtyRange(sw, 0, d.n, &d.dirty)
		return
	}
	if cap(d.dirtyChunks) < nc {
		old := d.dirtyChunks
		d.dirtyChunks = make([][]int32, nc)
		copy(d.dirtyChunks, old)
	}
	d.dirtyChunks = d.dirtyChunks[:nc]
	d.pool.Run(nc, &d.scratch, func(c int, _ *BitBFSScratch) {
		lo := c * dirtyChunkSize
		hi := min(lo+dirtyChunkSize, d.n)
		out := d.dirtyChunks[c][:0]
		d.findDirtyRange(sw, lo, hi, &out)
		d.dirtyChunks[c] = out
	})
	for _, chunk := range d.dirtyChunks {
		d.dirty = append(d.dirty, chunk...)
	}
}

// findDirtyRange runs the dirty test for sources in [lo, hi), appending
// hits to out in ascending order. It only reads the pre-swap graph, the
// probe distances and the region index, so disjoint ranges are safe to
// scan concurrently.
func (d *DeltaStats) findDirtyRange(sw Swap, lo, hi int, out *[]int32) {
	r := len(d.region)
	for s := lo; s < hi; s++ {
		// All probe distances of source s sit in one contiguous row;
		// the endpoints occupy indices 0..3 (buildRegion adds them
		// first). Partner distances: each endpoint gains exactly one
		// new edge (A~C, B~D), which can replace a lost shortest-path
		// parent.
		row := d.dists[s*r : (s+1)*r]
		da, db, dc, dd := row[0], row[1], row[2], row[3]
		if addedDirty(da, dc) || addedDirty(db, dd) ||
			d.removedDirty(row, sw.A, sw.B, da, db, dc, dd) ||
			d.removedDirty(row, sw.C, sw.D, dc, dd, da, db) {
			*out = append(*out, int32(s))
		}
	}
}

// addedDirty reports whether adding an edge between vertices at
// distances dx and dy from the source can change that source's distance
// vector: only if the gap is ≥ 2 hops, or exactly one side is
// unreachable.
func addedDirty(dx, dy uint8) bool {
	if dx == dy {
		return false
	}
	if dx == DistUnreachable || dy == DistUnreachable {
		return true
	}
	if dx > dy {
		dx, dy = dy, dx
	}
	return dy-dx >= 2
}

// removedDirty reports whether removing existing edge {x,y} can change
// the source's distances: the edge must be on the source's shortest-path
// DAG and be the deeper endpoint's only parent edge — counting, as a
// possible replacement parent, the new partner that endpoint gains from
// the swap's added edges (px partners x, py partners y). Called on the
// pre-swap graph, so Neighbors and the probe distances agree.
func (d *DeltaStats) removedDirty(row []uint8, x, y int32, dx, dy, px, py uint8) bool {
	if dx == dy {
		return false // not a DAG edge (covers both-unreachable)
	}
	if dx > dy {
		x, y = y, x
		dx, dy = dy, dx
		px, py = py, px
	}
	parent := dy - 1
	if py == parent {
		// The added edge hands y a parent at the same level, so the
		// level-by-level induction goes through without x.
		return false
	}
	for _, w := range d.g.Neighbors(int(y)) {
		if w == x {
			continue
		}
		if row[d.regionIdx[w]] == parent {
			return false // y keeps another parent; all levels survive
		}
	}
	return true
}

// backupDirty snapshots the state Apply is about to overwrite.
func (d *DeltaStats) backupDirty() {
	nd := len(d.dirty)
	d.undo.dirty = append(d.undo.dirty[:0], d.dirty...)
	if cap(d.undo.rows) < nd*d.stride {
		d.undo.rows = make([]int32, nd*d.stride)
	}
	d.undo.rows = d.undo.rows[:nd*d.stride]
	d.undo.ecc = append(d.undo.ecc[:0], make([]int32, nd)...)[:nd]
	d.undo.srcSum = append(d.undo.srcSum[:0], make([]int64, nd)...)[:nd]
	d.undo.srcReached = append(d.undo.srcReached[:0], make([]int64, nd)...)[:nd]
	for i, s := range d.dirty {
		copy(d.undo.rows[i*d.stride:(i+1)*d.stride], d.rows[int(s)*d.stride:(int(s)+1)*d.stride])
		d.undo.ecc[i] = d.ecc[s]
		d.undo.srcSum[i] = d.srcSum[s]
		d.undo.srcReached[i] = d.srcReached[s]
	}
	d.undo.sum, d.undo.pairs = d.sum, d.pairs
	d.undo.hist = append(d.undo.hist[:0], d.hist...)
	d.undo.eccCnt = append(d.undo.eccCnt[:0], d.eccCnt...)
}

// reevalDirty recomputes the dirty sources on the post-swap graph and
// folds the differences into the aggregates. Returns false on stride
// overflow. The ⌈|dirty|/64⌉ recompute batches shard across the pool,
// each writing its own 64×stride rowBuf window and batchStats slot; the
// aggregate fold then walks the batches serially in fixed order — the
// same arithmetic, in the same order, as the serial path.
func (d *DeltaStats) reevalDirty() bool {
	nb := (len(d.dirty) + 63) / 64
	if cap(d.rowBuf) < nb*64*d.stride {
		d.rowBuf = make([]int32, nb*64*d.stride)
	}
	d.rowBuf = d.rowBuf[:nb*64*d.stride]
	d.growBatchBufs(nb)
	d.pool.Run(nb, &d.scratch, func(b int, s *BitBFSScratch) {
		base := b * 64
		lanes := min(64, len(d.dirty)-base)
		st, ok := d.g.BitBFSBatchRows(d.dirty[base:base+lanes], s, d.rowBuf[base*d.stride:], d.stride)
		d.batchStats[b] = st
		d.batchOK[b] = ok
	})
	for b := 0; b < nb; b++ {
		if !d.batchOK[b] {
			return false
		}
	}
	for b := 0; b < nb; b++ { // fixed batch-order fold
		base := b * 64
		st := &d.batchStats[b]
		for l := 0; l < st.Lanes; l++ {
			s := int(d.dirty[base+l])
			row := d.rows[s*d.stride : (s+1)*d.stride]
			newRow := d.rowBuf[(base+l)*d.stride : (base+l+1)*d.stride]
			for dd := 1; dd < d.stride; dd++ {
				d.hist[dd] += int64(newRow[dd]) - int64(row[dd])
			}
			copy(row, newRow)
			d.sum += st.Sum[l] - d.srcSum[s]
			d.pairs += st.Reached[l] - d.srcReached[s]
			d.srcSum[s] = st.Sum[l]
			d.srcReached[s] = st.Reached[l]
			d.eccCnt[d.ecc[s]]--
			d.eccCnt[st.Ecc[l]]++
			d.ecc[s] = int32(st.Ecc[l])
		}
	}
	return true
}
