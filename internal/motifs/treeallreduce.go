package motifs

import (
	"polarstar/internal/flowsim"
	"polarstar/internal/route"
)

// TreeAllreduce simulates an in-network-style allreduce over k
// edge-disjoint spanning trees (the Dawkins et al. extension): the buffer
// is split into k shards; shard i reduces up tree i (leaves → root) and
// broadcasts back down. Trees run concurrently and each uses its own
// links, so bandwidth scales with k.
//
// Endpoint i of each participating router acts as the router's rank (one
// rank per router, the in-network model). Returns the completion time in
// ns.
func TreeAllreduce(n *flowsim.Network, trees []*route.SpanningTree, msgBytes float64, iters int) float64 {
	if len(trees) == 0 {
		return 0
	}
	cfg := n.Config()
	perRouter := cfg.PerRouter
	rankOf := func(router int) int { return router * perRouter } // first endpoint on the router
	shard := msgBytes / float64(len(trees))
	finish := 0.0
	ready := make([]float64, len(trees[0].Parent))
	for it := 0; it < iters; it++ {
		for _, tree := range trees {
			children := tree.Children()
			// Reduce: post-order — a node sends to its parent once all
			// its children's contributions arrived.
			var up func(v int) float64
			up = func(v int) float64 {
				t := ready[v]
				for _, c := range children[v] {
					childDone := up(int(c))
					arr := n.Send(rankOf(int(c)), rankOf(v), shard, childDone)
					if arr > t {
						t = arr
					}
				}
				return t
			}
			rootReady := up(tree.Root)
			// Broadcast: pre-order down the same tree.
			var down func(v int, at float64)
			done := make([]float64, len(tree.Parent))
			down = func(v int, at float64) {
				done[v] = at
				for _, c := range children[v] {
					down(int(c), n.Send(rankOf(v), rankOf(int(c)), shard, at))
				}
			}
			down(tree.Root, rootReady)
			for v, t := range done {
				if t > ready[v] {
					ready[v] = t
				}
				if t > finish {
					finish = t
				}
			}
		}
	}
	return finish
}
