// Package motifs implements the Ember communication patterns evaluated
// in §10 on top of the flow-level simulator: the Allreduce collective
// (recursive doubling) and the Sweep3D wavefront. Process IDs map
// linearly to endpoints, as in the paper.
package motifs

import (
	"polarstar/internal/flowsim"
)

// Allreduce simulates `iters` iterations of a recursive-doubling
// allreduce of msgBytes across the first `ranks` endpoints (rounded down
// to a power of two, like the collective implementations the paper's
// Ember motif models). It returns the completion time in ns.
func Allreduce(n *flowsim.Network, ranks int, msgBytes float64, iters int) float64 {
	p := 1
	for p*2 <= ranks {
		p *= 2
	}
	ready := make([]float64, p)
	arrive := make([]float64, p)
	for it := 0; it < iters; it++ {
		for step := 1; step < p; step *= 2 {
			// All ranks exchange with their partner; a rank enters the
			// next round when its partner's message has arrived.
			for r := 0; r < p; r++ {
				partner := r ^ step
				arrive[partner] = n.Send(r, partner, msgBytes, ready[r])
			}
			for r := 0; r < p; r++ {
				if arrive[r] > ready[r] {
					ready[r] = arrive[r]
				}
			}
		}
	}
	max := 0.0
	for _, t := range ready {
		if t > max {
			max = t
		}
	}
	return max
}

// Sweep3D simulates `iters` wavefront sweeps over a px × py logical
// process grid (§10.1: a diagonal wavefront stressing latency). Each rank
// waits for its west and north neighbors, spends computeNS, then sends
// msgBytes east and south. Ranks map linearly to endpoints (rank =
// y*px + x). Returns the completion time in ns.
func Sweep3D(n *flowsim.Network, px, py int, msgBytes, computeNS float64, iters int) float64 {
	ranks := px * py
	ready := make([]float64, ranks)   // rank may start its cell work
	done := make([]float64, ranks)    // rank finished compute
	eastIn := make([]float64, ranks)  // arrival from the west neighbor
	southIn := make([]float64, ranks) // arrival from the north neighbor
	finish := 0.0
	for it := 0; it < iters; it++ {
		for i := range eastIn {
			eastIn[i], southIn[i] = 0, 0
		}
		// Process ranks in wavefront order (anti-diagonals).
		for diag := 0; diag <= px+py-2; diag++ {
			for x := 0; x < px; x++ {
				y := diag - x
				if y < 0 || y >= py {
					continue
				}
				r := y*px + x
				start := ready[r]
				if eastIn[r] > start {
					start = eastIn[r]
				}
				if southIn[r] > start {
					start = southIn[r]
				}
				done[r] = start + computeNS
				if x+1 < px {
					east := r + 1
					eastIn[east] = n.Send(r, east, msgBytes, done[r])
				}
				if y+1 < py {
					south := r + px
					southIn[south] = n.Send(r, south, msgBytes, done[r])
				}
			}
		}
		// Next iteration: each rank restarts after finishing this sweep.
		for r := range ready {
			ready[r] = done[r]
			if done[r] > finish {
				finish = done[r]
			}
		}
	}
	return finish
}
