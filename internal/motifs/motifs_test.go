package motifs

import (
	"testing"

	"polarstar/internal/flowsim"
	"polarstar/internal/sim"
)

func network(specName string, adaptive bool, seed int64) *flowsim.Network {
	spec := sim.MustNewSpec(specName)
	p := flowsim.DefaultParams(seed)
	p.Adaptive = adaptive
	return flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids, p)
}

func TestAllreduceCompletes(t *testing.T) {
	n := network("ps-iq-small", false, 1)
	tm := Allreduce(n, 64, 64*1024, 1)
	if tm <= 0 {
		t.Fatal("non-positive completion time")
	}
	// Lower bound: log2(64) = 6 rounds, each at least one 64KB transfer
	// (16384 ns at 4 B/ns) plus latencies.
	if tm < 6*16384 {
		t.Errorf("allreduce %f ns is faster than the serialization bound", tm)
	}
}

func TestAllreduceScalesWithIterations(t *testing.T) {
	a := Allreduce(network("ps-iq-small", false, 2), 32, 4096, 1)
	b := Allreduce(network("ps-iq-small", false, 2), 32, 4096, 5)
	if b < 4*a {
		t.Errorf("5 iterations (%f) should cost ~5x one iteration (%f)", b, a)
	}
}

func TestAllreduceMoreRanksSlower(t *testing.T) {
	small := Allreduce(network("ps-iq-small", false, 3), 16, 64*1024, 1)
	large := Allreduce(network("ps-iq-small", false, 3), 128, 64*1024, 1)
	if large <= small {
		t.Errorf("128-rank allreduce (%f) not slower than 16-rank (%f)", large, small)
	}
}

func TestSweep3DCompletes(t *testing.T) {
	n := network("ps-iq-small", false, 4)
	tm := Sweep3D(n, 8, 8, 4096, 50, 1)
	if tm <= 0 {
		t.Fatal("non-positive completion time")
	}
	// The wavefront has 15 diagonals; each costs at least the compute.
	if tm < 15*50 {
		t.Errorf("sweep %f ns beats the critical-path bound", tm)
	}
}

func TestSweep3DIterationsAccumulate(t *testing.T) {
	// Successive sweeps pipeline (a rank starts the next sweep after its
	// own cell), so 10 iterations cost more than one sweep but less than
	// 10 sequential ones.
	one := Sweep3D(network("ps-iq-small", false, 5), 6, 6, 2048, 50, 1)
	ten := Sweep3D(network("ps-iq-small", false, 5), 6, 6, 2048, 50, 10)
	if ten < 2*one {
		t.Errorf("10 sweeps (%f) too close to one sweep (%f)", ten, one)
	}
	if ten > 10*one {
		t.Errorf("10 sweeps (%f) exceed 10 sequential sweeps (%f)", ten, 10*one)
	}
}

func TestUGALHelpsAllreduceOnDragonfly(t *testing.T) {
	// §10.2: UGAL performs significantly better than MIN on Dragonfly
	// for Allreduce.
	min := Allreduce(network("df-small", false, 6), 128, 64*1024, 3)
	ugal := Allreduce(network("df-small", true, 6), 128, 64*1024, 3)
	if ugal >= min {
		t.Errorf("UGAL allreduce (%f) not faster than MIN (%f) on dragonfly", ugal, min)
	}
}

func TestMotifsDeterministic(t *testing.T) {
	a := Allreduce(network("bf-small", true, 7), 64, 8192, 2)
	b := Allreduce(network("bf-small", true, 7), 64, 8192, 2)
	if a != b {
		t.Errorf("allreduce not deterministic: %f vs %f", a, b)
	}
}

func TestFlowsimLatencyBandwidthModel(t *testing.T) {
	// A single message between adjacent endpoints: injection +
	// (hops × hop latency) + per-link serialization pipeline.
	n := network("ps-iq-small", false, 8)
	tm := n.Send(0, 1, 4096, 0) // same router (endpoints 0,1 on router 0)
	// Pipelined (cut-through) transfer: the ejection link streams as the
	// head arrives, so the 4096-byte serialization (1024 ns at 4 B/ns)
	// is paid once, plus two 20 ns hops.
	want := 20 + 20 + 1024.0
	if tm != want {
		t.Errorf("same-router message time = %f, want %f", tm, want)
	}
	// A second message on the same links queues behind the first.
	tm2 := n.Send(0, 1, 4096, 0)
	if tm2 <= tm {
		t.Errorf("no queueing: %f then %f", tm, tm2)
	}
}
