package motifs

import (
	"testing"

	"polarstar/internal/flowsim"
	"polarstar/internal/route"
	"polarstar/internal/sim"
)

func TestRingAllreduceCompletes(t *testing.T) {
	n := network("ps-iq-small", false, 1)
	tm := AllreduceRing(n, 64, 64*1024, 1)
	if tm <= 0 {
		t.Fatal("non-positive time")
	}
	// 2(p−1) serialized chunk steps is the bandwidth floor per rank.
	chunkNS := 64.0 * 1024 / 64 / 4
	if tm < 2*63*chunkNS {
		t.Errorf("ring allreduce %f beats the bandwidth floor", tm)
	}
}

func TestRabenseifnerCompletes(t *testing.T) {
	n := network("ps-iq-small", false, 2)
	tm := AllreduceRabenseifner(n, 64, 64*1024, 1)
	if tm <= 0 {
		t.Fatal("non-positive time")
	}
}

// TestAlgorithmTradeoffLargeMessages: for large messages, the
// bandwidth-optimal algorithms (ring, Rabenseifner) must beat plain
// recursive doubling, which sends the full buffer every round.
func TestAlgorithmTradeoffLargeMessages(t *testing.T) {
	const big = 1 << 20 // 1 MB
	rd := Allreduce(network("ps-iq-small", false, 3), 64, big, 1)
	rab := AllreduceRabenseifner(network("ps-iq-small", false, 3), 64, big, 1)
	if rab >= rd {
		t.Errorf("Rabenseifner (%f) not faster than recursive doubling (%f) at 1MB", rab, rd)
	}
}

// TestAlgorithmTradeoffSmallMessages: for tiny messages, latency
// dominates and the 2(p−1)-step ring must lose to the log-round
// algorithms.
func TestAlgorithmTradeoffSmallMessages(t *testing.T) {
	const small = 64
	rd := Allreduce(network("ps-iq-small", false, 4), 64, small, 1)
	ring := AllreduceRing(network("ps-iq-small", false, 4), 64, small, 1)
	if ring <= rd {
		t.Errorf("ring (%f) not slower than recursive doubling (%f) at 64B", ring, rd)
	}
}

func TestAllToAllCompletes(t *testing.T) {
	n := network("ps-iq-small", false, 5)
	tm := AllToAll(n, 32, 4096, 1)
	if tm <= 0 {
		t.Fatal("non-positive time")
	}
	// Each rank receives (p−1) messages on one ejection link: that
	// serialization is a hard floor.
	ser := 4096.0 / 4
	if tm < 31*ser {
		t.Errorf("alltoall %f beats the ejection serialization floor", tm)
	}
}

func TestCollectivesDegenerate(t *testing.T) {
	n := network("ps-iq-small", false, 6)
	if AllreduceRing(n, 1, 1024, 1) != 0 {
		t.Error("single-rank ring should be free")
	}
	if AllreduceRabenseifner(network("ps-iq-small", false, 6), 1, 1024, 1) != 0 {
		t.Error("single-rank rabenseifner should be free")
	}
	if AllToAll(network("ps-iq-small", false, 6), 1, 1024, 1) != 0 {
		t.Error("single-rank alltoall should be free")
	}
}

// TestTreeAllreduceScalesWithTrees: splitting the buffer over more
// edge-disjoint trees must not be slower — and is typically faster —
// than a single tree for bandwidth-bound messages.
func TestTreeAllreduceScalesWithTrees(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	trees, err := route.EdgeDisjointSpanningTrees(spec.Graph, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) < 2 {
		t.Skip("not enough disjoint trees")
	}
	run := func(k int) float64 {
		p := flowsim.DefaultParams(1)
		net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, nil, p)
		return TreeAllreduce(net, trees[:k], 1<<20, 1)
	}
	one := run(1)
	all := run(len(trees))
	if all > one {
		t.Errorf("%d trees (%f ns) slower than 1 tree (%f ns)", len(trees), all, one)
	}
	if one <= 0 || all <= 0 {
		t.Fatal("non-positive completion time")
	}
}

func TestTreeAllreduceEmpty(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, nil, flowsim.DefaultParams(1))
	if TreeAllreduce(net, nil, 1024, 1) != 0 {
		t.Error("empty tree set should be free")
	}
}
