package motifs

import "polarstar/internal/flowsim"

// Extension beyond the paper's two motifs: alternative Allreduce
// algorithms (ring and Rabenseifner) and an AllToAll personalized
// exchange. §10 motivates Allreduce as the key collective; comparing
// algorithms on the same topology shows how message-count/size trade-offs
// interact with the network (large messages favor bandwidth-optimal ring
// and Rabenseifner; small messages favor the log-round recursive
// doubling).

// AllreduceRing simulates the bandwidth-optimal ring allreduce:
// reduce-scatter then allgather, each 2(p−1) steps of msgBytes/p chunks.
// Returns the completion time in ns.
func AllreduceRing(n *flowsim.Network, ranks int, msgBytes float64, iters int) float64 {
	p := ranks
	if p > n.Config().Endpoints() {
		p = n.Config().Endpoints()
	}
	if p < 2 {
		return 0
	}
	chunk := msgBytes / float64(p)
	ready := make([]float64, p)
	arrive := make([]float64, p)
	for it := 0; it < iters; it++ {
		for phase := 0; phase < 2; phase++ { // reduce-scatter, allgather
			for step := 0; step < p-1; step++ {
				for r := 0; r < p; r++ {
					next := (r + 1) % p
					arrive[next] = n.Send(r, next, chunk, ready[r])
				}
				for r := 0; r < p; r++ {
					if arrive[r] > ready[r] {
						ready[r] = arrive[r]
					}
				}
			}
		}
	}
	return maxOf(ready)
}

// AllreduceRabenseifner simulates Rabenseifner's algorithm: a recursive
// halving reduce-scatter (message sizes halve each round) followed by a
// recursive doubling allgather (sizes double back). Bandwidth-optimal
// with log2(p) rounds. Ranks round down to a power of two.
func AllreduceRabenseifner(n *flowsim.Network, ranks int, msgBytes float64, iters int) float64 {
	p := 1
	for p*2 <= ranks && p*2 <= n.Config().Endpoints() {
		p *= 2
	}
	if p < 2 {
		return 0
	}
	ready := make([]float64, p)
	arrive := make([]float64, p)
	exchange := func(step int, bytes float64) {
		for r := 0; r < p; r++ {
			partner := r ^ step
			arrive[partner] = n.Send(r, partner, bytes, ready[r])
		}
		for r := 0; r < p; r++ {
			if arrive[r] > ready[r] {
				ready[r] = arrive[r]
			}
		}
	}
	for it := 0; it < iters; it++ {
		// Reduce-scatter: halving distances up, sizes down.
		bytes := msgBytes / 2
		for step := 1; step < p; step *= 2 {
			exchange(step, bytes)
			bytes /= 2
		}
		// Allgather: reverse.
		bytes = msgBytes / float64(p)
		for step := p / 2; step >= 1; step /= 2 {
			exchange(step, bytes)
			bytes *= 2
		}
	}
	return maxOf(ready)
}

// AllToAll simulates a personalized all-to-all exchange among the first
// `ranks` endpoints: each rank sends a distinct msgBytes block to every
// other rank, pipelined with the standard shifted schedule (round k:
// rank r sends to rank (r+k) mod p). This is the traffic behind FFT
// transposes — the pattern family §9.4 motivates.
func AllToAll(n *flowsim.Network, ranks int, msgBytes float64, iters int) float64 {
	p := ranks
	if p > n.Config().Endpoints() {
		p = n.Config().Endpoints()
	}
	if p < 2 {
		return 0
	}
	ready := make([]float64, p)
	arrive := make([]float64, p)
	for it := 0; it < iters; it++ {
		for k := 1; k < p; k++ {
			for r := 0; r < p; r++ {
				dst := (r + k) % p
				a := n.Send(r, dst, msgBytes, ready[r])
				if a > arrive[dst] {
					arrive[dst] = a
				}
			}
		}
		// A rank finishes the iteration when it has received everything.
		for r := 0; r < p; r++ {
			if arrive[r] > ready[r] {
				ready[r] = arrive[r]
			}
			arrive[r] = 0
		}
	}
	return maxOf(ready)
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
