package sim

// Live fault injection: the engine-side state machine behind Params.Plan.
// All mutation happens in the serial sections of the cycle (applyFaults /
// injectRetries before generation, collectRetries / watchdog after
// commit), so the parallel phases only ever read liveness through
// faultState — the same ownership discipline that makes the rest of the
// cycle race-free and worker-count independent.
//
// Invariants the fault path maintains:
//
//   - Credit reclaim: a packet dropped while in flight on a dying channel
//     gives back the S flits of downstream credit its grant reserved, so
//     no healthy channel is starved by credits parked on a dead one.
//     Packets that already crossed a link before it died keep their
//     buffer and drain normally through the (live) downstream router.
//   - Deterministic retries: per-shard retry requests are drained in
//     fixed shard order into one serial heap keyed (cycle, sequence), and
//     re-injected packets draw their route RNG from a dedicated
//     descending counter — so retry traffic is bit-identical at any
//     worker count, exactly like fresh traffic.
//   - Graceful degradation: a network the plan has disconnected cannot
//     hang the run. Every undeliverable packet converges to one of the
//     loss buckets (retry budget, age timeout, stranded), and the
//     no-progress watchdog ends the run early with partial metrics once
//     nothing can move anymore.

import (
	"math/rand"

	"polarstar/internal/route"
)

// escapeTrees is the number of edge-disjoint spanning trees backing the
// escape router (arXiv:2403.12231): two trees survive any single link
// failure by construction.
const escapeTrees = 2

// retryEvent is one scheduled re-injection on the serial retry heap.
type retryEvent struct {
	when    int64 // cycle of re-injection
	seq     int64 // tie-break: schedule order
	ep, dst int32
	gen     int64 // original generation cycle (age timeout base)
	retries uint8 // retries already consumed including this one
}

// retryReq is a retry request journaled by a shard during the parallel
// phases, converted to a retryEvent in fixed shard order after commit.
type retryReq struct {
	ep, dst int32
	gen     int64
	retries uint8
}

// faultState is the live-fault extension of an Engine, allocated only
// when Params.Plan carries events (e.fs stays nil otherwise, keeping the
// healthy path bit-identical and allocation-free).
type faultState struct {
	e      *Engine
	plan   *Plan
	next   int // cursor into plan.Events
	policy RetryPolicy

	deadChan   []bool          // channel id -> link currently failed
	deadRouter []bool          // router -> currently failed
	linkDown   map[[2]int]bool // explicit link-down events (u<v), distinct from router kills

	base   *route.Table      // primary table of the routing engine (nil: analytic)
	repair *route.Table      // lazily cloned copy of base, patched as links die
	escape *route.TreeEscape // spanning-tree escape paths (always available)
	health *laneHealth       // per-lane demotion state (multipath routing only)

	// repairReadyAt models route recomputation as a convergence window:
	// every applied plan event pushes it Params.RepairDelay cycles into
	// the future, and until it passes the repair table is not consulted —
	// the "global repair stall" a single-table engine pays on every
	// topology change, and exactly what multipath lane failover avoids.
	// Zero RepairDelay (the default) keeps repair instantaneous.
	repairReadyAt int64

	retryHeap []retryEvent
	seq       int64
	retryCtr  int64 // descending route-RNG seeds for re-injected packets

	// No-progress watchdog.
	lastProgress int64
	stuck        int64
	done         bool
	doneAt       int64

	// Accounting (serial writes only).
	eventsApplied   int64
	droppedInFlight int64
	retried         int64
	lostRetries     int64
	lostTimeout     int64
	lostStranded    int64
}

// initFaults arms the engine with a non-empty fault plan: liveness maps,
// the escape router, and liveness-aware routing on every shard clone.
// Called from NewEngine after the shards exist.
func (e *Engine) initFaults(params Params) {
	fs := &faultState{
		e:          e,
		plan:       sortedPlan(params.Plan),
		policy:     params.Retry.normalized(),
		deadChan:   make([]bool, e.g.NumChannels()),
		deadRouter: make([]bool, e.g.N()),
		linkDown:   make(map[[2]int]bool),
		retryCtr:   -1,
	}
	fs.base = baseTable(e.routing)
	esc, err := route.NewTreeEscape(e.g, escapeTrees, params.Seed)
	if err != nil {
		esc = &route.TreeEscape{} // no spanning trees: escape always fails over
	}
	fs.escape = esc
	if mp, ok := e.routing.(*MultiPathRouting); ok {
		fs.health = newLaneHealth(mp.MP, e)
	}
	e.fs = fs
	for _, sh := range e.shards {
		switch r := sh.routing.(type) {
		case Min:
			r.Live = fs.linkLive
			sh.routing = r
		case *UGAL:
			r.Live = fs.linkLive
		case *MultiPathRouting:
			r.setLive(fs.linkLive, fs.health, fs.repairAppend, fs.escapeAppend)
		}
	}
}

// escapeAppend appends the shortest fully-live escape-tree path for
// (src, dst); the multipath spray's survival-mode candidate source.
func (fs *faultState) escapeAppend(buf []int, src, dst int) []int {
	return fs.escape.AppendPath(buf, src, dst, fs.linkLive)
}

// repairAppend appends the repaired-table minimal path for (src, dst),
// or returns buf unchanged while no damage has built a repair table yet.
// The table pointer is written only in the serial fault sections, so the
// parallel routing phases read it race-free.
func (fs *faultState) repairAppend(buf []int, src, dst int, rng *rand.Rand) []int {
	if !fs.repairUsable() {
		return buf
	}
	return fs.repair.AppendPath(buf, src, dst, rng)
}

// sortedPlan returns p with its events in cycle order: applyFaults and
// the event-horizon advance walk the list front to back and stop at the
// first not-yet-due event, so an out-of-order plan (hand-built; the
// generators normalize theirs) would silently defer events. Sorting
// into a private copy keeps the caller's Plan untouched.
func sortedPlan(p *Plan) *Plan {
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].Cycle < p.Events[i-1].Cycle {
			c := &Plan{Events: append([]FaultEvent(nil), p.Events...)}
			c.normalize()
			return c
		}
	}
	return p
}

// baseTable extracts the all-pairs table underlying a routing engine, if
// it has one: Min and UGAL over a route.Table get incremental degraded
// repair; analytic engines fall back to the spanning-tree escape alone.
func baseTable(r Routing) *route.Table {
	switch r := r.(type) {
	case Min:
		if t, ok := r.Engine.(*route.Table); ok {
			return t
		}
	case *UGAL:
		if t, ok := r.Min.(*route.Table); ok {
			return t
		}
	case *MultiPathRouting:
		return baseTable(r.Base)
	}
	return nil
}

// linkLive reports whether the directed link u→v is usable. Read by the
// parallel phases; written only by the serial applyFaults.
func (fs *faultState) linkLive(u, v int) bool {
	if fs.deadRouter[u] || fs.deadRouter[v] {
		return false
	}
	c := fs.e.channelID(u, v)
	return c >= 0 && !fs.deadChan[c]
}

// pathLiveChans reports whether every hop of a vertex path maps to a
// live channel (dead routers kill all their incident channels, so the
// channel check covers intermediate routers too).
func (fs *faultState) pathLiveChans(path []int) bool {
	for i := 0; i+1 < len(path); i++ {
		c := fs.e.channelID(path[i], path[i+1])
		if c < 0 || fs.deadChan[c] {
			return false
		}
	}
	return true
}

// applyFaults applies every plan event due at cycle t, then drops the
// in-flight packets caught on newly dead channels in one batch scan.
// Runs serially at the start of the cycle.
func (e *Engine) applyFaults(t int64) {
	fs := e.fs
	killed := false
	first := fs.next
	for fs.next < len(fs.plan.Events) && fs.plan.Events[fs.next].Cycle <= t {
		ev := fs.plan.Events[fs.next]
		fs.next++
		fs.eventsApplied++
		switch ev.Kind {
		case LinkDown:
			killed = fs.applyLinkDown(ev.U, ev.V) || killed
		case LinkUp:
			fs.applyLinkUp(ev.U, ev.V)
		case RouterDown:
			killed = fs.applyRouterDown(ev.U) || killed
		case RouterUp:
			fs.applyRouterUp(ev.U)
		}
	}
	if fs.next > first && e.p.RepairDelay > 0 {
		fs.repairReadyAt = t + e.p.RepairDelay
	}
	if fs.health != nil {
		if fs.next > first {
			fs.health.rescan(t, fs.deadChan)
		}
		fs.health.promote(t)
	}
	if killed {
		fs.dropInFlight(t)
	}
}

// repairUsable reports whether the repair table exists and has converged
// (the RepairDelay window after the last topology change has passed).
func (fs *faultState) repairUsable() bool {
	return fs.repair != nil && fs.e.now >= fs.repairReadyAt
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// killEdge marks both directed channels of (u, v) dead and patches the
// repair table incrementally. Reports whether the edge was live before.
func (fs *faultState) killEdge(u, v int) bool {
	cu := fs.e.channelID(u, v)
	if cu < 0 || fs.deadChan[cu] {
		return false
	}
	fs.deadChan[cu] = true
	fs.deadChan[fs.e.channelID(v, u)] = true
	switch {
	case fs.repair != nil:
		fs.repair.DropEdge(u, v)
	case fs.base != nil:
		fs.repair = fs.base.Clone()
		fs.repair.DropEdge(u, v)
	default:
		// Analytic primary (no table to clone): derive the repair table
		// from the wiring itself on first damage. The degraded graph is
		// the ground truth either way, and an all-min-paths table over it
		// guarantees every still-connected pair keeps a live minimal
		// route — without it, analytic specs black-hole any pair whose
		// canonical path, escape trees, and (multipath) surviving lanes
		// are all cut or out of hop range.
		fs.repair = route.NewTable(fs.e.g.RemoveEdges([][2]int{{u, v}}), route.AllMinPaths)
	}
	return true
}

func (fs *faultState) applyLinkDown(u, v int) bool {
	fs.linkDown[edgeKey(u, v)] = true
	return fs.killEdge(u, v)
}

func (fs *faultState) applyRouterDown(r int) bool {
	if fs.deadRouter[r] {
		return false
	}
	fs.deadRouter[r] = true
	killed := false
	for _, w := range fs.e.g.Neighbors(r) {
		killed = fs.killEdge(r, int(w)) || killed
	}
	return killed
}

// applyLinkUp / applyRouterUp clear the corresponding down state, then
// re-derive channel liveness and rebuild the repair table from scratch on
// the still-degraded graph (incremental repair only handles removals;
// repairs are rare enough that a full rebuild — reusing the slab — is the
// simpler correct move).
func (fs *faultState) applyLinkUp(u, v int) {
	delete(fs.linkDown, edgeKey(u, v))
	fs.refreshLiveness()
}

func (fs *faultState) applyRouterUp(r int) {
	if !fs.deadRouter[r] {
		return
	}
	fs.deadRouter[r] = false
	fs.refreshLiveness()
}

// refreshLiveness recomputes deadChan from the ground truth (explicit
// link-down set plus dead routers) and rebuilds the repair table on the
// resulting graph. Iteration follows g.Edges() order, so the rebuild is
// deterministic.
func (fs *faultState) refreshLiveness() {
	e := fs.e
	for i := range fs.deadChan {
		fs.deadChan[i] = false
	}
	var dead [][2]int
	for _, ed := range e.g.Edges() {
		u, v := ed[0], ed[1]
		if fs.linkDown[edgeKey(u, v)] || fs.deadRouter[u] || fs.deadRouter[v] {
			fs.deadChan[e.channelID(u, v)] = true
			fs.deadChan[e.channelID(v, u)] = true
			dead = append(dead, ed)
		}
	}
	if fs.repair != nil {
		fs.repair = route.NewTableInto(e.g.RemoveEdges(dead), fs.repair.Mode(), fs.repair.Slab())
	}
}

// dropInFlight drops every packet in flight toward a now-dead channel:
// the grant reserved S flits of that channel's downstream buffer, so the
// reclaim decrements occ/occSum by exactly S per packet (the
// credit-reclaim invariant), and the packet is source-retried. Serial, so
// the freed slab ids go straight back to the global free stack.
func (fs *faultState) dropInFlight(t int64) {
	e := fs.e
	st := &e.pkts
	S := int32(e.p.PacketFlits)
	vcs := int32(e.vcs)
	for i := range e.mail {
		box := e.mail[i]
		if len(box) == 0 {
			continue
		}
		kept := box[:0]
		for j := range box {
			a := box[j]
			credit := e.unitCredit[a.unit]
			c := credit / vcs
			if fs.deadChan[c] {
				e.occ[credit] -= S
				e.occSum[c] -= S
				fs.droppedInFlight++
				e.mailDropped++
				fs.scheduleRetry(t, st.srcEP[a.id], st.dstEP[a.id], st.gen[a.id], st.retries[a.id])
				st.free = append(st.free, a.id)
				continue
			}
			kept = append(kept, a)
		}
		e.mail[i] = kept
	}
}

// detour validates a freshly routed path against current liveness and,
// when it is dead (or the primary router found none), tries the repaired
// table and then the spanning-tree escape paths. ok == false means the
// packet cannot be routed right now and must be source-retried.
func (fs *faultState) detour(sh *shardState, src, dst int, path []int) ([]int, bool) {
	if fs.deadRouter[src] || fs.deadRouter[dst] {
		return nil, false
	}
	if n := len(path); n > 0 && n <= MaxPathNodes && fs.pathLiveChans(path) {
		return path, true
	}
	if fs.repairUsable() {
		sh.escBuf = fs.repair.AppendPath(sh.escBuf[:0], src, dst, sh.rng)
		if n := len(sh.escBuf); n > 0 && n <= MaxPathNodes {
			return sh.escBuf, true
		}
	}
	sh.escBuf = fs.escape.AppendPath(sh.escBuf[:0], src, dst, fs.linkLive)
	if n := len(sh.escBuf); n > 0 && n <= MaxPathNodes {
		return sh.escBuf, true
	}
	return nil, false
}

// laneFailover re-routes a queued multipath packet whose next channel
// died onto a live tree lane with a strictly higher index, in place: the
// packet keeps its buffer and credit, only the remaining route (and lane
// tag) changes. Higher-only is the deadlock-freedom condition — the new
// lane's VC band sits strictly above every VC the packet can currently
// occupy, so VC indices still strictly increase along the spliced path.
// Runs inside arbitration: it writes only packet fields owned by the
// arbitrating router's queue head and reads lane health and liveness
// written in the serial sections, so it is race-free and worker-count
// independent. Reports false when no higher live lane reaches the
// destination; the caller falls back to drop + source retry.
func (fs *faultState) laneFailover(sh *shardState, id int32, unit int32) bool {
	if fs.health == nil {
		return false
	}
	e := fs.e
	st := &e.pkts
	hop := int(st.hop[id])
	var cur int
	if hop == 0 {
		cur = e.cfg.RouterOf(int(st.srcEP[id]))
	} else {
		cur = e.g.ChannelTo(int(st.chans[int(id)*pktStride+hop-1]))
	}
	dst := e.cfg.RouterOf(int(st.dstEP[id]))
	mp := fs.health.mp
	for l2 := int(st.lane[id]) + 1; l2 <= mp.TreeLanes(); l2++ {
		if !fs.health.up[l2-1] {
			continue
		}
		sh.escBuf = mp.AppendTreePath(sh.escBuf[:0], l2-1, cur, dst, fs.linkLive)
		path := sh.escBuf
		if len(path) == 0 || len(path)-1 > pktStride {
			continue // lane's tree path is out of bound or crosses a failure
		}
		base := int(id) * pktStride
		for i := 0; i+1 < len(path); i++ {
			st.chans[base+i] = int32(e.channelID(path[i], path[i+1]))
		}
		st.nHops[id] = int8(len(path) - 1)
		st.hop[id] = 0
		st.lane[id] = int8(l2)
		if sh.met != nil && sh.met.laneFailover != nil {
			sh.met.laneFailover[l2]++
		}
		e.wake[unit] = e.now + 1
		return true
	}
	return false
}

// retryFrom journals a source retry for a packet dropped during
// arbitration (dead channel ahead, or destination router down). The
// journal is per shard; collectRetries serializes it.
func (fs *faultState) retryFrom(sh *shardState, id int32) {
	st := &fs.e.pkts
	sh.retryQ = append(sh.retryQ, retryReq{ep: st.srcEP[id], dst: st.dstEP[id], gen: st.gen[id], retries: st.retries[id]})
}

// collectRetries drains the per-shard retry journals in fixed shard
// order into the serial retry heap. Runs after commit.
func (e *Engine) collectRetries(t int64) {
	fs := e.fs
	for _, sh := range e.shards {
		for _, rq := range sh.retryQ {
			fs.scheduleRetry(t, rq.ep, rq.dst, rq.gen, rq.retries)
		}
		sh.retryQ = sh.retryQ[:0]
	}
}

// scheduleRetry books one re-injection with bounded exponential backoff,
// or charges the packet to a loss bucket when its retry budget or age
// limit is exhausted.
func (fs *faultState) scheduleRetry(t int64, ep, dst int32, gen int64, retries uint8) {
	if int(retries) >= fs.policy.MaxRetries {
		fs.lostRetries++
		return
	}
	backoff := fs.policy.BackoffBase << retries
	if backoff <= 0 || backoff > fs.policy.BackoffCap {
		backoff = fs.policy.BackoffCap
	}
	when := t + 1 + backoff
	if fs.policy.MaxAge > 0 && when-gen > fs.policy.MaxAge {
		fs.lostTimeout++
		return
	}
	fs.seq++
	fs.heapPush(retryEvent{when: when, seq: fs.seq, ep: ep, dst: dst, gen: gen, retries: retries + 1})
	fs.retried++
}

// injectRetries re-injects every retry due at cycle t as a pending
// injection on its source router's shard, with a fresh route-RNG seed
// from the descending retry counter (so retried packets re-draw their
// path — typically landing on the repaired table or an escape path).
func (e *Engine) injectRetries(t int64) {
	fs := e.fs
	for len(fs.retryHeap) > 0 && fs.retryHeap[0].when <= t {
		ev := fs.heapPop()
		sh := e.shards[e.routerShard[e.cfg.RouterOf(int(ev.ep))]]
		sh.pending = append(sh.pending, pendingInj{
			ep: ev.ep, dst: ev.dst, ctr: fs.retryCtr, gen: ev.gen, retries: ev.retries,
		})
		fs.retryCtr--
	}
}

// retryLess orders the retry heap by (when, seq): re-injections happen in
// schedule order within a cycle, independent of worker count.
func retryLess(a, b retryEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (fs *faultState) heapPush(ev retryEvent) {
	h := append(fs.retryHeap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !retryLess(h[i], h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	fs.retryHeap = h
}

func (fs *faultState) heapPop() retryEvent {
	h := fs.retryHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && retryLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && retryLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	fs.retryHeap = h
	return top
}

// watchdog ends the run early once nothing can make progress anymore: no
// packet delivered, lost or injected for well over a full
// backoff-plus-pipeline interval, with no future generation, retries or
// plan events pending. Whatever is still queued at that point is wedged
// (a disconnected network with exhausted retries) and counts as
// stranded — the run returns partial metrics instead of spinning through
// the remaining drain cycles.
func (e *Engine) watchdog(t int64) {
	fs := e.fs
	progress := e.pktCtr + fs.retried + fs.lostRetries + fs.lostTimeout + fs.droppedInFlight
	for _, sh := range e.shards {
		progress += sh.deliveredAll + sh.lostPkts
	}
	if progress != fs.lastProgress || len(e.genHeap) > 0 || len(fs.retryHeap) > 0 || fs.next < len(fs.plan.Events) {
		fs.lastProgress = progress
		fs.stuck = 0
		return
	}
	fs.stuck++
	if fs.stuck > fs.watchdogLimit() {
		fs.finishStranded(t)
	}
}

// watchdogLimit is the stuck-cycle threshold: well over a full
// backoff-plus-pipeline interval. The event-horizon advance emulates the
// watchdog against the same limit when it skips idle cycles.
func (fs *faultState) watchdogLimit() int64 {
	return int64(fs.e.ringLen) + fs.policy.BackoffCap + 64
}

// finishStranded counts every packet still sitting in a queue or mail
// ring as lost-stranded and marks the run done; Run exits its cycle loop
// at the end of this cycle.
func (fs *faultState) finishStranded(t int64) {
	e := fs.e
	for i := range e.queues {
		fs.lostStranded += int64(e.queues[i].len())
	}
	for i := range e.mail {
		fs.lostStranded += int64(len(e.mail[i]))
	}
	fs.done = true
	fs.doneAt = t
}
