package sim

import (
	"context"
	"testing"
)

// TestParamsValidate pins the untrusted-input contract: every parameter
// combination NewEngine would panic on (and the basic sanity bounds)
// must fail Validate, and the defaults must pass.
func TestParamsValidate(t *testing.T) {
	spec, err := NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config()
	if err := DefaultParams(1).Validate(cfg); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	mut := func(f func(*Params)) Params {
		p := DefaultParams(1)
		f(&p)
		return p
	}
	bad := map[string]Params{
		"zero packet flits": mut(func(p *Params) { p.PacketFlits = 0 }),
		"buffer under one packet": mut(func(p *Params) {
			p.BufFlitsPerVC = p.PacketFlits - 1
		}),
		"negative link latency": mut(func(p *Params) { p.LinkLatency = -1 }),
		"negative warmup":       mut(func(p *Params) { p.Warmup = -1 }),
		"zero measure":          mut(func(p *Params) { p.Measure = 0 }),
		"negative drain":        mut(func(p *Params) { p.Drain = -1 }),
		"calendar overflow": mut(func(p *Params) {
			p.Warmup, p.Measure, p.Drain = 1<<38, 1<<38, 1<<38
		}),
	}
	for name, p := range bad {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("%s: accepted %+v", name, p)
		}
	}
}

// TestRunPointErrors pins that RunPoint turns every invalid input into
// an error — it is the entry point the serving layer feeds with
// untrusted requests.
func TestRunPointErrors(t *testing.T) {
	spec, err := NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := RunPoint(ctx, spec, MIN, "uniform", 0, DefaultParams(1)); err == nil {
		t.Error("accepted load 0")
	}
	if _, err := RunPoint(ctx, spec, MIN, "uniform", 1.01, DefaultParams(1)); err == nil {
		t.Error("accepted load > 1")
	}
	if _, err := RunPoint(ctx, spec, MIN, "no-such-pattern", 0.1, DefaultParams(1)); err == nil {
		t.Error("accepted unknown pattern")
	}
	p := DefaultParams(1)
	p.Measure = 0
	if _, err := RunPoint(ctx, spec, MIN, "uniform", 0.1, p); err == nil {
		t.Error("accepted invalid params")
	}
	p = DefaultParams(1)
	p.Plan = &Plan{Events: []FaultEvent{{Cycle: 1, Kind: LinkDown, U: 0, V: -1}}}
	if _, err := RunPoint(ctx, spec, MIN, "uniform", 0.1, p); err == nil {
		t.Error("accepted invalid fault plan")
	}
}

// TestRunPointCancellation: a pre-cancelled context must stop the run
// with the context's error, and the engine must stay consumed (no
// leaked pool goroutines — the race detector would catch reuse).
func TestRunPointCancellation(t *testing.T) {
	spec, err := NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPoint(ctx, spec, MIN, "uniform", 0.1, DefaultParams(1)); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestRunPointMatchesSweep pins the refactor: a Sweep is exactly its
// RunPoints — the sweep path and the service path produce identical
// Results for the same tuple.
func TestRunPointMatchesSweep(t *testing.T) {
	spec, err := NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 100, 200, 300
	p.Workers = 2
	loads := []float64{0.1, 0.3}
	sweep, err := Sweep(spec, MIN, "uniform", loads, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, load := range loads {
		pp := p
		pp.Seed = p.Seed + int64(i)*7919 // the sweep's per-point seed schedule
		point, err := RunPoint(context.Background(), spec, MIN, "uniform", load, pp)
		if err != nil {
			t.Fatal(err)
		}
		if point != sweep.Points[i] {
			t.Errorf("load %g: RunPoint %+v != Sweep point %+v", load, point, sweep.Points[i])
		}
	}
}
