package sim

import "fmt"

// Structure-of-arrays packet storage. Packets used to be 48-byte structs
// copied through every queue push, mail-ring hop and forward; they are
// now a recycled int32 id into parallel field slabs, so queues and mail
// rings move 4–8 bytes per packet and arbitration touches only the
// fields it reads (hop, nHops, the next channel id) instead of dragging
// whole structs through the cache. See DESIGN.md §10.
//
// Id lifecycle (the determinism contract):
//
//   - The global free stack is touched only in the serial sections of a
//     cycle: refillIDs (before the routing phase) moves ids into
//     per-shard allocation caches, and commit drains the per-shard freed
//     journals back in fixed shard order.
//   - The routing phase allocates from its shard's cache only; the
//     arbitration phase frees into its shard's journal only. A freed id
//     is therefore never reallocated in the same cycle, and every
//     id movement is a pure function of the (worker-count-independent)
//     serial schedule.
//   - Results never depend on id values — ids are array indices, and all
//     ordering comes from the queues — but keeping the allocator
//     deterministic means memory layout (and thus any accidental
//     dependence) cannot vary with the worker count either.

// pktStride is the per-packet channel-id capacity: one slot per link of
// the longest representable path.
const pktStride = MaxPathNodes - 1

// pktStore holds every packet field as a dense parallel array indexed by
// packet id. chans is flattened at pktStride int32s per id.
type pktStore struct {
	chans   []int32 // id*pktStride + i: channel id of hop i
	nHops   []int8  // channels on the path; 0 = source == destination router
	hop     []int8  // channels already traversed; ejects at hop == nHops
	gen     []int64 // generation cycle (latency base)
	dstEP   []int32 // destination endpoint
	srcEP   []int32 // source endpoint: the re-injection point under faults
	retries []uint8 // source retries already consumed (faults only)
	lane    []int8  // routing lane: 0 = minimal band, 1.. = tree lanes (multipath only)
	measure []bool  // generated inside the measurement window

	// free is the global id stack. Serial sections only: refillIDs pops,
	// commit and the fault paths push. Capacity always equals the slab
	// capacity, so pushes never reallocate.
	free []int32
}

// cap returns the slab capacity (ids ever created).
func (st *pktStore) cap() int { return len(st.nHops) }

// grow extends the slab so at least n more ids are free, growing
// geometrically to amortize. Serial sections only.
func (st *pktStore) grow(n int) {
	if n < st.cap()/2 {
		n = st.cap() / 2
	}
	if n < 256 {
		n = 256
	}
	old := st.cap()
	st.chans = append(st.chans, make([]int32, n*pktStride)...)
	st.nHops = append(st.nHops, make([]int8, n)...)
	st.hop = append(st.hop, make([]int8, n)...)
	st.gen = append(st.gen, make([]int64, n)...)
	st.dstEP = append(st.dstEP, make([]int32, n)...)
	st.srcEP = append(st.srcEP, make([]int32, n)...)
	st.retries = append(st.retries, make([]uint8, n)...)
	st.lane = append(st.lane, make([]int8, n)...)
	st.measure = append(st.measure, make([]bool, n)...)
	free := make([]int32, len(st.free), st.cap())
	copy(free, st.free)
	// Hand out low ids first (descending push, LIFO pop) to keep the
	// working set compact.
	for id := old + n - 1; id >= old; id-- {
		free = append(free, int32(id))
	}
	st.free = free
}

// slabCheck verifies the packet-id accounting invariant: every id ever
// created is in exactly one place — the global free stack, a shard's
// allocation cache or freed journal, a queue, or a mail ring. Violations
// mean a leak (an id lost to the allocator forever) or a double-spend
// (one id live in two queues, i.e. two packets aliasing one slab slot).
// Called by the property and fuzz tests after runs, including
// terminated-early fault runs where stranded ids legitimately stay in
// queues.
func (e *Engine) slabCheck() error {
	owner := make([]string, e.pkts.cap())
	claim := func(id int32, where string) error {
		if id < 0 || int(id) >= len(owner) {
			return fmt.Errorf("sim: packet id %d outside slab [0,%d) in %s", id, len(owner), where)
		}
		if owner[id] != "" {
			return fmt.Errorf("sim: packet id %d in both %s and %s", id, owner[id], where)
		}
		owner[id] = where
		return nil
	}
	for _, id := range e.pkts.free {
		if err := claim(id, "free stack"); err != nil {
			return err
		}
	}
	for s, sh := range e.shards {
		for _, id := range sh.freeIDs {
			if err := claim(id, fmt.Sprintf("shard %d cache", s)); err != nil {
				return err
			}
		}
		for _, id := range sh.freed {
			if err := claim(id, fmt.Sprintf("shard %d freed journal", s)); err != nil {
				return err
			}
		}
	}
	for u := range e.queues {
		q := &e.queues[u]
		for _, id := range q.buf[q.head:] {
			if err := claim(id, fmt.Sprintf("queue %d", u)); err != nil {
				return err
			}
		}
	}
	for i := range e.mail {
		for _, a := range e.mail[i] {
			if err := claim(a.id, fmt.Sprintf("mail box %d", i)); err != nil {
				return err
			}
		}
	}
	for id, w := range owner {
		if w == "" {
			return fmt.Errorf("sim: packet id %d leaked (in no free list, queue or mail ring)", id)
		}
	}
	return nil
}

// pktQueue is one FIFO of packet ids (a channel/VC input buffer or an
// endpoint injection queue). pop compacts whenever the dead prefix
// reaches half the buffer: each element is copied at most once per
// residence on average (amortized O(1)) and the buffer's high-water
// capacity stays ~2× the live occupancy, so queues reach a steady state
// where push never reallocates.
type pktQueue struct {
	buf  []int32
	head int
}

func (q *pktQueue) empty() bool   { return q.head >= len(q.buf) }
func (q *pktQueue) len() int      { return len(q.buf) - q.head }
func (q *pktQueue) front() int32  { return q.buf[q.head] }
func (q *pktQueue) push(id int32) { q.buf = append(q.buf, id) }

func (q *pktQueue) pop() {
	q.head++
	if q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// bitset is a dense uint64 bit vector: the word-at-a-time replacement
// for []bool unit flags. Units are numbered router-major with each
// shard's block padded to a 64-bit boundary (see NewEngine), so two
// shards never write the same word concurrently — the same ownership
// argument that makes the byte-per-unit version race-free, kept at 8×
// the density.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint32(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint32(i) & 63) }
