package sim

import (
	"sync"
	"sync/atomic"
)

// Phases of one cycle, dispatched to the worker pool.
const (
	phaseRoute = iota
	phaseArbitrate
)

// workerPool drives the parallel phases of stepCycle. Shards — not
// cycles or routers — are the unit of work: workers claim shard indices
// from an atomic counter, and because every shard's phase touches only
// shard-owned state, the claim order cannot influence the results. With
// a single worker the pool degenerates to a plain loop over the shards
// (no goroutines, no atomics, no allocations): the serial reference
// path runs the exact same per-shard code.
type workerPool struct {
	e       *Engine
	started bool
	work    chan int
	wg      sync.WaitGroup
	next    atomic.Int32
}

func (p *workerPool) start(e *Engine) { p.e = e }

// run executes one phase over all shards and returns when every shard is
// done (the inter-phase barrier). Worker goroutines are spawned lazily
// on the first parallel phase, so engines that are built but never run
// in parallel cost nothing.
func (p *workerPool) run(phase int) {
	e := p.e
	if e.workers <= 1 {
		for s := 0; s < numShards; s++ {
			e.doShard(phase, s)
		}
		return
	}
	if !p.started {
		p.started = true
		p.work = make(chan int)
		for i := 0; i < e.workers-1; i++ {
			go func() {
				for ph := range p.work {
					p.claim(ph)
					p.wg.Done()
				}
			}()
		}
	}
	p.next.Store(0)
	p.wg.Add(e.workers - 1)
	for i := 0; i < e.workers-1; i++ {
		p.work <- phase
	}
	p.claim(phase) // the caller participates
	p.wg.Wait()
}

func (p *workerPool) claim(phase int) {
	for {
		s := int(p.next.Add(1)) - 1
		if s >= numShards {
			return
		}
		p.e.doShard(phase, s)
	}
}

func (p *workerPool) stop() {
	if p.started {
		close(p.work)
		p.started = false
	}
}

func (e *Engine) doShard(phase, s int) {
	switch phase {
	case phaseRoute:
		e.routeShard(e.shards[s])
	default:
		e.arbitrateShard(e.shards[s], s)
	}
}

// splitmix is a splitmix64 rand.Source64 that can be re-seeded per
// packet for a few nanoseconds (math/rand's Seed rebuilds a 607-entry
// lagged-Fibonacci table). Seeding from (run seed, global injection
// counter) makes every packet's routing draw stream a pure function of
// the packet, independent of which shard or worker routes it — the key
// to bit-identical parallel runs.
type splitmix struct{ x uint64 }

func (s *splitmix) seed(runSeed, pktCtr int64) {
	s.x = uint64(runSeed)*0x9E3779B97F4A7C15 ^ uint64(pktCtr)*0xBF58476D1CE4E5B9
}

func (s *splitmix) Uint64() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.x = uint64(seed) }
