package sim

import "testing"

// BenchmarkSimCyclePSIQSmall measures whole simulated runs of the small
// PolarStar at moderate load (throughput of the simulator itself).
func BenchmarkSimRunPSIQSmall(b *testing.B) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		pattern, _ := spec.Pattern("uniform", p.Seed)
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		eng.Run(0.4)
	}
}

// BenchmarkSweep measures a whole latency-load sweep on the small
// PolarStar — the CI smoke for the two-level (load × shard) parallelism.
func BenchmarkSweep(b *testing.B) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	loads := []float64{0.1, 0.3, 0.5}
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := Sweep(spec, UGALMode, "uniform", loads, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpecConstruction(b *testing.B) {
	for _, name := range []string{"ps-iq-small", "df-small", "ft-small"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MustNewSpec(name)
			}
		})
	}
}
