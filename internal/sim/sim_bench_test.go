package sim

import "testing"

// BenchmarkSimCyclePSIQSmall measures whole simulated runs of the small
// PolarStar at moderate load (throughput of the simulator itself).
func BenchmarkSimRunPSIQSmall(b *testing.B) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		pattern, _ := spec.Pattern("uniform", p.Seed)
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		eng.Run(0.4)
	}
}

// BenchmarkSweep measures a whole latency-load sweep on the small
// PolarStar — the CI smoke for the two-level (load × shard) parallelism.
func BenchmarkSweep(b *testing.B) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	loads := []float64{0.1, 0.3, 0.5}
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := Sweep(spec, UGALMode, "uniform", loads, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycleSoA measures one steady-state busy cycle of the SoA
// engine in isolation (no warmup, no spec construction): the direct
// counterpart of the whole-run BenchmarkSweep for before/after engine
// comparisons (results/perf/simrun-pr6.txt).
func BenchmarkCycleSoA(b *testing.B) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 1 << 30, 1 << 30, 0 // generation never stops
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pattern)
	eng.initGeneration(0.4 / float64(p.PacketFlits))
	var t int64
	for ; t < 3000; t++ { // reach queue/ring steady state
		eng.stepCycle(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.stepCycle(t)
		t++
	}
	var pkts int64
	for _, sh := range eng.shards {
		pkts += sh.deliveredAll
	}
	b.ReportMetric(float64(pkts)/float64(t), "pkts/cycle")
}

func BenchmarkSpecConstruction(b *testing.B) {
	for _, name := range []string{"ps-iq-small", "df-small", "ft-small"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MustNewSpec(name)
			}
		})
	}
}
