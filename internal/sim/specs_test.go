package sim

import (
	"math/rand"
	"testing"

	"polarstar/internal/route"
	"polarstar/internal/topo"
)

// TestTable3Configurations verifies that the paper-scale specs reproduce
// the §9.1 Table 3 rows: router counts, network radix and endpoint
// counts (see EXPERIMENTS.md E6 for the PS-Pal 993→949 note).
func TestTable3Configurations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name      string
		routers   int
		radix     int // switch-to-switch ports (max degree)
		endpoints int
	}{
		{"ps-iq", 1064, 15, 5320},
		{"ps-pal", 949, 15, 4745}, // paper prints 993/4965; see E6 note
		{"bf", 882, 15, 4410},
		{"hx", 648, 23, 5184},
		{"df", 876, 17, 5256},
		{"sf", 1092, 24, 8736},
		{"mf", 1040, 16, 4160},
		{"ft", 972, 36, 5832},
	}
	for _, c := range cases {
		spec, err := NewSpec(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if spec.Graph.N() != c.routers {
			t.Errorf("%s routers = %d, want %d", c.name, spec.Graph.N(), c.routers)
		}
		if got := spec.Graph.MaxDegree(); got > c.radix {
			t.Errorf("%s max switch degree = %d, want <= %d", c.name, got, c.radix)
		}
		if spec.Endpoints() != c.endpoints {
			t.Errorf("%s endpoints = %d, want %d", c.name, spec.Endpoints(), c.endpoints)
		}
	}
	// Fat-tree radix: 2p total ports on middle routers (18 up + 18 down).
	ft := MustNewSpec("ft")
	if ft.Graph.MaxDegree() != 36 {
		t.Errorf("ft max degree = %d, want 36", ft.Graph.MaxDegree())
	}
}

func TestNewSpecUnknown(t *testing.T) {
	if _, err := NewSpec("nope"); err == nil {
		t.Error("unknown spec should error")
	}
}

func TestSpecDiametersAtMost3ForDirectDiam3Topologies(t *testing.T) {
	for _, name := range []string{"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small"} {
		spec := MustNewSpec(name)
		if d := spec.Graph.Diameter(); d > int32(spec.MinHops) {
			t.Errorf("%s diameter %d exceeds MinHops %d", name, d, spec.MinHops)
		}
	}
}

// TestDegradedSpecSimulates runs traffic on a PolarStar with 10% of its
// links removed: an extension experiment combining the §11.2 fault model
// with the §9 simulator. While the network stays connected, everything
// must still be delivered (over longer paths).
func TestDegradedSpecSimulates(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	edges := spec.Graph.Edges()
	rng := rand.New(rand.NewSource(21))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	removed := edges[:len(edges)/10]
	deg := spec.Degraded(removed)
	if deg.Graph.M() != spec.Graph.M()-len(removed) {
		t.Fatalf("degraded edges = %d", deg.Graph.M())
	}
	if !deg.Graph.IsConnected() {
		t.Fatal("test premise broken: degraded network disconnected")
	}
	p := testParams(21)
	p.Warmup, p.Measure, p.Drain = 300, 600, 3000
	pattern, err := deg.Pattern("uniform", 21)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, deg.Graph, deg.Config(), deg.MinRouting(), pattern)
	res := eng.Run(0.1)
	if res.DeliveredFrac < 0.99 {
		t.Errorf("degraded delivery %.3f", res.DeliveredFrac)
	}
}

// TestDegradedIntoReusesSlab: rebuilding routing tables across repeated
// degradations through DegradedInto must give exactly the same tables as
// fresh construction — while reusing one n×n distance slab.
func TestDegradedIntoReusesSlab(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	edges := spec.Graph.Edges()
	rng := rand.New(rand.NewSource(33))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	var slab []uint8
	var prevSlab *uint8
	for _, k := range []int{10, 40, 80} {
		deg := spec.DegradedInto(edges[:k], slab)
		fresh := spec.Degraded(edges[:k])
		for src := 0; src < spec.Graph.N(); src += 17 {
			for dst := 0; dst < spec.Graph.N(); dst += 13 {
				if a, b := deg.MinEngine.Dist(src, dst), fresh.MinEngine.Dist(src, dst); a != b {
					t.Fatalf("k=%d: dist(%d,%d) = %d with reused slab, %d fresh", k, src, dst, a, b)
				}
			}
		}
		slab = deg.TableSlab()
		if slab == nil {
			t.Fatal("degraded spec did not expose a table slab")
		}
		if prevSlab != nil && &slab[0] != prevSlab {
			t.Error("slab was reallocated across degradations")
		}
		prevSlab = &slab[0]
	}
}

// TestDiameter2ExtensionSpecs: the PolarFly and SlimFly diameter-2
// extension specs simulate correctly.
func TestDiameter2ExtensionSpecs(t *testing.T) {
	for _, name := range []string{"pf-small", "slimfly-small"} {
		spec := MustNewSpec(name)
		if d := spec.Graph.Diameter(); d != 2 {
			t.Errorf("%s diameter = %d, want 2", name, d)
		}
		p := testParams(22)
		p.Warmup, p.Measure, p.Drain = 200, 400, 1500
		pattern, _ := spec.Pattern("uniform", 22)
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		if res := eng.Run(0.1); res.DeliveredFrac < 0.99 {
			t.Errorf("%s delivery %.3f", name, res.DeliveredFrac)
		}
	}
}

// TestBundleflySingleVsMultiMinpath reproduces the §9.3 observation that
// Bundlefly benefits from all-minpath tables: under permutation traffic
// (persistent flows) at load 0.5, per-packet multipath sampling delivers
// lower latency than the deterministic single analytic minpath.
func TestBundleflySingleVsMultiMinpath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bf := topo.MustNewBundlefly(5, 2)
	mk := func(engine route.Engine, name string) *Spec {
		return &Spec{
			Name: name, Graph: bf.G, PerRouter: 2,
			NumGroups: bf.NumGroups(), GroupOf: bf.GroupOf,
			MinEngine: engine, MinHops: 3,
		}
	}
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 1500, 3000, 5000
	lat := func(s *Spec) float64 {
		res, err := Sweep(s, MIN, "permutation", []float64{0.5}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Points[0].AvgLatency
	}
	single := lat(mk(route.NewBundlefly(bf), "bf-single"))
	multi := lat(mk(route.NewTable(bf.G, route.AllMinPaths), "bf-multi"))
	if multi >= single {
		t.Errorf("multipath latency %.1f not below single-minpath %.1f", multi, single)
	}
}
