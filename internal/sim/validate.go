package sim

import (
	"fmt"

	"polarstar/internal/graph"
	"polarstar/internal/traffic"
)

// Validate reports whether the parameters describe a runnable
// experiment on a topology with cfg's endpoint count. It covers every
// condition NewEngine would otherwise panic on (calendar overflow) plus
// the basic sanity bounds, so callers fed from untrusted input — the
// facade and the serving layer — can reject a request with an error
// before any construction work happens.
func (p Params) Validate(cfg traffic.Config) error {
	if p.PacketFlits < 1 {
		return fmt.Errorf("sim: PacketFlits must be >= 1, got %d", p.PacketFlits)
	}
	if p.BufFlitsPerVC < p.PacketFlits {
		return fmt.Errorf("sim: BufFlitsPerVC (%d) must hold at least one packet (%d flits)", p.BufFlitsPerVC, p.PacketFlits)
	}
	if p.LinkLatency < 0 {
		return fmt.Errorf("sim: LinkLatency must be >= 0, got %d", p.LinkLatency)
	}
	if p.Warmup < 0 || p.Measure < 1 || p.Drain < 0 {
		return fmt.Errorf("sim: cycle windows must satisfy Warmup >= 0, Measure >= 1, Drain >= 0; got %d/%d/%d",
			p.Warmup, p.Measure, p.Drain)
	}
	if total := int64(p.Warmup) + int64(p.Measure) + int64(p.Drain); total >= maxCycle {
		return fmt.Errorf("sim: %d total cycles overflow the generation calendar's packed cycle field (max %d)",
			total, maxCycle-1)
	}
	if eps := cfg.Endpoints(); eps >= maxEndpoint {
		return fmt.Errorf("sim: %d endpoints overflow the generation calendar's %d-bit endpoint field (max %d)",
			eps, epBits, maxEndpoint-1)
	}
	if p.Lanes < 0 || p.Lanes > 8 {
		return fmt.Errorf("sim: Lanes must be in [0, 8] (0: default), got %d", p.Lanes)
	}
	if p.RepairDelay < 0 {
		return fmt.Errorf("sim: RepairDelay must be >= 0 (0: instant repair), got %d", p.RepairDelay)
	}
	return nil
}

// CheckReachable verifies that the traffic pattern only addresses
// endpoint pairs whose routers are connected in g, so a sweep on a
// disconnected spec fails fast with a descriptive error instead of
// silently injecting packets that can only be counted lost. Fixed
// patterns (permutation, bit patterns, adversarial) are checked pair by
// pair; random patterns address every host pair eventually, so all
// hosting routers must share one component.
//
// Degraded-topology sweeps (faults.TrafficSweep past the intact point,
// engines under an active fault plan) deliberately skip this check —
// losing packets on severed pairs is the experiment there.
func CheckReachable(g *graph.Graph, cfg traffic.Config, pattern traffic.Pattern) error {
	comp := components(g)
	if fp, ok := pattern.(traffic.FixedPattern); ok {
		for src := 0; src < cfg.Endpoints(); src++ {
			dst := fp.FixedDest(src)
			if dst < 0 {
				continue
			}
			sr, dr := cfg.RouterOf(src), cfg.RouterOf(dst)
			if comp[sr] != comp[dr] {
				return fmt.Errorf("sim: pattern %q sends endpoint %d (router %d) to endpoint %d (router %d), which is unreachable in %s",
					pattern.Name(), src, sr, dst, dr, g.Name())
			}
		}
		return nil
	}
	firstHost := -1
	for h := 0; h < cfg.NumHosts(); h++ {
		r := cfg.RouterOf(h * cfg.PerRouter)
		if firstHost < 0 {
			firstHost = r
			continue
		}
		if comp[r] != comp[firstHost] {
			return fmt.Errorf("sim: pattern %q addresses all host pairs, but routers %d and %d are in different components of %s",
				pattern.Name(), firstHost, r, g.Name())
		}
	}
	return nil
}

// components labels the connected components of g by BFS.
func components(g *graph.Graph) []int32 {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue, int32(s))
		for head := len(queue) - 1; head < len(queue); head++ {
			for _, w := range g.Neighbors(int(queue[head])) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp
}
