package sim

import (
	"strings"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	text := "# a comment\n10 link-down 0 1\n\n5 router-down 2\n20 link-up 0 1\n30 router-up 2\n"
	p, err := ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() || len(p.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(p.Events))
	}
	want := "5 router-down 2\n10 link-down 0 1\n20 link-up 0 1\n30 router-up 2\n"
	if got := p.String(); got != want {
		t.Errorf("canonical form:\n%s\nwant:\n%s", got, want)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Hash() != p.Hash() {
		t.Error("round-tripped plan hashes differently")
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Error("nil/zero plans should be empty")
	}
	if nilPlan.Hash() != (&Plan{}).Hash() {
		t.Error("nil and zero plans should hash equal")
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"x link-down 0 1",    // bad cycle
		"-5 link-down 0 1",   // negative cycle
		"10 frob 1 2",        // unknown kind
		"10 link-down 0",     // missing vertex
		"10 router-down 1 2", // extra vertex
		"10 link-down a b",   // bad vertex
		"10 router-down",     // too few fields
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("ParsePlan(%q) error %v does not name the line", bad, err)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	g := MustNewSpec("ps-iq-small").Graph
	e := g.Edges()[0]
	good := &Plan{Events: []FaultEvent{
		{Cycle: 10, Kind: LinkDown, U: e[0], V: e[1]},
		{Cycle: 20, Kind: RouterDown, U: 0},
	}}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []*Plan{
		{Events: []FaultEvent{{Cycle: -1, Kind: LinkDown, U: e[0], V: e[1]}}},
		{Events: []FaultEvent{{Cycle: 1, Kind: LinkDown, U: 0, V: 0}}},     // self loop: not an edge
		{Events: []FaultEvent{{Cycle: 1, Kind: LinkDown, U: 0, V: g.N()}}}, // out of range
		{Events: []FaultEvent{{Cycle: 1, Kind: RouterDown, U: g.N()}}},     // out of range
		{Events: []FaultEvent{{Cycle: 1, Kind: EventKind(9), U: 0}}},       // unknown kind
	}
	for i, p := range bad {
		if err := p.Validate(g); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	g := MustNewSpec("ps-iq-small").Graph
	a := RandomPlan(g, 50, 100, 2000, 9)
	b := RandomPlan(g, 50, 100, 2000, 9)
	if a.Empty() {
		t.Fatal("mtbf 50 over 2000 cycles produced no failures")
	}
	if a.Hash() != b.Hash() {
		t.Error("same seed produced different plans")
	}
	if c := RandomPlan(g, 50, 100, 2000, 10); c.Hash() == a.Hash() {
		t.Error("different seeds produced identical plans")
	}
	if err := a.Validate(g); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Cycle < a.Events[i-1].Cycle {
			t.Fatal("generated plan not sorted by cycle")
		}
	}
	// Every failure is paired with a repair exactly `repair` cycles later.
	downs, ups := 0, 0
	for _, ev := range a.Events {
		switch ev.Kind {
		case LinkDown:
			downs++
		case LinkUp:
			ups++
		}
	}
	if downs == 0 || downs != ups {
		t.Errorf("MTBF/MTTR plan has %d downs, %d ups", downs, ups)
	}
}

func TestRetryPolicyNormalized(t *testing.T) {
	if got := (RetryPolicy{}).normalized(); got != DefaultRetryPolicy() {
		t.Errorf("zero policy normalized to %+v", got)
	}
	got := RetryPolicy{MaxRetries: -1, BackoffBase: 0, BackoffCap: -5, MaxAge: 7}.normalized()
	if got.MaxRetries != 0 || got.BackoffBase != 1 || got.BackoffCap != 1 || got.MaxAge != 7 {
		t.Errorf("degenerate policy normalized to %+v", got)
	}
}
