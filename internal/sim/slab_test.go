package sim

import (
	"testing"

	"polarstar/internal/obs"
)

// slabLive counts ids currently outside the allocator (queued or in
// flight): slab capacity minus every free-list entry.
func slabLive(e *Engine) int {
	free := len(e.pkts.free)
	for _, sh := range e.shards {
		free += len(sh.freeIDs) + len(sh.freed)
	}
	return e.pkts.cap() - free
}

// slabExpectedLive is what slabLive must equal after a run: the reported
// queue backlog plus packets caught mid-link in the mail rings when the
// horizon (or the watchdog) cut the run off.
func slabExpectedLive(e *Engine, res Result) int {
	inFlight := 0
	for i := range e.mail {
		inFlight += len(e.mail[i])
	}
	return res.Backlog + inFlight
}

// slabRun drives one short ps-iq-small run and returns the engine for
// post-run slab inspection.
func slabRun(t *testing.T, workers int, load float64, plan *Plan, retry RetryPolicy) (*Engine, Result) {
	t.Helper()
	spec := fuzzSpec("ps-iq-small")
	p := DefaultParams(11)
	p.Warmup, p.Measure, p.Drain = 300, 600, 1500
	p.Workers = workers
	p.Plan = plan
	p.Retry = retry
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pattern)
	res := runGuarded(t, eng, load)
	return eng, res
}

// TestSlabInvariantAfterRun pins the allocator contract of the SoA
// packet store: after any run, every id ever created is accounted for
// exactly once (no leaks, no id live in two queues), and a fully drained
// healthy run returns every id to the allocator (allocated − freed == 0).
func TestSlabInvariantAfterRun(t *testing.T) {
	cases := []struct {
		name  string
		load  float64
		plan  *Plan
		retry RetryPolicy
	}{
		{name: "healthy-low", load: 0.2},
		{name: "healthy-saturated", load: 0.9},
		{name: "faulty", load: 0.3, plan: &Plan{Events: []FaultEvent{
			{Cycle: 350, Kind: LinkDown, U: 0, V: 1},
			{Cycle: 500, Kind: RouterDown, U: 5},
			{Cycle: 700, Kind: LinkUp, U: 0, V: 1},
		}}},
		{name: "terminated-early", load: 0.3,
			plan:  &Plan{Events: []FaultEvent{{Cycle: 50, Kind: RouterDown, U: 3}}},
			retry: RetryPolicy{MaxRetries: 3, BackoffBase: 4, BackoffCap: 64, MaxAge: 1500}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4} {
				eng, res := slabRun(t, workers, c.load, c.plan, c.retry)
				if err := eng.slabCheck(); err != nil {
					t.Fatalf("workers=%d: %v (result %+v)", workers, err, res)
				}
				// A drained healthy run must hand every id back; stranded,
				// backlogged or mid-link packets legitimately keep theirs.
				if live, want := slabLive(eng), slabExpectedLive(eng, res); live != want {
					t.Errorf("workers=%d: %d live ids, want %d (result %+v)",
						workers, live, want, res)
				}
			}
		})
	}
}

// FuzzSlabInvariants fuzzes the slab allocator the way FuzzRoutePaths
// fuzzes the routers: arbitrary load, worker count, seed and fault-plan
// shape, asserting the accounting invariant after every run.
func FuzzSlabInvariants(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), false, uint16(100), uint8(3))
	f.Add(int64(7), uint8(9), uint8(1), true, uint16(60), uint8(0))
	f.Add(int64(42), uint8(5), uint8(16), true, uint16(400), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, loadB, workersB uint8, faulty bool, faultCycle uint16, faultRouter uint8) {
		spec := fuzzSpec("ps-iq-small")
		p := DefaultParams(seed)
		p.Warmup, p.Measure, p.Drain = 200, 400, 1200
		p.Workers = int(workersB % 17)
		p.Metrics = &obs.SimRun{}
		p.MetricsInterval = 64
		if faulty {
			r := int(faultRouter) % spec.Graph.N()
			p.Plan = &Plan{Events: []FaultEvent{
				{Cycle: int64(faultCycle), Kind: RouterDown, U: r},
				{Cycle: int64(faultCycle) + 200, Kind: RouterUp, U: r},
			}}
			p.Retry = RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffCap: 32, MaxAge: 900}
		}
		load := 0.05 + float64(loadB%10)*0.1
		pattern, err := spec.Pattern("uniform", p.Seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		res := eng.Run(load)
		if err := eng.slabCheck(); err != nil {
			t.Fatalf("%v (result %+v)", err, res)
		}
		if live, want := slabLive(eng), slabExpectedLive(eng, res); live != want {
			t.Errorf("%d live ids, want %d (result %+v)", live, want, res)
		}
	})
}

// TestGenHeapPackingGuards pins the construction-time validation of the
// generation calendar's packed (cycle<<epBits | endpoint) events: a spec
// with too many endpoints, or a run longer than the packed cycle field,
// must panic with a descriptive error instead of silently corrupting the
// heap order.
func TestGenHeapPackingGuards(t *testing.T) {
	spec := fuzzSpec("ps-iq-small")
	mustPanic := func(name string, p Params, perRouter int) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("NewEngine accepted an overflowing configuration")
				}
			}()
			cfg := spec.Config()
			if perRouter > 0 {
				cfg.PerRouter = perRouter
			}
			pattern, err := spec.Pattern("uniform", 1)
			if err != nil {
				t.Fatal(err)
			}
			NewEngine(p, spec.Graph, cfg, spec.MinRouting(), pattern)
		})
	}
	p := DefaultParams(1)
	mustPanic("endpoints", p, maxEndpoint/spec.Graph.N()+1)
	long := DefaultParams(1)
	long.Warmup, long.Measure, long.Drain = int(maxCycle/2), int(maxCycle/2), 0
	mustPanic("cycles", long, 0)
}
