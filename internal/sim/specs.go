package sim

import (
	"fmt"
	"sort"

	"polarstar/internal/graph"
	"polarstar/internal/route"
	"polarstar/internal/topo"
	"polarstar/internal/traffic"
)

// Spec bundles everything the experiment harness needs to simulate one
// topology: the switch graph, endpoint arrangement, grouping, minimal
// routing engine and path-length bounds.
type Spec struct {
	Name      string
	Graph     *graph.Graph
	PerRouter int   // endpoints per hosting switch
	Hosts     []int // endpoint-hosting switches (nil: all)
	NumGroups int
	GroupOf   func(int) int
	MinEngine route.Engine
	MinHops   int   // max hops of a minimal path between hosts
	UGALMids  []int // Valiant intermediates (nil: all switches)
}

// Config returns the endpoint arrangement of the spec.
func (s *Spec) Config() traffic.Config {
	return traffic.Config{Routers: s.Graph.N(), PerRouter: s.PerRouter, Hosts: s.Hosts}
}

// Endpoints returns the endpoint count.
func (s *Spec) Endpoints() int { return s.Config().Endpoints() }

// Pattern builds a named traffic pattern for this spec.
func (s *Spec) Pattern(name string, seed int64) (traffic.Pattern, error) {
	return traffic.ByName(name, s.Config(), s.NumGroups, s.GroupOf, s.MinEngine.Dist, seed)
}

// MinRouting returns the §9.3 MIN routing adapter.
func (s *Spec) MinRouting() Routing {
	return Min{Engine: s.MinEngine, Hops: s.MinHops}
}

// UGALRouting returns the §9.3 UGAL-L adapter with the paper's 4 sampled
// Valiant intermediates.
func (s *Spec) UGALRouting(pktFlits int) Routing {
	return &UGAL{
		Min:     s.MinEngine,
		Mids:    s.UGALMids,
		N:       s.Graph.N(),
		Samples: 4,
		Hops:    2 * s.MinHops,
		PktSize: pktFlits,
	}
}

// UGALGRouting returns the idealized global-information UGAL-G variant
// (ablation; not a paper configuration).
func (s *Spec) UGALGRouting(pktFlits int) Routing {
	u := s.UGALRouting(pktFlits).(*UGAL)
	u.Global = true
	return u
}

// laneTreeSeed fixes the spanning-tree extraction seed: the lane
// structure is a function of the topology alone, identical across load
// points and sweeps (Params.Seed varies per point, and lanes that shift
// with it would make curves incomparable).
const laneTreeSeed = 1

// MultiPathRouting returns the k-lane multipath adapter: base (MIN or
// UGAL) as lane 0 plus `lanes` edge-disjoint spanning-tree lanes (0
// selects the default of 3; the extractor may find fewer on sparse
// topologies). Tree paths are capped at the engine's packet path stride
// so every lane path fits the slab.
func (s *Spec) MultiPathRouting(base Routing, lanes, pktFlits int) (Routing, error) {
	if lanes == 0 {
		lanes = 3
	}
	mp, err := route.NewMultiPath(s.Graph, s.MinEngine, lanes, pktStride, laneTreeSeed)
	if err != nil {
		return nil, fmt.Errorf("sim: spec %s: %w", s.Name, err)
	}
	return &MultiPathRouting{Base: base, MP: mp, PktSize: pktFlits}, nil
}

// Table3Names lists the §9.1 simulated configurations.
var Table3Names = []string{"ps-iq", "ps-pal", "bf", "hx", "df", "sf", "mf", "ft"}

// specRegistry maps every constructible spec name to its builder.
// NewSpec, KnownSpec and SpecNames share it, so a serving layer can
// validate a requested name cheaply — without constructing the topology
// — before admitting the request.
var specRegistry = map[string]func(name string) (*Spec, error){
	// 1064 routers, radix 15, p=5
	"ps-iq":       func(n string) (*Spec, error) { return polarStarSpec(n, 11, 3, topo.KindIQ, 5) },
	"ps-iq-small": func(n string) (*Spec, error) { return polarStarSpec(n, 5, 4, topo.KindIQ, 3) },
	// PSIQ(4,3): 168 routers, radix 8 — the resilience-sweep testbed
	// (small enough for dense fault plans, rich enough for 3 EDST lanes)
	"ps-iq-43": func(n string) (*Spec, error) { return polarStarSpec(n, 4, 3, topo.KindIQ, 3) },
	// PSIQ(23,11): 13272 routers, radix 35 — the §7 "largest diameter-3
	// network" point, beyond the paper's simulations
	"ps-iq-large": func(n string) (*Spec, error) { return polarStarSpec(n, 23, 11, topo.KindIQ, 11) },
	// q=8, d'=6: 949 routers (see EXPERIMENTS.md E6 note)
	"ps-pal":       func(n string) (*Spec, error) { return polarStarSpec(n, 8, 6, topo.KindPaley, 5) },
	"ps-pal-small": func(n string) (*Spec, error) { return polarStarSpec(n, 5, 4, topo.KindPaley, 3) },
	// 882 routers, radix 15, p=5
	"bf":       func(n string) (*Spec, error) { return bundleflySpec(n, 7, 4, 5) },
	"bf-small": func(n string) (*Spec, error) { return bundleflySpec(n, 5, 2, 3) },
	// 648 routers, radix 23, p=8
	"hx":       func(n string) (*Spec, error) { return hyperXSpec(n, []int{9, 9, 8}, 8) },
	"hx-small": func(n string) (*Spec, error) { return hyperXSpec(n, []int{4, 4, 4}, 3) },
	// 876 routers, radix 17, p=6
	"df":       func(n string) (*Spec, error) { return dragonflySpec(n, 12, 6, 6) },
	"df-small": func(n string) (*Spec, error) { return dragonflySpec(n, 6, 3, 3) },
	// LPS(23,13): 1092 routers, radix 24, p=8
	"sf": func(n string) (*Spec, error) { return lpsSpec(n, 23, 13, 8) },
	// PGL(2,5): 120 routers, radix 14
	"sf-small": func(n string) (*Spec, error) { return lpsSpec(n, 13, 5, 3) },
	// 1040 routers, radix 16, p=8 on leaves
	"mf":       func(n string) (*Spec, error) { return megaflySpec(n, 8, 16, 8) },
	"mf-small": func(n string) (*Spec, error) { return megaflySpec(n, 3, 6, 3) },
	// 972 routers, radix 36, p=18 on leaves
	"ft":       func(n string) (*Spec, error) { return fatTreeSpec(n, 18) },
	"ft-small": func(n string) (*Spec, error) { return fatTreeSpec(n, 5) },
	// PolarFly: diameter-2 ER_31 network (992 routers, radix 32)
	"pf":       func(n string) (*Spec, error) { return polarFlySpec(n, 31, 10) },
	"pf-small": func(n string) (*Spec, error) { return polarFlySpec(n, 7, 3) },
	// SlimFly: diameter-2 MMS(19) network (722 routers, radix 29)
	"slimfly":       func(n string) (*Spec, error) { return slimFlySpec(n, 19, 9) },
	"slimfly-small": func(n string) (*Spec, error) { return slimFlySpec(n, 5, 2) },
}

// NewSpec constructs a named topology spec. The Table 3 configurations
// ("ps-iq", "ps-pal", "bf", "hx", "df", "sf", "mf", "ft") use the paper's
// parameters; the "-small" variants are scaled-down versions of the same
// construction for fast tests and default benchmarks.
func NewSpec(name string) (*Spec, error) {
	if build, ok := specRegistry[name]; ok {
		return build(name)
	}
	return nil, fmt.Errorf("sim: unknown spec %q", name)
}

// KnownSpec reports whether name is a constructible spec, without
// building it.
func KnownSpec(name string) bool {
	_, ok := specRegistry[name]
	return ok
}

// SpecNames returns every constructible spec name, sorted.
func SpecNames() []string {
	names := make([]string, 0, len(specRegistry))
	for n := range specRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MustNewSpec is NewSpec but panics on error.
func MustNewSpec(name string) *Spec {
	s, err := NewSpec(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Degraded returns a copy of the spec running on a graph with the given
// links removed, re-routed with an all-pairs table (the analytic routers
// assume the intact topology). Endpoints on disconnected routers keep
// injecting; their packets are the casualties the experiment measures,
// so callers should remove few enough links to keep hosts connected —
// or accept DeliveredFrac < 1.
func (s *Spec) Degraded(removed [][2]int) *Spec {
	return s.DegradedInto(removed, nil)
}

// DegradedInto is Degraded reusing slab as the routing-table backing (see
// route.NewTableInto). Sweeps that degrade the same spec repeatedly pass
// the previous degraded spec's TableSlab to avoid reallocating the n×n
// distance table on every trial.
func (s *Spec) DegradedInto(removed [][2]int, slab []uint8) *Spec {
	g := s.Graph.RemoveEdges(removed)
	tab := route.NewTableInto(g, route.AllMinPaths, slab)
	// The exact path-length bound of the degraded network: its largest
	// component's diameter (link failures stretch paths well beyond the
	// intact diameter, and a guessed bound either wastes VCs or panics
	// the engine's VC allocator).
	d := tab.MaxDist()
	if d < 1 {
		d = 1
	}
	return &Spec{
		Name:      s.Name + "-degraded",
		Graph:     g,
		PerRouter: s.PerRouter,
		Hosts:     s.Hosts,
		NumGroups: s.NumGroups,
		GroupOf:   s.GroupOf,
		MinEngine: tab,
		MinHops:   d,
		UGALMids:  s.UGALMids,
	}
}

// TableSlab returns the distance-table backing of a table-routed spec for
// reuse via DegradedInto, or nil when the spec routes analytically.
func (s *Spec) TableSlab() []uint8 {
	if t, ok := s.MinEngine.(*route.Table); ok {
		return t.Slab()
	}
	return nil
}

func polarStarSpec(name string, q, dPrime int, kind topo.SupernodeKind, p int) (*Spec, error) {
	ps, err := topo.NewPolarStar(q, dPrime, kind)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      name,
		Graph:     ps.G,
		PerRouter: p,
		NumGroups: ps.NumGroups(),
		GroupOf:   ps.GroupOf,
		MinEngine: route.NewPolarStar(ps),
		MinHops:   3,
	}, nil
}

func bundleflySpec(name string, q, dPrime, p int) (*Spec, error) {
	bf, err := topo.NewBundlefly(q, dPrime)
	if err != nil {
		return nil, err
	}
	// §9.3: Bundlefly stores all minpaths in routing tables.
	return &Spec{
		Name:      name,
		Graph:     bf.G,
		PerRouter: p,
		NumGroups: bf.NumGroups(),
		GroupOf:   bf.GroupOf,
		MinEngine: route.NewTable(bf.G, route.AllMinPaths),
		MinHops:   3,
	}, nil
}

func hyperXSpec(name string, dims []int, p int) (*Spec, error) {
	hx, err := topo.NewHyperX(dims...)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      name,
		Graph:     hx.G,
		PerRouter: p,
		NumGroups: hx.NumGroups(),
		GroupOf:   hx.GroupOf,
		MinEngine: route.NewHyperX(hx),
		MinHops:   len(dims),
	}, nil
}

func dragonflySpec(name string, a, h, p int) (*Spec, error) {
	df, err := topo.NewDragonfly(a, h)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      name,
		Graph:     df.G,
		PerRouter: p,
		NumGroups: df.NumGroups(),
		GroupOf:   df.GroupOf,
		MinEngine: route.NewDragonfly(df),
		MinHops:   3,
	}, nil
}

func lpsSpec(name string, pp, q, p int) (*Spec, error) {
	l, err := topo.NewLPS(pp, q)
	if err != nil {
		return nil, err
	}
	// §9.3: Spectralfly stores all minpaths in routing tables.
	d := int(l.G.Diameter())
	return &Spec{
		Name:      name,
		Graph:     l.G,
		PerRouter: p,
		NumGroups: l.G.N(),
		GroupOf:   func(v int) int { return v },
		MinEngine: route.NewTable(l.G, route.AllMinPaths),
		MinHops:   d,
	}, nil
}

func megaflySpec(name string, rho, a, p int) (*Spec, error) {
	mf, err := topo.NewMegafly(rho, a)
	if err != nil {
		return nil, err
	}
	leaves := mf.LeafRouters()
	return &Spec{
		Name:      name,
		Graph:     mf.G,
		PerRouter: p,
		Hosts:     leaves,
		NumGroups: mf.NumGroups(),
		GroupOf:   mf.GroupOf,
		MinEngine: route.NewMegafly(mf),
		MinHops:   4,
		UGALMids:  leaves,
	}, nil
}

// polarFlySpec builds the diameter-2 PolarFly network (the ER_q graph
// used directly as a topology, Lakhotia et al. SC 2022) — the §2.3
// comparison point PolarStar extends. Not part of Table 3; provided as
// an extension for diameter-2 vs diameter-3 studies.
func polarFlySpec(name string, q, p int) (*Spec, error) {
	er, err := topo.NewER(q)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      name,
		Graph:     er.G,
		PerRouter: p,
		NumGroups: er.N(),
		GroupOf:   func(v int) int { return v },
		MinEngine: route.NewTable(er.G, route.AllMinPaths),
		MinHops:   2,
	}, nil
}

// slimFlySpec builds the diameter-2 SlimFly network (the MMS graph used
// directly as a topology, Besta & Hoefler SC 2014) — like PolarFly, a
// diameter-2 extension point rather than a Table 3 configuration.
func slimFlySpec(name string, q, p int) (*Spec, error) {
	mms, err := topo.NewMMS(q)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      name,
		Graph:     mms.G,
		PerRouter: p,
		NumGroups: mms.N(),
		GroupOf:   func(v int) int { return v },
		MinEngine: route.NewTable(mms.G, route.AllMinPaths),
		MinHops:   2,
	}, nil
}

func fatTreeSpec(name string, p int) (*Spec, error) {
	ft, err := topo.NewFatTree(p)
	if err != nil {
		return nil, err
	}
	leaves := ft.LeafRouters()
	return &Spec{
		Name:      name,
		Graph:     ft.G,
		PerRouter: p,
		Hosts:     leaves,
		NumGroups: ft.NumGroups(),
		GroupOf:   ft.GroupOf,
		MinEngine: route.NewFatTree(ft),
		MinHops:   4,
		UGALMids:  leaves,
	}, nil
}
