package sim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"polarstar/internal/obs"
)

// RoutingMode selects MIN or UGAL for a sweep.
type RoutingMode int

const (
	// MIN is minimal routing (§9.3).
	MIN RoutingMode = iota
	// UGALMode is load-balancing adaptive routing with local congestion
	// information, UGAL-L (§9.3).
	UGALMode
	// UGALGMode is the idealized global-information UGAL-G variant
	// (ablation only).
	UGALGMode
	// MPMINMode is multipath routing over MIN: the minimal-path lane
	// plus Params.Lanes spanning-tree lanes with occupancy-aware spray
	// and live-fault lane failover.
	MPMINMode
	// MPUGALMode is multipath routing over UGAL-L.
	MPUGALMode
)

func (m RoutingMode) String() string {
	switch m {
	case UGALMode:
		return "UGAL"
	case UGALGMode:
		return "UGAL-G"
	case MPMINMode:
		return "MP-MIN"
	case MPUGALMode:
		return "MP-UGAL"
	}
	return "MIN"
}

// SweepResult is a latency-load curve for one (topology, routing,
// pattern) combination.
type SweepResult struct {
	Spec    string
	Routing RoutingMode
	Pattern string
	Points  []Result
}

// SaturationLoad returns the highest offered load that remained stable,
// or 0 when every point saturated.
func (s SweepResult) SaturationLoad() float64 {
	best := 0.0
	for _, p := range s.Points {
		if !p.Saturated && p.Load > best {
			best = p.Load
		}
	}
	return best
}

// Sweep runs the latency-load experiment: one independent simulation per
// offered load, in parallel across load points, each run itself sharded
// over params.Workers goroutines (0: divide the machine between the
// levels — GOMAXPROCS/outer inner workers each). Loads are fractions of
// the peak injection bandwidth (flits/endpoint/cycle). The first
// failure cancels the remaining load points and is returned once every
// in-flight run has stopped.
func Sweep(spec *Spec, mode RoutingMode, patternName string, loads []float64, params Params) (SweepResult, error) {
	return SweepObs(spec, mode, patternName, loads, params, nil)
}

// SweepObs is Sweep with telemetry: when sm is non-nil, each load point's
// engine fills sm.Points[i] (sm must come from obs.NewSimSweep with one
// point per load). Points are written by the worker that owns the load
// index, so collection adds no synchronization; the resulting artifact is
// identical for any worker split.
func SweepObs(spec *Spec, mode RoutingMode, patternName string, loads []float64, params Params, sm *obs.SimSweep) (SweepResult, error) {
	res := SweepResult{Spec: spec.Name, Routing: mode, Pattern: patternName, Points: make([]Result, len(loads))}
	outer := runtime.GOMAXPROCS(0)
	if outer > len(loads) {
		outer = len(loads)
	}
	if params.Workers <= 0 {
		if params.Workers = runtime.GOMAXPROCS(0) / outer; params.Workers < 1 {
			params.Workers = 1
		}
	}
	var (
		firstErr error
		mu       sync.Mutex
		failed   = make(chan struct{})
		failOnce sync.Once
	)
	fail := func(err error) {
		failOnce.Do(func() {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			close(failed)
		})
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		// Stop feeding on the first failure so workers drain and exit;
		// without the select this goroutine would block on `next <- i`
		// forever once the workers are gone.
		defer close(next)
		for i := range loads {
			select {
			case next <- i:
			case <-failed:
				return
			}
		}
	}()
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := params
				p.Seed = params.Seed + int64(i)*7919
				if sm != nil {
					p.Metrics = sm.Points[i]
				}
				point, err := RunPoint(context.Background(), spec, mode, patternName, loads[i], p)
				if err != nil {
					fail(err)
					return
				}
				res.Points[i] = point
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return res, firstErr
}

// RunPoint evaluates one (spec, routing, pattern, load) point: it
// validates the parameters, builds the pattern, checks reachability,
// constructs an engine and runs it under ctx. Every failure mode —
// including the calendar-overflow conditions NewEngine panics on — comes
// back as an error, which makes this the entry point for untrusted
// callers (the facade and the serving layer). Workers <= 0 defaults to
// GOMAXPROCS. The Result is bit-identical for any worker count and any
// non-cancelling context.
func RunPoint(ctx context.Context, spec *Spec, mode RoutingMode, patternName string, load float64, params Params) (Result, error) {
	if load <= 0 || load > 1 {
		return Result{}, fmt.Errorf("sim: offered load must be in (0, 1], got %g", load)
	}
	cfg := spec.Config()
	if err := params.Validate(cfg); err != nil {
		return Result{}, err
	}
	if params.Workers <= 0 {
		params.Workers = runtime.GOMAXPROCS(0)
	}
	if params.Plan != nil {
		if err := params.Plan.Validate(spec.Graph); err != nil {
			return Result{}, err
		}
	}
	pattern, err := spec.Pattern(patternName, params.Seed)
	if err != nil {
		return Result{}, err
	}
	// Scripted faults may sever pairs on purpose; only healthy runs
	// require every addressed pair to be reachable.
	if params.Plan.Empty() {
		if err := CheckReachable(spec.Graph, cfg, pattern); err != nil {
			return Result{}, err
		}
	}
	var routing Routing
	switch mode {
	case UGALMode:
		routing = spec.UGALRouting(params.PacketFlits)
	case UGALGMode:
		routing = spec.UGALGRouting(params.PacketFlits)
	case MPMINMode, MPUGALMode:
		base := spec.MinRouting()
		if mode == MPUGALMode {
			base = spec.UGALRouting(params.PacketFlits)
		}
		mp, err := spec.MultiPathRouting(base, params.Lanes, params.PacketFlits)
		if err != nil {
			return Result{}, err
		}
		routing = mp
	default:
		routing = spec.MinRouting()
	}
	eng := NewEngine(params, spec.Graph, cfg, routing, pattern)
	return eng.RunContext(ctx, load)
}

// WriteSweep renders a sweep as an aligned text table.
func WriteSweep(w io.Writer, s SweepResult) {
	fmt.Fprintf(w, "# %s %s %s\n", s.Spec, s.Routing, s.Pattern)
	fmt.Fprintf(w, "%-8s %-12s %-12s %-10s %-10s\n", "load", "avg-lat", "throughput", "delivered", "saturated")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-8.3f %-12.2f %-12.4f %-10.3f %-10v\n",
			p.Load, p.AvgLatency, p.Throughput, p.DeliveredFrac, p.Saturated)
	}
}

// DefaultLoads is the standard offered-load ladder of the latency-load
// figures.
var DefaultLoads = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
