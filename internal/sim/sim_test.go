package sim

import (
	"math"
	"math/rand"
	"testing"

	"polarstar/internal/traffic"
)

func testParams(seed int64) Params {
	p := DefaultParams(seed)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 2000
	return p
}

func TestZeroLoadLatency(t *testing.T) {
	// At very low load, latency approaches the contention-free value:
	// injection serialization S + per-link (S + linkLat) + ejection S.
	spec := MustNewSpec("ps-iq-small")
	p := testParams(1)
	pattern, err := spec.Pattern("uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
	res := eng.Run(0.02)
	if res.Saturated {
		t.Fatalf("saturated at load 0.02: %+v", res)
	}
	if res.DeliveredFrac < 0.999 {
		t.Fatalf("delivered %.3f at load 0.02", res.DeliveredFrac)
	}
	// Diameter 3, packets 4 flits: upper bound ~ 4 + 3*(4+1) + ... allow
	// generous headroom for queueing noise.
	if res.AvgLatency < 5 || res.AvgLatency > 40 {
		t.Errorf("zero-load latency = %.1f, expected ~10-25 cycles", res.AvgLatency)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	sweep, err := Sweep(spec, MIN, "uniform", []float64{0.1, 0.4, 0.7}, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	lat := func(i int) float64 { return sweep.Points[i].AvgLatency }
	if !(lat(0) <= lat(1)*1.05 && lat(1) <= lat(2)*1.05) {
		t.Errorf("latency not (weakly) increasing: %.2f %.2f %.2f", lat(0), lat(1), lat(2))
	}
	if sweep.Points[0].Saturated {
		t.Error("load 0.1 should not saturate PolarStar MIN uniform")
	}
}

func TestThroughputTracksOfferedLoadBelowSaturation(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	res, err := Sweep(spec, MIN, "uniform", []float64{0.2}, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if math.Abs(p.Throughput-0.2) > 0.03 {
		t.Errorf("throughput %.3f far from offered 0.2", p.Throughput)
	}
}

func TestConservationAllPacketsDelivered(t *testing.T) {
	// With generation stopped and a long drain, every injected packet
	// must be delivered (no losses, no deadlock).
	spec := MustNewSpec("ps-iq-small")
	p := testParams(4)
	p.Drain = 8000
	pattern, _ := spec.Pattern("uniform", 4)
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
	res := eng.Run(0.3)
	if res.Backlog != 0 {
		t.Errorf("backlog %d after drain", res.Backlog)
	}
	if res.DeliveredFrac != 1.0 {
		t.Errorf("delivered frac %.4f, want 1.0", res.DeliveredFrac)
	}
}

func TestUGALBeatsMINOnAdversarial(t *testing.T) {
	// The fundamental adaptive-routing result: under the adversarial
	// pattern, UGAL must sustain strictly more load than MIN on a
	// hierarchical topology (here Dragonfly, whose single global link per
	// group pair collapses under MIN).
	spec := MustNewSpec("df-small")
	loads := []float64{0.05, 0.1, 0.2, 0.3}
	minRes, err := Sweep(spec, MIN, "adversarial", loads, testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	ugalRes, err := Sweep(spec, UGALMode, "adversarial", loads, testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if ugalRes.SaturationLoad() <= minRes.SaturationLoad() {
		t.Errorf("UGAL saturation %.2f <= MIN %.2f on adversarial dragonfly",
			ugalRes.SaturationLoad(), minRes.SaturationLoad())
	}
}

func TestAllSmallSpecsSimulate(t *testing.T) {
	// Every topology spec must run a short uniform MIN simulation without
	// panics, deliver packets, and stay deadlock-free.
	for _, name := range []string{"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small", "mf-small", "ft-small"} {
		spec, err := NewSpec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := testParams(6)
		p.Warmup, p.Measure, p.Drain = 200, 500, 2000
		pattern, err := spec.Pattern("uniform", 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		res := eng.Run(0.1)
		if res.DeliveredFrac < 0.99 {
			t.Errorf("%s: delivered %.3f at load 0.1", name, res.DeliveredFrac)
		}
	}
}

func TestAllPatternsOnPolarStar(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	for _, pat := range []string{"uniform", "permutation", "bitshuffle", "bitreverse", "adversarial"} {
		p := testParams(7)
		p.Warmup, p.Measure, p.Drain = 200, 500, 2000
		pattern, err := spec.Pattern(pat, 7)
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pattern)
		res := eng.Run(0.1)
		if res.DeliveredFrac < 0.95 {
			t.Errorf("pattern %s: delivered %.3f", pat, res.DeliveredFrac)
		}
	}
}

func TestDeterminism(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	run := func() Result {
		p := testParams(8)
		pattern, _ := spec.Pattern("uniform", 8)
		eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
		return eng.Run(0.3)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestEngineRunTwicePanics(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	p := testParams(9)
	p.Warmup, p.Measure, p.Drain = 10, 10, 10
	pattern, _ := spec.Pattern("uniform", 9)
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
	eng.Run(0.01)
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	eng.Run(0.01)
}

func TestUGALPathsRespectVCBound(t *testing.T) {
	spec := MustNewSpec("mf-small")
	r := spec.UGALRouting(4)
	rng := rand.New(rand.NewSource(10))
	occ := func(u, v int) int { return 0 }
	hosts := spec.Hosts
	for i := 0; i < 500; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			continue
		}
		path := r.Path(nil, src, dst, occ, rng)
		if len(path)-1 > r.MaxHops() {
			t.Fatalf("UGAL path %v exceeds MaxHops %d", path, r.MaxHops())
		}
		if len(path) > MaxPathNodes {
			t.Fatalf("path %v exceeds MaxPathNodes", path)
		}
	}
}

func TestTrafficConfigOfSpecs(t *testing.T) {
	ft := MustNewSpec("ft-small")
	cfg := ft.Config()
	if cfg.Endpoints() != 5*25 {
		t.Errorf("ft-small endpoints = %d, want 125", cfg.Endpoints())
	}
	if cfg.RouterOf(0) != ft.Hosts[0] {
		t.Error("host mapping wrong")
	}
	var _ traffic.Pattern = traffic.Uniform{C: cfg}
}

// TestCreditInvariants checks the internal credit accounting: after a
// fully drained run every VC buffer reservation must be back to zero,
// and no buffer may ever have exceeded its capacity (spot-checked via
// the final state plus the in-run panic guards).
func TestCreditInvariants(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	p := testParams(11)
	p.Drain = 8000
	pattern, _ := spec.Pattern("uniform", 11)
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pattern)
	res := eng.Run(0.4)
	if res.DeliveredFrac != 1 {
		t.Fatalf("drain incomplete: %+v", res)
	}
	for i, o := range eng.occ {
		if o != 0 {
			t.Fatalf("occ[%d] = %d after full drain", i, o)
		}
	}
	for i := range eng.queues {
		if !eng.queues[i].empty() {
			t.Fatalf("queue %d not empty after drain", i)
		}
	}
}

// TestVCCountMatchesPaper: MIN routing on a diameter-3 direct topology
// must use exactly 4 VCs (the §9.4 configuration).
func TestVCCountMatchesPaper(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	pattern, _ := spec.Pattern("uniform", 1)
	eng := NewEngine(testParams(1), spec.Graph, spec.Config(), spec.MinRouting(), pattern)
	if eng.vcs != 4 {
		t.Errorf("MIN VCs = %d, want 4", eng.vcs)
	}
}
