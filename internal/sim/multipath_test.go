package sim

import (
	"context"
	"runtime"
	"testing"

	"polarstar/internal/obs"
)

// mpTestSpec is the resilience testbed: PSIQ(4,3), 168 routers, radix 8,
// rich enough for 3 edge-disjoint spanning-tree lanes.
const mpTestSpec = "ps-iq-43"

// laneEdges extracts the tree-edge lists of the spec's multipath lanes
// (as the engine will build them: same fixed extraction seed).
func laneEdges(t *testing.T, spec *Spec, lanes int) [][][2]int {
	t.Helper()
	r, err := spec.MultiPathRouting(spec.MinRouting(), lanes, 4)
	if err != nil {
		t.Fatal(err)
	}
	mp := r.(*MultiPathRouting).MP
	edges := make([][][2]int, mp.TreeLanes())
	for l := range edges {
		edges[l] = mp.TreeEdges(l)
	}
	return edges
}

// treeLanePlan scripts a fault plan wounding every tree lane: `per` tree
// edges of each lane go down at cycle `down`, repaired at `up` (0: never).
func treeLanePlan(t *testing.T, spec *Spec, lanes, per int, down, up int64) *Plan {
	t.Helper()
	plan := &Plan{}
	for _, edges := range laneEdges(t, spec, lanes) {
		for i := 0; i < per && i < len(edges); i++ {
			e := edges[i*7%len(edges)]
			plan.Events = append(plan.Events, FaultEvent{Cycle: down, Kind: LinkDown, U: e[0], V: e[1]})
			if up > 0 {
				plan.Events = append(plan.Events, FaultEvent{Cycle: up, Kind: LinkUp, U: e[0], V: e[1]})
			}
		}
	}
	return plan
}

func mpRun(t *testing.T, mode RoutingMode, plan *Plan, workers int, met *obs.SimRun) Result {
	t.Helper()
	spec := MustNewSpec(mpTestSpec)
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 900
	p.Workers = workers
	p.Lanes = 3
	p.Plan = plan
	p.Metrics = met
	res, err := RunPoint(context.Background(), spec, mode, "uniform", 0.3, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultipathDeterminismAcrossWorkers pins the lane machinery to the
// engine's core contract: MP-MIN and MP-UGAL produce bit-identical
// Results at any worker count, healthy and under a scripted down/up plan
// that demotes lanes mid-run and lets them re-probe back.
func TestMultipathDeterminismAcrossWorkers(t *testing.T) {
	spec := MustNewSpec(mpTestSpec)
	plans := map[string]*Plan{
		"healthy": nil,
		"faulted": treeLanePlan(t, spec, 3, 2, 350, 700),
	}
	for _, mode := range []RoutingMode{MPMINMode, MPUGALMode} {
		for pname, plan := range plans {
			mode, plan := mode, plan
			t.Run(mode.String()+"/"+pname, func(t *testing.T) {
				t.Parallel()
				ref := mpRun(t, mode, plan, 1, nil)
				for _, workers := range []int{4, numShards} {
					if got := mpRun(t, mode, plan, workers, nil); got != ref {
						t.Errorf("workers=%d: result %+v differs from serial %+v", workers, got, ref)
					}
				}
			})
		}
	}
}

// TestMultipathDeterminismAcrossGOMAXPROCS: scheduling must not leak
// into a faulted multipath run either.
func TestMultipathDeterminismAcrossGOMAXPROCS(t *testing.T) {
	spec := MustNewSpec(mpTestSpec)
	plan := treeLanePlan(t, spec, 3, 1, 350, 700)
	ref := mpRun(t, MPMINMode, plan, numShards, nil)
	prev := runtime.GOMAXPROCS(1)
	got := mpRun(t, MPMINMode, plan, numShards, nil)
	runtime.GOMAXPROCS(prev)
	if got != ref {
		t.Errorf("GOMAXPROCS=1 result %+v differs from GOMAXPROCS=%d %+v", got, prev, ref)
	}
}

// TestMultipathLaneDegenerationToMin is the degeneracy property: with
// every tree lane demoted from cycle 0 (one tree edge each, never
// repaired), MP-MIN must collapse to exactly the PR-5 escape-then-retry
// behavior — the Result is bit-identical to single-table MIN under the
// same plan. The base path is built first in PathLane (fixing the RNG
// stream) and the lane-0 VC band arithmetic reduces to the classic
// ladder, so any divergence here means the spray leaked into the
// degenerate case.
func TestMultipathLaneDegenerationToMin(t *testing.T) {
	spec := MustNewSpec(mpTestSpec)
	mkPlan := func() *Plan { return treeLanePlan(t, spec, 3, 1, 0, 0) }
	min := mpRun(t, MIN, mkPlan(), numShards, nil)
	mp := mpRun(t, MPMINMode, mkPlan(), numShards, nil)
	if mp != min {
		t.Errorf("all-lanes-demoted MP-MIN %+v differs from MIN %+v", mp, min)
	}
}

// TestMultipathLaneCounters checks the obs wiring: a faulted multipath
// run reports per-lane spray/delivery counts consistent with the packet
// counters, records the demotions/promotions of the scripted plan, and
// performs in-flight lane failovers when tree edges die under traffic.
func TestMultipathLaneCounters(t *testing.T) {
	spec := MustNewSpec(mpTestSpec)
	plan := treeLanePlan(t, spec, 3, 2, 350, 700)
	var met obs.SimRun
	res := mpRun(t, MPMINMode, plan, numShards, &met)
	if met.Lanes == nil {
		t.Fatal("multipath run produced no lanes section")
	}
	la := met.Lanes
	if la.Lanes != 3 {
		t.Errorf("lanes = %d, want 3", la.Lanes)
	}
	var chosen, delivered int64
	for l := 0; l <= la.Lanes; l++ {
		chosen += la.Chosen[l]
		delivered += la.Delivered[l]
	}
	if chosen != met.Injected.Value() {
		t.Errorf("lane chosen sum %d != injected %d", chosen, met.Injected.Value())
	}
	if delivered != met.Delivered.Value() {
		t.Errorf("lane delivered sum %d != delivered %d", delivered, met.Delivered.Value())
	}
	for l := 1; l <= la.Lanes; l++ {
		if la.Chosen[l] == 0 {
			t.Errorf("tree lane %d never chosen", l)
		}
	}
	// Two edges of each of 3 lanes die at 350: every lane demotes once,
	// heals at 700 and re-probes back before the run ends.
	if la.Demoted != 3 {
		t.Errorf("demoted = %d, want 3", la.Demoted)
	}
	if la.Promoted != 3 {
		t.Errorf("promoted = %d, want 3", la.Promoted)
	}
	if res.Dropped == 0 && failoverSum(la) == 0 {
		t.Error("plan hit no in-flight packet at all: neither drops nor lane failovers")
	}
	t.Logf("chosen=%v delivered=%v failovers=%v dropped=%d", la.Chosen, la.Delivered, la.Failovers, res.Dropped)
}

func failoverSum(la *obs.SimLanes) int64 {
	var s int64
	for _, f := range la.Failovers {
		s += f
	}
	return s
}

// TestMultipathHealthyMatchesNoPlanEngine pins that an *empty* plan on a
// multipath engine is indistinguishable from no plan at all (the same
// contract the single-lane engine keeps).
func TestMultipathHealthyMatchesNoPlanEngine(t *testing.T) {
	ref := mpRun(t, MPUGALMode, nil, numShards, nil)
	got := mpRun(t, MPUGALMode, &Plan{}, numShards, nil)
	if got != ref {
		t.Errorf("empty-plan result %+v differs from plan-less %+v", got, ref)
	}
}
