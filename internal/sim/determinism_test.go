package sim

import (
	"runtime"
	"testing"
)

// smallSpecNames lists every scaled-down spec (one per Table-3
// construction plus the PolarFly/Slimfly extras).
var smallSpecNames = []string{
	"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small",
	"sf-small", "mf-small", "ft-small", "pf-small", "slimfly-small",
}

func detRun(t *testing.T, specName string, mode RoutingMode, workers int) Result {
	t.Helper()
	spec := MustNewSpec(specName)
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 900
	p.Workers = workers
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var routing Routing
	if mode == UGALMode {
		routing = spec.UGALRouting(p.PacketFlits)
	} else {
		routing = spec.MinRouting()
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing, pattern)
	return eng.Run(0.3)
}

// TestDeterminismAcrossWorkers pins the core guarantee of the two-phase
// cycle: every spec × routing mode produces a bit-identical Result for
// any worker count. The serial single-worker run is the reference.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, name := range smallSpecNames {
		for _, mode := range []RoutingMode{MIN, UGALMode} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				ref := detRun(t, name, mode, 1)
				for _, workers := range []int{2, numShards} {
					if got := detRun(t, name, mode, workers); got != ref {
						t.Errorf("workers=%d: result %+v differs from serial %+v", workers, got, ref)
					}
				}
			})
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS runs the parallel engine under
// different GOMAXPROCS values: scheduling must not leak into the
// results. (CI additionally runs the whole package at GOMAXPROCS=1.)
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	ref := detRun(t, "ps-iq-small", UGALMode, numShards)
	prev := runtime.GOMAXPROCS(1)
	got := detRun(t, "ps-iq-small", UGALMode, numShards)
	runtime.GOMAXPROCS(prev)
	if got != ref {
		t.Errorf("GOMAXPROCS=1 result %+v differs from GOMAXPROCS=%d %+v", got, prev, ref)
	}
}
