package sim

import "testing"

// The pinned results below were captured at the introduction of the
// two-phase (arbitrate → commit) cycle, which moved routing onto
// per-packet-seeded RNG streams and defers credit releases to the end of
// the cycle — a one-time regeneration validated against the previous
// goldens (saturation loads unchanged, avg latency within 5%; see
// results/perf/). They must reproduce bit for bit at any Params.Workers
// value and GOMAXPROCS — across the analytic PolarStar router (MIN), the
// Valiant/UGAL wrapper (which mixes intermediate draws with per-leg
// routing draws), and the shuffling HyperX router.

func goldenRun(t *testing.T, specName string, routing func(*Spec) Routing) Result {
	t.Helper()
	spec := MustNewSpec(specName)
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing(spec), pattern)
	return eng.Run(0.3)
}

func checkGolden(t *testing.T, res Result, avgLat float64, maxLat int64, thr float64) {
	t.Helper()
	if res.AvgLatency != avgLat {
		t.Errorf("avg latency = %.17g, want %.17g", res.AvgLatency, avgLat)
	}
	if res.MaxLatency != maxLat {
		t.Errorf("max latency = %d, want %d", res.MaxLatency, maxLat)
	}
	if res.Throughput != thr {
		t.Errorf("throughput = %.17g, want %.17g", res.Throughput, thr)
	}
	if res.DeliveredFrac != 1 {
		t.Errorf("delivered fraction = %.17g, want 1", res.DeliveredFrac)
	}
}

func TestGoldenPSIQSmallMIN(t *testing.T) {
	res := goldenRun(t, "ps-iq-small", func(s *Spec) Routing { return s.MinRouting() })
	checkGolden(t, res, 20.745453758226532, 74, 0.29801290322580642)
	if res.Backlog != 0 {
		t.Errorf("backlog = %d, want 0", res.Backlog)
	}
}

func TestGoldenPSIQSmallUGAL(t *testing.T) {
	res := goldenRun(t, "ps-iq-small", func(s *Spec) Routing { return s.UGALRouting(4) })
	checkGolden(t, res, 22.741253896778662, 72, 0.29801290322580642)
}

func TestGoldenHXSmallMIN(t *testing.T) {
	res := goldenRun(t, "hx-small", func(s *Spec) Routing { return s.MinRouting() })
	checkGolden(t, res, 18.2411884240768, 49, 0.29731249999999998)
}
