package sim

import "testing"

// The pinned results below were captured from the pre-optimization
// simulator (allocating Route calls, per-engine channel maps). The
// allocation-free AppendPath path must consume the RNG in exactly the
// same order, so every metric reproduces bit for bit — across the
// analytic PolarStar router (MIN), the Valiant/UGAL wrapper (which mixes
// intermediate draws with per-leg routing draws), and the shuffling
// HyperX router.

func goldenRun(t *testing.T, specName string, routing func(*Spec) Routing) Result {
	t.Helper()
	spec := MustNewSpec(specName)
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing(spec), pattern)
	return eng.Run(0.3)
}

func checkGolden(t *testing.T, res Result, avgLat float64, maxLat int64, thr float64) {
	t.Helper()
	if res.AvgLatency != avgLat {
		t.Errorf("avg latency = %.17g, want %.17g", res.AvgLatency, avgLat)
	}
	if res.MaxLatency != maxLat {
		t.Errorf("max latency = %d, want %d", res.MaxLatency, maxLat)
	}
	if res.Throughput != thr {
		t.Errorf("throughput = %.17g, want %.17g", res.Throughput, thr)
	}
	if res.DeliveredFrac != 1 {
		t.Errorf("delivered fraction = %.17g, want 1", res.DeliveredFrac)
	}
}

func TestGoldenPSIQSmallMIN(t *testing.T) {
	res := goldenRun(t, "ps-iq-small", func(s *Spec) Routing { return s.MinRouting() })
	checkGolden(t, res, 20.750880383327559, 59, 0.29801290322580642)
	if res.Backlog != 0 {
		t.Errorf("backlog = %d, want 0", res.Backlog)
	}
}

func TestGoldenPSIQSmallUGAL(t *testing.T) {
	res := goldenRun(t, "ps-iq-small", func(s *Spec) Routing { return s.UGALRouting(4) })
	checkGolden(t, res, 22.870146814245569, 66, 0.29999139784946238)
}

func TestGoldenHXSmallMIN(t *testing.T) {
	res := goldenRun(t, "hx-small", func(s *Spec) Routing { return s.MinRouting() })
	checkGolden(t, res, 18.20560287182375, 62, 0.29597916666666668)
}
