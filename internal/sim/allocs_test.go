package sim

import (
	"testing"

	"polarstar/internal/obs"
)

// steadyStateAllocs drives one engine to its steady state, then measures
// heap allocations per simulated cycle. With metrics on, the telemetry
// layer (counters, histograms, occupancy marks, interval series) is part
// of the measured cycle.
func steadyStateAllocs(t *testing.T, specName string, routing func(*Spec) Routing, load float64, metrics bool) float64 {
	t.Helper()
	spec := MustNewSpec(specName)
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 100000, 100000, 0 // keep generation alive throughout
	if metrics {
		p.Metrics = &obs.SimRun{}
		p.MetricsInterval = 100
	}
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing(spec), pattern)
	eng.initGeneration(load / float64(p.PacketFlits))
	// Warm every queue, ring and scratch buffer to its high-water mark.
	var tcyc int64
	for ; tcyc < 3000; tcyc++ {
		eng.stepCycle(tcyc)
	}
	return testing.AllocsPerRun(500, func() {
		eng.stepCycle(tcyc)
		tcyc++
	})
}

// TestSteadyStateCycleZeroAllocs is the simulator hot-loop regression
// guard: once warmed up, a simulation cycle — packet generation, routing,
// VC allocation, forwarding, delivery — performs zero heap allocations,
// for both the analytic-minimal and the adaptive UGAL configurations,
// with telemetry off and on (the obs layer sizes all its storage at
// engine construction, so observing a run must stay free).
func TestSteadyStateCycleZeroAllocs(t *testing.T) {
	cases := []struct {
		name    string
		routing func(*Spec) Routing
		metrics bool
	}{
		{"min", func(s *Spec) Routing { return s.MinRouting() }, false},
		{"ugal", func(s *Spec) Routing { return s.UGALRouting(4) }, false},
		{"min-metrics", func(s *Spec) Routing { return s.MinRouting() }, true},
		{"ugal-metrics", func(s *Spec) Routing { return s.UGALRouting(4) }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if allocs := steadyStateAllocs(t, "ps-iq-small", c.routing, 0.3, c.metrics); allocs != 0 {
				t.Errorf("steady-state cycle allocates %.2f objects, want 0", allocs)
			}
		})
	}
}
