package sim

import (
	"polarstar/internal/route"
)

// Per-lane health for multipath routing: each spanning-tree lane is
// demoted the moment any of its tree edges dies and promoted back only
// after the tree is whole again AND a bounded-backoff re-probe delay has
// passed — flapping links cannot make a lane oscillate cycle-to-cycle.
// All writes happen in the serial applyFaults section; the parallel
// phases (PathLane's spray filter, laneFailover's target scan) only read
// `up`, the same ownership discipline as deadChan.
//
// The base (minimal/UGAL) lane 0 has no health entry: its liveness is
// per-path via LiveFn and the repair-table/escape fallbacks, exactly as
// without multipath.

const (
	// laneProbeBase is the re-probe delay after a lane's first demotion:
	// once its tree edges are all live again, the lane stays out of the
	// spray for this many cycles before being promoted (modelling probe
	// traffic confirming the repair).
	laneProbeBase = 64
	// laneProbeCap bounds the exponential demotion backoff, so a lane on
	// a flapping link re-probes at most this far apart.
	laneProbeCap = 4096
	// laneNever parks a probe until the lane's tree heals.
	laneNever = int64(1) << 62
)

// laneHealth tracks the demotion state of every tree lane.
type laneHealth struct {
	mp        *route.MultiPath
	laneChans [][]int32 // lane -> one directed channel id per tree edge
	up        []bool    // lane carries traffic (read by the parallel phases)
	deadEdges []int32   // dead tree edges of the lane
	probeAt   []int64   // cycle the healed lane may rejoin; laneNever while broken
	backoff   []int64   // next re-probe delay (doubles per demotion, capped)

	demoted, promoted int64 // transition counters for obs.SimLanes
}

// newLaneHealth indexes every tree lane's edges by directed channel id
// (one direction suffices: killEdge always fells both) with all lanes up.
func newLaneHealth(mp *route.MultiPath, e *Engine) *laneHealth {
	k := mp.TreeLanes()
	h := &laneHealth{
		mp:        mp,
		laneChans: make([][]int32, k),
		up:        make([]bool, k),
		deadEdges: make([]int32, k),
		probeAt:   make([]int64, k),
		backoff:   make([]int64, k),
	}
	for l := 0; l < k; l++ {
		edges := mp.TreeEdges(l)
		chans := make([]int32, 0, len(edges))
		for _, ed := range edges {
			if c := e.channelID(ed[0], ed[1]); c >= 0 {
				chans = append(chans, int32(c))
			}
		}
		h.laneChans[l] = chans
		h.up[l] = true
		h.probeAt[l] = laneNever
		h.backoff[l] = laneProbeBase
	}
	return h
}

// rescan recounts each lane's dead tree edges after plan events landed,
// demoting freshly wounded lanes and arming the re-probe timer on lanes
// whose tree just became whole. Only the wounded lanes stall — every
// other lane keeps carrying traffic with no global repair pause.
func (h *laneHealth) rescan(t int64, deadChan []bool) {
	for l := range h.laneChans {
		var dead int32
		for _, c := range h.laneChans[l] {
			if deadChan[c] {
				dead++
			}
		}
		h.deadEdges[l] = dead
		switch {
		case dead > 0 && h.up[l]:
			h.up[l] = false
			h.demoted++
			h.probeAt[l] = laneNever
			if h.backoff[l] < laneProbeCap {
				h.backoff[l] *= 2
			}
		case dead > 0:
			h.probeAt[l] = laneNever // still (or again) broken
		case dead == 0 && !h.up[l] && h.probeAt[l] == laneNever:
			h.probeAt[l] = t + h.backoff[l] // healed: wait out the backoff
		}
	}
}

// promote returns healed lanes to service once their re-probe delay has
// passed. Called every fault cycle; promotions inside an idle stretch
// are unobservable (no packets exist), so the event-horizon skip and the
// stepped engine agree bit-for-bit.
func (h *laneHealth) promote(t int64) {
	for l := range h.up {
		if !h.up[l] && h.deadEdges[l] == 0 && t >= h.probeAt[l] {
			h.up[l] = true
			h.promoted++
			h.probeAt[l] = laneNever
		}
	}
}
