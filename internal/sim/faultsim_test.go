package sim

import (
	"testing"
	"time"

	"polarstar/internal/obs"
)

// runGuarded fails the test if the run does not finish within 60s: a
// fault-disconnected network must terminate with partial metrics, never
// hang the suite.
func runGuarded(t *testing.T, eng *Engine, load float64) Result {
	t.Helper()
	var res Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = eng.Run(load)
	}()
	select {
	case <-done:
		return res
	case <-time.After(60 * time.Second):
		t.Fatal("fault-injected run did not terminate within 60s")
		return Result{}
	}
}

// faultRun simulates ps-iq-small uniform traffic under the given plan.
func faultRun(t *testing.T, mode RoutingMode, plan *Plan, retry RetryPolicy, workers int) Result {
	t.Helper()
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 2500
	p.Workers = workers
	p.Plan = plan
	p.Retry = retry
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var routing Routing
	if mode == UGALMode {
		routing = spec.UGALRouting(p.PacketFlits)
	} else {
		routing = spec.MinRouting()
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing, pattern)
	return runGuarded(t, eng, 0.3)
}

// offRouterEdge returns an edge of g with neither endpoint equal to r.
func offRouterEdge(t *testing.T, spec *Spec, r int) [2]int {
	t.Helper()
	for _, e := range spec.Graph.Edges() {
		if e[0] != r && e[1] != r {
			return e
		}
	}
	t.Fatal("no edge avoiding router")
	return [2]int{}
}

// TestFaultDeterminismAcrossWorkers pins the tentpole guarantee: a run
// with live faults — a link dying mid-measure, a router failing, the
// link coming back — produces a bit-identical Result for any worker
// count, for both routing modes.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker fault-determinism sweep; full run in the CI race job")
	}
	spec := MustNewSpec("ps-iq-small")
	const deadRouter = 3
	e := offRouterEdge(t, spec, deadRouter)
	plan := &Plan{Events: []FaultEvent{
		{Cycle: 350, Kind: LinkDown, U: e[0], V: e[1]},
		{Cycle: 420, Kind: RouterDown, U: deadRouter},
		{Cycle: 600, Kind: LinkUp, U: e[0], V: e[1]},
	}}
	for _, mode := range []RoutingMode{MIN, UGALMode} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			ref := faultRun(t, mode, plan, RetryPolicy{}, 1)
			for _, workers := range []int{4, numShards} {
				if got := faultRun(t, mode, plan, RetryPolicy{}, workers); got != ref {
					t.Errorf("workers=%d: result %+v differs from serial %+v", workers, got, ref)
				}
			}
			if ref.Lost == 0 {
				t.Errorf("permanent router failure lost no packets: %+v", ref)
			}
			if ref.Retried == 0 {
				t.Errorf("live faults triggered no source retries: %+v", ref)
			}
		})
	}
}

// TestFaultDisconnectDeterminism kills a router permanently: packets to
// its endpoints are undeliverable, so the run must end early via the
// no-progress watchdog with partial delivered/dropped/lost accounting —
// identically at every worker count.
func TestFaultDisconnectDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker fault-determinism sweep; full run in the CI race job")
	}
	plan := &Plan{Events: []FaultEvent{{Cycle: 50, Kind: RouterDown, U: 3}}}
	retry := RetryPolicy{MaxRetries: 3, BackoffBase: 4, BackoffCap: 64, MaxAge: 1500}
	ref := faultRun(t, MIN, plan, retry, 1)
	for _, workers := range []int{4, numShards} {
		if got := faultRun(t, MIN, plan, retry, workers); got != ref {
			t.Errorf("workers=%d: result %+v differs from serial %+v", workers, got, ref)
		}
	}
	if !ref.TerminatedEarly {
		t.Errorf("watchdog did not end the disconnected run early: %+v", ref)
	}
	if ref.Lost == 0 || ref.DeliveredFrac >= 1 {
		t.Errorf("disconnected run reports no loss: %+v", ref)
	}
	if ref.DeliveredFrac == 0 || ref.Throughput == 0 {
		t.Errorf("partial result should still deliver reachable traffic: %+v", ref)
	}
}

// TestFaultRepairRecovers drops two links mid-measure and repairs them:
// with rerouting plus source retries every packet still arrives.
func TestFaultRepairRecovers(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	edges := spec.Graph.Edges()
	e1, e2 := edges[0], edges[len(edges)/2]
	plan := &Plan{Events: []FaultEvent{
		{Cycle: 350, Kind: LinkDown, U: e1[0], V: e1[1]},
		{Cycle: 350, Kind: LinkDown, U: e2[0], V: e2[1]},
		{Cycle: 500, Kind: LinkUp, U: e1[0], V: e1[1]},
		{Cycle: 500, Kind: LinkUp, U: e2[0], V: e2[1]},
	}}
	retry := RetryPolicy{MaxRetries: 8, BackoffBase: 8, BackoffCap: 512, MaxAge: 0}
	res := faultRun(t, MIN, plan, retry, numShards)
	if res.Dropped == 0 && res.Retried == 0 {
		t.Errorf("link failures at load 0.3 touched no packet: %+v", res)
	}
	if res.Lost != 0 {
		t.Errorf("transient failure lost %d packets", res.Lost)
	}
	if res.DeliveredFrac < 0.999 {
		t.Errorf("delivered fraction %.4f after repair", res.DeliveredFrac)
	}
	// The watchdog may cut the idle drain short once everything has
	// arrived — but never with packets still in the network.
	if res.Backlog != 0 {
		t.Errorf("backlog %d after full recovery", res.Backlog)
	}
}

// TestFaultNilAndEmptyPlanIdentical pins the gating contract: a non-nil
// but empty plan takes the healthy fast path and is bit-identical to no
// plan at all.
func TestFaultNilAndEmptyPlanIdentical(t *testing.T) {
	ref := detRun(t, "ps-iq-small", UGALMode, numShards)
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 900
	p.Workers = numShards
	p.Plan = &Plan{}
	p.Retry = DefaultRetryPolicy()
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pattern)
	if got := eng.Run(0.3); got != ref {
		t.Errorf("empty plan result %+v differs from plan-less %+v", got, ref)
	}
}

// TestFaultMetricsSection pins the obs plumbing: a fault-injected run
// attaches the SimFaults record and its counters agree with the Result;
// a healthy run leaves it nil so artifacts stay byte-identical.
func TestFaultMetricsSection(t *testing.T) {
	if _, m := obsRun(t, "ps-iq-small", MIN, 2, 0); m.Faults != nil {
		t.Errorf("healthy run attached a fault section: %+v", m.Faults)
	}
	spec := MustNewSpec("ps-iq-small")
	plan := &Plan{Events: []FaultEvent{{Cycle: 50, Kind: RouterDown, U: 3}}}
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 2500
	p.Workers = 2
	p.Plan = plan
	p.Metrics = &obs.SimRun{}
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), spec.MinRouting(), pattern)
	res := runGuarded(t, eng, 0.3)
	f := p.Metrics.Faults
	if f == nil {
		t.Fatal("fault-injected run attached no fault section")
	}
	if f.PlanEvents != 1 || f.EventsApplied != 1 {
		t.Errorf("plan accounting %+v, want 1 event applied", f)
	}
	if f.Retries.Value() != res.Retried || f.DroppedInFlight.Value() != res.Dropped {
		t.Errorf("fault section %+v inconsistent with result %+v", f, res)
	}
	if lost := f.LostRetryBudget.Value() + f.LostTimeout.Value() + f.LostStranded.Value(); lost == 0 || lost > res.Lost {
		t.Errorf("loss buckets sum to %d, result lost %d", lost, res.Lost)
	}
	if f.TerminatedEarly != res.TerminatedEarly {
		t.Errorf("fault section early-termination flag %v != result %v", f.TerminatedEarly, res.TerminatedEarly)
	}
}

// TestCheckReachable pins the fail-fast validation: patterns addressing
// pairs a degraded topology cannot connect are rejected with a
// descriptive error instead of silently losing the traffic.
func TestCheckReachable(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	cfg := spec.Config()
	for _, name := range []string{"uniform", "permutation"} {
		pattern, err := spec.Pattern(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckReachable(spec.Graph, cfg, pattern); err != nil {
			t.Errorf("%s on the intact graph rejected: %v", name, err)
		}
	}
	// Isolate router 0: anything addressing its endpoints is unreachable.
	var isolating [][2]int
	for _, e := range spec.Graph.Edges() {
		if e[0] == 0 || e[1] == 0 {
			isolating = append(isolating, e)
		}
	}
	deg := spec.Graph.RemoveEdges(isolating)
	for _, name := range []string{"uniform", "permutation"} {
		pattern, err := spec.Pattern(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckReachable(deg, cfg, pattern); err == nil {
			t.Errorf("%s on a disconnected graph accepted", name)
		}
	}
}
