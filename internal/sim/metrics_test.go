package sim

import (
	"bytes"
	"testing"

	"polarstar/internal/obs"
)

// obsRun runs one observed simulation and returns the Result + metrics.
func obsRun(t *testing.T, specName string, mode RoutingMode, workers, interval int) (Result, *obs.SimRun) {
	t.Helper()
	spec := MustNewSpec(specName)
	p := DefaultParams(7)
	p.Warmup, p.Measure, p.Drain = 300, 600, 900
	p.Workers = workers
	p.Metrics = &obs.SimRun{}
	p.MetricsInterval = interval
	pattern, err := spec.Pattern("uniform", p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var routing Routing
	if mode == UGALMode {
		routing = spec.UGALRouting(p.PacketFlits)
	} else {
		routing = spec.MinRouting()
	}
	eng := NewEngine(p, spec.Graph, spec.Config(), routing, pattern)
	return eng.Run(0.3), p.Metrics
}

// TestMetricsDoNotPerturbResults pins the non-interference contract:
// enabling telemetry changes no Result bit, for MIN and UGAL.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	for _, mode := range []RoutingMode{MIN, UGALMode} {
		plain := detRun(t, "ps-iq-small", mode, 2)
		observed, _ := obsRun(t, "ps-iq-small", mode, 2, 100)
		if observed != plain {
			t.Errorf("%v: observed result %+v differs from plain %+v", mode, observed, plain)
		}
	}
}

// TestMetricsConsistency checks the internal accounting of one observed
// run: generated = injected + lost, delivered packets match the Result,
// the latency histogram covers exactly the measured deliveries, and the
// quantile ladder is ordered.
func TestMetricsConsistency(t *testing.T) {
	res, m := obsRun(t, "ps-iq-small", MIN, 1, 0)
	if m.Generated.Value() != m.Injected.Value()+m.Lost.Value() {
		t.Errorf("generated %d != injected %d + lost %d",
			m.Generated.Value(), m.Injected.Value(), m.Lost.Value())
	}
	if m.Lost.Value() != 0 {
		t.Errorf("intact topology lost %d packets", m.Lost.Value())
	}
	if m.Delivered.Value() == 0 || m.Delivered.Value() > m.Injected.Value() {
		t.Errorf("delivered %d out of range (injected %d)", m.Delivered.Value(), m.Injected.Value())
	}
	if got := m.Latency.Mean(); res.AvgLatency != got {
		t.Errorf("latency histogram mean %v != Result.AvgLatency %v", got, res.AvgLatency)
	}
	if m.Latency.Max() != res.MaxLatency {
		t.Errorf("latency histogram max %d != Result.MaxLatency %d", m.Latency.Max(), res.MaxLatency)
	}
	p50, p95, p99 := m.Latency.Quantile(0.5), m.Latency.Quantile(0.95), m.Latency.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= m.Latency.Max()) {
		t.Errorf("quantile ladder not ordered: p50=%d p95=%d p99=%d max=%d",
			p50, p95, p99, m.Latency.Max())
	}
	if m.OccHWM.Max() == 0 {
		t.Error("no channel ever held a flit despite delivered traffic")
	}
	if len(m.CreditStallVC) == 0 {
		t.Error("per-VC credit stall vector not sized")
	}
	var perVC int64
	for _, n := range m.CreditStallVC {
		perVC += n
	}
	if perVC != m.StallCredit.Value() {
		t.Errorf("per-VC credit stalls %d != total credit stalls %d", perVC, m.StallCredit.Value())
	}
}

// TestMetricsIntervalSeries checks the -metrics-interval series: rows at
// exact cycle multiples, cumulative and monotone, final row consistent
// with the end-of-run counters.
func TestMetricsIntervalSeries(t *testing.T) {
	const interval = 150
	_, m := obsRun(t, "bf-small", MIN, 2, interval)
	total := 300 + 600 + 900
	if want := total / interval; len(m.Series) != want {
		t.Fatalf("series has %d rows, want %d", len(m.Series), want)
	}
	var prev obs.IntervalRow
	for i, row := range m.Series {
		if row.Cycle != int64((i+1)*interval) {
			t.Errorf("row %d at cycle %d, want %d", i, row.Cycle, (i+1)*interval)
		}
		if row.Generated < prev.Generated || row.Injected < prev.Injected ||
			row.Delivered < prev.Delivered || row.Stalled < prev.Stalled {
			t.Errorf("row %d not monotone: %+v after %+v", i, row, prev)
		}
		prev = row
	}
	last := m.Series[len(m.Series)-1]
	if last.Generated != m.Generated.Value() || last.Delivered != m.Delivered.Value() {
		t.Errorf("final row %+v inconsistent with totals gen=%d del=%d",
			last, m.Generated.Value(), m.Delivered.Value())
	}
}

// TestMetricsDeterministicAcrossWorkers pins the artifact-level
// guarantee: the full metrics JSON — counters, histograms, per-channel
// marks and interval series — is byte-identical for any worker count.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		_, m := obsRun(t, "ps-iq-small", UGALMode, workers, 200)
		r := obs.NewRun("test")
		r.Sim = &obs.SimSweep{Spec: "ps-iq-small", Routing: "UGAL", Pattern: "uniform", Points: []*obs.SimRun{m}}
		data, err := r.Marshal(false)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := marshal(1)
	for _, workers := range []int{2, numShards} {
		if got := marshal(workers); !bytes.Equal(got, ref) {
			t.Errorf("metrics JSON differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestSweepObs checks the sweep-level plumbing: every load point gets an
// independent SimRun whose echoed fields match the sweep's Results.
func TestSweepObs(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(3)
	p.Warmup, p.Measure, p.Drain = 200, 400, 600
	loads := []float64{0.1, 0.3}
	sm := obs.NewSimSweep(spec.Name, MIN.String(), "uniform", len(loads))
	res, err := SweepObs(spec, MIN, "uniform", loads, p, sm)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range res.Points {
		m := sm.Points[i]
		if m.Load != pt.Load || m.AvgLatency != pt.AvgLatency ||
			m.DeliveredFrac != pt.DeliveredFrac || m.Saturated != pt.Saturated {
			t.Errorf("point %d: metrics echo %+v inconsistent with result %+v", i, m, pt)
		}
		if m.Delivered.Value() == 0 {
			t.Errorf("point %d: no deliveries recorded", i)
		}
	}
}
