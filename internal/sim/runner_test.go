package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestSweepErrorCancels pins the failure path of Sweep: an error must be
// returned, no goroutine may be left behind (the feeder used to block on
// its channel send forever once the workers exited), and the remaining
// load points must not be simulated.
func TestSweepErrorCancels(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 100, 100, 100
	before := runtime.NumGoroutine()
	// An unknown pattern fails inside every worker, on every load point.
	res, err := Sweep(spec, MIN, "no-such-pattern", DefaultLoads, p)
	if err == nil {
		t.Fatal("Sweep with an unknown pattern returned no error")
	}
	for i, pt := range res.Points {
		if pt != (Result{}) {
			t.Errorf("load point %d was simulated after the failure: %+v", i, pt)
		}
	}
	// The feeder goroutine drains on the error signal; give the runtime
	// a moment to reap it.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked: %d before Sweep, %d after", before, got)
	}
}

// TestSweepWorkerBudget checks the two-level worker split: an explicit
// Params.Workers is honored and the auto setting still completes.
func TestSweepWorkerBudget(t *testing.T) {
	spec := MustNewSpec("ps-iq-small")
	p := DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 100, 200, 300
	loads := []float64{0.1, 0.3}
	auto, err := Sweep(spec, MIN, "uniform", loads, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = numShards
	pinned, err := Sweep(spec, MIN, "uniform", loads, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range loads {
		if auto.Points[i] != pinned.Points[i] {
			t.Errorf("load %.2f: auto-worker result %+v != pinned %+v", loads[i], auto.Points[i], pinned.Points[i])
		}
	}
}
