// Package sim is the cycle-level interconnect simulator used for the
// synthetic-traffic evaluation (§9): the substitute for BookSim.
//
// Model: input-queued routers with per-channel virtual-channel buffers,
// credit-based backpressure, virtual cut-through switching of fixed-size
// packets (4 flits, §9.4), per-cycle output arbitration with round-robin
// fairness, and per-endpoint injection/ejection channels. Deadlock
// freedom is structural: VC indices strictly increase along every
// packet's path (the allocator picks the least-loaded eligible VC while
// reserving headroom for the remaining hops), so the channel/VC
// dependency graph is acyclic. The VC count is MaxHops+1 — exactly the
// paper's 4 VCs for minimal routing on a diameter-3 topology.
//
// Simulations are deterministic for a given seed and single-threaded;
// load sweeps parallelize across simulator instances.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"polarstar/internal/graph"
	"polarstar/internal/traffic"
)

// MaxPathNodes bounds the router path length of a packet (Valiant paths
// on indirect topologies reach 9 nodes).
const MaxPathNodes = 12

// Params configures a simulation run.
type Params struct {
	PacketFlits   int   // flits per packet (paper: 4)
	BufFlitsPerVC int   // input buffer capacity per VC in flits (paper: 128/4 = 32)
	LinkLatency   int   // link traversal latency in cycles
	Warmup        int   // warmup cycles before measurement
	Measure       int   // measurement window in cycles
	Drain         int   // extra cycles to drain measured packets
	Seed          int64 // RNG seed
}

// DefaultParams mirrors the §9.4 configuration.
func DefaultParams(seed int64) Params {
	return Params{
		PacketFlits:   4,
		BufFlitsPerVC: 32,
		LinkLatency:   1,
		Warmup:        5000,
		Measure:       10000,
		Drain:         15000,
		Seed:          seed,
	}
}

// Routing chooses a router path for each packet at injection time.
type Routing interface {
	// Path appends the router path (src..dst inclusive) for a packet onto
	// buf and returns the extended slice (buf unchanged when unroutable).
	// occ exposes the local channel occupancy for adaptive decisions.
	// Implementations allocate nothing beyond growing buf and any
	// internal scratch, so steady-state packet injection is heap-free.
	Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int
	// MaxHops bounds the number of links of any returned path; it sizes
	// the VC array.
	MaxHops() int
}

// OccFn reports the queued flits on the directed channel u→v (summed
// over VCs).
type OccFn func(u, v int) int

type packet struct {
	path    [MaxPathNodes]int32
	nPath   int8
	hop     int8
	gen     int64
	dstEP   int32
	measure bool
}

type pktQueue struct {
	buf  []packet
	head int
}

func (q *pktQueue) empty() bool    { return q.head >= len(q.buf) }
func (q *pktQueue) len() int       { return len(q.buf) - q.head }
func (q *pktQueue) front() *packet { return &q.buf[q.head] }

func (q *pktQueue) push(p packet) { q.buf = append(q.buf, p) }

// pop compacts whenever the dead prefix reaches half the buffer: each
// element is copied at most once per residence on average (amortized O(1))
// and the buffer's high-water capacity stays ~2× the live occupancy, so
// queues reach a steady state where push never reallocates.
func (q *pktQueue) pop() {
	q.head++
	if q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

type inflight struct {
	pkt  packet
	unit int32 // destination queue unit
}

// Engine is one simulator instance bound to a topology, routing and
// traffic pattern.
type Engine struct {
	p       Params
	g       *graph.Graph
	routing Routing
	pattern traffic.Pattern
	cfg     traffic.Config
	vcs     int

	// Channels are the graph's dense directed-channel ids: channel
	// graph.FirstChannel(r)+k is r → its k-th neighbor.
	busy []int64 // channel id -> busy-until cycle
	occ  []int32 // (channel id * vcs + vc) -> queued+reserved flits

	// Queues ("units"): per channel per VC input queues at the channel's
	// destination router, plus one injection queue per endpoint.
	queues   []pktQueue
	injBase  int     // unit id of endpoint 0's injection queue
	unitHome []int32 // unit -> router owning the queue

	// Per-router active unit lists with lazy deletion.
	active   [][]int32
	inActive []bool // unit -> whether listed in active

	ejBusy  []int64 // endpoint -> ejection-channel busy-until
	injBusy []int64 // endpoint -> injection serialization

	arrivals [][]inflight // ring buffer by cycle
	now      int64
	rng      *rand.Rand

	// Injection scratch, bound once so steady-state cycles allocate
	// nothing: the reusable path buffer and the Occupancy method value.
	pathBuf []int
	occFn   OccFn

	// Generation calendar: a binary min-heap of (cycle<<24 | endpoint)
	// events, equivalent to per-cycle Bernoulli draws but skipping idle
	// endpoints (geometric gaps).
	genHeap []int64
	logQ    float64 // ln(1 - pktProb), < 0

	backlogMeasEnd int // injection-queue backlog when measurement ended

	// Metrics.
	deliveredAll   int64
	deliveredMeas  int64
	generatedMeas  int64
	latencySumMeas int64
	latencyMax     int64
	injectedFlits  int64 // measured-window flit deliveries for throughput
}

// NewEngine builds a simulator for graph g with the endpoint arrangement
// described by cfg.
func NewEngine(params Params, g *graph.Graph, cfg traffic.Config, routing Routing, pattern traffic.Pattern) *Engine {
	cfg.Routers = g.N()
	// One VC per possible link index plus one spare: the spare gives the
	// strictly-increasing VC allocator room to spread load. For MIN
	// routing on a diameter-3 topology this is exactly the paper's 4 VCs.
	e := &Engine{
		p:       params,
		g:       g,
		routing: routing,
		pattern: pattern,
		cfg:     cfg,
		vcs:     routing.MaxHops() + 1,
		rng:     rand.New(rand.NewSource(params.Seed)),
	}
	if e.vcs < 1 {
		e.vcs = 1
	}
	n := g.N()
	nChans := g.NumChannels()
	e.busy = make([]int64, nChans)
	e.occ = make([]int32, nChans*e.vcs)

	numChanUnits := nChans * e.vcs
	e.injBase = numChanUnits
	e.queues = make([]pktQueue, numChanUnits+e.cfg.Endpoints())
	e.unitHome = make([]int32, len(e.queues))
	for c := 0; c < nChans; c++ {
		for vc := 0; vc < e.vcs; vc++ {
			e.unitHome[c*e.vcs+vc] = int32(g.ChannelTo(c))
		}
	}
	for ep := 0; ep < e.cfg.Endpoints(); ep++ {
		e.unitHome[e.injBase+ep] = int32(e.cfg.RouterOf(ep))
	}
	e.active = make([][]int32, n)
	e.inActive = make([]bool, len(e.queues))
	e.ejBusy = make([]int64, e.cfg.Endpoints())
	e.injBusy = make([]int64, e.cfg.Endpoints())
	ringLen := params.PacketFlits + params.LinkLatency + 2
	e.arrivals = make([][]inflight, ringLen)
	e.occFn = e.Occupancy
	return e
}

// Occupancy implements OccFn over all VCs of channel u→v.
func (e *Engine) Occupancy(u, v int) int {
	c := e.g.ChannelID(u, v)
	if c < 0 {
		return 0
	}
	s := int32(0)
	for vc := 0; vc < e.vcs; vc++ {
		s += e.occ[c*e.vcs+vc]
	}
	return int(s)
}

func (e *Engine) markActive(unit int32) {
	if !e.inActive[unit] {
		e.inActive[unit] = true
		r := e.unitHome[unit]
		e.active[r] = append(e.active[r], unit)
	}
}

// Run simulates a full warmup+measure+drain experiment at the offered
// load (flits per endpoint per cycle) and returns the metrics. An Engine
// is single-use: build a fresh one per run.
func (e *Engine) Run(load float64) Result {
	if e.now != 0 {
		panic("sim: Engine.Run called twice; engines are single-use")
	}
	total := int64(e.p.Warmup + e.p.Measure + e.p.Drain)
	e.initGeneration(load / float64(e.p.PacketFlits))
	for t := int64(0); t < total; t++ {
		e.stepCycle(t)
	}
	e.now = total
	return e.result(load)
}

// stepCycle advances the simulation by one cycle: deliveries, packet
// generation, per-router arbitration, and the measurement-end snapshot.
// In steady state (all queues, rings and scratch buffers at their
// high-water capacity) a cycle performs zero heap allocations — see the
// AllocsPerRun regression test.
func (e *Engine) stepCycle(t int64) {
	e.now = t
	S := int64(e.p.PacketFlits)
	// 1. Deliver in-flight packets arriving this cycle.
	slot := t % int64(len(e.arrivals))
	for _, a := range e.arrivals[slot] {
		q := &e.queues[a.unit]
		q.push(a.pkt)
		e.markActive(a.unit)
	}
	e.arrivals[slot] = e.arrivals[slot][:0]

	// 2. Generate new packets (stops at drain start so the network
	// can empty; enforced by the calendar horizon).
	e.generate(t)

	// 3. Arbitrate per router.
	for r := 0; r < e.g.N(); r++ {
		units := e.active[r]
		if len(units) == 0 {
			continue
		}
		kept := units[:0]
		// Round-robin: rotate by cycle to avoid static priority.
		off := int(t) % len(units)
		for i := 0; i < len(units); i++ {
			unit := units[(i+off)%len(units)]
			q := &e.queues[unit]
			if q.empty() {
				e.inActive[unit] = false
				continue
			}
			e.tryForward(r, unit, q, S)
			if q.empty() {
				e.inActive[unit] = false
			}
		}
		// Rebuild the active list without emptied units (preserving
		// original order for fairness stability).
		for _, unit := range units {
			if e.inActive[unit] {
				kept = append(kept, unit)
			}
		}
		e.active[r] = kept
	}
	if t == int64(e.p.Warmup+e.p.Measure)-1 {
		// Source backlog only: packets still waiting in injection
		// queues (in-flight packets are not backlog).
		for i := e.injBase; i < len(e.queues); i++ {
			e.backlogMeasEnd += e.queues[i].len()
		}
	}
}

// heapPush/heapPop implement a binary min-heap over packed
// (cycle<<24 | endpoint) events.
func (e *Engine) heapPush(v int64) {
	h := append(e.genHeap, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	e.genHeap = h
}

func (e *Engine) heapPop() int64 {
	h := e.genHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.genHeap = h
	return top
}

// geoGap draws the geometric inter-generation gap (>= 1 cycle).
func (e *Engine) geoGap() int64 {
	if e.logQ >= 0 {
		return 1 // pktProb >= 1: generate every cycle
	}
	u := e.rng.Float64()
	for u == 0 {
		u = e.rng.Float64()
	}
	g := int64(math.Log(u)/e.logQ) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// initGeneration seeds the calendar so that each endpoint generates with
// probability pktProb in every cycle (first event at geoGap-1).
func (e *Engine) initGeneration(pktProb float64) {
	if pktProb <= 0 {
		return
	}
	if pktProb < 1 {
		e.logQ = math.Log(1 - pktProb)
	}
	for ep := 0; ep < e.cfg.Endpoints(); ep++ {
		e.heapPush((e.geoGap()-1)<<24 | int64(ep))
	}
}

// generate pops every endpoint scheduled to emit a packet this cycle.
func (e *Engine) generate(t int64) {
	horizon := int64(e.p.Warmup + e.p.Measure)
	for len(e.genHeap) > 0 && e.genHeap[0]>>24 <= t {
		ep := int(e.heapPop() & 0xffffff)
		if next := t + e.geoGap(); next < horizon {
			e.heapPush(next<<24 | int64(ep))
		}
		dst := e.pattern.Dest(ep, e.rng)
		if dst < 0 {
			continue
		}
		srcR, dstR := e.cfg.RouterOf(ep), e.cfg.RouterOf(dst)
		var pkt packet
		pkt.gen = t
		pkt.dstEP = int32(dst)
		pkt.measure = t >= int64(e.p.Warmup) && t < int64(e.p.Warmup+e.p.Measure)
		if srcR == dstR {
			pkt.path[0] = int32(srcR)
			pkt.nPath = 1
		} else {
			e.pathBuf = e.routing.Path(e.pathBuf[:0], srcR, dstR, e.occFn, e.rng)
			path := e.pathBuf
			if len(path) == 0 {
				// Unroutable (degraded topologies): the packet is lost.
				// It still counts as generated, so DeliveredFrac reflects
				// the loss.
				if pkt.measure {
					e.generatedMeas++
				}
				continue
			}
			if len(path) > MaxPathNodes {
				panic(fmt.Sprintf("sim: path of %d nodes exceeds MaxPathNodes", len(path)))
			}
			for i, v := range path {
				pkt.path[i] = int32(v)
			}
			pkt.nPath = int8(len(path))
		}
		if pkt.measure {
			e.generatedMeas++
		}
		unit := int32(e.injBase + ep)
		e.queues[unit].push(pkt)
		e.markActive(unit)
	}
}

// tryForward attempts to advance the head packet of a unit queue at
// router r: at most one packet per input unit per cycle; one grant per
// output resource per cycle is enforced by the busy timestamps.
func (e *Engine) tryForward(r int, unit int32, q *pktQueue, S int64) {
	{
		pkt := q.front()
		// Injection serialization: a packet leaves its endpoint at most
		// every S cycles.
		if int(unit) >= e.injBase {
			ep := int(unit) - e.injBase
			if e.injBusy[ep] > e.now {
				return
			}
		}
		atDst := int(pkt.hop) == int(pkt.nPath)-1
		if atDst {
			// Ejection to the destination endpoint.
			ep := pkt.dstEP
			if e.ejBusy[ep] > e.now {
				return
			}
			e.ejBusy[ep] = e.now + S
			e.deliver(pkt, e.now+S)
			e.release(unit, S)
			q.pop()
			return
		}
		next := int(pkt.path[pkt.hop+1])
		c := e.g.ChannelID(r, next)
		if c < 0 {
			panic("sim: packet path uses a non-edge")
		}
		if e.busy[c] > e.now {
			return
		}
		// VC allocation: each hop must use a VC strictly greater than the
		// packet's current one (injection starts below VC 0), so VC
		// indices strictly increase along every path and the channel/VC
		// dependency graph stays acyclic — while still letting packets
		// spread over the free VCs to reduce head-of-line blocking.
		// Pick the eligible VC with the most free credits.
		minVC := 0
		if int(unit) < e.injBase {
			minVC = int(unit)%e.vcs + 1
		}
		// Leave VC headroom for the links after this one: choosing too
		// high a VC now would strand the packet later.
		remaining := int(pkt.nPath) - 2 - int(pkt.hop)
		maxVC := e.vcs - 1 - remaining
		if minVC > maxVC {
			panic("sim: path longer than VC count")
		}
		slotIdx, bestFree := -1, 0
		for vc := minVC; vc <= maxVC; vc++ {
			idx := int(c)*e.vcs + vc
			if free := e.p.BufFlitsPerVC - int(e.occ[idx]); free >= int(S) && free > bestFree {
				slotIdx, bestFree = idx, free
			}
		}
		if slotIdx < 0 {
			return // no credits downstream on any eligible VC
		}
		// Grant.
		e.occ[slotIdx] += int32(S)
		e.busy[c] = e.now + S
		if int(unit) >= e.injBase {
			e.injBusy[int(unit)-e.injBase] = e.now + S
		}
		fwd := *pkt
		fwd.hop++
		arrive := (e.now + S + int64(e.p.LinkLatency)) % int64(len(e.arrivals))
		e.arrivals[arrive] = append(e.arrivals[arrive], inflight{pkt: fwd, unit: int32(slotIdx)})
		e.release(unit, S)
		q.pop()
	}
}

// release frees the upstream buffer credit when a packet leaves a channel
// queue (injection queues are unbounded and hold no credits).
func (e *Engine) release(unit int32, S int64) {
	if int(unit) < e.injBase {
		e.occ[unit] -= int32(S)
	}
}

func (e *Engine) deliver(pkt *packet, at int64) {
	e.deliveredAll++
	if pkt.measure {
		e.deliveredMeas++
		lat := at - pkt.gen
		e.latencySumMeas += lat
		if lat > e.latencyMax {
			e.latencyMax = lat
		}
		e.injectedFlits += int64(e.p.PacketFlits)
	}
}

// Result aggregates one simulation run.
type Result struct {
	Load             float64
	AvgLatency       float64 // cycles, measured packets
	MaxLatency       int64
	DeliveredFrac    float64 // measured packets delivered before the horizon
	Throughput       float64 // delivered flits / endpoint / cycle (accepted load)
	Backlog          int     // packets still queued at the horizon
	BacklogAtMeasEnd int     // packets queued when measurement ended
	Saturated        bool
}

func (e *Engine) result(load float64) Result {
	res := Result{Load: load}
	if e.deliveredMeas > 0 {
		res.AvgLatency = float64(e.latencySumMeas) / float64(e.deliveredMeas)
		res.MaxLatency = e.latencyMax
	}
	if e.generatedMeas > 0 {
		res.DeliveredFrac = float64(e.deliveredMeas) / float64(e.generatedMeas)
	}
	res.Throughput = float64(e.injectedFlits) / float64(e.cfg.Endpoints()) / float64(e.p.Measure)
	for i := range e.queues {
		res.Backlog += e.queues[i].len()
	}
	res.BacklogAtMeasEnd = e.backlogMeasEnd
	// Saturation: measured packets left undelivered, or source queues
	// holding several packets per endpoint on average when measurement
	// ended — offered load exceeding accepted load. (A backlog of a
	// couple of packets is ordinary pre-saturation queueing.)
	res.Saturated = res.DeliveredFrac < 0.99 || res.BacklogAtMeasEnd > 3*e.cfg.Endpoints()
	return res
}
