// Package sim is the cycle-level interconnect simulator used for the
// synthetic-traffic evaluation (§9): the substitute for BookSim.
//
// Model: input-queued routers with per-channel virtual-channel buffers,
// credit-based backpressure, virtual cut-through switching of fixed-size
// packets (4 flits, §9.4), per-cycle output arbitration with round-robin
// fairness, and per-endpoint injection/ejection channels. Deadlock
// freedom is structural: VC indices strictly increase along every
// packet's path (the allocator picks the least-loaded eligible VC while
// reserving headroom for the remaining hops), so the channel/VC
// dependency graph is acyclic. The VC count is MaxHops+1 — exactly the
// paper's 4 VCs for minimal routing on a diameter-3 topology.
//
// Each cycle is an explicit two-phase arbitrate→commit step over a fixed
// number of router shards: during arbitration every router reads only
// state committed by previous phases plus its own in-cycle grants, and
// cross-router effects (forwarded packets, credit releases) are recorded
// in per-shard journals applied in fixed shard order. Arbitration is
// therefore data-race-free across routers, and a run produces
// bit-identical Results at any worker count (Params.Workers) — the same
// discipline as graph.BitBFSBatch: fixed merge order, integer
// aggregation. See DESIGN.md §7 for the semantics and the
// deadlock-equivalence argument.
package sim

import (
	"math"
	"math/rand"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
	"polarstar/internal/traffic"
)

// MaxPathNodes bounds the router path length of a packet (Valiant paths
// on indirect topologies reach 9 nodes).
const MaxPathNodes = 12

// numShards is the fixed shard count of the two-phase cycle. It is
// independent of the worker count on purpose: journals are produced and
// applied in shard order, so the shard partition — not the workers that
// happen to process it — defines the results.
const numShards = 16

// Params configures a simulation run.
type Params struct {
	PacketFlits   int   // flits per packet (paper: 4)
	BufFlitsPerVC int   // input buffer capacity per VC in flits (paper: 128/4 = 32)
	LinkLatency   int   // link traversal latency in cycles
	Warmup        int   // warmup cycles before measurement
	Measure       int   // measurement window in cycles
	Drain         int   // extra cycles to drain measured packets
	Seed          int64 // RNG seed
	// Workers is the number of goroutines driving one run's routing and
	// arbitration phases (<=1: serial, the reference path; capped at the
	// shard count). Results are bit-identical for any value.
	Workers int

	// Metrics, when non-nil, is filled with the run's telemetry: packet
	// and stall counters, the measured-latency histogram and per-channel
	// occupancy high-water marks. The engine sizes its slices in
	// NewEngine and merges per-shard accumulators in fixed shard order at
	// the end of Run. Collection never touches the RNG streams or any
	// simulation state, so Results are bit-identical with metrics on or
	// off, and the steady-state cycle stays allocation-free (both pinned
	// by tests).
	Metrics *obs.SimRun
	// MetricsInterval, when positive, additionally records cumulative
	// counters into Metrics.Series every MetricsInterval cycles (sampled
	// in the serial commit phase, so rows are worker-count independent).
	MetricsInterval int

	// Plan, when non-nil and non-empty, injects live faults during the
	// run: scripted link/router failures (and repairs) applied at their
	// cycles, with fault-aware re-routing, source retries under Retry,
	// and a no-progress watchdog (see faultstate.go). A nil or empty plan
	// leaves the healthy fast path untouched — results are bit-identical
	// to an engine built without the field.
	Plan *Plan
	// Retry bounds the source-retry behavior under Plan; the zero value
	// selects DefaultRetryPolicy. Ignored without an active plan.
	Retry RetryPolicy
}

// DefaultParams mirrors the §9.4 configuration.
func DefaultParams(seed int64) Params {
	return Params{
		PacketFlits:   4,
		BufFlitsPerVC: 32,
		LinkLatency:   1,
		Warmup:        5000,
		Measure:       10000,
		Drain:         15000,
		Seed:          seed,
	}
}

// Routing chooses a router path for each packet at injection time.
type Routing interface {
	// Path appends the router path (src..dst inclusive) for a packet onto
	// buf and returns the extended slice (buf unchanged when unroutable).
	// occ exposes the local channel occupancy for adaptive decisions.
	// Implementations allocate nothing beyond growing buf and any
	// internal scratch, so steady-state packet injection is heap-free.
	Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int
	// MaxHops bounds the number of links of any returned path; it sizes
	// the VC array.
	MaxHops() int
	// Clone returns an independent instance for a parallel worker.
	// Engines with internal scratch must not share it across goroutines;
	// stateless adapters may return themselves.
	Clone() Routing
}

// OccFn reports the queued flits on the directed channel u→v (summed
// over VCs).
type OccFn func(u, v int) int

// packet stores its remaining route as the dense channel ids of its hops
// (resolved once at injection), so arbitration retries never repeat the
// neighbor search ChannelID performs.
type packet struct {
	chans   [MaxPathNodes - 1]int32 // channel id of hop i (path[i]→path[i+1])
	nHops   int8                    // channels on the path; 0 = source == destination router
	hop     int8                    // channels already traversed; ejects at hop == nHops
	gen     int64
	dstEP   int32
	srcEP   int32 // source endpoint: the re-injection point under faults
	retries uint8 // source retries already consumed (faults only)
	measure bool
}

type pktQueue struct {
	buf  []packet
	head int
}

func (q *pktQueue) empty() bool    { return q.head >= len(q.buf) }
func (q *pktQueue) len() int       { return len(q.buf) - q.head }
func (q *pktQueue) front() *packet { return &q.buf[q.head] }

func (q *pktQueue) push(p packet) { q.buf = append(q.buf, p) }

// pop compacts whenever the dead prefix reaches half the buffer: each
// element is copied at most once per residence on average (amortized O(1))
// and the buffer's high-water capacity stays ~2× the live occupancy, so
// queues reach a steady state where push never reallocates.
func (q *pktQueue) pop() {
	q.head++
	if q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

type inflight struct {
	pkt  packet
	unit int32 // destination queue unit
}

// pendingInj is a packet generated this cycle, waiting for the routing
// phase of its source router's shard (generation itself stays serial: it
// drives the pattern RNG).
type pendingInj struct {
	ep  int32 // source endpoint
	dst int32 // destination endpoint
	ctr int64 // global injection counter: seeds the per-packet route RNG
	// gen is the cycle the packet was first generated (== the current
	// cycle for fresh packets; the original cycle for retries, so latency
	// and the age timeout span the whole delivery attempt).
	gen     int64
	retries uint8 // source retries already consumed (faults only)
}

// Engine is one simulator instance bound to a topology, routing and
// traffic pattern.
type Engine struct {
	p       Params
	g       *graph.Graph
	routing Routing
	pattern traffic.Pattern
	cfg     traffic.Config
	vcs     int
	workers int

	// Channels are the graph's dense directed-channel ids: channel
	// graph.FirstChannel(r)+k is r → its k-th neighbor. All per-channel
	// state is written only by the channel's source router during
	// arbitration (occ decrements are journaled to commit), which is what
	// makes the arbitration phase race-free.
	busy   []int64 // channel id -> busy-until cycle
	occ    []int32 // (channel id * vcs + vc) -> queued+reserved flits
	occSum []int32 // channel id -> occ summed over VCs (Occupancy fast path)

	// chanIdx densifies ChannelID: (u*n+v) -> channel id or -1. Path→
	// channel resolution and UGAL occupancy scoring perform one lookup
	// per hop per packet — tens of millions per run — so the ~n² int32
	// table (4.5 MB for the Table-3 PolarStar) beats the per-call
	// binary search. nil above the size cap (huge design-space graphs).
	chanIdx []int32

	// Queues ("units"): per channel per VC input queues at the channel's
	// destination router, plus one injection queue per endpoint.
	queues   []pktQueue
	injBase  int     // unit id of endpoint 0's injection queue
	unitHome []int32 // unit -> router owning the queue

	// Per-router active unit lists with lazy deletion, and the per-shard
	// active-router worklists above them: a cycle touches only routers
	// with queued packets, not all N.
	active      [][]int32
	inActive    []bool // unit -> whether listed in active
	routerShard []int8 // router -> owning shard (contiguous blocks)
	inWorklist  []bool // router -> whether listed in its shard's worklist

	ejBusy  []int64 // endpoint -> ejection-channel busy-until
	injBusy []int64 // endpoint -> injection serialization

	// mail[(src*numShards+dst)*ringLen+slot] holds packets forwarded by
	// shard src to queues owned by shard dst, arriving at cycle slot.
	// Written only by src (during its arbitration), drained only by dst
	// (at the start of its next arbitration) in fixed src order.
	mail    [][]inflight
	ringLen int

	now       int64
	rng       *rand.Rand // serial generation stream: calendar gaps + destinations
	measuring bool       // current cycle inside the measurement window

	shards [numShards]*shardState

	// Generation calendar: a binary min-heap of (cycle<<24 | endpoint)
	// events, equivalent to per-cycle Bernoulli draws but skipping idle
	// endpoints (geometric gaps).
	genHeap []int64
	logQ    float64 // ln(1 - pktProb), < 0

	pktCtr         int64 // injection counter: per-packet route-RNG seeds
	backlogMeasEnd int   // injection-queue backlog when measurement ended
	generatedMeas  int64

	// Telemetry (nil/0 when the run is unobserved). occHWM aliases
	// met.OccHWM; each channel's mark is written only by the channel's
	// source-router shard during arbitration, so collection is race-free
	// by the same ownership argument as the occupancy arrays.
	met         *obs.SimRun
	metInterval int64
	occHWM      obs.ChannelHWM

	// fs is the live fault-injection state, non-nil only when Params.Plan
	// carries events. Every fault hook on the hot path is gated on it, so
	// plan-less runs take the identical (and allocation-free) code path
	// they always did.
	fs *faultState

	pool workerPool
}

// shardState is the per-shard slice of the engine: the active-router
// worklist, the injection/forward/release journals, the routing engine
// clone with its scratch, and the metric accumulators. Every field is
// touched only by the shard that owns it during the parallel phases;
// journals are drained in fixed shard order.
type shardState struct {
	routers  []int32      // active-router worklist (lazy deletion via inWorklist)
	pending  []pendingInj // packets generated this cycle on this shard's routers
	releases []int32      // channel units whose credit frees at commit

	routing Routing
	rngSrc  splitmix
	rng     *rand.Rand
	pathBuf []int
	occFn   OccFn

	// Fault-mode journals/scratch (untouched when the engine has no plan).
	retryQ []retryReq // source retries requested during this shard's phases
	escBuf []int      // detour path scratch

	// lostPkts counts packets lost at routing time (unroutable or
	// over-budget paths). Unlike the met counters it is always on: Result
	// reports losses even for unobserved runs.
	lostPkts int64

	// Metrics, merged in shard order after the run.
	deliveredAll   int64
	deliveredMeas  int64
	latencySumMeas int64
	latencyMax     int64
	injectedFlits  int64

	// Telemetry accumulators (nil when the run is unobserved).
	met *shardMetrics
}

// shardMetrics is the per-shard telemetry slice: counters and a latency
// histogram owned by one shard during the parallel phases, merged into
// the run's obs.SimRun in fixed shard order at the end. All storage is
// sized at engine construction, so recording allocates nothing.
type shardMetrics struct {
	injected    int64 // packets routed and enqueued at their source
	lost        int64 // unroutable or over-budget paths
	stallInj    int64
	stallEject  int64
	stallBusy   int64
	stallCredit int64
	creditVC    []int64 // credit stalls keyed by the packet's lowest eligible VC
	lat         obs.Histogram
}

func (m *shardMetrics) stalls() int64 {
	return m.stallInj + m.stallEject + m.stallBusy + m.stallCredit
}

// NewEngine builds a simulator for graph g with the endpoint arrangement
// described by cfg.
func NewEngine(params Params, g *graph.Graph, cfg traffic.Config, routing Routing, pattern traffic.Pattern) *Engine {
	cfg.Routers = g.N()
	// One VC per possible link index plus one spare: the spare gives the
	// strictly-increasing VC allocator room to spread load. For MIN
	// routing on a diameter-3 topology this is exactly the paper's 4 VCs.
	e := &Engine{
		p:       params,
		g:       g,
		routing: routing,
		pattern: pattern,
		cfg:     cfg,
		vcs:     routing.MaxHops() + 1,
		rng:     rand.New(rand.NewSource(params.Seed)),
	}
	if e.vcs < 1 {
		e.vcs = 1
	}
	planActive := !params.Plan.Empty()
	if planActive && e.vcs < MaxPathNodes {
		// Detour paths (repaired-table or spanning-tree escape) may use up
		// to MaxPathNodes-1 links; the VC ladder must cover them.
		e.vcs = MaxPathNodes
	}
	e.workers = params.Workers
	if e.workers < 1 {
		e.workers = 1
	}
	if e.workers > numShards {
		e.workers = numShards
	}
	n := g.N()
	nChans := g.NumChannels()
	e.busy = make([]int64, nChans)
	e.occ = make([]int32, nChans*e.vcs)
	e.occSum = make([]int32, nChans)
	if n*n <= 1<<22 { // ≤ 16 MB; covers every Table-3 configuration
		e.chanIdx = make([]int32, n*n)
		for i := range e.chanIdx {
			e.chanIdx[i] = -1
		}
		for u := 0; u < n; u++ {
			first := g.FirstChannel(u)
			for k, w := range g.Neighbors(u) {
				e.chanIdx[u*n+int(w)] = int32(first + k)
			}
		}
	}

	numChanUnits := nChans * e.vcs
	e.injBase = numChanUnits
	e.queues = make([]pktQueue, numChanUnits+e.cfg.Endpoints())
	e.unitHome = make([]int32, len(e.queues))
	for c := 0; c < nChans; c++ {
		for vc := 0; vc < e.vcs; vc++ {
			e.unitHome[c*e.vcs+vc] = int32(g.ChannelTo(c))
		}
	}
	for ep := 0; ep < e.cfg.Endpoints(); ep++ {
		e.unitHome[e.injBase+ep] = int32(e.cfg.RouterOf(ep))
	}
	e.active = make([][]int32, n)
	e.inActive = make([]bool, len(e.queues))
	e.inWorklist = make([]bool, n)
	e.routerShard = make([]int8, n)
	for r := 0; r < n; r++ {
		e.routerShard[r] = int8(r * numShards / n)
	}
	e.ejBusy = make([]int64, e.cfg.Endpoints())
	e.injBusy = make([]int64, e.cfg.Endpoints())
	e.ringLen = params.PacketFlits + params.LinkLatency + 2
	e.mail = make([][]inflight, numShards*numShards*e.ringLen)
	for s := 0; s < numShards; s++ {
		sh := &shardState{routing: routing.Clone()}
		sh.rng = rand.New(&sh.rngSrc)
		sh.occFn = e.Occupancy
		e.shards[s] = sh
	}
	if params.Metrics != nil {
		e.initMetrics(params)
	}
	if planActive {
		e.initFaults(params)
	}
	e.pool.start(e)
	return e
}

// initMetrics sizes the telemetry storage once, before the first cycle:
// the per-channel occupancy marks, the per-shard counters and latency
// histograms, and the interval series at its exact final capacity. After
// this, every record on the hot path is a plain array update.
func (e *Engine) initMetrics(params Params) {
	m := params.Metrics
	e.met = m
	m.CreditStallVC = make([]int64, e.vcs)
	m.OccHWM = make(obs.ChannelHWM, e.g.NumChannels())
	e.occHWM = m.OccHWM
	for _, sh := range e.shards {
		sh.met = &shardMetrics{creditVC: make([]int64, e.vcs)}
	}
	if params.MetricsInterval > 0 {
		e.metInterval = int64(params.MetricsInterval)
		m.Interval = params.MetricsInterval
		total := params.Warmup + params.Measure + params.Drain
		m.Series = make([]obs.IntervalRow, 0, total/params.MetricsInterval+2)
	}
}

// Occupancy implements OccFn over all VCs of channel u→v. During the
// routing phase the occupancy arrays are stable (grants and releases
// land in the arbitration and commit phases), so adaptive routing reads
// a consistent previous-cycle snapshot.
func (e *Engine) Occupancy(u, v int) int {
	c := e.channelID(u, v)
	if c < 0 {
		return 0
	}
	return int(e.occSum[c])
}

func (e *Engine) channelID(u, v int) int {
	if e.chanIdx != nil {
		return int(e.chanIdx[u*e.g.N()+v])
	}
	return e.g.ChannelID(u, v)
}

// markActive lists a newly non-empty unit on its router, and the router
// on the owning shard's worklist. Callers are always the owning shard
// (or the serial sections), so no synchronization is needed.
func (e *Engine) markActive(unit int32, sh *shardState) {
	if !e.inActive[unit] {
		e.inActive[unit] = true
		r := e.unitHome[unit]
		e.active[r] = append(e.active[r], unit)
		if !e.inWorklist[r] {
			e.inWorklist[r] = true
			sh.routers = append(sh.routers, r)
		}
	}
}

// Run simulates a full warmup+measure+drain experiment at the offered
// load (flits per endpoint per cycle) and returns the metrics. An Engine
// is single-use: build a fresh one per run.
func (e *Engine) Run(load float64) Result {
	if e.now != 0 {
		panic("sim: Engine.Run called twice; engines are single-use")
	}
	total := int64(e.p.Warmup + e.p.Measure + e.p.Drain)
	e.initGeneration(load / float64(e.p.PacketFlits))
	for t := int64(0); t < total; t++ {
		e.stepCycle(t)
		if e.fs != nil && e.fs.done {
			// The watchdog declared the run wedged: everything still queued
			// is counted stranded; skip the remaining drain cycles.
			total = t + 1
			break
		}
	}
	e.now = total
	e.pool.stop()
	return e.result(load)
}

// stepCycle advances the simulation by one cycle:
//
//  1. generation (serial: the calendar and the traffic pattern share one
//     RNG stream), queuing pending injections on their routers' shards;
//  2. the routing phase (parallel over shards): each shard routes its
//     pending packets with a per-packet-seeded RNG, resolves the path to
//     channel ids, and enqueues them on its injection queues;
//  3. the arbitration phase (parallel over shards): each shard drains
//     the packets other shards forwarded to it (in fixed shard order),
//     then arbitrates its active routers, writing only router-owned
//     state and journaling forwards and credit releases;
//  4. commit (serial): journaled credit releases are applied in shard
//     order, making them visible to the next cycle.
//
// In steady state (all queues, rings and scratch buffers at their
// high-water capacity) a cycle performs zero heap allocations — see the
// AllocsPerRun regression test.
func (e *Engine) stepCycle(t int64) {
	e.now = t
	e.measuring = t >= int64(e.p.Warmup) && t < int64(e.p.Warmup+e.p.Measure)
	if e.fs != nil {
		e.applyFaults(t)
		e.injectRetries(t)
	}
	e.generate(t)
	e.pool.run(phaseRoute)
	e.pool.run(phaseArbitrate)
	e.commit(t)
	if e.fs != nil {
		e.collectRetries(t)
		e.watchdog(t)
	}
}

// commit applies the per-shard credit-release journals in fixed shard
// order. Releases become visible only here — after every router has
// arbitrated — which is what decouples the routers within a cycle.
func (e *Engine) commit(t int64) {
	S := int32(e.p.PacketFlits)
	vcs := int32(e.vcs)
	for _, sh := range e.shards {
		for _, unit := range sh.releases {
			e.occ[unit] -= S
			e.occSum[unit/vcs] -= S
		}
		sh.releases = sh.releases[:0]
	}
	if t == int64(e.p.Warmup+e.p.Measure)-1 {
		// Source backlog only: packets still waiting in injection
		// queues (in-flight packets are not backlog).
		for i := e.injBase; i < len(e.queues); i++ {
			e.backlogMeasEnd += e.queues[i].len()
		}
	}
	if e.metInterval > 0 && (t+1)%e.metInterval == 0 {
		e.sampleInterval(t + 1)
	}
}

// sampleInterval appends one cumulative-counter row to the interval
// series. It runs in the serial commit phase — after every shard's
// arbitration — so the sums it reads are the committed end-of-cycle state
// and identical for any worker count. The series slice was presized in
// initMetrics; the append never reallocates.
func (e *Engine) sampleInterval(cycle int64) {
	row := obs.IntervalRow{Cycle: cycle, Generated: e.pktCtr}
	for _, sh := range e.shards {
		row.Delivered += sh.deliveredAll
		row.Injected += sh.met.injected
		row.Stalled += sh.met.stalls()
	}
	e.met.Series = append(e.met.Series, row)
}

// heapPush/heapPop implement a binary min-heap over packed
// (cycle<<24 | endpoint) events.
func (e *Engine) heapPush(v int64) {
	h := append(e.genHeap, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	e.genHeap = h
}

func (e *Engine) heapPop() int64 {
	h := e.genHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.genHeap = h
	return top
}

// geoGap draws the geometric inter-generation gap (>= 1 cycle).
func (e *Engine) geoGap() int64 {
	if e.logQ >= 0 {
		return 1 // pktProb >= 1: generate every cycle
	}
	u := e.rng.Float64()
	for u == 0 {
		u = e.rng.Float64()
	}
	g := int64(math.Log(u)/e.logQ) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// initGeneration seeds the calendar so that each endpoint generates with
// probability pktProb in every cycle (first event at geoGap-1).
func (e *Engine) initGeneration(pktProb float64) {
	if pktProb <= 0 {
		return
	}
	if pktProb < 1 {
		e.logQ = math.Log(1 - pktProb)
	}
	for ep := 0; ep < e.cfg.Endpoints(); ep++ {
		e.heapPush((e.geoGap()-1)<<24 | int64(ep))
	}
}

// generate pops every endpoint scheduled to emit a packet this cycle and
// records the pending injection on the source router's shard. Only the
// destination draw consumes the engine RNG; routing happens in the
// parallel phase under a per-packet seed.
func (e *Engine) generate(t int64) {
	horizon := int64(e.p.Warmup + e.p.Measure)
	for len(e.genHeap) > 0 && e.genHeap[0]>>24 <= t {
		ep := int(e.heapPop() & 0xffffff)
		if next := t + e.geoGap(); next < horizon {
			e.heapPush(next<<24 | int64(ep))
		}
		dst := e.pattern.Dest(ep, e.rng)
		if dst < 0 {
			continue
		}
		if e.measuring {
			e.generatedMeas++
		}
		sh := e.shards[e.routerShard[e.cfg.RouterOf(ep)]]
		sh.pending = append(sh.pending, pendingInj{ep: int32(ep), dst: int32(dst), ctr: e.pktCtr, gen: t})
		e.pktCtr++
	}
}

// routeShard is the routing phase of one shard: route every pending
// packet, resolve the vertex path to channel ids once, and enqueue it on
// the source endpoint's injection queue. Occupancy reads (UGAL) see the
// stable previous-cycle state; the per-packet seed makes the result
// independent of how packets are spread over shards and workers.
func (e *Engine) routeShard(sh *shardState) {
	for _, pi := range sh.pending {
		srcR, dstR := e.cfg.RouterOf(int(pi.ep)), e.cfg.RouterOf(int(pi.dst))
		var pkt packet
		pkt.gen = pi.gen
		pkt.dstEP = pi.dst
		pkt.srcEP = pi.ep
		pkt.retries = pi.retries
		pkt.measure = pi.gen >= int64(e.p.Warmup) && pi.gen < int64(e.p.Warmup+e.p.Measure)
		if srcR != dstR {
			sh.rngSrc.seed(e.p.Seed, pi.ctr)
			sh.pathBuf = sh.routing.Path(sh.pathBuf[:0], srcR, dstR, sh.occFn, sh.rng)
			path := sh.pathBuf
			if e.fs != nil {
				// Fault mode: validate the path against current liveness,
				// fall back to the repaired table or a spanning-tree escape
				// path, and source-retry what cannot be routed right now.
				detour, ok := e.fs.detour(sh, srcR, dstR, path)
				if !ok {
					sh.retryQ = append(sh.retryQ, retryReq{ep: pi.ep, dst: pi.dst, gen: pi.gen, retries: pi.retries})
					continue
				}
				path = detour
			}
			if len(path) == 0 || len(path) > MaxPathNodes {
				// Unroutable, or beyond the simulator's path/VC budget
				// (deeply degraded topologies stretch paths arbitrarily;
				// a path longer than the VC ladder is undeliverable
				// deadlock-free): the packet is lost. It still counted
				// as generated, so DeliveredFrac reflects the loss.
				sh.lostPkts++
				if sh.met != nil {
					sh.met.lost++
				}
				continue
			}
			for i := 0; i+1 < len(path); i++ {
				c := e.channelID(path[i], path[i+1])
				if c < 0 {
					panic("sim: packet path uses a non-edge")
				}
				pkt.chans[i] = int32(c)
			}
			pkt.nHops = int8(len(path) - 1)
		}
		unit := int32(e.injBase + int(pi.ep))
		e.queues[unit].push(pkt)
		e.markActive(unit, sh)
		if sh.met != nil {
			sh.met.injected++
		}
	}
	sh.pending = sh.pending[:0]
}

// arbitrateShard is the arbitration phase of one shard: drain the
// packets other shards forwarded to this shard's queues (fixed source
// order keeps queue contents deterministic), then arbitrate the active
// routers of the worklist.
func (e *Engine) arbitrateShard(sh *shardState, sid int) {
	t := e.now
	slot := int(t % int64(e.ringLen))
	for src := 0; src < numShards; src++ {
		box := &e.mail[(src*numShards+sid)*e.ringLen+slot]
		for i := range *box {
			a := &(*box)[i]
			e.queues[a.unit].push(a.pkt)
			e.markActive(a.unit, sh)
		}
		*box = (*box)[:0]
	}

	S := int64(e.p.PacketFlits)
	kept := sh.routers[:0]
	for _, r := range sh.routers {
		units := e.active[r]
		keptUnits := units[:0]
		// Round-robin: rotate by cycle to avoid static priority. The
		// rotation is computed in int64 so 32-bit ints cannot truncate
		// the cycle count.
		off := int(t % int64(len(units)))
		for i := 0; i < len(units); i++ {
			unit := units[(i+off)%len(units)]
			q := &e.queues[unit]
			if q.empty() {
				e.inActive[unit] = false
				continue
			}
			e.tryForward(sh, sid, unit, q, S)
			if q.empty() {
				e.inActive[unit] = false
			}
		}
		// Rebuild the active list without emptied units (preserving
		// original order for fairness stability).
		for _, unit := range units {
			if e.inActive[unit] {
				keptUnits = append(keptUnits, unit)
			}
		}
		e.active[r] = keptUnits
		if len(keptUnits) == 0 {
			e.inWorklist[r] = false
		} else {
			kept = append(kept, r)
		}
	}
	sh.routers = kept
}

// tryForward attempts to advance the head packet of a unit queue: at
// most one packet per input unit per cycle; one grant per output
// resource per cycle is enforced by the busy timestamps. All state it
// writes is owned by the arbitrating router (channel busy/occ of its
// outgoing channels, its endpoints' injection/ejection serialization);
// effects on other routers — forwarded packets, freed credits — go into
// the shard journals.
func (e *Engine) tryForward(sh *shardState, sid int, unit int32, q *pktQueue, S int64) {
	pkt := q.front()
	// Injection serialization: a packet leaves its endpoint at most
	// every S cycles.
	if int(unit) >= e.injBase {
		ep := int(unit) - e.injBase
		if e.injBusy[ep] > e.now {
			if sh.met != nil {
				sh.met.stallInj++
			}
			return
		}
	}
	if pkt.hop == pkt.nHops {
		// Ejection to the destination endpoint.
		ep := pkt.dstEP
		if e.fs != nil && e.fs.deadRouter[e.cfg.RouterOf(int(ep))] {
			// The destination router died under the packet: drop it here,
			// release this buffer's credit, and source-retry.
			e.fs.retryFrom(sh, pkt)
			e.release(sh, unit)
			q.pop()
			return
		}
		if e.ejBusy[ep] > e.now {
			if sh.met != nil {
				sh.met.stallEject++
			}
			return
		}
		e.ejBusy[ep] = e.now + S
		sh.deliver(pkt, e.now+S, e.p.PacketFlits)
		e.release(sh, unit)
		q.pop()
		return
	}
	c := pkt.chans[pkt.hop]
	if e.fs != nil && e.fs.deadChan[c] {
		// The next link of the packet's path is down: the packet is
		// dropped from this buffer (credit released at commit, preserving
		// the reclaim invariant) and source-retried — the retry re-routes
		// around the failure.
		e.fs.retryFrom(sh, pkt)
		e.release(sh, unit)
		q.pop()
		return
	}
	if e.busy[c] > e.now {
		if sh.met != nil {
			sh.met.stallBusy++
		}
		return
	}
	// VC allocation: each hop must use a VC strictly greater than the
	// packet's current one (injection starts below VC 0), so VC
	// indices strictly increase along every path and the channel/VC
	// dependency graph stays acyclic — while still letting packets
	// spread over the free VCs to reduce head-of-line blocking.
	// Pick the eligible VC with the most free credits.
	minVC := 0
	if int(unit) < e.injBase {
		minVC = int(unit)%e.vcs + 1
	}
	// Leave VC headroom for the links after this one: choosing too
	// high a VC now would strand the packet later.
	remaining := int(pkt.nHops) - 1 - int(pkt.hop)
	maxVC := e.vcs - 1 - remaining
	if minVC > maxVC {
		panic("sim: path longer than VC count")
	}
	slotIdx, bestFree := -1, 0
	for vc := minVC; vc <= maxVC; vc++ {
		idx := int(c)*e.vcs + vc
		if free := e.p.BufFlitsPerVC - int(e.occ[idx]); free >= int(S) && free > bestFree {
			slotIdx, bestFree = idx, free
		}
	}
	if slotIdx < 0 {
		if sh.met != nil {
			sh.met.stallCredit++
			sh.met.creditVC[minVC]++
		}
		return // no credits downstream on any eligible VC
	}
	// Grant.
	e.occ[slotIdx] += int32(S)
	e.occSum[c] += int32(S)
	if e.occHWM != nil {
		e.occHWM.Observe(int(c), e.occSum[c])
	}
	e.busy[c] = e.now + S
	if int(unit) >= e.injBase {
		e.injBusy[int(unit)-e.injBase] = e.now + S
	}
	fwd := *pkt
	fwd.hop++
	dstShard := int(e.routerShard[e.g.ChannelTo(int(c))])
	arrive := int((e.now + S + int64(e.p.LinkLatency)) % int64(e.ringLen))
	box := &e.mail[(sid*numShards+dstShard)*e.ringLen+arrive]
	*box = append(*box, inflight{pkt: fwd, unit: int32(slotIdx)})
	e.release(sh, unit)
	q.pop()
}

// release journals the upstream buffer credit freed when a packet leaves
// a channel queue (injection queues are unbounded and hold no credits).
// The credit becomes visible at commit, after every router has
// arbitrated this cycle.
func (e *Engine) release(sh *shardState, unit int32) {
	if int(unit) < e.injBase {
		sh.releases = append(sh.releases, unit)
	}
}

func (sh *shardState) deliver(pkt *packet, at int64, flits int) {
	sh.deliveredAll++
	if pkt.measure {
		sh.deliveredMeas++
		lat := at - pkt.gen
		sh.latencySumMeas += lat
		if lat > sh.latencyMax {
			sh.latencyMax = lat
		}
		sh.injectedFlits += int64(flits)
		if sh.met != nil {
			sh.met.lat.Observe(lat)
		}
	}
}

// Result aggregates one simulation run.
type Result struct {
	Load             float64
	AvgLatency       float64 // cycles, measured packets
	MaxLatency       int64
	DeliveredFrac    float64 // measured packets delivered before the horizon
	Throughput       float64 // delivered flits / endpoint / cycle (accepted load)
	Backlog          int     // packets still queued at the horizon
	BacklogAtMeasEnd int     // packets queued when measurement ended
	Saturated        bool

	// Fault accounting. Lost is always filled (unroutable packets occur
	// on statically degraded topologies too); Dropped/Retried/
	// TerminatedEarly are nonzero only under an active fault plan.
	Lost            int64 // packets lost for good (unroutable, retry budget, age timeout, stranded)
	Dropped         int64 // packets dropped in flight on a dying link (then retried)
	Retried         int64 // source retries performed
	TerminatedEarly bool  // the no-progress watchdog ended the run before the horizon
}

func (e *Engine) result(load float64) Result {
	var deliveredMeas, latencySum, latencyMax, injectedFlits int64
	for _, sh := range e.shards {
		deliveredMeas += sh.deliveredMeas
		latencySum += sh.latencySumMeas
		injectedFlits += sh.injectedFlits
		if sh.latencyMax > latencyMax {
			latencyMax = sh.latencyMax
		}
	}
	res := Result{Load: load}
	if deliveredMeas > 0 {
		res.AvgLatency = float64(latencySum) / float64(deliveredMeas)
		res.MaxLatency = latencyMax
	}
	if e.generatedMeas > 0 {
		res.DeliveredFrac = float64(deliveredMeas) / float64(e.generatedMeas)
	}
	res.Throughput = float64(injectedFlits) / float64(e.cfg.Endpoints()) / float64(e.p.Measure)
	for i := range e.queues {
		res.Backlog += e.queues[i].len()
	}
	res.BacklogAtMeasEnd = e.backlogMeasEnd
	for _, sh := range e.shards {
		res.Lost += sh.lostPkts
	}
	if e.fs != nil {
		res.Lost += e.fs.lostRetries + e.fs.lostTimeout + e.fs.lostStranded
		res.Dropped = e.fs.droppedInFlight
		res.Retried = e.fs.retried
		res.TerminatedEarly = e.fs.done
	}
	// Saturation: measured packets left undelivered, or source queues
	// holding several packets per endpoint on average when measurement
	// ended — offered load exceeding accepted load. (A backlog of a
	// couple of packets is ordinary pre-saturation queueing.)
	res.Saturated = res.DeliveredFrac < 0.99 || res.BacklogAtMeasEnd > 3*e.cfg.Endpoints()
	if e.met != nil {
		e.finishMetrics(res)
	}
	return res
}

// finishMetrics merges the per-shard telemetry accumulators into the
// run's obs.SimRun in fixed shard order (all sums are integers, so the
// order is immaterial — it is fixed anyway, matching the discipline of
// every other aggregation in this package) and echoes the Result fields
// so the artifact stands alone.
func (e *Engine) finishMetrics(res Result) {
	m := e.met
	m.Load = res.Load
	m.Generated.Add(e.pktCtr)
	for _, sh := range e.shards {
		sm := sh.met
		m.Injected.Add(sm.injected)
		m.Lost.Add(sm.lost)
		m.Delivered.Add(sh.deliveredAll)
		m.StallInject.Add(sm.stallInj)
		m.StallEject.Add(sm.stallEject)
		m.StallChannel.Add(sm.stallBusy)
		m.StallCredit.Add(sm.stallCredit)
		for vc, n := range sm.creditVC {
			m.CreditStallVC[vc] += n
		}
		m.Latency.Merge(&sm.lat)
	}
	m.AvgLatency = res.AvgLatency
	m.Throughput = res.Throughput
	m.DeliveredFrac = res.DeliveredFrac
	m.Saturated = res.Saturated
	if fs := e.fs; fs != nil {
		m.Faults = &obs.SimFaults{
			PlanEvents:      int64(len(fs.plan.Events)),
			EventsApplied:   fs.eventsApplied,
			DroppedInFlight: obs.Counter(fs.droppedInFlight),
			Retries:         obs.Counter(fs.retried),
			LostRetryBudget: obs.Counter(fs.lostRetries),
			LostTimeout:     obs.Counter(fs.lostTimeout),
			LostStranded:    obs.Counter(fs.lostStranded),
			TerminatedEarly: fs.done,
			TerminatedAt:    fs.doneAt,
		}
	}
}
