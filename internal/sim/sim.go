// Package sim is the cycle-level interconnect simulator used for the
// synthetic-traffic evaluation (§9): the substitute for BookSim.
//
// Model: input-queued routers with per-channel virtual-channel buffers,
// credit-based backpressure, virtual cut-through switching of fixed-size
// packets (4 flits, §9.4), per-cycle output arbitration with round-robin
// fairness, and per-endpoint injection/ejection channels. Deadlock
// freedom is structural: VC indices strictly increase along every
// packet's path (the allocator picks the least-loaded eligible VC while
// reserving headroom for the remaining hops), so the channel/VC
// dependency graph is acyclic. The VC count is MaxHops+1 — exactly the
// paper's 4 VCs for minimal routing on a diameter-3 topology.
//
// Each cycle is an explicit two-phase arbitrate→commit step over a fixed
// number of router shards: during arbitration every router reads only
// state committed by previous phases plus its own in-cycle grants, and
// cross-router effects (forwarded packets, credit releases) are recorded
// in per-shard journals applied in fixed shard order. Arbitration is
// therefore data-race-free across routers, and a run produces
// bit-identical Results at any worker count (Params.Workers) — the same
// discipline as graph.BitBFSBatch: fixed merge order, integer
// aggregation. See DESIGN.md §7 for the semantics and the
// deadlock-equivalence argument.
//
// Packet state lives in a structure-of-arrays slab (store.go) and cycles
// with no possible work are skipped outright by the event-horizon
// advance (horizon.go); DESIGN.md §10 argues why neither can change a
// single Result bit.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
	"polarstar/internal/traffic"
)

// MaxPathNodes bounds the router path length of a packet (Valiant paths
// on indirect topologies reach 9 nodes).
const MaxPathNodes = 12

// numShards is the fixed shard count of the two-phase cycle. It is
// independent of the worker count on purpose: journals are produced and
// applied in shard order, so the shard partition — not the workers that
// happen to process it — defines the results.
const numShards = 16

// Generation-calendar packing (cycle<<epBits | endpoint). epBits caps the
// endpoint count; the cycle field gets the remaining 39 value bits of an
// int64 (one bit stays as sign headroom). NewEngine rejects
// configurations outside either range instead of corrupting the heap.
const (
	epBits      = 24
	maxEndpoint = 1 << epBits
	maxCycle    = int64(1) << 39
)

// Params configures a simulation run.
type Params struct {
	PacketFlits   int   // flits per packet (paper: 4)
	BufFlitsPerVC int   // input buffer capacity per VC in flits (paper: 128/4 = 32)
	LinkLatency   int   // link traversal latency in cycles
	Warmup        int   // warmup cycles before measurement
	Measure       int   // measurement window in cycles
	Drain         int   // extra cycles to drain measured packets
	Seed          int64 // RNG seed
	// Workers is the number of goroutines driving one run's routing and
	// arbitration phases (<=1: serial, the reference path; capped at the
	// shard count). Results are bit-identical for any value.
	Workers int

	// Metrics, when non-nil, is filled with the run's telemetry: packet
	// and stall counters, the measured-latency histogram and per-channel
	// occupancy high-water marks. The engine sizes its slices in
	// NewEngine and merges per-shard accumulators in fixed shard order at
	// the end of Run. Collection never touches the RNG streams or any
	// simulation state, so Results are bit-identical with metrics on or
	// off, and the steady-state cycle stays allocation-free (both pinned
	// by tests).
	Metrics *obs.SimRun
	// MetricsInterval, when positive, additionally records cumulative
	// counters into Metrics.Series every MetricsInterval cycles (sampled
	// in the serial commit phase, so rows are worker-count independent).
	MetricsInterval int

	// Plan, when non-nil and non-empty, injects live faults during the
	// run: scripted link/router failures (and repairs) applied at their
	// cycles, with fault-aware re-routing, source retries under Retry,
	// and a no-progress watchdog (see faultstate.go). A nil or empty plan
	// leaves the healthy fast path untouched — results are bit-identical
	// to an engine built without the field.
	Plan *Plan
	// Retry bounds the source-retry behavior under Plan; the zero value
	// selects DefaultRetryPolicy. Ignored without an active plan.
	Retry RetryPolicy

	// Lanes is the spanning-tree lane count of the multipath routing
	// modes (MPMINMode/MPUGALMode): 0 selects the default of 3, and the
	// extractor may find fewer on sparse topologies. Ignored by the
	// single-table modes.
	Lanes int
	// RepairDelay models route recomputation under Plan as a convergence
	// window: after any applied fault event, the repaired all-pairs table
	// is unusable for this many cycles and dead-path traffic falls back
	// to escape paths and source retries — the global stall a single
	// routing table pays on every topology change. 0 (the default) keeps
	// repair instantaneous, preserving pre-existing results exactly.
	// Ignored without an active plan.
	RepairDelay int64
}

// DefaultParams mirrors the §9.4 configuration.
func DefaultParams(seed int64) Params {
	return Params{
		PacketFlits:   4,
		BufFlitsPerVC: 32,
		LinkLatency:   1,
		Warmup:        5000,
		Measure:       10000,
		Drain:         15000,
		Seed:          seed,
	}
}

// Routing chooses a router path for each packet at injection time.
type Routing interface {
	// Path appends the router path (src..dst inclusive) for a packet onto
	// buf and returns the extended slice (buf unchanged when unroutable).
	// occ exposes the local channel occupancy for adaptive decisions.
	// Implementations allocate nothing beyond growing buf and any
	// internal scratch, so steady-state packet injection is heap-free.
	Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int
	// MaxHops bounds the number of links of any returned path; it sizes
	// the VC array.
	MaxHops() int
	// Clone returns an independent instance for a parallel worker.
	// Engines with internal scratch must not share it across goroutines;
	// stateless adapters may return themselves.
	Clone() Routing
}

// OccFn reports the queued flits on the directed channel u→v (summed
// over VCs).
type OccFn func(u, v int) int

// inflight is one packet traversing a link through the mail rings: the
// slab id plus the destination queue unit. 8 bytes — the whole cross-
// shard handoff.
type inflight struct {
	id   int32 // packet id into Engine.pkts
	unit int32 // destination queue unit
}

// pendingInj is a packet generated this cycle, waiting for the routing
// phase of its source router's shard (generation itself stays serial: it
// drives the pattern RNG).
type pendingInj struct {
	ep  int32 // source endpoint
	dst int32 // destination endpoint
	ctr int64 // global injection counter: seeds the per-packet route RNG
	// gen is the cycle the packet was first generated (== the current
	// cycle for fresh packets; the original cycle for retries, so latency
	// and the age timeout span the whole delivery attempt).
	gen     int64
	retries uint8 // source retries already consumed (faults only)
}

// Engine is one simulator instance bound to a topology, routing and
// traffic pattern.
type Engine struct {
	p       Params
	g       *graph.Graph
	routing Routing
	pattern traffic.Pattern
	cfg     traffic.Config
	vcs     int
	workers int

	// Lane → VC band mapping. With a plain Routing engine laneCount is 1
	// and the single band spans the whole ladder, making the band-clamped
	// VC arithmetic in tryForward bit-identical to the classic bounds.
	// With a lanedRouting engine each lane owns a disjoint band: paths
	// never leave their lane, so every band is an independent acyclic VC
	// ladder and the composite stays deadlock-free (DESIGN.md §13).
	laneCount int
	laneBase  []int32 // lane -> first VC of its band
	laneEnd   []int32 // lane -> one past the last VC of its band

	// pkts is the structure-of-arrays packet slab; every queue and mail
	// ring below holds int32 ids into it. See store.go for the id
	// lifecycle and its serial-section free-list discipline.
	pkts pktStore

	// Channels are the graph's dense directed-channel ids: channel
	// graph.FirstChannel(r)+k is r → its k-th neighbor. All per-channel
	// state is written only by the channel's source router during
	// arbitration (occ decrements are journaled to commit), which is what
	// makes the arbitration phase race-free.
	busy   []int64 // channel id -> busy-until cycle
	occ    []int32 // credit index (channel id * vcs + vc) -> queued+reserved flits
	occSum []int32 // channel id -> occ summed over VCs (Occupancy fast path)

	// chanIdx densifies ChannelID: (u*n+v) -> channel id or -1. Path→
	// channel resolution and UGAL occupancy scoring perform one lookup
	// per hop per packet — tens of millions per run — so the ~n² int32
	// table (4.5 MB for the Table-3 PolarStar) beats the per-call
	// binary search. nil above the size cap (huge design-space graphs).
	chanIdx []int32

	// Queues ("units"): per channel per VC input queues at the channel's
	// destination router, plus one injection queue per endpoint. Units
	// are numbered router-major — each router's queues are contiguous and
	// each shard's block is padded to a 64-unit boundary, so the inActive
	// bitset below is word-disjoint across shards. Credit state stays
	// channel-indexed; the unit maps translate between the two.
	queues     []pktQueue
	unitHome   []int32 // unit -> router owning the queue
	unitCredit []int32 // unit -> credit index (channel*vcs+vc), -1 for injection queues
	unitMinVC  []int8  // unit -> lowest VC the next hop may use (vc+1; 0 for injection)
	unitEP     []int32 // unit -> endpoint of an injection queue, -1 for channel queues
	chanUnit   []int32 // credit index -> queue unit
	injUnit    []int32 // endpoint -> its injection-queue unit

	// Per-router active unit lists with lazy deletion, and the per-shard
	// active-router worklists above them: a cycle touches only routers
	// with queued packets, not all N.
	active      [][]int32
	inActive    bitset // unit -> whether listed in active (word-disjoint per shard)
	routerShard []int8 // router -> owning shard (contiguous blocks)
	inWorklist  []bool // router -> whether listed in its shard's worklist

	// Wake-up scheduling (fastArb): a stalled forward attempt has no side
	// effect beyond its stall counter, so with telemetry off (and no
	// fault plan — both make stalls observable) the arbitration loop may
	// skip a unit until the cycle its blocker can actually clear: the
	// busy-until timestamp it stalled on, or — for credit stalls — the
	// first commit that releases credit on its head packet's channel
	// (tracked by an intrusive per-channel waiter list). Wakes are
	// conservative, so grants happen at exactly the cycles they always
	// did; results are bit-identical, but saturated sweeps stop paying
	// for millions of predestined-to-fail attempts.
	fastArb    bool
	wake       []int64 // unit -> earliest cycle an attempt can succeed
	routerWake []int64 // router -> min wake over its active units
	waiterHead []int32 // channel -> first credit-waiting unit (-1: none)
	waiterNext []int32 // unit -> next credit-waiting unit (-1: end)

	ejBusy  []int64 // endpoint -> ejection-channel busy-until
	injBusy []int64 // endpoint -> injection serialization

	// mail[(src*numShards+dst)*ringLen+slot] holds packets forwarded by
	// shard src to queues owned by shard dst, arriving at cycle slot.
	// Written only by src (during its arbitration), drained only by dst
	// (at the start of its next arbitration) in fixed src order.
	mail    [][]inflight
	ringLen int

	// mailDropped counts in-flight packets removed from the rings by the
	// serial fault path; together with the per-shard mailOut/mailIn
	// counters it lets the event-horizon check know whether any packet is
	// still traversing a link without scanning the rings.
	mailDropped int64
	skipped     int64 // idle cycles the event-horizon advance never stepped

	now       int64
	rng       *rand.Rand // serial generation stream: calendar gaps + destinations
	measuring bool       // current cycle inside the measurement window

	shards [numShards]*shardState

	// Generation calendar: a binary min-heap of (cycle<<epBits | endpoint)
	// events, equivalent to per-cycle Bernoulli draws but skipping idle
	// endpoints (geometric gaps).
	genHeap []int64
	logQ    float64 // ln(1 - pktProb), < 0

	pktCtr         int64 // injection counter: per-packet route-RNG seeds
	backlogMeasEnd int   // injection-queue backlog when measurement ended
	generatedMeas  int64

	// Telemetry (nil/0 when the run is unobserved). occHWM aliases
	// met.OccHWM; each channel's mark is written only by the channel's
	// source-router shard during arbitration, so collection is race-free
	// by the same ownership argument as the occupancy arrays.
	met         *obs.SimRun
	metInterval int64
	occHWM      obs.ChannelHWM

	// fs is the live fault-injection state, non-nil only when Params.Plan
	// carries events. Every fault hook on the hot path is gated on it, so
	// plan-less runs take the identical (and allocation-free) code path
	// they always did.
	fs *faultState

	pool workerPool
}

// shardState is the per-shard slice of the engine: the active-router
// worklist, the injection/forward/release journals, the packet-id
// allocation cache and freed journal, the routing engine clone with its
// scratch, and the metric accumulators. Every field is touched only by
// the shard that owns it during the parallel phases; journals are
// drained in fixed shard order.
type shardState struct {
	routers  []int32      // active-router worklist (lazy deletion via inWorklist)
	pending  []pendingInj // packets generated this cycle on this shard's routers
	releases []int32      // credit indices whose reservation frees at commit

	// Packet-id slab interface: freeIDs is the allocation cache refilled
	// serially before the routing phase; freed collects ids released
	// during arbitration, drained serially at commit.
	freeIDs []int32
	freed   []int32

	// mailOut/mailIn count packets this shard posted into / drained from
	// the mail rings; their fixed-order serial sum is the in-flight count
	// the event-horizon advance checks.
	mailOut int64
	mailIn  int64

	routing Routing
	laned   lanedRouting // routing when it spreads packets over VC lanes, else nil
	rngSrc  splitmix
	rng     *rand.Rand
	pathBuf []int
	occFn   OccFn

	// Fault-mode journals/scratch (untouched when the engine has no plan).
	retryQ []retryReq // source retries requested during this shard's phases
	escBuf []int      // detour path scratch

	// lostPkts counts packets lost at routing time (unroutable or
	// over-budget paths). Unlike the met counters it is always on: Result
	// reports losses even for unobserved runs.
	lostPkts int64

	// Metrics, merged in shard order after the run.
	deliveredAll   int64
	deliveredMeas  int64
	latencySumMeas int64
	latencyMax     int64
	injectedFlits  int64

	// Telemetry accumulators (nil when the run is unobserved).
	met *shardMetrics
}

// shardMetrics is the per-shard telemetry slice: counters and a latency
// histogram owned by one shard during the parallel phases, merged into
// the run's obs.SimRun in fixed shard order at the end. All storage is
// sized at engine construction, so recording allocates nothing.
type shardMetrics struct {
	injected    int64 // packets routed and enqueued at their source
	lost        int64 // unroutable or over-budget paths
	stallInj    int64
	stallEject  int64
	stallBusy   int64
	stallCredit int64
	creditVC    []int64 // credit stalls keyed by the packet's lowest eligible VC
	lat         obs.Histogram

	// Per-lane counters, sized laneCount (nil on single-lane engines):
	// index 0 is the minimal band, 1.. the tree lanes.
	laneChosen    []int64
	laneDelivered []int64
	laneFailover  []int64 // in-flight reroutes ONTO the lane
}

func (m *shardMetrics) stalls() int64 {
	return m.stallInj + m.stallEject + m.stallBusy + m.stallCredit
}

// NewEngine builds a simulator for graph g with the endpoint arrangement
// described by cfg. It panics with a descriptive error when the
// configuration overflows the generation calendar's packed
// (cycle<<epBits | endpoint) representation — a hard structural limit
// that would otherwise corrupt results silently.
func NewEngine(params Params, g *graph.Graph, cfg traffic.Config, routing Routing, pattern traffic.Pattern) *Engine {
	cfg.Routers = g.N()
	if eps := cfg.Endpoints(); eps >= maxEndpoint {
		panic(fmt.Sprintf("sim: %d endpoints overflow the generation calendar's %d-bit endpoint field (max %d); shrink PerRouter or the host set",
			eps, epBits, maxEndpoint-1))
	}
	if total := int64(params.Warmup) + int64(params.Measure) + int64(params.Drain); total >= maxCycle {
		panic(fmt.Sprintf("sim: %d total cycles overflow the generation calendar's packed cycle field (max %d)",
			total, maxCycle-1))
	}
	// One VC per possible link index plus one spare: the spare gives the
	// strictly-increasing VC allocator room to spread load. For MIN
	// routing on a diameter-3 topology this is exactly the paper's 4 VCs.
	e := &Engine{
		p:       params,
		g:       g,
		routing: routing,
		pattern: pattern,
		cfg:     cfg,
		vcs:     routing.MaxHops() + 1,
		rng:     rand.New(rand.NewSource(params.Seed)),
	}
	if e.vcs < 1 {
		e.vcs = 1
	}
	planActive := !params.Plan.Empty()
	if lr, ok := routing.(lanedRouting); ok {
		// Multipath lanes: one disjoint VC band per lane, ladder = the
		// concatenation. Band 0 (the minimal engine) keeps the classic
		// width, bumped for detours exactly as the single-lane ladder is.
		widths := lr.LaneWidths()
		if widths[0] < 1 {
			widths[0] = 1
		}
		if planActive && widths[0] < MaxPathNodes {
			widths[0] = MaxPathNodes // detour paths ride the base band
		}
		e.laneCount = len(widths)
		e.laneBase = make([]int32, e.laneCount)
		e.laneEnd = make([]int32, e.laneCount)
		e.vcs = 0
		for l, w := range widths {
			e.laneBase[l] = int32(e.vcs)
			e.vcs += w
			e.laneEnd[l] = int32(e.vcs)
		}
		if e.vcs > 126 {
			panic(fmt.Sprintf("sim: %d lane VCs overflow the int8 VC ladder (max 126); use fewer or shallower lanes", e.vcs))
		}
	} else {
		if planActive && e.vcs < MaxPathNodes {
			// Detour paths (repaired-table or spanning-tree escape) may use
			// up to MaxPathNodes-1 links; the VC ladder must cover them.
			e.vcs = MaxPathNodes
		}
		e.laneCount = 1
		e.laneBase = []int32{0}
		e.laneEnd = []int32{int32(e.vcs)}
	}
	e.workers = params.Workers
	if e.workers < 1 {
		e.workers = 1
	}
	if e.workers > numShards {
		e.workers = numShards
	}
	n := g.N()
	nChans := g.NumChannels()
	e.busy = make([]int64, nChans)
	e.occ = make([]int32, nChans*e.vcs)
	e.occSum = make([]int32, nChans)
	if n*n <= 1<<22 { // ≤ 16 MB; covers every Table-3 configuration
		e.chanIdx = make([]int32, n*n)
		for i := range e.chanIdx {
			e.chanIdx[i] = -1
		}
		for u := 0; u < n; u++ {
			first := g.FirstChannel(u)
			for k, w := range g.Neighbors(u) {
				e.chanIdx[u*n+int(w)] = int32(first + k)
			}
		}
	}
	e.routerShard = make([]int8, n)
	for r := 0; r < n; r++ {
		e.routerShard[r] = int8(r * numShards / n)
	}
	e.buildUnits()
	e.active = make([][]int32, n)
	e.inActive = newBitset(len(e.queues))
	e.inWorklist = make([]bool, n)
	e.fastArb = params.Metrics == nil && !planActive
	e.wake = make([]int64, len(e.queues))
	e.routerWake = make([]int64, n)
	e.waiterHead = make([]int32, nChans)
	e.waiterNext = make([]int32, len(e.queues))
	for i := range e.waiterHead {
		e.waiterHead[i] = -1
	}
	for i := range e.waiterNext {
		e.waiterNext[i] = -1
	}
	e.ejBusy = make([]int64, e.cfg.Endpoints())
	e.injBusy = make([]int64, e.cfg.Endpoints())
	e.ringLen = params.PacketFlits + params.LinkLatency + 2
	e.mail = make([][]inflight, numShards*numShards*e.ringLen)
	for s := 0; s < numShards; s++ {
		sh := &shardState{routing: routing.Clone()}
		if lr, ok := sh.routing.(lanedRouting); ok {
			sh.laned = lr
		}
		sh.rng = rand.New(&sh.rngSrc)
		sh.occFn = e.Occupancy
		e.shards[s] = sh
	}
	if params.Metrics != nil {
		e.initMetrics(params)
	}
	if planActive {
		e.initFaults(params)
	}
	e.pool.start(e)
	return e
}

// buildUnits lays out the queue units router-major: for each router (in
// shard order — routerShard blocks are contiguous by construction) its
// incoming channel×VC queues in ascending channel order, then its
// endpoints' injection queues, with every shard's block padded to a
// 64-unit boundary so the inActive bitset words are shard-disjoint. The
// unitCredit/chanUnit maps tie the queues back to the channel-indexed
// credit arrays (occ/occSum/busy), which keep their grant-side ownership.
func (e *Engine) buildUnits() {
	n := e.g.N()
	nChans := e.g.NumChannels()
	eps := e.cfg.Endpoints()

	// Incoming channels per router, ascending channel id.
	inOff := make([]int32, n+1)
	for c := 0; c < nChans; c++ {
		inOff[e.g.ChannelTo(c)+1]++
	}
	for r := 0; r < n; r++ {
		inOff[r+1] += inOff[r]
	}
	inCh := make([]int32, nChans)
	pos := make([]int32, n)
	copy(pos, inOff[:n])
	for c := 0; c < nChans; c++ {
		r := e.g.ChannelTo(c)
		inCh[pos[r]] = int32(c)
		pos[r]++
	}
	// Endpoints per router, ascending endpoint id.
	epOff := make([]int32, n+1)
	for ep := 0; ep < eps; ep++ {
		epOff[e.cfg.RouterOf(ep)+1]++
	}
	for r := 0; r < n; r++ {
		epOff[r+1] += epOff[r]
	}
	epList := make([]int32, eps)
	copy(pos, epOff[:n])
	for ep := 0; ep < eps; ep++ {
		r := e.cfg.RouterOf(ep)
		epList[pos[r]] = int32(ep)
		pos[r]++
	}

	maxUnits := nChans*e.vcs + eps + numShards*64
	e.unitHome = make([]int32, maxUnits)
	e.unitCredit = make([]int32, maxUnits)
	e.unitMinVC = make([]int8, maxUnits)
	e.unitEP = make([]int32, maxUnits)
	e.chanUnit = make([]int32, nChans*e.vcs)
	e.injUnit = make([]int32, eps)

	next := int32(0)
	for r := 0; r < n; r++ {
		if r > 0 && e.routerShard[r] != e.routerShard[r-1] {
			for ; next%64 != 0; next++ {
				e.unitCredit[next] = -1
				e.unitEP[next] = -1
			}
		}
		for _, c := range inCh[inOff[r]:inOff[r+1]] {
			for vc := 0; vc < e.vcs; vc++ {
				credit := c*int32(e.vcs) + int32(vc)
				e.chanUnit[credit] = next
				e.unitCredit[next] = credit
				e.unitMinVC[next] = int8(vc + 1)
				e.unitEP[next] = -1
				e.unitHome[next] = int32(r)
				next++
			}
		}
		for _, ep := range epList[epOff[r]:epOff[r+1]] {
			e.injUnit[ep] = next
			e.unitCredit[next] = -1
			e.unitMinVC[next] = 0
			e.unitEP[next] = ep
			e.unitHome[next] = int32(r)
			next++
		}
	}
	e.unitHome = e.unitHome[:next]
	e.unitCredit = e.unitCredit[:next]
	e.unitMinVC = e.unitMinVC[:next]
	e.unitEP = e.unitEP[:next]
	e.queues = make([]pktQueue, next)
}

// initMetrics sizes the telemetry storage once, before the first cycle:
// the per-channel occupancy marks, the per-shard counters and latency
// histograms, and the interval series at its exact final capacity. After
// this, every record on the hot path is a plain array update.
func (e *Engine) initMetrics(params Params) {
	m := params.Metrics
	e.met = m
	m.CreditStallVC = make([]int64, e.vcs)
	m.OccHWM = make(obs.ChannelHWM, e.g.NumChannels())
	e.occHWM = m.OccHWM
	for _, sh := range e.shards {
		sh.met = &shardMetrics{creditVC: make([]int64, e.vcs)}
		if e.laneCount > 1 {
			sh.met.laneChosen = make([]int64, e.laneCount)
			sh.met.laneDelivered = make([]int64, e.laneCount)
			sh.met.laneFailover = make([]int64, e.laneCount)
		}
	}
	if params.MetricsInterval > 0 {
		e.metInterval = int64(params.MetricsInterval)
		m.Interval = params.MetricsInterval
		total := params.Warmup + params.Measure + params.Drain
		m.Series = make([]obs.IntervalRow, 0, total/params.MetricsInterval+2)
	}
}

// Occupancy implements OccFn over all VCs of channel u→v. During the
// routing phase the occupancy arrays are stable (grants and releases
// land in the arbitration and commit phases), so adaptive routing reads
// a consistent previous-cycle snapshot.
func (e *Engine) Occupancy(u, v int) int {
	c := e.channelID(u, v)
	if c < 0 {
		return 0
	}
	return int(e.occSum[c])
}

func (e *Engine) channelID(u, v int) int {
	if e.chanIdx != nil {
		return int(e.chanIdx[u*e.g.N()+v])
	}
	return e.g.ChannelID(u, v)
}

// markActive lists a newly non-empty unit on its router, and the router
// on the owning shard's worklist. Callers are always the owning shard
// (or the serial sections), so no synchronization is needed.
func (e *Engine) markActive(unit int32, sh *shardState) {
	if !e.inActive.get(unit) {
		e.inActive.set(unit)
		r := e.unitHome[unit]
		e.active[r] = append(e.active[r], unit)
		// A newly non-empty unit has a new head packet: attemptable now.
		e.wake[unit] = 0
		e.routerWake[r] = 0
		if !e.inWorklist[r] {
			e.inWorklist[r] = true
			sh.routers = append(sh.routers, r)
		}
	}
}

// Run simulates a full warmup+measure+drain experiment at the offered
// load (flits per endpoint per cycle) and returns the metrics. An Engine
// is single-use: build a fresh one per run.
func (e *Engine) Run(load float64) Result {
	res, _ := e.RunContext(context.Background(), load)
	return res
}

// RunContext is Run with cooperative cancellation: the context's Done
// channel is polled every cancelCheckStride cycles, and a cancelled run
// stops the worker pool and returns ctx.Err() with a zero Result. A
// background context adds no overhead to the cycle loop (nil Done is
// never polled). Cancellation consumes the engine like a completed run.
func (e *Engine) RunContext(ctx context.Context, load float64) (Result, error) {
	if e.now != 0 {
		panic("sim: Engine.Run called twice; engines are single-use")
	}
	done := ctx.Done()
	total := int64(e.p.Warmup + e.p.Measure + e.p.Drain)
	e.initGeneration(load / float64(e.p.PacketFlits))
	for t := int64(0); t < total; t++ {
		if done != nil && t%cancelCheckStride == 0 {
			select {
			case <-done:
				// Consume the engine so the single-use guard still trips on
				// a second Run even when cancellation hit at t == 0.
				e.now = total
				e.pool.stop()
				return Result{}, ctx.Err()
			default:
			}
		}
		e.stepCycle(t)
		if e.fs != nil && e.fs.done {
			// The watchdog declared the run wedged: everything still queued
			// is counted stranded; skip the remaining drain cycles.
			total = t + 1
			break
		}
		if adv := e.horizonAdvance(t, total); adv > 0 {
			t += adv
			if e.fs != nil && e.fs.done {
				// The emulated watchdog fired inside the idle stretch.
				total = t + 1
				break
			}
		}
	}
	e.now = total
	e.pool.stop()
	return e.result(load), nil
}

// cancelCheckStride is how often RunContext polls its context: rare
// enough to stay invisible in profiles, frequent enough that a deadline
// lands within microseconds of wall time.
const cancelCheckStride = 256

// stepCycle advances the simulation by one cycle:
//
//  1. generation (serial: the calendar and the traffic pattern share one
//     RNG stream), queuing pending injections on their routers' shards,
//     then the serial refill of the per-shard packet-id caches;
//  2. the routing phase (parallel over shards): each shard routes its
//     pending packets with a per-packet-seeded RNG, resolves the path to
//     channel ids into a freshly allocated slab id, and enqueues it on
//     its injection queues;
//  3. the arbitration phase (parallel over shards): each shard drains
//     the packets other shards forwarded to it (in fixed shard order),
//     then arbitrates its active routers, writing only router-owned
//     state and journaling forwards, credit releases and freed ids;
//  4. commit (serial): journaled credit releases and freed packet ids
//     are applied in shard order, making them visible to the next cycle.
//
// In steady state (all queues, rings and scratch buffers at their
// high-water capacity) a cycle performs zero heap allocations — see the
// AllocsPerRun regression test.
func (e *Engine) stepCycle(t int64) {
	e.now = t
	e.measuring = t >= int64(e.p.Warmup) && t < int64(e.p.Warmup+e.p.Measure)
	if e.fs != nil {
		e.applyFaults(t)
		e.injectRetries(t)
	}
	e.generate(t)
	e.refillIDs()
	e.pool.run(phaseRoute)
	e.pool.run(phaseArbitrate)
	e.commit(t)
	if e.fs != nil {
		e.collectRetries(t)
		e.watchdog(t)
	}
}

// refillIDs tops up every shard's packet-id allocation cache to cover
// the injections it will route this cycle, growing the slab when the
// global free stack runs dry. Serial, in fixed shard order — the only
// place ids are handed out — so the allocator's behavior is a pure
// function of the serial schedule.
func (e *Engine) refillIDs() {
	for _, sh := range e.shards {
		need := len(sh.pending) - len(sh.freeIDs)
		if need <= 0 {
			continue
		}
		if len(e.pkts.free) < need {
			e.pkts.grow(need - len(e.pkts.free))
		}
		n := len(e.pkts.free)
		sh.freeIDs = append(sh.freeIDs, e.pkts.free[n-need:]...)
		e.pkts.free = e.pkts.free[:n-need]
	}
}

// commit applies the per-shard credit-release and freed-id journals in
// fixed shard order. Releases become visible only here — after every
// router has arbitrated — which is what decouples the routers within a
// cycle.
func (e *Engine) commit(t int64) {
	S := int32(e.p.PacketFlits)
	vcs := int32(e.vcs)
	for _, sh := range e.shards {
		for _, credit := range sh.releases {
			e.occ[credit] -= S
			e.occSum[credit/vcs] -= S
			if e.fastArb {
				// Unpark every unit waiting on this channel's credits:
				// they must re-attempt next cycle, exactly as the
				// attempt-every-cycle engine would have.
				for u := e.waiterHead[credit/vcs]; u >= 0; {
					nxt := e.waiterNext[u]
					e.waiterNext[u] = -1
					e.wake[u] = t + 1
					e.routerWake[e.unitHome[u]] = 0
					u = nxt
				}
				e.waiterHead[credit/vcs] = -1
			}
		}
		sh.releases = sh.releases[:0]
		if len(sh.freed) > 0 {
			e.pkts.free = append(e.pkts.free, sh.freed...)
			sh.freed = sh.freed[:0]
		}
	}
	if t == int64(e.p.Warmup+e.p.Measure)-1 {
		// Source backlog only: packets still waiting in injection
		// queues (in-flight packets are not backlog).
		for _, u := range e.injUnit {
			e.backlogMeasEnd += e.queues[u].len()
		}
	}
	if e.metInterval > 0 && (t+1)%e.metInterval == 0 {
		e.sampleInterval(t + 1)
	}
}

// sampleInterval appends one cumulative-counter row to the interval
// series. It runs in the serial commit phase — after every shard's
// arbitration — so the sums it reads are the committed end-of-cycle state
// and identical for any worker count. The series slice was presized in
// initMetrics; the append never reallocates.
func (e *Engine) sampleInterval(cycle int64) {
	row := obs.IntervalRow{Cycle: cycle, Generated: e.pktCtr}
	for _, sh := range e.shards {
		row.Delivered += sh.deliveredAll
		row.Injected += sh.met.injected
		row.Stalled += sh.met.stalls()
	}
	e.met.Series = append(e.met.Series, row)
}

// heapPush/heapPop implement a binary min-heap over packed
// (cycle<<epBits | endpoint) events.
func (e *Engine) heapPush(v int64) {
	h := append(e.genHeap, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	e.genHeap = h
}

func (e *Engine) heapPop() int64 {
	h := e.genHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.genHeap = h
	return top
}

// geoGap draws the geometric inter-generation gap (>= 1 cycle).
func (e *Engine) geoGap() int64 {
	if e.logQ >= 0 {
		return 1 // pktProb >= 1: generate every cycle
	}
	u := e.rng.Float64()
	for u == 0 {
		u = e.rng.Float64()
	}
	g := int64(math.Log(u)/e.logQ) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// initGeneration seeds the calendar so that each endpoint generates with
// probability pktProb in every cycle (first event at geoGap-1).
func (e *Engine) initGeneration(pktProb float64) {
	if pktProb <= 0 {
		return
	}
	if pktProb < 1 {
		e.logQ = math.Log(1 - pktProb)
	}
	for ep := 0; ep < e.cfg.Endpoints(); ep++ {
		e.heapPush((e.geoGap()-1)<<epBits | int64(ep))
	}
}

// generate pops every endpoint scheduled to emit a packet this cycle and
// records the pending injection on the source router's shard. Only the
// destination draw consumes the engine RNG; routing happens in the
// parallel phase under a per-packet seed.
func (e *Engine) generate(t int64) {
	horizon := int64(e.p.Warmup + e.p.Measure)
	for len(e.genHeap) > 0 && e.genHeap[0]>>epBits <= t {
		ep := int(e.heapPop() & (maxEndpoint - 1))
		if next := t + e.geoGap(); next < horizon {
			e.heapPush(next<<epBits | int64(ep))
		}
		dst := e.pattern.Dest(ep, e.rng)
		if dst < 0 {
			continue
		}
		if e.measuring {
			e.generatedMeas++
		}
		sh := e.shards[e.routerShard[e.cfg.RouterOf(ep)]]
		sh.pending = append(sh.pending, pendingInj{ep: int32(ep), dst: int32(dst), ctr: e.pktCtr, gen: t})
		e.pktCtr++
	}
}

// routeShard is the routing phase of one shard: route every pending
// packet, resolve the vertex path to channel ids once into a freshly
// allocated slab id, and enqueue the id on the source endpoint's
// injection queue. Occupancy reads (UGAL) see the stable previous-cycle
// state; the per-packet seed makes the result independent of how packets
// are spread over shards and workers.
func (e *Engine) routeShard(sh *shardState) {
	st := &e.pkts
	for _, pi := range sh.pending {
		srcR, dstR := e.cfg.RouterOf(int(pi.ep)), e.cfg.RouterOf(int(pi.dst))
		var path []int
		var lane int8
		if srcR != dstR {
			sh.rngSrc.seed(e.p.Seed, pi.ctr)
			if sh.laned != nil {
				sh.pathBuf, lane = sh.laned.PathLane(sh.pathBuf[:0], srcR, dstR, sh.occFn, sh.rng)
			} else {
				sh.pathBuf = sh.routing.Path(sh.pathBuf[:0], srcR, dstR, sh.occFn, sh.rng)
			}
			path = sh.pathBuf
			if e.fs != nil {
				// Fault mode: validate the path against current liveness,
				// fall back to the repaired table or a spanning-tree escape
				// path, and source-retry what cannot be routed right now.
				detour, ok := e.fs.detour(sh, srcR, dstR, path)
				if !ok {
					sh.retryQ = append(sh.retryQ, retryReq{ep: pi.ep, dst: pi.dst, gen: pi.gen, retries: pi.retries})
					continue
				}
				path = detour
			}
			if len(path) == 0 || len(path) > MaxPathNodes {
				// Unroutable, or beyond the simulator's path/VC budget
				// (deeply degraded topologies stretch paths arbitrarily;
				// a path longer than the VC ladder is undeliverable
				// deadlock-free): the packet is lost. It still counted
				// as generated, so DeliveredFrac reflects the loss.
				sh.lostPkts++
				if sh.met != nil {
					sh.met.lost++
				}
				continue
			}
		}
		// The path is routable: claim a slab id from the shard's cache
		// (refillIDs guaranteed one per pending injection) and fill it.
		id := sh.freeIDs[len(sh.freeIDs)-1]
		sh.freeIDs = sh.freeIDs[:len(sh.freeIDs)-1]
		base := int(id) * pktStride
		for i := 0; i+1 < len(path); i++ {
			c := e.channelID(path[i], path[i+1])
			if c < 0 {
				panic("sim: packet path uses a non-edge")
			}
			st.chans[base+i] = int32(c)
		}
		st.nHops[id] = int8(max(len(path)-1, 0))
		st.hop[id] = 0
		st.gen[id] = pi.gen
		st.dstEP[id] = pi.dst
		st.srcEP[id] = pi.ep
		st.retries[id] = pi.retries
		st.lane[id] = lane
		st.measure[id] = pi.gen >= int64(e.p.Warmup) && pi.gen < int64(e.p.Warmup+e.p.Measure)
		unit := e.injUnit[pi.ep]
		e.queues[unit].push(id)
		e.markActive(unit, sh)
		if sh.met != nil {
			sh.met.injected++
			if sh.met.laneChosen != nil {
				sh.met.laneChosen[lane]++
			}
		}
	}
	sh.pending = sh.pending[:0]
}

// arbitrateShard is the arbitration phase of one shard: drain the
// packets other shards forwarded to this shard's queues (fixed source
// order keeps queue contents deterministic), then arbitrate the active
// routers of the worklist.
func (e *Engine) arbitrateShard(sh *shardState, sid int) {
	t := e.now
	slot := int(t % int64(e.ringLen))
	for src := 0; src < numShards; src++ {
		box := &e.mail[(src*numShards+sid)*e.ringLen+slot]
		for _, a := range *box {
			e.queues[a.unit].push(a.id)
			e.markActive(a.unit, sh)
		}
		sh.mailIn += int64(len(*box))
		*box = (*box)[:0]
	}

	S := int64(e.p.PacketFlits)
	fast := e.fastArb
	kept := sh.routers[:0]
	for _, r := range sh.routers {
		if fast && e.routerWake[r] > t {
			// Every unit of this router is waiting on a known future
			// cycle; nothing here could have granted. Its active list is
			// untouched (pops only happen through attempts), so skipping
			// leaves the rotation exactly where the stepped engine's
			// would be.
			kept = append(kept, r)
			continue
		}
		units := e.active[r]
		minWake := int64(1) << 62
		removed := false
		// Round-robin: rotate by cycle to avoid static priority. The
		// rotation is computed in int64 so 32-bit ints cannot truncate
		// the cycle count.
		j := int(t % int64(len(units)))
		for i := 0; i < len(units); i++ {
			unit := units[j]
			if j++; j == len(units) {
				j = 0
			}
			if fast {
				if w := e.wake[unit]; w > t {
					if w < minWake {
						minWake = w
					}
					continue
				}
			}
			q := &e.queues[unit]
			if q.empty() {
				e.inActive.clear(unit)
				removed = true
				continue
			}
			e.tryForward(sh, sid, unit, q, S)
			if q.empty() {
				e.inActive.clear(unit)
				removed = true
			} else if fast {
				if w := e.wake[unit]; w < minWake {
					minWake = w
				}
			}
		}
		if removed {
			// Rebuild the active list without emptied units (preserving
			// original order for fairness stability). Skipped when nothing
			// emptied — the common saturated-steady-state case.
			keptUnits := units[:0]
			for _, unit := range units {
				if e.inActive.get(unit) {
					keptUnits = append(keptUnits, unit)
				}
			}
			e.active[r] = keptUnits
			units = keptUnits
		}
		if len(units) == 0 {
			e.inWorklist[r] = false
		} else {
			kept = append(kept, r)
			e.routerWake[r] = minWake
		}
	}
	sh.routers = kept
}

// tryForward attempts to advance the head packet of a unit queue: at
// most one packet per input unit per cycle; one grant per output
// resource per cycle is enforced by the busy timestamps. All state it
// writes is owned by the arbitrating router (channel busy/occ of its
// outgoing channels, its endpoints' injection/ejection serialization) or
// by the packet itself (the hop cursor of its own queue head); effects
// on other routers — forwarded packets, freed credits, freed ids — go
// into the shard journals.
func (e *Engine) tryForward(sh *shardState, sid int, unit int32, q *pktQueue, S int64) {
	id := q.front()
	st := &e.pkts
	// Injection serialization: a packet leaves its endpoint at most
	// every S cycles.
	if ep := e.unitEP[unit]; ep >= 0 {
		if e.injBusy[ep] > e.now {
			e.wake[unit] = e.injBusy[ep]
			if sh.met != nil {
				sh.met.stallInj++
			}
			return
		}
	}
	hop, nHops := st.hop[id], st.nHops[id]
	if hop == nHops {
		// Ejection to the destination endpoint.
		ep := st.dstEP[id]
		if e.fs != nil && e.fs.deadRouter[e.cfg.RouterOf(int(ep))] {
			// The destination router died under the packet: drop it here,
			// release this buffer's credit, and source-retry.
			e.fs.retryFrom(sh, id)
			e.release(sh, unit)
			sh.freed = append(sh.freed, id)
			q.pop()
			return
		}
		if e.ejBusy[ep] > e.now {
			e.wake[unit] = e.ejBusy[ep]
			if sh.met != nil {
				sh.met.stallEject++
			}
			return
		}
		e.ejBusy[ep] = e.now + S
		sh.deliver(st, id, e.now+S, e.p.PacketFlits)
		if sh.met != nil && sh.met.laneDelivered != nil {
			sh.met.laneDelivered[st.lane[id]]++
		}
		e.release(sh, unit)
		sh.freed = append(sh.freed, id)
		e.wake[unit] = e.now + 1
		q.pop()
		return
	}
	c := st.chans[int(id)*pktStride+int(hop)]
	if e.fs != nil && e.fs.deadChan[c] {
		// The next link of the packet's path is down. A multipath packet
		// first tries a lane failover: re-route in place from this router
		// onto a live tree lane with a strictly higher index (its VC band
		// sits strictly above every VC the packet can currently occupy,
		// so the global VC-monotonicity invariant survives the reroute).
		if e.laneCount > 1 && e.fs.laneFailover(sh, id, unit) {
			return // forwards on the new lane from the next cycle
		}
		// No live higher lane offers a path: the packet is dropped from
		// this buffer (credit released at commit, preserving the reclaim
		// invariant) and source-retried — the retry re-routes around the
		// failure.
		e.fs.retryFrom(sh, id)
		e.release(sh, unit)
		sh.freed = append(sh.freed, id)
		q.pop()
		return
	}
	if e.busy[c] > e.now {
		e.wake[unit] = e.busy[c]
		if sh.met != nil {
			sh.met.stallBusy++
		}
		return
	}
	// VC allocation: each hop must use a VC strictly greater than the
	// packet's current one (injection starts below VC 0), so VC
	// indices strictly increase along every path and the channel/VC
	// dependency graph stays acyclic — while still letting packets
	// spread over the free VCs to reduce head-of-line blocking.
	// Pick the eligible VC with the most free credits.
	// The eligible window is clamped to the packet's lane band: with a
	// single lane the band is the whole ladder and the bounds reduce to
	// the classic minVC..vcs-1-remaining.
	minVC := int(e.unitMinVC[unit])
	lane := st.lane[id]
	if base := int(e.laneBase[lane]); minVC < base {
		minVC = base
	}
	// Leave VC headroom for the links after this one: choosing too
	// high a VC now would strand the packet later.
	remaining := int(nHops) - 1 - int(hop)
	maxVC := int(e.laneEnd[lane]) - 1 - remaining
	if minVC > maxVC {
		panic("sim: path longer than VC count")
	}
	slotIdx, bestFree := -1, 0
	for vc := minVC; vc <= maxVC; vc++ {
		idx := int(c)*e.vcs + vc
		if free := e.p.BufFlitsPerVC - int(e.occ[idx]); free >= int(S) && free > bestFree {
			slotIdx, bestFree = idx, free
		}
	}
	if slotIdx < 0 {
		// No credits downstream on any eligible VC. Credits only come
		// back through a commit-applied release on channel c, so park
		// the unit on c's waiter list; commit re-arms it (wake = t+1)
		// when any release for c lands. Waking on any VC of c is
		// conservative — the unit may stall again — but never late.
		if e.fastArb {
			e.wake[unit] = int64(1) << 62
			e.waiterNext[unit] = e.waiterHead[c]
			e.waiterHead[c] = unit
		}
		if sh.met != nil {
			sh.met.stallCredit++
			sh.met.creditVC[minVC]++
		}
		return
	}
	// Grant.
	e.occ[slotIdx] += int32(S)
	e.occSum[c] += int32(S)
	if e.occHWM != nil {
		e.occHWM.Observe(int(c), e.occSum[c])
	}
	e.busy[c] = e.now + S
	if ep := e.unitEP[unit]; ep >= 0 {
		e.injBusy[ep] = e.now + S
	}
	st.hop[id] = hop + 1
	dstShard := int(e.routerShard[e.g.ChannelTo(int(c))])
	arrive := int((e.now + S + int64(e.p.LinkLatency)) % int64(e.ringLen))
	box := &e.mail[(sid*numShards+dstShard)*e.ringLen+arrive]
	*box = append(*box, inflight{id: id, unit: e.chanUnit[slotIdx]})
	sh.mailOut++
	e.release(sh, unit)
	e.wake[unit] = e.now + 1
	q.pop()
}

// release journals the upstream buffer credit freed when a packet leaves
// a channel queue (injection queues are unbounded and hold no credits).
// The credit becomes visible at commit, after every router has
// arbitrated this cycle.
func (e *Engine) release(sh *shardState, unit int32) {
	if credit := e.unitCredit[unit]; credit >= 0 {
		sh.releases = append(sh.releases, credit)
	}
}

func (sh *shardState) deliver(st *pktStore, id int32, at int64, flits int) {
	sh.deliveredAll++
	if st.measure[id] {
		sh.deliveredMeas++
		lat := at - st.gen[id]
		sh.latencySumMeas += lat
		if lat > sh.latencyMax {
			sh.latencyMax = lat
		}
		sh.injectedFlits += int64(flits)
		if sh.met != nil {
			sh.met.lat.Observe(lat)
		}
	}
}

// Result aggregates one simulation run.
type Result struct {
	Load             float64
	AvgLatency       float64 // cycles, measured packets
	MaxLatency       int64
	DeliveredFrac    float64 // measured packets delivered before the horizon
	Throughput       float64 // delivered flits / endpoint / cycle (accepted load)
	Backlog          int     // packets still queued at the horizon
	BacklogAtMeasEnd int     // packets queued when measurement ended
	Saturated        bool

	// Fault accounting. Lost is always filled (unroutable packets occur
	// on statically degraded topologies too); Dropped/Retried/
	// TerminatedEarly are nonzero only under an active fault plan.
	Lost            int64 // packets lost for good (unroutable, retry budget, age timeout, stranded)
	Dropped         int64 // packets dropped in flight on a dying link (then retried)
	Retried         int64 // source retries performed
	TerminatedEarly bool  // the no-progress watchdog ended the run before the horizon
}

func (e *Engine) result(load float64) Result {
	var deliveredMeas, latencySum, latencyMax, injectedFlits int64
	for _, sh := range e.shards {
		deliveredMeas += sh.deliveredMeas
		latencySum += sh.latencySumMeas
		injectedFlits += sh.injectedFlits
		if sh.latencyMax > latencyMax {
			latencyMax = sh.latencyMax
		}
	}
	res := Result{Load: load}
	if deliveredMeas > 0 {
		res.AvgLatency = float64(latencySum) / float64(deliveredMeas)
		res.MaxLatency = latencyMax
	}
	if e.generatedMeas > 0 {
		res.DeliveredFrac = float64(deliveredMeas) / float64(e.generatedMeas)
	}
	res.Throughput = float64(injectedFlits) / float64(e.cfg.Endpoints()) / float64(e.p.Measure)
	for i := range e.queues {
		res.Backlog += e.queues[i].len()
	}
	res.BacklogAtMeasEnd = e.backlogMeasEnd
	for _, sh := range e.shards {
		res.Lost += sh.lostPkts
	}
	if e.fs != nil {
		res.Lost += e.fs.lostRetries + e.fs.lostTimeout + e.fs.lostStranded
		res.Dropped = e.fs.droppedInFlight
		res.Retried = e.fs.retried
		res.TerminatedEarly = e.fs.done
	}
	// Saturation: measured packets left undelivered, or source queues
	// holding several packets per endpoint on average when measurement
	// ended — offered load exceeding accepted load. (A backlog of a
	// couple of packets is ordinary pre-saturation queueing.)
	res.Saturated = res.DeliveredFrac < 0.99 || res.BacklogAtMeasEnd > 3*e.cfg.Endpoints()
	if e.met != nil {
		e.finishMetrics(res)
	}
	return res
}

// finishMetrics merges the per-shard telemetry accumulators into the
// run's obs.SimRun in fixed shard order (all sums are integers, so the
// order is immaterial — it is fixed anyway, matching the discipline of
// every other aggregation in this package) and echoes the Result fields
// so the artifact stands alone.
func (e *Engine) finishMetrics(res Result) {
	m := e.met
	m.Load = res.Load
	m.Generated.Add(e.pktCtr)
	for _, sh := range e.shards {
		sm := sh.met
		m.Injected.Add(sm.injected)
		m.Lost.Add(sm.lost)
		m.Delivered.Add(sh.deliveredAll)
		m.StallInject.Add(sm.stallInj)
		m.StallEject.Add(sm.stallEject)
		m.StallChannel.Add(sm.stallBusy)
		m.StallCredit.Add(sm.stallCredit)
		for vc, n := range sm.creditVC {
			m.CreditStallVC[vc] += n
		}
		m.Latency.Merge(&sm.lat)
	}
	m.AvgLatency = res.AvgLatency
	m.Throughput = res.Throughput
	m.DeliveredFrac = res.DeliveredFrac
	m.Saturated = res.Saturated
	if e.laneCount > 1 {
		lanes := &obs.SimLanes{
			Lanes:     e.laneCount - 1,
			Chosen:    make([]int64, e.laneCount),
			Delivered: make([]int64, e.laneCount),
			Failovers: make([]int64, e.laneCount),
		}
		for _, sh := range e.shards {
			for l := 0; l < e.laneCount; l++ {
				lanes.Chosen[l] += sh.met.laneChosen[l]
				lanes.Delivered[l] += sh.met.laneDelivered[l]
				lanes.Failovers[l] += sh.met.laneFailover[l]
			}
		}
		if fs := e.fs; fs != nil && fs.health != nil {
			lanes.Demoted = fs.health.demoted
			lanes.Promoted = fs.health.promoted
		}
		m.Lanes = lanes
	}
	if fs := e.fs; fs != nil {
		m.Faults = &obs.SimFaults{
			PlanEvents:      int64(len(fs.plan.Events)),
			EventsApplied:   fs.eventsApplied,
			DroppedInFlight: obs.Counter(fs.droppedInFlight),
			Retries:         obs.Counter(fs.retried),
			LostRetryBudget: obs.Counter(fs.lostRetries),
			LostTimeout:     obs.Counter(fs.lostTimeout),
			LostStranded:    obs.Counter(fs.lostStranded),
			TerminatedEarly: fs.done,
			TerminatedAt:    fs.doneAt,
		}
	}
}
