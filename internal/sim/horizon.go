package sim

// Event-horizon cycle skipping: when a cycle ends with every queue empty
// and nothing in flight, no packet exists anywhere in the network — so
// every subsequent cycle is a no-op until the next *scheduled* event
// (generation calendar, retry heap, fault plan). Run jumps `now`
// straight to the cycle before that event instead of stepping the idle
// stretch one cycle at a time. Near the latency floor — where most of
// the sweep's cycles live, warmup gaps and the entire drain tail — this
// collapses millions of empty arbitrations into one min() over three
// heap tops.
//
// Correctness (DESIGN.md §10 gives the full argument): quiescence is
// detected from committed end-of-cycle state only (worklists + the
// mail-ring in-flight count), every timestamp the skipped cycles could
// have touched (busy/ejBusy/injBusy) is only ever *compared against*
// `now` by packets — and no packet exists — and the skip re-creates the
// two side effects an idle stepped cycle does have: interval-series rows
// (counters are constant while idle, so the synthesized rows are exact)
// and the fault watchdog's stuck counter, including its early-
// termination firing cycle.

// horizonAdvance returns how many cycles after t Run may skip (0: step
// t+1 normally). Called after stepCycle(t) committed; may fire the
// emulated watchdog (setting fs.done) when the idle stretch has no
// future event at all.
func (e *Engine) horizonAdvance(t, total int64) int64 {
	if t+1 >= total || !e.quiescent() {
		return 0
	}
	// Next cycle with scheduled work. All three sources are strictly
	// ahead of t: stepCycle(t) consumed everything due at or before t.
	next := total
	noEvents := true
	if len(e.genHeap) > 0 {
		noEvents = false
		if c := e.genHeap[0] >> epBits; c < next {
			next = c
		}
	}
	fs := e.fs
	if fs != nil {
		if len(fs.retryHeap) > 0 {
			noEvents = false
			if c := fs.retryHeap[0].when; c < next {
				next = c
			}
		}
		if fs.next < len(fs.plan.Events) {
			noEvents = false
			if c := fs.plan.Events[fs.next].Cycle; c < next {
				next = c
			}
		}
	}
	if fs != nil {
		if noEvents {
			// Nothing is ever going to happen again: the only remaining
			// actor is the watchdog, which counts every idle cycle and ends
			// the run once stuck exceeds its limit. Reproduce its firing
			// cycle exactly (the stepped engine increments stuck once per
			// cycle after t, starting from the current value).
			fire := t + fs.watchdogLimit() - fs.stuck + 1
			if fire < next {
				e.emitSkippedSamples(t, fire)
				e.skipped += fire - 1 - t
				fs.stuck = fs.watchdogLimit() + 1
				fs.finishStranded(fire)
				return fire - t
			}
			fs.stuck += next - 1 - t
		} else {
			// Pending events reset the watchdog in every skipped cycle
			// (progress is unchanged, but the heaps are non-empty).
			fs.stuck = 0
		}
	}
	e.emitSkippedSamples(t, next-1)
	e.skipped += next - 1 - t
	return next - 1 - t
}

// quiescent reports whether the just-committed cycle left the network
// empty: no active router on any shard's worklist (every queued packet
// keeps its unit active, its router listed) and no packet in the mail
// rings (posted minus drained minus fault-dropped, summed serially over
// the shard-owned counters).
func (e *Engine) quiescent() bool {
	var out, in int64
	for _, sh := range e.shards {
		if len(sh.routers) > 0 {
			return false
		}
		out += sh.mailOut
		in += sh.mailIn
	}
	return out-in-e.mailDropped == 0
}

// emitSkippedSamples appends the interval-series rows the skipped cycles
// t+1..last would have committed. All sampled counters are cumulative
// and nothing moves while idle, so each row equals the state at the
// skip: only the cycle stamps differ. Keeping them preserves the
// byte-identical-artifact contract of the obs layer.
func (e *Engine) emitSkippedSamples(t, last int64) {
	if e.metInterval == 0 {
		return
	}
	// Stepped cycle u commits a row stamped u+1 when (u+1)%interval == 0:
	// row stamps are the multiples of the interval in [t+2, last+1].
	first := (t + 2 + e.metInterval - 1) / e.metInterval * e.metInterval
	for c := first; c <= last+1; c += e.metInterval {
		e.sampleInterval(c)
	}
}
