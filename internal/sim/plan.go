package sim

// Dynamic fault plans: scripted link/router failures (and optional
// repairs) consumed by the cycle-level engine. A Plan is the dynamic
// complement of the structural §11.2 sweep — instead of measuring a
// statically degraded topology, the engine applies the events while
// traffic is in flight, so the experiment observes dropped packets,
// source retries and re-routing around the damage.
//
// The type lives in sim (faults re-exports it as faults.Plan) because
// faults already imports sim for the degraded-traffic sweep; defining the
// plan here keeps the dependency one-way.

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"polarstar/internal/graph"
)

// EventKind is the kind of one fault-plan event.
type EventKind uint8

// Fault event kinds.
const (
	// LinkDown fails the undirected link U–V: both directed channels stop
	// arbitrating, packets in flight on them are dropped (credits
	// reclaimed) and source-retried.
	LinkDown EventKind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// RouterDown fails router U: every incident link goes down and its
	// endpoints stop ejecting.
	RouterDown
	// RouterUp repairs a previously failed router.
	RouterUp
)

func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case RouterDown:
		return "router-down"
	case RouterUp:
		return "router-up"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FaultEvent is one scripted topology change at a given cycle. V is
// ignored for router events.
type FaultEvent struct {
	Cycle int64
	Kind  EventKind
	U, V  int
}

// Plan is a deterministic schedule of fault events, sorted by cycle. The
// engine applies every event whose cycle has been reached at the start of
// the cycle, before generation and routing. An empty plan is equivalent
// to no plan at all: the engine takes the healthy fast path and results
// are bit-identical to a plan-less run.
type Plan struct {
	Events []FaultEvent
}

// Empty reports whether the plan carries no events.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// normalize sorts events by cycle, keeping the relative order of events
// at the same cycle (repair-before-refail sequences stay meaningful).
func (p *Plan) normalize() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Cycle < p.Events[j].Cycle })
}

// Validate checks the plan against a topology: cycles must be
// non-negative, link events must name edges of g, and router events must
// name vertices of g.
func (p *Plan) Validate(g *graph.Graph) error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if ev.Cycle < 0 {
			return fmt.Errorf("sim: plan event %d: negative cycle %d", i, ev.Cycle)
		}
		switch ev.Kind {
		case LinkDown, LinkUp:
			if ev.U < 0 || ev.U >= g.N() || ev.V < 0 || ev.V >= g.N() || !g.HasEdge(ev.U, ev.V) {
				return fmt.Errorf("sim: plan event %d: (%d,%d) is not a link of %s", i, ev.U, ev.V, g.Name())
			}
		case RouterDown, RouterUp:
			if ev.U < 0 || ev.U >= g.N() {
				return fmt.Errorf("sim: plan event %d: router %d outside the %d-router graph", i, ev.U, g.N())
			}
		default:
			return fmt.Errorf("sim: plan event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// String renders the plan in its canonical text form — the same format
// ParsePlan reads, one event per line, sorted by cycle. Hash is the
// FNV-1a of this form, so two plans hash equal iff they script the same
// schedule.
func (p *Plan) String() string {
	var b strings.Builder
	for _, ev := range p.Events {
		switch ev.Kind {
		case RouterDown, RouterUp:
			fmt.Fprintf(&b, "%d %s %d\n", ev.Cycle, ev.Kind, ev.U)
		default:
			fmt.Fprintf(&b, "%d %s %d %d\n", ev.Cycle, ev.Kind, ev.U, ev.V)
		}
	}
	return b.String()
}

// Hash returns the FNV-1a 64-bit hash of the canonical text form,
// recorded in run manifests so degraded runs are reproducible from
// artifacts alone.
func (p *Plan) Hash() uint64 {
	h := fnv.New64a()
	if p != nil {
		h.Write([]byte(p.String()))
	}
	return h.Sum64()
}

// ParsePlan reads the text form of a plan: one event per line,
//
//	<cycle> link-down <u> <v>
//	<cycle> link-up <u> <v>
//	<cycle> router-down <r>
//	<cycle> router-up <r>
//
// Blank lines and '#' comments are skipped. Events may appear in any
// order; the returned plan is sorted by cycle.
func ParsePlan(text string) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("sim: plan line %d: want '<cycle> <kind> <args>', got %q", lineNo, line)
		}
		cycle, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || cycle < 0 {
			return nil, fmt.Errorf("sim: plan line %d: bad cycle %q", lineNo, fields[0])
		}
		var kind EventKind
		var wantArgs int
		switch fields[1] {
		case "link-down":
			kind, wantArgs = LinkDown, 2
		case "link-up":
			kind, wantArgs = LinkUp, 2
		case "router-down":
			kind, wantArgs = RouterDown, 1
		case "router-up":
			kind, wantArgs = RouterUp, 1
		default:
			return nil, fmt.Errorf("sim: plan line %d: unknown event kind %q", lineNo, fields[1])
		}
		if len(fields) != 2+wantArgs {
			return nil, fmt.Errorf("sim: plan line %d: %s takes %d arguments, got %d", lineNo, fields[1], wantArgs, len(fields)-2)
		}
		ev := FaultEvent{Cycle: cycle, Kind: kind}
		if ev.U, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("sim: plan line %d: bad vertex %q", lineNo, fields[2])
		}
		if wantArgs == 2 {
			if ev.V, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("sim: plan line %d: bad vertex %q", lineNo, fields[3])
			}
		}
		p.Events = append(p.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: plan: %w", err)
	}
	p.normalize()
	return p, nil
}

// RandomPlan generates a seeded random link-failure schedule with
// exponential inter-failure times of mean mtbf cycles over [1, horizon).
// Each failure takes down a uniformly random currently-live link; when
// repair > 0 the link comes back repair cycles later (an MTBF/MTTR
// process), otherwise failures are permanent. Deterministic per seed.
func RandomPlan(g *graph.Graph, mtbf float64, repair, horizon int64, seed int64) *Plan {
	p := &Plan{}
	if mtbf <= 0 || horizon <= 0 || g.M() == 0 {
		return p
	}
	edges := g.Edges()
	rng := rand.New(rand.NewSource(seed))
	upAt := make(map[[2]int]int64) // edge -> cycle it comes back (1<<62: never)
	t := int64(0)
	for {
		t += int64(rng.ExpFloat64()*mtbf) + 1
		if t >= horizon {
			break
		}
		e := edges[rng.Intn(len(edges))]
		if up, down := upAt[e]; down && up > t {
			continue // the drawn link is already down: the failure is a no-op
		}
		p.Events = append(p.Events, FaultEvent{Cycle: t, Kind: LinkDown, U: e[0], V: e[1]})
		if repair > 0 {
			p.Events = append(p.Events, FaultEvent{Cycle: t + repair, Kind: LinkUp, U: e[0], V: e[1]})
			upAt[e] = t + repair
		} else {
			upAt[e] = 1 << 62
		}
	}
	p.normalize()
	return p
}

// LoadPlan builds a fault plan from a plan file, an MTBF generator, or
// both (events merge). It validates the result against g. file == "" and
// mtbf <= 0 yield an empty plan.
func LoadPlan(file string, mtbf float64, repair int64, g *graph.Graph, horizon, seed int64) (*Plan, error) {
	p := &Plan{}
	if file != "" {
		text, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("sim: fault plan: %w", err)
		}
		if p, err = ParsePlan(string(text)); err != nil {
			return nil, err
		}
	}
	if mtbf > 0 {
		p.Events = append(p.Events, RandomPlan(g, mtbf, repair, horizon, seed).Events...)
		p.normalize()
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return p, nil
}

// RetryPolicy bounds the source-retry behavior of fault-injected runs: a
// packet dropped by a failing link (or unroutable at injection while the
// topology is degraded) is re-injected at its source endpoint after an
// exponential backoff, up to MaxRetries times and only while younger
// than MaxAge cycles. The zero value selects DefaultRetryPolicy.
type RetryPolicy struct {
	MaxRetries  int   // source retries per packet before it counts as lost
	BackoffBase int64 // cycles before the first retry; doubles per retry
	BackoffCap  int64 // upper bound on the backoff
	MaxAge      int64 // per-packet age limit in cycles since generation (0: none)
}

// DefaultRetryPolicy is the retry configuration used when Params.Retry is
// left zero: 4 retries, 8-cycle base backoff capped at 512, 4096-cycle
// packet age limit.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BackoffBase: 8, BackoffCap: 512, MaxAge: 4096}
}

// normalized returns the policy with the zero value replaced by the
// default and degenerate fields clamped to usable values.
func (rp RetryPolicy) normalized() RetryPolicy {
	if rp == (RetryPolicy{}) {
		rp = DefaultRetryPolicy()
	}
	if rp.BackoffBase < 1 {
		rp.BackoffBase = 1
	}
	if rp.BackoffCap < rp.BackoffBase {
		rp.BackoffCap = rp.BackoffBase
	}
	if rp.MaxRetries < 0 {
		rp.MaxRetries = 0
	}
	return rp
}
