package sim

import (
	"math/rand"
	"sync"
	"testing"

	"polarstar/internal/route"
)

// fuzzSpecNames are the scaled-down registered topologies the path fuzz
// sweeps: every routing engine family — analytic PolarStar (IQ and
// Paley), multi-path tables (Bundlefly, Spectralfly), and the dimension-
// order/group routers (HyperX, Dragonfly, Megafly, Fat-tree).
var fuzzSpecNames = []string{
	"ps-iq-small", "ps-pal-small", "bf-small", "hx-small",
	"df-small", "sf-small", "mf-small", "ft-small",
}

var (
	fuzzSpecsOnce sync.Once
	fuzzSpecs     map[string]*Spec
)

func fuzzSpec(name string) *Spec {
	fuzzSpecsOnce.Do(func() {
		fuzzSpecs = map[string]*Spec{}
		for _, n := range fuzzSpecNames {
			fuzzSpecs[n] = MustNewSpec(n)
		}
	})
	return fuzzSpecs[name]
}

// checkPath asserts the path-validity contract for one (src, dst) query:
// correct endpoints, edge-valid hops, loop-free, exactly Dist hops, and
// within the spec's minimal-hop bound.
func checkPath(t *testing.T, spec *Spec, path []int, src, dst int) {
	t.Helper()
	if src == dst {
		if len(path) != 0 {
			t.Fatalf("%s: src==dst=%d returned non-empty path %v", spec.Name, src, path)
		}
		return
	}
	if len(path) < 2 {
		t.Fatalf("%s: (%d,%d) returned truncated path %v", spec.Name, src, dst, path)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("%s: path %v does not join (%d,%d)", spec.Name, path, src, dst)
	}
	seen := map[int]bool{}
	for i, v := range path {
		if v < 0 || v >= spec.Graph.N() {
			t.Fatalf("%s: path %v leaves the vertex set at position %d", spec.Name, path, i)
		}
		if seen[v] {
			t.Fatalf("%s: path %v revisits vertex %d (routing loop)", spec.Name, path, v)
		}
		seen[v] = true
		if i+1 < len(path) && !spec.Graph.HasEdge(v, path[i+1]) {
			t.Fatalf("%s: path %v uses missing edge (%d,%d)", spec.Name, path, v, path[i+1])
		}
	}
	if !route.PathValid(spec.Graph, path) {
		t.Fatalf("%s: PathValid rejects %v", spec.Name, path)
	}
	if d := spec.MinEngine.Dist(src, dst); len(path)-1 != d {
		t.Fatalf("%s: path %v has %d hops, engine Dist says %d", spec.Name, path, len(path)-1, d)
	}
	if len(path)-1 > spec.MinHops {
		t.Fatalf("%s: path %v exceeds the minimal-hop bound %d", spec.Name, path, spec.MinHops)
	}
}

// routeDomain returns the vertices routing is defined between: the host
// routers when the spec restricts endpoints (Megafly/Fat-tree leaves,
// where MinHops is also scoped), otherwise every router.
func routeDomain(spec *Spec) []int {
	if spec.Hosts != nil {
		return spec.Hosts
	}
	all := make([]int, spec.Graph.N())
	for i := range all {
		all[i] = i
	}
	return all
}

// FuzzRoutePaths drives every registered routing engine with arbitrary
// (topology, src, dst, seed) tuples and asserts the path contract, plus
// the Route/AppendPath equivalence under equal seeds.
func FuzzRoutePaths(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint16(1), int64(1))
	f.Add(uint8(3), uint16(17), uint16(250), int64(42))
	f.Add(uint8(7), uint16(500), uint16(500), int64(-9))
	f.Fuzz(func(t *testing.T, specIdx uint8, srcRaw, dstRaw uint16, seed int64) {
		spec := fuzzSpec(fuzzSpecNames[int(specIdx)%len(fuzzSpecNames)])
		dom := routeDomain(spec)
		src, dst := dom[int(srcRaw)%len(dom)], dom[int(dstRaw)%len(dom)]
		path := spec.MinEngine.Route(src, dst, rand.New(rand.NewSource(seed)))
		checkPath(t, spec, path, src, dst)
		// AppendPath with an equally seeded RNG must reproduce Route
		// exactly (the allocation-free hot path is the same function).
		buf := spec.MinEngine.AppendPath(make([]int, 0, 8), src, dst, rand.New(rand.NewSource(seed)))
		if len(buf) != len(path) {
			t.Fatalf("%s: AppendPath %v differs from Route %v", spec.Name, buf, path)
		}
		for i := range buf {
			if buf[i] != path[i] {
				t.Fatalf("%s: AppendPath %v differs from Route %v at hop %d", spec.Name, buf, path, i)
			}
		}
	})
}

// TestRoutePathSweep is the deterministic companion of FuzzRoutePaths:
// a seeded random-pair sweep across every registered topology, so the
// contract is exercised on every `go test` run, not only under -fuzz.
func TestRoutePathSweep(t *testing.T) {
	for _, name := range fuzzSpecNames {
		spec := fuzzSpec(name)
		rng := rand.New(rand.NewSource(99))
		dom := routeDomain(spec)
		for i := 0; i < 500; i++ {
			src, dst := dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]
			path := spec.MinEngine.Route(src, dst, rng)
			checkPath(t, spec, path, src, dst)
		}
	}
}
