package sim

import (
	"math/rand"

	"polarstar/internal/route"
)

// Min adapts a minimal routing engine to the simulator (§9.3 "MIN").
type Min struct {
	Engine route.Engine
	// Hops bounds minimal path lengths (diameter; 4 for the indirect
	// fat-tree/Megafly leaf-to-leaf paths).
	Hops int
}

// Path implements Routing.
func (m Min) Path(src, dst int, _ OccFn, rng *rand.Rand) []int {
	return m.Engine.Route(src, dst, rng)
}

// MaxHops implements Routing.
func (m Min) MaxHops() int { return m.Hops }

// UGAL is load-balancing adaptive routing (§9.3): per packet it compares
// the minimal path against Samples random Valiant paths, scoring each
// candidate by (queue occupancy) × (path hops), and picks the best.
// Intermediates are drawn from Mids (all routers for direct topologies,
// leaf routers for indirect ones).
//
// Two congestion estimates are supported: UGAL-L (the paper's §9.3
// configuration) uses only the source router's local first-hop queue;
// UGAL-G (ablation) uses the maximum queue along the whole candidate
// path — an idealized global-information router.
type UGAL struct {
	Min     route.Engine
	Mids    []int // candidate intermediate routers (nil: all 0..N-1)
	N       int   // router count
	Samples int   // Valiant samples per packet (paper: 4)
	Hops    int   // max hops of a Valiant path (2× minimal diameter)
	PktSize int   // flits per packet, for the zero-queue tie-break
	Global  bool  // UGAL-G: score with the max queue along the path
}

// Path implements Routing.
func (u UGAL) Path(src, dst int, occ OccFn, rng *rand.Rand) []int {
	best := u.Min.Route(src, dst, rng)
	bestScore := u.score(best, occ)
	for s := 0; s < u.Samples; s++ {
		var mid int
		if u.Mids != nil {
			mid = u.Mids[rng.Intn(len(u.Mids))]
		} else {
			mid = rng.Intn(u.N)
		}
		if mid == src || mid == dst {
			continue
		}
		a := u.Min.Route(src, mid, rng)
		b := u.Min.Route(mid, dst, rng)
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		cand := append(append(make([]int, 0, len(a)+len(b)-1), a...), b[1:]...)
		if sc := u.score(cand, occ); sc < bestScore {
			best, bestScore = cand, sc
		}
	}
	return best
}

// score is (queue occupancy + one packet) × hop count: the packet's own
// serialization provides the minimal-path bias at zero load. UGAL-L
// reads the first hop's queue; UGAL-G the maximum along the path.
func (u UGAL) score(path []int, occ OccFn) int {
	if len(path) < 2 {
		return 0
	}
	hops := len(path) - 1
	q := occ(path[0], path[1])
	if u.Global {
		for i := 1; i+1 < len(path); i++ {
			if o := occ(path[i], path[i+1]); o > q {
				q = o
			}
		}
	}
	return (q + u.PktSize) * hops
}

// MaxHops implements Routing.
func (u UGAL) MaxHops() int { return u.Hops }
