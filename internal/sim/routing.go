package sim

import (
	"math/rand"

	"polarstar/internal/route"
)

// LiveFn reports whether the directed link u→v is currently usable; the
// fault-injection state installs one on every shard's routing clone so
// MIN/UGAL consult link liveness. nil means the network is healthy.
type LiveFn func(u, v int) bool

// pathLive reports whether every hop of a vertex path is live (trivially
// true for a nil LiveFn).
func pathLive(path []int, live LiveFn) bool {
	if live == nil {
		return true
	}
	for i := 0; i+1 < len(path); i++ {
		if !live(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// Min adapts a minimal routing engine to the simulator (§9.3 "MIN").
type Min struct {
	Engine route.Engine
	// Hops bounds minimal path lengths (diameter; 4 for the indirect
	// fat-tree/Megafly leaf-to-leaf paths).
	Hops int
	// Live, when set, invalidates paths crossing failed links: Path
	// returns buf unchanged so the engine's fault fallbacks (repaired
	// table, escape paths) take over. RNG consumption is unaffected.
	Live LiveFn
}

// Path implements Routing.
func (m Min) Path(buf []int, src, dst int, _ OccFn, rng *rand.Rand) []int {
	n0 := len(buf)
	buf = m.Engine.AppendPath(buf, src, dst, rng)
	if m.Live != nil && !pathLive(buf[n0:], m.Live) {
		return buf[:n0]
	}
	return buf
}

// MaxHops implements Routing.
func (m Min) MaxHops() int { return m.Hops }

// Clone implements Routing. Min is stateless (route engines are
// goroutine-safe for reads), so the value itself is returned.
func (m Min) Clone() Routing { return m }

// UGAL is load-balancing adaptive routing (§9.3): per packet it compares
// the minimal path against Samples random Valiant paths, scoring each
// candidate by (queue occupancy) × (path hops), and picks the best.
// Intermediates are drawn from Mids (all routers for direct topologies,
// leaf routers for indirect ones).
//
// Two congestion estimates are supported: UGAL-L (the paper's §9.3
// configuration) uses only the source router's local first-hop queue;
// UGAL-G (ablation) uses the maximum queue along the whole candidate
// path — an idealized global-information router.
//
// A UGAL value owns two internal path buffers (the incumbent and the
// candidate under evaluation) so per-packet path selection allocates
// nothing once the buffers have grown; it is therefore a pointer type and
// serves one simulator goroutine.
type UGAL struct {
	Min     route.Engine
	Mids    []int // candidate intermediate routers (nil: all 0..N-1)
	N       int   // router count
	Samples int   // Valiant samples per packet (paper: 4)
	Hops    int   // max hops of a Valiant path (2× minimal diameter)
	PktSize int   // flits per packet, for the zero-queue tie-break
	Global  bool  // UGAL-G: score with the max queue along the path
	// Live, when set, makes path selection liveness-aware: a live
	// candidate always beats a dead incumbent regardless of score, and
	// Path returns buf unchanged when every candidate crosses a failed
	// link. RNG consumption is identical with or without Live set.
	Live LiveFn

	bufA, bufB []int // incumbent / candidate scratch
}

// Path implements Routing. The RNG consumption order matches the
// pre-buffer implementation exactly: one draw sequence for the minimal
// path, then per sample the intermediate draw followed by both legs
// (legs are routed even when one turns out empty, as before).
func (u *UGAL) Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int {
	best := u.Min.AppendPath(u.bufA[:0], src, dst, rng)
	u.bufA = best
	bestScore := u.score(best, occ)
	// An empty (unroutable-minimal) incumbent counts as live: candidates
	// then compete on score exactly as without Live, and the engine's
	// detour fallbacks handle the empty result.
	bestLive := pathLive(best, u.Live)
	for s := 0; s < u.Samples; s++ {
		var mid int
		if u.Mids != nil {
			mid = u.Mids[rng.Intn(len(u.Mids))]
		} else {
			mid = rng.Intn(u.N)
		}
		if mid == src || mid == dst {
			continue
		}
		cand := u.Min.AppendPath(u.bufB[:0], src, mid, rng)
		n1 := len(cand)
		cand = u.Min.AppendPath(cand, mid, dst, rng)
		u.bufB = cand
		if n1 == 0 || len(cand) == n1 {
			continue // a leg is unroutable: candidate invalid
		}
		// Drop the duplicated joint (cand[n1] repeats mid == cand[n1-1]).
		copy(cand[n1:], cand[n1+1:])
		cand = cand[:len(cand)-1]
		candLive := pathLive(cand, u.Live)
		if candLive != bestLive {
			if !candLive {
				continue // never trade a live incumbent for a dead candidate
			}
			best, bestScore, bestLive = cand, u.score(cand, occ), true
			u.bufA, u.bufB = u.bufB, u.bufA
			continue
		}
		if sc := u.score(cand, occ); sc < bestScore {
			best, bestScore = cand, sc
			u.bufA, u.bufB = u.bufB, u.bufA
		}
	}
	if u.Live != nil && !bestLive {
		return buf // every candidate crosses a failed link
	}
	return append(buf, best...)
}

// score is (queue occupancy + one packet) × hop count: the packet's own
// serialization provides the minimal-path bias at zero load. UGAL-L
// reads the first hop's queue; UGAL-G the maximum along the path.
func (u *UGAL) score(path []int, occ OccFn) int {
	if len(path) < 2 {
		return 0
	}
	hops := len(path) - 1
	q := occ(path[0], path[1])
	if u.Global {
		for i := 1; i+1 < len(path); i++ {
			if o := occ(path[i], path[i+1]); o > q {
				q = o
			}
		}
	}
	return (q + u.PktSize) * hops
}

// MaxHops implements Routing.
func (u *UGAL) MaxHops() int { return u.Hops }

// Clone implements Routing: a copy with its own scratch buffers, sharing
// the read-only route engine and intermediate list.
func (u *UGAL) Clone() Routing {
	c := *u
	c.bufA, c.bufB = nil, nil
	return &c
}

// lanedRouting is the optional Routing extension for engines that spread
// packets over multiple virtual-channel lanes. The engine maps each lane
// to its own disjoint VC band (NewEngine sizes the ladder from
// LaneWidths), and routeShard records the chosen lane on the packet so
// arbitration clamps VC allocation to the lane's band.
type lanedRouting interface {
	Routing
	// LaneWidths returns the VC band width of every lane: entry 0 is the
	// minimal-path lane, entries 1.. the tree lanes. Width l must exceed
	// the hop count of any lane-l path PathLane returns.
	LaneWidths() []int
	// PathLane is Path plus the index of the lane the path rides.
	PathLane(buf []int, src, dst int, occ OccFn, rng *rand.Rand) ([]int, int8)
}

// MultiPathRouting sprays packets across a minimal-path lane and k
// edge-disjoint spanning-tree lanes (route.MultiPath), choosing per
// packet with UGAL-style occupancy scoring: each live lane's candidate
// path is scored (first-hop queue + one packet) × hops and the cheapest
// lane wins, ties toward the lowest lane. Each tree's paths stay inside
// that tree and each lane gets a private VC band, so the composite
// stays deadlock-free (DESIGN.md §13). Under a fault plan the engine
// installs Live and health: demoted lanes drop out of the spray
// deterministically, and with every tree lane down the choice degenerates
// to the base engine alone — bit-identical to running it directly.
//
// A MultiPathRouting owns per-lane scratch, so it is a pointer type
// serving one simulator goroutine; Clone gives workers their own.
type MultiPathRouting struct {
	Base    Routing          // minimal or UGAL engine: lane 0
	MP      *route.MultiPath // tree lanes 1..k
	PktSize int              // flits per packet, for the zero-queue tie-break
	// Live, when set, filters tree-lane candidates to fully-live paths
	// (the base lane handles liveness itself). Installed by the fault
	// machinery; RNG consumption is identical with or without it.
	Live LiveFn
	// health, when non-nil, exposes the per-lane demotion state: down
	// lanes are skipped before their paths are even built. Written only
	// in the engine's serial sections, read here during routing.
	health *laneHealth
	// repairPath, when set, supplies the degraded-graph minimal path for
	// the base lane when the primary engine's path is dead: the repaired
	// route then competes against the tree lanes on occupancy score
	// instead of the spray funneling every displaced packet onto the
	// (much longer) surviving trees. Installed by the fault machinery;
	// returns buf unchanged while no repair table exists.
	repairPath func(buf []int, src, dst int, rng *rand.Rand) []int
	// escapePath, when set, supplies the shortest live escape-tree path;
	// it joins the survival-mode contest (base lane unroutable) so
	// displaced traffic spreads over the escape trees and the surviving
	// lanes by occupancy instead of funneling onto one tree. Escape
	// paths ride the base lane's VC band, like detour paths.
	escapePath func(buf []int, src, dst int) []int

	bufA, bufB []int // winning / candidate scratch
}

// Path implements Routing via the base lane alone.
func (m *MultiPathRouting) Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int {
	return m.Base.Path(buf, src, dst, occ, rng)
}

// sprayStretch bounds how much longer than the base path a tree-lane
// candidate may be and still compete for load balancing. Tree paths run
// up to the hop cap (11 on a diameter-3 graph), so an unbounded
// occupancy contest leaks packets onto near-worst-case routes whenever
// the minimal queue bursts — and a handful of leaked packets saturates
// the shared tree root long before the minimal lane is actually out of
// capacity. When the base lane is unroutable the bound does not apply:
// any live tree path beats dropping the packet.
const sprayStretch = 2

// PathLane implements lanedRouting: the base path is always built first
// (fixing the RNG consumption regardless of lane health, with the
// repaired degraded-graph table standing in when the primary's path is
// dead), then each live tree lane competes on occupancy score.
func (m *MultiPathRouting) PathLane(buf []int, src, dst int, occ OccFn, rng *rand.Rand) ([]int, int8) {
	best := m.Base.Path(m.bufA[:0], src, dst, occ, rng)
	m.bufA = best
	if len(best) == 0 && m.repairPath != nil {
		best = m.repairPath(m.bufA[:0], src, dst, rng)
		m.bufA = best
	}
	lane := int8(0)
	bestScore := m.score(best, occ)
	haveBest := len(best) > 0
	// spill mode: the base lane is routable, so tree candidates are
	// optional load-balancing spills and the stretch bound applies.
	// Survival mode (base unroutable): any live tree path competes.
	spill := haveBest
	hopCap := len(best) - 1 + sprayStretch
	for l := 0; l < m.MP.TreeLanes(); l++ {
		if m.health != nil && !m.health.up[l] {
			continue
		}
		cand := m.MP.AppendTreePath(m.bufB[:0], l, src, dst, func(u, v int) bool {
			return m.Live == nil || m.Live(u, v)
		})
		m.bufB = cand
		if len(cand) == 0 {
			continue // lane skips this pair (hop bound or dead tree edge)
		}
		if spill && len(cand)-1 > hopCap {
			continue // too much stretch to be a load-balancing spill
		}
		if sc := m.score(cand, occ); !haveBest || sc < bestScore {
			best, bestScore, lane, haveBest = cand, sc, int8(l+1), true
			m.bufA, m.bufB = m.bufB, m.bufA
		}
	}
	if !spill && m.escapePath != nil {
		cand := m.escapePath(m.bufB[:0], src, dst)
		m.bufB = cand
		if n := len(cand); n > 0 && n <= MaxPathNodes {
			if sc := m.score(cand, occ); !haveBest || sc < bestScore {
				best, lane, haveBest = cand, 0, true
				m.bufA, m.bufB = m.bufB, m.bufA
			}
		}
	}
	if !haveBest {
		return buf, 0 // unroutable everywhere: the fault fallbacks take over
	}
	return append(buf, best...), lane
}

// score mirrors UGAL-L: (first-hop queue + one packet) × hop count.
func (m *MultiPathRouting) score(path []int, occ OccFn) int {
	if len(path) < 2 {
		return 0
	}
	return (occ(path[0], path[1]) + m.PktSize) * (len(path) - 1)
}

// LaneWidths implements lanedRouting.
func (m *MultiPathRouting) LaneWidths() []int {
	w := make([]int, 1+m.MP.TreeLanes())
	w[0] = m.Base.MaxHops() + 1
	for l := 0; l < m.MP.TreeLanes(); l++ {
		w[l+1] = m.MP.LaneMaxHops(l) + 1
	}
	return w
}

// MaxHops implements Routing: the longest path any lane can return.
func (m *MultiPathRouting) MaxHops() int {
	h := m.Base.MaxHops()
	for l := 0; l < m.MP.TreeLanes(); l++ {
		if lh := m.MP.LaneMaxHops(l); lh > h {
			h = lh
		}
	}
	return h
}

// Clone implements Routing: fresh scratch, own base clone, shared
// read-only tree structure.
func (m *MultiPathRouting) Clone() Routing {
	c := *m
	c.Base = m.Base.Clone()
	c.bufA, c.bufB = nil, nil
	return &c
}

// setLive installs liveness, lane health, and the repaired-base-path
// source on the adapter and its base engine; the fault machinery calls
// it on every shard clone.
func (m *MultiPathRouting) setLive(live LiveFn, health *laneHealth, repairPath func([]int, int, int, *rand.Rand) []int, escapePath func([]int, int, int) []int) {
	m.Live = live
	m.health = health
	m.repairPath = repairPath
	m.escapePath = escapePath
	switch b := m.Base.(type) {
	case Min:
		b.Live = live
		m.Base = b
	case *UGAL:
		b.Live = live
	}
}
