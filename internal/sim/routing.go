package sim

import (
	"math/rand"

	"polarstar/internal/route"
)

// LiveFn reports whether the directed link u→v is currently usable; the
// fault-injection state installs one on every shard's routing clone so
// MIN/UGAL consult link liveness. nil means the network is healthy.
type LiveFn func(u, v int) bool

// pathLive reports whether every hop of a vertex path is live (trivially
// true for a nil LiveFn).
func pathLive(path []int, live LiveFn) bool {
	if live == nil {
		return true
	}
	for i := 0; i+1 < len(path); i++ {
		if !live(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// Min adapts a minimal routing engine to the simulator (§9.3 "MIN").
type Min struct {
	Engine route.Engine
	// Hops bounds minimal path lengths (diameter; 4 for the indirect
	// fat-tree/Megafly leaf-to-leaf paths).
	Hops int
	// Live, when set, invalidates paths crossing failed links: Path
	// returns buf unchanged so the engine's fault fallbacks (repaired
	// table, escape paths) take over. RNG consumption is unaffected.
	Live LiveFn
}

// Path implements Routing.
func (m Min) Path(buf []int, src, dst int, _ OccFn, rng *rand.Rand) []int {
	n0 := len(buf)
	buf = m.Engine.AppendPath(buf, src, dst, rng)
	if m.Live != nil && !pathLive(buf[n0:], m.Live) {
		return buf[:n0]
	}
	return buf
}

// MaxHops implements Routing.
func (m Min) MaxHops() int { return m.Hops }

// Clone implements Routing. Min is stateless (route engines are
// goroutine-safe for reads), so the value itself is returned.
func (m Min) Clone() Routing { return m }

// UGAL is load-balancing adaptive routing (§9.3): per packet it compares
// the minimal path against Samples random Valiant paths, scoring each
// candidate by (queue occupancy) × (path hops), and picks the best.
// Intermediates are drawn from Mids (all routers for direct topologies,
// leaf routers for indirect ones).
//
// Two congestion estimates are supported: UGAL-L (the paper's §9.3
// configuration) uses only the source router's local first-hop queue;
// UGAL-G (ablation) uses the maximum queue along the whole candidate
// path — an idealized global-information router.
//
// A UGAL value owns two internal path buffers (the incumbent and the
// candidate under evaluation) so per-packet path selection allocates
// nothing once the buffers have grown; it is therefore a pointer type and
// serves one simulator goroutine.
type UGAL struct {
	Min     route.Engine
	Mids    []int // candidate intermediate routers (nil: all 0..N-1)
	N       int   // router count
	Samples int   // Valiant samples per packet (paper: 4)
	Hops    int   // max hops of a Valiant path (2× minimal diameter)
	PktSize int   // flits per packet, for the zero-queue tie-break
	Global  bool  // UGAL-G: score with the max queue along the path
	// Live, when set, makes path selection liveness-aware: a live
	// candidate always beats a dead incumbent regardless of score, and
	// Path returns buf unchanged when every candidate crosses a failed
	// link. RNG consumption is identical with or without Live set.
	Live LiveFn

	bufA, bufB []int // incumbent / candidate scratch
}

// Path implements Routing. The RNG consumption order matches the
// pre-buffer implementation exactly: one draw sequence for the minimal
// path, then per sample the intermediate draw followed by both legs
// (legs are routed even when one turns out empty, as before).
func (u *UGAL) Path(buf []int, src, dst int, occ OccFn, rng *rand.Rand) []int {
	best := u.Min.AppendPath(u.bufA[:0], src, dst, rng)
	u.bufA = best
	bestScore := u.score(best, occ)
	// An empty (unroutable-minimal) incumbent counts as live: candidates
	// then compete on score exactly as without Live, and the engine's
	// detour fallbacks handle the empty result.
	bestLive := pathLive(best, u.Live)
	for s := 0; s < u.Samples; s++ {
		var mid int
		if u.Mids != nil {
			mid = u.Mids[rng.Intn(len(u.Mids))]
		} else {
			mid = rng.Intn(u.N)
		}
		if mid == src || mid == dst {
			continue
		}
		cand := u.Min.AppendPath(u.bufB[:0], src, mid, rng)
		n1 := len(cand)
		cand = u.Min.AppendPath(cand, mid, dst, rng)
		u.bufB = cand
		if n1 == 0 || len(cand) == n1 {
			continue // a leg is unroutable: candidate invalid
		}
		// Drop the duplicated joint (cand[n1] repeats mid == cand[n1-1]).
		copy(cand[n1:], cand[n1+1:])
		cand = cand[:len(cand)-1]
		candLive := pathLive(cand, u.Live)
		if candLive != bestLive {
			if !candLive {
				continue // never trade a live incumbent for a dead candidate
			}
			best, bestScore, bestLive = cand, u.score(cand, occ), true
			u.bufA, u.bufB = u.bufB, u.bufA
			continue
		}
		if sc := u.score(cand, occ); sc < bestScore {
			best, bestScore = cand, sc
			u.bufA, u.bufB = u.bufB, u.bufA
		}
	}
	if u.Live != nil && !bestLive {
		return buf // every candidate crosses a failed link
	}
	return append(buf, best...)
}

// score is (queue occupancy + one packet) × hop count: the packet's own
// serialization provides the minimal-path bias at zero load. UGAL-L
// reads the first hop's queue; UGAL-G the maximum along the path.
func (u *UGAL) score(path []int, occ OccFn) int {
	if len(path) < 2 {
		return 0
	}
	hops := len(path) - 1
	q := occ(path[0], path[1])
	if u.Global {
		for i := 1; i+1 < len(path); i++ {
			if o := occ(path[i], path[i+1]); o > q {
				q = o
			}
		}
	}
	return (q + u.PktSize) * hops
}

// MaxHops implements Routing.
func (u *UGAL) MaxHops() int { return u.Hops }

// Clone implements Routing: a copy with its own scratch buffers, sharing
// the read-only route engine and intermediate list.
func (u *UGAL) Clone() Routing {
	c := *u
	c.bufA, c.bufB = nil, nil
	return &c
}
