package topo

import (
	"fmt"
	"math/rand"
	"sync"

	"polarstar/internal/gf"
	"polarstar/internal/graph"
)

// MMS constructs the McKay–Miller–Širáň graphs H_q (the SlimFly
// topology): diameter-2 graphs of order 2q² and degree (3q−δ)/2 for prime
// powers q = 4w + δ, δ ∈ {−1, 0, 1}. They are the structure graphs of
// Bundlefly and the subject of the Fig. 4 comparison.
//
// Vertex set: two sheets of q² vertices each. Sheet 0 vertex (x, y) and
// sheet 1 vertex (m, c), all over GF(q):
//
//	(0,x,y) ~ (0,x,y')  iff  y − y' ∈ X
//	(1,m,c) ~ (1,m,c')  iff  c − c' ∈ X'
//	(0,x,y) ~ (1,m,c)   iff  y = m·x + c
//
// For q ≡ 1 (mod 4) the generator sets are the quadratic residues and
// non-residues (McKay–Miller–Širáň / Hafner). For δ ∈ {0, −1} this
// implementation searches deterministically for symmetric generator sets
// of size (q−δ)/2 that achieve diameter 2 (Šiagiová-style constructions
// exist; the search recovers suitable sets without hard-coding them) and
// caches the result per q.
type MMS struct {
	Q     int
	Delta int
	G     *graph.Graph
}

// MMSDegree returns (3q−δ)/2 for q = 4w+δ, or 0 if q is not a feasible
// MMS parameter.
func MMSDegree(q int) int {
	if !gf.IsPrimePower(q) {
		return 0
	}
	switch q % 4 {
	case 1:
		return (3*q - 1) / 2
	case 0:
		return 3 * q / 2
	case 3:
		return (3*q + 1) / 2
	}
	return 0 // q ≡ 2 (mod 4) only for q == 2, which has no MMS graph
}

// MMSOrder returns 2q² when an MMS graph with parameter q exists, else 0.
func MMSOrder(q int) int {
	if MMSDegree(q) == 0 {
		return 0
	}
	return 2 * q * q
}

var (
	mmsSetCacheMu sync.Mutex
	mmsSetCache   = map[int][2][]int{}
)

// NewMMS constructs H_q. For δ ∈ {0, −1} parameters where the generator
// search fails within its budget, an error is returned.
func NewMMS(q int) (*MMS, error) {
	deg := MMSDegree(q)
	if deg == 0 {
		return nil, fmt.Errorf("topo: MMS parameter %d infeasible", q)
	}
	X, Xp, err := mmsGeneratorSets(q)
	if err != nil {
		return nil, err
	}
	g := buildMMSGraph(q, X, Xp)
	return &MMS{Q: q, Delta: mmsDelta(q), G: g}, nil
}

// MustNewMMS is NewMMS but panics on error.
func MustNewMMS(q int) *MMS {
	m, err := NewMMS(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Degree returns the network degree (3q−δ)/2.
func (m *MMS) Degree() int { return MMSDegree(m.Q) }

// N returns the order 2q².
func (m *MMS) N() int { return 2 * m.Q * m.Q }

func mmsDelta(q int) int {
	switch q % 4 {
	case 1:
		return 1
	case 3:
		return -1
	}
	return 0
}

func buildMMSGraph(q int, X, Xp []int) *graph.Graph {
	f := gf.MustNew(q)
	inX := make([]bool, q)
	inXp := make([]bool, q)
	for _, x := range X {
		inX[x] = true
	}
	for _, x := range Xp {
		inXp[x] = true
	}
	id0 := func(x, y int) int { return x*q + y }
	id1 := func(m, c int) int { return q*q + m*q + c }
	b := graph.NewBuilder(fmt.Sprintf("MMS%d", q), 2*q*q)
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			for yp := y + 1; yp < q; yp++ {
				if inX[f.Sub(y, yp)] {
					b.AddEdge(id0(x, y), id0(x, yp))
				}
			}
		}
	}
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			for cp := c + 1; cp < q; cp++ {
				if inXp[f.Sub(c, cp)] {
					b.AddEdge(id1(m, c), id1(m, cp))
				}
			}
		}
	}
	for x := 0; x < q; x++ {
		for m := 0; m < q; m++ {
			for c := 0; c < q; c++ {
				b.AddEdge(id0(x, f.Add(f.Mul(m, x), c)), id1(m, c))
			}
		}
	}
	return b.Build()
}

// mmsGeneratorSets returns symmetric sets (X, X') of size (q−δ)/2 that
// yield a diameter-2 graph.
func mmsGeneratorSets(q int) ([]int, []int, error) {
	mmsSetCacheMu.Lock()
	if sets, ok := mmsSetCache[q]; ok {
		mmsSetCacheMu.Unlock()
		return sets[0], sets[1], nil
	}
	mmsSetCacheMu.Unlock()

	f := gf.MustNew(q)
	var X, Xp []int
	switch q % 4 {
	case 1:
		// Proven construction: residues and non-residues.
		X, Xp = f.Residues(), f.NonResidues()
	default:
		var err error
		X, Xp, err = searchMMSSets(q, f)
		if err != nil {
			return nil, nil, err
		}
	}
	mmsSetCacheMu.Lock()
	mmsSetCache[q] = [2][]int{X, Xp}
	mmsSetCacheMu.Unlock()
	return X, Xp, nil
}

// searchMMSSets looks for generator sets for δ ∈ {0, −1} parameters.
// Candidates are unions of the symmetric classes {a, −a} (all singletons
// in characteristic 2), with X' = ξ·X tried first — mirroring the
// structure of the proven δ = 1 sets — before independent combinations.
// The search is deterministic (seeded) and bounded.
func searchMMSSets(q int, f *gf.Field) ([]int, []int, error) {
	size := (q - mmsDelta(q)) / 2
	// Build symmetric classes.
	var classes [][]int
	seen := make([]bool, q)
	for a := 1; a < q; a++ {
		if seen[a] {
			continue
		}
		na := f.Neg(a)
		seen[a] = true
		cl := []int{a}
		if na != a && !seen[na] {
			seen[na] = true
			cl = append(cl, na)
		}
		classes = append(classes, cl)
	}
	scale := func(set []int, s int) []int {
		out := make([]int, len(set))
		for i, x := range set {
			out[i] = f.Mul(s, x)
		}
		return out
	}
	check := func(X, Xp []int) bool {
		if len(X) != size || len(Xp) != size {
			return false
		}
		return mmsSetsGiveDiameter2(q, f, X, Xp)
	}

	// Structured candidate: view the ± classes c_i = {±ξ^i} as the cyclic
	// group Z_m under scaling by ξ (m = number of classes, odd). Taking X
	// as the union of the first (m+1)/2 classes and X' = ξ^((m+1)/2)·X
	// tiles F_q* with a single double-covered class, which satisfies the
	// cross-sheet coverage condition exactly; the intra-column sum
	// conditions are then verified explicitly.
	if m := len(classes); m%2 == 1 {
		take := (m + 1) / 2
		var X []int
		for i := 0; i < take; i++ {
			cls := []int{f.Exp(i)}
			if neg := f.Neg(f.Exp(i)); neg != cls[0] {
				cls = append(cls, neg)
			}
			X = append(X, cls...)
		}
		Xp := scale(X, f.Exp(take))
		if check(X, Xp) {
			return X, Xp, nil
		}
	}

	// Enumerate class unions of total size `size`, trying X' = ξ^j · X —
	// mirroring the δ = 1 structure where X' = ξ·X. The check is the
	// algebraic characterization in mmsSetsGiveDiameter2, so millions of
	// candidates per second are affordable.
	var resultX, resultXp []int
	var tryUnion func(idx, need int, cur []int) bool
	budget := 500000
	if len(classes) > 24 {
		budget = 0 // exhaustive enumeration hopeless; go straight to sampling
	}
	tryUnion = func(idx, need int, cur []int) bool {
		if budget <= 0 {
			return false
		}
		if need == 0 {
			budget--
			if !coversWithSums(q, f, cur) {
				return false
			}
			for j := 1; j < q-1; j++ {
				Xp := scale(cur, f.Exp(j))
				if check(cur, Xp) {
					resultX = append([]int{}, cur...)
					resultXp = Xp
					return true
				}
			}
			return false
		}
		if idx >= len(classes) {
			return false
		}
		for i := idx; i < len(classes); i++ {
			cl := classes[i]
			if len(cl) <= need {
				if tryUnion(i+1, need-len(cl), append(cur, cl...)) {
					return true
				}
			}
		}
		return false
	}
	if tryUnion(0, size, nil) {
		return resultX, resultXp, nil
	}

	// Randomized fallback: sample symmetric sets for X, require the sum
	// coverage condition, then scan all scalings for a compatible X'.
	rng := rand.New(rand.NewSource(int64(q)*7919 + 1))
	for try := 0; try < 20000; try++ {
		X := randomSymmetricSet(rng, classes, size)
		if X == nil {
			break
		}
		if !coversWithSums(q, f, X) {
			continue
		}
		for j := 1; j < q-1; j++ {
			Xp := scale(X, f.Exp(j))
			if check(X, Xp) {
				return X, Xp, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("topo: MMS generator search failed for q=%d", q)
}

func sameSet(q int, a, b []int) bool {
	in := make([]bool, q)
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		if !in[x] {
			return false
		}
	}
	return len(a) == len(b)
}

func randomSymmetricSet(rng *rand.Rand, classes [][]int, size int) []int {
	perm := rng.Perm(len(classes))
	var out []int
	for _, i := range perm {
		if len(out)+len(classes[i]) <= size {
			out = append(out, classes[i]...)
		}
		if len(out) == size {
			return out
		}
	}
	return nil
}

// mmsSetsGiveDiameter2 decides diameter ≤ 2 of the MMS frame graph
// directly from the generator sets, without building the graph. The
// characterization (provable from the frame structure, and cross-checked
// against mmsDiameter2 in the tests):
//
//  1. Same-column sheet-0 pairs need X ∪ (X+X) ⊇ F_q*; likewise X' for
//     sheet 1 — the only 2-walks between same-column vertices stay in the
//     column.
//  2. Cross-sheet pairs (0,x,y), (1,m,c) at difference t = y−mx−c ≠ 0
//     need t ∈ X ∪ X', so X ∪ X' = F_q*.
//  3. Different-column pairs on either sheet always have a common
//     neighbor on the other sheet (a line through two points / the
//     intersection of two lines), so they impose no condition.
func mmsSetsGiveDiameter2(q int, f *gf.Field, X, Xp []int) bool {
	if !coversWithSums(q, f, X) || !coversWithSums(q, f, Xp) {
		return false
	}
	in := make([]bool, q)
	for _, x := range X {
		in[x] = true
	}
	for _, x := range Xp {
		in[x] = true
	}
	for t := 1; t < q; t++ {
		if !in[t] {
			return false
		}
	}
	return true
}

// coversWithSums reports whether X ∪ (X+X) contains every non-zero field
// element.
func coversWithSums(q int, f *gf.Field, X []int) bool {
	in := make([]bool, q)
	for _, x := range X {
		in[x] = true
	}
	for _, a := range X {
		for _, b := range X {
			in[f.Add(a, b)] = true
		}
	}
	for t := 1; t < q; t++ {
		if !in[t] {
			return false
		}
	}
	return true
}

// mmsDiameter2 checks diameter ≤ 2 of the candidate MMS graph using
// bitset neighborhood closure. It is the ground-truth check the algebraic
// characterization is tested against.
func mmsDiameter2(q int, f *gf.Field, X, Xp []int) bool {
	n := 2 * q * q
	words := (n + 63) / 64
	adj := make([][]int32, n)
	inX := make([]bool, q)
	inXp := make([]bool, q)
	for _, x := range X {
		inX[x] = true
	}
	for _, x := range Xp {
		inXp[x] = true
	}
	id0 := func(x, y int) int { return x*q + y }
	id1 := func(m, c int) int { return q*q + m*q + c }
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			for yp := y + 1; yp < q; yp++ {
				if inX[f.Sub(y, yp)] {
					addEdge(id0(x, y), id0(x, yp))
				}
			}
		}
	}
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			for cp := c + 1; cp < q; cp++ {
				if inXp[f.Sub(c, cp)] {
					addEdge(id1(m, c), id1(m, cp))
				}
			}
		}
	}
	for x := 0; x < q; x++ {
		for m := 0; m < q; m++ {
			for c := 0; c < q; c++ {
				addEdge(id0(x, f.Add(f.Mul(m, x), c)), id1(m, c))
			}
		}
	}
	bits := make([]uint64, n*words)
	for v := 0; v < n; v++ {
		row := bits[v*words : (v+1)*words]
		row[v/64] |= 1 << (v % 64)
		for _, w := range adj[v] {
			row[w/64] |= 1 << (w % 64)
		}
	}
	closure := make([]uint64, words)
	for v := 0; v < n; v++ {
		copy(closure, bits[v*words:(v+1)*words])
		for _, w := range adj[v] {
			row := bits[int(w)*words : (int(w)+1)*words]
			for i := range closure {
				closure[i] |= row[i]
			}
		}
		want := uint64(^uint64(0))
		for i := 0; i < words; i++ {
			if i == words-1 && n%64 != 0 {
				want = (1 << (n % 64)) - 1
			}
			if closure[i]&want != want {
				return false
			}
		}
	}
	return true
}
