package topo

import (
	"testing"
)

// This file is the closed-form invariant sweep of the construction layer:
// instead of checking single configurations (the pointwise tests in
// er_test.go / supernode_test.go / starproduct_test.go), it sweeps every
// small feasible parameter and asserts the paper's counting formulas and
// factor-graph properties hold at each, printing the violating
// (parameter, vertex) pair on failure via the Property*Witness variants.

// erSweepQ covers every prime power the exhaustive checks stay fast for.
var erSweepQ = []int{2, 3, 4, 5, 7, 8, 9, 11, 13}

// TestERClosedFormSweep pins the §6.1 counting facts of ER_q for every
// swept q: order q²+q+1, exactly q+1 quadric self-loops (Property R's
// loop budget), edge count q(q+1)²/2, and Property R at diameter 2.
func TestERClosedFormSweep(t *testing.T) {
	for _, q := range erSweepQ {
		er, err := NewER(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if got, want := er.N(), q*q+q+1; got != want {
			t.Errorf("q=%d: order %d, want q²+q+1 = %d", q, got, want)
		}
		if got, want := er.G.NumLoops(), q+1; got != want {
			t.Errorf("q=%d: %d quadric loops, want q+1 = %d", q, got, want)
		}
		loops := 0
		for v := 0; v < er.N(); v++ {
			if er.IsQuadric(v) {
				loops++
			}
		}
		if loops != q+1 {
			t.Errorf("q=%d: IsQuadric marks %d vertices, want %d", q, loops, q+1)
		}
		if got, want := er.G.M(), q*(q+1)*(q+1)/2; got != want {
			t.Errorf("q=%d: %d edges, want q(q+1)²/2 = %d", q, got, want)
		}
		if src, dst, ok := PropertyRWitness(er.G, 2); !ok {
			t.Errorf("q=%d: Property R violated: no exact-2 walk from %d to %d", q, src, dst)
		}
	}
}

// TestSupernodePropertySweep sweeps every small feasible supernode degree
// and asserts the Table 2 order formulas plus the defining property —
// R* for Inductive-Quad (Def. via involution), R1 for Paley — printing
// the violating (degree, vertex pair) on failure.
func TestSupernodePropertySweep(t *testing.T) {
	for _, d := range []int{3, 4, 7, 8, 11, 12} {
		if !IQFeasible(d) {
			t.Fatalf("IQ d'=%d unexpectedly infeasible (d' ≡ 0,3 mod 4 expected)", d)
		}
		s, err := NewIQ(d)
		if err != nil {
			t.Fatalf("IQ d'=%d: %v", d, err)
		}
		if got, want := s.N(), 2*d+2; got != want {
			t.Errorf("IQ d'=%d: order %d, want 2d'+2 = %d", d, got, want)
		}
		if x, y, ok := PropertyRStarWitness(s.G, s.F); !ok {
			t.Errorf("IQ d'=%d: Property R* violated at pair (%d, %d)", d, x, y)
		}
	}
	for _, d := range []int{2, 4, 6, 8, 12} {
		if !PaleyFeasible(d) {
			t.Fatalf("Paley d'=%d unexpectedly infeasible (2d'+1 prime power ≡ 1 mod 4 expected)", d)
		}
		s, err := NewPaleySupernode(d)
		if err != nil {
			t.Fatalf("Paley d'=%d: %v", d, err)
		}
		if got, want := s.N(), 2*d+1; got != want {
			t.Errorf("Paley d'=%d: order %d, want 2d'+1 = %d", d, got, want)
		}
		if x, y, ok := PropertyR1Witness(s.G, s.F); !ok {
			t.Errorf("Paley d'=%d: Property R1 violated at pair (%d, %d)", d, x, y)
		}
	}
}

// TestPropertyWitnessDetectsCorruption checks the witness machinery from
// the other side: corrupting the bijection must produce a failure with an
// in-range counterexample pair.
func TestPropertyWitnessDetectsCorruption(t *testing.T) {
	iq := MustNewSupernode(t, KindIQ, 4)
	bad := append([]int(nil), iq.F...)
	bad[0], bad[1] = bad[1], bad[0] // no longer the IQ involution
	if x, y, ok := PropertyRStarWitness(iq.G, bad); ok {
		t.Error("corrupted involution passed Property R*")
	} else if x < 0 || x >= iq.N() || y < -1 || y >= iq.N() {
		t.Errorf("witness pair (%d, %d) out of range", x, y)
	}

	pal := MustNewSupernode(t, KindPaley, 4)
	bad = append([]int(nil), pal.F...)
	bad[0] = bad[1] // not a bijection
	if x, y, ok := PropertyR1Witness(pal.G, bad); ok {
		t.Error("non-bijection passed Property R1")
	} else if x < 0 || x >= pal.N() {
		t.Errorf("witness pair (%d, %d) out of range", x, y)
	}
}

// MustNewSupernode builds a supernode or fails the test.
func MustNewSupernode(t *testing.T, kind SupernodeKind, degree int) *Supernode {
	t.Helper()
	s, err := NewSupernode(kind, degree)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// starSweep lists the small feasible PolarStar parameter combinations the
// product sweep builds exhaustively.
var starSweep = []struct {
	q, dPrime int
	kind      SupernodeKind
}{
	{2, 3, KindIQ}, {3, 3, KindIQ}, {3, 4, KindIQ}, {4, 3, KindIQ}, {5, 4, KindIQ},
	{2, 2, KindPaley}, {3, 4, KindPaley}, {4, 4, KindPaley}, {5, 6, KindPaley},
}

// TestStarProductClosedFormSweep asserts the Def 4.2 / Thm 4–5 structure
// of every swept PolarStar: order (q²+q+1)·N', radix (q+1)+d', diameter
// at most 3, and the exact edge count
//
//	m = N_G·m' + m_G·N' + (q+1)·(N'−fix(f))/2
//
// (intra-supernode copies, inter-supernode bijective matchings, and the
// loop-induced edges on the q+1 quadric supernodes, where fix(f) counts
// the fixed points of the bijection).
func TestStarProductClosedFormSweep(t *testing.T) {
	for _, c := range starSweep {
		ps, err := NewPolarStar(c.q, c.dPrime, c.kind)
		if err != nil {
			t.Fatalf("(q=%d, d'=%d, %v): %v", c.q, c.dPrime, c.kind, err)
		}
		er, super := ps.Structure, ps.Super
		if got, want := ps.G.N(), er.N()*super.N(); got != want {
			t.Errorf("(q=%d, d'=%d, %v): order %d, want %d", c.q, c.dPrime, c.kind, got, want)
		}
		if got, want := ps.G.N(), PolarStarOrder(c.q, c.dPrime, c.kind); got != want {
			t.Errorf("(q=%d, d'=%d, %v): order %d disagrees with PolarStarOrder %d",
				c.q, c.dPrime, c.kind, got, want)
		}
		if got := ps.G.MaxDegree(); got > ps.Radix() {
			t.Errorf("(q=%d, d'=%d, %v): max degree %d exceeds radix %d",
				c.q, c.dPrime, c.kind, got, ps.Radix())
		}
		if diam := ps.G.Diameter(); diam > 3 || diam < 1 {
			t.Errorf("(q=%d, d'=%d, %v): diameter %d, want ≤ 3 (Thm 4/5)",
				c.q, c.dPrime, c.kind, diam)
		}
		fix := 0
		for x, y := range super.F {
			if x == y {
				fix++
			}
		}
		want := er.N()*super.G.M() + er.G.M()*super.N() + (c.q+1)*(super.N()-fix)/2
		if got := ps.G.M(); got != want {
			t.Errorf("(q=%d, d'=%d, %v): %d edges, want closed form %d (fix(f)=%d)",
				c.q, c.dPrime, c.kind, got, want, fix)
		}
	}
}
