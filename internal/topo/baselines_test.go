package topo

import "testing"

func TestBundleflyTable3Config(t *testing.T) {
	// Table 3: BF with d=11 (MMS q=7), d'=4 (Paley 9): 882 routers,
	// radix 15, diameter 3.
	bf := MustNewBundlefly(7, 4)
	if bf.G.N() != 882 {
		t.Errorf("order = %d, want 882", bf.G.N())
	}
	if bf.Radix() != 15 {
		t.Errorf("radix = %d, want 15", bf.Radix())
	}
	if bf.G.MaxDegree() > 15 {
		t.Errorf("max degree = %d > 15", bf.G.MaxDegree())
	}
	if d := bf.G.Diameter(); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
	if bf.NumGroups() != 98 {
		t.Errorf("groups = %d, want 98", bf.NumGroups())
	}
}

func TestBundleflySmallDiameter3(t *testing.T) {
	for _, c := range []struct{ q, d int }{{4, 2}, {5, 2}, {5, 4}} {
		bf := MustNewBundlefly(c.q, c.d)
		if d := bf.G.Diameter(); d > 3 || d < 0 {
			t.Errorf("Bundlefly(q=%d,d'=%d) diameter = %d, want <= 3", c.q, c.d, d)
		}
		if want := BundleflyOrder(c.q, c.d); bf.G.N() != want {
			t.Errorf("Bundlefly(q=%d,d'=%d) order = %d, want %d", c.q, c.d, bf.G.N(), want)
		}
	}
	if BundleflyOrder(6, 4) != 0 || BundleflyOrder(7, 3) != 0 {
		t.Error("infeasible Bundlefly parameters should give order 0")
	}
}

func TestDragonflyStructure(t *testing.T) {
	// Table 3: a=12, h=6: 876 routers, radix 17, diameter 3.
	df := MustNewDragonfly(12, 6)
	if df.G.N() != 876 {
		t.Errorf("order = %d, want 876", df.G.N())
	}
	if df.Radix() != 17 {
		t.Errorf("radix = %d, want 17", df.Radix())
	}
	if !df.G.IsRegular() || df.G.MaxDegree() != 17 {
		t.Errorf("not 17-regular: max %d min %d", df.G.MaxDegree(), df.G.MinDegree())
	}
	if d := df.G.Diameter(); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
	// Exactly one global link between each group pair.
	globals := make(map[[2]int]int)
	for _, e := range df.G.Edges() {
		gu, gv := df.GroupOf(e[0]), df.GroupOf(e[1])
		if gu != gv {
			if gu > gv {
				gu, gv = gv, gu
			}
			globals[[2]int{gu, gv}]++
		}
	}
	g := df.NumGroups()
	if len(globals) != g*(g-1)/2 {
		t.Errorf("global pairs = %d, want %d", len(globals), g*(g-1)/2)
	}
	for pair, c := range globals {
		if c != 1 {
			t.Errorf("groups %v joined by %d links, want 1", pair, c)
		}
	}
}

func TestHyperXStructure(t *testing.T) {
	// Table 3: 9×9×8, 648 routers, radix 23, diameter 3.
	hx := MustNewHyperX(9, 9, 8)
	if hx.G.N() != 648 {
		t.Errorf("order = %d, want 648", hx.G.N())
	}
	if hx.Radix() != 23 {
		t.Errorf("radix = %d, want 23", hx.Radix())
	}
	if !hx.G.IsRegular() || hx.G.MaxDegree() != 23 {
		t.Error("HyperX should be 23-regular")
	}
	if d := hx.G.Diameter(); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
	// Coordinate round trip and adjacency = differ in exactly one coord.
	for v := 0; v < hx.G.N(); v += 37 {
		if hx.VertexAt(hx.Coords(v)) != v {
			t.Fatalf("coords round trip failed at %d", v)
		}
	}
	u, v := hx.VertexAt([]int{0, 0, 0}), hx.VertexAt([]int{3, 0, 0})
	if !hx.G.HasEdge(u, v) {
		t.Error("same-row vertices must be adjacent")
	}
	w := hx.VertexAt([]int{3, 4, 0})
	if hx.G.HasEdge(u, w) {
		t.Error("two-coordinate change must not be adjacent")
	}
}

func TestFatTreeStructure(t *testing.T) {
	// Table 3: p=18: 972 routers, 324 leaves with 18 endpoints each.
	ft := MustNewFatTree(18)
	if ft.G.N() != 972 {
		t.Errorf("order = %d, want 972", ft.G.N())
	}
	if len(ft.LeafRouters()) != 324 {
		t.Errorf("leaves = %d, want 324", len(ft.LeafRouters()))
	}
	// Leaf and mid routers have 18 switch links; top routers 18 too
	// (half radix: no up links). Leaf: 18 up; mid: 18 down + 18 up = 36;
	// top: 18 down.
	for v := 0; v < ft.G.N(); v++ {
		want := 36
		if ft.Level(v) == 0 || ft.Level(v) == 2 {
			want = 18
		}
		if ft.G.Degree(v) != want {
			t.Fatalf("level-%d router %d degree = %d, want %d", ft.Level(v), v, ft.G.Degree(v), want)
		}
	}
	// Any two leaves are within 4 switch hops (up to top, down).
	small := MustNewFatTree(4)
	dist := small.G.BFSDistances(0, nil)
	for _, leaf := range small.LeafRouters() {
		if dist[leaf] > 4 {
			t.Errorf("leaf distance %d > 4", dist[leaf])
		}
	}
}

func TestMegaflyStructure(t *testing.T) {
	// Table 3: ρ=8, a=16: 1040 routers, 65 groups, radix 16, 520 leaves.
	mf := MustNewMegafly(8, 16)
	if mf.G.N() != 1040 {
		t.Errorf("order = %d, want 1040", mf.G.N())
	}
	if mf.NumGroups() != 65 {
		t.Errorf("groups = %d, want 65", mf.NumGroups())
	}
	if len(mf.LeafRouters()) != 520 {
		t.Errorf("leaves = %d, want 520", len(mf.LeafRouters()))
	}
	for v := 0; v < mf.G.N(); v++ {
		if mf.IsLeaf(v) {
			if mf.G.Degree(v) != 8 {
				t.Fatalf("leaf %d degree = %d, want 8", v, mf.G.Degree(v))
			}
		} else if mf.G.Degree(v) != 16 {
			t.Fatalf("spine %d degree = %d, want 16", v, mf.G.Degree(v))
		}
	}
	// Leaf-to-leaf diameter <= 4 (leaf-spine-spine-leaf).
	leaves := mf.LeafRouters()
	dist := mf.G.BFSDistances(leaves[0], nil)
	for _, l := range leaves {
		if dist[l] > 4 {
			t.Errorf("leaf distance %d > 4", dist[l])
		}
	}
}

func TestKautzStructure(t *testing.T) {
	k := MustNewKautz(3, 2)
	if k.G.N() != KautzOrder(3, 2) || k.G.N() != 36 {
		t.Errorf("order = %d, want 36", k.G.N())
	}
	// Undirected degree at most 2d (in + out, some may coincide).
	if k.G.MaxDegree() > 6 {
		t.Errorf("max degree = %d > 6", k.G.MaxDegree())
	}
	// K(d, n) has directed diameter n+1; the undirected diameter can only
	// be smaller or equal.
	if d := k.G.Diameter(); d > 3 {
		t.Errorf("undirected diameter = %d, want <= 3", d)
	}
	if !k.G.IsConnected() {
		t.Error("Kautz disconnected")
	}
}

func TestJellyfishStructure(t *testing.T) {
	g, err := NewJellyfish(100, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 7 {
		t.Errorf("not 7-regular: [%d,%d]", g.MinDegree(), g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("Jellyfish disconnected")
	}
	// Determinism.
	g2, _ := NewJellyfish(100, 7, 42)
	if g.M() != g2.M() {
		t.Error("Jellyfish not deterministic for fixed seed")
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Jellyfish edge sets differ for same seed")
		}
	}
	if _, err := NewJellyfish(9, 7, 1); err == nil {
		t.Error("odd n·r should fail")
	}
}

func TestLPSSpectralfly(t *testing.T) {
	// Small instance first: X^{5,13}: 5 is not a QR mod 13 → PGL,
	// order 13·168 = 2184, 6-regular.
	l := MustNewLPS(5, 13)
	if l.PSL {
		t.Error("5 is not a QR mod 13; expected PGL")
	}
	if l.G.N() != 2184 || l.G.N() != LPSOrder(5, 13) {
		t.Errorf("order = %d, want 2184", l.G.N())
	}
	if !l.G.IsRegular() || l.G.MaxDegree() != 6 {
		t.Errorf("not 6-regular: [%d,%d]", l.G.MinDegree(), l.G.MaxDegree())
	}
	if !l.G.IsConnected() {
		t.Error("LPS disconnected")
	}
}

func TestLPSTable3Spectralfly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 3: X^{23,13}: 23 ≡ 10 ≡ 6² mod 13 is a QR → PSL(2,13),
	// order 1092, radix 24.
	l := MustNewLPS(23, 13)
	if !l.PSL {
		t.Error("23 is a QR mod 13; expected PSL")
	}
	if l.G.N() != 1092 {
		t.Errorf("order = %d, want 1092", l.G.N())
	}
	if l.Radix() != 24 || !l.G.IsRegular() || l.G.MaxDegree() != 24 {
		t.Errorf("radix/regularity wrong: max degree %d", l.G.MaxDegree())
	}
	if d := l.G.Diameter(); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
}

func TestTopologyConstructorErrors(t *testing.T) {
	if _, err := NewDragonfly(0, 1); err == nil {
		t.Error("Dragonfly(0,1) should fail")
	}
	if _, err := NewHyperX(); err == nil {
		t.Error("HyperX() should fail")
	}
	if _, err := NewHyperX(1); err == nil {
		t.Error("HyperX(1) should fail")
	}
	if _, err := NewFatTree(0); err == nil {
		t.Error("FatTree(0) should fail")
	}
	if _, err := NewMegafly(1, 3); err == nil {
		t.Error("Megafly odd group size should fail")
	}
	if _, err := NewKautz(1, 1); err == nil {
		t.Error("Kautz(1,1) should fail")
	}
	if _, err := NewLPS(4, 13); err == nil {
		t.Error("LPS with composite p should fail")
	}
	if _, err := NewLPS(5, 11); err == nil {
		t.Error("LPS with q ≡ 3 mod 4 should fail")
	}
}

// TestGirthOfKnownFamilies validates girth facts of the constructed
// families: the Hoffman–Singleton graph (MMS(5)) has girth 5; Paley
// graphs contain triangles; LPS Ramanujan graphs have large girth
// (>= 2·log_p(n) asymptotically — X^{5,13} has girth >= 6).
func TestGirthOfKnownFamilies(t *testing.T) {
	if g := MustNewMMS(5).G.Girth(); g != 5 {
		t.Errorf("Hoffman–Singleton girth = %d, want 5", g)
	}
	pal, _ := NewPaleyGraph(13)
	if g := pal.Girth(); g != 3 {
		t.Errorf("Paley(13) girth = %d, want 3", g)
	}
	if testing.Short() {
		return
	}
	lps := MustNewLPS(5, 13)
	if g := lps.G.Girth(); g < 6 {
		t.Errorf("X^{5,13} girth = %d, want >= 6", g)
	}
}
