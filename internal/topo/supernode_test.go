package topo

import (
	"testing"

	"polarstar/internal/graph"
)

func TestIQFeasible(t *testing.T) {
	want := map[int]bool{0: true, 1: false, 2: false, 3: true, 4: true, 5: false, 6: false, 7: true, 8: true, 11: true, 12: true, 15: true, 16: true}
	for d, w := range want {
		if IQFeasible(d) != w {
			t.Errorf("IQFeasible(%d) = %v, want %v", d, !w, w)
		}
	}
}

func TestIQOrderDegreeAndPropertyRStar(t *testing.T) {
	// Proposition 2 / Corollary 3: IQ_d' has 2d'+2 vertices, is
	// d'-regular, and satisfies Property R* — the order meets the upper
	// bound, so no larger R* supernode exists.
	for d := 0; d <= 43; d++ {
		if !IQFeasible(d) {
			continue
		}
		s := MustNewIQ(d)
		if s.N() != 2*d+2 {
			t.Errorf("IQ_%d order = %d, want %d", d, s.N(), 2*d+2)
		}
		if s.G.MaxDegree() != d || s.G.MinDegree() != d {
			t.Errorf("IQ_%d degrees = [%d,%d], want %d-regular", d, s.G.MinDegree(), s.G.MaxDegree(), d)
		}
		if !HasPropertyRStar(s.G, s.F) {
			t.Errorf("IQ_%d lacks Property R*", d)
		}
		// f must be a fixed-point-free involution for IQ.
		for v := 0; v < s.N(); v++ {
			if s.F[v] == v {
				t.Errorf("IQ_%d: f has fixed point %d", d, v)
			}
		}
	}
}

func TestIQInfeasibleDegrees(t *testing.T) {
	for _, d := range []int{1, 2, 5, 6, 9, 10, -1} {
		if _, err := NewIQ(d); err == nil {
			t.Errorf("NewIQ(%d) succeeded, want error", d)
		}
	}
}

func TestPaleyFeasible(t *testing.T) {
	// d' even and 2d'+1 a prime power ≡ 1 mod 4: d'=2 (q=5), 4 (9),
	// 6 (13), 8 (17), 12 (25), 14 (29). d'=10 gives q=21=3·7, infeasible.
	want := map[int]bool{2: true, 4: true, 6: true, 8: true, 10: false, 12: true, 14: true, 3: false, 5: false, 0: false}
	for d, w := range want {
		if PaleyFeasible(d) != w {
			t.Errorf("PaleyFeasible(%d) = %v, want %v", d, !w, w)
		}
	}
}

func TestPaleySupernodeR1(t *testing.T) {
	for _, d := range []int{2, 4, 6, 8, 12, 14, 20} {
		s := MustNewPaleySupernode(d)
		if s.N() != 2*d+1 {
			t.Errorf("Paley d'=%d order = %d, want %d", d, s.N(), 2*d+1)
		}
		if s.G.MaxDegree() != d || s.G.MinDegree() != d {
			t.Errorf("Paley d'=%d not %d-regular", d, d)
		}
		if !HasPropertyR1(s.G, s.F) {
			t.Errorf("Paley d'=%d lacks Property R1", d)
		}
		if d := s.G.Diameter(); d != 2 {
			t.Errorf("Paley diameter = %d, want 2", d)
		}
	}
}

func TestPaleySymmetricAdjacency(t *testing.T) {
	// q ≡ 1 mod 4 makes -1 a residue, so x-y and y-x agree; the graph
	// builder would otherwise silently dedupe an asymmetric relation.
	g, err := NewPaleyGraph(13)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 13*6/2 {
		t.Errorf("Paley(13) edges = %d, want 39", g.M())
	}
	if _, err := NewPaleyGraph(7); err == nil {
		t.Error("Paley(7) should be rejected (7 ≡ 3 mod 4)")
	}
	if _, err := NewPaleyGraph(15); err == nil {
		t.Error("Paley(15) should be rejected (not a prime power)")
	}
}

func TestBDFSupernode(t *testing.T) {
	for d := 1; d <= 24; d++ {
		s, err := NewBDF(d)
		if err != nil {
			t.Fatalf("NewBDF(%d): %v", d, err)
		}
		if s.N() != 2*d {
			t.Errorf("BDF d'=%d order = %d, want %d", d, s.N(), 2*d)
		}
		if s.G.MaxDegree() > d {
			t.Errorf("BDF d'=%d max degree = %d > %d", d, s.G.MaxDegree(), d)
		}
		if !HasPropertyRStar(s.G, s.F) {
			t.Errorf("BDF d'=%d lacks Property R*", d)
		}
	}
	if _, err := NewBDF(0); err == nil {
		t.Error("NewBDF(0) should fail")
	}
}

func TestCompleteSupernode(t *testing.T) {
	for _, d := range []int{0, 1, 3, 5, 9} {
		s, err := NewCompleteSupernode(d)
		if err != nil {
			t.Fatal(err)
		}
		if s.N() != d+1 {
			t.Errorf("K d'=%d order = %d", d, s.N())
		}
		if !HasPropertyRStar(s.G, s.F) {
			t.Errorf("complete d'=%d lacks R*", d)
		}
		if !HasPropertyR1(s.G, s.F) {
			t.Errorf("complete d'=%d lacks R1", d)
		}
	}
}

func TestSupernodeOrderFormulas(t *testing.T) {
	// Table 2 order column.
	cases := []struct {
		kind SupernodeKind
		d    int
		want int
	}{
		{KindIQ, 3, 8}, {KindIQ, 4, 10}, {KindIQ, 7, 16}, {KindIQ, 5, 0},
		{KindPaley, 6, 13}, {KindPaley, 10, 0}, {KindPaley, 2, 5},
		{KindBDF, 5, 10}, {KindComplete, 4, 5},
	}
	for _, c := range cases {
		if got := SupernodeOrder(c.kind, c.d); got != c.want {
			t.Errorf("SupernodeOrder(%v, %d) = %d, want %d", c.kind, c.d, got, c.want)
		}
	}
}

func TestVerifySupernodeAllKinds(t *testing.T) {
	cases := []struct {
		kind SupernodeKind
		d    int
	}{
		{KindIQ, 3}, {KindIQ, 8}, {KindPaley, 6}, {KindBDF, 7}, {KindComplete, 5},
	}
	for _, c := range cases {
		s, err := NewSupernode(c.kind, c.d)
		if err != nil {
			t.Fatalf("NewSupernode(%v,%d): %v", c.kind, c.d, err)
		}
		if err := VerifySupernode(c.kind, s, c.d); err != nil {
			t.Error(err)
		}
	}
}

// TestRStarOrderBound verifies Proposition 2 negatively: adding even one
// extra vertex beyond 2d'+2 must break Property R* for any involution.
// We check the specific case d'=3 by brute force over all involutions of
// a 10-vertex graph built from IQ_3 plus two isolated extras.
func TestRStarOrderBound(t *testing.T) {
	s := MustNewIQ(3)
	// Extend to 10 vertices with two isolated vertices; no involution can
	// rescue Property R* because vertex 8's non-edges to 6 other vertices
	// exceed the 2 + deg + deg budget. A targeted check: reuse f with
	// 8<->9 swapped in.
	f := append(append([]int{}, s.F...), 9, 8)
	b := graph.NewBuilder("IQ3+2", s.N()+2)
	for _, e := range s.G.Edges() {
		b.AddEdge(e[0], e[1])
	}
	if HasPropertyRStar(b.Build(), f) {
		t.Error("Property R* held beyond the 2d'+2 bound")
	}
}

// TestRStarBoundExhaustiveSmallDegrees verifies the Proposition 2 order
// bound negatively and exhaustively for tiny degrees: there is NO graph
// with maximum degree d' on 2d'+3 vertices satisfying Property R* with
// any involution, for d' = 0 and d' = 1.
func TestRStarBoundExhaustiveSmallDegrees(t *testing.T) {
	for _, dPrime := range []int{0, 1} {
		n := 2*dPrime + 3
		// Enumerate all graphs on n vertices with max degree <= d'.
		pairs := [][2]int{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		// Enumerate all involutions of [0, n).
		var involutions [][]int
		var buildInv func(f []int, v int)
		buildInv = func(f []int, v int) {
			if v == n {
				involutions = append(involutions, append([]int{}, f...))
				return
			}
			if f[v] != -1 {
				buildInv(f, v+1)
				return
			}
			f[v] = v // fixed point
			buildInv(f, v+1)
			for w := v + 1; w < n; w++ {
				if f[w] == -1 {
					f[v], f[w] = w, v
					buildInv(f, v+1)
					f[w] = -1
				}
			}
			f[v] = -1
		}
		init := make([]int, n)
		for i := range init {
			init[i] = -1
		}
		buildInv(init, 0)

		for mask := 0; mask < 1<<len(pairs); mask++ {
			b := graph.NewBuilder("cand", n)
			ok := true
			deg := make([]int, n)
			for i, p := range pairs {
				if mask&(1<<i) != 0 {
					deg[p[0]]++
					deg[p[1]]++
					if deg[p[0]] > dPrime || deg[p[1]] > dPrime {
						ok = false
						break
					}
					b.AddEdge(p[0], p[1])
				}
			}
			if !ok {
				continue
			}
			g := b.Build()
			for _, f := range involutions {
				if HasPropertyRStar(g, f) {
					t.Fatalf("d'=%d: found R* graph on %d vertices (mask %d, f %v) — bound violated",
						dPrime, n, mask, f)
				}
			}
		}
	}
}
