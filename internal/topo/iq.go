package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// Inductive-Quad graphs (§6.2.1 of the paper) are the new supernode family
// introduced by PolarStar. IQ_d' has 2d'+2 vertices — meeting the Property
// R* upper bound of Proposition 2 — and exists for d' ≡ 0 or 3 (mod 4).
//
// Vertex layout invariant maintained by the construction: vertices are
// split into a set A and its image f(A); f pairs vertex v with v^1 inside
// each consecutive (a_i, b_i) pair. Concretely the involution is stored
// explicitly and returned alongside the graph.

// IQFeasible reports whether IQ_d' exists, i.e. d' ≡ 0 or 3 (mod 4).
func IQFeasible(degree int) bool {
	return degree >= 0 && (degree%4 == 0 || degree%4 == 3)
}

// NewIQ constructs the Inductive-Quad supernode of the given degree.
func NewIQ(degree int) (*Supernode, error) {
	if !IQFeasible(degree) {
		return nil, fmt.Errorf("topo: IQ degree %d infeasible (need 0 or 3 mod 4)", degree)
	}

	// edge list kept explicitly during induction, then frozen into a Graph.
	type edge [2]int
	var (
		edges []edge
		f     []int
		sideA []int // the A half of the current partition, f(A) is implied
	)

	// Base case IQ_0: two vertices, no edges, f swaps them.
	f = []int{1, 0}
	sideA = []int{0}
	deg := 0

	// addIQ3Block appends a fresh IQ_3 on vertices base..base+7 with
	// f(base+i) = base+4+i, using the explicit 12-edge layout below
	// (verified to satisfy Property R* by the package tests):
	//   within: (a0,a1)(a1,a2)(a2,a3)(b0,b2)(b1,b3)(b0,b3)
	//   cross:  (a0,b1)(a0,b2)(a3,b0)(a2,b1)(a1,b3)(a3,b2)
	addIQ3Block := func(base int) (a, b [4]int) {
		for i := 0; i < 4; i++ {
			a[i] = base + i
			b[i] = base + 4 + i
		}
		within := [][2]int{{a[0], a[1]}, {a[1], a[2]}, {a[2], a[3]}, {b[0], b[2]}, {b[1], b[3]}, {b[0], b[3]}}
		cross := [][2]int{{a[0], b[1]}, {a[0], b[2]}, {a[3], b[0]}, {a[2], b[1]}, {a[1], b[3]}, {a[3], b[2]}}
		for _, e := range append(within, cross...) {
			edges = append(edges, e)
		}
		return a, b
	}

	if degree%4 == 3 {
		// Restart from IQ_3 instead of IQ_0.
		edges = edges[:0]
		f = make([]int, 8)
		a, b := addIQ3Block(0)
		for i := 0; i < 4; i++ {
			f[a[i]] = b[i]
			f[b[i]] = a[i]
		}
		sideA = []int{a[0], a[1], a[2], a[3]}
		deg = 3
	}

	// Inductive step (§6.2.1): append an IQ_3 block; join
	// {x', f(x'), z', f(z')} = {a0,b0,a2,b2} to every vertex of A and
	// {y', f(y'), w', f(w')} = {a1,b1,a3,b3} to every vertex of f(A).
	for deg < degree {
		base := len(f)
		f = append(f, make([]int, 8)...)
		a, b := addIQ3Block(base)
		for i := 0; i < 4; i++ {
			f[a[i]] = b[i]
			f[b[i]] = a[i]
		}
		joinA := []int{a[0], b[0], a[2], b[2]}
		joinFA := []int{a[1], b[1], a[3], b[3]}
		for _, u := range sideA {
			for _, v := range joinA {
				edges = append(edges, edge{u, v})
			}
			for _, v := range joinFA {
				edges = append(edges, edge{f[u], v})
			}
		}
		sideA = append(sideA, a[0], a[1], a[2], a[3])
		deg += 4
	}

	gb := graph.NewBuilder(fmt.Sprintf("IQ%d", degree), len(f))
	for _, e := range edges {
		gb.AddEdge(e[0], e[1])
	}
	s := &Supernode{G: gb.Build(), F: f}
	s.validateBijection()
	return s, nil
}

// MustNewIQ is NewIQ but panics on error.
func MustNewIQ(degree int) *Supernode {
	s, err := NewIQ(degree)
	if err != nil {
		panic(err)
	}
	return s
}
