package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// Supernode bundles a supernode candidate graph G' with the bijection f
// used by the star product (§5 of the paper). For Property R* families f
// is an involution; for Property R1 families f² is an automorphism.
type Supernode struct {
	G *graph.Graph
	F []int // the bijection f: vertex -> vertex
}

// N returns the supernode order.
func (s *Supernode) N() int { return s.G.N() }

// Degree returns the maximum degree of the supernode.
func (s *Supernode) Degree() int { return s.G.MaxDegree() }

// validateBijection panics unless F is a permutation of [0, n).
func (s *Supernode) validateBijection() {
	seen := make([]bool, s.G.N())
	if len(s.F) != s.G.N() {
		panic("topo: bijection length mismatch")
	}
	for _, y := range s.F {
		if y < 0 || y >= s.G.N() || seen[y] {
			panic("topo: F is not a bijection")
		}
		seen[y] = true
	}
}

// SupernodeKind selects the supernode family of a PolarStar instance.
type SupernodeKind int

const (
	// KindIQ selects the Inductive-Quad supernode (order 2d'+2, Property R*).
	KindIQ SupernodeKind = iota
	// KindPaley selects the Paley supernode (order 2d'+1, Property R1).
	KindPaley
	// KindBDF selects the Bermond–Delorme–Farhi-style supernode
	// (order 2d', Property R*).
	KindBDF
	// KindComplete selects the complete-graph supernode (order d'+1).
	KindComplete
)

func (k SupernodeKind) String() string {
	switch k {
	case KindIQ:
		return "IQ"
	case KindPaley:
		return "Paley"
	case KindBDF:
		return "BDF"
	case KindComplete:
		return "Complete"
	}
	return fmt.Sprintf("SupernodeKind(%d)", int(k))
}

// NewSupernode constructs the supernode of the requested kind and degree.
func NewSupernode(kind SupernodeKind, degree int) (*Supernode, error) {
	switch kind {
	case KindIQ:
		return NewIQ(degree)
	case KindPaley:
		return NewPaleySupernode(degree)
	case KindBDF:
		return NewBDF(degree)
	case KindComplete:
		return NewCompleteSupernode(degree)
	}
	return nil, fmt.Errorf("topo: unknown supernode kind %v", kind)
}

// SupernodeOrder returns the order of the kind's supernode at the given
// degree without building it, or 0 when the degree is infeasible.
// These are the Table 2 order formulas.
func SupernodeOrder(kind SupernodeKind, degree int) int {
	switch kind {
	case KindIQ:
		if IQFeasible(degree) {
			return 2*degree + 2
		}
	case KindPaley:
		if PaleyFeasible(degree) {
			return 2*degree + 1
		}
	case KindBDF:
		if degree >= 1 {
			return 2 * degree
		}
	case KindComplete:
		if degree >= 0 {
			return degree + 1
		}
	}
	return 0
}
