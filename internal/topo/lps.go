package topo

import (
	"fmt"
	"sort"

	"polarstar/internal/gf"
	"polarstar/internal/graph"
)

// LPS constructs the Lubotzky–Phillips–Sarnak Ramanujan graphs X^{p,q}
// behind Spectralfly (Young et al., IPDPS 2022). For distinct odd primes
// p and q, X^{p,q} is the Cayley graph of PSL(2,q) (when p is a quadratic
// residue mod q) or PGL(2,q) (otherwise) with p+1 generators derived from
// the integer solutions of a² + b² + c² + d² = p.
//
// The Table 3 Spectralfly instance is X^{23,13}: 24-regular on
// |PSL(2,13)| = 1092 vertices.
type LPS struct {
	P, Q int
	// PSL reports whether the graph lives on PSL(2,q) (p a QR mod q).
	PSL bool
	G   *graph.Graph
}

// NewLPS builds X^{p,q}. p and q must be distinct odd primes, and q must
// admit i with i² = −1 (q ≡ 1 mod 4).
func NewLPS(p, q int) (*LPS, error) {
	if !gf.IsPrime(p) || !gf.IsPrime(q) || p == q || p == 2 || q == 2 {
		return nil, fmt.Errorf("topo: LPS needs distinct odd primes, got p=%d q=%d", p, q)
	}
	if q%4 != 1 {
		return nil, fmt.Errorf("topo: LPS needs q ≡ 1 mod 4 (square root of -1), got q=%d", q)
	}
	f := gf.MustNew(q)
	// i with i² = −1 mod q.
	iRoot := -1
	for x := 1; x < q; x++ {
		if f.Mul(x, x) == f.Neg(1) {
			iRoot = x
			break
		}
	}
	if iRoot < 0 {
		return nil, fmt.Errorf("topo: no sqrt(-1) mod %d", q)
	}

	// Enumerate the p+1 normalized integer solutions of a²+b²+c²+d² = p
	// and map each to the projective matrix [a+bi, c+di; −c+di, a−bi]
	// over GF(q). Normalization (Lubotzky–Phillips–Sarnak / Chiu):
	// for p ≡ 1 (mod 4) take a odd positive with b, c, d even; for
	// p ≡ 3 (mod 4) every solution has one even and three odd entries —
	// take a even, identifying the ± sign pair of each solution.
	mod := func(x int) int { return ((x % q) + q) % q }
	type mat [4]int
	normalize := func(m mat) (mat, bool) {
		for i := 0; i < 4; i++ {
			if m[i] != 0 {
				inv := f.Inv(m[i])
				var out mat
				for j := 0; j < 4; j++ {
					out[j] = f.Mul(m[j], inv)
				}
				return out, true
			}
		}
		return mat{}, false
	}
	genSet := make(map[mat]bool)
	bound := 1
	for bound*bound < p {
		bound++
	}
	admissible := func(a, b, c, d int) bool {
		if p%4 == 1 {
			return a > 0 && a%2 == 1 && b%2 == 0 && c%2 == 0 && d%2 == 0
		}
		// p ≡ 3 mod 4: a even, b,c,d odd; pick one representative of
		// each ± pair by requiring the first non-zero entry positive.
		if a%2 != 0 || b%2 == 0 || c%2 == 0 || d%2 == 0 {
			return false
		}
		for _, x := range []int{a, b, c, d} {
			if x != 0 {
				return x > 0
			}
		}
		return false
	}
	for a := -bound; a <= bound; a++ {
		for b := -bound; b <= bound; b++ {
			for c := -bound; c <= bound; c++ {
				for d := -bound; d <= bound; d++ {
					if a*a+b*b+c*c+d*d != p || !admissible(a, b, c, d) {
						continue
					}
					m := mat{
						f.Add(mod(a), f.Mul(mod(b), iRoot)),
						f.Add(mod(c), f.Mul(mod(d), iRoot)),
						f.Add(mod(-c), f.Mul(mod(d), iRoot)),
						f.Add(mod(a), f.Neg(f.Mul(mod(b), iRoot))),
					}
					if nm, ok := normalize(m); ok {
						genSet[nm] = true
					}
				}
			}
		}
	}
	if len(genSet) != p+1 {
		return nil, fmt.Errorf("topo: LPS(%d,%d): %d projective generators, want %d", p, q, len(genSet), p+1)
	}
	gens := make([]mat, 0, p+1)
	for m := range genSet {
		gens = append(gens, m)
	}
	// Map iteration order is random per run; the generator order drives
	// the BFS closure and therefore the vertex numbering. Sort so every
	// NewLPS call labels the graph identically.
	sort.Slice(gens, func(i, j int) bool {
		for k := 0; k < 4; k++ {
			if gens[i][k] != gens[j][k] {
				return gens[i][k] < gens[j][k]
			}
		}
		return false
	})

	mul := func(x, y mat) mat {
		return mat{
			f.Add(f.Mul(x[0], y[0]), f.Mul(x[1], y[2])),
			f.Add(f.Mul(x[0], y[1]), f.Mul(x[1], y[3])),
			f.Add(f.Mul(x[2], y[0]), f.Mul(x[3], y[2])),
			f.Add(f.Mul(x[2], y[1]), f.Mul(x[3], y[3])),
		}
	}

	// BFS closure from the identity under the generators.
	ident := mat{1, 0, 0, 1}
	index := map[mat]int{ident: 0}
	verts := []mat{ident}
	type edge [2]int
	var edges []edge
	for head := 0; head < len(verts); head++ {
		v := verts[head]
		for _, g := range gens {
			w, ok := normalize(mul(v, g))
			if !ok {
				return nil, fmt.Errorf("topo: LPS(%d,%d): singular product", p, q)
			}
			j, seen := index[w]
			if !seen {
				j = len(verts)
				index[w] = j
				verts = append(verts, w)
			}
			edges = append(edges, edge{head, j})
		}
	}
	b := graph.NewBuilder(fmt.Sprintf("LPS(%d,%d)", p, q), len(verts))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	psl := f.IsResidue(p % q)
	return &LPS{P: p, Q: q, PSL: psl, G: b.Build()}, nil
}

// MustNewLPS is NewLPS but panics on error.
func MustNewLPS(p, q int) *LPS {
	l, err := NewLPS(p, q)
	if err != nil {
		panic(err)
	}
	return l
}

// LPSOrder returns the order of X^{p,q}: q(q²−1)/2 on PSL (p a QR mod q)
// or q(q²−1) on PGL. Returns 0 for infeasible parameters.
func LPSOrder(p, q int) int {
	if !gf.IsPrime(p) || !gf.IsPrime(q) || p == q || p == 2 || q == 2 || q%4 != 1 {
		return 0
	}
	f, err := gf.New(q)
	if err != nil {
		return 0 // q beyond table limit: outside evaluated range
	}
	if f.IsResidue(p % q) {
		return q * (q*q - 1) / 2
	}
	return q * (q*q - 1)
}

// Radix returns p+1.
func (l *LPS) Radix() int { return l.P + 1 }

// Graph returns the Cayley graph.
func (l *LPS) Graph() *graph.Graph { return l.G }
