package topo

// LayoutSummary quantifies the §8 hierarchical modular layout of a
// PolarStar instance: supernodes as the smallest building blocks, links
// between adjacent supernodes bundled into multi-core fibers (MCFs), and
// the resulting cable-count reduction.
type LayoutSummary struct {
	// Supernodes is the number of building blocks (q²+q+1).
	Supernodes int
	// RoutersPerSupernode is the block size |V(G')| = 2(d*−q) for IQ.
	RoutersPerSupernode int
	// LinksPerBundle is the number of parallel links between each pair
	// of adjacent supernodes (one per supernode vertex).
	LinksPerBundle int
	// Bundles is the number of inter-supernode MCFs: the non-loop edges
	// of ER_q, i.e. q(q+1)²/2.
	Bundles int
	// InterSupernodeLinks is Bundles × LinksPerBundle.
	InterSupernodeLinks int
	// CableReduction is the global cable-count reduction factor achieved
	// by bundling: LinksPerBundle ≈ 2d*/3 at the optimal degree split.
	CableReduction float64
	// SupernodeClusters is the next hierarchy level: the q+1 clusters of
	// the ER modular layout, pairs of which are joined by ≈q bundles.
	SupernodeClusters int
}

// Layout computes the §8 layout summary.
func (ps *PolarStar) Layout() LayoutSummary {
	bundles := ps.Structure.G.M()
	per := ps.Super.N()
	return LayoutSummary{
		Supernodes:          ps.Structure.N(),
		RoutersPerSupernode: per,
		LinksPerBundle:      per,
		Bundles:             bundles,
		InterSupernodeLinks: bundles * per,
		CableReduction:      float64(per),
		SupernodeClusters:   ps.q + 1,
	}
}
