package topo

import (
	"polarstar/internal/gf"
	"polarstar/internal/graph"
)

// Network is the common view of a topology used by traffic generation and
// experiment harnesses: the underlying switch graph plus a grouping of
// routers into supernodes/groups (hierarchical topologies) or singleton
// groups (flat topologies).
type Network interface {
	// Graph returns the switch-level graph.
	Graph() *graph.Graph
	// NumGroups returns the number of router groups.
	NumGroups() int
	// GroupOf returns the group id of router v.
	GroupOf(v int) int
}

// Flat wraps a plain graph as a Network with singleton groups.
type Flat struct{ G *graph.Graph }

// Graph implements Network.
func (f Flat) Graph() *graph.Graph { return f.G }

// NumGroups implements Network.
func (f Flat) NumGroups() int { return f.G.N() }

// GroupOf implements Network.
func (f Flat) GroupOf(v int) int { return v }

func primePower(q int) (int, int, bool) { return gf.PrimePower(q) }
