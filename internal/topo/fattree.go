package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// FatTree is the 3-level folded-Clos fat-tree used by BookSim (§9.1):
// three layers of p² routers. Level-0 (leaf) routers host p endpoints
// each (p³ endpoints total); level-2 routers use only half the radix.
//
// Vertex numbering: level·p² + index, with level-0 index j decomposed as
// (group, pos) = (j/p, j%p), level-1 index as (group, k) and level-2
// index as (k, m).
type FatTree struct {
	P int // half-radix: endpoints per leaf, up-links per router
	G *graph.Graph
}

// NewFatTree builds the 3-level fat-tree with half-radix p.
func NewFatTree(p int) (*FatTree, error) {
	if p < 1 {
		return nil, fmt.Errorf("topo: FatTree needs p >= 1, got %d", p)
	}
	n := 3 * p * p
	b := graph.NewBuilder(fmt.Sprintf("FatTree(p=%d)", p), n)
	l0 := func(g, i int) int { return g*p + i }
	l1 := func(g, k int) int { return p*p + g*p + k }
	l2 := func(k, m int) int { return 2*p*p + k*p + m }
	for g := 0; g < p; g++ {
		for i := 0; i < p; i++ {
			for k := 0; k < p; k++ {
				b.AddEdge(l0(g, i), l1(g, k))
			}
		}
		for k := 0; k < p; k++ {
			for m := 0; m < p; m++ {
				b.AddEdge(l1(g, k), l2(k, m))
			}
		}
	}
	return &FatTree{P: p, G: b.Build()}, nil
}

// MustNewFatTree is NewFatTree but panics on error.
func MustNewFatTree(p int) *FatTree {
	ft, err := NewFatTree(p)
	if err != nil {
		panic(err)
	}
	return ft
}

// Graph returns the switch graph.
func (ft *FatTree) Graph() *graph.Graph { return ft.G }

// Radix returns the full router radix 2p.
func (ft *FatTree) Radix() int { return 2 * ft.P }

// Level returns the layer (0 leaf, 1 middle, 2 top) of router v.
func (ft *FatTree) Level(v int) int { return v / (ft.P * ft.P) }

// LeafRouters returns the level-0 routers, which host the endpoints.
func (ft *FatTree) LeafRouters() []int {
	out := make([]int, ft.P*ft.P)
	for i := range out {
		out[i] = i
	}
	return out
}

// NumGroups returns the number of level-0 groups (pods), p.
func (ft *FatTree) NumGroups() int { return ft.P }

// GroupOf returns the pod of a leaf router, or its position group for
// upper layers.
func (ft *FatTree) GroupOf(v int) int { return (v % (ft.P * ft.P)) / ft.P }

// Megafly (Flajslik et al. / Dragonfly+) is the indirect two-level
// baseline: g = ρ·(a/2) + 1 groups; each group is a complete bipartite
// graph between a/2 leaf routers (hosting endpoints) and a/2 spine
// routers carrying ρ global links each; one global link per group pair.
type Megafly struct {
	Rho int // global links per spine router
	A   int // routers per group (half leaves, half spines)
	G   *graph.Graph
}

// NewMegafly builds the maximum-size Megafly for the given spine global
// arity ρ and group size a (a even).
func NewMegafly(rho, a int) (*Megafly, error) {
	if rho < 1 || a < 2 || a%2 != 0 {
		return nil, fmt.Errorf("topo: Megafly needs rho >= 1 and even a >= 2, got rho=%d a=%d", rho, a)
	}
	half := a / 2
	g := rho*half + 1
	n := g * a
	b := graph.NewBuilder(fmt.Sprintf("Megafly(rho=%d,a=%d)", rho, a), n)
	leaf := func(grp, i int) int { return grp*a + i }
	spine := func(grp, j int) int { return grp*a + half + j }
	for grp := 0; grp < g; grp++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				b.AddEdge(leaf(grp, i), spine(grp, j))
			}
		}
		// Global links with the same relative arrangement as Dragonfly.
		for s := 0; s < rho*half; s++ {
			tgt := (grp + s + 1) % g
			tgtSlot := rho*half - 1 - s
			if grp < tgt {
				b.AddEdge(spine(grp, s/rho), spine(tgt, tgtSlot/rho))
			}
		}
	}
	return &Megafly{Rho: rho, A: a, G: b.Build()}, nil
}

// MustNewMegafly is NewMegafly but panics on error.
func MustNewMegafly(rho, a int) *Megafly {
	mf, err := NewMegafly(rho, a)
	if err != nil {
		panic(err)
	}
	return mf
}

// Graph returns the switch graph.
func (mf *Megafly) Graph() *graph.Graph { return mf.G }

// NumGroups returns ρ·a/2 + 1.
func (mf *Megafly) NumGroups() int { return mf.Rho*mf.A/2 + 1 }

// GroupOf returns the group of router v.
func (mf *Megafly) GroupOf(v int) int { return v / mf.A }

// IsLeaf reports whether router v is a leaf (endpoint-hosting) router.
func (mf *Megafly) IsLeaf(v int) bool { return v%mf.A < mf.A/2 }

// LeafRouters returns the endpoint-hosting routers.
func (mf *Megafly) LeafRouters() []int {
	var out []int
	for v := 0; v < mf.G.N(); v++ {
		if mf.IsLeaf(v) {
			out = append(out, v)
		}
	}
	return out
}
