package topo

import "testing"

var erOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19}

func TestERBasicInvariants(t *testing.T) {
	for _, q := range erOrders {
		er := MustNewER(q)
		if er.N() != q*q+q+1 {
			t.Errorf("ER_%d order = %d, want %d", q, er.N(), q*q+q+1)
		}
		if er.G.NumLoops() != q+1 {
			t.Errorf("ER_%d quadric vertices = %d, want %d", q, er.G.NumLoops(), q+1)
		}
		// Degrees: q+1 for non-quadric, q for quadric vertices.
		for v := 0; v < er.N(); v++ {
			want := q + 1
			if er.IsQuadric(v) {
				want = q
			}
			if er.G.Degree(v) != want {
				t.Fatalf("ER_%d vertex %d degree = %d, want %d", q, v, er.G.Degree(v), want)
			}
		}
	}
}

func TestERDiameter2(t *testing.T) {
	for _, q := range erOrders {
		er := MustNewER(q)
		if d := er.G.Diameter(); d != 2 {
			t.Errorf("ER_%d diameter = %d, want 2", q, d)
		}
	}
}

func TestERPropertyR(t *testing.T) {
	// Theorem 1: ER_q has Property R for all prime powers q (self-loops
	// admitted as walk steps).
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 13} {
		er := MustNewER(q)
		if !HasPropertyR(er.G, 2) {
			t.Errorf("ER_%d lacks Property R", q)
		}
	}
}

func TestERCommonNeighborOracle(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 9} {
		er := MustNewER(q)
		n := er.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				w := er.CommonNeighbor(u, v)
				// w must be orthogonal to both u and v, i.e. the walk
				// u–w–v exists (using loops where w==u or w==v).
				okU := er.G.HasEdge(u, w) || (u == w && er.IsQuadric(u))
				okV := er.G.HasEdge(w, v) || (w == v && er.IsQuadric(v))
				if u == w && w == v {
					okU = er.IsQuadric(u)
					okV = okU
				}
				if u == v && w != u {
					// u–w–u: just need the edge.
					okU = er.G.HasEdge(u, w)
					okV = okU
				}
				if !okU || !okV {
					t.Fatalf("ER_%d CommonNeighbor(%d,%d)=%d does not close a 2-walk", q, u, v, w)
				}
			}
		}
	}
}

func TestERVertexOfNormalization(t *testing.T) {
	er := MustNewER(5)
	f := er.Field
	for v := 0; v < er.N(); v++ {
		vec := er.Vector(v)
		// Any non-zero scalar multiple maps back to v.
		for s := 1; s < 5; s++ {
			scaled := [3]int{f.Mul(vec[0], s), f.Mul(vec[1], s), f.Mul(vec[2], s)}
			got, ok := er.VertexOf(scaled)
			if !ok || got != v {
				t.Fatalf("VertexOf(%v) = (%d,%v), want %d", scaled, got, ok, v)
			}
		}
	}
	if _, ok := er.VertexOf([3]int{0, 0, 0}); ok {
		t.Error("VertexOf(zero) should fail")
	}
}

func TestNewERRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12} {
		if _, err := NewER(q); err == nil {
			t.Errorf("NewER(%d) succeeded, want error", q)
		}
	}
}
