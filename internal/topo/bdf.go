package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// NewBDF constructs a Bermond–Delorme–Farhi-style Property R* supernode of
// order 2·degree, available for every degree ≥ 1 (Table 2 row "BDF").
//
// The construction is a two-layer circulant on index set Z_m, m = degree:
// vertices a_0..a_{m-1} and b_0..b_{m-1} with the involution f(a_i) = b_i.
// Difference classes {±k} of Z_m are split between the two layers so that
// every within-layer pair {i,j} has an edge on at least one layer, and
// cross edges a_i ~ b_{i+k} are placed for half of the non-zero
// differences so that every cross pair {a_i, b_j} (i≠j) has either the
// edge itself or its f-image. Both conditions together give Property R*
// with maximum degree ≤ m; the package tests verify R* exhaustively.
func NewBDF(degree int) (*Supernode, error) {
	if degree < 1 {
		return nil, fmt.Errorf("topo: BDF degree must be >= 1, got %d", degree)
	}
	m := degree
	n := 2 * m
	a := func(i int) int { return i % m }
	b := func(i int) int { return m + i%m }

	gb := graph.NewBuilder(fmt.Sprintf("BDF%d", degree), n)

	// Within-layer edges: difference class k (1 <= k <= m/2) goes to
	// layer A when k is odd, layer B when k is even. Every pair {i,j}
	// with difference class k is then covered on one layer, which —
	// through cases (c)/(d) of Property R* — covers the same pair on the
	// other layer too.
	for k := 1; 2*k <= m; k++ {
		for i := 0; i < m; i++ {
			j := (i + k) % m
			if k%2 == 1 {
				gb.AddEdge(a(i), a(j))
			} else {
				gb.AddEdge(b(i), b(j))
			}
		}
	}

	// Cross edges: for each difference k in 1..ceil((m-1)/2), add
	// a_i ~ b_{i+k}. The cross pair {a_i, b_j} with j-i = k is covered
	// directly; the pair with j-i = m-k is covered by its f-image
	// (f(a_i), f(b_j)) = (b_i, a_j), since a_j ~ b_{j+k'} with j+k' = i
	// for k' = k.
	for k := 1; 2*k <= m; k++ {
		for i := 0; i < m; i++ {
			gb.AddEdge(a(i), b((i+k)%m))
		}
	}

	f := make([]int, n)
	for i := 0; i < m; i++ {
		f[a(i)] = b(i)
		f[b(i)] = a(i)
	}
	s := &Supernode{G: gb.Build(), F: f}
	if d := s.G.MaxDegree(); d > degree {
		return nil, fmt.Errorf("topo: BDF%d construction overflowed degree: %d", degree, d)
	}
	s.validateBijection()
	return s, nil
}

// NewCompleteSupernode returns the complete graph K_{degree+1} with the
// identity bijection. It satisfies both Property R* and Property R1
// trivially (Table 2 row "Complete").
func NewCompleteSupernode(degree int) (*Supernode, error) {
	if degree < 0 {
		return nil, fmt.Errorf("topo: complete supernode degree must be >= 0, got %d", degree)
	}
	n := degree + 1
	gb := graph.NewBuilder(fmt.Sprintf("K%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gb.AddEdge(i, j)
		}
	}
	f := make([]int, n)
	for i := range f {
		f[i] = i
	}
	return &Supernode{G: gb.Build(), F: f}, nil
}
