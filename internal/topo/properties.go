package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// The paper's factor-graph properties (§5.1), implemented as exhaustive
// checkers. They are used by the test suite to validate every construction
// and by the design-space explorer to reject invalid factor combinations.

// HasPropertyR reports whether g (of diameter D) joins every vertex pair
// by a walk of length exactly D, where self-loop annotations may be used
// as walk steps (§5.1.1). It returns the diameter it verified against.
func HasPropertyR(g *graph.Graph, D int) bool {
	_, _, ok := PropertyRWitness(g, D)
	return ok
}

// PropertyRWitness is HasPropertyR with a counterexample: on failure it
// returns the first (src, dst) pair joined by no walk of length exactly
// D. On success src and dst are -1.
func PropertyRWitness(g *graph.Graph, D int) (src, dst int, ok bool) {
	// reach[v] after k rounds: set of vertices reachable from src by a
	// walk of length exactly k (loops allowed).
	n := g.N()
	cur := make([]bool, n)
	next := make([]bool, n)
	for src := 0; src < n; src++ {
		for i := range cur {
			cur[i] = false
		}
		cur[src] = true
		for step := 0; step < D; step++ {
			for i := range next {
				next[i] = false
			}
			for v := 0; v < n; v++ {
				if !cur[v] {
					continue
				}
				for _, w := range g.Neighbors(v) {
					next[w] = true
				}
				if g.HasLoop(v) {
					next[v] = true
				}
			}
			cur, next = next, cur
		}
		for v := 0; v < n; v++ {
			if !cur[v] {
				return src, v, false
			}
		}
	}
	return -1, -1, true
}

// HasPropertyRStar reports whether (g, f) satisfies Property R* (§5.1.2):
// f is an involution, and every vertex pair (x, y) satisfies x == y,
// y == f(x), (x,y) ∈ E, or (f(x), f(y)) ∈ E.
func HasPropertyRStar(g *graph.Graph, f []int) bool {
	_, _, ok := PropertyRStarWitness(g, f)
	return ok
}

// PropertyRStarWitness is HasPropertyRStar with a counterexample: on
// failure it returns the first violating vertex pair — (x, f(x)) when f
// is not an involution at x, else the (x, y) pair covered by none of the
// Property R* clauses. On success both are -1.
func PropertyRStarWitness(g *graph.Graph, f []int) (x, y int, ok bool) {
	n := g.N()
	if len(f) != n {
		return -1, -1, false
	}
	for x := 0; x < n; x++ {
		if f[x] < 0 || f[x] >= n || f[f[x]] != x {
			return x, f[x], false // not an involution
		}
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y || y == f[x] || g.HasEdge(x, y) || g.HasEdge(f[x], f[y]) {
				continue
			}
			return x, y, false
		}
	}
	return -1, -1, true
}

// HasPropertyR1 reports whether (g, f) satisfies Property R1 (§5.1.2,
// Bermond et al.): f is a bijection, f² is an automorphism of g, and
// E ∪ f(E) is the complete edge set on V(g).
func HasPropertyR1(g *graph.Graph, f []int) bool {
	_, _, ok := PropertyR1Witness(g, f)
	return ok
}

// PropertyR1Witness is HasPropertyR1 with a counterexample: on failure
// it returns the first violating vertex pair — the edge f² fails to
// preserve, or the pair E ∪ f(E) leaves uncovered. On success both are
// -1.
func PropertyR1Witness(g *graph.Graph, f []int) (x, y int, ok bool) {
	n := g.N()
	if len(f) != n {
		return -1, -1, false
	}
	seen := make([]bool, n)
	for x, y := range f {
		if y < 0 || y >= n || seen[y] {
			return x, y, false // not a bijection
		}
		seen[y] = true
	}
	// f² an automorphism: (x,y) ∈ E iff (f²(x), f²(y)) ∈ E.
	for x := 0; x < n; x++ {
		for _, w := range g.Neighbors(x) {
			if !g.HasEdge(f[f[x]], f[f[int(w)]]) {
				return x, int(w), false
			}
		}
	}
	// E ∪ f(E) complete.
	covered := make(map[[2]int]bool)
	mark := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		covered[[2]int{u, v}] = true
	}
	for _, e := range g.Edges() {
		mark(e[0], e[1])
		mark(f[e[0]], f[e[1]])
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if !covered[[2]int{x, y}] {
				return x, y, false
			}
		}
	}
	return -1, -1, true
}

// VerifySupernode checks the structural claims of Table 2 for a supernode:
// the order formula and the relevant property.
func VerifySupernode(kind SupernodeKind, s *Supernode, degree int) error {
	if want := SupernodeOrder(kind, degree); s.N() != want {
		return fmt.Errorf("%v degree %d: order %d, want %d", kind, degree, s.N(), want)
	}
	switch kind {
	case KindIQ, KindBDF:
		if !HasPropertyRStar(s.G, s.F) {
			return fmt.Errorf("%v degree %d: Property R* violated", kind, degree)
		}
	case KindPaley:
		if !HasPropertyR1(s.G, s.F) {
			return fmt.Errorf("%v degree %d: Property R1 violated", kind, degree)
		}
	case KindComplete:
		if !HasPropertyRStar(s.G, s.F) || !HasPropertyR1(s.G, s.F) {
			return fmt.Errorf("%v degree %d: properties violated", kind, degree)
		}
	}
	return nil
}
