package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// Bundlefly (Lei et al., ICS 2020) is the state-of-the-art diameter-3
// star-product baseline: the P1-star product of a McKay–Miller–Širáň
// structure graph H_q with a Paley supernode. Table 3 uses
// Bundlefly(q=7, d'=4): 98·9 = 882 routers of radix 15.
type Bundlefly struct {
	Structure *MMS
	Super     *Supernode
	G         *graph.Graph

	q, dPrime int
}

// NewBundlefly builds Bundlefly with MMS parameter q and Paley supernode
// degree dPrime.
func NewBundlefly(q, dPrime int) (*Bundlefly, error) {
	mms, err := NewMMS(q)
	if err != nil {
		return nil, err
	}
	super, err := NewPaleySupernode(dPrime)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("Bundlefly(q=%d,d'=%d)", q, dPrime)
	return &Bundlefly{
		Structure: mms,
		Super:     super,
		G:         StarProduct(name, mms.G, super, super.F),
		q:         q,
		dPrime:    dPrime,
	}, nil
}

// MustNewBundlefly is NewBundlefly but panics on error.
func MustNewBundlefly(q, dPrime int) *Bundlefly {
	bf, err := NewBundlefly(q, dPrime)
	if err != nil {
		panic(err)
	}
	return bf
}

// Radix returns the network radix: MMS degree + d'.
func (bf *Bundlefly) Radix() int { return MMSDegree(bf.q) + bf.dPrime }

// Graph returns the product graph.
func (bf *Bundlefly) Graph() *graph.Graph { return bf.G }

// NumGroups returns the number of supernodes (2q²).
func (bf *Bundlefly) NumGroups() int { return bf.Structure.N() }

// GroupOf returns the supernode containing v.
func (bf *Bundlefly) GroupOf(v int) int { return v / bf.Super.N() }

// BundleflyOrder returns 2q²·(2d'+1) when the parameters are feasible,
// else 0.
func BundleflyOrder(q, dPrime int) int {
	if MMSOrder(q) == 0 || !PaleyFeasible(dPrime) {
		return 0
	}
	return MMSOrder(q) * (2*dPrime + 1)
}
