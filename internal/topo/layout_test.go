package topo

import "testing"

func TestLayoutSummary(t *testing.T) {
	// PolarStar-IQ(11, 3): ER_11 has q(q+1)²/2 = 792 non-loop edges;
	// each bundle carries |V(IQ_3)| = 8 links (2(d*−q) with d*=15, q=11).
	ps := MustNewPolarStar(11, 3, KindIQ)
	l := ps.Layout()
	if l.Supernodes != 133 || l.RoutersPerSupernode != 8 {
		t.Errorf("blocks: %+v", l)
	}
	if l.Bundles != 11*12*12/2 {
		t.Errorf("bundles = %d, want %d", l.Bundles, 11*12*12/2)
	}
	if l.LinksPerBundle != 2*(15-11) {
		t.Errorf("links per bundle = %d, want 8", l.LinksPerBundle)
	}
	if l.SupernodeClusters != 12 {
		t.Errorf("clusters = %d, want q+1 = 12", l.SupernodeClusters)
	}
	// Cross-check against the actual product graph: the number of
	// inter-supernode links must match.
	inter := 0
	for _, e := range ps.G.Edges() {
		if ps.GroupOf(e[0]) != ps.GroupOf(e[1]) {
			inter++
		}
	}
	if inter != l.InterSupernodeLinks {
		t.Errorf("inter-supernode links = %d, want %d", inter, l.InterSupernodeLinks)
	}
	// §8: bundling reduces global cables by ≈ 2d*/3 at the optimal
	// split; for this config the factor is exactly LinksPerBundle = 8.
	if l.CableReduction != 8 {
		t.Errorf("cable reduction = %f", l.CableReduction)
	}
}
