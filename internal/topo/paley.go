package topo

import (
	"fmt"

	"polarstar/internal/gf"
	"polarstar/internal/graph"
)

// Paley graphs (Paley 1933) are the Property R1 supernode family of the
// paper (Table 2): order 2d'+1, degree d', existing when d' is even and
// 2d'+1 is a prime power congruent to 1 mod 4.
//
// Vertices are the elements of GF(q), q = 2d'+1; x ~ y iff x−y is a
// non-zero quadratic residue. The R1 bijection is multiplication by a
// fixed non-residue n: f(E') is exactly the non-residue-difference edge
// set, so E' ∪ f(E') is complete, and f² (multiplication by the residue
// n²) is an automorphism.

// PaleyFeasible reports whether a Paley supernode of the given degree
// exists: degree even with 2·degree+1 a prime power ≡ 1 (mod 4).
func PaleyFeasible(degree int) bool {
	if degree <= 0 || degree%2 != 0 {
		return false
	}
	q := 2*degree + 1
	return gf.IsPrimePower(q) && q%4 == 1
}

// NewPaleyGraph constructs the Paley graph on q vertices for a prime
// power q ≡ 1 (mod 4).
func NewPaleyGraph(q int) (*graph.Graph, error) {
	if !gf.IsPrimePower(q) || q%4 != 1 {
		return nil, fmt.Errorf("topo: Paley(%d) needs a prime power ≡ 1 mod 4", q)
	}
	f, err := gf.New(q)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(fmt.Sprintf("Paley%d", q), q)
	for x := 0; x < q; x++ {
		for y := x + 1; y < q; y++ {
			if f.IsResidue(f.Sub(x, y)) {
				b.AddEdge(x, y)
			}
		}
	}
	return b.Build(), nil
}

// NewPaleySupernode constructs the Paley supernode of the given degree
// together with its R1 bijection.
func NewPaleySupernode(degree int) (*Supernode, error) {
	if !PaleyFeasible(degree) {
		return nil, fmt.Errorf("topo: Paley supernode degree %d infeasible (need even degree with 2d'+1 a prime power ≡ 1 mod 4)", degree)
	}
	q := 2*degree + 1
	g, err := NewPaleyGraph(q)
	if err != nil {
		return nil, err
	}
	fld := gf.MustNew(q)
	n := fld.NonResidues()[0]
	f := make([]int, q)
	for x := 0; x < q; x++ {
		f[x] = fld.Mul(n, x)
	}
	s := &Supernode{G: g, F: f}
	s.validateBijection()
	return s, nil
}

// MustNewPaleySupernode is NewPaleySupernode but panics on error.
func MustNewPaleySupernode(degree int) *Supernode {
	s, err := NewPaleySupernode(degree)
	if err != nil {
		panic(err)
	}
	return s
}
