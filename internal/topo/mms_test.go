package topo

import (
	"testing"

	"polarstar/internal/gf"
)

func TestMMSDegreeOrderFormulas(t *testing.T) {
	cases := []struct{ q, deg, order int }{
		{5, 7, 50},  // Hoffman–Singleton graph
		{7, 11, 98}, // Bundlefly Table 3 structure graph
		{9, 13, 162},
		{4, 6, 32},
		{8, 12, 128},
		{13, 19, 338},
		{6, 0, 0}, // not a prime power
		{2, 0, 0}, // q ≡ 2 mod 4: no MMS graph
	}
	for _, c := range cases {
		if got := MMSDegree(c.q); got != c.deg {
			t.Errorf("MMSDegree(%d) = %d, want %d", c.q, got, c.deg)
		}
		if got := MMSOrder(c.q); got != c.order {
			t.Errorf("MMSOrder(%d) = %d, want %d", c.q, got, c.order)
		}
	}
}

func TestMMSConstruction(t *testing.T) {
	// All three residue classes (δ = 1, 0, −1) and both characteristics.
	for _, q := range []int{4, 5, 7, 8, 9, 11, 13, 16} {
		m := MustNewMMS(q)
		if m.G.N() != 2*q*q {
			t.Errorf("MMS(%d) order = %d, want %d", q, m.G.N(), 2*q*q)
		}
		if !m.G.IsRegular() || m.G.MaxDegree() != MMSDegree(q) {
			t.Errorf("MMS(%d) not %d-regular (max %d, min %d)", q, MMSDegree(q), m.G.MaxDegree(), m.G.MinDegree())
		}
		if d := m.G.Diameter(); d != 2 {
			t.Errorf("MMS(%d) diameter = %d, want 2", q, d)
		}
	}
}

func TestMMSHoffmanSingleton(t *testing.T) {
	// MMS(5) is the Hoffman–Singleton graph: 50 vertices, 7-regular,
	// diameter 2, girth 5 (no triangles, no 4-cycles) — it meets the
	// degree-2 Moore bound exactly.
	m := MustNewMMS(5)
	g := m.G
	if g.N() != 50 || g.M() != 175 {
		t.Fatalf("n=%d m=%d, want 50, 175", g.N(), g.M())
	}
	// No triangles: neighbors of any vertex form an independent set.
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if g.HasEdge(int(nb[i]), int(nb[j])) {
					t.Fatalf("triangle at %d-%d-%d", v, nb[i], nb[j])
				}
			}
		}
	}
	// No 4-cycles: any two vertices share at most one common neighbor.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			common := 0
			for _, w := range g.Neighbors(u) {
				if g.HasEdge(int(w), v) {
					common++
				}
			}
			if common > 1 {
				t.Fatalf("4-cycle through %d,%d (%d common neighbors)", u, v, common)
			}
		}
	}
}

func TestMMSGeneratorSearchLargeQ(t *testing.T) {
	// The structured interval candidate must cover every residue class,
	// including the δ = 0 and δ = −1 parameters that have no
	// QR-partition construction.
	for _, q := range []int{19, 23, 27, 32, 43, 59, 64, 67} {
		X, Xp, err := mmsGeneratorSets(q)
		if err != nil {
			t.Errorf("q=%d: %v", q, err)
			continue
		}
		f := gf.MustNew(q)
		if !mmsSetsGiveDiameter2(q, f, X, Xp) {
			t.Errorf("q=%d: algebraic diameter-2 check failed", q)
		}
	}
}

func TestMMSAlgebraicCheckMatchesGraph(t *testing.T) {
	// The algebraic characterization must agree with ground-truth BFS on
	// full graphs, for both accepting and rejecting instances.
	for _, q := range []int{4, 5, 7, 8, 9, 11} {
		f := gf.MustNew(q)
		X, Xp, err := mmsGeneratorSets(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mmsSetsGiveDiameter2(q, f, X, Xp), mmsDiameter2(q, f, X, Xp); got != want {
			t.Errorf("q=%d: algebraic=%v graph=%v on searched sets", q, got, want)
		}
	}
	// A deliberately bad candidate: a tiny X cannot satisfy the column
	// condition.
	f := gf.MustNew(7)
	bad := []int{1, 6}
	if mmsSetsGiveDiameter2(7, f, bad, []int{2, 5, 3, 4}) {
		t.Error("algebraic check accepted an undersized X")
	}
	if mmsDiameter2(7, f, bad, []int{2, 5, 3, 4}) {
		t.Error("graph check accepted an undersized X")
	}
}

func TestMMSInfeasible(t *testing.T) {
	for _, q := range []int{2, 6, 10, 15} {
		if _, err := NewMMS(q); err == nil {
			t.Errorf("NewMMS(%d) succeeded, want error", q)
		}
	}
}
