package topo

import (
	"testing"

	"polarstar/internal/graph"
)

// TestAllPairsStatsGoldenAllConstructors pins the tentpole acceptance
// criterion: on a graph from every topology constructor in this package,
// the bit-parallel AllPairsStats returns bit-identical
// {Diameter, AvgPath, Pairs, Connected} to the scalar reference
// implementation.
func TestAllPairsStatsGoldenAllConstructors(t *testing.T) {
	jf, err := NewJellyfish(120, 7, 3)
	if err != nil {
		t.Fatalf("jellyfish: %v", err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ER", MustNewER(7).G},
		{"IQ", mustSN(t, KindIQ, 8).G},
		{"Paley", mustSN(t, KindPaley, 6).G},
		{"BDF", mustSN(t, KindBDF, 6).G},
		{"Complete", mustSN(t, KindComplete, 5).G},
		{"PolarStar-IQ", MustNewPolarStar(5, 4, KindIQ).G},
		{"PolarStar-Paley", MustNewPolarStar(5, 4, KindPaley).G},
		{"Bundlefly", mustBF(t, 5, 2).G},
		{"MMS", mustMMS(t, 5).G},
		{"Dragonfly", mustDF(t, 6, 3).G},
		{"HyperX", mustHX(t, 4, 4, 4).G},
		{"FatTree", mustFT(t, 6).G},
		{"Megafly", mustMF(t, 3, 6).G},
		{"Kautz", mustKautz(t, 4, 2).G},
		{"Jellyfish", jf},
		{"LPS", mustLPS(t, 13, 5).G},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bit := c.g.AllPairsStats()
			scalar := c.g.AllPairsStatsScalar()
			if bit != scalar {
				t.Errorf("%s (%v): bit-parallel %+v != scalar %+v", c.name, c.g, bit, scalar)
			}
		})
	}
}

func mustSN(t *testing.T, kind SupernodeKind, d int) *Supernode {
	t.Helper()
	s, err := NewSupernode(kind, d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustBF(t *testing.T, q, dPrime int) *Bundlefly {
	t.Helper()
	bf, err := NewBundlefly(q, dPrime)
	if err != nil {
		t.Fatal(err)
	}
	return bf
}

func mustMMS(t *testing.T, q int) *MMS {
	t.Helper()
	m, err := NewMMS(q)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustDF(t *testing.T, a, h int) *Dragonfly {
	t.Helper()
	df, err := NewDragonfly(a, h)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func mustHX(t *testing.T, dims ...int) *HyperX {
	t.Helper()
	hx, err := NewHyperX(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return hx
}

func mustFT(t *testing.T, p int) *FatTree {
	t.Helper()
	ft, err := NewFatTree(p)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func mustMF(t *testing.T, rho, a int) *Megafly {
	t.Helper()
	mf, err := NewMegafly(rho, a)
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

func mustKautz(t *testing.T, d, k int) *Kautz {
	t.Helper()
	kz, err := NewKautz(d, k)
	if err != nil {
		t.Fatal(err)
	}
	return kz
}

func mustLPS(t *testing.T, p, q int) *LPS {
	t.Helper()
	l, err := NewLPS(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestBitBFSPropertyJellyfishER is the ISSUE's named property test: on
// random Jellyfish instances and on ER_q polarity graphs — plus degraded
// (edge-deleted, often disconnected) versions of both — per-source
// bit-parallel aggregates match scalar BFSDistancesScratch exactly.
func TestBitBFSPropertyJellyfishER(t *testing.T) {
	graphs := []*graph.Graph{}
	for seed := int64(1); seed <= 3; seed++ {
		jf, err := NewJellyfish(80+10*int(seed), 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, jf)
		// Heavily degraded Jellyfish: drop every third edge — usually
		// leaves stragglers behind, exercising the disconnected path.
		graphs = append(graphs, jf.FilterEdges(func(c, u, v int) bool { return (u+v+int(seed))%3 != 0 }))
	}
	for _, q := range []int{5, 7, 9} {
		er := MustNewER(q)
		graphs = append(graphs, er.G)
		graphs = append(graphs, er.G.FilterEdges(func(c, u, v int) bool { return (u*v)%4 != 1 }))
	}
	var (
		bit  graph.BitBFSScratch
		bfs  graph.BFSScratch
		dist []int32
	)
	for _, g := range graphs {
		var srcs [64]int32
		for base := 0; base < g.N(); base += 64 {
			lanes := g.N() - base
			if lanes > 64 {
				lanes = 64
			}
			for i := 0; i < lanes; i++ {
				srcs[i] = int32(base + i)
			}
			st, _ := g.BitBFSBatch(srcs[:lanes], &bit, nil, nil)
			for l := 0; l < lanes; l++ {
				src := base + l
				dist = g.BFSDistancesScratch(src, dist, &bfs)
				var ecc int32
				var sum, reached int64
				for v, d := range dist {
					if v == src || d == graph.Unreachable {
						continue
					}
					if d > ecc {
						ecc = d
					}
					sum += int64(d)
					reached++
				}
				if st.Ecc[l] != ecc || st.Sum[l] != sum || st.Reached[l] != reached {
					t.Fatalf("%v src %d: kernel (%d,%d,%d) != scalar (%d,%d,%d)",
						g, src, st.Ecc[l], st.Sum[l], st.Reached[l], ecc, sum, reached)
				}
			}
		}
	}
}
