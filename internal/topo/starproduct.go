package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// StarProduct computes the bijective star product G * G' (Definition 1,
// §4.2) using the single bijection f for every arc of the structure graph.
//
// Vertex (x, x') of the product is numbered x*|V(G')| + x'. Edges:
//
//   - intra-supernode: (x, x') ~ (x, y') for every edge (x', y') of G';
//   - inter-supernode: (x, x') ~ (y, f(x')) for every arc (x, y) of an
//     (arbitrary, here: low-to-high) orientation of E(G);
//   - loop-induced: a self-loop on x in G adds (x, x') ~ (x, f(x'))
//     inside supernode x (the red edges of Fig. 5c); pairs with
//     f(x') == x' are dropped.
//
// When f is an involution the orientation does not affect the edge set;
// for Property R1 bijections any orientation is valid (Theorem 5).
func StarProduct(name string, g *graph.Graph, super *Supernode, f []int) *graph.Graph {
	np := super.G.N()
	id := func(x, xp int) int { return x*np + xp }
	b := graph.NewBuilder(name, g.N()*np)

	for x := 0; x < g.N(); x++ {
		// Intra-supernode copy of G'.
		for _, e := range super.G.Edges() {
			b.AddEdge(id(x, e[0]), id(x, e[1]))
		}
		// Loop-induced edges.
		if g.HasLoop(x) {
			for xp := 0; xp < np; xp++ {
				if f[xp] != xp {
					b.AddEdge(id(x, xp), id(x, f[xp]))
				}
			}
		}
		// Inter-supernode bijective links, oriented low-to-high.
		for _, wy := range g.Neighbors(x) {
			y := int(wy)
			if x < y {
				for xp := 0; xp < np; xp++ {
					b.AddEdge(id(x, xp), id(y, f[xp]))
				}
			}
		}
	}
	return b.Build()
}

// PolarStar is the paper's headline topology: the star product of the
// Erdős–Rényi polarity graph ER_q with an Inductive-Quad or Paley
// supernode (§6). Its diameter is at most 3 (Theorems 4 and 5).
type PolarStar struct {
	Structure *ER
	Super     *Supernode
	Kind      SupernodeKind
	G         *graph.Graph

	q, dPrime int
}

// NewPolarStar builds PolarStar with structure graph ER_q and a supernode
// of the given kind and degree dPrime.
func NewPolarStar(q, dPrime int, kind SupernodeKind) (*PolarStar, error) {
	er, err := NewER(q)
	if err != nil {
		return nil, err
	}
	super, err := NewSupernode(kind, dPrime)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("PolarStar-%v(q=%d,d'=%d)", kind, q, dPrime)
	ps := &PolarStar{
		Structure: er,
		Super:     super,
		Kind:      kind,
		G:         StarProduct(name, er.G, super, super.F),
		q:         q,
		dPrime:    dPrime,
	}
	return ps, nil
}

// MustNewPolarStar is NewPolarStar but panics on error.
func MustNewPolarStar(q, dPrime int, kind SupernodeKind) *PolarStar {
	ps, err := NewPolarStar(q, dPrime, kind)
	if err != nil {
		panic(err)
	}
	return ps
}

// Q returns the structure-graph field order.
func (ps *PolarStar) Q() int { return ps.q }

// DPrime returns the supernode degree.
func (ps *PolarStar) DPrime() int { return ps.dPrime }

// Radix returns the network radix d* = (q+1) + d'.
func (ps *PolarStar) Radix() int { return ps.q + 1 + ps.dPrime }

// Graph returns the product graph.
func (ps *PolarStar) Graph() *graph.Graph { return ps.G }

// NumGroups returns the number of supernodes, q²+q+1.
func (ps *PolarStar) NumGroups() int { return ps.Structure.N() }

// GroupOf returns the supernode (structure vertex) containing v.
func (ps *PolarStar) GroupOf(v int) int { return v / ps.Super.N() }

// LocalOf returns the supernode-internal index of v.
func (ps *PolarStar) LocalOf(v int) int { return v % ps.Super.N() }

// VertexAt returns the product vertex for structure vertex x and
// supernode vertex xp.
func (ps *PolarStar) VertexAt(x, xp int) int { return x*ps.Super.N() + xp }

// PolarStarOrder returns the order of PolarStar(q, d', kind) without
// building it: (q²+q+1) × supernode order. Returns 0 when infeasible.
func PolarStarOrder(q, dPrime int, kind SupernodeKind) int {
	if !isERFeasible(q) {
		return 0
	}
	so := SupernodeOrder(kind, dPrime)
	if so == 0 {
		return 0
	}
	return (q*q + q + 1) * so
}

func isERFeasible(q int) bool {
	return q >= 2 && func() bool { _, _, ok := primePower(q); return ok }()
}
