package topo

import (
	"fmt"

	"polarstar/internal/graph"
)

// Dragonfly (Kim et al., ISCA 2008) in its canonical maximum
// configuration: g = a·h + 1 fully-connected groups of a routers; every
// router has h global ports and exactly one global link joins each group
// pair. Diameter 3 (local–global–local).
type Dragonfly struct {
	A int // routers per group
	H int // global links per router
	G *graph.Graph
}

// NewDragonfly builds the maximum-size Dragonfly for group size a and h
// global ports per router.
func NewDragonfly(a, h int) (*Dragonfly, error) {
	if a < 1 || h < 1 {
		return nil, fmt.Errorf("topo: Dragonfly needs a,h >= 1, got a=%d h=%d", a, h)
	}
	g := a*h + 1
	n := g * a
	b := graph.NewBuilder(fmt.Sprintf("Dragonfly(a=%d,h=%d)", a, h), n)
	id := func(grp, r int) int { return grp*a + r }
	// Local links: complete graph within each group.
	for grp := 0; grp < g; grp++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				b.AddEdge(id(grp, i), id(grp, j))
			}
		}
	}
	// Global links, relative arrangement: group grp's global slot s
	// (s in [0, a·h)) connects to group (grp + s + 1) mod g, which sees
	// the link on its slot g-2-s. Slot s belongs to router s/h.
	for grp := 0; grp < g; grp++ {
		for s := 0; s < a*h; s++ {
			tgt := (grp + s + 1) % g
			tgtSlot := a*h - 1 - s
			if grp < tgt {
				b.AddEdge(id(grp, s/h), id(tgt, tgtSlot/h))
			}
		}
	}
	return &Dragonfly{A: a, H: h, G: b.Build()}, nil
}

// MustNewDragonfly is NewDragonfly but panics on error.
func MustNewDragonfly(a, h int) *Dragonfly {
	df, err := NewDragonfly(a, h)
	if err != nil {
		panic(err)
	}
	return df
}

// Radix returns the network radix (a-1) + h.
func (df *Dragonfly) Radix() int { return df.A - 1 + df.H }

// Graph returns the switch graph.
func (df *Dragonfly) Graph() *graph.Graph { return df.G }

// NumGroups returns a·h + 1.
func (df *Dragonfly) NumGroups() int { return df.A*df.H + 1 }

// GroupOf returns the group of router v.
func (df *Dragonfly) GroupOf(v int) int { return v / df.A }

// DragonflyOrder returns a·(a·h+1).
func DragonflyOrder(a, h int) int {
	if a < 1 || h < 1 {
		return 0
	}
	return a * (a*h + 1)
}

// HyperX is the all-to-all generalized hypercube (Ahn et al., SC 2009):
// vertices are coordinate tuples; two vertices are adjacent iff they
// differ in exactly one coordinate. The paper's baseline is the 3-D
// 9×9×8 instance.
type HyperX struct {
	Dims []int
	G    *graph.Graph
}

// NewHyperX builds the HyperX with the given per-dimension sizes.
func NewHyperX(dims ...int) (*HyperX, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topo: HyperX needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf("topo: HyperX dimension %d < 2", d)
		}
		n *= d
	}
	hx := &HyperX{Dims: append([]int{}, dims...)}
	b := graph.NewBuilder(fmt.Sprintf("HyperX%v", dims), n)
	for v := 0; v < n; v++ {
		coords := hx.coordsOf(v)
		stride := 1
		for dim, size := range dims {
			for c := coords[dim] + 1; c < size; c++ {
				b.AddEdge(v, v+(c-coords[dim])*stride)
			}
			stride *= size
		}
	}
	hx.G = b.Build()
	return hx, nil
}

// MustNewHyperX is NewHyperX but panics on error.
func MustNewHyperX(dims ...int) *HyperX {
	hx, err := NewHyperX(dims...)
	if err != nil {
		panic(err)
	}
	return hx
}

func (hx *HyperX) coordsOf(v int) []int {
	coords := make([]int, len(hx.Dims))
	for i, d := range hx.Dims {
		coords[i] = v % d
		v /= d
	}
	return coords
}

// Coords returns the coordinate tuple of vertex v.
func (hx *HyperX) Coords(v int) []int { return hx.coordsOf(v) }

// VertexAt returns the vertex with the given coordinates.
func (hx *HyperX) VertexAt(coords []int) int {
	v, stride := 0, 1
	for i, d := range hx.Dims {
		v += coords[i] * stride
		stride *= d
	}
	return v
}

// Radix returns Σ (S_i − 1).
func (hx *HyperX) Radix() int {
	r := 0
	for _, d := range hx.Dims {
		r += d - 1
	}
	return r
}

// Graph returns the switch graph.
func (hx *HyperX) Graph() *graph.Graph { return hx.G }

// NumGroups groups HyperX routers by their last coordinate plane.
func (hx *HyperX) NumGroups() int { return hx.Dims[len(hx.Dims)-1] }

// GroupOf returns the last-coordinate plane of v.
func (hx *HyperX) GroupOf(v int) int {
	n := hx.G.N() / hx.Dims[len(hx.Dims)-1]
	return v / n
}
