// Package topo constructs every network topology used in the PolarStar
// paper: the PolarStar family itself (star products of Erdős–Rényi
// polarity graphs with Inductive-Quad or Paley supernodes) and all
// baselines it is evaluated against (Bundlefly, SlimFly/MMS, Dragonfly,
// HyperX, Fat-tree, Megafly, Kautz, Jellyfish, LPS Ramanujan graphs).
//
// All constructions are deterministic: the same parameters always produce
// the same vertex numbering and edge set, which keeps simulations and
// tests reproducible.
package topo

import (
	"fmt"

	"polarstar/internal/gf"
	"polarstar/internal/graph"
)

// ER is the Erdős–Rényi (Brown) polarity graph ER_q over GF(q): the
// structure graph of PolarStar (§6.1 of the paper).
//
// Vertices are the q²+q+1 points of the projective plane PG(2,q) in
// left-normalized form; two distinct points are adjacent iff their dot
// product vanishes. Self-orthogonal points (the q+1 quadric vertices)
// carry a self-loop annotation: the loop is not a usable link, but
// Property R walks and the star product both exploit it.
type ER struct {
	Q     int
	Field *gf.Field
	G     *graph.Graph

	vecs [][3]int // vertex id -> left-normalized coordinates
	cn   []int32  // dense CommonNeighbor(u,v) table, n×n row-major
}

// NewER constructs ER_q. q must be a prime power.
func NewER(q int) (*ER, error) {
	f, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("topo: ER_%d: %w", q, err)
	}
	n := q*q + q + 1
	e := &ER{
		Q:     q,
		Field: f,
		vecs:  make([][3]int, 0, n),
	}
	// Left-normalized projective points: (1,a,b), (0,1,a), (0,0,1).
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			e.addVec([3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		e.addVec([3]int{0, 1, a})
	}
	e.addVec([3]int{0, 0, 1})

	b := graph.NewBuilder(fmt.Sprintf("ER%d", q), n)
	for u := 0; u < n; u++ {
		for v := u; v < n; v++ {
			if e.dot(u, v) == 0 {
				b.AddEdge(u, v) // u == v records the quadric self-loop
			}
		}
	}
	e.G = b.Build()
	// PolarStar minpath routing calls CommonNeighbor per routed packet;
	// the cross-product arithmetic (three GF multiplies per coordinate
	// plus a normalization) dominated routing profiles, so precompute the
	// whole n×n answer table once for routable sizes. ~q⁴ int32s: 1.2 MB
	// for the paper-scale ER₂₃, built in milliseconds. Design-space scans
	// construct much larger quotients only to count vertices; those keep
	// the analytic path and pay nothing.
	if n <= 1024 {
		e.cn = make([]int32, n*n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				e.cn[u*n+v] = int32(e.commonNeighborSlow(u, v))
			}
		}
	}
	return e, nil
}

// MustNewER is NewER but panics on error.
func MustNewER(q int) *ER {
	e, err := NewER(q)
	if err != nil {
		panic(err)
	}
	return e
}

func (e *ER) addVec(v [3]int) {
	e.vecs = append(e.vecs, v)
}

func (e *ER) dot(u, v int) int {
	a, b := e.vecs[u], e.vecs[v]
	return e.Field.Dot(a[:], b[:])
}

// N returns the order q²+q+1.
func (e *ER) N() int { return len(e.vecs) }

// Degree returns the nominal degree q+1 (quadric vertices have network
// degree q plus the loop).
func (e *ER) Degree() int { return e.Q + 1 }

// Vector returns the projective coordinates of vertex v.
func (e *ER) Vector(v int) [3]int { return e.vecs[v] }

// VertexOf returns the vertex id of a (not necessarily normalized)
// non-zero coordinate vector. Ids follow the construction order of
// NewER, so the left-normalized form indexes in closed form — the §9.2
// analytic router resolves one cross product per 2-hop query, and this
// lookup is on that hot path.
func (e *ER) VertexOf(vec [3]int) (int, bool) {
	norm, ok := e.normalize(vec)
	if !ok {
		return 0, false
	}
	switch {
	case norm[0] == 1: // (1,a,b) -> a·q+b
		return norm[1]*e.Q + norm[2], true
	case norm[1] == 1: // (0,1,a) -> q²+a
		return e.Q*e.Q + norm[2], true
	default: // (0,0,1)
		return e.Q*e.Q + e.Q, true
	}
}

// normalize scales vec so its leftmost non-zero entry is 1.
func (e *ER) normalize(vec [3]int) ([3]int, bool) {
	f := e.Field
	for i := 0; i < 3; i++ {
		if vec[i] != 0 {
			inv := f.Inv(vec[i])
			var out [3]int
			for j := 0; j < 3; j++ {
				out[j] = f.Mul(vec[j], inv)
			}
			return out, true
		}
	}
	return [3]int{}, false
}

// IsQuadric reports whether vertex v is self-orthogonal.
func (e *ER) IsQuadric(v int) bool { return e.G.HasLoop(v) }

// CommonNeighbor returns a vertex adjacent (or loop-adjacent) to both u
// and v: the cross product u × v, which is orthogonal to both (§6.1.2).
// For u == v it returns a neighbor of u when u is not quadric, or u
// itself when it is (the self-loop closes the walk).
//
// The returned vertex w satisfies dot(u,w) == 0 and dot(w,v) == 0, so the
// walk u–w–v exists in ER_q when self-loops are admitted as walk steps.
// This is the analytic 2-hop oracle used by PolarStar minpath routing.
func (e *ER) CommonNeighbor(u, v int) int {
	if e.cn != nil {
		return int(e.cn[u*len(e.vecs)+v])
	}
	return e.commonNeighborSlow(u, v)
}

// commonNeighborSlow is the analytic computation behind CommonNeighbor,
// run once per pair at construction to fill the dense table.
func (e *ER) commonNeighborSlow(u, v int) int {
	f := e.Field
	a, b := e.vecs[u], e.vecs[v]
	if u == v {
		if e.IsQuadric(u) {
			return u
		}
		// Any neighbor works: u–w–u is a valid length-2 walk.
		return int(e.G.Neighbors(u)[0])
	}
	cross := [3]int{
		f.Sub(f.Mul(a[1], b[2]), f.Mul(a[2], b[1])),
		f.Sub(f.Mul(a[2], b[0]), f.Mul(a[0], b[2])),
		f.Sub(f.Mul(a[0], b[1]), f.Mul(a[1], b[0])),
	}
	if cross == ([3]int{}) {
		// u and v are projectively equal; cannot happen for distinct
		// normalized vertices.
		panic("topo: zero cross product for distinct ER vertices")
	}
	w, ok := e.VertexOf(cross)
	if !ok {
		panic("topo: cross product outside vertex set")
	}
	return w
}
