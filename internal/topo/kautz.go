package topo

import (
	"fmt"
	"math/rand"

	"polarstar/internal/graph"
)

// Kautz graphs K(d, n) (§1.2): directed graphs on (d+1)·d^n vertices —
// the words s_0…s_n over an alphabet of d+1 symbols with s_i ≠ s_{i+1} —
// with arcs from s_0…s_n to s_1…s_n·t. The paper treats each link as
// bidirectional, doubling the degree; NewKautz returns that underlying
// undirected graph.
type Kautz struct {
	D int // alphabet size - 1 (directed out-degree)
	L int // word length - 1 (directed diameter)
	G *graph.Graph
}

// NewKautz builds the undirected Kautz graph K(d, n).
func NewKautz(d, n int) (*Kautz, error) {
	if d < 2 || n < 1 {
		return nil, fmt.Errorf("topo: Kautz needs d >= 2, n >= 1, got d=%d n=%d", d, n)
	}
	order := (d + 1) * pow(d, n)
	if order > 1<<22 {
		return nil, fmt.Errorf("topo: Kautz(%d,%d) too large (%d vertices)", d, n, order)
	}
	// Enumerate words: first symbol in [0, d+1), each next symbol one of d
	// choices (skip-encode: symbol = choice if choice < prev else choice+1).
	id := func(word []int) int {
		v := word[0]
		for i := 1; i < len(word); i++ {
			c := word[i]
			if c > word[i-1] {
				c--
			}
			v = v*d + c
		}
		return v
	}
	words := make([][]int, 0, order)
	var gen func(word []int)
	gen = func(word []int) {
		if len(word) == n+1 {
			words = append(words, append([]int{}, word...))
			return
		}
		for s := 0; s <= d; s++ {
			if s != word[len(word)-1] {
				gen(append(word, s))
			}
		}
	}
	for s := 0; s <= d; s++ {
		gen([]int{s})
	}
	b := graph.NewBuilder(fmt.Sprintf("Kautz(%d,%d)", d, n), order)
	for _, w := range words {
		u := id(w)
		for t := 0; t <= d; t++ {
			if t == w[n] {
				continue
			}
			next := append(append([]int{}, w[1:]...), t)
			b.AddEdge(u, id(next))
		}
	}
	return &Kautz{D: d, L: n, G: b.Build()}, nil
}

// MustNewKautz is NewKautz but panics on error.
func MustNewKautz(d, n int) *Kautz {
	k, err := NewKautz(d, n)
	if err != nil {
		panic(err)
	}
	return k
}

// KautzOrder returns (d+1)·d^n.
func KautzOrder(d, n int) int {
	if d < 2 || n < 1 {
		return 0
	}
	return (d + 1) * pow(d, n)
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// NewJellyfish builds a random r-regular graph on n vertices (Singla et
// al., NSDI 2012), the random-topology baseline of the bisection study
// (Fig 12). The construction uses the pairing model with edge-swap
// repair and is deterministic for a given seed.
func NewJellyfish(n, r int, seed int64) (*graph.Graph, error) {
	if n*r%2 != 0 || r >= n || r < 1 {
		return nil, fmt.Errorf("topo: Jellyfish needs r < n and n·r even, got n=%d r=%d", n, r)
	}
	rng := rand.New(rand.NewSource(seed))
	type edge [2]int
	// Connectivity screening state reused across candidate graphs.
	var (
		connDist []int32
		connBFS  graph.BFSScratch
	)
	for attempt := 0; attempt < 200; attempt++ {
		stubs := make([]int, 0, n*r)
		for v := 0; v < n; v++ {
			for i := 0; i < r; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		has := make(map[edge]bool, n*r/2)
		edges := make([]edge, 0, n*r/2)
		key := func(u, v int) edge {
			if u > v {
				u, v = v, u
			}
			return edge{u, v}
		}
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || has[key(u, v)] {
				// Repair: find a random earlier edge (x, y) so that
				// (u, x) and (v, y) are both fresh, and swap.
				fixed := false
				for t := 0; t < 500 && !fixed; t++ {
					j := rng.Intn(len(edges))
					x, y := edges[j][0], edges[j][1]
					if u != x && v != y && u != y && v != x &&
						!has[key(u, x)] && !has[key(v, y)] {
						delete(has, key(x, y))
						edges[j] = key(u, x)
						has[key(u, x)] = true
						edges = append(edges, key(v, y))
						has[key(v, y)] = true
						fixed = true
					}
				}
				if !fixed {
					ok = false
					break
				}
				continue
			}
			has[key(u, v)] = true
			edges = append(edges, key(u, v))
		}
		if !ok {
			continue
		}
		b := graph.NewBuilder(fmt.Sprintf("Jellyfish(n=%d,r=%d)", n, r), n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g := b.Build()
		if g.IsRegular() && g.MaxDegree() == r {
			connected, dist := g.IsConnectedScratch(connDist, &connBFS)
			connDist = dist
			if connected {
				return g, nil
			}
		}
	}
	return nil, fmt.Errorf("topo: Jellyfish construction failed for n=%d r=%d", n, r)
}
