package topo

import "testing"

func TestStarProductOrderAndDegree(t *testing.T) {
	// §4.3 facts: |V(G*)| = |V(G)|·|V(G')|, deg ≤ deg(G)+deg(G').
	er := MustNewER(3)
	iq := MustNewIQ(3)
	p := StarProduct("test", er.G, iq, iq.F)
	if p.N() != er.N()*iq.N() {
		t.Errorf("order = %d, want %d", p.N(), er.N()*iq.N())
	}
	maxDeg := er.Degree() + iq.Degree()
	if p.MaxDegree() > maxDeg {
		t.Errorf("max degree = %d, want <= %d", p.MaxDegree(), maxDeg)
	}
}

func TestStarProductEdgeStructure(t *testing.T) {
	er := MustNewER(3)
	iq := MustNewIQ(3)
	p := StarProduct("test", er.G, iq, iq.F)
	np := iq.N()
	for _, e := range p.Edges() {
		x, xp := e[0]/np, e[0]%np
		y, yp := e[1]/np, e[1]%np
		switch {
		case x == y:
			// Intra edges come from E(G') or from a structure self-loop
			// pairing x' with f(x').
			if !iq.G.HasEdge(xp, yp) && !(er.IsQuadric(x) && (iq.F[xp] == yp || iq.F[yp] == xp)) {
				t.Fatalf("invalid intra edge (%d,%d)-(%d,%d)", x, xp, y, yp)
			}
		default:
			// Inter edges require a structure edge and the bijection.
			if !er.G.HasEdge(x, y) {
				t.Fatalf("inter edge without structure edge: %d-%d", x, y)
			}
			if iq.F[xp] != yp && iq.F[yp] != xp {
				t.Fatalf("inter edge violates bijection: (%d,%d)-(%d,%d)", x, xp, y, yp)
			}
		}
	}
}

func TestStarProductInterLinkCount(t *testing.T) {
	// §8: adjacent supernodes are joined by a bundle of |V(G')| links
	// (one per supernode vertex, since f is a bijection).
	er := MustNewER(3)
	pal := MustNewPaleySupernode(2)
	p := StarProduct("test", er.G, pal, pal.F)
	np := pal.N()
	count := make(map[[2]int]int)
	for _, e := range p.Edges() {
		x, y := e[0]/np, e[1]/np
		if x != y {
			if x > y {
				x, y = y, x
			}
			count[[2]int{x, y}]++
		}
	}
	for pair, c := range count {
		if c != np {
			t.Fatalf("supernode pair %v joined by %d links, want %d", pair, c, np)
		}
	}
	if len(count) != er.G.M() {
		t.Errorf("bundles = %d, want %d structure edges", len(count), er.G.M())
	}
}

// TestTheorem4Diameter3 is the paper's central claim: ER_q * IQ_d' has
// diameter at most 3 when f is the R* involution (Theorem 4 with D = 2).
func TestTheorem4Diameter3(t *testing.T) {
	cases := []struct{ q, d int }{
		{2, 0}, {2, 3}, {2, 4}, {3, 0}, {3, 3}, {3, 4}, {3, 7},
		{4, 3}, {4, 4}, {5, 3}, {5, 4}, {7, 3}, {8, 4}, {9, 3},
	}
	for _, c := range cases {
		ps := MustNewPolarStar(c.q, c.d, KindIQ)
		stats := ps.G.AllPairsStats()
		if !stats.Connected {
			t.Errorf("PolarStar-IQ(q=%d,d'=%d) disconnected", c.q, c.d)
			continue
		}
		if stats.Diameter > 3 {
			t.Errorf("PolarStar-IQ(q=%d,d'=%d) diameter = %d, want <= 3", c.q, c.d, stats.Diameter)
		}
	}
}

// TestTheorem5Diameter3 checks the R1 (Paley supernode) route to
// diameter 3.
func TestTheorem5Diameter3(t *testing.T) {
	cases := []struct{ q, d int }{
		{2, 2}, {3, 2}, {3, 4}, {4, 2}, {5, 4}, {7, 6}, {8, 6}, {9, 4},
	}
	for _, c := range cases {
		ps := MustNewPolarStar(c.q, c.d, KindPaley)
		stats := ps.G.AllPairsStats()
		if !stats.Connected || stats.Diameter > 3 {
			t.Errorf("PolarStar-Paley(q=%d,d'=%d) diameter = %d connected=%v, want <= 3",
				c.q, c.d, stats.Diameter, stats.Connected)
		}
	}
}

// TestStarProductBDFDiameter3: the BDF-style R* supernode must also give
// diameter-3 products.
func TestStarProductBDFDiameter3(t *testing.T) {
	for _, c := range []struct{ q, d int }{{3, 2}, {3, 5}, {4, 4}, {5, 3}} {
		ps := MustNewPolarStar(c.q, c.d, KindBDF)
		if d := ps.G.Diameter(); d > 3 || d < 0 {
			t.Errorf("ER_%d*BDF_%d diameter = %d, want <= 3", c.q, c.d, d)
		}
	}
}

func TestPolarStarMetadata(t *testing.T) {
	ps := MustNewPolarStar(5, 4, KindIQ)
	if ps.Radix() != 10 {
		t.Errorf("radix = %d, want 10", ps.Radix())
	}
	if ps.NumGroups() != 31 {
		t.Errorf("groups = %d, want 31", ps.NumGroups())
	}
	if ps.G.N() != 31*10 {
		t.Errorf("order = %d, want 310", ps.G.N())
	}
	for v := 0; v < ps.G.N(); v++ {
		x, xp := ps.GroupOf(v), ps.LocalOf(v)
		if ps.VertexAt(x, xp) != v {
			t.Fatalf("coordinate round-trip failed at %d", v)
		}
	}
	// Every vertex's radix must not exceed the nominal radix.
	if ps.G.MaxDegree() > ps.Radix() {
		t.Errorf("max degree %d exceeds radix %d", ps.G.MaxDegree(), ps.Radix())
	}
}

func TestPolarStarOrderFormula(t *testing.T) {
	cases := []struct {
		q, d int
		kind SupernodeKind
		want int
	}{
		{11, 3, KindIQ, 133 * 8},   // Table 3 PS-IQ: 1064 routers
		{8, 6, KindPaley, 73 * 13}, // Table 3 PS-Pal (see EXPERIMENTS.md note)
		{5, 4, KindIQ, 310},
		{6, 4, KindIQ, 0}, // q=6 not a prime power
		{5, 5, KindIQ, 0}, // d'=5 infeasible for IQ
		{5, 3, KindPaley, 0},
	}
	for _, c := range cases {
		if got := PolarStarOrder(c.q, c.d, c.kind); got != c.want {
			t.Errorf("PolarStarOrder(%d,%d,%v) = %d, want %d", c.q, c.d, c.kind, got, c.want)
		}
	}
}

func TestPolarStarOrderMatchesConstruction(t *testing.T) {
	for _, c := range []struct {
		q, d int
		kind SupernodeKind
	}{{3, 3, KindIQ}, {4, 4, KindIQ}, {5, 2, KindPaley}, {4, 3, KindBDF}} {
		ps := MustNewPolarStar(c.q, c.d, c.kind)
		want := 0
		switch c.kind {
		case KindBDF:
			want = (c.q*c.q + c.q + 1) * 2 * c.d
		default:
			want = PolarStarOrder(c.q, c.d, c.kind)
		}
		if ps.G.N() != want {
			t.Errorf("%v order = %d, want %d", ps.G, ps.G.N(), want)
		}
	}
}

// TestStarProductRegularityBreakdown: quadric supernodes gain the
// loop-induced edges, so their vertices reach full radix; non-quadric
// supernode vertices sit one below. This mirrors Fig 5(c).
func TestStarProductLoopEdges(t *testing.T) {
	er := MustNewER(3)
	iq := MustNewIQ(3)
	ps := MustNewPolarStar(3, 3, KindIQ)
	np := iq.N()
	for x := 0; x < er.N(); x++ {
		for xp := 0; xp < np; xp++ {
			v := x*np + xp
			hasLoopEdge := ps.G.HasEdge(v, x*np+iq.F[xp])
			if er.IsQuadric(x) && !hasLoopEdge {
				t.Fatalf("quadric supernode %d missing loop edge at %d", x, v)
			}
			if !er.IsQuadric(x) && hasLoopEdge && !iq.G.HasEdge(xp, iq.F[xp]) {
				t.Fatalf("non-quadric supernode %d has spurious loop edge at %d", x, v)
			}
		}
	}
}
