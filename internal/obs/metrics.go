// Package obs is the run-telemetry layer: allocation-free metric
// primitives (counters, high-water gauges, fixed-bucket histograms) plus
// a run-manifest writer that turns every experiment run into a
// self-describing JSON/CSV artifact.
//
// Two contracts govern the package:
//
//   - Zero allocations on the record path. Counter.Add, MaxGauge.Observe
//     and Histogram.Observe are plain integer updates into storage that
//     was sized once, before the hot loop started — the simulators keep
//     their AllocsPerRun == 0 guarantee with metrics enabled (see the
//     regression tests in internal/sim and internal/flowsim).
//
//   - Deterministic artifacts. Every recorded value is an integer count
//     or a value derived from the run's own deterministic state, and the
//     writers marshal structs (fixed field order) and sorted maps, so two
//     runs with equal seed and worker count produce byte-identical
//     metrics files once the volatile timing block is excluded (see
//     Run.Write).
package obs

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; it marshals as a plain JSON number.
type Counter int64

// Add increases the counter by n.
func (c *Counter) Add(n int64) { *c += Counter(n) }

// Inc increases the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return int64(*c) }

// MaxGauge tracks the high-water mark of an observed quantity. The zero
// value is ready to use; it marshals as a plain JSON number.
type MaxGauge int64

// Observe raises the gauge to v when v exceeds the current mark.
func (g *MaxGauge) Observe(v int64) {
	if MaxGauge(v) > *g {
		*g = MaxGauge(v)
	}
}

// Value returns the high-water mark.
func (g *MaxGauge) Value() int64 { return int64(*g) }

// histBuckets is the fixed bucket count of Histogram: bucket i holds
// values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i). Bucket 0 holds
// v <= 0. 48 buckets cover every latency/occupancy magnitude the
// simulators can produce (2^47 cycles).
const histBuckets = 48

// Histogram is a fixed-bucket exponential (base-2) histogram of int64
// observations. It is a value type with inline storage: embedding it in
// a per-shard struct costs one allocation at setup and none per Observe.
// Quantile estimates report the inclusive upper bound of the bucket the
// quantile falls in, which keeps them integer and deterministic.
type Histogram struct {
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i]++
}

// Merge adds the contents of o into h. Counts are integers, so merge
// order cannot affect the result.
func (h *Histogram) Merge(o *Histogram) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// inclusive upper edge of the first bucket whose cumulative count reaches
// q·count, clamped to the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	need := int64(q * float64(h.count))
	if float64(need) < q*float64(h.count) {
		need++
	}
	if need < 1 {
		need = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= need {
			var hi int64
			if i > 0 {
				hi = (int64(1) << uint(i)) - 1
			}
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return int64(1) << uint(i-1), (int64(1) << uint(i)) - 1
}

// MarshalJSON renders the histogram as a summary object:
//
//	{"count":N,"sum":S,"max":M,"mean":…,"p50":…,"p95":…,"p99":…,
//	 "buckets":[[lo,hi,count],…]}
//
// Only non-empty buckets are listed. All fields are integers except the
// mean; formatting is deterministic.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sum":%d,"max":%d,"mean":%s,"p50":%d,"p95":%d,"p99":%d,"buckets":[`,
		h.count, h.sum, h.max,
		strconv.FormatFloat(h.Mean(), 'g', 10, 64),
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	first := true
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		lo, hi := bucketBounds(i)
		fmt.Fprintf(&b, "[%d,%d,%d]", lo, hi, n)
	}
	b.WriteString("]}")
	return []byte(b.String()), nil
}

// ChannelHWM is a per-channel high-water-mark array (e.g. peak queued
// flits per directed channel). It marshals as a summary plus the full
// per-channel vector, so per-channel hotspots stay inspectable while the
// headline number remains one field.
type ChannelHWM []int32

// Observe raises channel c's mark to v when v exceeds it.
func (m ChannelHWM) Observe(c int, v int32) {
	if v > m[c] {
		m[c] = v
	}
}

// Max returns the global high-water mark across channels.
func (m ChannelHWM) Max() int32 {
	var max int32
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// MarshalJSON renders {"max":M,"nonzero":K,"per_channel":[…]}.
func (m ChannelHWM) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	nz := 0
	for _, v := range m {
		if v != 0 {
			nz++
		}
	}
	fmt.Fprintf(&b, `{"max":%d,"nonzero":%d,"per_channel":[`, m.Max(), nz)
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	b.WriteString("]}")
	return []byte(b.String()), nil
}
