package obs

// This file defines the typed payload sections the instrumented layers
// fill in: internal/sim (SimRun/SimSweep), internal/flowsim (FlowRun) and
// internal/faults (FaultSweep/FaultTraffic). obs deliberately depends on
// none of them — the simulators import obs, never the reverse — so the
// sections hold only scalar aggregates and the metric primitives above.

// IntervalRow is one `-metrics-interval` sample of a simulation run:
// cumulative counters at the end of the given cycle. Rows are recorded in
// the serial commit phase, so they are identical for any worker count.
type IntervalRow struct {
	Cycle     int64 `json:"cycle"`
	Generated int64 `json:"generated"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	Stalled   int64 `json:"stalled"`
}

// SimRun is the metric set of one cycle-simulator run (one offered-load
// point). The engine sizes the slices in NewEngine and fills everything
// by merging per-shard accumulators in fixed shard order at the end of
// Run; callers pass a zero SimRun via sim.Params.Metrics.
type SimRun struct {
	Load float64 `json:"load"`

	// Packet counters over the whole run (warmup+measure+drain).
	Generated Counter `json:"generated"` // packets produced by the traffic pattern
	Injected  Counter `json:"injected"`  // packets routed and enqueued at their source
	Lost      Counter `json:"lost"`      // unroutable or over-budget paths (degraded topologies)
	Delivered Counter `json:"delivered"` // packets ejected at their destination

	// Arbitration stall counters: failed forward attempts by cause.
	StallInject   Counter `json:"stall_inject"`        // source endpoint still serializing a previous packet
	StallEject    Counter `json:"stall_eject"`         // destination ejection channel busy
	StallChannel  Counter `json:"stall_channel"`       // output channel busy this cycle
	StallCredit   Counter `json:"stall_credit"`        // no eligible VC with downstream credits
	CreditStallVC []int64 `json:"credit_stall_per_vc"` // credit stalls keyed by the packet's lowest eligible VC

	// Latency is the end-to-end latency histogram (cycles) of measured
	// delivered packets; p50/p95/p99 come out in its JSON form.
	Latency Histogram `json:"latency_cycles"`

	// OccHWM is the peak queued+reserved flits per directed channel.
	OccHWM ChannelHWM `json:"channel_occupancy_hwm"`

	// Results echoed from sim.Result so the artifact stands alone.
	AvgLatency    float64 `json:"avg_latency"`
	Throughput    float64 `json:"throughput"`
	DeliveredFrac float64 `json:"delivered_frac"`
	Saturated     bool    `json:"saturated"`

	// Interval series ([]IntervalRow presized by the engine; empty when
	// -metrics-interval is 0).
	Interval int           `json:"interval,omitempty"`
	Series   []IntervalRow `json:"series,omitempty"`

	// Faults is the live fault-injection accounting, present only when
	// the run carried an active fault plan (sim.Params.Plan). A pointer
	// with omitempty so artifacts of healthy runs are byte-identical to
	// the pre-fault schema.
	Faults *SimFaults `json:"faults,omitempty"`

	// Lanes is the per-lane accounting of a multipath-routed run, present
	// only when the routing sprays over spanning-tree lanes. Same
	// pointer+omitempty contract as Faults.
	Lanes *SimLanes `json:"lanes,omitempty"`
}

// SimLanes is the per-lane accounting of one multipath-routed run: how
// traffic spread over the minimal-path lane (index 0) and the k
// spanning-tree lanes (1..k), and how the lane-health machinery reacted
// to faults. Slices are indexed by lane, length k+1.
type SimLanes struct {
	Lanes     int     `json:"lanes"`     // tree lanes k (excluding the minimal lane)
	Chosen    []int64 `json:"chosen"`    // packets routed onto the lane at injection
	Delivered []int64 `json:"delivered"` // packets ejected that last rode the lane
	Failovers []int64 `json:"failovers"` // in-flight reroutes ONTO the lane (dead channel ahead)
	Demoted   int64   `json:"demoted"`   // lane demotions (a tree edge died)
	Promoted  int64   `json:"promoted"`  // lanes returned to service after heal + re-probe
}

// SimFaults is the fault accounting of one live fault-injected
// simulation run: how much of the plan fired, what happened to the
// packets it hit, and whether the no-progress watchdog had to end the
// run early.
type SimFaults struct {
	PlanEvents      int64   `json:"plan_events"`             // events the plan scripts
	EventsApplied   int64   `json:"events_applied"`          // events whose cycle was reached
	DroppedInFlight Counter `json:"dropped_in_flight"`       // packets dropped on a dying link (credits reclaimed)
	Retries         Counter `json:"retries"`                 // source retries performed
	LostRetryBudget Counter `json:"lost_retry_budget"`       // packets that exhausted MaxRetries
	LostTimeout     Counter `json:"lost_timeout"`            // packets that exceeded the MaxAge limit
	LostStranded    Counter `json:"lost_stranded"`           // packets wedged when the watchdog fired
	TerminatedEarly bool    `json:"terminated_early"`        // the watchdog ended the run before the horizon
	TerminatedAt    int64   `json:"terminated_at,omitempty"` // cycle of early termination
}

// SimSweep is one latency-load sweep: a SimRun per offered-load point,
// in load order.
type SimSweep struct {
	Spec    string    `json:"spec"`
	Routing string    `json:"routing"`
	Pattern string    `json:"pattern"`
	Points  []*SimRun `json:"points"`
}

// NewSimSweep returns a sweep with one zero SimRun per load point, ready
// to hand to sim.SweepObs.
func NewSimSweep(spec, routing, pattern string, loads int) *SimSweep {
	s := &SimSweep{Spec: spec, Routing: routing, Pattern: pattern, Points: make([]*SimRun, loads)}
	for i := range s.Points {
		s.Points[i] = &SimRun{}
	}
	return s
}

// FlowRun is the metric set of one flow-level (flowsim) run. The network
// sizes LinkBusyNS once in Observe; Send updates are plain array adds.
type FlowRun struct {
	Topology string `json:"topology,omitempty"`
	Motif    string `json:"motif,omitempty"`
	Routing  string `json:"routing,omitempty"`

	Messages       Counter   `json:"messages"`
	Bytes          float64   `json:"bytes"`
	Hops           Histogram `json:"hops"`
	LastDeliveryNS float64   `json:"last_delivery_ns"`
	CompletionUS   float64   `json:"completion_us,omitempty"`

	// LinkBusyNS accumulates serialization time per directed channel; its
	// JSON form is the per-link utilization histogram (busy / makespan).
	LinkBusyNS UtilVector `json:"link_utilization"`
	InjBusyNS  float64    `json:"inj_busy_ns"`
	EjBusyNS   float64    `json:"ej_busy_ns"`
}

// UtilVector is a per-link busy-time vector whose JSON form is a
// utilization histogram: each link's busy share of the owner FlowRun's
// makespan, bucketed into 5% bins. The span is set by Finish.
type UtilVector struct {
	BusyNS []float64 `json:"-"`
	SpanNS float64   `json:"-"`
}

// Add accumulates busy nanoseconds on channel c.
func (u *UtilVector) Add(c int, ns float64) { u.BusyNS[c] += ns }

// MarshalJSON renders {"span_ns":…,"max":…,"mean":…,"bins":[20 counts]}
// where bins[i] counts links with utilization in [i/20, (i+1)/20).
func (u UtilVector) MarshalJSON() ([]byte, error) {
	var bins [20]int
	var max, sum float64
	if u.SpanNS > 0 {
		for _, busy := range u.BusyNS {
			util := busy / u.SpanNS
			if util > max {
				max = util
			}
			sum += util
			i := int(util * 20)
			if i >= len(bins) {
				i = len(bins) - 1
			}
			if i < 0 {
				i = 0
			}
			bins[i]++
		}
	}
	mean := 0.0
	if len(u.BusyNS) > 0 {
		mean = sum / float64(len(u.BusyNS))
	}
	out := struct {
		SpanNS float64 `json:"span_ns"`
		Links  int     `json:"links"`
		Max    float64 `json:"max"`
		Mean   float64 `json:"mean"`
		Bins   [20]int `json:"bins"`
	}{u.SpanNS, len(u.BusyNS), max, mean, bins}
	return marshalJSON(out)
}

// FaultTrial is the per-trial record of a structural fault sweep.
type FaultTrial struct {
	Seed               int64   `json:"seed"`
	DisconnectionRatio float64 `json:"disconnection_ratio"`
	PointsConnected    int     `json:"points_connected,omitempty"`
	PointsDisconnected int     `json:"points_disconnected,omitempty"`
	DegradedPoints     int     `json:"degraded_points,omitempty"` // sampled points with diameter above the intact graph
	MaxDiameter        int32   `json:"max_diameter,omitempty"`
	LostPairs          Counter `json:"lost_pairs,omitempty"` // unreachable host pairs summed over sampled points
}

// FaultSweep is the metric set of a §11.2 structural fault experiment:
// one FaultTrial per scenario (ranking pass) plus the fully sampled
// median trial.
type FaultSweep struct {
	Spec           string       `json:"spec,omitempty"`
	IntactDiameter int32        `json:"intact_diameter"`
	Trials         []FaultTrial `json:"trials,omitempty"`
	Median         *FaultTrial  `json:"median,omitempty"`
}

// FaultTrafficPoint is one failure fraction of a degraded-traffic sweep:
// the structural damage plus the full simulator metrics at that point.
type FaultTrafficPoint struct {
	FailFrac float64 `json:"fail_frac"`
	Removed  int     `json:"removed"`
	Sim      *SimRun `json:"sim"`
}

// FaultTraffic is the metric set of a faults.TrafficSweep run.
type FaultTraffic struct {
	Spec   string               `json:"spec,omitempty"`
	Load   float64              `json:"load"`
	Points []*FaultTrafficPoint `json:"points"`
}

// FaultResiliencePoint is one failure count of a resilience sweep: the
// number of links the plan kills plus the full simulator metrics.
type FaultResiliencePoint struct {
	Failures int     `json:"failures"`
	Sim      *SimRun `json:"sim"`
}

// FaultResilienceCurve is one routing mode's throughput/latency-vs-
// failure-count curve of a faults.ResilienceSweep run.
type FaultResilienceCurve struct {
	Routing string                  `json:"routing"`
	Lanes   int                     `json:"lanes,omitempty"` // tree lanes of a multipath mode
	Points  []*FaultResiliencePoint `json:"points"`
}

// FaultResilience is the metric set of a faults.ResilienceSweep run:
// every compared routing mode simulated under the same nested live
// fault plans at the same offered load.
type FaultResilience struct {
	Spec      string  `json:"spec,omitempty"`
	Pattern   string  `json:"pattern,omitempty"`
	Load      float64 `json:"load"`
	KillCycle int64   `json:"kill_cycle"`
	MTBF      int64   `json:"mtbf,omitempty"`
	Repair    int64   `json:"repair,omitempty"`
	// RepairDelay is the table-reconvergence stall in cycles imposed on
	// single-table repair after every fault event (0: instant).
	RepairDelay int64 `json:"repair_delay,omitempty"`
	// TargetLanes > 0 means the killed links were drawn from the first
	// TargetLanes multipath tree lanes instead of uniformly at random.
	TargetLanes int                     `json:"target_lanes,omitempty"`
	Curves      []*FaultResilienceCurve `json:"curves"`
}

// Figure is one figure of a psfig run; sim/fault figures attach their
// sweep metrics.
type Figure struct {
	Name   string        `json:"name"`
	Sims   []*SimSweep   `json:"sims,omitempty"`
	Faults []*FaultSweep `json:"faults,omitempty"`
}

// ServeStats is the counter snapshot of a psserve evaluation service:
// request admission, the two cache layers (finished-Result artifacts and
// resident built specs), and shedding. The service accumulates these
// atomically and snapshots them into this struct on demand, so the
// fields here are plain ints — obs stays synchronization-free.
type ServeStats struct {
	Requests    int64 `json:"requests"`     // eval requests admitted past decoding
	BadRequests int64 `json:"bad_requests"` // eval requests rejected with a 4xx
	CacheHits   int64 `json:"cache_hits"`   // evals answered from the artifact cache
	CacheMisses int64 `json:"cache_misses"` // evals that had to run
	Joined      int64 `json:"joined"`       // evals that joined an identical in-flight run
	Shed        int64 `json:"shed"`         // evals rejected 429 with a full queue
	Evictions   int64 `json:"evictions"`    // artifacts evicted by the LRU byte budget
	CachedRuns  int64 `json:"cached_runs"`  // artifacts currently resident
	CachedBytes int64 `json:"cached_bytes"` // artifact bytes currently resident

	Builds      int64 `json:"builds"`       // topologies constructed (cold spec requests)
	BuildHits   int64 `json:"build_hits"`   // requests served by an already-built spec
	BuildShared int64 `json:"build_shared"` // requests that waited on a concurrent build
	SpecsBuilt  int64 `json:"specs_built"`  // built specs currently resident
	SpecBytes   int64 `json:"spec_bytes"`   // routing-state bytes of resident specs
}

// SearchEpoch is one barrier point of a pssearch best-cost trajectory
// (mirrors search.EpochStat; obs stays dependency-free).
type SearchEpoch struct {
	Epoch    int     `json:"epoch"`
	BestCost int64   `json:"best_cost"`
	BestASPL float64 `json:"best_aspl"`
	Proposed int64   `json:"proposed"`
	Accepted int64   `json:"accepted"`
}

// SearchRun is the metric set of one cmd/pssearch invocation: the
// annealing telemetry (all deterministic), the best graph found with its
// optimality gap against the Moore-type ASPL lower bound, and — only
// when timing is enabled — the volatile throughput numbers.
type SearchRun struct {
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	Degree    int    `json:"degree"`
	Seed      int64  `json:"seed"`
	Searchers int    `json:"searchers"`
	Epochs    int    `json:"epochs"`
	Iters     int    `json:"iters_per_epoch"`

	Proposed     Counter `json:"proposed"`
	Accepted     Counter `json:"accepted"`
	Invalid      Counter `json:"invalid"`
	Evals        Counter `json:"evals"`
	DirtyTotal   Counter `json:"dirty_total"`
	FullRebuilds Counter `json:"full_rebuilds"`
	Resyncs      Counter `json:"resyncs"`
	Drift        Counter `json:"drift"`
	DistsBytes   Counter `json:"dists_bytes"` // per-searcher probe-buffer high-water (max, not sum)

	AcceptRate float64 `json:"accept_rate"`
	AvgDirty   float64 `json:"avg_dirty"` // mean re-evaluated sources per applied swap

	BestCost     int64   `json:"best_cost"`
	BestASPL     float64 `json:"best_aspl"`
	BestDiameter int32   `json:"best_diameter"`
	Connected    bool    `json:"connected"`
	StartASPL    float64 `json:"start_aspl"`
	LowerBound   float64 `json:"aspl_lower_bound"`
	GapPct       float64 `json:"gap_pct"` // (best − bound)/bound·100

	Trajectory []SearchEpoch `json:"trajectory,omitempty"`

	// Volatile: populated only when the caller includes timing
	// (-metrics-timing), so artifacts stay byte-identical without it.
	SwapsPerSec float64    `json:"swaps_per_sec,omitempty"`
	EvalNS      *Histogram `json:"eval_ns,omitempty"`
}
