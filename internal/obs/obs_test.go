package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g MaxGauge
	for _, v := range []int64{3, 7, 5, 7, 1} {
		g.Observe(v)
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	var h Histogram
	vals := []int64{1, 2, 3, 100, 1000, 0}
	var sum, max int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
		if v > max {
			max = v
		}
	}
	if h.Count() != int64(len(vals)) || h.Sum() != sum || h.Max() != max {
		t.Fatalf("count/sum/max = %d/%d/%d, want %d/%d/%d",
			h.Count(), h.Sum(), h.Max(), len(vals), sum, max)
	}
	if got, want := h.Mean(), float64(sum)/float64(len(vals)); got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

// quantileBounds checks the histogram quantile contract against the
// exact sorted data: the estimate is an upper bound for the true
// quantile and never exceeds twice it (base-2 buckets), nor the max.
func quantileBounds(t *testing.T, vals []int64, h *Histogram, q float64) {
	t.Helper()
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	exact := sorted[idx]
	est := h.Quantile(q)
	if est < exact {
		t.Errorf("q%.2f estimate %d below exact %d", q, est, exact)
	}
	if est > h.Max() {
		t.Errorf("q%.2f estimate %d above max %d", q, est, h.Max())
	}
	if exact > 0 && est > 2*exact {
		t.Errorf("q%.2f estimate %d more than 2x exact %d", q, est, exact)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 20)
		h.Observe(vals[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		quantileBounds(t, vals, &h, q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(1 << 16)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from direct observation")
	}
}

// TestRecordPathZeroAllocs pins the core contract: recording into any
// metric primitive allocates nothing.
func TestRecordPathZeroAllocs(t *testing.T) {
	var c Counter
	var g MaxGauge
	var h Histogram
	hwm := make(ChannelHWM, 64)
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Observe(i)
		h.Observe(i % 4096)
		hwm.Observe(int(i%64), int32(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.2f objects per op, want 0", allocs)
	}
}

func TestRunMarshalDeterministic(t *testing.T) {
	mk := func() *Run {
		r := NewRun("test")
		r.Manifest.Spec = "ps-iq-small"
		r.Manifest.Seed = 7
		r.Manifest.Workers = 4
		r.Manifest.Args = map[string]string{"b": "2", "a": "1", "c": "3"}
		sw := NewSimSweep("ps-iq-small", "MIN", "uniform", 2)
		sw.Points[0].Load = 0.1
		sw.Points[0].Delivered.Add(100)
		sw.Points[0].Latency.Observe(12)
		sw.Points[0].OccHWM = make(ChannelHWM, 3)
		sw.Points[0].OccHWM.Observe(1, 8)
		r.Sim = sw
		return r
	}
	a, err := mk().Marshal(false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Marshal(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs marshal to different bytes")
	}
	if bytes.Contains(a, []byte(`"timing"`)) {
		t.Fatal("timing block present despite includeTiming=false")
	}
	// With timing, the block must appear.
	r := mk()
	r.Finish()
	withT, err := r.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(withT, []byte(`"timing"`)) {
		t.Fatal("timing block missing despite includeTiming=true")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	r := NewRun("pssim")
	r.Manifest.Seed = 1
	sw := NewSimSweep("bf-small", "UGAL", "adversarial", 1)
	sw.Points[0].Latency.Observe(40)
	sw.Points[0].Latency.Observe(90)
	r.Sim = sw
	data, err := r.Marshal(false)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	man, ok := tree["manifest"].(map[string]any)
	if !ok || man["schema"] != Schema {
		t.Fatalf("manifest/schema missing: %v", tree["manifest"])
	}
	lat := tree["sim"].(map[string]any)["points"].([]any)[0].(map[string]any)["latency_cycles"].(map[string]any)
	for _, k := range []string{"count", "p50", "p95", "p99", "max", "buckets"} {
		if _, ok := lat[k]; !ok {
			t.Errorf("latency histogram JSON missing %q", k)
		}
	}
}

func TestMarshalCSV(t *testing.T) {
	r := NewRun("pssim")
	r.Manifest.Seed = 9
	sw := NewSimSweep("hx-small", "MIN", "uniform", 1)
	sw.Points[0].Delivered.Add(5)
	r.Sim = sw
	data, err := r.MarshalCSV(false)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "path,value\n") {
		t.Fatalf("CSV missing header: %q", s[:40])
	}
	for _, want := range []string{"manifest.seed,9", "sim.points.0.delivered,5", "manifest.tool,\"pssim\""} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing row %q", want)
		}
	}
	// Determinism.
	again, _ := r.MarshalCSV(false)
	if !bytes.Equal(data, again) {
		t.Fatal("CSV not deterministic")
	}
}

// FuzzHistogram drives Observe with arbitrary values and checks the
// structural invariants: bucket counts sum to the observation count,
// quantiles are monotone in q, and every quantile is bounded by the max.
func FuzzHistogram(f *testing.F) {
	f.Add(int64(1), int64(100), int64(1<<30))
	f.Add(int64(-5), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		var h Histogram
		for _, v := range []int64{a, b, c, a ^ b, b ^ c} {
			h.Observe(v)
		}
		var bucketSum int64
		for _, n := range h.buckets {
			bucketSum += n
		}
		if bucketSum != h.Count() {
			t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count())
		}
		prev := int64(-1 << 62)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone: q=%v gave %d after %d", q, v, prev)
			}
			if v > h.Max() {
				t.Fatalf("quantile %v = %d exceeds max %d", q, v, h.Max())
			}
			prev = v
		}
		if _, err := h.MarshalJSON(); err != nil {
			t.Fatalf("marshal: %v", err)
		}
	})
}
