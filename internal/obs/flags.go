package obs

import "flag"

// FlagSet is the standard telemetry command-line surface, shared by
// every instrumented CLI (pssim, psfig, psfaults, psmotifs).
type FlagSet struct {
	Path     *string // -metrics: artifact path ("" = disabled)
	Interval *int    // -metrics-interval: cycles per interval sample (0 = off)
	Timing   *bool   // -metrics-timing: include the volatile timing block
}

// Flags registers -metrics, -metrics-interval and -metrics-timing on the
// default flag set. Call before flag.Parse.
func Flags() *FlagSet {
	return &FlagSet{
		Path:     flag.String("metrics", "", "write a run-metrics artifact to this file (.json or .csv)"),
		Interval: flag.Int("metrics-interval", 0, "record an interval metrics sample every N simulated cycles (0: off)"),
		Timing:   flag.Bool("metrics-timing", true, "include wall/CPU time in the metrics artifact (disable for byte-identical artifacts across runs)"),
	}
}

// Enabled reports whether an artifact was requested.
func (f *FlagSet) Enabled() bool { return *f.Path != "" }

// Write captures the parsed args into the run's manifest and writes the
// artifact to the -metrics path. No-op when -metrics was not given.
func (f *FlagSet) Write(r *Run) error {
	if !f.Enabled() {
		return nil
	}
	r.CaptureArgs()
	return r.Write(*f.Path, *f.Timing)
}
