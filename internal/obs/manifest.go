package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Schema identifies the artifact layout; bump on incompatible changes.
const Schema = "polarstar-metrics/1"

// Manifest records what produced an artifact: enough to re-run the
// experiment bit-identically (spec, seed, workers) and enough to place it
// (binary revision, Go version, GOMAXPROCS). Every field is deterministic
// for a fixed binary and command line.
type Manifest struct {
	Schema  string `json:"schema"`
	Tool    string `json:"tool"`
	Spec    string `json:"spec,omitempty"`
	Routing string `json:"routing,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	// SpecHash is the FNV-1a hash of the constructed topology's adjacency
	// (%016x), set by layers that build graphs content-addressably (the
	// serving layer): provenance that two artifacts really simulated the
	// same wiring, not just the same spec name.
	SpecHash   string `json:"spec_hash,omitempty"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Workers-budget split of tools that divide Workers between
	// task-level goroutines and intra-evaluation pools (pssearch):
	// SearcherWorkers·IntraWorkers ≤ Workers. Zero for tools without a
	// split. Like Workers these are manifest-only — metric sections stay
	// bit-identical across budgets.
	SearcherWorkers int               `json:"searcher_workers,omitempty"`
	IntraWorkers    int               `json:"intra_workers,omitempty"`
	GoVersion       string            `json:"go_version"`
	Revision        string            `json:"revision"`
	Args            map[string]string `json:"args,omitempty"`

	// FaultPlan records the live fault-injection configuration of the
	// run — the canonical plan hash plus every generator and retry
	// parameter — so a degraded run is reproducible from its artifact
	// alone. Nil (and absent from the JSON) for healthy runs.
	FaultPlan *FaultPlan `json:"fault_plan,omitempty"`
}

// FaultPlan is the manifest block describing a live fault-injection run.
type FaultPlan struct {
	Hash   string  `json:"hash"`             // FNV-1a of the canonical plan text, %016x
	Events int     `json:"events"`           // scripted events in the merged plan
	Source string  `json:"source,omitempty"` // plan file path, when one was given
	MTBF   float64 `json:"mtbf,omitempty"`   // mean cycles between generated failures (0: none)
	Repair int64   `json:"repair,omitempty"` // generated-failure repair delay in cycles (0: permanent)
	// RepairDelay is the single-table reconvergence stall charged after
	// every applied fault event (sim.Params.RepairDelay); 0 means
	// repair was instantaneous.
	RepairDelay int64 `json:"repair_delay,omitempty"`
	MaxRetries  int   `json:"max_retries"`
	BackoffBase int64 `json:"backoff_base"`
	BackoffCap  int64 `json:"backoff_cap"`
	MaxAge      int64 `json:"max_age"`
}

// Timing is the volatile block of an artifact: wall and CPU time differ
// between otherwise identical runs, so Run.Write can exclude it to keep
// artifacts byte-identical (the determinism contract the tests pin).
type Timing struct {
	WallMS int64 `json:"wall_ms"`
	CPUMS  int64 `json:"cpu_ms"`
}

// Run is one experiment artifact: the manifest, the typed metric
// sections the instrumented layers filled, and the timing block.
type Run struct {
	Manifest Manifest `json:"manifest"`

	Sim             *SimSweep        `json:"sim,omitempty"`
	Faults          *FaultSweep      `json:"faults,omitempty"`
	FaultTraffic    *FaultTraffic    `json:"fault_traffic,omitempty"`
	FaultResilience *FaultResilience `json:"fault_resilience,omitempty"`
	Flows           []*FlowRun       `json:"flows,omitempty"`
	Figures         []*Figure        `json:"figures,omitempty"`
	Search          *SearchRun       `json:"search,omitempty"`

	Timing *Timing `json:"timing,omitempty"`

	start    time.Time
	startCPU time.Duration
}

// NewRun starts an artifact for the named tool, capturing the
// environment manifest and the timing baseline.
func NewRun(tool string) *Run {
	r := &Run{
		Manifest: Manifest{
			Schema:     Schema,
			Tool:       tool,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Revision:   buildRevision(),
		},
		start:    time.Now(),
		startCPU: processCPUTime(),
	}
	return r
}

// CaptureArgs records every explicitly set flag of the default flag set
// into the manifest (sorted on marshal). Call after flag.Parse.
func (r *Run) CaptureArgs() {
	args := map[string]string{}
	flag.Visit(func(f *flag.Flag) { args[f.Name] = f.Value.String() })
	if len(args) > 0 {
		r.Manifest.Args = args
	}
}

// Finish stamps the timing block from the run's start baselines.
func (r *Run) Finish() {
	r.Timing = &Timing{
		WallMS: time.Since(r.start).Milliseconds(),
		CPUMS:  (processCPUTime() - r.startCPU).Milliseconds(),
	}
}

// Marshal renders the artifact as indented JSON. When includeTiming is
// false the volatile timing block is dropped, making the output a pure
// function of (binary, command line, seed) — the byte-identical form the
// determinism tests compare.
func (r *Run) Marshal(includeTiming bool) ([]byte, error) {
	if !includeTiming {
		clone := *r
		clone.Timing = nil
		r = &clone
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Write finishes the run and writes it to path: CSV when the path ends
// in ".csv", indented JSON otherwise.
func (r *Run) Write(path string, includeTiming bool) error {
	if includeTiming {
		r.Finish()
	}
	var data []byte
	var err error
	if strings.HasSuffix(path, ".csv") {
		data, err = r.MarshalCSV(includeTiming)
	} else {
		data, err = r.Marshal(includeTiming)
	}
	if err != nil {
		return fmt.Errorf("obs: marshal %s: %w", filepath.Base(path), err)
	}
	return os.WriteFile(path, data, 0o644)
}

// buildRevision returns the VCS revision baked into the binary, or
// "unknown" for builds without VCS stamping (go test, go run).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// marshalJSON is encoding/json without HTML escaping or the trailing
// newline — the helper the custom marshalers share.
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// MarshalCSV flattens the artifact into deterministic "path,value" rows:
// the JSON tree walked depth-first with object keys sorted and array
// indices as path segments. One artifact format, two serializations.
func (r *Run) MarshalCSV(includeTiming bool) ([]byte, error) {
	js, err := r.Marshal(includeTiming)
	if err != nil {
		return nil, err
	}
	var tree any
	if err := json.Unmarshal(js, &tree); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString("path,value\n")
	flattenCSV(&buf, "", tree)
	return buf.Bytes(), nil
}

func flattenCSV(buf *bytes.Buffer, path string, v any) {
	join := func(seg string) string {
		if path == "" {
			return seg
		}
		return path + "." + seg
	}
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenCSV(buf, join(k), t[k])
		}
	case []any:
		for i, e := range t {
			flattenCSV(buf, join(fmt.Sprintf("%d", i)), e)
		}
	default:
		val, _ := json.Marshal(v)
		s := string(val)
		if strings.ContainsAny(s, ",\n") {
			s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		fmt.Fprintf(buf, "%s,%s\n", path, s)
	}
}
