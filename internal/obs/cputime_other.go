//go:build !unix

package obs

import "time"

// processCPUTime is unavailable off unix; the timing block then reports
// CPU time 0 (wall time is still recorded).
func processCPUTime() time.Duration { return 0 }
