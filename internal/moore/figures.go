package moore

import (
	"fmt"
	"io"
	"strings"
)

// Fig1Row is one radix of the diameter-3 scalability comparison (Fig 1):
// the order and Moore-bound efficiency of every compared topology.
type Fig1Row struct {
	Radix       int
	MooreBound  int64
	PolarStar   Point
	StarMax     Point
	Bundlefly   Point
	Dragonfly   Point
	HyperX3D    Point
	Kautz       Point
	Spectralfly Point // filled by Fig1WithSpectralfly only
}

// Fig1 computes the scalability comparison over the radix range.
func Fig1(lo, hi int) []Fig1Row {
	var rows []Fig1Row
	for r := lo; r <= hi; r++ {
		rows = append(rows, Fig1Row{
			Radix:      r,
			MooreBound: Diam3Bound(r),
			PolarStar:  BestPolarStar(r),
			StarMax:    StarMax(r),
			Bundlefly:  BestBundlefly(r),
			Dragonfly:  BestDragonfly(r),
			HyperX3D:   BestHyperX3D(r),
			Kautz:      KautzDiam3(r),
		})
	}
	return rows
}

// Fig1WithSpectralfly additionally fills the Spectralfly column by
// explicit LPS construction and diameter measurement, capped at maxOrder
// vertices per candidate (the diameter check is quadratic). Spectralfly
// has diameter-3 design points at very few radixes, exactly as Fig 1
// shows.
func Fig1WithSpectralfly(lo, hi, maxOrder int) []Fig1Row {
	rows := Fig1(lo, hi)
	for i := range rows {
		rows[i].Spectralfly = SpectralflyDiam3(rows[i].Radix, maxOrder)
	}
	return rows
}

// WriteFig1 renders Fig 1 as an aligned text table.
func WriteFig1(w io.Writer, rows []Fig1Row) {
	withSF := false
	for _, r := range rows {
		if r.Spectralfly.Valid() {
			withSF = true
		}
	}
	fmt.Fprintf(w, "%-6s %-12s %-22s %-10s %-18s %-16s %-14s %-12s",
		"radix", "Moore(D=3)", "PolarStar", "StarMax", "Bundlefly", "Dragonfly", "3D-HyperX", "Kautz")
	if withSF {
		fmt.Fprintf(w, " %-16s", "Spectralfly")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-12d %-22s %-10d %-18s %-16s %-14s %-12s",
			r.Radix, r.MooreBound,
			pointCell(r.PolarStar), r.StarMax.Order,
			pointCell(r.Bundlefly), pointCell(r.Dragonfly),
			pointCell(r.HyperX3D), pointCell(r.Kautz))
		if withSF {
			fmt.Fprintf(w, " %-16s", pointCell(r.Spectralfly))
		}
		fmt.Fprintln(w)
	}
}

func pointCell(p Point) string {
	if !p.Valid() {
		return "-"
	}
	return fmt.Sprintf("%d (%s)", p.Order, p.Config)
}

// Fig4Row is one radix of the diameter-2 family comparison (Fig 4).
type Fig4Row struct {
	Radix      int
	MooreBound int64
	ER         Point
	MMS        Point
	Paley      Point
	Cayley     Point
}

// Fig4 computes the diameter-2 comparison over the radix range.
func Fig4(lo, hi int) []Fig4Row {
	var rows []Fig4Row
	for r := lo; r <= hi; r++ {
		rows = append(rows, Fig4Row{
			Radix:      r,
			MooreBound: Diam2Bound(r),
			ER:         BestERPoint(r),
			MMS:        BestMMSPoint(r),
			Paley:      PaleyPoint(r),
			Cayley:     CayleyDiam2Point(r),
		})
	}
	return rows
}

// WriteFig4 renders Fig 4 as an aligned text table.
func WriteFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "%-6s %-12s %-16s %-16s %-14s %-14s\n",
		"radix", "Moore(D=2)", "ER", "MMS", "Paley", "Cayley")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-12d %-16s %-16s %-14s %-14s\n",
			r.Radix, r.MooreBound, pointCell(r.ER), pointCell(r.MMS),
			pointCell(r.Paley), pointCell(r.Cayley))
	}
}

// WriteFig7 renders the PolarStar design space (Fig 7): every feasible
// configuration per radix.
func WriteFig7(w io.Writer, lo, hi int) {
	fmt.Fprintf(w, "%-6s %-10s %s\n", "radix", "largest", "all feasible orders")
	for r := lo; r <= hi; r++ {
		cfgs := PolarStarConfigs(r)
		if len(cfgs) == 0 {
			fmt.Fprintf(w, "%-6d %-10s -\n", r, "-")
			continue
		}
		var orders []string
		for _, c := range cfgs {
			orders = append(orders, fmt.Sprintf("%d[%v,q=%d]", c.Order, c.Kind, c.Q))
		}
		fmt.Fprintf(w, "%-6d %-10d %s\n", r, cfgs[0].Order, strings.Join(orders, " "))
	}
}

// HeadlineRatios reproduces the §1.3 headline numbers: geometric-mean
// scale increase of PolarStar over Bundlefly, Dragonfly and 3-D HyperX
// for radixes in [lo, hi] (the paper uses [8, 128]).
type HeadlineRatios struct {
	VsBundlefly float64 // paper: 1.3×
	VsDragonfly float64 // paper: 1.9×
	VsHyperX    float64 // paper: 6.7×
}

// Headline computes the headline geometric-mean ratios.
func Headline(lo, hi int) HeadlineRatios {
	return HeadlineRatios{
		VsBundlefly: ScaleRatioGeomean(lo, hi, BestPolarStar, BestBundlefly),
		VsDragonfly: ScaleRatioGeomean(lo, hi, BestPolarStar, BestDragonfly),
		VsHyperX:    ScaleRatioGeomean(lo, hi, BestPolarStar, BestHyperX3D),
	}
}

// Table1 is the qualitative network-property assessment of the paper
// (Table 1), reproduced as a constant for the psscale tool. Legend:
// ++ very good, + fair, x not good.
const Table1 = `Topology    Direct  Scalability  Stable-Design  D<=3  Bundlability
Fat-tree    x       ++           ++             x     ++
PolarFly    ++      x            +              ++    ++
Slimfly     ++      x            +              ++    ++
3-D HyperX  ++      +            ++             ++    ++
Dragonfly   ++      ++           ++             ++    +
Bundlefly   ++      ++           +              ++    ++
Megafly     x       ++           ++             ++    +
Spectralfly ++      +            +              ++    +
PolarStar   ++      ++           ++             ++    ++
`
