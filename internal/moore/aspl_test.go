package moore

import (
	"math"
	"testing"

	"polarstar/internal/topo"
)

func TestASPLLowerBoundSmallCases(t *testing.T) {
	// K_n: every pair at distance 1, bound must be exactly 1 and tight.
	if aspl, diam := ASPLLowerBound(5, 4); aspl != 1 || diam != 1 {
		t.Errorf("K5 bound = (%v,%d), want (1,1)", aspl, diam)
	}
	// Petersen graph parameters (n=10, d=3) form a Moore graph of
	// diameter 2: bound = (3·1 + 6·2)/9 = 5/3, tight.
	if aspl, diam := ASPLLowerBound(10, 3); math.Abs(aspl-5.0/3.0) > 1e-15 || diam != 2 {
		t.Errorf("Petersen bound = (%v,%d), want (5/3,2)", aspl, diam)
	}
	// Degenerate inputs.
	if aspl, diam := ASPLLowerBound(1, 3); aspl != 0 || diam != 0 {
		t.Errorf("n=1 bound = (%v,%d), want (0,0)", aspl, diam)
	}
	if aspl, diam := ASPLLowerBound(2, 1); aspl != 1 || diam != 1 {
		t.Errorf("K2 bound = (%v,%d), want (1,1)", aspl, diam)
	}
}

func TestASPLDiam3ClosedFormMatchesLayered(t *testing.T) {
	for _, tc := range [][2]int{{50, 7}, {98, 7}, {168, 8}, {1024, 16}, {1330, 17}, {4096, 31}} {
		n, d := tc[0], tc[1]
		cf, ok := ASPLDiam3LowerBound(n, d)
		if !ok {
			t.Fatalf("(%d,%d): closed form unexpectedly infeasible", n, d)
		}
		layered, diam := ASPLLowerBound(n, d)
		if math.Abs(cf-layered) > 1e-12 {
			t.Errorf("(%d,%d): closed form %v != layered %v", n, d, cf, layered)
		}
		if diam > 3 {
			t.Errorf("(%d,%d): layered diameter %d > 3 despite 3-layer fit", n, d, diam)
		}
		// Closed-form algebra check in the full-inner-layer regime.
		if n-1 >= d*d {
			want := 3 - float64(d)*float64(d+1)/float64(n-1)
			if math.Abs(cf-want) > 1e-12 {
				t.Errorf("(%d,%d): closed form %v != 3-d(d+1)/(n-1) = %v", n, d, cf, want)
			}
		}
	}
	// Beyond three layers the closed form must refuse.
	if _, ok := ASPLDiam3LowerBound(1000, 3); ok {
		t.Error("(1000,3) fits three layers? capacity is 3+6+12")
	}
}

// TestASPLBoundIsValid checks the bound really minorizes measured ASPL
// on actual diameter-3 topologies from the paper's families.
func TestASPLBoundIsValid(t *testing.T) {
	er, err := topo.NewER(7)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := topo.NewPolarStar(4, 3, topo.KindIQ)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*struct {
		name string
		n, d int
		aspl float64
	}{
		{er.G.Name(), er.G.N(), er.G.MaxDegree(), er.G.AllPairsStats().AvgPath},
		{ps.G.Name(), ps.G.N(), ps.G.MaxDegree(), ps.G.AllPairsStats().AvgPath},
	} {
		bound, _ := ASPLLowerBound(g.n, g.d)
		if g.aspl < bound-1e-12 {
			t.Errorf("%s: measured ASPL %v below lower bound %v", g.name, g.aspl, bound)
		}
		gap, b2 := ASPLGap(g.aspl, g.n, g.d)
		if b2 != bound || gap < 0 {
			t.Errorf("%s: gap %v / bound %v inconsistent", g.name, gap, b2)
		}
		if gap > 0.25 {
			t.Errorf("%s: gap %v implausibly large for a paper topology", g.name, gap)
		}
	}
}

func TestASPLGapDegenerate(t *testing.T) {
	if gap, _ := ASPLGap(-1, 100, 10); gap != 0 {
		t.Errorf("negative measurement gap = %v, want 0", gap)
	}
	if gap, bound := ASPLGap(2.5, 1, 10); gap != 0 || bound != 0 {
		t.Errorf("n=1 gap = (%v,%v), want (0,0)", gap, bound)
	}
}
