package moore

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

// MeasuredConfig pairs a design-space point with measured structural
// statistics from the constructed graph — Fig 7 with every order verified
// by the bit-parallel all-pairs engine instead of taken from the closed
// form.
type MeasuredConfig struct {
	Config
	Measured bool // false: order above cap or construction failed
	Stats    graph.PathStats
}

// MeasureConfigs constructs every configuration of order ≤ maxOrder and
// measures its exact {diameter, average path length} with the
// bit-parallel all-pairs kernel. Configurations are distributed over a
// worker pool with one BitBFSScratch per worker (each worker runs the
// serial kernel; parallelism comes from measuring many points at once);
// results are returned in input order, so output is deterministic for
// any GOMAXPROCS.
func MeasureConfigs(cfgs []Config, maxOrder int) []MeasuredConfig {
	out := make([]MeasuredConfig, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch graph.BitBFSScratch
			for i := w; i < len(cfgs); i += workers {
				c := cfgs[i]
				out[i] = MeasuredConfig{Config: c}
				if maxOrder > 0 && c.Order > int64(maxOrder) {
					continue
				}
				ps, err := topo.NewPolarStar(c.Q, c.DPrime, c.Kind)
				if err != nil {
					continue
				}
				out[i].Measured = true
				out[i].Stats = ps.G.AllPairsStatsSerial(&scratch)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// WriteFig7Measured renders the Fig 7 design space with measured
// statistics: for every feasible configuration up to maxOrder vertices,
// the constructed order, exact diameter and exact mean path length.
func WriteFig7Measured(w io.Writer, lo, hi, maxOrder int) {
	fmt.Fprintf(w, "%-6s %-22s %-8s %-5s %-8s %s\n",
		"radix", "config", "routers", "diam", "avgpath", "connected")
	for r := lo; r <= hi; r++ {
		cfgs := PolarStarConfigs(r)
		if len(cfgs) == 0 {
			fmt.Fprintf(w, "%-6d -\n", r)
			continue
		}
		for _, m := range MeasureConfigs(cfgs, maxOrder) {
			cell := fmt.Sprintf("%v(q=%d,d'=%d)", m.Kind, m.Q, m.DPrime)
			if !m.Measured {
				fmt.Fprintf(w, "%-6d %-22s %-8d %-5s %-8s skipped (> %d routers)\n",
					r, cell, m.Order, "-", "-", maxOrder)
				continue
			}
			fmt.Fprintf(w, "%-6d %-22s %-8d %-5d %-8.4f %v\n",
				r, cell, m.Order, m.Stats.Diameter, m.Stats.AvgPath, m.Stats.Connected)
		}
	}
}
