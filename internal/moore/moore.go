// Package moore implements the scale analysis of the paper: Moore bounds,
// Moore-bound efficiency, the per-radix largest configuration of every
// compared topology (Fig 1), the diameter-2 factor-graph comparison
// (Fig 4), the PolarStar design space (Fig 7) and the closed forms of
// Equations (1) and (2).
package moore

import (
	"fmt"
	"math"

	"polarstar/internal/gf"
	"polarstar/internal/topo"
)

// Bound returns the Moore bound 1 + d·Σ_{i<D} (d−1)^i for degree d and
// diameter D.
func Bound(d, D int) int64 {
	if d <= 0 || D <= 0 {
		return 1
	}
	sum := int64(0)
	term := int64(1)
	for i := 0; i < D; i++ {
		sum += term
		term *= int64(d - 1)
	}
	return 1 + int64(d)*sum
}

// Diam3Bound returns the diameter-3 Moore bound d³ − d² + d + 1.
func Diam3Bound(d int) int64 {
	dd := int64(d)
	return dd*dd*dd - dd*dd + dd + 1
}

// Diam2Bound returns the diameter-2 Moore bound d² + 1.
func Diam2Bound(d int) int64 {
	return int64(d)*int64(d) + 1
}

// Efficiency returns order / Moore bound for the given radix and diameter.
func Efficiency(order int64, radix, diameter int) float64 {
	if order <= 0 {
		return 0
	}
	return float64(order) / float64(Bound(radix, diameter))
}

// Point is one design point of a topology family: the largest order
// achievable at the given radix, with a description of the configuration.
type Point struct {
	Radix  int
	Order  int64
	Config string
}

// Valid reports whether the family has any configuration at this radix.
func (p Point) Valid() bool { return p.Order > 0 }

// BestPolarStar returns the largest PolarStar at the given radix across
// both supernode kinds and all structure/supernode degree splits (§7.1).
func BestPolarStar(radix int) Point {
	best := Point{Radix: radix}
	for _, kind := range []topo.SupernodeKind{topo.KindIQ, topo.KindPaley} {
		for q := 2; q+1 <= radix; q++ {
			dPrime := radix - (q + 1)
			order := int64(topo.PolarStarOrder(q, dPrime, kind))
			if order > best.Order {
				best.Order = order
				best.Config = fmt.Sprintf("%v q=%d d'=%d", kind, q, dPrime)
			}
		}
	}
	return best
}

// BestPolarStarKind is BestPolarStar restricted to one supernode kind.
func BestPolarStarKind(radix int, kind topo.SupernodeKind) Point {
	best := Point{Radix: radix}
	for q := 2; q+1 <= radix; q++ {
		dPrime := radix - (q + 1)
		order := int64(topo.PolarStarOrder(q, dPrime, kind))
		if order > best.Order {
			best.Order = order
			best.Config = fmt.Sprintf("%v q=%d d'=%d", kind, q, dPrime)
		}
	}
	return best
}

// BestBundlefly returns the largest Bundlefly 2q²(2d'+1) at the radix
// (MMS degree + Paley degree split).
func BestBundlefly(radix int) Point {
	best := Point{Radix: radix}
	for q := 3; q <= radix; q++ {
		md := topo.MMSDegree(q)
		if md == 0 || md >= radix {
			continue
		}
		dPrime := radix - md
		order := int64(topo.BundleflyOrder(q, dPrime))
		if order > best.Order {
			best.Order = order
			best.Config = fmt.Sprintf("q=%d d'=%d", q, dPrime)
		}
	}
	return best
}

// BestDragonfly maximizes a(ah+1) over splits (a−1) + h = radix.
func BestDragonfly(radix int) Point {
	best := Point{Radix: radix}
	for a := 2; a-1 < radix; a++ {
		h := radix - (a - 1)
		order := int64(topo.DragonflyOrder(a, h))
		if order > best.Order {
			best.Order = order
			best.Config = fmt.Sprintf("a=%d h=%d", a, h)
		}
	}
	return best
}

// BestHyperX3D maximizes s1·s2·s3 subject to Σ(s_i − 1) = radix.
func BestHyperX3D(radix int) Point {
	best := Point{Radix: radix}
	for s1 := 2; s1-1 <= radix; s1++ {
		for s2 := s1; (s1-1)+(s2-1) < radix; s2++ {
			s3 := radix - (s1 - 1) - (s2 - 1) + 1
			if s3 < s2 {
				continue
			}
			order := int64(s1) * int64(s2) * int64(s3)
			if order > best.Order {
				best.Order = order
				best.Config = fmt.Sprintf("%dx%dx%d", s1, s2, s3)
			}
		}
	}
	return best
}

// KautzDiam3 returns the bidirectional diameter-3 Kautz point: order
// (d+1)d² with undirected radix 2d, so only even radixes are feasible.
func KautzDiam3(radix int) Point {
	p := Point{Radix: radix}
	if radix%2 == 0 && radix >= 4 {
		d := radix / 2
		p.Order = int64(topo.KautzOrder(d, 2))
		p.Config = fmt.Sprintf("K(%d,2)", d)
	}
	return p
}

// StarMax returns the upper bound on diameter-3 star products built from
// the known factor properties (Fig 1 "StarMax"): the structure graph is
// bounded by the diameter-2 Moore bound d_G² + 1 and the supernode by the
// Property R* bound 2d' + 2 (Proposition 2), maximized over degree splits.
func StarMax(radix int) Point {
	best := Point{Radix: radix}
	for dg := 1; dg <= radix; dg++ {
		dPrime := radix - dg
		order := Diam2Bound(dg) * int64(2*dPrime+2)
		if order > best.Order {
			best.Order = order
			best.Config = fmt.Sprintf("dG=%d d'=%d", dg, dPrime)
		}
	}
	return best
}

// SpectralflyDiam3 returns the largest LPS graph with diameter ≤ 3 at the
// radix, by explicit construction and diameter measurement of candidate
// X^{p,q}. maxOrder caps the search (the diameter check is quadratic).
// Most radixes have no diameter-3 design point (Fig 1).
func SpectralflyDiam3(radix, maxOrder int) Point {
	best := Point{Radix: radix}
	p := radix - 1
	if !gf.IsPrime(p) || p == 2 {
		return best
	}
	for q := 5; ; q += 4 {
		if !gf.IsPrime(q) || q == p {
			continue
		}
		order := topo.LPSOrder(p, q)
		if order == 0 {
			continue
		}
		if order > maxOrder {
			break
		}
		l, err := topo.NewLPS(p, q)
		if err != nil {
			continue
		}
		if d := l.G.Diameter(); d >= 0 && d <= 3 && int64(order) > best.Order {
			best.Order = int64(order)
			best.Config = fmt.Sprintf("X^{%d,%d}", p, q)
		}
	}
	return best
}

// Geomean returns the geometric mean of the values; zero values are
// skipped.
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// ScaleRatioGeomean computes the geometric mean over radixes [lo, hi] of
// numer(r)/denom(r), counting only radixes where both are feasible.
func ScaleRatioGeomean(lo, hi int, numer, denom func(int) Point) float64 {
	var ratios []float64
	for r := lo; r <= hi; r++ {
		a, b := numer(r), denom(r)
		if a.Valid() && b.Valid() {
			ratios = append(ratios, float64(a.Order)/float64(b.Order))
		}
	}
	return Geomean(ratios)
}
