package moore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polarstar/internal/topo"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestMeasureConfigs constructs every radix-10 design point and checks the
// measured structural statistics against the theory: the constructed order
// matches the closed form, the graph is connected, and the diameter obeys
// Thm 4/5 (≤ 3). A cap placed below the largest order must mark exactly
// the above-cap configurations as skipped.
func TestMeasureConfigs(t *testing.T) {
	cfgs := PolarStarConfigs(10)
	if len(cfgs) < 2 {
		t.Fatalf("radix 10: only %d configurations", len(cfgs))
	}
	for _, m := range MeasureConfigs(cfgs, 0) {
		want := int64(topo.PolarStarOrder(m.Q, m.DPrime, m.Kind))
		if m.Order != want {
			t.Errorf("%v: design-space order %d disagrees with PolarStarOrder %d", m.Config, m.Order, want)
		}
		if !m.Measured {
			t.Errorf("%v: unmeasured with no cap", m.Config)
			continue
		}
		if !m.Stats.Connected {
			t.Errorf("%v: constructed graph disconnected", m.Config)
		}
		if m.Stats.Diameter < 1 || m.Stats.Diameter > 3 {
			t.Errorf("%v: measured diameter %d, want ≤ 3", m.Config, m.Stats.Diameter)
		}
		if m.Stats.AvgPath <= 1 || float64(m.Stats.Diameter) < m.Stats.AvgPath {
			t.Errorf("%v: avg path %f outside (1, diameter]", m.Config, m.Stats.AvgPath)
		}
	}

	// Cap below the largest order: configs are sorted descending, so the
	// head must be skipped and the tail measured.
	cap := int(cfgs[len(cfgs)-1].Order)
	for _, m := range MeasureConfigs(cfgs, cap) {
		if got, want := m.Measured, m.Order <= int64(cap); got != want {
			t.Errorf("%v (order %d, cap %d): Measured = %v, want %v", m.Config, m.Order, cap, got, want)
		}
	}
}

// TestMeasureConfigsDeterministic pins the worker-pool output ordering:
// repeated runs must be deeply equal regardless of goroutine scheduling.
func TestMeasureConfigsDeterministic(t *testing.T) {
	cfgs := PolarStarConfigs(9)
	a := MeasureConfigs(cfgs, 0)
	b := MeasureConfigs(cfgs, 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("MeasureConfigs output differs between runs")
	}
}

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; run with -update if intended\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestFigureGoldens locks the rendered figure tables over a small radix
// window against golden files, so formatting or design-space regressions
// surface as a readable diff.
func TestFigureGoldens(t *testing.T) {
	var buf bytes.Buffer
	WriteFig1(&buf, Fig1(8, 12))
	golden(t, "fig1_r8-12.txt", buf.Bytes())

	buf.Reset()
	WriteFig4(&buf, Fig4(6, 10))
	golden(t, "fig4_r6-10.txt", buf.Bytes())

	buf.Reset()
	WriteFig7(&buf, 8, 12)
	golden(t, "fig7_r8-12.txt", buf.Bytes())

	buf.Reset()
	WriteFig7Measured(&buf, 8, 9, 400)
	golden(t, "fig7_measured_r8-9.txt", buf.Bytes())
}
