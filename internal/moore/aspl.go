// Moore-type lower bounds on the average shortest path length of
// degree-bounded graphs — the optimality yardstick of the design-space
// search (internal/search, cmd/pssearch).
//
// From any source of a graph with maximum degree d, at most d vertices
// sit at distance 1, at most d(d−1) at distance 2, and in general at
// most d(d−1)^{i−1} at distance i. Packing the n−1 destinations
// greedily into the nearest layers therefore minorizes the distance sum
// of every source, and averaging gives a lower bound on the ASPL of any
// n-vertex degree-d graph. This layered bound and its diameter-k closed
// forms are the reference used by Shimizu & Mori ("Average shortest
// path length of graphs of diameter 3", arXiv:1606.05119) to normalize
// diameter-3 ASPL, and the yardstick the order/degree-problem community
// reports optimality gaps against; for graphs that fit in three layers
// it specializes to the closed form 3 − d(d+1)/(n−1) once n−1 ≥ d²
// (ASPLDiam3LowerBound). Equality holds exactly for generalized Moore
// graphs: all layers full except possibly the last.
package moore

// ASPLLowerBound returns the layered (Moore-type) lower bound on the
// average shortest path length over ordered distinct pairs of any
// connected n-vertex graph with maximum degree d, together with the
// implied diameter lower bound (the number of layers the greedy packing
// needs). It returns (0, 0) when n < 2 or d < 1, and (1, 1) when the
// packing fits in one layer (complete-graph regime).
func ASPLLowerBound(n, d int) (aspl float64, diam int) {
	if n < 2 || d < 1 {
		return 0, 0
	}
	var sum int64      // minorized distance sum from one source
	rest := int64(n-1) // destinations still to place
	layer := int64(d)  // capacity of the current layer: d(d-1)^{i-1}
	for i := int64(1); rest > 0; i++ {
		take := layer
		if take > rest {
			take = rest
		}
		sum += i * take
		rest -= take
		diam = int(i)
		if layer <= 0 {
			// d = 1 and n > 2: no graph exists; keep the bound finite
			// by stretching into a path-like tail.
			layer = 1
		} else {
			layer *= int64(d - 1)
		}
	}
	return float64(sum) / float64(n-1), diam
}

// ASPLDiam3LowerBound returns the three-layer specialization of the
// layered bound, the form Shimizu & Mori study for diameter-3 graphs:
// when the order fits in three layers (n − 1 ≤ d + d(d−1) + d(d−1)²)
// the first two layers pack full and the remainder sits at distance 3,
// so
//
//	ASPL ≥ (d + 2d(d−1) + 3(n−1−d²)) / (n−1) = 3 − d(d+1)/(n−1) − [small-n terms]
//
// with the bracket vanishing once n−1 ≥ d² (both inner layers full; the
// code packs the layers directly rather than trusting the algebra). ok
// is false when n exceeds the three-layer capacity — the closed form
// does not apply; use ASPLLowerBound.
func ASPLDiam3LowerBound(n, d int) (aspl float64, ok bool) {
	if n < 2 || d < 1 {
		return 0, false
	}
	l1 := int64(d)
	l2 := int64(d) * int64(d-1)
	l3 := l2 * int64(d-1)
	rest := int64(n - 1)
	if rest > l1+l2+l3 {
		return 0, false
	}
	sum := int64(0)
	for i, layer := range [3]int64{l1, l2, l3} {
		take := layer
		if take > rest {
			take = rest
		}
		sum += int64(i+1) * take
		rest -= take
	}
	return float64(sum) / float64(n-1), true
}

// ASPLGap quantifies how far a measured ASPL sits above the layered
// lower bound for an (n, d) point, as a fraction of the bound: 0 is a
// generalized Moore graph, 0.01 is one percent above optimal. Returns
// the bound alongside. A negative measured value or an infeasible point
// yields gap = 0.
func ASPLGap(measured float64, n, d int) (gap, bound float64) {
	bound, _ = ASPLLowerBound(n, d)
	if bound <= 0 || measured <= 0 {
		return 0, bound
	}
	return measured/bound - 1, bound
}
