package moore

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"polarstar/internal/topo"
)

func TestMooreBounds(t *testing.T) {
	cases := []struct {
		d, D int
		want int64
	}{
		{3, 2, 10}, // Petersen
		{7, 2, 50}, // Hoffman–Singleton
		{57, 2, 3250},
		{3, 3, 22},
		{15, 3, 3166}, // d³-d²+d+1 = 3375-225+15+1
	}
	for _, c := range cases {
		if got := Bound(c.d, c.D); got != c.want {
			t.Errorf("Bound(%d,%d) = %d, want %d", c.d, c.D, got, c.want)
		}
	}
	for d := 2; d <= 128; d++ {
		if Bound(d, 3) != Diam3Bound(d) {
			t.Errorf("Diam3Bound(%d) mismatch", d)
		}
		if Bound(d, 2) != Diam2Bound(d) {
			t.Errorf("Diam2Bound(%d) mismatch", d)
		}
	}
}

func TestBestPolarStarKnownPoints(t *testing.T) {
	// Radix 15 must include the Table 3 PS-IQ config q=11, d'=3 with
	// 1064 routers as the largest design.
	p := BestPolarStar(15)
	if p.Order != 1064 {
		t.Errorf("BestPolarStar(15).Order = %d, want 1064", p.Order)
	}
	if !strings.Contains(p.Config, "q=11") {
		t.Errorf("BestPolarStar(15).Config = %q, want q=11", p.Config)
	}
}

// TestPaperClaimIQWinsExceptFourRadixes reproduces the §7.2 claim: for
// radix in [8,128] the largest PolarStar uses the IQ supernode except at
// radixes 23, 50, 56 and 80, where Paley wins.
func TestPaperClaimIQWinsExceptFourRadixes(t *testing.T) {
	paleyWins := map[int]bool{}
	for r := 8; r <= 128; r++ {
		iq := BestPolarStarKind(r, topo.KindIQ)
		pal := BestPolarStarKind(r, topo.KindPaley)
		if pal.Order > iq.Order {
			paleyWins[r] = true
		}
	}
	want := map[int]bool{23: true, 50: true, 56: true, 80: true}
	for r := range want {
		if !paleyWins[r] {
			t.Errorf("radix %d: expected Paley to beat IQ", r)
		}
	}
	for r := range paleyWins {
		if !want[r] {
			t.Errorf("radix %d: Paley unexpectedly beats IQ", r)
		}
	}
}

func TestEquation1OptimalQ(t *testing.T) {
	// Eq (1): the closed form must match brute-force maximization of
	// (q²+q+1)(2d*−2q) over real q (checked on the integer lattice with
	// unconstrained q, tolerance 1).
	for _, dStar := range []int{10, 20, 40, 64, 100, 128} {
		qOpt := OptimalQ(dStar)
		f := func(q float64) float64 { return (q*q + q + 1) * (2*float64(dStar) - 2*q) }
		// The derivative must vanish at qOpt: compare against neighbors.
		if f(qOpt) < f(qOpt-0.01) || f(qOpt) < f(qOpt+0.01) {
			t.Errorf("d*=%d: Eq(1) q=%f is not a local maximum", dStar, qOpt)
		}
		if approx := 2 * float64(dStar) / 3; math.Abs(qOpt-approx) > 1.0 {
			t.Errorf("d*=%d: OptimalQ=%f deviates from 2d*/3=%f by more than 1", dStar, qOpt, approx)
		}
		// The paper's printed radical differs slightly but stays within
		// one unit of the true maximizer (both ≈ 2d*/3).
		if math.Abs(qOpt-PaperOptimalQ(dStar)) > 1.0 {
			t.Errorf("d*=%d: paper form deviates from maximizer by more than 1", dStar)
		}
	}
}

func TestEquation2MaxOrder(t *testing.T) {
	// Eq (2): plugging the real-valued optimal q into the order formula
	// must match (8d³+12d²+18d)/27 closely, and the actual best feasible
	// PolarStar must approach 8/27 of the Moore bound.
	for _, dStar := range []int{32, 64, 128} {
		got := MaxOrderIQ(dStar)
		q := OptimalQ(dStar)
		f := (q*q + q + 1) * (2*float64(dStar) - 2*q)
		if math.Abs(got-f)/f > 0.02 {
			t.Errorf("d*=%d: Eq(2)=%f vs direct %f", dStar, got, f)
		}
	}
	// Asymptotic Moore efficiency 8/27 ≈ 0.296 (within 25%% at radix 128
	// due to prime-power gaps).
	// 8/27 ≈ 0.296 is the asymptote against d³; against the exact Moore
	// bound d³−d²+d+1 the ratio lands slightly above it.
	p := BestPolarStar(128)
	eff := Efficiency(p.Order, 128, 3)
	if eff < 0.22 || eff > 0.32 {
		t.Errorf("radix-128 efficiency = %f, want near 8/27", eff)
	}
}

func TestGeomeanScaleRatios(t *testing.T) {
	// §1.3 headline claims: 1.3× over Bundlefly, 1.9× over Dragonfly,
	// 6.7× over HyperX (geometric mean, radix 8..128). Allow tolerance:
	// our Bundlefly/Dragonfly maximization may differ slightly from the
	// paper's enumeration.
	h := Headline(8, 128)
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s geomean ratio = %.2f, want %.1f ± %.1f", name, got, want, tol)
		}
	}
	check("vs Bundlefly", h.VsBundlefly, 1.3, 0.25)
	check("vs Dragonfly", h.VsDragonfly, 1.9, 0.4)
	check("vs HyperX", h.VsHyperX, 6.7, 1.3)
}

func TestStarMaxDominatesPolarStar(t *testing.T) {
	// PolarStar can never exceed the theoretical star-product bound, and
	// should approach it (§7.2: near-optimal for known factor properties).
	var ratios []float64
	for r := 8; r <= 128; r++ {
		ps, sm := BestPolarStar(r), StarMax(r)
		if !ps.Valid() {
			continue
		}
		if ps.Order > sm.Order {
			t.Errorf("radix %d: PolarStar %d exceeds StarMax %d", r, ps.Order, sm.Order)
		}
		ratios = append(ratios, float64(ps.Order)/float64(sm.Order))
	}
	if g := Geomean(ratios); g < 0.75 {
		t.Errorf("PolarStar/StarMax geomean = %f, want near-optimal (> 0.75)", g)
	}
}

func TestBestDragonflyBalanced(t *testing.T) {
	// The canonical maximum Dragonfly uses a ≈ 2h; check radix 17
	// (Table 3 uses a=12, h=6 — exactly the maximizer).
	p := BestDragonfly(17)
	if p.Config != "a=12 h=6" || p.Order != 876 {
		t.Errorf("BestDragonfly(17) = %+v, want a=12 h=6, 876", p)
	}
}

func TestBestHyperX3DBalanced(t *testing.T) {
	p := BestHyperX3D(23)
	if p.Order != 648 {
		t.Errorf("BestHyperX3D(23).Order = %d, want 648 (9x9x8)", p.Order)
	}
}

func TestKautzPoints(t *testing.T) {
	p := KautzDiam3(24)
	if p.Order != 13*144 {
		t.Errorf("KautzDiam3(24).Order = %d, want 1872", p.Order)
	}
	if KautzDiam3(23).Valid() {
		t.Error("odd radix should have no bidirectional Kautz point")
	}
}

func TestFig4Points(t *testing.T) {
	er := BestERPoint(8) // q=7: 57 vertices
	if er.Order != 57 {
		t.Errorf("BestERPoint(8).Order = %d, want 57", er.Order)
	}
	if BestERPoint(7).Valid() {
		t.Error("radix 7 needs q=6, not a prime power")
	}
	mms := BestMMSPoint(7) // q=5: Hoffman–Singleton
	if mms.Order != 50 {
		t.Errorf("BestMMSPoint(7).Order = %d, want 50", mms.Order)
	}
	pal := PaleyPoint(6) // q=13
	if pal.Order != 13 {
		t.Errorf("PaleyPoint(6).Order = %d, want 13", pal.Order)
	}
	if PaleyPoint(5).Valid() {
		t.Error("odd-degree Paley point should be infeasible")
	}
}

func TestPolarStarConfigsEveryRadix(t *testing.T) {
	// §1.3: PolarStar exists with multiple configurations for every radix
	// in [8, 128].
	for r := 8; r <= 128; r++ {
		cfgs := PolarStarConfigs(r)
		if len(cfgs) < 2 {
			t.Errorf("radix %d: only %d configurations", r, len(cfgs))
		}
		for i := 1; i < len(cfgs); i++ {
			if cfgs[i].Order > cfgs[i-1].Order {
				t.Fatalf("radix %d: configs not sorted", r)
			}
		}
	}
}

func TestWriteFigures(t *testing.T) {
	var buf bytes.Buffer
	WriteFig1(&buf, Fig1(15, 17))
	if !strings.Contains(buf.String(), "1064") {
		t.Error("Fig1 output missing the radix-15 PolarStar point")
	}
	buf.Reset()
	WriteFig4(&buf, Fig4(7, 8))
	if !strings.Contains(buf.String(), "50 (MMS_5)") {
		t.Error("Fig4 output missing Hoffman–Singleton")
	}
	buf.Reset()
	WriteFig7(&buf, 15, 15)
	if !strings.Contains(buf.String(), "1064") {
		t.Error("Fig7 output missing largest radix-15 order")
	}
	if !strings.Contains(Table1, "PolarStar") {
		t.Error("Table1 missing PolarStar row")
	}
}

func TestSpectralflySmallDesignPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Radix 6 → p=5: X^{5,13} has 2184 vertices; diameter exceeds 3, so
	// the largest diameter-3 point at radix 6 is a smaller q (if any).
	p := SpectralflyDiam3(6, 3000)
	if p.Valid() && p.Order > 3000 {
		t.Errorf("cap violated: %+v", p)
	}
	// Radix 7 → p=6 not prime: no point.
	if SpectralflyDiam3(7, 3000).Valid() {
		t.Error("radix 7 should have no LPS point")
	}
}
