package moore

import (
	"fmt"
	"math"
	"sort"

	"polarstar/internal/gf"
	"polarstar/internal/topo"
)

// Config is one feasible PolarStar configuration (a Fig 7 point).
type Config struct {
	Radix  int
	Q      int
	DPrime int
	Kind   topo.SupernodeKind
	Order  int64
}

func (c Config) String() string {
	return fmt.Sprintf("PolarStar-%v(q=%d,d'=%d): radix %d, %d routers", c.Kind, c.Q, c.DPrime, c.Radix, c.Order)
}

// PolarStarConfigs enumerates every feasible PolarStar configuration at
// the given radix, largest first (Fig 7: the design space offers many
// orders per radix).
func PolarStarConfigs(radix int) []Config {
	var out []Config
	for _, kind := range []topo.SupernodeKind{topo.KindIQ, topo.KindPaley} {
		for q := 2; q+1 <= radix; q++ {
			dPrime := radix - (q + 1)
			if order := topo.PolarStarOrder(q, dPrime, kind); order > 0 {
				out = append(out, Config{Radix: radix, Q: q, DPrime: dPrime, Kind: kind, Order: int64(order)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order > out[j].Order })
	return out
}

// OptimalQ returns the real-valued maximizer of the PolarStar-IQ order
// (q²+q+1)(2d*−2q) over q for fixed product degree dStar:
//
//	q* = ((d*−1) + sqrt((d*−1)(d*+2))) / 3  ≈  2d*/3.
//
// The paper's Equation (1) prints sqrt((d*−1)(d*−2)); setting the
// derivative −6q² + (2d*−2)·2q + 2(d*−1) = 0 gives (d*+2) in the
// radical. Both forms agree with 2d*/3 to within one unit for all
// relevant radixes; see EXPERIMENTS.md (E18) for the note.
func OptimalQ(dStar int) float64 {
	d := float64(dStar)
	return ((d - 1) + math.Sqrt((d-1)*(d+2))) / 3
}

// PaperOptimalQ returns Equation (1) exactly as printed in the paper,
// kept for comparison against OptimalQ.
func PaperOptimalQ(dStar int) float64 {
	d := float64(dStar)
	return ((d - 1) + math.Sqrt((d-1)*(d-2))) / 3
}

// MaxOrderIQ returns Equation (2): the asymptotic maximum PolarStar-IQ
// order (8d*³ + 12d*² + 18d*)/27 for radix dStar.
func MaxOrderIQ(dStar int) float64 {
	d := float64(dStar)
	return (8*d*d*d + 12*d*d + 18*d) / 27
}

// Diam2Point mirrors Point for the diameter-2 families of Fig 4.

// BestERPoint returns the ER graph point at the radix: order q²+q+1 at
// degree q+1 when q = radix−1 is a prime power.
func BestERPoint(radix int) Point {
	p := Point{Radix: radix}
	q := radix - 1
	if q >= 2 && isPrimePower(q) {
		p.Order = int64(q*q + q + 1)
		p.Config = fmt.Sprintf("ER_%d", q)
	}
	return p
}

// BestMMSPoint returns the MMS graph point: order 2q² at degree
// (3q−δ)/2 when the radix matches such a q.
func BestMMSPoint(radix int) Point {
	p := Point{Radix: radix}
	for q := 3; q <= radix; q++ {
		if topo.MMSDegree(q) == radix {
			p.Order = int64(topo.MMSOrder(q))
			p.Config = fmt.Sprintf("MMS_%d", q)
		}
	}
	return p
}

// PaleyPoint returns the Paley graph point: order 2d+1 at degree d when
// 2d+1 is a prime power ≡ 1 mod 4.
func PaleyPoint(radix int) Point {
	p := Point{Radix: radix}
	q := 2*radix + 1
	if radix >= 2 && radix%2 == 0 && isPrimePower(q) && q%4 == 1 {
		p.Order = int64(q)
		p.Config = fmt.Sprintf("Paley(%d)", q)
	}
	return p
}

// CayleyDiam2Point returns the reference curve for the best known
// diameter-2 Cayley graphs (Abas 2017), which reach roughly half the
// Moore bound: order ⌊(d²+d+2)/2⌋. This is a published closed-form scale
// reference, not an explicit construction in this repository.
func CayleyDiam2Point(radix int) Point {
	d := int64(radix)
	return Point{Radix: radix, Order: (d*d + d + 2) / 2, Config: "Cayley(Abas)"}
}

func isPrimePower(q int) bool { return gf.IsPrimePower(q) }
