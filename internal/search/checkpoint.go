// Checkpoint/resume: the full engine state — every searcher's graph,
// rng position, costs and counters, plus the global best — serializes
// to indented JSON whose bytes are a pure function of that state.
// Resuming a checkpoint and running to the same Params.Epochs therefore
// re-emits an identical checkpoint (the CI smoke asserts this with cmp),
// and resuming with a higher Epochs continues the run exactly as if it
// had never stopped.
package search

import (
	"encoding/json"
	"fmt"
	"os"

	"polarstar/internal/graph"
)

// CheckpointSchema identifies the checkpoint format.
const CheckpointSchema = "pssearch-checkpoint/v1"

// SearcherState is one annealer's serialized state.
type SearcherState struct {
	ID          int        `json:"id"`
	Rng         string     `json:"rng"` // splitmix64 position, hex
	Cost        int64      `json:"cost"`
	BestCost    int64      `json:"best_cost"`
	SinceResync int        `json:"since_resync"`
	Counters    Counters   `json:"counters"`
	Edges       [][2]int32 `json:"edges"`
	BestEdges   [][2]int32 `json:"best_edges"`
}

// Checkpoint is the serialized engine.
type Checkpoint struct {
	Schema     string          `json:"schema"`
	Name       string          `json:"name"`
	N          int             `json:"n"`
	Params     Params          `json:"params"`
	Epoch      int             `json:"epoch"`
	BestCost   int64           `json:"best_cost"`
	BestEdges  [][2]int32      `json:"best_edges"`
	Trajectory []EpochStat     `json:"trajectory"`
	States     []SearcherState `json:"states"`
}

// Checkpoint captures the engine's current state.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Schema:     CheckpointSchema,
		Name:       e.name,
		N:          e.n,
		Params:     e.p,
		Epoch:      e.epoch,
		BestCost:   e.bestCost,
		BestEdges:  e.bestEdges,
		Trajectory: e.traj,
	}
	for _, s := range e.searchers {
		cp.States = append(cp.States, SearcherState{
			ID:          s.id,
			Rng:         fmt.Sprintf("%016x", s.rng.x),
			Cost:        s.cost,
			BestCost:    s.bestCost,
			SinceResync: s.sinceResync,
			Counters:    s.ctr,
			Edges:       edgesOf(s.d.Graph()),
			BestEdges:   s.bestEdges,
		})
	}
	return cp
}

// Restore rebuilds an engine from a checkpoint. Workers comes from the
// caller (it is not part of the serialized state); epochs may be raised
// to continue a finished run.
func Restore(cp *Checkpoint, workers, epochs int) (*Engine, error) {
	if cp.Schema != CheckpointSchema {
		return nil, fmt.Errorf("search: checkpoint schema %q, want %q", cp.Schema, CheckpointSchema)
	}
	if len(cp.States) == 0 {
		return nil, fmt.Errorf("search: checkpoint has no searcher states")
	}
	p := cp.Params
	p.Workers = workers
	if epochs > p.Epochs {
		p.Epochs = epochs
	}
	if len(cp.States) != p.Searchers {
		return nil, fmt.Errorf("search: checkpoint has %d states for %d searchers", len(cp.States), p.Searchers)
	}
	e := &Engine{
		p:         p,
		name:      cp.Name,
		n:         cp.N,
		bestCost:  cp.BestCost,
		bestEdges: cp.BestEdges,
		epoch:     cp.Epoch,
		traj:      cp.Trajectory,
	}
	e.initPools()
	for i, st := range cp.States {
		if st.ID != i {
			return nil, fmt.Errorf("search: checkpoint state %d has id %d", i, st.ID)
		}
		var x uint64
		if _, err := fmt.Sscanf(st.Rng, "%x", &x); err != nil {
			return nil, fmt.Errorf("search: state %d rng %q: %v", i, st.Rng, err)
		}
		s := &searcher{
			id:          st.ID,
			d:           nil,
			rng:         splitmix{x: x},
			cost:        st.Cost,
			bestCost:    st.BestCost,
			bestEdges:   st.BestEdges,
			sinceResync: st.SinceResync,
			ctr:         st.Counters,
		}
		s.d = graph.NewDeltaStatsPool(buildFromEdges(cp.Name, cp.N, st.Edges), e.pools[0])
		if got := costOf(s.d, cp.N); got != st.Cost {
			return nil, fmt.Errorf("search: state %d cost %d does not match its graph (recomputed %d)", i, st.Cost, got)
		}
		e.searchers = append(e.searchers, s)
	}
	return e, nil
}

// WriteCheckpoint writes the checkpoint as indented JSON with a trailing
// newline. The encoding is deterministic: struct fields in declaration
// order, no maps, no timestamps.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(b, cp); err != nil {
		return nil, fmt.Errorf("search: checkpoint %s: %v", path, err)
	}
	return cp, nil
}
