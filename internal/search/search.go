// Package search is the design-space engine of cmd/pssearch: simulated
// annealing over degree-bounded graphs using 2-opt edge swaps, with
// graph.DeltaStats as the incremental ASPL oracle (only sources whose
// BFS tree can have changed are re-evaluated, with full resyncs on a
// fixed accepted-swap cadence).
//
// Determinism contract (matching the sim engine's): a run's entire
// output — best graph, cost, trajectory, every counter — is a pure
// function of (start graph, Params minus Workers). Each searcher owns a
// splitmix64 stream seeded from (Seed, searcher id) and shares nothing
// during an epoch; searchers synchronize only at serial inter-epoch
// barriers, where aggregation and the best-so-far exchange walk them in
// ascending id order. Workers is a pure parallelism budget: the engine
// splits it between goroutines driving searchers and per-evaluation
// depth (graph.EvalPool workers inside each DeltaStats.Apply), and
// neither axis can change a result bit — driver assignment only decides
// which goroutine runs which searcher, and the pooled delta evaluation
// is bit-identical to serial at any width (its workers write disjoint
// task slots reduced in fixed order).
//
// The objective is the integer cost Σd(s,t) + missing·n over ordered
// pairs, where missing counts unreachable pairs and n is the virtual
// distance penalizing disconnection: minimizing it minimizes ASPL while
// strictly preferring more-connected graphs, and integer comparison
// keeps acceptance decisions exact.
package search

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
)

// Params configures a search run. The zero value is not runnable; see
// WithDefaults.
type Params struct {
	Seed        int64   `json:"seed"`
	Searchers   int     `json:"searchers"`    // independent annealers
	Epochs      int     `json:"epochs"`       // serial barriers (total, including completed ones on resume)
	Iters       int     `json:"iters"`        // proposals per searcher per epoch
	InitTemp    float64 `json:"init_temp"`    // Metropolis temperature at epoch 0, in cost units
	Cooling     float64 `json:"cooling"`      // per-epoch geometric temperature factor
	ResyncEvery int     `json:"resync_every"` // accepted swaps between full resyncs (0: never)

	// Workers is the run's total parallelism budget. The engine splits
	// it between searcher-level drivers (min(Workers, Searchers)
	// goroutines) and intra-evaluation depth (Workers/drivers pool
	// workers inside each delta evaluation) — few large-n searchers get
	// deep per-Apply parallelism, many searchers get one goroutine each
	// — with drivers·intra ≤ Workers, so the budget never oversubscribes.
	// It does not affect any result and is deliberately excluded from
	// checkpoints.
	Workers int `json:"-"`

	// TimeEvals records a wall-clock histogram of delta-evaluation
	// latencies (Result.EvalNS). Volatile by nature, it is excluded
	// from checkpoints and never influences search decisions.
	TimeEvals bool `json:"-"`
}

// WithDefaults fills unset fields with usable values: 4 searchers, 8
// epochs of 500 iterations, greedy-with-sideways acceptance (temperature
// 0), resync every 256 accepted swaps, serial execution.
func (p Params) WithDefaults() Params {
	if p.Searchers <= 0 {
		p.Searchers = 4
	}
	if p.Epochs <= 0 {
		p.Epochs = 8
	}
	if p.Iters <= 0 {
		p.Iters = 500
	}
	if p.Cooling <= 0 || p.Cooling > 1 {
		p.Cooling = 0.85
	}
	if p.ResyncEvery < 0 {
		p.ResyncEvery = 0
	} else if p.ResyncEvery == 0 {
		p.ResyncEvery = 256
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	return p
}

// EpochStat is one point of the best-cost trajectory, recorded at each
// serial barrier.
type EpochStat struct {
	Epoch    int     `json:"epoch"`
	BestCost int64   `json:"best_cost"`
	BestASPL float64 `json:"best_aspl"`
	Proposed int64   `json:"proposed"`
	Accepted int64   `json:"accepted"`
}

// Counters aggregates searcher telemetry; all values are deterministic.
type Counters struct {
	Proposed     int64 `json:"proposed"`
	Accepted     int64 `json:"accepted"`
	Invalid      int64 `json:"invalid"` // proposals rejected by CanSwap
	Evals        int64 `json:"evals"`
	DirtyTotal   int64 `json:"dirty_total"`
	FullRebuilds int64 `json:"full_rebuilds"`
	Resyncs      int64 `json:"resyncs"`
	Drift        int64 `json:"drift"` // resyncs that found divergence (must stay 0)

	// DistsBytes is the high-water probe-buffer footprint (bytes) any
	// searcher's delta oracle needed — max-merged, not summed, so it
	// reads as "peak per-searcher memory" at paper scale. A pure
	// function of the swap sequence (graph.DeltaStats tracks used
	// length, not capacity), so it survives checkpoint/resume exactly.
	DistsBytes int64 `json:"dists_bytes"`
}

func (c *Counters) add(o Counters) {
	c.Proposed += o.Proposed
	c.Accepted += o.Accepted
	c.Invalid += o.Invalid
	c.Evals += o.Evals
	c.DirtyTotal += o.DirtyTotal
	c.FullRebuilds += o.FullRebuilds
	c.Resyncs += o.Resyncs
	c.Drift += o.Drift
	c.DistsBytes = max(c.DistsBytes, o.DistsBytes)
}

// Result is the outcome of a run: the best graph found, its exact
// statistics (recomputed from scratch, not trusted from the delta
// state), and the run telemetry.
type Result struct {
	Best       *graph.Graph
	BestCost   int64
	Stats      graph.PathStats
	Trajectory []EpochStat
	Counters   Counters

	// EvalNS is the delta-evaluation latency histogram, present only
	// when Params.TimeEvals was set; merged across searchers in id
	// order.
	EvalNS *obs.Histogram
}

// searcher is one annealer: an editable graph under DeltaStats, a
// private rng stream, and the current/best costs.
type searcher struct {
	id          int
	d           *graph.DeltaStats
	rng         splitmix
	cost        int64
	bestCost    int64
	bestEdges   [][2]int32
	sinceResync int
	ctr         Counters
	evalNS      *obs.Histogram // nil unless Params.TimeEvals
}

// Engine drives a deterministic multi-searcher run epoch by epoch. It is
// not safe for concurrent use; one Engine per run.
type Engine struct {
	p         Params
	name      string
	n         int
	searchers []*searcher
	bestCost  int64
	bestEdges [][2]int32
	epoch     int
	traj      []EpochStat

	// Workers-budget split: drivers goroutines run searchers, each
	// holding one intra-wide EvalPool for its delta evaluations.
	drivers int
	intra   int
	pools   []*graph.EvalPool // one per driver; pools[w] belongs to driver w
}

// splitWorkers divides the Workers budget between searcher drivers and
// intra-evaluation pool width: searcher-level parallelism is the scarce
// axis (bounded by Searchers), so it is filled first and the remaining
// budget deepens each evaluation. drivers·intra ≤ workers always, so a
// budget of GOMAXPROCS never oversubscribes the machine — pool workers
// run inside an Apply while their driver blocks on it, never alongside.
func splitWorkers(workers, searchers int) (drivers, intra int) {
	if workers < 1 {
		workers = 1
	}
	drivers = min(workers, searchers)
	if drivers < 1 {
		drivers = 1
	}
	return drivers, workers / drivers
}

// WorkerSplit reports the effective Workers-budget split: how many
// goroutines drive searchers and how many pool workers each delta
// evaluation shards across (drivers·intra ≤ Params.Workers).
func (e *Engine) WorkerSplit() (drivers, intra int) { return e.drivers, e.intra }

// initPools materializes the budget split. Pools are passive (no
// goroutines at rest), so engines need no teardown.
func (e *Engine) initPools() {
	e.drivers, e.intra = splitWorkers(e.p.Workers, e.p.Searchers)
	e.pools = make([]*graph.EvalPool, e.drivers)
	for i := range e.pools {
		e.pools[i] = graph.NewEvalPool(e.intra)
	}
}

// New builds an engine searching from the given start graph. The graph
// must be connected-agnostic but loop-free and have at least two edges
// (2-opt needs two distinct edges to exchange).
func New(start *graph.Graph, p Params) (*Engine, error) {
	p = p.WithDefaults()
	if start.M() < 2 {
		return nil, fmt.Errorf("search: start graph %q has %d edges; 2-opt needs at least 2", start.Name(), start.M())
	}
	if start.NumLoops() > 0 {
		return nil, fmt.Errorf("search: start graph %q has self-loops", start.Name())
	}
	e := &Engine{p: p, name: start.Name(), n: start.N()}
	e.initPools()
	for id := 0; id < p.Searchers; id++ {
		// Construction runs on this goroutine, so sharing pool 0 across
		// the sequential initial builds is safe.
		s := &searcher{id: id, d: graph.NewDeltaStatsPool(start, e.pools[0]), rng: newSplitmix(p.Seed, id)}
		if p.TimeEvals {
			s.evalNS = &obs.Histogram{}
		}
		s.cost = costOf(s.d, e.n)
		s.bestCost = s.cost
		s.bestEdges = edgesOf(s.d.Graph())
		e.searchers = append(e.searchers, s)
	}
	e.bestCost = e.searchers[0].cost
	e.bestEdges = e.searchers[0].bestEdges
	return e, nil
}

// costOf is the integer annealing objective of the current graph state.
func costOf(d *graph.DeltaStats, n int) int64 {
	sum, pairs := d.SumPairs()
	missing := int64(n)*int64(n-1) - pairs
	return sum + missing*int64(n)
}

// edgesOf snapshots a graph's edge set as sorted (u < v) int32 pairs.
func edgesOf(g *graph.Graph) [][2]int32 {
	es := g.Edges()
	out := make([][2]int32, len(es))
	for i, e := range es {
		out[i] = [2]int32{int32(e[0]), int32(e[1])}
	}
	return out
}

// Epoch returns the number of completed epochs.
func (e *Engine) Epoch() int { return e.epoch }

// Params returns the engine's effective (defaulted) parameters.
func (e *Engine) Params() Params { return e.p }

// Name returns the start graph's name; N its vertex count.
func (e *Engine) Name() string { return e.name }
func (e *Engine) N() int       { return e.n }

// temperature at the current epoch: geometric cooling from InitTemp.
func (e *Engine) temperature() float64 {
	if e.p.InitTemp <= 0 {
		return 0
	}
	return e.p.InitTemp * math.Pow(e.p.Cooling, float64(e.epoch))
}

// Run advances the engine to Params.Epochs completed epochs (a no-op if
// already there, which is what makes checkpoint round-trips byte-stable)
// and returns the result.
func (e *Engine) Run() *Result {
	for e.epoch < e.p.Epochs {
		e.runEpoch()
	}
	return e.result()
}

// runEpoch runs every searcher for Iters proposals — across the
// budget's driver goroutines, each lending its private EvalPool to
// whichever searcher it currently runs — and then performs the serial
// barrier: aggregate in id order, update the global best, hand the
// global best to the worst searcher, and record the trajectory point.
func (e *Engine) runEpoch() {
	temp := e.temperature()
	if e.pools == nil {
		e.initPools()
	}
	if e.drivers <= 1 {
		for _, s := range e.searchers {
			s.d.SetPool(e.pools[0])
			s.runEpoch(e.p.Iters, temp, e.p.ResyncEvery, e.n)
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < e.drivers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.searchers) {
						return
					}
					// Pool w is owned by this driver: a searcher uses it
					// only while this goroutine runs it serially.
					e.searchers[i].d.SetPool(e.pools[w])
					e.searchers[i].runEpoch(e.p.Iters, temp, e.p.ResyncEvery, e.n)
				}
			}(w)
		}
		wg.Wait()
	}
	e.epoch++

	// Serial barrier, ascending id order throughout.
	var proposed, accepted int64
	for _, s := range e.searchers {
		proposed += s.ctr.Proposed
		accepted += s.ctr.Accepted
		if s.bestCost < e.bestCost {
			e.bestCost = s.bestCost
			e.bestEdges = s.bestEdges
		}
	}
	// Best-so-far exchange: the currently worst searcher (highest cost,
	// highest id on ties) restarts from the global best.
	worst := e.searchers[0]
	for _, s := range e.searchers[1:] {
		if s.cost >= worst.cost {
			worst = s
		}
	}
	if worst.cost > e.bestCost {
		g := buildFromEdges(e.name, e.n, e.bestEdges)
		// The barrier is serial, so pool 0 is free to shard the rebuild;
		// the next epoch re-points the searcher at its driver's pool.
		worst.d = graph.NewDeltaStatsPool(g, e.pools[0])
		worst.cost = costOf(worst.d, e.n)
	}
	bestASPL := 0.0
	if pairs := int64(e.n) * int64(e.n-1); pairs > 0 {
		// Exact only for connected bests; the cost still orders
		// disconnected ones correctly via the missing-pair penalty.
		bestASPL = float64(e.bestCost) / float64(pairs)
	}
	e.traj = append(e.traj, EpochStat{
		Epoch:    e.epoch,
		BestCost: e.bestCost,
		BestASPL: bestASPL,
		Proposed: proposed,
		Accepted: accepted,
	})
}

// buildFromEdges reconstructs a graph from an edge snapshot.
func buildFromEdges(name string, n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(name, n)
	for _, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}

// result finalizes the run: the best graph is rebuilt from its edge
// snapshot and its statistics recomputed from scratch.
func (e *Engine) result() *Result {
	r := &Result{
		Best:       buildFromEdges(e.name+"-best", e.n, e.bestEdges),
		BestCost:   e.bestCost,
		Trajectory: append([]EpochStat(nil), e.traj...),
	}
	r.Stats = r.Best.AllPairsStats()
	for _, s := range e.searchers {
		r.Counters.add(s.ctr)
		if s.evalNS != nil {
			if r.EvalNS == nil {
				r.EvalNS = &obs.Histogram{}
			}
			r.EvalNS.Merge(s.evalNS)
		}
	}
	return r
}

// runEpoch executes iters proposals on this searcher.
func (s *searcher) runEpoch(iters int, temp float64, resyncEvery, n int) {
	g := s.d.Graph()
	for i := 0; i < iters; i++ {
		s.ctr.Proposed++
		sw := proposeSwap(g, &s.rng)
		if !s.d.CanSwap(sw) {
			s.ctr.Invalid++
			continue
		}
		if s.evalNS != nil {
			t0 := time.Now()
			s.d.Apply(sw)
			s.evalNS.Observe(time.Since(t0).Nanoseconds())
		} else {
			s.d.Apply(sw)
		}
		newCost := costOf(s.d, n)
		delta := newCost - s.cost
		accept := delta <= 0
		if !accept && temp > 0 {
			accept = s.rng.float64() < math.Exp(-float64(delta)/temp)
		}
		if !accept {
			s.d.Revert()
			continue
		}
		s.ctr.Accepted++
		s.cost = newCost
		if newCost < s.bestCost {
			s.bestCost = newCost
			s.bestEdges = edgesOf(s.d.Graph())
		}
		if resyncEvery > 0 {
			s.sinceResync++
			if s.sinceResync >= resyncEvery {
				s.sinceResync = 0
				if s.d.Resync() {
					s.ctr.Drift++
				}
			}
		}
	}
	// Harvest the oracle's telemetry into the serializable counters, so
	// checkpoints carry it and a resumed run reports exactly what an
	// uninterrupted one would.
	s.ctr.Evals += s.d.Evals
	s.ctr.DirtyTotal += s.d.DirtyTotal
	s.ctr.FullRebuilds += s.d.FullRebuilds
	s.ctr.Resyncs += s.d.Resyncs
	s.ctr.DistsBytes = max(s.ctr.DistsBytes, s.d.DistsBytes)
	s.d.Evals, s.d.DirtyTotal, s.d.FullRebuilds, s.d.Resyncs = 0, 0, 0, 0
}

// proposeSwap draws a uniformly random ordered arc pair: each arc
// contributes an oriented edge, so all four orientations of an edge pair
// are equally likely. Validity (distinctness, non-parallel results) is
// checked by the caller via CanSwap.
func proposeSwap(g *graph.Graph, rng *splitmix) graph.Swap {
	c1 := rng.intn(g.NumChannels())
	c2 := rng.intn(g.NumChannels())
	u1 := arcOwner(g, c1)
	u2 := arcOwner(g, c2)
	return graph.Swap{A: int32(u1), B: int32(g.ChannelTo(c1)), C: int32(u2), D: int32(g.ChannelTo(c2))}
}

// arcOwner finds the vertex whose CSR window contains arc c: the first
// u whose window ends past c. FirstChannel(N()) is the total arc count,
// so the probe is in range for every u.
func arcOwner(g *graph.Graph, c int) int {
	return sort.Search(g.N(), func(u int) bool { return g.FirstChannel(u+1) > c })
}
