package search

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

func startGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := topo.NewJellyfish(64, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testParams() Params {
	return Params{
		Seed:        7,
		Searchers:   4,
		Epochs:      4,
		Iters:       200,
		InitTemp:    40,
		Cooling:     0.8,
		ResyncEvery: 64,
	}
}

func runOnce(t testing.TB, workers int) *Result {
	t.Helper()
	p := testParams()
	p.Workers = workers
	e, err := New(startGraph(t), p)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

// TestSearchDeterminism pins the determinism contract: identical results
// at workers 1, 4 and 16 — best graph, cost, trajectory, every counter.
func TestSearchDeterminism(t *testing.T) {
	ref := runOnce(t, 1)
	for _, workers := range []int{4, 16} {
		got := runOnce(t, workers)
		if got.BestCost != ref.BestCost {
			t.Errorf("workers=%d: best cost %d != %d", workers, got.BestCost, ref.BestCost)
		}
		if got.Stats != ref.Stats {
			t.Errorf("workers=%d: stats %+v != %+v", workers, got.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(got.Trajectory, ref.Trajectory) {
			t.Errorf("workers=%d: trajectories differ", workers)
		}
		if got.Counters != ref.Counters {
			t.Errorf("workers=%d: counters %+v != %+v", workers, got.Counters, ref.Counters)
		}
		if !reflect.DeepEqual(got.Best.Edges(), ref.Best.Edges()) {
			t.Errorf("workers=%d: best graphs differ", workers)
		}
	}
	if ref.Counters.Drift != 0 {
		t.Errorf("resync drift detected: %d", ref.Counters.Drift)
	}
}

// TestSplitWorkers pins the budget rules: searcher-level parallelism
// fills first (it is bounded by Searchers), the remainder deepens each
// evaluation, and drivers·intra never exceeds the budget.
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		workers, searchers, drivers, intra int
	}{
		{0, 4, 1, 1},   // unset budget: fully serial
		{1, 4, 1, 1},   // today's default
		{4, 4, 4, 1},   // many searchers: one goroutine each
		{8, 4, 4, 2},   // spare budget becomes per-Apply depth
		{8, 2, 2, 4},   // few searchers: deep Apply parallelism
		{8, 1, 1, 8},   // one big-n searcher: all depth
		{16, 4, 4, 4},  //
		{3, 2, 2, 1},   // odd budget: floor division, never oversubscribe
		{7, 3, 3, 2},   //
		{2, 16, 2, 1},  // budget below searcher count
		{16, 16, 16, 1}, //
	}
	for _, c := range cases {
		drivers, intra := splitWorkers(c.workers, c.searchers)
		if drivers != c.drivers || intra != c.intra {
			t.Errorf("splitWorkers(%d, %d) = (%d, %d), want (%d, %d)",
				c.workers, c.searchers, drivers, intra, c.drivers, c.intra)
		}
		if c.workers > 0 && drivers*intra > c.workers {
			t.Errorf("splitWorkers(%d, %d) oversubscribes: %d·%d", c.workers, c.searchers, drivers, intra)
		}
	}
}

// TestSearchDeterminismBudget pins that the Workers budget — including
// splits that activate intra-Apply pooling (searchers=2, workers=8 →
// 2 drivers × 4-wide pools) — cannot change any result bit. Larger
// start graph than TestSearchDeterminism so the pooled phases actually
// shard.
func TestSearchDeterminismBudget(t *testing.T) {
	run := func(workers int) *Result {
		g, err := topo.NewJellyfish(256, 8, 13)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Seed: 11, Searchers: 2, Epochs: 3, Iters: 120,
			InitTemp: 64, Cooling: 0.8, ResyncEvery: 32, Workers: workers}
		e, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		wantDrivers, wantIntra := splitWorkers(workers, 2)
		if d, i := e.WorkerSplit(); d != wantDrivers || i != wantIntra {
			t.Fatalf("workers=%d: split (%d,%d), want (%d,%d)", workers, d, i, wantDrivers, wantIntra)
		}
		return e.Run()
	}
	ref := run(1)
	if ref.Counters.DistsBytes <= 0 {
		t.Error("DistsBytes high-water not recorded")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if got.BestCost != ref.BestCost || got.Counters != ref.Counters {
			t.Errorf("workers=%d: cost/counters differ: %d %+v vs %d %+v",
				workers, got.BestCost, got.Counters, ref.BestCost, ref.Counters)
		}
		if !reflect.DeepEqual(got.Trajectory, ref.Trajectory) {
			t.Errorf("workers=%d: trajectories differ", workers)
		}
		if !reflect.DeepEqual(got.Best.Edges(), ref.Best.Edges()) {
			t.Errorf("workers=%d: best graphs differ", workers)
		}
	}
}

// TestSearchImproves checks the annealer actually lowers the cost on a
// random-regular start, that the reported stats match the returned
// graph, and that the best graph preserves the degree sequence.
func TestSearchImproves(t *testing.T) {
	start := startGraph(t)
	startCost := startCostOf(t, start)
	r := runOnce(t, 1)
	if r.BestCost >= startCost {
		t.Errorf("search did not improve: %d -> %d", startCost, r.BestCost)
	}
	if got := r.Best.AllPairsStats(); got != r.Stats {
		t.Errorf("result stats %+v do not match best graph %+v", r.Stats, got)
	}
	for v := 0; v < start.N(); v++ {
		if r.Best.Degree(v) != start.Degree(v) {
			t.Fatalf("vertex %d degree changed: %d -> %d", v, start.Degree(v), r.Best.Degree(v))
		}
	}
	if len(r.Trajectory) != 4 {
		t.Errorf("trajectory has %d points, want 4", len(r.Trajectory))
	}
	last := r.Trajectory[len(r.Trajectory)-1]
	if last.BestCost != r.BestCost {
		t.Errorf("trajectory tail %d != result %d", last.BestCost, r.BestCost)
	}
}

func startCostOf(t testing.TB, g *graph.Graph) int64 {
	t.Helper()
	d := graph.NewDeltaStats(g)
	return costOf(d, g.N())
}

// TestCheckpointRoundTrip pins byte-stability: checkpoint → write → read
// → restore → checkpoint must reproduce identical bytes, and a run
// resumed at the same epoch target is a no-op.
func TestCheckpointRoundTrip(t *testing.T) {
	p := testParams()
	p.Workers = 2
	e, err := New(startGraph(t), p)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	if err := WriteCheckpoint(pathA, e.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(pathA)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cp, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2.Run() // epochs already completed: must be a no-op
	if err := WriteCheckpoint(pathB, e2.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(pathA)
	b, _ := os.ReadFile(pathB)
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoint round trip is not byte-stable")
	}
}

// TestResumeMatchesUninterrupted: stopping after 2 epochs and resuming
// to 4 yields exactly the result of running 4 straight.
func TestResumeMatchesUninterrupted(t *testing.T) {
	straight := runOnce(t, 1)

	p := testParams()
	p.Epochs = 2
	p.Workers = 1
	e, err := New(startGraph(t), p)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	cp := e.Checkpoint()
	// Serialize/deserialize to prove resume works from the file format,
	// not from live state.
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cp2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	resumed := e2.Run()
	if resumed.BestCost != straight.BestCost || resumed.Counters != straight.Counters {
		t.Errorf("resumed run differs: cost %d vs %d, counters %+v vs %+v",
			resumed.BestCost, straight.BestCost, resumed.Counters, straight.Counters)
	}
	if !reflect.DeepEqual(resumed.Trajectory, straight.Trajectory) {
		t.Error("resumed trajectory differs from uninterrupted run")
	}
	if !reflect.DeepEqual(resumed.Best.Edges(), straight.Best.Edges()) {
		t.Error("resumed best graph differs from uninterrupted run")
	}
}

func TestRestoreValidation(t *testing.T) {
	e, err := New(startGraph(t), testParams())
	if err != nil {
		t.Fatal(err)
	}
	good := e.Checkpoint()

	bad := *good
	bad.Schema = "nope/v0"
	if _, err := Restore(&bad, 1, 0); err == nil {
		t.Error("bad schema accepted")
	}

	bad = *good
	bad.States = bad.States[:1]
	if _, err := Restore(&bad, 1, 0); err == nil {
		t.Error("truncated states accepted")
	}

	bad = *good
	states := append([]SearcherState(nil), good.States...)
	states[0].Cost += 5
	bad.States = states
	if _, err := Restore(&bad, 1, 0); err == nil {
		t.Error("cost/graph mismatch accepted")
	}
}

func TestNewRejectsDegenerateStarts(t *testing.T) {
	b := graph.NewBuilder("one-edge", 4)
	b.AddEdge(0, 1)
	if _, err := New(b.Build(), testParams()); err == nil {
		t.Error("single-edge start accepted")
	}
	lb := graph.NewBuilder("loopy", 4)
	lb.AddEdge(0, 1)
	lb.AddEdge(2, 3)
	lb.AddEdge(2, 2)
	if _, err := New(lb.Build(), testParams()); err == nil {
		t.Error("self-loop start accepted")
	}
}

// TestProposeSwapCoversArcs sanity-checks arcOwner over the whole CSR.
func TestProposeSwapCoversArcs(t *testing.T) {
	g := startGraph(t)
	for c := 0; c < g.NumChannels(); c++ {
		u := arcOwner(g, c)
		if c < g.FirstChannel(u) || c >= g.FirstChannel(u+1) {
			t.Fatalf("arc %d attributed to vertex %d outside its window", c, u)
		}
	}
}
