package search

// splitmix is the splitmix64 generator used throughout the repository
// for per-entity deterministic streams (cf. internal/sim). Each searcher
// seeds one from (run seed, searcher id), so its draw sequence is a pure
// function of those two values — independent of worker count, schedule,
// or the other searchers.
type splitmix struct{ x uint64 }

func newSplitmix(runSeed int64, id int) splitmix {
	return splitmix{x: uint64(runSeed)*0x9E3779B97F4A7C15 ^ (uint64(id)+1)*0xBF58476D1CE4E5B9}
}

func (s *splitmix) uint64() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a draw in [0, n). The modulo bias at the n values used
// here (arc counts ≪ 2⁶⁴) is far below anything the annealer could
// perceive, and the simple form keeps replay trivially stable.
func (s *splitmix) intn(n int) int {
	return int(s.uint64() % uint64(n))
}

// float64 returns a draw in [0, 1) with 53 random bits.
func (s *splitmix) float64() float64 {
	return float64(s.uint64()>>11) / (1 << 53)
}
