package partition

import (
	"testing"

	"polarstar/internal/topo"
)

func BenchmarkBisectPSIQ310(b *testing.B) {
	ps := topo.MustNewPolarStar(5, 4, topo.KindIQ)
	for i := 0; i < b.N; i++ {
		Bisect(ps.G, int64(i), Options{})
	}
}

func BenchmarkBisectDragonfly876(b *testing.B) {
	df := topo.MustNewDragonfly(12, 6)
	for i := 0; i < b.N; i++ {
		Bisect(df.G, int64(i), Options{})
	}
}
