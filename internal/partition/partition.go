// Package partition estimates minimum graph bisections: the substitute
// for METIS in the §11.1 bisection study (Figs 12 and 13).
//
// The algorithm is the same family METIS implements: multilevel recursive
// bisection with heavy-edge matching coarsening, greedy region-growing
// initial partitions, and Fiduccia–Mattheyses boundary refinement at
// every uncoarsening level, repeated over several random starts.
package partition

import (
	"math/rand"

	"polarstar/internal/graph"
)

// wgraph is an edge- and vertex-weighted graph used during coarsening.
type wgraph struct {
	n     int
	vwgt  []int
	adj   [][]int32
	ewgt  [][]int32
	total int // total vertex weight
}

func fromGraph(g *graph.Graph) *wgraph {
	n := g.N()
	w := &wgraph{n: n, vwgt: make([]int, n), adj: make([][]int32, n), ewgt: make([][]int32, n), total: n}
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
		nb := g.Neighbors(v)
		w.adj[v] = nb // shared, read-only
		ones := make([]int32, len(nb))
		for i := range ones {
			ones[i] = 1
		}
		w.ewgt[v] = ones
	}
	return w
}

// coarsen builds the next-level graph via heavy-edge matching. match maps
// fine vertices to coarse vertices.
func (w *wgraph) coarsen(rng *rand.Rand) (*wgraph, []int32) {
	match := make([]int32, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	coarseN := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		// Pick the heaviest-edge unmatched neighbor.
		best, bestW := -1, int32(-1)
		for i, u := range w.adj[v] {
			if match[u] < 0 && int(u) != v && w.ewgt[v][i] > bestW {
				best, bestW = int(u), w.ewgt[v][i]
			}
		}
		match[v] = int32(coarseN)
		if best >= 0 {
			match[best] = int32(coarseN)
		}
		coarseN++
	}
	c := &wgraph{n: coarseN, vwgt: make([]int, coarseN), adj: make([][]int32, coarseN), ewgt: make([][]int32, coarseN), total: w.total}
	// Accumulate coarse adjacency.
	acc := make(map[int32]int32)
	members := make([][]int32, coarseN)
	for v := 0; v < w.n; v++ {
		members[match[v]] = append(members[match[v]], int32(v))
	}
	for cv := 0; cv < coarseN; cv++ {
		for k := range acc {
			delete(acc, k)
		}
		vw := 0
		for _, v := range members[cv] {
			vw += w.vwgt[v]
			for i, u := range w.adj[v] {
				cu := match[u]
				if cu != int32(cv) {
					acc[cu] += w.ewgt[v][i]
				}
			}
		}
		c.vwgt[cv] = vw
		adj := make([]int32, 0, len(acc))
		ew := make([]int32, 0, len(acc))
		for cu, wt := range acc {
			adj = append(adj, cu)
			ew = append(ew, wt)
		}
		c.adj[cv] = adj
		c.ewgt[cv] = ew
	}
	return c, match
}

// initialPartition grows a region from a random seed until it holds half
// the vertex weight.
func (w *wgraph) initialPartition(rng *rand.Rand) []bool {
	part := make([]bool, w.n)
	inQueue := make([]bool, w.n)
	target := w.total / 2
	weight := 0
	queue := []int32{int32(rng.Intn(w.n))}
	inQueue[queue[0]] = true
	for head := 0; head < len(queue) && weight < target; head++ {
		v := queue[head]
		if weight+w.vwgt[v] > target+w.vwgt[v]/2 {
			continue
		}
		part[v] = true
		weight += w.vwgt[v]
		for _, u := range w.adj[v] {
			if !inQueue[u] {
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
	}
	// Top up from unvisited vertices if the region ran dry.
	for v := 0; v < w.n && weight < target; v++ {
		if !part[v] && weight+w.vwgt[v] <= target+w.vwgt[v]/2 {
			part[v] = true
			weight += w.vwgt[v]
		}
	}
	return part
}

// cutWeight returns the total weight of edges crossing the partition.
func (w *wgraph) cutWeight(part []bool) int64 {
	var cut int64
	for v := 0; v < w.n; v++ {
		for i, u := range w.adj[v] {
			if int(u) > v && part[v] != part[u] {
				cut += int64(w.ewgt[v][i])
			}
		}
	}
	return cut
}

// refineFM runs Fiduccia–Mattheyses passes: repeatedly move the
// highest-gain movable vertex (respecting balance), allowing negative-gain
// moves within a pass and keeping the best prefix.
func (w *wgraph) refineFM(part []bool, maxImbalance int, passes int) {
	n := w.n
	gain := make([]int32, n)
	side := make([]int, 2)
	for v := 0; v < n; v++ {
		if part[v] {
			side[1] += w.vwgt[v]
		} else {
			side[0] += w.vwgt[v]
		}
	}
	computeGain := func(v int) int32 {
		var g int32
		pv := part[v]
		for i, u := range w.adj[v] {
			if part[u] != pv {
				g += w.ewgt[v][i]
			} else {
				g -= w.ewgt[v][i]
			}
		}
		return g
	}
	locked := make([]bool, n)
	type move struct {
		v       int32
		cumGain int64
	}
	moves := make([]move, 0, n)
	for pass := 0; pass < passes; pass++ {
		for v := 0; v < n; v++ {
			gain[v] = computeGain(v)
			locked[v] = false
		}
		moves = moves[:0]
		var cum, bestSoFar int64
		stall := 0
		improved := false
		for step := 0; step < n; step++ {
			// Select best movable vertex (linear scan: graphs at the FM
			// levels are modest; a bucket queue is unnecessary here).
			best, bestGain := -1, int32(-1<<30)
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				// Balance: moving v must keep both sides within bounds.
				from := 0
				if part[v] {
					from = 1
				}
				if rem := side[from] - w.vwgt[v]; rem < w.total/2-maxImbalance || rem < 1 {
					continue
				}
				if gain[v] > bestGain {
					best, bestGain = v, gain[v]
				}
			}
			if best < 0 {
				break
			}
			// Apply the move.
			from, to := 0, 1
			if part[best] {
				from, to = 1, 0
			}
			part[best] = !part[best]
			side[from] -= w.vwgt[best]
			side[to] += w.vwgt[best]
			locked[best] = true
			cum += int64(bestGain)
			moves = append(moves, move{v: int32(best), cumGain: cum})
			for i, u := range w.adj[best] {
				if locked[u] {
					continue
				}
				if part[u] == part[best] {
					gain[u] -= 2 * w.ewgt[best][i]
				} else {
					gain[u] += 2 * w.ewgt[best][i]
				}
			}
			// Early stop when the pass has dug deep with no improvement:
			// further moves rarely recover.
			if cum > bestSoFar {
				bestSoFar = cum
				stall = 0
			} else if stall++; stall > 200 {
				break
			}
		}
		// Roll back to the best prefix.
		bestIdx, bestCum := -1, int64(0)
		for i, m := range moves {
			if m.cumGain > bestCum {
				bestIdx, bestCum = i, m.cumGain
			}
		}
		for i := len(moves) - 1; i > bestIdx; i-- {
			v := moves[i].v
			from, to := 0, 1
			if part[v] {
				from, to = 1, 0
			}
			part[v] = !part[v]
			side[from] -= w.vwgt[v]
			side[to] += w.vwgt[v]
		}
		if bestCum > 0 {
			improved = true
		}
		if !improved {
			break
		}
	}
}

// Options tunes the bisector.
type Options struct {
	Seeds        int // random multistarts (default 4)
	CoarsenTo    int // stop coarsening below this size (default 64)
	RefinePasses int // FM passes per level (default 6)
	MaxImbalance int // allowed deviation from perfect halves in vertex weight (default max(1, n/100))
}

func (o Options) withDefaults(n int) Options {
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 64
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	if o.MaxImbalance <= 0 {
		o.MaxImbalance = n / 100
		if o.MaxImbalance < 1 {
			o.MaxImbalance = 1
		}
	}
	return o
}

// Bisect estimates the minimum bisection of g. It returns the cut edge
// count and the side assignment. Deterministic for a given seed.
func Bisect(g *graph.Graph, seed int64, opts Options) (int64, []bool) {
	opts = opts.withDefaults(g.N())
	base := fromGraph(g)
	var bestCut int64 = -1
	var bestPart []bool
	for s := 0; s < opts.Seeds; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*104729))
		part := multilevel(base, rng, opts)
		cut := base.cutWeight(part)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			bestPart = part
		}
	}
	return bestCut, bestPart
}

func multilevel(w *wgraph, rng *rand.Rand, opts Options) []bool {
	// Coarsening phase.
	levels := []*wgraph{w}
	var matches [][]int32
	cur := w
	for cur.n > opts.CoarsenTo {
		next, match := cur.coarsen(rng)
		if next.n >= cur.n*95/100 {
			break // diminishing returns
		}
		levels = append(levels, next)
		matches = append(matches, match)
		cur = next
	}
	// Initial partition on the coarsest graph.
	coarsest := levels[len(levels)-1]
	part := coarsest.initialPartition(rng)
	coarsest.refineFM(part, opts.MaxImbalance, opts.RefinePasses)
	// Uncoarsen with refinement.
	for lvl := len(levels) - 2; lvl >= 0; lvl-- {
		fine := levels[lvl]
		match := matches[lvl]
		finePart := make([]bool, fine.n)
		for v := 0; v < fine.n; v++ {
			finePart[v] = part[match[v]]
		}
		fine.refineFM(finePart, opts.MaxImbalance, opts.RefinePasses)
		part = finePart
	}
	return part
}

// CutFraction returns the estimated fraction of edges crossing the
// minimum bisection: the Fig 12/13 metric.
func CutFraction(g *graph.Graph, seed int64, opts Options) float64 {
	if g.M() == 0 {
		return 0
	}
	cut, _ := Bisect(g, seed, opts)
	return float64(cut) / float64(g.M())
}
