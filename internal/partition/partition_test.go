package partition

import (
	"math"
	"testing"

	"polarstar/internal/graph"
	"polarstar/internal/topo"
)

// twoClusters builds two dense clusters of size n joined by k bridge
// edges: the minimum bisection is exactly k.
func twoClusters(n, k int) *graph.Graph {
	b := graph.NewBuilder("clusters", 2*n)
	for c := 0; c < 2; c++ {
		base := c * n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	for i := 0; i < k; i++ {
		b.AddEdge(i, n+i)
	}
	return b.Build()
}

func TestBisectFindsPlantedCut(t *testing.T) {
	for _, k := range []int{1, 3, 8} {
		g := twoClusters(30, k)
		cut, part := Bisect(g, 1, Options{})
		if cut != int64(k) {
			t.Errorf("k=%d: cut = %d, want %d", k, cut, k)
		}
		// Balance check.
		ones := 0
		for _, p := range part {
			if p {
				ones++
			}
		}
		if ones != 30 {
			t.Errorf("k=%d: unbalanced partition %d/%d", k, ones, g.N()-ones)
		}
	}
}

func TestBisectBalanceRespected(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	cut, part := Bisect(ps.G, 2, Options{})
	if cut <= 0 {
		t.Fatal("cut must be positive on a connected graph")
	}
	ones := 0
	for _, p := range part {
		if p {
			ones++
		}
	}
	n := ps.G.N()
	imbalance := ones - n/2
	if imbalance < 0 {
		imbalance = -imbalance
	}
	if imbalance > n/100+2 {
		t.Errorf("imbalance %d too large for n=%d", imbalance, n)
	}
}

func TestBisectDeterministic(t *testing.T) {
	g := twoClusters(20, 4)
	c1, _ := Bisect(g, 7, Options{})
	c2, _ := Bisect(g, 7, Options{})
	if c1 != c2 {
		t.Errorf("non-deterministic: %d vs %d", c1, c2)
	}
}

func TestCutFractionCompleteGraph(t *testing.T) {
	// K_16 under the default ±1 vertex imbalance tolerance: the optimal
	// near-bisection is the 7/9 split with 63 cut edges (the exact 8/8
	// split cuts 64).
	b := graph.NewBuilder("k16", 16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	frac := CutFraction(g, 1, Options{})
	want := 63.0 / 120.0
	if math.Abs(frac-want) > 1e-9 {
		t.Errorf("K16 cut fraction = %f, want %f", frac, want)
	}
}

func TestCutFractionOrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// §11.1 orderings that reproduce: Bundlefly and PolarStar-Paley beat
	// Dragonfly (paper: BF 22.9%, DF 17.8%). Note that PolarStar-IQ does
	// NOT reproduce the paper's 29.5% — see TestPolarStarIQCombCut.
	bf := topo.MustNewBundlefly(7, 4)                  // Table 3 Bundlefly
	df := topo.MustNewDragonfly(12, 6)                 // Table 3 Dragonfly
	pal := topo.MustNewPolarStar(8, 6, topo.KindPaley) // Table 3 PS-Pal
	fbf := CutFraction(bf.G, 3, Options{})
	fdf := CutFraction(df.G, 3, Options{})
	fpal := CutFraction(pal.G, 3, Options{})
	if fbf <= fdf {
		t.Errorf("Bundlefly fraction %.3f <= Dragonfly %.3f", fbf, fdf)
	}
	if fpal <= fdf {
		t.Errorf("PS-Pal fraction %.3f <= Dragonfly %.3f", fpal, fdf)
	}
	// Dragonfly's METIS estimate in the paper is 17.8%; ours must agree
	// closely since the comb-cut phenomenon does not apply to it.
	if fdf < 0.14 || fdf > 0.22 {
		t.Errorf("Dragonfly fraction %.3f, paper reports ≈0.178", fdf)
	}
}

// TestPolarStarIQCombCut documents a reproduction finding: every star
// product whose bijection f is a fixed-point-free involution admits a
// balanced "comb cut" that splits each supernode into an f-invariant
// half — no inter-supernode link crosses it, because every inter-link
// joins z to f(z). The resulting bisection is far below the paper's
// METIS estimate (~29.5%); METIS evidently never finds this cut. Our FM
// refinement does, so Fig 12/13 reproduce with a lower PolarStar-IQ
// curve (see EXPERIMENTS.md E15/E16).
//
// The cut requires an f-invariant half, i.e. |V(G')|/2 even: supernode
// degrees d' ≡ 3 (mod 4) are vulnerable, d' ≡ 0 (mod 4) are immune.
func TestPolarStarIQCombCut(t *testing.T) {
	ps := topo.MustNewPolarStar(4, 3, topo.KindIQ)
	sn := ps.Super.N()
	f := ps.Super.F
	// Build an f-invariant half of the supernode: greedily pick f-orbits.
	inS := make([]bool, sn)
	count := 0
	for v := 0; v < sn && count < sn/2; v++ {
		if !inS[v] && !inS[f[v]] && v != f[v] {
			inS[v], inS[f[v]] = true, true
			count += 2
		}
	}
	if count != sn/2 {
		t.Fatalf("could not build f-invariant half (%d of %d)", count, sn/2)
	}
	part := make([]bool, ps.G.N())
	for x := 0; x < ps.NumGroups(); x++ {
		for l := 0; l < sn; l++ {
			part[x*sn+l] = inS[l]
		}
	}
	// No inter-supernode edge crosses the comb cut.
	combCut := int64(0)
	for _, e := range ps.G.Edges() {
		if part[e[0]] != part[e[1]] {
			if e[0]/sn != e[1]/sn {
				t.Fatalf("inter-supernode edge %v crosses the comb cut", e)
			}
			combCut++
		}
	}
	if combCut == 0 {
		t.Fatal("comb cut empty")
	}
	// The partitioner must do at least as well as the comb cut.
	cut, _ := Bisect(ps.G, 5, Options{})
	if cut > combCut {
		t.Errorf("Bisect cut %d worse than comb cut %d", cut, combCut)
	}
}

func TestCutFractionRange(t *testing.T) {
	ps := topo.MustNewPolarStar(5, 4, topo.KindIQ)
	f := CutFraction(ps.G, 4, Options{})
	if f <= 0.03 || f >= 0.6 {
		t.Errorf("PolarStar cut fraction %.3f outside plausible range", f)
	}
}

func TestBisectEmptyAndTiny(t *testing.T) {
	g := graph.NewBuilder("empty", 0).Build()
	if f := CutFraction(g, 1, Options{}); f != 0 {
		t.Errorf("empty graph fraction = %f", f)
	}
	b := graph.NewBuilder("pair", 2)
	b.AddEdge(0, 1)
	cut, _ := Bisect(b.Build(), 1, Options{})
	if cut != 1 {
		t.Errorf("P2 cut = %d, want 1", cut)
	}
}
