// Package prof wires the standard -cpuprofile / -memprofile flags into
// the command-line tools, so any experiment run can be inspected with
// `go tool pprof` (see the profiling section of the README).
package prof

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuOut = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memOut = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// Start begins CPU profiling when -cpuprofile was given. The returned
// stop function must be deferred: it finishes the CPU profile and, when
// -memprofile was given, writes the end-of-run heap profile.
func Start() func() {
	var cpuFile *os.File
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memOut != "" {
			f, err := os.Create(*memOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
}

// Task runs fn under pprof labels (alternating key, value pairs), so CPU
// samples taken inside it are attributable per experiment phase with
// `go tool pprof -tagfocus`. Label one phase — a figure, a sweep, a
// fault ladder — not individual packets: the label set is copied per
// call.
func Task(fn func(), labels ...string) {
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { fn() })
}
