package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTaskRunsFunction checks that Task executes its function exactly
// once, with and without labels, including nested phases (pprof label
// sets compose across nested Do calls).
func TestTaskRunsFunction(t *testing.T) {
	calls := 0
	Task(func() { calls++ }, "phase", "sweep", "spec", "ps-iq-small")
	Task(func() { calls++ })
	Task(func() {
		Task(func() { calls++ }, "phase", "inner")
	}, "phase", "outer")
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

// TestStartNoFlagsIsNoop: with neither -cpuprofile nor -memprofile set,
// Start and its stop function must do nothing and not fail.
func TestStartNoFlagsIsNoop(t *testing.T) {
	stop := Start()
	stop()
}

// TestStartWritesProfiles drives the flag-configured path end to end:
// profiles land in the named files and are non-empty.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	*cpuOut, *memOut = cpu, mem
	defer func() { *cpuOut, *memOut = "", "" }()
	stop := Start()
	// Burn a little CPU under a labeled task so the profile has samples.
	x := 0
	Task(func() {
		for i := 0; i < 1e6; i++ {
			x += i * i
		}
	}, "phase", "test-burn")
	_ = x
	stop()
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
