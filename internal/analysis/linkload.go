// Package analysis provides fast, simulation-free estimates of network
// behavior: per-link load distributions under a traffic pattern and the
// implied saturation-throughput bound. These analytical bounds
// cross-validate the cycle-level simulator (a sweep's measured saturation
// load can never exceed the bottleneck-link bound) and explain the Fig 9
// orderings structurally.
package analysis

import (
	"math"
	"math/rand"
	"sort"

	"polarstar/internal/route"
	"polarstar/internal/traffic"
)

// LinkLoads is the per-directed-link load distribution induced by a
// traffic pattern under a routing engine, in units of
// flits-per-cycle-per-endpoint offered load 1.0.
type LinkLoads struct {
	// Max is the bottleneck normalized load: a link carrying Max units
	// saturates at offered load 1/Max.
	Max float64
	// Mean is the average over used links.
	Mean float64
	// P99 is the 99th percentile load.
	P99 float64
	// Gini measures load imbalance in [0,1): 0 = perfectly even.
	Gini float64
	// UsedLinks counts links carrying any traffic.
	UsedLinks int
}

// SaturationBound returns the offered load at which the bottleneck link
// saturates: the upper bound on sustainable throughput.
func (l LinkLoads) SaturationBound() float64 {
	if l.Max <= 0 {
		return math.Inf(1)
	}
	return 1 / l.Max
}

// ComputeLinkLoads routes `samples` pattern-distributed packets (or every
// endpoint exactly `rounds` times for deterministic patterns) and
// accumulates per-link traffic. Loads are normalized so that a value of
// 1.0 on a link means the link is fully busy at offered load 1.0
// (every endpoint injecting one flit per cycle).
func ComputeLinkLoads(engine route.Engine, cfg traffic.Config, pattern traffic.Pattern, rounds int, seed int64) LinkLoads {
	rng := rand.New(rand.NewSource(seed))
	loads := map[int64]float64{}
	key := func(u, v int) int64 { return int64(u)<<32 | int64(v) }
	endpoints := cfg.Endpoints()
	active := 0
	for round := 0; round < rounds; round++ {
		for ep := 0; ep < endpoints; ep++ {
			dst := pattern.Dest(ep, rng)
			if dst < 0 {
				continue
			}
			if round == 0 {
				active++
			}
			srcR, dstR := cfg.RouterOf(ep), cfg.RouterOf(dst)
			if srcR == dstR {
				continue
			}
			path := engine.Route(srcR, dstR, rng)
			for i := 0; i+1 < len(path); i++ {
				loads[key(path[i], path[i+1])]++
			}
		}
	}
	out := LinkLoads{UsedLinks: len(loads)}
	if len(loads) == 0 || active == 0 {
		return out
	}
	// Normalize: each active endpoint contributed `rounds` packets; at
	// offered load 1.0 it injects 1 flit/cycle, so a link's normalized
	// load is (its packet count) / rounds.
	vals := make([]float64, 0, len(loads))
	sum := 0.0
	for _, v := range loads {
		nv := v / float64(rounds)
		vals = append(vals, nv)
		sum += nv
		if nv > out.Max {
			out.Max = nv
		}
	}
	sort.Float64s(vals)
	out.Mean = sum / float64(len(vals))
	out.P99 = vals[int(float64(len(vals)-1)*0.99)]
	// Gini coefficient of the sorted loads.
	var cum, giniNum float64
	for i, v := range vals {
		cum += v
		giniNum += float64(i+1) * v
	}
	n := float64(len(vals))
	out.Gini = (2*giniNum - (n+1)*cum) / (n * cum)
	return out
}
