// Package analysis provides fast, simulation-free estimates of network
// behavior: per-link load distributions under a traffic pattern and the
// implied saturation-throughput bound. These analytical bounds
// cross-validate the cycle-level simulator (a sweep's measured saturation
// load can never exceed the bottleneck-link bound) and explain the Fig 9
// orderings structurally.
package analysis

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"polarstar/internal/graph"
	"polarstar/internal/route"
	"polarstar/internal/traffic"
)

// LinkLoads is the per-directed-link load distribution induced by a
// traffic pattern under a routing engine, in units of
// flits-per-cycle-per-endpoint offered load 1.0.
type LinkLoads struct {
	// Max is the bottleneck normalized load: a link carrying Max units
	// saturates at offered load 1/Max.
	Max float64
	// Mean is the average over used links.
	Mean float64
	// P99 is the 99th percentile load.
	P99 float64
	// Gini measures load imbalance in [0,1): 0 = perfectly even.
	Gini float64
	// UsedLinks counts links carrying any traffic.
	UsedLinks int
}

// SaturationBound returns the offered load at which the bottleneck link
// saturates: the upper bound on sustainable throughput.
func (l LinkLoads) SaturationBound() float64 {
	if l.Max <= 0 {
		return math.Inf(1)
	}
	return 1 / l.Max
}

// loadShards is the fixed endpoint-striping factor of ComputeLinkLoads.
// It is a constant — not GOMAXPROCS — so results are identical on any
// machine: endpoint ep always belongs to shard ep mod loadShards, with a
// shard-specific RNG stream derived from the seed.
const loadShards = 16

// shardSeed derives the RNG seed of one shard from the sweep seed.
func shardSeed(seed int64, s int) int64 {
	return seed ^ (int64(s+1) * 0x5DEECE66D)
}

// ComputeLinkLoads routes every endpoint `rounds` times under the pattern
// and accumulates per-directed-channel traffic in dense arrays indexed by
// the graph's channel ids (graph.ChannelID). Loads are normalized so that
// a value of 1.0 on a link means the link is fully busy at offered load
// 1.0 (every endpoint injecting one flit per cycle).
//
// Endpoints are striped over loadShards independent shards, routed in
// parallel with per-shard RNGs and per-shard accumulators, then merged in
// fixed shard order — so the result is bit-identical for a given seed
// regardless of GOMAXPROCS or scheduling. Each shard routes through a
// reusable path buffer via Engine.AppendPath, so steady-state sampling
// performs no per-packet heap allocation.
func ComputeLinkLoads(g *graph.Graph, engine route.Engine, cfg traffic.Config, pattern traffic.Pattern, rounds int, seed int64) LinkLoads {
	nChans := g.NumChannels()
	endpoints := cfg.Endpoints()
	if nChans == 0 || endpoints == 0 || rounds <= 0 {
		return LinkLoads{}
	}
	shardLoads := make([][]float64, loadShards)
	shardActive := make([]int, loadShards)
	var wg sync.WaitGroup
	for s := 0; s < loadShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(shardSeed(seed, s)))
			loads := make([]float64, nChans)
			var path []int
			active := 0
			for round := 0; round < rounds; round++ {
				for ep := s; ep < endpoints; ep += loadShards {
					dst := pattern.Dest(ep, rng)
					if dst < 0 {
						continue
					}
					if round == 0 {
						active++
					}
					srcR, dstR := cfg.RouterOf(ep), cfg.RouterOf(dst)
					if srcR == dstR {
						continue
					}
					path = engine.AppendPath(path[:0], srcR, dstR, rng)
					for i := 0; i+1 < len(path); i++ {
						loads[g.ChannelID(path[i], path[i+1])]++
					}
				}
			}
			shardLoads[s] = loads
			shardActive[s] = active
		}(s)
	}
	wg.Wait()

	// Merge in fixed shard order (float summation order is part of the
	// determinism contract), then reduce in channel-id order.
	total := shardLoads[0]
	active := shardActive[0]
	for s := 1; s < loadShards; s++ {
		for c, v := range shardLoads[s] {
			total[c] += v
		}
		active += shardActive[s]
	}
	var out LinkLoads
	if active == 0 {
		return out
	}
	// Normalize: each active endpoint contributed `rounds` packets; at
	// offered load 1.0 it injects 1 flit/cycle, so a link's normalized
	// load is (its packet count) / rounds.
	vals := make([]float64, 0, nChans)
	sum := 0.0
	for _, v := range total {
		if v == 0 {
			continue
		}
		nv := v / float64(rounds)
		vals = append(vals, nv)
		sum += nv
		if nv > out.Max {
			out.Max = nv
		}
	}
	out.UsedLinks = len(vals)
	if len(vals) == 0 {
		return out
	}
	sort.Float64s(vals)
	out.Mean = sum / float64(len(vals))
	out.P99 = vals[int(float64(len(vals)-1)*0.99)]
	// Gini coefficient of the sorted loads (0 when no traffic flowed: the
	// all-zero distribution is perfectly even, and dividing by cum == 0
	// would yield NaN).
	var cum, giniNum float64
	for i, v := range vals {
		cum += v
		giniNum += float64(i+1) * v
	}
	if cum > 0 {
		n := float64(len(vals))
		out.Gini = (2*giniNum - (n+1)*cum) / (n * cum)
	}
	return out
}
