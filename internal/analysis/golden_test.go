package analysis

import (
	"math"
	"math/rand"
	"testing"

	"polarstar/internal/sim"
	"polarstar/internal/traffic"
)

// TestGoldenUniformLoadsPSIQSmall pins the exact link-load distribution of
// the sharded implementation. The 16-shard striping, the per-shard RNG
// seeds and the shard-order merge are all part of the result's identity:
// this test must pass on any machine at any GOMAXPROCS. (The pre-shard
// implementation could not be pinned at all — it summed in Go map
// iteration order, so even its Mean varied from run to run.)
func TestGoldenUniformLoadsPSIQSmall(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	pattern, err := spec.Pattern("uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 30, 1)
	if l.Max != 1.6333333333333333 {
		t.Errorf("max = %.17g, want 1.6333333333333333", l.Max)
	}
	if l.Mean != 0.80054838709677578 {
		t.Errorf("mean = %.17g, want 0.80054838709677578", l.Mean)
	}
	if l.P99 != 1.3333333333333333 {
		t.Errorf("p99 = %.17g, want 1.3333333333333333", l.P99)
	}
	if l.Gini != 0.16220426857935114 {
		t.Errorf("gini = %.17g, want 0.16220426857935114", l.Gini)
	}
	if l.UsedLinks != 3100 {
		t.Errorf("used links = %d, want 3100", l.UsedLinks)
	}
}

// TestLinkLoadsRunToRunDeterminism: repeated computations must agree in
// every bit — the parallel shards may be scheduled arbitrarily, but the
// merge order is fixed.
func TestLinkLoadsRunToRunDeterminism(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	pattern, err := spec.Pattern("uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	a := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 10, 3)
	for i := 0; i < 3; i++ {
		if b := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 10, 3); a != b {
			t.Fatalf("run %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

// selfPattern routes every endpoint to itself: traffic exists but no
// packet crosses a link, exercising the zero-traffic statistics path.
type selfPattern struct{}

func (selfPattern) Name() string                   { return "self" }
func (selfPattern) Dest(src int, _ *rand.Rand) int { return src }

// TestGiniZeroTrafficNoNaN: a distribution with no carried load must
// report Gini 0, not NaN from the cum == 0 division.
func TestGiniZeroTrafficNoNaN(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	for _, p := range []traffic.Pattern{selfPattern{}, idlePattern{}} {
		l := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), p, 3, 1)
		if math.IsNaN(l.Gini) || l.Gini != 0 {
			t.Errorf("%s: gini = %v, want 0", p.Name(), l.Gini)
		}
		if math.IsNaN(l.Mean) || math.IsNaN(l.Max) || math.IsNaN(l.P99) {
			t.Errorf("%s: NaN in %+v", p.Name(), l)
		}
		if l.UsedLinks != 0 {
			t.Errorf("%s: used links = %d, want 0", p.Name(), l.UsedLinks)
		}
	}
}
