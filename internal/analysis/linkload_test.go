package analysis

import (
	"math/rand"
	"testing"

	"polarstar/internal/route"
	"polarstar/internal/sim"
)

func loadsFor(t *testing.T, specName, patternName string, rounds int) LinkLoads {
	t.Helper()
	spec := sim.MustNewSpec(specName)
	pattern, err := spec.Pattern(patternName, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, rounds, 1)
}

func TestUniformLoadsReasonable(t *testing.T) {
	l := loadsFor(t, "ps-iq-small", "uniform", 30)
	if l.UsedLinks == 0 || l.Max <= 0 {
		t.Fatalf("degenerate loads: %+v", l)
	}
	if l.Mean > l.Max || l.P99 > l.Max {
		t.Errorf("inconsistent distribution: %+v", l)
	}
	if l.Gini < 0 || l.Gini > 1 {
		t.Errorf("gini out of range: %f", l.Gini)
	}
	// Uniform traffic on a symmetric-ish diameter-3 topology: the
	// saturation bound must be a sane fraction of injection bandwidth.
	b := l.SaturationBound()
	if b < 0.2 || b > 2.0 {
		t.Errorf("uniform saturation bound %.3f implausible", b)
	}
}

// TestAdversarialBoundFarBelowUniform: the §9.6 pattern concentrates all
// inter-group traffic on few links, so its analytic saturation bound must
// be far below the uniform one on Dragonfly.
func TestAdversarialBoundFarBelowUniform(t *testing.T) {
	uni := loadsFor(t, "df-small", "uniform", 30)
	adv := loadsFor(t, "df-small", "adversarial", 5)
	if adv.SaturationBound() >= uni.SaturationBound()/2 {
		t.Errorf("adversarial bound %.3f not far below uniform %.3f",
			adv.SaturationBound(), uni.SaturationBound())
	}
}

// TestAnalyticBoundDominatesSimulation: the cycle simulator can never
// sustain more than the bottleneck-link bound.
func TestAnalyticBoundDominatesSimulation(t *testing.T) {
	spec := sim.MustNewSpec("df-small")
	pattern, _ := spec.Pattern("adversarial", 1)
	bound := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 5, 1).SaturationBound()

	p := sim.DefaultParams(1)
	p.Warmup, p.Measure, p.Drain = 500, 1000, 2000
	res, err := sim.Sweep(spec, sim.MIN, "adversarial", []float64{0.05, 0.1, 0.2, 0.4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if sat := res.SaturationLoad(); sat > bound*1.3 {
		t.Errorf("simulated saturation %.3f exceeds analytic bound %.3f", sat, bound)
	}
}

// TestMinpathNearUniquenessOnPolarStar: star products have little
// minimal-path diversity (the first inter-supernode hop is forced by the
// bijection), which is WHY the paper routes PolarStar with a single
// analytic minpath (§9.3). All-minpath table routing must therefore give
// essentially the same adversarial load profile as the analytic router.
func TestMinpathNearUniquenessOnPolarStar(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	pattern, err := spec.Pattern("adversarial", 1)
	if err != nil {
		t.Fatal(err)
	}
	single := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 5, 1)
	multi := ComputeLinkLoads(spec.Graph, route.NewTable(spec.Graph, route.AllMinPaths), spec.Config(), pattern, 5, 1)
	ratio := multi.SaturationBound() / single.SaturationBound()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("all-minpath bound %.4f differs from analytic %.4f by more than expected",
			multi.SaturationBound(), single.SaturationBound())
	}
}

// TestValiantSpreadsAdversarialLoad: the Fig 10 mechanism — Valiant
// misrouting spreads the concentrated adversarial traffic over the whole
// network (and in PolarStar over the inter-supernode bundles), raising
// the analytic saturation bound and flattening the load distribution.
func TestValiantSpreadsAdversarialLoad(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	pattern, err := spec.Pattern("adversarial", 1)
	if err != nil {
		t.Fatal(err)
	}
	min := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 5, 1)
	val := ComputeLinkLoads(spec.Graph, valiantEngine{v: route.NewValiant(spec.MinEngine, spec.Graph.N(), 1)},
		spec.Config(), pattern, 5, 1)
	if val.SaturationBound() <= min.SaturationBound() {
		t.Errorf("valiant bound %.4f not above minimal bound %.4f",
			val.SaturationBound(), min.SaturationBound())
	}
	// Valiant also puts many more links to work. (Gini values are not
	// comparable across the two cases: they are computed over different
	// support sets.)
	if val.UsedLinks <= min.UsedLinks {
		t.Errorf("valiant used %d links, minimal %d", val.UsedLinks, min.UsedLinks)
	}
}

// valiantEngine adapts pure Valiant misrouting (always via one random
// intermediate) to the route.Engine interface.
type valiantEngine struct{ v *route.Valiant }

func (e valiantEngine) Route(src, dst int, rng *rand.Rand) []int {
	return e.v.Via(src, rng.Intn(e.v.N), dst, rng)
}

func (e valiantEngine) AppendPath(buf []int, src, dst int, rng *rand.Rand) []int {
	return e.v.AppendVia(buf, src, rng.Intn(e.v.N), dst, rng)
}

func (e valiantEngine) Dist(src, dst int) int { return e.v.Min.Dist(src, dst) }

func TestEmptyPattern(t *testing.T) {
	spec := sim.MustNewSpec("ps-iq-small")
	idle := idlePattern{}
	l := ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), idle, 3, 1)
	if l.UsedLinks != 0 || l.Max != 0 {
		t.Errorf("idle pattern produced load: %+v", l)
	}
	if b := l.SaturationBound(); b <= 1000 {
		t.Errorf("idle saturation bound should be infinite, got %f", b)
	}
}

type idlePattern struct{}

func (idlePattern) Name() string { return "idle" }

func (idlePattern) Dest(int, *rand.Rand) int { return -1 }
