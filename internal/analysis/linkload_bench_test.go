package analysis

import (
	"testing"

	"polarstar/internal/sim"
)

func BenchmarkComputeLinkLoadsPSIQSmall(b *testing.B) {
	spec := sim.MustNewSpec("ps-iq-small")
	pattern, _ := spec.Pattern("uniform", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 30, 1)
	}
}
