// Routingdemo: the §9.2 storage argument, quantified. PolarStar's
// analytic router computes exact minimal paths from factor-graph state
// that does not grow with the network, while table-based all-minpath
// routing (what Spectralfly and Bundlefly need for competitive
// performance) stores per-destination next-hop sets at every router.
package main

import (
	"fmt"
	"log"

	"polarstar"
	"polarstar/internal/route"
	"polarstar/internal/topo"
)

func main() {
	// The Table 3 PolarStar: 1064 routers.
	ps, err := topo.NewPolarStar(11, 3, topo.KindIQ)
	if err != nil {
		log.Fatal(err)
	}
	analytic := route.NewPolarStar(ps)
	table := route.NewTable(ps.G, route.AllMinPaths)

	cmp := route.CompareState(analytic, table)
	fmt.Printf("Network: %v\n\n", ps.G)
	fmt.Printf("Analytic router state (per router):   %8d bytes  (O(q²+d'²))\n", cmp.AnalyticPerRouter)
	fmt.Printf("Distance-table floor (per router):    %8d bytes  (O(N))\n", cmp.TablePerRouter)
	fmt.Printf("All-minpath entries (per router):     %8d entries (O(N·paths))\n", cmp.AllMinpathPerRouter)
	fmt.Printf("All-minpath entries (network-wide):   %8d entries\n\n", cmp.AllMinpathEntries)

	// Both routers agree on every distance; the analytic one needs no
	// product-wide state to do it.
	rng := polarstar.RandomSource(7)
	checked := 0
	for i := 0; i < 2000; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		if src == dst {
			continue
		}
		a := analytic.Route(src, dst, rng)
		if len(a)-1 != table.Dist(src, dst) {
			log.Fatalf("analytic path %v not minimal (want %d hops)", a, table.Dist(src, dst))
		}
		checked++
	}
	fmt.Printf("Verified %d random analytic minpaths against BFS ground truth.\n\n", checked)

	// Path diversity, the other side of the coin: the number of
	// edge-disjoint paths bounds fault tolerance per pair.
	src, dst := 0, ps.G.N()-1
	paths := route.EdgeDisjointPaths(ps.G, src, dst, 0)
	fmt.Printf("Edge-disjoint paths between routers %d and %d: %d (radix %d)\n",
		src, dst, len(paths), ps.Radix())
	for i, p := range paths[:3] {
		fmt.Printf("  e.g. path %d: %v\n", i, p)
	}
}
