// Designspace: explore the PolarStar design space the way a system
// architect would — enumerate every feasible configuration for a switch
// radix, compare against the baselines' largest designs, and reproduce
// the paper's headline geometric-mean scale ratios.
package main

import (
	"fmt"

	"polarstar"
)

func main() {
	const radix = 32

	fmt.Printf("All feasible PolarStar configurations at radix %d:\n", radix)
	for _, c := range polarstar.PolarStarConfigs(radix) {
		fmt.Printf("  %v\n", c)
	}

	fmt.Printf("\nLargest diameter-3 designs at radix %d:\n", radix)
	for _, p := range []struct {
		name  string
		point polarstar.DesignPoint
	}{
		{"PolarStar", polarstar.BestPolarStar(radix)},
		{"Bundlefly", polarstar.BestBundlefly(radix)},
		{"Dragonfly", polarstar.BestDragonfly(radix)},
		{"3-D HyperX", polarstar.BestHyperX3D(radix)},
	} {
		moore := polarstar.MooreBound(radix, 3)
		fmt.Printf("  %-11s %7d routers (%s), %.1f%% of the Moore bound %d\n",
			p.name, p.point.Order, p.point.Config,
			100*float64(p.point.Order)/float64(moore), moore)
	}

	fmt.Println("\nGeometric-mean scale ratios over radix 8..128 (§1.3):")
	h := polarstar.Headline(8, 128)
	fmt.Printf("  PolarStar / Bundlefly:  %.2fx (paper: 1.3x)\n", h.VsBundlefly)
	fmt.Printf("  PolarStar / Dragonfly:  %.2fx (paper: 1.9x)\n", h.VsDragonfly)
	fmt.Printf("  PolarStar / 3-D HyperX: %.2fx (paper: 6.7x)\n", h.VsHyperX)

	// Build and sanity-check the largest radix-32 PolarStar.
	best := polarstar.PolarStarConfigs(radix)[0]
	ps := polarstar.MustNew(best.Q, best.DPrime, best.Kind)
	fmt.Printf("\nBuilt %v: diameter %d\n", ps.G, ps.G.Diameter())
}
