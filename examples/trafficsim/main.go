// Trafficsim: compare PolarStar against Dragonfly under uniform and
// adversarial traffic on the cycle-level simulator — a miniature version
// of the Fig 9/10 experiments that runs in seconds.
package main

import (
	"fmt"
	"log"

	"polarstar"
)

func main() {
	loads := []float64{0.1, 0.3, 0.5, 0.7}
	params := polarstar.DefaultSimParams(1)
	// Scaled-down windows keep the example snappy.
	params.Warmup, params.Measure, params.Drain = 1000, 2000, 4000

	for _, specName := range []string{"ps-iq-small", "df-small"} {
		spec, err := polarstar.NewSpec(specName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %d routers, %d endpoints ===\n",
			spec.Name, spec.Graph.N(), spec.Endpoints())
		for _, pattern := range []string{"uniform", "adversarial"} {
			for _, mode := range []polarstar.RoutingMode{polarstar.MINRouting, polarstar.UGALRouting} {
				res, err := polarstar.Sweep(spec, mode, pattern, loads, params)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-12s %-5s saturation load: %.2f   latency@0.1: %6.1f cycles\n",
					pattern, mode, res.SaturationLoad(), res.Points[0].AvgLatency)
			}
		}
	}
	fmt.Println("\nExpected shape: both sustain uniform traffic well; under the")
	fmt.Println("adversarial pattern MIN collapses (especially on Dragonfly's")
	fmt.Println("single global link per group pair) while UGAL recovers much of")
	fmt.Println("the lost throughput — the §9.6 result.")
}
