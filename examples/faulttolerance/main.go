// Faulttolerance: the §11.2 resilience experiment in miniature — remove
// random links from PolarStar and Dragonfly and watch diameter and
// average path length degrade, plus the motif simulator measuring an
// Allreduce on both.
package main

import (
	"fmt"
	"log"

	"polarstar"
)

func main() {
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	for _, specName := range []string{"ps-iq-small", "df-small"} {
		spec, err := polarstar.NewSpec(specName)
		if err != nil {
			log.Fatal(err)
		}
		// 15 trials, report the median-disconnection-ratio scenario
		// (the paper uses 100 trials at full scale).
		tr, err := polarstar.FaultMedianTrial(spec.Graph, nil, 15, 7, fracs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%d routers, %d links) ===\n", spec.Name, spec.Graph.N(), spec.Graph.M())
		fmt.Printf("median disconnection ratio: %.2f\n", tr.DisconnectionRatio)
		for _, p := range tr.Curve {
			if p.Connected {
				fmt.Printf("  %3.0f%% failed: diameter %d, avg path %.3f\n", 100*p.FailFrac, p.Diameter, p.AvgPath)
			} else {
				fmt.Printf("  %3.0f%% failed: disconnected\n", 100*p.FailFrac)
			}
		}
	}

	// A motif on healthy networks for comparison (§10-style).
	fmt.Println("\n64-rank 64KB Allreduce, MIN routing, flow-level model:")
	for _, specName := range []string{"ps-iq-small", "df-small"} {
		spec, _ := polarstar.NewSpec(specName)
		net := polarstar.NewFlowNetwork(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids,
			polarstar.DefaultFlowParams(1))
		t := polarstar.RunAllreduce(net, 64, 64*1024, 1)
		fmt.Printf("  %-12s %.1f us\n", spec.Name, t/1000)
	}
}
