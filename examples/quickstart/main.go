// Quickstart: construct a PolarStar network, inspect its structure,
// verify the diameter-3 guarantee, and route a few packets with the
// analytic minpath router.
package main

import (
	"fmt"
	"log"

	"polarstar"
)

func main() {
	// The paper's Table 3 configuration: ER_11 * IQ_3 — 1064 routers of
	// radix 15.
	ps, err := polarstar.New(11, 3, polarstar.IQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Topology:   %v\n", ps.G)
	fmt.Printf("Radix:      %d (= structure %d + supernode %d)\n", ps.Radix(), ps.Q()+1, ps.DPrime())
	fmt.Printf("Supernodes: %d of %d routers each\n", ps.NumGroups(), ps.Super.N())

	// Verify the headline property: diameter at most 3 (Theorem 4).
	stats := ps.G.AllPairsStats()
	fmt.Printf("Diameter:   %d (connected: %v, avg path %.3f)\n",
		stats.Diameter, stats.Connected, stats.AvgPath)

	// The §9.2 analytic router needs no product-wide tables: it computes
	// every minimal path from the factor graphs and the bijection f.
	router := polarstar.NewMinRouter(ps)
	rng := polarstar.RandomSource(42)
	for i := 0; i < 3; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		path := router.Route(src, dst, rng)
		fmt.Printf("Minpath %d -> %d: %v (%d hops, valid: %v)\n",
			src, dst, path, len(path)-1, polarstar.ValidPath(ps.G, path))
	}

	// Factor-graph properties that make this work (§5).
	fmt.Printf("ER_11 has Property R:  %v\n", polarstar.HasPropertyR(ps.Structure.G, 2))
	fmt.Printf("IQ_3  has Property R*: %v\n", polarstar.HasPropertyRStar(ps.Super.G, ps.Super.F))
}
