// Package polarstar is a from-scratch Go implementation of the PolarStar
// diameter-3 network topology family (Lakhotia et al., SPAA 2024) and of
// the full evaluation environment of the paper: factor-graph algebra over
// finite fields, the star product, every baseline topology, analytic
// minpath routing, a cycle-level interconnect simulator, a flow-level
// motif simulator, a multilevel graph bisector, and fault-injection
// analysis.
//
// This root package is the curated public API: it re-exports the stable
// entry points of the internal packages. Typical use:
//
//	ps, err := polarstar.New(11, 3, polarstar.IQ) // 1064 routers, radix 15
//	router := polarstar.NewMinRouter(ps)          // §9.2 analytic minpaths
//	path := router.Route(0, 999, nil)
//
// See the runnable programs under examples/ and the experiment
// reproduction tools under cmd/.
package polarstar

import (
	"math/rand"

	"polarstar/internal/analysis"
	"polarstar/internal/faults"
	"polarstar/internal/flowsim"
	"polarstar/internal/graph"
	"polarstar/internal/moore"
	"polarstar/internal/motifs"
	"polarstar/internal/partition"
	"polarstar/internal/route"
	"polarstar/internal/search"
	"polarstar/internal/serve"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
	"polarstar/internal/traffic"
)

// Graph is an immutable undirected graph with self-loop annotations (the
// common substrate of every topology here).
type Graph = graph.Graph

// NewGraphBuilder starts building a Graph on n vertices.
func NewGraphBuilder(name string, n int) *graph.Builder { return graph.NewBuilder(name, n) }

// PathStats aggregates all-pairs shortest-path structure (diameter,
// average path length, connectivity).
type PathStats = graph.PathStats

// BitBFSScratch is the reusable arena of the bit-parallel multi-source
// BFS engine. Callers running structural analysis over many graphs (a
// design-space sweep, a fault sweep) keep one per worker and pass it to
// Graph.AllPairsStatsSerial to amortize all traversal state.
type BitBFSScratch = graph.BitBFSScratch

// MeasuredConfig is a Fig 7 design-space point with measured (not
// closed-form) structural statistics.
type MeasuredConfig = moore.MeasuredConfig

// MeasureConfigs constructs each feasible configuration up to maxOrder
// routers and measures its exact diameter and mean path length with the
// bit-parallel all-pairs engine.
var MeasureConfigs = moore.MeasureConfigs

// ASPLLowerBound is the Moore-type lower bound on the average shortest
// path length of any n-vertex graph with maximum degree d (after
// Shimizu & Mori); it also returns the implied diameter lower bound.
var ASPLLowerBound = moore.ASPLLowerBound

// ASPLGap returns a measured ASPL's relative optimality gap against
// ASPLLowerBound.
var ASPLGap = moore.ASPLGap

// Swap is a degree-preserving 2-opt edge exchange: remove {A,B} and
// {C,D}, add {A,C} and {B,D}.
type Swap = graph.Swap

// DeltaStats maintains all-pairs path statistics under Swap edits,
// re-running BFS only from sources whose distance tree can change —
// the incremental oracle of the design-space search (DESIGN.md §11).
type DeltaStats = graph.DeltaStats

// NewDeltaStats builds the incremental oracle on a private editable
// clone of g.
func NewDeltaStats(g *Graph) *DeltaStats { return graph.NewDeltaStats(g) }

// SearchParams configures the annealing search engine.
type SearchParams = search.Params

// SearchEngine is the deterministic multi-searcher annealer behind
// cmd/pssearch: 2-opt swaps, delta evaluation, checkpoint/resume.
type SearchEngine = search.Engine

// SearchResult is a finished search: best graph, cost, trajectory and
// counters.
type SearchResult = search.Result

// NewSearch builds a search engine starting from g. Results are a pure
// function of the start graph and params minus Workers.
func NewSearch(g *Graph, p SearchParams) (*SearchEngine, error) { return search.New(g, p) }

// ---------------------------------------------------------------------
// Topologies.

// PolarStar is the paper's topology: the star product of an Erdős–Rényi
// polarity graph with an Inductive-Quad or Paley supernode; diameter ≤ 3.
type PolarStar = topo.PolarStar

// SupernodeKind selects the supernode family.
type SupernodeKind = topo.SupernodeKind

// Supernode kinds.
const (
	// IQ is the Inductive-Quad supernode (order 2d'+2, Property R*) —
	// the paper's main contribution for the supernode side.
	IQ = topo.KindIQ
	// Paley is the Paley-graph supernode (order 2d'+1, Property R1).
	Paley = topo.KindPaley
	// BDF is the Bermond–Delorme–Farhi-style supernode (order 2d').
	BDF = topo.KindBDF
	// Complete is the complete-graph supernode (order d'+1).
	Complete = topo.KindComplete
)

// New constructs PolarStar(q, d') with the given supernode kind. The
// network radix is (q+1) + d' and the order (q²+q+1) × supernode order.
func New(q, dPrime int, kind SupernodeKind) (*PolarStar, error) {
	return topo.NewPolarStar(q, dPrime, kind)
}

// MustNew is New but panics on error.
func MustNew(q, dPrime int, kind SupernodeKind) *PolarStar {
	return topo.MustNewPolarStar(q, dPrime, kind)
}

// Order returns the PolarStar order for the parameters without building
// the graph (0 when infeasible).
func Order(q, dPrime int, kind SupernodeKind) int { return topo.PolarStarOrder(q, dPrime, kind) }

// ER is the Erdős–Rényi polarity graph ER_q (structure graph, diameter 2,
// Property R).
type ER = topo.ER

// NewER constructs ER_q for a prime power q.
func NewER(q int) (*ER, error) { return topo.NewER(q) }

// Supernode bundles a supernode graph with its star-product bijection.
type Supernode = topo.Supernode

// NewSupernode constructs a supernode of the given kind and degree.
func NewSupernode(kind SupernodeKind, degree int) (*Supernode, error) {
	return topo.NewSupernode(kind, degree)
}

// StarProduct computes the bijective star product G * G' (§4.2).
func StarProduct(name string, g *Graph, super *Supernode, f []int) *Graph {
	return topo.StarProduct(name, g, super, f)
}

// Baseline topologies (§9.1).
type (
	// Bundlefly is the MMS × Paley star-product baseline (Lei et al.).
	Bundlefly = topo.Bundlefly
	// Dragonfly is the canonical maximum Dragonfly (Kim et al.).
	Dragonfly = topo.Dragonfly
	// HyperX is the all-to-all generalized hypercube (Ahn et al.).
	HyperX = topo.HyperX
	// FatTree is the 3-level folded Clos.
	FatTree = topo.FatTree
	// Megafly is the indirect two-level Dragonfly+ baseline.
	Megafly = topo.Megafly
	// MMS is the McKay–Miller–Širáň (SlimFly) diameter-2 graph.
	MMS = topo.MMS
	// Kautz is the (bidirectional) Kautz graph.
	Kautz = topo.Kautz
	// LPS is the Lubotzky–Phillips–Sarnak Ramanujan graph (Spectralfly).
	LPS = topo.LPS
)

// Baseline constructors.
var (
	NewBundlefly = topo.NewBundlefly
	NewDragonfly = topo.NewDragonfly
	NewHyperX    = topo.NewHyperX
	NewFatTree   = topo.NewFatTree
	NewMegafly   = topo.NewMegafly
	NewMMS       = topo.NewMMS
	NewKautz     = topo.NewKautz
	NewLPS       = topo.NewLPS
	NewJellyfish = topo.NewJellyfish
)

// Property checkers (§5.1).
var (
	// HasPropertyR checks the structure-graph walk property.
	HasPropertyR = topo.HasPropertyR
	// HasPropertyRStar checks the involution supernode property.
	HasPropertyRStar = topo.HasPropertyRStar
	// HasPropertyR1 checks the Bermond–Delorme–Farhi property.
	HasPropertyR1 = topo.HasPropertyR1
)

// ---------------------------------------------------------------------
// Routing.

// Router computes router-level paths through a topology.
type Router = route.Engine

// NewMinRouter builds the §9.2 analytic minimal-path router for a
// PolarStar instance. Its state is O(q² + d'²): no product-wide tables.
func NewMinRouter(ps *PolarStar) Router { return route.NewPolarStar(ps) }

// NewBundleflyRouter builds the analytic single-minpath router for a
// Bundlefly instance (factor-level state only) — the counterpart used to
// test the §9.3 claim that Bundlefly needs all-minpath tables.
func NewBundleflyRouter(bf *Bundlefly) Router { return route.NewBundlefly(bf) }

// NewTableRouter builds an all-pairs BFS table router for any graph.
// multipath selects uniform sampling among all minimal next hops.
func NewTableRouter(g *Graph, multipath bool) Router {
	mode := route.SinglePath
	if multipath {
		mode = route.AllMinPaths
	}
	return route.NewTable(g, mode)
}

// ValidPath reports whether path is a valid walk in g.
func ValidPath(g *Graph, path []int) bool { return route.PathValid(g, path) }

// RandomSource returns a deterministic rand.Rand for routing calls.
func RandomSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ---------------------------------------------------------------------
// Scale analysis (§7, Figs 1/4/7).

// DesignPoint is the largest order of a topology family at one radix.
type DesignPoint = moore.Point

// Scale analysis entry points.
var (
	// MooreBound is the degree/diameter Moore bound.
	MooreBound = moore.Bound
	// BestPolarStar returns the largest PolarStar at a radix.
	BestPolarStar = moore.BestPolarStar
	// BestBundlefly returns the largest Bundlefly at a radix.
	BestBundlefly = moore.BestBundlefly
	// BestDragonfly returns the largest Dragonfly at a radix.
	BestDragonfly = moore.BestDragonfly
	// BestHyperX3D returns the largest 3-D HyperX at a radix.
	BestHyperX3D = moore.BestHyperX3D
	// PolarStarConfigs enumerates all feasible configurations at a radix.
	PolarStarConfigs = moore.PolarStarConfigs
	// Headline computes the §1.3 geometric-mean scale ratios.
	Headline = moore.Headline
)

// ---------------------------------------------------------------------
// Simulation (§9, §10).

// Simulation types.
type (
	// SimParams configures the cycle-level simulator.
	SimParams = sim.Params
	// SimResult is one simulated load point.
	SimResult = sim.Result
	// Spec bundles a topology with routing and endpoint arrangement.
	Spec = sim.Spec
	// SweepResult is a latency-load curve.
	SweepResult = sim.SweepResult
	// TrafficPattern maps source endpoints to destinations.
	TrafficPattern = traffic.Pattern
	// FlowNetwork is the message-level simulator used for motifs.
	FlowNetwork = flowsim.Network
)

// Simulation entry points.
var (
	// NewSpec builds a named topology spec ("ps-iq", "bf", "df", ...;
	// see sim.Table3Names). Append "-small" for scaled-down variants.
	NewSpec = sim.NewSpec
	// KnownSpec reports whether a spec name is constructible, without
	// building it.
	KnownSpec = sim.KnownSpec
	// SpecNames lists every constructible spec name, sorted.
	SpecNames = sim.SpecNames
	// RunSimPoint evaluates one (spec, routing, pattern, load) point
	// with cooperative cancellation. Every invalid input — including the
	// parameter combinations the engine constructor rejects by panicking
	// — comes back as an error, making this (and Sweep, which runs on
	// it) safe for untrusted callers.
	RunSimPoint = sim.RunPoint
	// DefaultSimParams mirrors the §9.4 configuration.
	DefaultSimParams = sim.DefaultParams
	// Sweep runs a latency-load experiment.
	Sweep = sim.Sweep
	// DefaultLoads is the standard offered-load ladder.
	DefaultLoads = sim.DefaultLoads
	// NewFlowNetwork builds the §10 flow-level simulator.
	NewFlowNetwork = flowsim.New
	// DefaultFlowParams mirrors the §10.1 configuration.
	DefaultFlowParams = flowsim.DefaultParams
	// RunAllreduce simulates the Allreduce motif.
	RunAllreduce = motifs.Allreduce
	// RunSweep3D simulates the Sweep3D wavefront motif.
	RunSweep3D = motifs.Sweep3D
)

// RoutingMode selects MIN or UGAL for Sweep.
type RoutingMode = sim.RoutingMode

// Routing modes for Sweep.
const (
	// MINRouting selects minimal routing.
	MINRouting = sim.MIN
	// UGALRouting selects load-balancing adaptive routing.
	UGALRouting = sim.UGALMode
	// UGALGRouting selects the idealized global-information UGAL
	// variant (ablation only).
	UGALGRouting = sim.UGALGMode
	// MPMINRouting selects multipath routing over MIN: the minimal-path
	// lane plus SimParams.Lanes edge-disjoint spanning-tree lanes with
	// occupancy-aware spray and live-fault lane failover.
	MPMINRouting = sim.MPMINMode
	// MPUGALRouting selects multipath routing over UGAL-L.
	MPUGALRouting = sim.MPUGALMode
)

// ---------------------------------------------------------------------
// Evaluation service (cmd/psserve).

// Evaluation-service types: the simulator behind an HTTP/JSON API with
// a content-addressed artifact cache (see internal/serve and DESIGN.md
// §12).
type (
	// EvalService is the multi-tenant evaluation daemon: bounded worker
	// pool, singleflight topology builds, byte-bounded result LRU.
	EvalService = serve.Service
	// EvalServiceConfig bounds an EvalService; zero values take defaults.
	EvalServiceConfig = serve.Config
	// EvalRequest is the POST /v1/eval body.
	EvalRequest = serve.EvalRequest
	// EvalResponse is the body of a completed evaluation.
	EvalResponse = serve.EvalResponse
)

// NewEvalService starts an evaluation service; serve its Handler() over
// HTTP and stop it with Close.
func NewEvalService(cfg EvalServiceConfig) *EvalService { return serve.New(cfg) }

// ---------------------------------------------------------------------
// Structural analysis (§11).

// Structural analysis entry points.
var (
	// Bisect estimates the minimum bisection (METIS substitute).
	Bisect = partition.Bisect
	// CutFraction returns the fraction of links crossing the bisection.
	CutFraction = partition.CutFraction
	// FaultTrial runs one random link-failure scenario.
	FaultTrial = faults.RunTrial
	// FaultMedianTrial reproduces the §11.2 100-trial median protocol.
	FaultMedianTrial = faults.MedianTrial
)

// BisectOptions tunes the bisector.
type BisectOptions = partition.Options

// FaultCurve is one link-failure scenario's measurements.
type FaultCurve = faults.Trial

// FaultBands aggregates many failure scenarios into quartile curves.
type FaultBands = faults.Bands

// RunFaultBands computes quartile resilience curves over many trials.
var RunFaultBands = faults.RunBands

// FaultTrafficPoint is one failure fraction of a degraded-traffic sweep.
type FaultTrafficPoint = faults.TrafficPoint

// FaultTrafficSweep simulates traffic on progressively degraded
// topologies (the dynamic complement of the structural §11.2 sweep).
var FaultTrafficSweep = faults.TrafficSweep

// ResilienceConfig parameterizes a live-fault resilience sweep: failure
// counts, the MTBF/MTTR schedule, the repair-stall model and the
// targeted-lane kill pool.
type ResilienceConfig = faults.ResilienceConfig

// ResilienceCurve is one routing mode's throughput-vs-failure-count
// curve from ResilienceSweep.
type ResilienceCurve = faults.ResilienceCurve

// ResiliencePoint is one (mode, failure count) simulation of a
// ResilienceCurve.
type ResiliencePoint = faults.ResiliencePoint

// ResilienceSweep compares routing modes (MultiPath lanes vs MIN vs
// UGAL) under identical scripted live-fault plans, quantifying how much
// throughput each sustains as the failure count grows.
var ResilienceSweep = faults.ResilienceSweep

// LiveFaultPlan scripts link/router failures (and repairs) that the
// cycle-level simulator injects mid-run; assign one to SimParams.Plan.
type LiveFaultPlan = faults.Plan

// LiveFaultEvent is one scripted topology change in a LiveFaultPlan.
type LiveFaultEvent = faults.FaultEvent

// FaultRetryPolicy bounds source retries for packets that hit live
// faults; the zero value selects DefaultFaultRetryPolicy.
type FaultRetryPolicy = faults.RetryPolicy

// Live fault-plan constructors.
var (
	// ParseFaultPlan reads a scripted plan ("<cycle> link-down <u> <v>" lines).
	ParseFaultPlan = faults.ParsePlan
	// RandomFaultPlan draws failures with the given mean cycles between them.
	RandomFaultPlan = faults.RandomPlan
	// DefaultFaultRetryPolicy is the simulator's standard retry bound.
	DefaultFaultRetryPolicy = faults.DefaultRetryPolicy
)

// ---------------------------------------------------------------------
// Path diversity and in-network collectives (extensions).

// EdgeDisjointPaths returns a maximum set of edge-disjoint router paths
// (unit-capacity max flow), bounding per-pair fault tolerance.
var EdgeDisjointPaths = route.EdgeDisjointPaths

// EdgeConnectivity estimates the network's edge connectivity (sample <= 0
// checks every vertex pair with vertex 0: exact by Menger's theorem).
func EdgeConnectivity(g *Graph, sample int) int { return route.EdgeConnectivityLB(g, sample) }

// SpanningTree is a rooted spanning tree (for in-network collectives).
type SpanningTree = route.SpanningTree

// EdgeDisjointSpanningTrees greedily extracts edge-disjoint spanning
// trees (the Dawkins et al. companion-work construction for in-network
// allreduce).
var EdgeDisjointSpanningTrees = route.EdgeDisjointSpanningTrees

// MultiPath composes a minimal-path engine with k edge-disjoint
// spanning-tree lanes: load-balanced parallel paths in a healthy
// network, independent failover lanes under faults (DESIGN.md §13).
type MultiPath = route.MultiPath

// NewMultiPath extracts up to `lanes` edge-disjoint tree lanes over g
// around the given minimal engine; hopCap bounds tree-path length in
// nodes (0: uncapped).
var NewMultiPath = route.NewMultiPath

// TreeEscape routes over edge-disjoint spanning trees as a last-resort
// escape path for live-fault recovery.
type TreeEscape = route.TreeEscape

// NewTreeEscape extracts up to maxTrees edge-disjoint spanning trees
// over g for escape routing.
var NewTreeEscape = route.NewTreeEscape

// Collective-algorithm variants on the flow-level simulator.
var (
	// RunAllreduceRing is the bandwidth-optimal ring allreduce.
	RunAllreduceRing = motifs.AllreduceRing
	// RunAllreduceRabenseifner is reduce-scatter + allgather.
	RunAllreduceRabenseifner = motifs.AllreduceRabenseifner
	// RunAllToAll is the shifted-schedule personalized exchange.
	RunAllToAll = motifs.AllToAll
	// RunTreeAllreduce reduces over k edge-disjoint spanning trees.
	RunTreeAllreduce = motifs.TreeAllreduce
)

// ---------------------------------------------------------------------
// Analytical link-load bounds (extensions).

// LinkLoads is a per-link load distribution with its saturation bound.
type LinkLoads = analysis.LinkLoads

// ComputeLinkLoads estimates per-link loads and the bottleneck
// saturation bound for a routing engine under a traffic pattern, without
// simulation.
var ComputeLinkLoads = analysis.ComputeLinkLoads
