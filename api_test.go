package polarstar_test

import (
	"context"
	"testing"
	"testing/quick"

	"polarstar"
)

// TestFacadeQuickstart exercises the documented public-API flow.
func TestFacadeQuickstart(t *testing.T) {
	ps, err := polarstar.New(5, 4, polarstar.IQ)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Radix() != 10 || ps.G.N() != 310 {
		t.Fatalf("unexpected instance: radix %d n %d", ps.Radix(), ps.G.N())
	}
	stats := ps.G.AllPairsStats()
	if !stats.Connected || stats.Diameter > 3 {
		t.Fatalf("diameter guarantee violated: %+v", stats)
	}
	router := polarstar.NewMinRouter(ps)
	rng := polarstar.RandomSource(1)
	for i := 0; i < 100; i++ {
		src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
		path := router.Route(src, dst, rng)
		if src != dst && !polarstar.ValidPath(ps.G, path) {
			t.Fatalf("invalid path %v", path)
		}
	}
}

func TestFacadeInfeasibleParams(t *testing.T) {
	if _, err := polarstar.New(6, 3, polarstar.IQ); err == nil {
		t.Error("q=6 should fail (not a prime power)")
	}
	if _, err := polarstar.New(5, 5, polarstar.IQ); err == nil {
		t.Error("d'=5 should fail for IQ")
	}
	if polarstar.Order(6, 3, polarstar.IQ) != 0 {
		t.Error("infeasible order should be 0")
	}
}

func TestFacadeScaleAnalysis(t *testing.T) {
	if polarstar.MooreBound(15, 3) != 3166 {
		t.Error("Moore bound wrong through facade")
	}
	best := polarstar.BestPolarStar(15)
	if best.Order != 1064 {
		t.Errorf("BestPolarStar(15) = %+v", best)
	}
	if len(polarstar.PolarStarConfigs(15)) < 2 {
		t.Error("expected multiple configs at radix 15")
	}
}

func TestFacadeGraphBuilder(t *testing.T) {
	b := polarstar.NewGraphBuilder("demo", 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.Diameter() != 2 {
		t.Errorf("C4 diameter = %d", g.Diameter())
	}
	cut, _ := polarstar.Bisect(g, 1, polarstar.BisectOptions{})
	if cut != 2 {
		t.Errorf("C4 bisection = %d, want 2", cut)
	}
}

// TestQuickRandomStarProducts: property-based check over random feasible
// parameters — every constructible PolarStar must be connected with
// diameter ≤ 3 and max degree ≤ radix.
func TestQuickRandomStarProducts(t *testing.T) {
	qs := []int{2, 3, 4, 5, 7}
	prop := func(qi, di, ki uint8) bool {
		q := qs[int(qi)%len(qs)]
		kind := []polarstar.SupernodeKind{polarstar.IQ, polarstar.Paley, polarstar.BDF}[int(ki)%3]
		var dPrime int
		switch kind {
		case polarstar.IQ:
			dPrime = []int{0, 3, 4, 7}[int(di)%4]
		case polarstar.Paley:
			dPrime = []int{2, 4, 6}[int(di)%3]
		default:
			dPrime = 1 + int(di)%6
		}
		ps, err := polarstar.New(q, dPrime, kind)
		if err != nil {
			return false
		}
		stats := ps.G.AllPairsStats()
		return stats.Connected && stats.Diameter <= 3 && ps.G.MaxDegree() <= ps.Radix()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFacadeSimSmoke(t *testing.T) {
	spec, err := polarstar.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	p := polarstar.DefaultSimParams(1)
	p.Warmup, p.Measure, p.Drain = 200, 400, 1000
	res, err := polarstar.Sweep(spec, polarstar.MINRouting, "uniform", []float64{0.1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].DeliveredFrac < 0.99 {
		t.Errorf("delivery %.3f", res.Points[0].DeliveredFrac)
	}
}

func TestFacadeFaultAndMotif(t *testing.T) {
	ps := polarstar.MustNew(3, 3, polarstar.IQ)
	tr, err := polarstar.FaultTrial(ps.G, nil, 1, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Curve[0].Connected {
		t.Error("zero-failure network disconnected")
	}
	spec, _ := polarstar.NewSpec("ps-iq-small")
	net := polarstar.NewFlowNetwork(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids,
		polarstar.DefaultFlowParams(1))
	if tm := polarstar.RunAllreduce(net, 32, 4096, 1); tm <= 0 {
		t.Error("allreduce time non-positive")
	}
}

func TestFacadeExtensions(t *testing.T) {
	ps := polarstar.MustNew(3, 3, polarstar.IQ)
	// Edge connectivity of a well-connected small PolarStar equals its
	// minimum degree.
	if k := polarstar.EdgeConnectivity(ps.G, 0); k != ps.G.MinDegree() {
		t.Errorf("edge connectivity %d != min degree %d", k, ps.G.MinDegree())
	}
	paths := polarstar.EdgeDisjointPaths(ps.G, 0, ps.G.N()-1, 3)
	if len(paths) != 3 {
		t.Errorf("disjoint paths = %d, want 3", len(paths))
	}
	trees, err := polarstar.EdgeDisjointSpanningTrees(ps.G, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Errorf("spanning trees = %d, want 2", len(trees))
	}
	// Link loads under uniform traffic through the facade.
	spec, _ := polarstar.NewSpec("ps-iq-small")
	pattern, err := spec.Pattern("uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	loads := polarstar.ComputeLinkLoads(spec.Graph, spec.MinEngine, spec.Config(), pattern, 10, 1)
	if loads.Max <= 0 || loads.SaturationBound() <= 0 {
		t.Errorf("degenerate link loads: %+v", loads)
	}
	// Fault bands.
	b, err := polarstar.RunFaultBands(ps.G, nil, 5, 1, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Median) != 2 {
		t.Errorf("fault bands curve length %d", len(b.Median))
	}
	// Girth through the facade graph type.
	if g := ps.G.Girth(); g < 3 {
		t.Errorf("girth = %d", g)
	}
	// Collective variants.
	net := polarstar.NewFlowNetwork(spec.MinEngine, spec.Config(), spec.Graph, nil,
		polarstar.DefaultFlowParams(1))
	if tm := polarstar.RunAllreduceRing(net, 16, 4096, 1); tm <= 0 {
		t.Error("ring allreduce failed")
	}
	if tm := polarstar.RunTreeAllreduce(net, trees, 4096, 1); tm <= 0 {
		t.Error("tree allreduce failed")
	}
}

// TestFacadeMultipathResilience exercises the multipath surface: lane
// extraction through NewMultiPath/NewTreeEscape, an MP-UGAL sweep
// point, and a small live-fault ResilienceSweep comparing MIN to MP-MIN.
func TestFacadeMultipathResilience(t *testing.T) {
	spec, err := polarstar.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	mp, err := polarstar.NewMultiPath(spec.Graph, spec.MinEngine, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mp.TreeLanes() < 1 {
		t.Fatalf("no tree lanes extracted")
	}
	if _, err := polarstar.NewTreeEscape(spec.Graph, 2, 1); err != nil {
		t.Fatal(err)
	}

	p := polarstar.DefaultSimParams(1)
	p.Warmup, p.Measure, p.Drain = 200, 400, 1200
	res, err := polarstar.Sweep(spec, polarstar.MPUGALRouting, "uniform", []float64{0.1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].DeliveredFrac < 0.99 {
		t.Errorf("multipath delivery %.3f", res.Points[0].DeliveredFrac)
	}

	cfg := polarstar.ResilienceConfig{
		Modes:       []polarstar.RoutingMode{polarstar.MINRouting, polarstar.MPMINRouting},
		Counts:      []int{0, 2},
		Load:        0.2,
		RepairDelay: 50,
		Seed:        3,
	}
	curves, err := polarstar.ResilienceSweep(spec, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || len(curves[0].Points) != 2 {
		t.Fatalf("sweep shape: %d curves", len(curves))
	}
	if curves[1].Lanes < 1 {
		t.Errorf("multipath curve reports no lanes")
	}
	for _, c := range curves {
		for _, pt := range c.Points {
			if pt.DeliveredFrac <= 0 {
				t.Errorf("%s with %d failures delivered nothing", c.Mode, pt.Failures)
			}
		}
	}
}

// TestFacadeErrorsNotPanics pins the facade's error contract for the
// entry points the evaluation service feeds with untrusted input: every
// invalid parameter combination — including the calendar-overflow cases
// the engine constructor guards with panics — must come back as an
// error, never a panic.
func TestFacadeErrorsNotPanics(t *testing.T) {
	spec, err := polarstar.NewSpec("ps-iq-small")
	if err != nil {
		t.Fatal(err)
	}
	bad := []polarstar.SimParams{
		func() polarstar.SimParams { p := polarstar.DefaultSimParams(1); p.PacketFlits = 0; return p }(),
		func() polarstar.SimParams { p := polarstar.DefaultSimParams(1); p.BufFlitsPerVC = 1; return p }(),
		func() polarstar.SimParams { p := polarstar.DefaultSimParams(1); p.Measure = 0; return p }(),
		func() polarstar.SimParams { p := polarstar.DefaultSimParams(1); p.Warmup = -1; return p }(),
		func() polarstar.SimParams {
			// Overflows the generation calendar's packed cycle field — the
			// case NewEngine would otherwise panic on.
			p := polarstar.DefaultSimParams(1)
			p.Warmup, p.Measure, p.Drain = 1<<38, 1<<38, 1<<38
			return p
		}(),
	}
	for i, p := range bad {
		if _, err := polarstar.RunSimPoint(context.Background(), spec, polarstar.MINRouting, "uniform", 0.1, p); err == nil {
			t.Errorf("case %d: RunSimPoint accepted invalid params %+v", i, p)
		}
		if _, err := polarstar.Sweep(spec, polarstar.MINRouting, "uniform", []float64{0.1}, p); err == nil {
			t.Errorf("case %d: Sweep accepted invalid params %+v", i, p)
		}
	}
	// Out-of-range loads error too.
	if _, err := polarstar.RunSimPoint(context.Background(), spec, polarstar.MINRouting, "uniform", 1.5, polarstar.DefaultSimParams(1)); err == nil {
		t.Error("RunSimPoint accepted load 1.5")
	}
	// The registry answers name queries without construction.
	if !polarstar.KnownSpec("ps-iq-small") || polarstar.KnownSpec("nope") {
		t.Error("KnownSpec misclassified")
	}
	if names := polarstar.SpecNames(); len(names) < 10 {
		t.Errorf("SpecNames too short: %v", names)
	}
}
