// psfaults reproduces the fault-tolerance experiment of §11.2 (Fig 14):
// network diameter and average shortest-path length under random link
// failures, reported for the median-disconnection-ratio trial.
//
// Usage:
//
//	psfaults -spec ps-iq -trials 100
//	psfaults -spec df -trials 20
package main

import (
	"flag"
	"fmt"
	"os"

	"polarstar/internal/faults"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec (see pssim)")
		trials   = flag.Int("trials", 100, "random failure scenarios (paper: 100)")
		seed     = flag.Int64("seed", 1, "seed")
		svgOut   = flag.String("svg", "", "also write the APL-vs-failures curve as an SVG file")
	)
	flag.Parse()
	defer prof.Start()()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	var hosts faults.Hosts
	if spec.Hosts != nil {
		hosts = spec.Hosts // indirect topologies: endpoint routers only
	}
	tr := faults.MedianTrial(spec.Graph, hosts, *trials, *seed, faults.DefaultFracs)
	fmt.Printf("# %s: %d routers, %d links; median disconnection ratio %.3f (%d trials)\n",
		spec.Name, spec.Graph.N(), spec.Graph.M(), tr.DisconnectionRatio, *trials)
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "failfrac", "diameter", "avgpath", "connected")
	for _, p := range tr.Curve {
		if p.Connected {
			fmt.Printf("%-10.2f %-10d %-10.3f %-10v\n", p.FailFrac, p.Diameter, p.AvgPath, p.Connected)
		} else {
			fmt.Printf("%-10.2f %-10s %-10s %-10v\n", p.FailFrac, "-", "-", p.Connected)
		}
	}

	if *svgOut != "" {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s under random link failures", spec.Name),
			XLabel: "fraction of failed links",
			YLabel: "hops",
		}
		var xs, apl, diam []float64
		for _, p := range tr.Curve {
			if !p.Connected {
				break
			}
			xs = append(xs, p.FailFrac)
			apl = append(apl, p.AvgPath)
			diam = append(diam, float64(p.Diameter))
		}
		chart.Add("avg path length", xs, apl)
		chart.Add("diameter", xs, diam)
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *svgOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psfaults:", err)
	os.Exit(1)
}
