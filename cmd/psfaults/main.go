// psfaults reproduces the fault-tolerance experiment of §11.2 (Fig 14):
// network diameter and average shortest-path length under random link
// failures, reported for the median-disconnection-ratio trial. With
// -traffic it additionally runs the cycle-level simulator on each
// degraded topology, reporting delivered fraction and latency at a fixed
// offered load.
//
// Usage:
//
//	psfaults -spec ps-iq -trials 100
//	psfaults -spec df -trials 20
//	psfaults -spec ps-iq-small -traffic -load 0.3 -mode ugal
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"polarstar/internal/faults"
	"polarstar/internal/obs"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec (see pssim)")
		trials   = flag.Int("trials", 100, "random failure scenarios (paper: 100)")
		seed     = flag.Int64("seed", 1, "seed")
		svgOut   = flag.String("svg", "", "also write the APL-vs-failures curve as an SVG file")
		traffic  = flag.Bool("traffic", false, "simulate traffic on each degraded topology instead of structural stats")
		load     = flag.Float64("load", 0.3, "offered load for -traffic (flits/endpoint/cycle)")
		mode     = flag.String("mode", "min", "routing for -traffic: min, ugal")
		pattern  = flag.String("pattern", "uniform", "traffic pattern for -traffic")
		workers  = flag.Int("workers", 0, "engine shard workers per -traffic run (0: one per core)")
		met      = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	if *traffic {
		runTraffic(spec, *mode, *pattern, *load, *seed, *workers, met)
		return
	}
	var hosts faults.Hosts
	if spec.Hosts != nil {
		hosts = spec.Hosts // indirect topologies: endpoint routers only
	}
	var run *obs.Run
	var fm *obs.FaultSweep
	if met.Enabled() {
		run = obs.NewRun("psfaults")
		run.Manifest.Spec = spec.Name
		run.Manifest.Seed = *seed
		fm = &obs.FaultSweep{Spec: spec.Name}
		run.Faults = fm
	}
	var tr faults.Trial
	prof.Task(func() {
		tr = faults.MedianTrialObs(spec.Graph, hosts, *trials, *seed, faults.DefaultFracs, fm)
	}, "phase", "faults", "spec", spec.Name)
	fmt.Printf("# %s: %d routers, %d links; median disconnection ratio %.3f (%d trials)\n",
		spec.Name, spec.Graph.N(), spec.Graph.M(), tr.DisconnectionRatio, *trials)
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "failfrac", "diameter", "avgpath", "connected")
	for _, p := range tr.Curve {
		if p.Connected {
			fmt.Printf("%-10.2f %-10d %-10.3f %-10v\n", p.FailFrac, p.Diameter, p.AvgPath, p.Connected)
		} else {
			fmt.Printf("%-10.2f %-10s %-10s %-10v\n", p.FailFrac, "-", "-", p.Connected)
		}
	}

	if *svgOut != "" {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s under random link failures", spec.Name),
			XLabel: "fraction of failed links",
			YLabel: "hops",
		}
		var xs, apl, diam []float64
		for _, p := range tr.Curve {
			if !p.Connected {
				break
			}
			xs = append(xs, p.FailFrac)
			apl = append(apl, p.AvgPath)
			diam = append(diam, float64(p.Diameter))
		}
		chart.Add("avg path length", xs, apl)
		chart.Add("diameter", xs, diam)
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *svgOut)
	}
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

func runTraffic(spec *sim.Spec, mode, pattern string, load float64, seed int64, workers int, met *obs.FlagSet) {
	m := sim.MIN
	if mode == "ugal" {
		m = sim.UGALMode
	}
	params := sim.DefaultParams(seed)
	params.MetricsInterval = *met.Interval
	if workers > 0 {
		params.Workers = workers
	} else {
		params.Workers = runtime.GOMAXPROCS(0)
	}
	var run *obs.Run
	var ft *obs.FaultTraffic
	if met.Enabled() {
		run = obs.NewRun("psfaults")
		run.Manifest.Spec = spec.Name
		run.Manifest.Routing = m.String()
		run.Manifest.Pattern = pattern
		run.Manifest.Seed = seed
		run.Manifest.Workers = params.Workers
		ft = &obs.FaultTraffic{}
		run.FaultTraffic = ft
	}
	var pts []faults.TrafficPoint
	var err error
	prof.Task(func() {
		pts, err = faults.TrafficSweepObs(spec, m, pattern, load, faults.DefaultFracs, params, seed, ft)
	}, "phase", "fault-traffic", "spec", spec.Name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s %s %s under random link failures at load %.2f\n", spec.Name, m, pattern, load)
	fmt.Printf("%-10s %-8s %-12s %-10s %-10s\n", "failfrac", "removed", "avg-lat", "delivered", "saturated")
	for _, p := range pts {
		fmt.Printf("%-10.2f %-8d %-12.2f %-10.3f %-10v\n", p.FailFrac, p.Removed, p.AvgLatency, p.DeliveredFrac, p.Saturated)
	}
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psfaults:", err)
	os.Exit(1)
}
