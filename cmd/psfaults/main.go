// psfaults reproduces the fault-tolerance experiment of §11.2 (Fig 14):
// network diameter and average shortest-path length under random link
// failures, reported for the median-disconnection-ratio trial. With
// -traffic it additionally runs the cycle-level simulator on each
// degraded topology, reporting delivered fraction and latency at a fixed
// offered load.
//
// Usage:
//
//	psfaults -spec ps-iq -trials 100
//	psfaults -spec df -trials 20
//	psfaults -spec ps-iq-small -traffic -load 0.3 -mode ugal
//
// With -resilience it instead scripts live link failures *during* each
// run and compares routing modes' sustained throughput as the failure
// count grows (multipath lanes vs MIN vs UGAL):
//
//	psfaults -spec ps-iq-43 -resilience -counts 0,2,4,8 -rmodes min,mp-min
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"polarstar/internal/faults"
	"polarstar/internal/obs"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec (see pssim)")
		trials   = flag.Int("trials", 100, "random failure scenarios (paper: 100)")
		seed     = flag.Int64("seed", 1, "seed")
		svgOut   = flag.String("svg", "", "also write the APL-vs-failures curve as an SVG file")
		traffic  = flag.Bool("traffic", false, "simulate traffic on each degraded topology instead of structural stats")
		load     = flag.Float64("load", 0.3, "offered load for -traffic (flits/endpoint/cycle)")
		mode     = flag.String("mode", "min", "routing for -traffic: min, ugal")
		pattern  = flag.String("pattern", "uniform", "traffic pattern for -traffic")
		workers  = flag.Int("workers", 0, "engine shard workers per -traffic run (0: one per core)")

		resilience = flag.Bool("resilience", false, "compare routing modes under scripted live link failures (throughput vs failure count)")
		counts     = flag.String("counts", "0,1,2,4,6,8", "failure counts for -resilience (comma-separated links killed)")
		rmodes     = flag.String("rmodes", "min,ugal,mp-min", "routing curves for -resilience: min, ugal, ugal-g, mp-min, mp-ugal")
		lanes      = flag.Int("lanes", 0, "spanning-tree lanes of the mp-* modes (0: default 3)")
		killCycle  = flag.Int64("kill-cycle", 0, "cycle the -resilience failures land (0: end of warmup)")
		rMTBF      = flag.Int64("resilience-mtbf", 0, "spread -resilience failures this many cycles apart (0: one batch)")
		rRepair    = flag.Int64("resilience-repair", 0, "repair each -resilience failure after this many cycles (0: permanent)")
		rTarget    = flag.Int("target-lanes", 0, "draw -resilience failures from the tree edges of the first N multipath lanes (0: uniform over all links)")
		rDelay     = flag.Int64("repair-delay", 0, "table-reconvergence stall in cycles after each -resilience fault event (0: instant repair)")

		faultPlan    = flag.String("fault-plan", "", "live fault plan file applied during each -traffic run")
		mtbf         = flag.Float64("mtbf", 0, "additionally generate random live link failures with this mean-cycles-between-failures (0: none)")
		faultRepair  = flag.Int64("fault-repair", 0, "repair delay in cycles for -mtbf failures (0: permanent)")
		retries      = flag.Int("retries", 0, "max source retries per packet under live faults (0: default policy)")
		retryBackoff = flag.Int64("retry-backoff", 0, "base retry backoff in cycles, doubling per retry (0: default)")
		retryCap     = flag.Int64("retry-cap", 0, "retry backoff cap in cycles (0: default)")
		pktMaxAge    = flag.Int64("pkt-max-age", 0, "per-packet age limit in cycles under live faults (0: default; <0: unlimited)")
		met          = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	if *resilience {
		rc := resilienceFlags{counts: *counts, rmodes: *rmodes, lanes: *lanes,
			killCycle: *killCycle, mtbf: *rMTBF, repair: *rRepair, target: *rTarget, delay: *rDelay,
			retries: *retries, backoff: *retryBackoff, cap: *retryCap, maxAge: *pktMaxAge}
		runResilience(spec, *pattern, *load, *seed, *workers, rc, met)
		return
	}
	if *traffic {
		lf := liveFaults{plan: *faultPlan, mtbf: *mtbf, repair: *faultRepair,
			retries: *retries, backoff: *retryBackoff, cap: *retryCap, maxAge: *pktMaxAge}
		runTraffic(spec, *mode, *pattern, *load, *seed, *workers, lf, met)
		return
	}
	if *faultPlan != "" || *mtbf > 0 {
		fatal(fmt.Errorf("-fault-plan/-mtbf inject live faults into the simulator; combine them with -traffic"))
	}
	var hosts faults.Hosts
	if spec.Hosts != nil {
		hosts = spec.Hosts // indirect topologies: endpoint routers only
	}
	var run *obs.Run
	var fm *obs.FaultSweep
	if met.Enabled() {
		run = obs.NewRun("psfaults")
		run.Manifest.Spec = spec.Name
		run.Manifest.Seed = *seed
		fm = &obs.FaultSweep{Spec: spec.Name}
		run.Faults = fm
	}
	var tr faults.Trial
	var trErr error
	prof.Task(func() {
		tr, trErr = faults.MedianTrialObs(spec.Graph, hosts, *trials, *seed, faults.DefaultFracs, fm)
	}, "phase", "faults", "spec", spec.Name)
	if trErr != nil {
		fatal(trErr)
	}
	fmt.Printf("# %s: %d routers, %d links; median disconnection ratio %.3f (%d trials)\n",
		spec.Name, spec.Graph.N(), spec.Graph.M(), tr.DisconnectionRatio, *trials)
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "failfrac", "diameter", "avgpath", "connected")
	for _, p := range tr.Curve {
		if p.Connected {
			fmt.Printf("%-10.2f %-10d %-10.3f %-10v\n", p.FailFrac, p.Diameter, p.AvgPath, p.Connected)
		} else {
			fmt.Printf("%-10.2f %-10s %-10s %-10v\n", p.FailFrac, "-", "-", p.Connected)
		}
	}

	if *svgOut != "" {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s under random link failures", spec.Name),
			XLabel: "fraction of failed links",
			YLabel: "hops",
		}
		var xs, apl, diam []float64
		for _, p := range tr.Curve {
			if !p.Connected {
				break
			}
			xs = append(xs, p.FailFrac)
			apl = append(apl, p.AvgPath)
			diam = append(diam, float64(p.Diameter))
		}
		chart.Add("avg path length", xs, apl)
		chart.Add("diameter", xs, diam)
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *svgOut)
	}
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

// resilienceFlags bundles the -resilience flag values.
type resilienceFlags struct {
	counts, rmodes       string
	lanes, target        int
	killCycle            int64
	mtbf, repair, delay  int64
	retries              int
	backoff, cap, maxAge int64
}

func runResilience(spec *sim.Spec, pattern string, load float64, seed int64, workers int, rc resilienceFlags, met *obs.FlagSet) {
	var cfg faults.ResilienceConfig
	for _, f := range strings.Split(rc.counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("-counts: %w", err))
		}
		cfg.Counts = append(cfg.Counts, n)
	}
	for _, m := range strings.Split(rc.rmodes, ",") {
		switch strings.TrimSpace(m) {
		case "min":
			cfg.Modes = append(cfg.Modes, sim.MIN)
		case "ugal":
			cfg.Modes = append(cfg.Modes, sim.UGALMode)
		case "ugal-g":
			cfg.Modes = append(cfg.Modes, sim.UGALGMode)
		case "mp-min":
			cfg.Modes = append(cfg.Modes, sim.MPMINMode)
		case "mp-ugal":
			cfg.Modes = append(cfg.Modes, sim.MPUGALMode)
		default:
			fatal(fmt.Errorf("-rmodes: unknown routing %q", m))
		}
	}
	params := sim.DefaultParams(seed)
	cfg.Pattern = pattern
	cfg.Load = load
	cfg.KillCycle = rc.killCycle
	if cfg.KillCycle <= 0 {
		cfg.KillCycle = int64(params.Warmup)
	}
	cfg.MTBF = rc.mtbf
	cfg.Repair = rc.repair
	cfg.TargetLanes = rc.target
	cfg.RepairDelay = rc.delay
	cfg.Seed = seed

	params.MetricsInterval = *met.Interval
	params.Lanes = rc.lanes
	params.Retry = retryPolicy(rc.retries, rc.backoff, rc.cap, rc.maxAge)
	if workers > 0 {
		params.Workers = workers
	} else {
		params.Workers = runtime.GOMAXPROCS(0)
	}

	var run *obs.Run
	var fr *obs.FaultResilience
	if met.Enabled() {
		run = obs.NewRun("psfaults")
		run.Manifest.Spec = spec.Name
		run.Manifest.Pattern = pattern
		run.Manifest.Seed = seed
		run.Manifest.Workers = params.Workers
		fr = &obs.FaultResilience{}
		run.FaultResilience = fr
	}
	var curves []faults.ResilienceCurve
	var err error
	prof.Task(func() {
		curves, err = faults.ResilienceSweepObs(spec, cfg, params, fr)
	}, "phase", "fault-resilience", "spec", spec.Name)
	if err != nil {
		fatal(err)
	}
	target := ""
	if cfg.TargetLanes > 0 {
		target = fmt.Sprintf(" target-lanes=%d", cfg.TargetLanes)
	}
	if cfg.RepairDelay > 0 {
		target += fmt.Sprintf(" repair-delay=%d", cfg.RepairDelay)
	}
	fmt.Printf("# %s %s resilience at load %.2f (kill@%d mtbf=%d repair=%d%s)\n",
		spec.Name, pattern, load, cfg.KillCycle, cfg.MTBF, cfg.Repair, target)
	fmt.Printf("%-9s %-9s %-12s %-12s %-10s %-8s %-8s\n",
		"routing", "failures", "throughput", "avg-lat", "delivered", "lost", "retried")
	for _, c := range curves {
		name := c.Mode.String()
		if c.Lanes > 0 {
			name = fmt.Sprintf("%s(%d)", name, c.Lanes)
		}
		for _, p := range c.Points {
			fmt.Printf("%-9s %-9d %-12.4f %-12.2f %-10.3f %-8d %-8d\n",
				name, p.Failures, p.Throughput, p.AvgLatency, p.DeliveredFrac, p.Lost, p.Retried)
		}
	}
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

// liveFaults bundles the -fault-plan/-mtbf/retry flag values for the
// -traffic mode, where they inject live faults into every degraded run.
type liveFaults struct {
	plan                 string
	mtbf                 float64
	repair               int64
	retries              int
	backoff, cap, maxAge int64
}

func runTraffic(spec *sim.Spec, mode, pattern string, load float64, seed int64, workers int, lf liveFaults, met *obs.FlagSet) {
	m := sim.MIN
	if mode == "ugal" {
		m = sim.UGALMode
	}
	params := sim.DefaultParams(seed)
	params.MetricsInterval = *met.Interval
	if workers > 0 {
		params.Workers = workers
	} else {
		params.Workers = runtime.GOMAXPROCS(0)
	}
	if lf.plan != "" || lf.mtbf > 0 {
		horizon := int64(params.Warmup + params.Measure + params.Drain)
		plan, err := sim.LoadPlan(lf.plan, lf.mtbf, lf.repair, spec.Graph, horizon, seed)
		if err != nil {
			fatal(err)
		}
		params.Plan = plan
		params.Retry = retryPolicy(lf.retries, lf.backoff, lf.cap, lf.maxAge)
	}
	var run *obs.Run
	var ft *obs.FaultTraffic
	if met.Enabled() {
		run = obs.NewRun("psfaults")
		run.Manifest.Spec = spec.Name
		run.Manifest.Routing = m.String()
		run.Manifest.Pattern = pattern
		run.Manifest.Seed = seed
		run.Manifest.Workers = params.Workers
		if params.Plan != nil {
			run.Manifest.FaultPlan = faultManifest(params, lf.plan, lf.mtbf, lf.repair)
		}
		ft = &obs.FaultTraffic{}
		run.FaultTraffic = ft
	}
	var pts []faults.TrafficPoint
	var err error
	prof.Task(func() {
		pts, err = faults.TrafficSweepObs(spec, m, pattern, load, faults.DefaultFracs, params, seed, ft)
	}, "phase", "fault-traffic", "spec", spec.Name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s %s %s under random link failures at load %.2f\n", spec.Name, m, pattern, load)
	fmt.Printf("%-10s %-8s %-12s %-10s %-10s\n", "failfrac", "removed", "avg-lat", "delivered", "saturated")
	for _, p := range pts {
		fmt.Printf("%-10.2f %-8d %-12.2f %-10.3f %-10v\n", p.FailFrac, p.Removed, p.AvgLatency, p.DeliveredFrac, p.Saturated)
	}
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

// retryPolicy layers the explicitly set retry flags over the default
// policy (0 keeps each default; -pkt-max-age < 0 disables the age limit).
func retryPolicy(retries int, backoff, cap, maxAge int64) sim.RetryPolicy {
	rp := sim.DefaultRetryPolicy()
	if retries > 0 {
		rp.MaxRetries = retries
	}
	if backoff > 0 {
		rp.BackoffBase = backoff
	}
	if cap > 0 {
		rp.BackoffCap = cap
	}
	if maxAge > 0 {
		rp.MaxAge = maxAge
	} else if maxAge < 0 {
		rp.MaxAge = 0
	}
	return rp
}

// faultManifest records the fault plan (canonical hash + generator
// parameters) and the effective retry policy, so a degraded run is
// reproducible from its artifact alone.
func faultManifest(params sim.Params, source string, mtbf float64, repair int64) *obs.FaultPlan {
	return &obs.FaultPlan{
		Hash:        fmt.Sprintf("%016x", params.Plan.Hash()),
		Events:      len(params.Plan.Events),
		Source:      source,
		MTBF:        mtbf,
		Repair:      repair,
		RepairDelay: params.RepairDelay,
		MaxRetries:  params.Retry.MaxRetries,
		BackoffBase: params.Retry.BackoffBase,
		BackoffCap:  params.Retry.BackoffCap,
		MaxAge:      params.Retry.MaxAge,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psfaults:", err)
	os.Exit(1)
}
