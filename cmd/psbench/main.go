// psbench records the simulator's machine-readable benchmark trajectory:
// it runs a fixed latency-load sweep workload per spec and writes wall
// time, simulated cycles/sec and allocated bytes per generated packet as
// BENCH_sim.json — the datapoint CI's bench-smoke job regenerates so
// engine-performance regressions show up as a diffable number, not a
// feeling. Committed snapshots live in results/perf/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

// benchEntry is one (spec, routing) sweep measurement.
type benchEntry struct {
	Spec          string    `json:"spec"`
	Routing       string    `json:"routing"`
	Loads         []float64 `json:"loads"`
	CyclesPerRun  int       `json:"cycles_per_run"`
	WallSeconds   float64   `json:"wall_seconds"`
	Cycles        int64     `json:"cycles"`         // simulated cycles, summed over load points
	CyclesPerSec  float64   `json:"cycles_per_sec"` // simulated cycles per wall second
	Packets       int64     `json:"packets"`        // packets generated across the sweep
	BytesPerPkt   float64   `json:"bytes_per_packet"`
	PacketsPerSec float64   `json:"packets_per_sec"`
}

type benchFile struct {
	Tool    string       `json:"tool"`
	Go      string       `json:"go"`
	Arch    string       `json:"arch"`
	Workers int          `json:"workers"`
	Entries []benchEntry `json:"entries"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sim.json", "output JSON path (- for stdout)")
		workers = flag.Int("workers", 1, "sim engine shard workers per run")
		seed    = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	cases := []struct {
		spec string
		mode sim.RoutingMode
	}{
		{"ps-iq-small", sim.MIN},
		{"ps-iq-small", sim.UGALMode},
		{"hx-small", sim.UGALMode},
	}
	loads := []float64{0.1, 0.3, 0.5}
	bf := benchFile{Tool: "psbench", Go: runtime.Version(), Arch: runtime.GOARCH, Workers: *workers}

	for _, c := range cases {
		spec := sim.MustNewSpec(c.spec)
		p := sim.DefaultParams(*seed)
		p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
		p.Workers = *workers
		sm := obs.NewSimSweep(c.spec, c.mode.String(), "uniform", len(loads))

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if _, err := sim.SweepObs(spec, c.mode, "uniform", loads, p, sm); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)

		perRun := p.Warmup + p.Measure + p.Drain
		var packets int64
		for _, pt := range sm.Points {
			packets += int64(pt.Generated)
		}
		cycles := int64(perRun) * int64(len(loads))
		e := benchEntry{
			Spec:         c.spec,
			Routing:      c.mode.String(),
			Loads:        loads,
			CyclesPerRun: perRun,
			WallSeconds:  wall,
			Cycles:       cycles,
			CyclesPerSec: float64(cycles) / wall,
			Packets:      packets,
		}
		if packets > 0 {
			e.BytesPerPkt = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(packets)
			e.PacketsPerSec = float64(packets) / wall
		}
		bf.Entries = append(bf.Entries, e)
	}

	enc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	fmt.Printf("psbench: wrote %s (%d entries)\n", *out, len(bf.Entries))
}
