// psbench records the repo's machine-readable benchmark trajectory:
// it runs a fixed latency-load sweep workload per spec and writes wall
// time, simulated cycles/sec and allocated bytes per generated packet as
// BENCH_sim.json — the datapoint CI's bench-smoke job regenerates so
// engine-performance regressions show up as a diffable number, not a
// feeling. With -graph-out it also benchmarks the graph kernel: full
// AllPairsStats recomputation vs the incremental DeltaStats evaluation
// the search engine runs per 2-opt swap, emitting BENCH_graph.json with
// the measured speedup and mean dirty-source count, plus a replay of the
// same swap sequence through intra-Apply worker pools of width 1, 4 and
// 8 (the parallel_apply rows). Committed snapshots live in
// results/perf/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"polarstar/internal/graph"
	"polarstar/internal/obs"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
)

// benchEntry is one (spec, routing) sweep measurement.
type benchEntry struct {
	Spec    string `json:"spec"`
	Routing string `json:"routing"`
	// Lanes is the spanning-tree lane count of a multipath entry (0 on
	// single-table routings): the k-lane sweep timing rows quantify what
	// the lane spray costs the healthy engine.
	Lanes         int       `json:"lanes,omitempty"`
	Loads         []float64 `json:"loads"`
	CyclesPerRun  int       `json:"cycles_per_run"`
	WallSeconds   float64   `json:"wall_seconds"`
	Cycles        int64     `json:"cycles"`         // simulated cycles, summed over load points
	CyclesPerSec  float64   `json:"cycles_per_sec"` // simulated cycles per wall second
	Packets       int64     `json:"packets"`        // packets generated across the sweep
	BytesPerPkt   float64   `json:"bytes_per_packet"`
	PacketsPerSec float64   `json:"packets_per_sec"`
}

type benchFile struct {
	Tool    string       `json:"tool"`
	Go      string       `json:"go"`
	Arch    string       `json:"arch"`
	Workers int          `json:"workers"`
	Entries []benchEntry `json:"entries"`
}

// graphEntry is one graph-kernel measurement: the wall cost of a full
// all-pairs recomputation vs the delta evaluation of one 2-opt swap.
type graphEntry struct {
	Graph       string  `json:"graph"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	Degree      int     `json:"degree"`
	Swaps       int     `json:"swaps"`         // applied (accepted) swaps measured
	AllPairsMS  float64 `json:"allpairs_ms"`   // one full AllPairsStatsSerial
	DeltaMS     float64 `json:"delta_ms"`      // one DeltaStats.Apply, mean
	DirtyMean   float64 `json:"dirty_mean"`    // BFS sources recomputed per swap
	DirtyFrac   float64 `json:"dirty_frac"`    // dirty_mean / n
	SpeedupFull float64 `json:"speedup_full"`  // allpairs_ms / delta_ms
	Rebuilds    int64   `json:"full_rebuilds"` // stride-overflow fallbacks (expect 0)
	DistsBytes  int64   `json:"dists_bytes"`   // probe-buffer high-water over the walk

	// Parallel replays the measured swap sequence through intra-Apply
	// EvalPools of increasing width; results are bit-identical to the
	// serial walk, only the wall time moves.
	Parallel []parallelRow `json:"parallel_apply,omitempty"`
}

// parallelRow is one pooled replay of a graph-kernel swap sequence.
type parallelRow struct {
	Workers         int     `json:"workers"`
	DeltaMS         float64 `json:"delta_ms"`          // mean Apply wall time at this width
	SpeedupVsSerial float64 `json:"speedup_vs_serial"` // workers=1 replay delta_ms / this delta_ms
}

type graphBenchFile struct {
	Tool    string       `json:"tool"`
	Section string       `json:"section"`
	Go      string       `json:"go"`
	Arch    string       `json:"arch"`
	Seed    int64        `json:"seed"`
	Entries []graphEntry `json:"entries"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_sim.json", "sim sweep output JSON path (- for stdout, empty to skip)")
		workers    = flag.Int("workers", 1, "sim engine shard workers per run")
		seed       = flag.Int64("seed", 1, "seed")
		graphOut   = flag.String("graph-out", "", "graph-kernel bench output JSON path (- for stdout, empty to skip)")
		graphSwaps = flag.Int("graph-swaps", 200, "2-opt swaps to measure per graph in the kernel bench")
	)
	flag.Parse()

	if *graphOut != "" {
		runGraphBench(*graphOut, *graphSwaps, *seed)
	}
	if *out == "" {
		return
	}

	cases := []struct {
		spec string
		mode sim.RoutingMode
	}{
		{"ps-iq-small", sim.MIN},
		{"ps-iq-small", sim.UGALMode},
		{"ps-iq-small", sim.MPMINMode},
		{"ps-iq-small", sim.MPUGALMode},
		{"hx-small", sim.UGALMode},
	}
	loads := []float64{0.1, 0.3, 0.5}
	bf := benchFile{Tool: "psbench", Go: runtime.Version(), Arch: runtime.GOARCH, Workers: *workers}

	for _, c := range cases {
		spec := sim.MustNewSpec(c.spec)
		p := sim.DefaultParams(*seed)
		p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
		p.Workers = *workers
		sm := obs.NewSimSweep(c.spec, c.mode.String(), "uniform", len(loads))
		lanes := 0
		if c.mode == sim.MPMINMode || c.mode == sim.MPUGALMode {
			if r, err := spec.MultiPathRouting(spec.MinRouting(), p.Lanes, p.PacketFlits); err == nil {
				lanes = r.(*sim.MultiPathRouting).MP.TreeLanes()
			}
		}

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if _, err := sim.SweepObs(spec, c.mode, "uniform", loads, p, sm); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)

		perRun := p.Warmup + p.Measure + p.Drain
		var packets int64
		for _, pt := range sm.Points {
			packets += int64(pt.Generated)
		}
		cycles := int64(perRun) * int64(len(loads))
		e := benchEntry{
			Spec:         c.spec,
			Routing:      c.mode.String(),
			Lanes:        lanes,
			Loads:        loads,
			CyclesPerRun: perRun,
			WallSeconds:  wall,
			Cycles:       cycles,
			CyclesPerSec: float64(cycles) / wall,
			Packets:      packets,
		}
		if packets > 0 {
			e.BytesPerPkt = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(packets)
			e.PacketsPerSec = float64(packets) / wall
		}
		bf.Entries = append(bf.Entries, e)
	}

	enc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	fmt.Printf("psbench: wrote %s (%d entries)\n", *out, len(bf.Entries))
}

// runGraphBench measures the incremental-evaluation speedup that makes
// the 2-opt search viable: mean DeltaStats.Apply cost per applied swap
// against one full AllPairsStatsSerial recomputation, per graph.
func runGraphBench(out string, swaps int, seed int64) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"jellyfish-1024-16", func() (*graph.Graph, error) { return topo.NewJellyfish(1024, 16, seed) }},
		{"jellyfish-4096-16", func() (*graph.Graph, error) { return topo.NewJellyfish(4096, 16, seed) }},
		{"polarstar-iq-11-3", func() (*graph.Graph, error) {
			ps, err := topo.NewPolarStar(11, 3, topo.KindIQ)
			if err != nil {
				return nil, err
			}
			return ps.G, nil
		}},
	}

	gf := graphBenchFile{Tool: "psbench", Section: "graph-kernel", Go: runtime.Version(), Arch: runtime.GOARCH, Seed: seed}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		e, err := benchGraphKernel(c.name, g, swaps, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		gf.Entries = append(gf.Entries, e)
	}

	enc, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	fmt.Printf("psbench: wrote %s (%d entries)\n", out, len(gf.Entries))
}

func benchGraphKernel(name string, g *graph.Graph, swaps int, seed int64) (graphEntry, error) {
	// Full-recomputation baseline: best of 3 so a stray scheduler blip
	// cannot inflate the reported speedup.
	fullMS := 0.0
	var scratch graph.BitBFSScratch
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		g.AllPairsStatsSerial(&scratch)
		if ms := float64(time.Since(t0).Nanoseconds()) / 1e6; rep == 0 || ms < fullMS {
			fullMS = ms
		}
	}

	d := graph.NewDeltaStats(g)
	edges := g.Edges()
	rng := rand.New(rand.NewSource(seed))
	var deltaNS int64
	var seq []graph.Swap
	applied := 0
	for attempts := 0; applied < swaps; attempts++ {
		if attempts > 1000*swaps {
			return graphEntry{}, fmt.Errorf("graph bench %s: cannot find %d valid swaps", name, swaps)
		}
		i, j := rng.Intn(len(edges)), rng.Intn(len(edges))
		a, b := int32(edges[i][0]), int32(edges[i][1])
		c2, d2 := int32(edges[j][0]), int32(edges[j][1])
		if rng.Intn(2) == 1 {
			a, b = b, a
		}
		if rng.Intn(2) == 1 {
			c2, d2 = d2, c2
		}
		sw := graph.Swap{A: a, B: b, C: c2, D: d2}
		if !d.Graph().CanSwap(sw) {
			continue
		}
		t0 := time.Now()
		d.Apply(sw)
		deltaNS += time.Since(t0).Nanoseconds()
		seq = append(seq, sw)
		edges[i] = [2]int{int(a), int(c2)}
		edges[j] = [2]int{int(b), int(d2)}
		applied++
	}
	if d.Resync() {
		return graphEntry{}, fmt.Errorf("graph bench %s: delta state drifted from full recomputation", name)
	}

	e := graphEntry{
		Graph:      name,
		N:          g.N(),
		M:          len(edges),
		Degree:     g.MaxDegree(),
		Swaps:      applied,
		AllPairsMS: fullMS,
		DeltaMS:    float64(deltaNS) / 1e6 / float64(applied),
		DirtyMean:  float64(d.DirtyTotal) / float64(d.Evals),
		Rebuilds:   d.FullRebuilds,
		DistsBytes: d.DistsBytes,
	}
	e.DirtyFrac = e.DirtyMean / float64(e.N)
	e.SpeedupFull = e.AllPairsMS / e.DeltaMS

	// Replay the identical swap sequence through intra-Apply pools. The
	// workers=1 replay is the speedup baseline (same code path, same
	// cache state) so the rows compare pool widths, not walk variance.
	refSum, refPairs := d.SumPairs()
	serialMS := 0.0
	for _, w := range []int{1, 4, 8} {
		dp := graph.NewDeltaStatsPool(g, graph.NewEvalPool(w))
		t0 := time.Now()
		for _, sw := range seq {
			dp.Apply(sw)
		}
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6 / float64(len(seq))
		if sum, pairs := dp.SumPairs(); sum != refSum || pairs != refPairs {
			return graphEntry{}, fmt.Errorf("graph bench %s: workers=%d replay diverged", name, w)
		}
		if w == 1 {
			serialMS = ms
		}
		e.Parallel = append(e.Parallel, parallelRow{Workers: w, DeltaMS: ms, SpeedupVsSerial: serialMS / ms})
	}
	return e, nil
}
